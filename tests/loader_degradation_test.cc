// Graceful degradation of the DataLoader under injected fetch faults: the
// epoch must complete with bit-identical tensors while a struggling storage
// node costs traffic savings, never correctness — and a genuinely dead path
// must surface as an error from next(), not a hang.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "loader/loader.h"
#include "net/fault.h"
#include "net/resilience.h"
#include "net/wire.h"
#include "storage/dataset_store.h"
#include "storage/server.h"
#include "util/check.h"

namespace sophon::loader {
namespace {

struct Fixture {
  dataset::DatasetProfile profile = [] {
    auto p = dataset::openimages_profile(24);
    p.min_pixels = 6e4;
    p.max_pixels = 2.5e5;  // small images keep the threads fast
    return p;
  }();
  dataset::Catalog catalog = dataset::Catalog::generate(profile, 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  storage::DatasetStore store{catalog, 42, profile.quality};
  storage::StorageServer server{store, pipe, cm, {.seed = 42}};

  core::OffloadPlan mixed_plan() {
    core::OffloadPlan plan(catalog.size());
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      plan.set(i, static_cast<std::uint8_t>(i % 3 == 0 ? 2 : 0));
    }
    return plan;
  }

  net::RetryPolicy retry_policy() {
    net::RetryPolicy policy;
    policy.max_attempts = 4;
    policy.initial_backoff = Seconds::millis(0.1);
    policy.sleep = false;
    policy.seed = 42;
    return policy;
  }

  /// Single-threaded fault-free reference tensors keyed by sample id.
  std::map<std::uint64_t, image::Tensor> reference(const core::OffloadPlan& plan,
                                                   std::size_t epoch) {
    std::map<std::uint64_t, image::Tensor> out;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      net::FetchRequest req;
      req.sample_id = i;
      req.epoch = epoch;
      req.directive.prefix_len = plan.prefix(i);
      const auto resp = server.fetch(req);
      auto payload = net::deserialize_sample(resp.payload);
      auto tensor = pipe.run_seeded(std::move(*payload), resp.stage, pipe.size(),
                                    storage::augmentation_seed(42, epoch, i));
      out.emplace(i, std::get<image::Tensor>(std::move(tensor)));
    }
    return out;
  }
};

TEST(LoaderDegradation, TenPercentTransientFaultsEpochStillCompletes) {
  Fixture f;
  const auto plan = f.mixed_plan();
  const auto reference = f.reference(plan, /*epoch=*/0);

  net::FaultProfile fault_profile;
  fault_profile.transient_fail_prob = 0.10;  // the acceptance scenario
  fault_profile.seed = 42;
  const net::FaultInjector faults(fault_profile);
  net::FaultyStorageService faulty(f.server, faults);
  MetricsRegistry metrics;
  net::ResilientStorageService resilient(faulty, f.retry_policy(), &metrics);

  DataLoader loader(resilient, f.pipe, plan, f.catalog.size(),
                    {.num_workers = 4,
                     .queue_capacity = 8,
                     .seed = 42,
                     .epoch = 0,
                     .metrics = &metrics});
  loader.start();
  std::vector<bool> seen(f.catalog.size(), false);
  std::size_t count = 0;
  while (const auto item = loader.next()) {
    EXPECT_FALSE(seen[item->sample_id]);
    seen[item->sample_id] = true;
    EXPECT_EQ(item->tensor, reference.at(item->sample_id)) << "sample " << item->sample_id;
    ++count;
  }
  EXPECT_EQ(count, f.catalog.size());
  EXPECT_GT(resilient.retries(), 0u);  // 10% of attempts did fail
  const auto text = metrics.expose();
  EXPECT_NE(text.find("sophon_fetch_retries_total"), std::string::npos) << text;
  EXPECT_NE(text.find("sophon_degraded_samples_total"), std::string::npos) << text;
}

TEST(LoaderDegradation, PermanentOffloadFailuresDemoteToRawFetch) {
  Fixture f;
  const auto plan = f.mixed_plan();
  const auto reference = f.reference(plan, /*epoch=*/1);

  net::FaultProfile fault_profile;
  fault_profile.permanent_fail_prob = 0.5;
  fault_profile.offload_only = true;  // the raw read path stays healthy
  fault_profile.seed = 7;
  const net::FaultInjector faults(fault_profile);

  // The injector is deterministic, so the degraded set is known up front.
  std::size_t expected_degraded = 0;
  for (std::size_t i = 0; i < f.catalog.size(); ++i) {
    if (plan.prefix(i) > 0 &&
        faults.fetch_fault(i, 1, 0, true) == net::FaultKind::kPermanent) {
      ++expected_degraded;
    }
  }
  ASSERT_GT(expected_degraded, 0u) << "scenario must actually degrade something";

  net::FaultyStorageService faulty(f.server, faults);
  MetricsRegistry metrics;
  net::ResilientStorageService resilient(faulty, f.retry_policy(), &metrics);
  DataLoader loader(resilient, f.pipe, plan, f.catalog.size(),
                    {.num_workers = 4,
                     .queue_capacity = 8,
                     .seed = 42,
                     .epoch = 1,
                     .metrics = &metrics});
  loader.start();
  std::size_t count = 0;
  std::size_t degraded_items = 0;
  while (const auto item = loader.next()) {
    // Degraded samples are fetched raw, so cut-invariant augmentation must
    // still reproduce the identical tensor.
    EXPECT_EQ(item->tensor, reference.at(item->sample_id)) << "sample " << item->sample_id;
    if (item->degraded) ++degraded_items;
    ++count;
  }
  EXPECT_EQ(count, f.catalog.size());
  EXPECT_EQ(degraded_items, expected_degraded);
  EXPECT_EQ(loader.degraded_samples(), expected_degraded);
  EXPECT_EQ(metrics.counter("sophon_degraded_samples").value(), expected_degraded);
}

TEST(LoaderDegradation, DeadRawPathSurfacesAsErrorNotHang) {
  Fixture f;
  const core::OffloadPlan no_off(f.catalog.size());  // raw fetches only

  net::FaultProfile fault_profile;
  fault_profile.permanent_fail_prob = 1.0;  // every sample's path is dead
  fault_profile.seed = 3;
  const net::FaultInjector faults(fault_profile);
  net::FaultyStorageService faulty(f.server, faults);
  net::ResilientStorageService resilient(faulty, f.retry_policy());

  DataLoader loader(resilient, f.pipe, no_off, f.catalog.size(),
                    {.num_workers = 2, .queue_capacity = 4, .seed = 42, .epoch = 0});
  loader.start();
  EXPECT_THROW(
      {
        while (loader.next()) {
        }
      },
      net::FetchError);
}

TEST(LoaderDegradation, DegradationCanBeDisabled) {
  Fixture f;
  const auto plan = f.mixed_plan();
  net::FaultProfile fault_profile;
  fault_profile.permanent_fail_prob = 1.0;
  fault_profile.offload_only = true;
  fault_profile.seed = 3;
  const net::FaultInjector faults(fault_profile);
  net::FaultyStorageService faulty(f.server, faults);
  net::ResilientStorageService resilient(faulty, f.retry_policy());

  DataLoader loader(resilient, f.pipe, plan, f.catalog.size(),
                    {.num_workers = 2,
                     .queue_capacity = 4,
                     .seed = 42,
                     .epoch = 0,
                     .degrade_on_failure = false});
  loader.start();
  EXPECT_THROW(
      {
        while (loader.next()) {
        }
      },
      net::FetchError);
}

TEST(LoaderDegradation, FaultFreeResilientStackIsBitIdentical) {
  Fixture f;
  const auto plan = f.mixed_plan();
  const auto reference = f.reference(plan, /*epoch=*/2);

  const net::FaultInjector no_faults(net::FaultProfile{.seed = 42});
  net::FaultyStorageService faulty(f.server, no_faults);
  net::ResilientStorageService resilient(faulty, f.retry_policy());
  DataLoader loader(resilient, f.pipe, plan, f.catalog.size(),
                    {.num_workers = 4, .queue_capacity = 8, .seed = 42, .epoch = 2});
  loader.start();
  std::size_t count = 0;
  while (const auto item = loader.next()) {
    EXPECT_EQ(item->tensor, reference.at(item->sample_id));
    EXPECT_FALSE(item->degraded);
    ++count;
  }
  EXPECT_EQ(count, f.catalog.size());
  EXPECT_EQ(resilient.retries(), 0u);
  EXPECT_EQ(loader.degraded_samples(), 0u);
}

TEST(LoaderDegradation, OrderedModeSurvivesFaults) {
  Fixture f;
  const auto plan = f.mixed_plan();
  net::FaultProfile fault_profile;
  fault_profile.transient_fail_prob = 0.10;
  fault_profile.permanent_fail_prob = 0.2;
  fault_profile.offload_only = true;
  fault_profile.seed = 11;
  const net::FaultInjector faults(fault_profile);
  net::FaultyStorageService faulty(f.server, faults);
  net::ResilientStorageService resilient(faulty, f.retry_policy());

  DataLoader loader(resilient, f.pipe, plan, f.catalog.size(),
                    {.num_workers = 4,
                     .queue_capacity = 4,
                     .seed = 42,
                     .epoch = 0,
                     .ordered = true});
  loader.start();
  std::size_t expected_position = 0;
  while (const auto item = loader.next()) {
    EXPECT_EQ(item->position, expected_position);
    ++expected_position;
  }
  EXPECT_EQ(expected_position, f.catalog.size());
}

}  // namespace
}  // namespace sophon::loader
