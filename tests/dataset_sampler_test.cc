#include "dataset/sampler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace sophon::dataset {
namespace {

TEST(EpochOrder, IsAPermutation) {
  const EpochOrder order(1000, 42, 0);
  auto sorted = order.order();
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint32_t> expected(1000);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(sorted, expected);
}

TEST(EpochOrder, DeterministicPerEpoch) {
  const EpochOrder a(500, 42, 3);
  const EpochOrder b(500, 42, 3);
  EXPECT_EQ(a.order(), b.order());
}

TEST(EpochOrder, EpochsDiffer) {
  const EpochOrder e0(500, 42, 0);
  const EpochOrder e1(500, 42, 1);
  EXPECT_NE(e0.order(), e1.order());
}

TEST(EpochOrder, SeedsDiffer) {
  const EpochOrder a(500, 42, 0);
  const EpochOrder b(500, 43, 0);
  EXPECT_NE(a.order(), b.order());
}

TEST(EpochOrder, ActuallyShuffles) {
  const EpochOrder order(1000, 42, 0);
  std::size_t in_place = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    if (order.at(i) == i) ++in_place;
  }
  EXPECT_LT(in_place, 30u);  // E[fixed points] = 1
}

TEST(EpochOrder, AtBoundsChecked) {
  const EpochOrder order(10, 1, 0);
  EXPECT_THROW((void)order.at(10), ContractViolation);
}

TEST(EpochOrder, EmptyAndSingle) {
  const EpochOrder empty(0, 1, 0);
  EXPECT_EQ(empty.size(), 0u);
  const EpochOrder one(1, 1, 0);
  EXPECT_EQ(one.at(0), 0u);
}

TEST(MakeBatches, EvenSplit) {
  const auto batches = make_batches(1000, 250);
  ASSERT_EQ(batches.size(), 4u);
  EXPECT_EQ(batches[0].begin, 0u);
  EXPECT_EQ(batches[0].end, 250u);
  EXPECT_EQ(batches[3].end, 1000u);
}

TEST(MakeBatches, ShortFinalBatch) {
  const auto batches = make_batches(1001, 250);
  ASSERT_EQ(batches.size(), 5u);
  EXPECT_EQ(batches[4].size(), 1u);
}

TEST(MakeBatches, CoversEverySampleOnce) {
  const auto batches = make_batches(777, 64);
  std::size_t covered = 0;
  std::size_t expected_begin = 0;
  for (const auto& b : batches) {
    EXPECT_EQ(b.begin, expected_begin);
    covered += b.size();
    expected_begin = b.end;
  }
  EXPECT_EQ(covered, 777u);
}

TEST(MakeBatches, RejectsZeroBatchSize) {
  EXPECT_THROW((void)make_batches(10, 0), ContractViolation);
}

// The clairvoyance property the prefetcher leans on: the epoch order is a
// pure function of (num_samples, seed, epoch). Whoever materializes it —
// loader at start(), prefetch scheduler on its own thread, a replay weeks
// later — and in whatever access pattern, it is the same permutation.
TEST(EpochOrder, PermutationIndependentOfWhenAndWhereMaterialized) {
  for (const std::uint64_t seed : {0ull, 42ull, 1234567ull}) {
    for (const std::size_t epoch : {0u, 1u, 7u}) {
      const EpochOrder loader_view(257, seed, epoch);
      // A second, later materialization (fresh object, interleaved with
      // other shuffles to perturb any hidden global state).
      const EpochOrder decoy(99, seed + 1, epoch + 1);
      (void)decoy.order();
      const EpochOrder prefetcher_view(257, seed, epoch);

      EXPECT_EQ(loader_view.order(), prefetcher_view.order());
      // Element access agrees with bulk access at every position.
      for (std::size_t pos = 0; pos < loader_view.size(); ++pos) {
        EXPECT_EQ(loader_view.at(pos), prefetcher_view.order()[pos]);
      }
      // And it is a permutation of [0, n).
      auto sorted = prefetcher_view.order();
      std::sort(sorted.begin(), sorted.end());
      std::vector<std::uint32_t> expected(257);
      std::iota(expected.begin(), expected.end(), 0u);
      EXPECT_EQ(sorted, expected);
    }
  }
}

}  // namespace
}  // namespace sophon::dataset
