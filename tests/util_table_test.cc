#include "util/table.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace sophon {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable t({"policy", "time"});
  t.add_row({"No-Off", "202.1"});
  t.add_row({"SOPHON", "89.4"});
  const auto text = t.render();
  EXPECT_NE(text.find("policy"), std::string::npos);
  EXPECT_NE(text.find("No-Off"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);  // header+rule+2 rows
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, NumericCellsRightAligned) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1.5"});
  t.add_row({"b", "100.0"});
  const auto text = t.render();
  // "1.5" should be padded on the left to match "100.0" / "value" width.
  EXPECT_NE(text.find("  1.5"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), ContractViolation);
}

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("%.2fx", 1.234), "1.23x");
  EXPECT_EQ(strf("%d/%d", 3, 4), "3/4");
}

}  // namespace
}  // namespace sophon
