// Prefetch-waste attribution: every staged byte the consumer never claims —
// evicted before a claim, invalidated by a replan, or squeezed out by a
// budget shrink — must be reclassified to prefetch-wasted in the traffic
// ledger (the partition stays exact), and none of it may ever change what a
// sample decodes to: re-fetched tensors stay bit-identical.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "net/wire.h"
#include "obs/ledger.h"
#include "prefetch/scheduler.h"
#include "prefetch/staging_buffer.h"
#include "storage/dataset_store.h"
#include "storage/server.h"

namespace sophon::prefetch {
namespace {

PrefetchOptions depth_options(std::size_t depth) {
  PrefetchOptions options;
  options.depth = depth;
  options.deprioritize_below = Bytes(0);
  options.deprioritize_offloaded = false;
  return options;
}

net::FetchResponse response_of(std::uint64_t id, std::size_t bytes, std::uint8_t stage = 2) {
  net::FetchResponse response;
  response.sample_id = id;
  response.stage = stage;
  response.payload.resize(bytes, 0xAB);
  return response;
}

TEST(PrefetchWaste, EvictBeforeClaimReclassifiesStagedBytes) {
  obs::TrafficLedger ledger;
  StagingBuffer buffer(depth_options(8), nullptr, &ledger);
  for (std::size_t pos = 0; pos < 4; ++pos) {
    ASSERT_EQ(buffer.reserve(pos, Bytes(1000), /*wait=*/false), StagingBuffer::Reserve::kOk);
    buffer.commit(pos, response_of(pos, 1000 * (pos + 1)));
  }
  // Committed bytes are booked as prefetch at their pipeline stage.
  EXPECT_EQ(ledger.total(obs::TrafficCause::kPrefetch).count(), 1000 + 2000 + 3000 + 4000);

  const auto claimed = buffer.claim(0);
  ASSERT_TRUE(claimed.has_value());

  const Bytes evicted = buffer.evict_unclaimed();
  EXPECT_EQ(evicted.count(), 2000 + 3000 + 4000);
  // The claimed slot's bytes stay prefetch; the evicted ones become waste.
  EXPECT_EQ(ledger.total(obs::TrafficCause::kPrefetch).count(), 1000);
  EXPECT_EQ(ledger.total(obs::TrafficCause::kPrefetchWasted).count(), evicted.count());
  EXPECT_EQ(ledger.total(obs::TrafficCause::kPrefetchWasted, 2).count(), evicted.count());
  // The total never changes: reclassification moves bytes, it does not mint
  // or destroy them.
  EXPECT_EQ(ledger.total().count(), 10000);
  // Evicted positions fall through to the demand path.
  EXPECT_FALSE(buffer.claim(2).has_value());
}

TEST(PrefetchWaste, ReplanInvalidationWastesOnlyStageMismatchedSlots) {
  obs::TrafficLedger ledger;
  StagingBuffer buffer(depth_options(8), nullptr, &ledger);
  // Even positions staged at stage 2, odd ones at stage 0 — a replan to
  // prefix 0 invalidates exactly the stage-2 slots.
  for (std::size_t pos = 0; pos < 6; ++pos) {
    ASSERT_EQ(buffer.reserve(pos, Bytes(500), /*wait=*/false), StagingBuffer::Reserve::kOk);
    buffer.commit(pos, response_of(pos, 500, pos % 2 == 0 ? 2 : 0));
  }
  const Bytes evicted = buffer.evict_unclaimed_if(
      [](std::size_t, const net::FetchResponse& response) { return response.stage != 0; });
  EXPECT_EQ(evicted.count(), 3 * 500);
  EXPECT_EQ(ledger.total(obs::TrafficCause::kPrefetchWasted).count(), 3 * 500);
  EXPECT_EQ(ledger.total(obs::TrafficCause::kPrefetch).count(), 3 * 500);

  // Survivors are still claimable and arrive byte-identical to what the
  // scheduler staged.
  const auto kept = buffer.claim(1);
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(kept->response.payload, response_of(1, 500, 0).payload);
  EXPECT_FALSE(buffer.claim(2).has_value());
}

TEST(PrefetchWaste, BudgetShrinkMidEpochWastesTheEvictedTail) {
  obs::TrafficLedger ledger;
  auto options = depth_options(8);
  options.bytes_budget = Bytes(64 * 1024);
  StagingBuffer buffer(options, nullptr, &ledger);
  for (std::size_t pos = 0; pos < 4; ++pos) {
    ASSERT_EQ(buffer.reserve(pos, Bytes(1024), /*wait=*/false), StagingBuffer::Reserve::kOk);
    buffer.commit(pos, response_of(pos, 1024));
  }
  // Shrinking to half the occupancy evicts the highest positions first (the
  // consumer needs them last).
  const Bytes evicted = buffer.shrink_budget(Bytes(2048));
  EXPECT_EQ(evicted.count(), 2048);
  EXPECT_EQ(buffer.budget().count(), 2048);
  EXPECT_EQ(ledger.total(obs::TrafficCause::kPrefetchWasted).count(), 2048);
  EXPECT_EQ(ledger.total(obs::TrafficCause::kPrefetch).count(), 2048);
  EXPECT_TRUE(buffer.claim(0).has_value());
  EXPECT_TRUE(buffer.claim(1).has_value());
  EXPECT_FALSE(buffer.claim(3).has_value());
}

TEST(PrefetchWaste, MidEpochReplanKeepsTensorsBitIdenticalAndTheLedgerExact) {
  auto profile = dataset::openimages_profile(24);
  profile.min_pixels = 6e4;
  profile.max_pixels = 2.5e5;
  const auto catalog = dataset::Catalog::generate(profile, 42);
  const auto pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  storage::DatasetStore store{catalog, 42, profile.quality};
  storage::StorageServer server{store, pipe, cm, {.seed = 42}};
  net::MeteringStorageService meter(server);

  core::OffloadPlan deep(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) deep.set(i, 2);
  const core::OffloadPlan raw(catalog.size());  // the replan target: prefix 0

  // Single-threaded fault-free reference tensors.
  std::map<std::uint64_t, image::Tensor> reference;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    net::FetchRequest req;
    req.sample_id = i;
    req.epoch = 0;
    req.directive.prefix_len = deep.prefix(i);
    const auto resp = server.fetch(req);
    auto payload = net::deserialize_sample(resp.payload);
    ASSERT_TRUE(payload.has_value());
    auto tensor = pipe.run_seeded(std::move(*payload), resp.stage, pipe.size(),
                                  storage::augmentation_seed(42, 0, i));
    reference.emplace(i, std::get<image::Tensor>(std::move(tensor)));
  }

  obs::TrafficLedger ledger;
  std::vector<std::uint32_t> order(catalog.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<std::uint32_t>(i);
  PrefetchScheduler::Config config;
  config.options = depth_options(8);
  config.epoch = 0;
  config.ledger = &ledger;
  PrefetchScheduler scheduler(meter, deep, order, config);
  scheduler.start();

  // Consume position 0, then wait until the scheduler has staged at least
  // one more response beyond what we claimed — the replan must find
  // something to invalidate.
  std::int64_t claimed_prefetch_bytes = 0;
  const auto first = scheduler.claim(0);
  if (first.has_value()) {
    claimed_prefetch_bytes += static_cast<std::int64_t>(first->response.payload.size());
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ledger.total(obs::TrafficCause::kPrefetch).count() <= claimed_prefetch_bytes &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(ledger.total(obs::TrafficCause::kPrefetch).count(), claimed_prefetch_bytes)
      << "scheduler staged nothing within the deadline";

  // Replan to prefix 0: every staged stage-2 response is now mismatched.
  const Bytes evicted = scheduler.invalidate(raw);
  EXPECT_GT(evicted.count(), 0);
  EXPECT_EQ(ledger.total(obs::TrafficCause::kPrefetchWasted).count(), evicted.count());

  // Drain the epoch the way a loader worker would: claim, else demand-fetch
  // under the plan the scheduler was built with — and check bit-identity of
  // every delivered tensor against the fault-free reference.
  const auto tensor_of = [&](const net::FetchResponse& resp, std::size_t i) {
    auto payload = net::deserialize_sample(resp.payload);
    EXPECT_TRUE(payload.has_value()) << "sample " << i;
    auto tensor = pipe.run_seeded(std::move(*payload), resp.stage, pipe.size(),
                                  storage::augmentation_seed(42, 0, i));
    return std::get<image::Tensor>(std::move(tensor));
  };
  if (first.has_value()) {
    EXPECT_EQ(tensor_of(first->response, 0), reference.at(0));
  }
  for (std::size_t pos = first.has_value() ? 1 : 0; pos < catalog.size(); ++pos) {
    const std::uint64_t id = order[pos];
    auto staged = scheduler.claim(pos);
    net::FetchResponse resp;
    if (staged.has_value()) {
      resp = std::move(staged->response);
    } else {
      net::FetchRequest req;
      req.sample_id = id;
      req.epoch = 0;
      req.position = pos;
      req.directive.prefix_len = deep.prefix(id);
      resp = meter.fetch(req);
      // Mimic the loader's single recording point for demand-path bytes.
      ledger.record(id, resp.stage, obs::TrafficCause::kDemand, resp.wire_bytes());
    }
    EXPECT_EQ(tensor_of(resp, id), reference.at(id)) << "sample " << id;
  }

  // With the epoch drained nothing is in flight: the partition must close
  // byte-exactly against the wire meter, wasted bytes included.
  const auto rec = ledger.reconcile(meter.traffic());
  EXPECT_TRUE(rec.exact()) << "unattributed " << rec.unattributed_bytes << " B";
  EXPECT_GT(ledger.total(obs::TrafficCause::kPrefetchWasted).count(), 0);
  scheduler.shutdown();
  EXPECT_TRUE(ledger.reconcile(meter.traffic()).exact());
}

}  // namespace
}  // namespace sophon::prefetch
