#include "core/compression.h"

#include <gtest/gtest.h>

#include "codec/sjpg.h"
#include "core/profiler.h"
#include "dataset/synth.h"
#include "image/ops.h"
#include "util/check.h"

namespace sophon::core {
namespace {

struct Fixture {
  dataset::Catalog catalog = dataset::Catalog::generate(dataset::openimages_profile(3000), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  std::vector<SampleProfile> profiles = profile_stage2(catalog, pipe, cm);
  sim::ClusterConfig cluster = [] {
    sim::ClusterConfig c;
    c.bandwidth = Bandwidth::mbps(100.0);
    return c;
  }();
  Seconds t_g = Seconds(3.0);
};

TEST(CompressionModel, SmoothCompressesMoreThanNoisy) {
  const CompressionModel model;
  const auto pixels = 224LL * 224;
  EXPECT_LT(model.estimate_compressed(pixels, 0.1).count(),
            model.estimate_compressed(pixels, 0.9).count());
}

TEST(CompressionModel, LowerQualityIsSmaller) {
  CompressionModel hi;
  hi.quality = 90;
  CompressionModel lo;
  lo.quality = 50;
  const auto pixels = 224LL * 224;
  EXPECT_LT(lo.estimate_compressed(pixels, 0.5).count(),
            hi.estimate_compressed(pixels, 0.5).count());
}

TEST(CompressionModel, CostsScaleWithPixels) {
  const CompressionModel model;
  EXPECT_GT(model.encode_cost(1'000'000).value(), model.encode_cost(10'000).value());
  EXPECT_GT(model.encode_cost(100'000).value(), model.decode_cost(100'000).value());
}

TEST(CompressionModel, EstimateTracksRealCodecWithinFactorTwo) {
  // Calibration guard: the rate model must stay within ~2x of what the real
  // SJPG codec produces for 224x224 crops across the texture range.
  const CompressionModel model;  // quality 80
  for (const double texture : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    dataset::SampleMeta meta;
    meta.id = 3;
    meta.raw = pipeline::SampleShape::encoded(Bytes(1), 448, 448, 3);
    meta.texture = texture;
    const auto src = dataset::generate_synthetic_image(meta, 11);
    const auto crop = image::resize_bilinear(src, 224, 224);
    const auto real = codec::sjpg_encode(crop, model.quality).size();
    const auto est = model.estimate_compressed(224 * 224, texture).count();
    EXPECT_GT(est, static_cast<std::int64_t>(real) / 2) << texture;
    EXPECT_LT(est, static_cast<std::int64_t>(real) * 2) << texture;
  }
}

TEST(DecideCompression, CompressesOnlyOffloadedImagePayloads) {
  Fixture f;
  const auto base = decide_offloading(f.profiles, f.cluster, f.t_g);
  const CompressionModel model;
  const auto plan = decide_compression(f.profiles, f.catalog, f.pipe, base.plan,
                                       base.final_cost, f.cluster, model);
  EXPECT_GT(plan.compressed_count, 0u);
  for (std::size_t i = 0; i < plan.compress.size(); ++i) {
    if (plan.compress[i]) {
      EXPECT_GT(plan.base.prefix(i), 0) << i;
    }
  }
}

TEST(DecideCompression, ReducesPredictedTraffic) {
  Fixture f;
  const auto base = decide_offloading(f.profiles, f.cluster, f.t_g);
  const CompressionModel model;
  const auto plan = decide_compression(f.profiles, f.catalog, f.pipe, base.plan,
                                       base.final_cost, f.cluster, model);
  EXPECT_LT(plan.final_cost.t_net.value(), base.final_cost.t_net.value());
  EXPECT_GE(plan.final_cost.t_cs.value(), base.final_cost.t_cs.value());
  EXPECT_LE(plan.final_cost.predicted_epoch_time().value(),
            base.final_cost.predicted_epoch_time().value() + 1e-9);
}

TEST(DecideCompression, NothingToCompressUnderNoOffPlan) {
  Fixture f;
  const OffloadPlan none(f.catalog.size());
  const auto base_cost = evaluate_plan(f.profiles, none, f.cluster, f.t_g);
  const CompressionModel model;
  const auto plan =
      decide_compression(f.profiles, f.catalog, f.pipe, none, base_cost, f.cluster, model);
  EXPECT_EQ(plan.compressed_count, 0u);
}

TEST(CompressedFlows, SimulationSeesSmallerTraffic) {
  Fixture f;
  const auto base = decide_offloading(f.profiles, f.cluster, f.t_g);
  const CompressionModel model;
  const auto plan = decide_compression(f.profiles, f.catalog, f.pipe, base.plan,
                                       base.final_cost, f.cluster, model);
  ASSERT_GT(plan.compressed_count, 0u);

  const auto batch_time = Seconds::millis(85.0);
  const auto uncompressed =
      sim::simulate_epoch(f.catalog, f.pipe, f.cm, f.cluster, batch_time,
                          base.plan.assignment(), 42, 0);
  const auto flows = make_compressed_flows(plan, f.catalog, f.pipe, f.cm, model);
  const auto compressed =
      sim::simulate_epoch_flows(f.catalog.size(), flows, f.cluster, batch_time, 42, 0);
  EXPECT_LT(compressed.traffic, uncompressed.traffic);
  EXPECT_LE(compressed.epoch_time.value(), uncompressed.epoch_time.value() * 1.01);
}

TEST(CompressionModel, RejectsBadInputs) {
  const CompressionModel model;
  EXPECT_THROW((void)model.estimate_compressed(0, 0.5), ContractViolation);
  EXPECT_THROW((void)model.estimate_compressed(100, 1.5), ContractViolation);
}

}  // namespace
}  // namespace sophon::core
