#include "pipeline/extra_ops.h"

#include <gtest/gtest.h>

#include "codec/sjpg.h"
#include "dataset/synth.h"
#include "net/wire.h"
#include "util/check.h"

namespace sophon::pipeline {
namespace {

image::Image test_image(int w, int h) {
  image::Image img(w, h, 3);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      for (int c = 0; c < 3; ++c)
        img.set(x, y, c, static_cast<std::uint8_t>((x * 5 + y * 2 + c * 31) % 256));
  return img;
}

TEST(ResizeShorter, LandscapeAndPortrait) {
  const auto op = make_resize_shorter_op(256);
  Rng rng(1);
  const auto landscape = op->apply(test_image(800, 400), rng);
  EXPECT_EQ(std::get<image::Image>(landscape).height(), 256);
  EXPECT_EQ(std::get<image::Image>(landscape).width(), 512);
  const auto portrait = op->apply(test_image(400, 800), rng);
  EXPECT_EQ(std::get<image::Image>(portrait).width(), 256);
  EXPECT_EQ(std::get<image::Image>(portrait).height(), 512);
}

TEST(ResizeShorter, ShapeMatchesApply) {
  const auto op = make_resize_shorter_op(256);
  SampleShape in;
  in.repr = Repr::kImage;
  in.width = 1000;
  in.height = 707;
  in.channels = 3;
  Rng rng(2);
  const auto out = op->apply(test_image(1000, 707), rng);
  const auto shape = op->out_shape(in);
  EXPECT_EQ(shape.width, std::get<image::Image>(out).width());
  EXPECT_EQ(shape.height, std::get<image::Image>(out).height());
}

TEST(CenterCrop, ExtractsCentralRegion) {
  const auto op = make_center_crop_op(100);
  Rng rng(3);
  const auto img = test_image(300, 200);
  const auto out = std::get<image::Image>(op->apply(img, rng));
  EXPECT_EQ(out.width(), 100);
  EXPECT_EQ(out.height(), 100);
  // Center pixel must match the source's center.
  EXPECT_EQ(out.at(50, 50, 1), img.at(150, 100, 1));
}

TEST(CenterCrop, ClampsToSmallImages) {
  const auto op = make_center_crop_op(500);
  Rng rng(4);
  const auto out = std::get<image::Image>(op->apply(test_image(64, 48), rng));
  EXPECT_EQ(out.width(), 64);
  EXPECT_EQ(out.height(), 48);
}

TEST(ColorJitter, PerturbsButPreservesShape) {
  const auto op = make_color_jitter_op(0.4, 0.4);
  EXPECT_TRUE(op->is_random());
  Rng rng(5);
  const auto img = test_image(64, 64);
  const auto out = std::get<image::Image>(op->apply(img, rng));
  EXPECT_EQ(out.width(), 64);
  EXPECT_NE(out, img);  // almost surely changed
  SampleShape in;
  in.repr = Repr::kImage;
  in.width = 64;
  in.height = 64;
  in.channels = 3;
  EXPECT_EQ(op->out_shape(in), in);
}

TEST(ColorJitter, ZeroJitterStillWellDefined) {
  const auto op = make_color_jitter_op(0.0, 0.0);
  Rng rng(6);
  const auto img = test_image(16, 16);
  const auto out = std::get<image::Image>(op->apply(img, rng));
  // factors are exactly 1.0 → at most rounding drift of ±1.
  for (std::size_t i = 0; i < img.data().size(); ++i) {
    EXPECT_NEAR(out.data()[i], img.data()[i], 1);
  }
}

TEST(RandomRotation, ZeroDegreesIsNearIdentity) {
  const auto op = make_random_rotation_op(0.0);
  Rng rng(7);
  const auto img = test_image(64, 48);
  const auto out = std::get<image::Image>(op->apply(img, rng));
  // theta == 0 exactly: inverse map is the identity; bilinear weights are 0.
  EXPECT_EQ(out, img);
}

TEST(RandomRotation, PreservesShapeAndPerturbsContent) {
  const auto op = make_random_rotation_op(30.0);
  EXPECT_TRUE(op->is_random());
  Rng rng(8);
  const auto img = test_image(80, 60);
  const auto out = std::get<image::Image>(op->apply(img, rng));
  EXPECT_EQ(out.width(), 80);
  EXPECT_EQ(out.height(), 60);
  EXPECT_NE(out, img);
  SampleShape in;
  in.repr = Repr::kImage;
  in.width = 80;
  in.height = 60;
  in.channels = 3;
  EXPECT_EQ(op->out_shape(in), in);
  EXPECT_GT(op->cost(in, CostModel{}).value(), 0.0);
}

TEST(RandomRotation, CenterPixelIsFixedPoint) {
  // Rotation about the center: the center pixel maps to itself for any
  // angle (odd dimensions put it exactly on the pivot).
  const auto op = make_random_rotation_op(45.0);
  auto img = test_image(41, 31);
  img.set(20, 15, 0, 255);
  img.set(20, 15, 1, 0);
  img.set(20, 15, 2, 0);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    const auto out = std::get<image::Image>(op->apply(img, rng));
    EXPECT_EQ(out.at(20, 15, 0), 255) << seed;
  }
}

TEST(RandomRotation, RejectsBadAngles) {
  EXPECT_THROW((void)make_random_rotation_op(-1.0), ContractViolation);
  EXPECT_THROW((void)make_random_rotation_op(181.0), ContractViolation);
}

TEST(ValidationPipeline, IsDeterministicEndToEnd) {
  const auto pipe = validation_pipeline(256, 224);
  ASSERT_EQ(pipe.size(), 5u);
  dataset::SampleMeta meta;
  meta.id = 9;
  meta.raw = SampleShape::encoded(Bytes(1), 400, 300, 3);
  meta.texture = 0.5;
  const SampleData raw = EncodedBlob{dataset::materialize_encoded(meta, 7, 70)};
  // Different stream seeds must still produce identical tensors: there is
  // no random op anywhere in the validation pipeline.
  const auto a = pipe.run_seeded(raw, 0, pipe.size(), 1);
  const auto b = pipe.run_seeded(raw, 0, pipe.size(), 999);
  EXPECT_EQ(std::get<image::Tensor>(a), std::get<image::Tensor>(b));
  EXPECT_EQ(std::get<image::Tensor>(a).width(), 224);
}

TEST(ValidationPipeline, AnalyticTraceHasCorrectSizes) {
  const auto pipe = validation_pipeline(256, 224);
  const auto raw = SampleShape::encoded(Bytes(400 * 1024), 1024, 768);
  const pipeline::CostModel cm;
  const auto trace = pipe.analytic_trace(raw, cm);
  ASSERT_EQ(trace.size(), 6u);
  // Resize(256): shorter side 768→256, longer 1024→341.
  EXPECT_EQ(trace[2].size.count(), 341 * 256 * 3);
  EXPECT_EQ(trace[3].size.count(), 224 * 224 * 3);  // after CenterCrop
  EXPECT_EQ(trace[4].size.count(), 224 * 224 * 3 * 4);
  EXPECT_EQ(pipe.min_size_stage(raw), 3u);
}

TEST(ValidationPipeline, SplitExecutionInvariantHolds) {
  const auto pipe = validation_pipeline();
  dataset::SampleMeta meta;
  meta.id = 11;
  meta.raw = SampleShape::encoded(Bytes(1), 500, 400, 3);
  meta.texture = 0.3;
  const SampleData raw = EncodedBlob{dataset::materialize_encoded(meta, 8, 70)};
  const auto whole = pipe.run_seeded(raw, 0, pipe.size(), 42);
  for (std::size_t cut = 0; cut <= pipe.size(); ++cut) {
    auto part = pipe.run_seeded(raw, 0, cut, 42);
    part = pipe.run_seeded(std::move(part), cut, pipe.size(), 42);
    EXPECT_EQ(std::get<image::Tensor>(part), std::get<image::Tensor>(whole)) << cut;
  }
}

TEST(AugmentedPipeline, HasSixStagesAndWorks) {
  const auto pipe = augmented_pipeline();
  ASSERT_EQ(pipe.size(), 6u);
  dataset::SampleMeta meta;
  meta.id = 12;
  meta.raw = SampleShape::encoded(Bytes(1), 320, 240, 3);
  meta.texture = 0.5;
  const SampleData raw = EncodedBlob{dataset::materialize_encoded(meta, 9, 70)};
  const auto out = pipe.run_seeded(raw, 0, pipe.size(), 3);
  EXPECT_EQ(std::get<image::Tensor>(out).width(), 224);
}

TEST(AugmentedPipeline, DecisionEngineHandlesCustomPipelines) {
  // The profiler and decision engine must work unchanged over the heavier
  // pipeline (sizes still dip at the crop stage).
  const auto pipe = augmented_pipeline();
  const auto raw = SampleShape::encoded(Bytes(500 * 1024), 2048, 1536);
  EXPECT_EQ(pipe.min_size_stage(raw), 2u);
  const pipeline::CostModel cm;
  EXPECT_GT(pipe.prefix_cost(raw, 2, cm).value(), 0.0);
}

TEST(ValidationPipeline, RejectsCropLargerThanResize) {
  EXPECT_THROW((void)validation_pipeline(224, 256), ContractViolation);
}

}  // namespace
}  // namespace sophon::pipeline
