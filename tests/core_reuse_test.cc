#include "core/reuse.h"

#include <gtest/gtest.h>

#include "codec/sjpg.h"
#include "core/decision.h"
#include "core/profiler.h"
#include "dataset/synth.h"
#include "util/check.h"

namespace sophon::core {
namespace {

struct Fixture {
  dataset::Catalog catalog = dataset::Catalog::generate(dataset::openimages_profile(2000), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  sim::ClusterConfig cluster = [] {
    sim::ClusterConfig c;
    c.bandwidth = Bandwidth::mbps(100.0);
    return c;
  }();
  Seconds batch_time = Seconds::millis(85.0);
};

TEST(PreprocessOnce, SteadyEpochHasNoStorageCpu) {
  Fixture f;
  const auto eval = evaluate_preprocess_once(f.catalog, f.pipe, f.cm, f.cluster, f.batch_time,
                                             10, 42);
  EXPECT_GT(eval.first_epoch.storage_cpu_busy.value(), 0.0);
  EXPECT_DOUBLE_EQ(eval.steady_epoch.storage_cpu_busy.value(), 0.0);
  EXPECT_LE(eval.steady_epoch.epoch_time.value(), eval.first_epoch.epoch_time.value() + 1e-9);
}

TEST(PreprocessOnce, SteadyTrafficAtMostSophons) {
  // Reuse ships every sample at (at most) its min size without spending
  // recurring CPU — its steady-state traffic lower-bounds SOPHON's.
  Fixture f;
  const auto eval = evaluate_preprocess_once(f.catalog, f.pipe, f.cm, f.cluster, f.batch_time,
                                             10, 42);
  const auto profiles = profile_stage2(f.catalog, f.pipe, f.cm);
  const auto decision = decide_offloading(profiles, f.cluster, Seconds(0.7));
  const auto sophon = sim::simulate_epoch(f.catalog, f.pipe, f.cm, f.cluster, f.batch_time,
                                          decision.plan.assignment(), 42, 1);
  EXPECT_LE(eval.steady_epoch.traffic.as_double(), sophon.traffic.as_double() * 1.05);
}

TEST(PreprocessOnce, StoredFootprintCountsOnlyArtifacts) {
  Fixture f;
  const auto eval = evaluate_preprocess_once(f.catalog, f.pipe, f.cm, f.cluster, f.batch_time,
                                             5, 42);
  // Artifacts are 224x224x3 images for exactly the samples whose minimum is
  // past the crop; raw-minimal samples add nothing.
  std::size_t artifacts = 0;
  for (const auto& meta : f.catalog.samples()) {
    if (f.pipe.min_size_stage(meta.raw) > 0) ++artifacts;
  }
  EXPECT_GT(artifacts, 0u);
  EXPECT_LT(artifacts, f.catalog.size());
  EXPECT_EQ(eval.stored_footprint,
            Bytes(static_cast<std::int64_t>(artifacts) * 224 * 224 * 3));
  // Diversity sits between 1 (all frozen) and the epoch count (all fresh).
  EXPECT_GT(eval.variants_per_sample, 1.0);
  EXPECT_LT(eval.variants_per_sample, 5.0);
}

TEST(PreprocessOnce, RequiresStorageCores) {
  Fixture f;
  f.cluster.storage_cores = 0;
  EXPECT_THROW((void)evaluate_preprocess_once(f.catalog, f.pipe, f.cm, f.cluster, f.batch_time,
                                              5, 42),
               ContractViolation);
}

TEST(VariantCounting, OnlineProducesFreshAugmentationsEveryEpoch) {
  dataset::SampleMeta meta;
  meta.id = 5;
  meta.raw = pipeline::SampleShape::encoded(Bytes(1), 320, 240, 3);
  meta.texture = 0.4;
  const pipeline::SampleData raw =
      pipeline::EncodedBlob{dataset::materialize_encoded(meta, 9, 70)};
  const auto pipe = pipeline::Pipeline::standard();

  constexpr std::size_t kEpochs = 12;
  EXPECT_EQ(count_distinct_variants(pipe, raw, kEpochs, 42, meta.id, /*reuse=*/false), kEpochs);
}

TEST(VariantCounting, ReuseCollapsesToOneVariant) {
  dataset::SampleMeta meta;
  meta.id = 6;
  meta.raw = pipeline::SampleShape::encoded(Bytes(1), 320, 240, 3);
  meta.texture = 0.4;
  const pipeline::SampleData raw =
      pipeline::EncodedBlob{dataset::materialize_encoded(meta, 9, 70)};
  const auto pipe = pipeline::Pipeline::standard();

  EXPECT_EQ(count_distinct_variants(pipe, raw, 12, 42, meta.id, /*reuse=*/true), 1u);
}

}  // namespace
}  // namespace sophon::core
