#include "core/decision.h"

#include <gtest/gtest.h>

#include "core/profiler.h"
#include "dataset/catalog.h"
#include "pipeline/pipeline.h"
#include "util/check.h"

namespace sophon::core {
namespace {

struct Fixture {
  dataset::Catalog catalog = dataset::Catalog::generate(dataset::openimages_profile(4000), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  std::vector<SampleProfile> profiles = profile_stage2(catalog, pipe, cm);
  sim::ClusterConfig cluster = [] {
    sim::ClusterConfig c;
    c.bandwidth = Bandwidth::mbps(100.0);
    return c;
  }();
  Seconds t_g = Seconds(4.0);  // compute-light model: far below T_Net
};

TEST(Decision, BaselineIsNetBound) {
  Fixture f;
  const auto result = decide_offloading(f.profiles, f.cluster, f.t_g);
  EXPECT_TRUE(result.baseline.net_predominant());
  EXPECT_DOUBLE_EQ(result.baseline.t_cs.value(), 0.0);
  EXPECT_DOUBLE_EQ(result.baseline.t_g.value(), 4.0);
}

TEST(Decision, OffloadsOnlyBeneficialSamples) {
  Fixture f;
  const auto result = decide_offloading(f.profiles, f.cluster, f.t_g);
  EXPECT_GT(result.offloaded, 0u);
  EXPECT_LE(result.offloaded, result.beneficial_candidates);
  for (std::size_t i = 0; i < f.profiles.size(); ++i) {
    const auto prefix = result.plan.prefix(i);
    if (prefix > 0) {
      EXPECT_EQ(prefix, f.profiles[i].min_stage);
      EXPECT_TRUE(f.profiles[i].benefits());
    }
  }
}

TEST(Decision, ReducesNetworkTime) {
  Fixture f;
  const auto result = decide_offloading(f.profiles, f.cluster, f.t_g);
  EXPECT_LT(result.final_cost.t_net.value(), result.baseline.t_net.value());
  EXPECT_GT(result.final_cost.t_cs.value(), 0.0);
  // Local CPU can only shrink when work moves to storage.
  EXPECT_LE(result.final_cost.t_cc.value(), result.baseline.t_cc.value());
}

TEST(Decision, NeverWorsensPredictedEpochTime) {
  Fixture f;
  for (const int cores : {1, 2, 4, 8, 48}) {
    f.cluster.storage_cores = cores;
    const auto result = decide_offloading(f.profiles, f.cluster, f.t_g);
    EXPECT_LE(result.final_cost.predicted_epoch_time().value(),
              result.baseline.predicted_epoch_time().value() + 1e-9)
        << cores << " cores";
  }
}

TEST(Decision, LimitedCoresOffloadFewerSamples) {
  Fixture f;
  f.cluster.storage_cores = 1;
  const auto one = decide_offloading(f.profiles, f.cluster, f.t_g);
  f.cluster.storage_cores = 48;
  const auto many = decide_offloading(f.profiles, f.cluster, f.t_g);
  EXPECT_LT(one.offloaded, many.offloaded);
}

TEST(Decision, StopsWhenNetNoLongerPredominant) {
  Fixture f;
  f.cluster.storage_cores = 1;
  const auto result = decide_offloading(f.profiles, f.cluster, f.t_g);
  // With one storage core the greedy loop must stop early with T_CS having
  // caught up to T_Net (the crossing point), not exhaust all candidates.
  EXPECT_LT(result.offloaded, result.beneficial_candidates);
  EXPECT_NEAR(result.final_cost.t_cs.value(), result.final_cost.t_net.value(),
              0.05 * result.final_cost.t_net.value());
}

TEST(Decision, ZeroStorageCoresMeansNoOffloading) {
  Fixture f;
  f.cluster.storage_cores = 0;
  const auto result = decide_offloading(f.profiles, f.cluster, f.t_g);
  EXPECT_EQ(result.offloaded, 0u);
  EXPECT_EQ(result.plan.offloaded_count(), 0u);
}

TEST(Decision, NotNetBoundBaselineOffloadsNothing) {
  Fixture f;
  const auto result = decide_offloading(f.profiles, f.cluster, Seconds(100000.0));
  EXPECT_EQ(result.offloaded, 0u);  // GPU already predominant
}

TEST(Decision, EfficiencyOrderingIsGreedyOptimalPrefix) {
  // Samples actually offloaded must have efficiency >= every skipped
  // beneficial sample (the greedy picks a prefix of the sorted order).
  Fixture f;
  f.cluster.storage_cores = 2;
  const auto result = decide_offloading(f.profiles, f.cluster, f.t_g);
  double min_taken = 1e300;
  double max_skipped = 0.0;
  for (std::size_t i = 0; i < f.profiles.size(); ++i) {
    if (!f.profiles[i].benefits()) continue;
    const double eff = f.profiles[i].efficiency();
    if (result.plan.prefix(i) > 0) {
      min_taken = std::min(min_taken, eff);
    } else {
      max_skipped = std::max(max_skipped, eff);
    }
  }
  EXPECT_GE(min_taken, max_skipped);
}

TEST(Decision, ExhaustBenefitsOffloadsAllCandidates) {
  Fixture f;
  DecisionOptions opts;
  opts.stop_rule = StopRule::kExhaustBenefits;
  const auto result = decide_offloading(f.profiles, f.cluster, f.t_g, opts);
  EXPECT_EQ(result.offloaded, result.beneficial_candidates);
}

TEST(Decision, ExactMinimizeNeverWorseThanPaperRule) {
  Fixture f;
  for (const int cores : {1, 4, 48}) {
    f.cluster.storage_cores = cores;
    const auto paper = decide_offloading(f.profiles, f.cluster, f.t_g);
    DecisionOptions opts;
    opts.stop_rule = StopRule::kExactMinimize;
    const auto exact = decide_offloading(f.profiles, f.cluster, f.t_g, opts);
    EXPECT_LE(exact.final_cost.predicted_epoch_time().value(),
              paper.final_cost.predicted_epoch_time().value() + 1e-9);
  }
}

TEST(Decision, EfficiencyOrderBeatsRandomOrderUnderTightCores) {
  Fixture f;
  f.cluster.storage_cores = 1;
  const auto by_eff = decide_offloading(f.profiles, f.cluster, f.t_g);
  DecisionOptions opts;
  opts.order = CandidateOrder::kRandom;
  opts.random_seed = 7;
  const auto random = decide_offloading(f.profiles, f.cluster, f.t_g, opts);
  EXPECT_LE(by_eff.final_cost.t_net.value(), random.final_cost.t_net.value() + 1e-9);
}

TEST(EvaluatePlan, MatchesDecisionAccounting) {
  Fixture f;
  const auto result = decide_offloading(f.profiles, f.cluster, f.t_g);
  const auto evaluated = evaluate_plan(f.profiles, result.plan, f.cluster, f.t_g);
  EXPECT_NEAR(evaluated.t_net.value(), result.final_cost.t_net.value(), 1e-6);
  EXPECT_NEAR(evaluated.t_cs.value(), result.final_cost.t_cs.value(), 1e-6);
  EXPECT_NEAR(evaluated.t_cc.value(), result.final_cost.t_cc.value(), 1e-6);
}

TEST(EvaluatePlan, RejectsSizeMismatch) {
  Fixture f;
  const OffloadPlan wrong(10);
  EXPECT_THROW((void)evaluate_plan(f.profiles, wrong, f.cluster, f.t_g), ContractViolation);
}

TEST(EvaluatePlan, RejectsOffloadWithoutCores) {
  Fixture f;
  f.cluster.storage_cores = 0;
  const auto plan = OffloadPlan::uniform(f.profiles.size(), 2);
  EXPECT_THROW((void)evaluate_plan(f.profiles, plan, f.cluster, f.t_g), ContractViolation);
}

TEST(Decision, HeterogeneousStorageSpeedScalesTcs) {
  Fixture f;
  f.cluster.storage_cores = 2;
  f.cluster.storage_core_speed = 1.0;
  const auto normal = decide_offloading(f.profiles, f.cluster, f.t_g);
  f.cluster.storage_core_speed = 2.0;  // faster storage CPUs
  const auto fast = decide_offloading(f.profiles, f.cluster, f.t_g);
  // Faster storage cores let SOPHON offload at least as much.
  EXPECT_GE(fast.offloaded, normal.offloaded);
}

TEST(OffloadPlan, Accessors) {
  OffloadPlan plan(4);
  EXPECT_EQ(plan.offloaded_count(), 0u);
  plan.set(1, 2);
  plan.set(3, 5);
  EXPECT_EQ(plan.offloaded_count(), 2u);
  EXPECT_DOUBLE_EQ(plan.offloaded_fraction(), 0.5);
  EXPECT_EQ(plan.prefix(1), 2);
  EXPECT_THROW(plan.set(4, 1), ContractViolation);
  EXPECT_THROW((void)plan.prefix(4), ContractViolation);
  const auto uniform = OffloadPlan::uniform(3, 5);
  EXPECT_EQ(uniform.offloaded_count(), 3u);
}

}  // namespace
}  // namespace sophon::core
