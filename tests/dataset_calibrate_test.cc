#include "dataset/calibrate.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace sophon::dataset {
namespace {

std::vector<SampleMeta> calibration_corpus() {
  std::vector<SampleMeta> samples;
  // A spread of sizes and textures so every fit sees real variation.
  const int dims[][2] = {{320, 240}, {640, 480}, {512, 384}, {800, 600}, {400, 300}};
  int i = 0;
  for (const auto& [w, h] : dims) {
    SampleMeta meta;
    meta.id = static_cast<std::uint64_t>(i);
    meta.raw = pipeline::SampleShape::encoded(Bytes(1), w, h, 3);
    meta.texture = 0.15 + 0.18 * i;
    samples.push_back(meta);
    ++i;
  }
  return samples;
}

TEST(Calibrate, ProducesPositiveCoefficients) {
  const auto samples = calibration_corpus();
  CalibrationOptions options;
  options.repeats = 1;  // keep CI time low; min-of-1 is still a sample
  const auto result = calibrate_cost_model(samples, options);

  const auto& c = result.coefficients;
  EXPECT_GT(c.decode_ns_per_byte, 0.0);
  EXPECT_GT(c.decode_ns_per_pixel, 0.0);
  EXPECT_GT(c.crop_ns_per_src_pixel, 0.0);
  EXPECT_GT(c.resize_ns_per_out_pixel, 0.0);
  EXPECT_GT(c.flip_ns_per_pixel, 0.0);
  EXPECT_GT(c.to_tensor_ns_per_element, 0.0);
  EXPECT_GT(c.normalize_ns_per_element, 0.0);
  EXPECT_DOUBLE_EQ(c.per_op_overhead_ns, 0.0);
}

TEST(Calibrate, RecordsOneObservationPerOpPerSample) {
  const auto samples = calibration_corpus();
  CalibrationOptions options;
  options.repeats = 1;
  const auto result = calibrate_cost_model(samples, options);
  EXPECT_EQ(result.observations.size(), samples.size() * 5);
  for (const auto& obs : result.observations) {
    EXPECT_GT(obs.measured.value(), 0.0);
    EXPECT_GT(obs.predicted.value(), 0.0);
  }
}

TEST(Calibrate, FittedModelExplainsItsOwnMeasurements) {
  // Wall-clock noise makes tight bounds flaky; the fitted model must simply
  // be in the right ballpark on the data it was fitted to.
  const auto samples = calibration_corpus();
  CalibrationOptions options;
  options.repeats = 2;
  const auto result = calibrate_cost_model(samples, options);
  EXPECT_LT(result.median_relative_error(), 1.5);
}

TEST(Calibrate, CalibratedModelDrivesTheDecisionEngine) {
  // End-to-end: the fitted coefficients plug straight into a CostModel.
  const auto samples = calibration_corpus();
  CalibrationOptions options;
  options.repeats = 1;
  const auto result = calibrate_cost_model(samples, options);
  const pipeline::CostModel model(result.coefficients);
  const auto shape = pipeline::SampleShape::encoded(Bytes(300'000), 1024, 768);
  EXPECT_GT(model.decode_cost(shape).value(), 0.0);
  const auto pipe = pipeline::Pipeline::standard();
  EXPECT_GT(pipe.prefix_cost(shape, 2, model).value(), 0.0);
}

TEST(Calibrate, RejectsTooFewSamples) {
  std::vector<SampleMeta> one(1);
  one[0].raw = pipeline::SampleShape::encoded(Bytes(1), 64, 64, 3);
  EXPECT_THROW((void)calibrate_cost_model(one), ContractViolation);
}

}  // namespace
}  // namespace sophon::dataset
