#include "sim/multijob.h"

#include <gtest/gtest.h>

#include "net/wire.h"
#include "util/check.h"

namespace sophon::sim {
namespace {

struct Fixture {
  dataset::Catalog catalog = dataset::Catalog::generate(dataset::openimages_profile(1500), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;

  JobSpec job(std::uint8_t prefix, Seconds batch_time = Seconds::millis(40.0),
              std::uint64_t seed = 42) {
    JobSpec spec;
    spec.num_samples = catalog.size();
    spec.gpu_batch_time = batch_time;
    spec.batch_size = 64;
    spec.seed = seed;
    spec.flow = [this, prefix](std::size_t idx) {
      const auto& meta = catalog.sample(idx);
      SampleFlow f;
      f.storage_cpu = prefix > 0 ? pipe.prefix_cost(meta.raw, prefix, cm) : Seconds(0.0);
      f.wire = net::wire_size(pipe.shape_at(meta.raw, prefix));
      f.compute_cpu = pipe.suffix_cost(meta.raw, prefix, cm);
      return f;
    };
    return spec;
  }
};

TEST(MultiJob, SingleJobMatchesSingleJobSimulator) {
  Fixture f;
  ClusterConfig shared;
  shared.bandwidth = Bandwidth::mbps(200.0);
  shared.batch_size = 64;
  const auto multi = simulate_multijob_epoch({f.job(0)}, shared);
  const auto single = simulate_epoch_flows(f.catalog.size(), f.job(0).flow, shared,
                                           Seconds::millis(40.0), 42, 0);
  ASSERT_EQ(multi.per_job.size(), 1u);
  EXPECT_DOUBLE_EQ(multi.per_job[0].epoch_time.value(), single.epoch_time.value());
  EXPECT_EQ(multi.per_job[0].traffic, single.traffic);
}

TEST(MultiJob, SharingHalvesEffectiveBandwidth) {
  // Two identical network-bound jobs on one link each finish in roughly the
  // time one job would take on half the bandwidth.
  Fixture f;
  ClusterConfig shared;
  shared.bandwidth = Bandwidth::mbps(200.0);
  const auto both = simulate_multijob_epoch({f.job(0), f.job(0, Seconds::millis(40.0), 43)},
                                            shared);
  ClusterConfig half;
  half.bandwidth = Bandwidth::mbps(100.0);
  const auto alone = simulate_epoch_flows(f.catalog.size(), f.job(0).flow, half,
                                          Seconds::millis(40.0), 42, 0);
  for (const auto& job : both.per_job) {
    EXPECT_NEAR(job.epoch_time.value(), alone.epoch_time.value(),
                0.1 * alone.epoch_time.value());
  }
}

TEST(MultiJob, TrafficAccountingSplitsExactly) {
  Fixture f;
  ClusterConfig shared;
  shared.bandwidth = Bandwidth::mbps(300.0);
  const auto stats = simulate_multijob_epoch({f.job(0), f.job(2)}, shared);
  Bytes sum;
  for (const auto& job : stats.per_job) sum += job.traffic;
  EXPECT_EQ(stats.total_traffic, sum);
  // Job 1 offloads at the crop stage → strictly less traffic than job 0.
  EXPECT_LT(stats.per_job[1].traffic, stats.per_job[0].traffic);
  EXPECT_GT(stats.per_job[1].offloaded_samples, 0u);
}

TEST(MultiJob, SharedStorageBusySplitsAcrossJobs) {
  Fixture f;
  ClusterConfig shared;
  shared.bandwidth = Bandwidth::mbps(300.0);
  shared.storage_cores = 4;
  const auto stats = simulate_multijob_epoch({f.job(2), f.job(2, Seconds::millis(40.0), 7)},
                                             shared);
  Seconds sum;
  for (const auto& job : stats.per_job) sum += job.storage_cpu_busy;
  EXPECT_NEAR(sum.value(), stats.shared_storage_busy.value(), 1e-9);
  EXPECT_GT(stats.per_job[0].storage_cpu_busy.value(), 0.0);
  EXPECT_GT(stats.per_job[1].storage_cpu_busy.value(), 0.0);
}

TEST(MultiJob, OffloadingOneJobRelievesTheOther) {
  // Shared-link coupling: when job A offloads (shrinking its bytes), job B
  // speeds up too, without changing anything about itself.
  Fixture f;
  ClusterConfig shared;
  shared.bandwidth = Bandwidth::mbps(200.0);
  shared.storage_cores = 48;
  const auto neither = simulate_multijob_epoch(
      {f.job(0), f.job(0, Seconds::millis(40.0), 7)}, shared);
  const auto a_offloads = simulate_multijob_epoch(
      {f.job(2), f.job(0, Seconds::millis(40.0), 7)}, shared);
  EXPECT_LT(a_offloads.per_job[1].epoch_time.value(),
            neither.per_job[1].epoch_time.value());
}

TEST(MultiJob, MakespanIsTheSlowestJob) {
  Fixture f;
  ClusterConfig shared;
  shared.bandwidth = Bandwidth::mbps(300.0);
  const auto stats = simulate_multijob_epoch(
      {f.job(0), f.job(0, Seconds(1.0), 7)}, shared);  // second job is GPU-slow
  EXPECT_DOUBLE_EQ(stats.makespan.value(),
                   std::max(stats.per_job[0].epoch_time.value(),
                            stats.per_job[1].epoch_time.value()));
  EXPECT_GT(stats.per_job[1].epoch_time.value(), stats.per_job[0].epoch_time.value());
}

TEST(MultiJob, RejectsBadSpecs) {
  Fixture f;
  ClusterConfig shared;
  EXPECT_THROW((void)simulate_multijob_epoch({}, shared), ContractViolation);
  auto bad = f.job(0);
  bad.num_samples = 0;
  EXPECT_THROW((void)simulate_multijob_epoch({bad}, shared), ContractViolation);
  auto no_flow = f.job(0);
  no_flow.flow = nullptr;
  EXPECT_THROW((void)simulate_multijob_epoch({no_flow}, shared), ContractViolation);
}

}  // namespace
}  // namespace sophon::sim
