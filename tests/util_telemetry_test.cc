#include "util/telemetry.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "prefetch/metrics.h"

namespace sophon {
namespace {

TEST(Telemetry, CounterIncrements) {
  MetricsRegistry registry;
  auto& c = registry.counter("sophon_fetch");
  c.increment();
  c.increment(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name → same counter.
  EXPECT_EQ(registry.counter("sophon_fetch").value(), 5u);
}

TEST(Telemetry, GaugeSets) {
  MetricsRegistry registry;
  registry.gauge("sophon_queue_depth").set(7.5);
  registry.gauge("sophon_queue_depth").set(2.0);
  EXPECT_DOUBLE_EQ(registry.gauge("sophon_queue_depth").value(), 2.0);
}

TEST(Telemetry, DurationAccumulates) {
  MetricsRegistry registry;
  auto& d = registry.duration("sophon_preprocess");
  d.observe(Seconds(0.5));
  d.observe(Seconds(1.5));
  const auto stats = d.snapshot();
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.sum(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 0.5);
  EXPECT_DOUBLE_EQ(stats.max(), 1.5);
}

TEST(Telemetry, ScopedTimerObservesPositiveSpan) {
  MetricsRegistry registry;
  auto& d = registry.duration("sophon_span");
  {
    ScopedTimer timer(d);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto stats = d.snapshot();
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_GT(stats.sum(), 0.0);
}

TEST(Telemetry, ExpositionFormat) {
  MetricsRegistry registry;
  registry.counter("sophon_b").increment(3);
  registry.counter("sophon_a").increment();
  registry.gauge("sophon_g").set(1.5);
  registry.duration("sophon_d").observe(Seconds(0.25));
  const auto text = registry.expose();
  EXPECT_NE(text.find("sophon_a_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("sophon_b_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("sophon_g 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("sophon_d_seconds_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("sophon_d_seconds_sum 0.25\n"), std::string::npos);
  // Sorted: a before b.
  EXPECT_LT(text.find("sophon_a_total"), text.find("sophon_b_total"));
}

TEST(Telemetry, CountersAreThreadSafe) {
  MetricsRegistry registry;
  auto& c = registry.counter("sophon_mt");
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 80000u);
}

TEST(Telemetry, ReferencesStayValidAcrossRegistryGrowth) {
  MetricsRegistry registry;
  auto& first = registry.counter("sophon_first");
  for (int i = 0; i < 100; ++i) {
    registry.counter("sophon_other_" + std::to_string(i)).increment();
  }
  first.increment();
  EXPECT_EQ(registry.counter("sophon_first").value(), 1u);
}

TEST(Telemetry, GaugeSetMaxIsMonotonic) {
  Gauge gauge;
  gauge.set_max(3.0);
  EXPECT_EQ(gauge.value(), 3.0);
  gauge.set_max(1.0);  // lower values do not win
  EXPECT_EQ(gauge.value(), 3.0);
  gauge.set_max(7.5);
  EXPECT_EQ(gauge.value(), 7.5);
}

TEST(Telemetry, GaugeSetMaxIsThreadSafe) {
  Gauge gauge;
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < 10000; ++i) {
        gauge.set_max(static_cast<double>(t * 10000 + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.value(), 79999.0);
}

TEST(Telemetry, PrefetchMetricsPreRegisteredAtZero) {
  // The prefetch subsystem's convention: every metric it will ever touch is
  // registered up front, so a scrape taken before any activity already
  // lists the full set — at zero.
  MetricsRegistry registry;
  prefetch::register_prefetch_metrics(registry);
  const std::string text = registry.expose();
  for (const char* counter :
       {"sophon_prefetch_issued", "sophon_prefetch_hits", "sophon_prefetch_late",
        "sophon_prefetch_failed", "sophon_prefetch_cancelled", "sophon_prefetch_skipped_cached",
        "sophon_prefetch_skipped_deprioritized", "sophon_prefetch_skipped_consumed"}) {
    EXPECT_NE(text.find(std::string(counter) + "_total 0\n"), std::string::npos) << counter;
  }
  EXPECT_NE(text.find("sophon_prefetch_buffer_depth 0\n"), std::string::npos);
  EXPECT_NE(text.find("sophon_prefetch_buffer_bytes 0\n"), std::string::npos);
  EXPECT_NE(text.find("sophon_prefetch_lead_seconds_count 0\n"), std::string::npos);
  EXPECT_NE(text.find("sophon_prefetch_lead_seconds_sum 0\n"), std::string::npos);
}

}  // namespace
}  // namespace sophon
