#include "util/telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "prefetch/metrics.h"

namespace sophon {
namespace {

TEST(Telemetry, CounterIncrements) {
  MetricsRegistry registry;
  auto& c = registry.counter("sophon_fetch");
  c.increment();
  c.increment(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name → same counter.
  EXPECT_EQ(registry.counter("sophon_fetch").value(), 5u);
}

TEST(Telemetry, GaugeSets) {
  MetricsRegistry registry;
  registry.gauge("sophon_queue_depth").set(7.5);
  registry.gauge("sophon_queue_depth").set(2.0);
  EXPECT_DOUBLE_EQ(registry.gauge("sophon_queue_depth").value(), 2.0);
}

TEST(Telemetry, DurationAccumulates) {
  MetricsRegistry registry;
  auto& d = registry.duration("sophon_preprocess");
  d.observe(Seconds(0.5));
  d.observe(Seconds(1.5));
  const auto stats = d.snapshot();
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.sum(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 0.5);
  EXPECT_DOUBLE_EQ(stats.max(), 1.5);
}

TEST(Telemetry, ScopedTimerObservesPositiveSpan) {
  MetricsRegistry registry;
  auto& d = registry.duration("sophon_span");
  {
    ScopedTimer timer(d);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto stats = d.snapshot();
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_GT(stats.sum(), 0.0);
}

TEST(Telemetry, ExpositionFormat) {
  MetricsRegistry registry;
  registry.counter("sophon_b").increment(3);
  registry.counter("sophon_a").increment();
  registry.gauge("sophon_g").set(1.5);
  registry.duration("sophon_d").observe(Seconds(0.25));
  const auto text = registry.expose();
  EXPECT_NE(text.find("sophon_a_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("sophon_b_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("sophon_g 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("sophon_d_seconds_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("sophon_d_seconds_sum 0.25\n"), std::string::npos);
  // Sorted: a before b.
  EXPECT_LT(text.find("sophon_a_total"), text.find("sophon_b_total"));
}

TEST(Telemetry, ExpositionGoldenOutput) {
  // Locks the full Prometheus text format byte-for-byte: # HELP / # TYPE per
  // family, counters with _total, summaries with _count/_sum (+ min/max
  // companion gauges), histograms with cumulative buckets ending at +Inf.
  MetricsRegistry registry;
  registry.counter("sophon_fetch").increment(3);
  registry.set_help("sophon_fetch", "Samples fetched from storage.");
  registry.gauge("sophon_depth").set(2.5);
  registry.duration("sophon_wait").observe(Seconds(0.25));
  registry.duration("sophon_wait").observe(Seconds(0.75));
  auto& h = registry.histogram("sophon_stall");
  h.observe(Seconds(0.0002));  // -> le="0.0003"
  h.observe(Seconds(0.05));    // -> le="0.1"
  h.observe(Seconds(99.0));    // -> +Inf only
  const std::string expected =
      "# HELP sophon_fetch_total Samples fetched from storage.\n"
      "# TYPE sophon_fetch_total counter\n"
      "sophon_fetch_total 3\n"
      "# HELP sophon_depth Last-written value.\n"
      "# TYPE sophon_depth gauge\n"
      "sophon_depth 2.5\n"
      "# HELP sophon_wait_seconds Accumulated span durations in seconds.\n"
      "# TYPE sophon_wait_seconds summary\n"
      "sophon_wait_seconds_count 2\n"
      "sophon_wait_seconds_sum 1\n"
      "# HELP sophon_wait_seconds_min Shortest observed span in seconds.\n"
      "# TYPE sophon_wait_seconds_min gauge\n"
      "sophon_wait_seconds_min 0.25\n"
      "# HELP sophon_wait_seconds_max Longest observed span in seconds.\n"
      "# TYPE sophon_wait_seconds_max gauge\n"
      "sophon_wait_seconds_max 0.75\n"
      "# HELP sophon_stall Span duration distribution in seconds.\n"
      "# TYPE sophon_stall histogram\n"
      "sophon_stall_bucket{le=\"0.0001\"} 0\n"
      "sophon_stall_bucket{le=\"0.0003\"} 1\n"
      "sophon_stall_bucket{le=\"0.001\"} 1\n"
      "sophon_stall_bucket{le=\"0.003\"} 1\n"
      "sophon_stall_bucket{le=\"0.01\"} 1\n"
      "sophon_stall_bucket{le=\"0.03\"} 1\n"
      "sophon_stall_bucket{le=\"0.1\"} 2\n"
      "sophon_stall_bucket{le=\"0.3\"} 2\n"
      "sophon_stall_bucket{le=\"1\"} 2\n"
      "sophon_stall_bucket{le=\"3\"} 2\n"
      "sophon_stall_bucket{le=\"10\"} 2\n"
      "sophon_stall_bucket{le=\"+Inf\"} 3\n"
      "sophon_stall_count 3\n"
      "sophon_stall_sum 99.0502\n";
  EXPECT_EQ(registry.expose(), expected);
}

TEST(Telemetry, HelpAndTypePrecedeEverySample) {
  MetricsRegistry registry;
  registry.counter("sophon_c").increment();
  registry.gauge("sophon_g").set(1);
  registry.duration("sophon_d").observe(Seconds(0.1));
  registry.histogram("sophon_h").observe(Seconds(0.1));
  const std::string text = registry.expose();
  std::istringstream in(text);
  std::string line;
  std::string last_comment_family;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      // "# HELP <family> ..." / "# TYPE <family> <kind>"
      std::istringstream fields(line);
      std::string hash, kind, family;
      fields >> hash >> kind >> family;
      EXPECT_TRUE(kind == "HELP" || kind == "TYPE") << line;
      last_comment_family = family;
      continue;
    }
    // Every sample line belongs to the family most recently announced.
    EXPECT_EQ(line.rfind(last_comment_family, 0), 0u) << line;
  }
}

TEST(Telemetry, SnapshotCapturesAllKinds) {
  MetricsRegistry registry;
  registry.counter("sophon_c").increment(7);
  registry.gauge("sophon_g").set(3.5);
  registry.duration("sophon_d").observe(Seconds(0.5));
  registry.histogram("sophon_h").observe(Seconds(0.2));
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("sophon_c"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("sophon_g"), 3.5);
  EXPECT_EQ(snap.durations.at("sophon_d").count, 1u);
  EXPECT_DOUBLE_EQ(snap.durations.at("sophon_d").sum, 0.5);
  EXPECT_EQ(snap.histograms.at("sophon_h").count, 1u);
  EXPECT_DOUBLE_EQ(snap.histograms.at("sophon_h").sum, 0.2);
}

TEST(Telemetry, SnapshotDeltaIsolatesAnInterval) {
  MetricsRegistry registry;
  registry.counter("sophon_c").increment(10);
  registry.duration("sophon_d").observe(Seconds(1.0));
  registry.gauge("sophon_g").set(1.0);
  const MetricsSnapshot before = registry.snapshot();

  registry.counter("sophon_c").increment(5);
  registry.counter("sophon_new").increment(2);  // born inside the interval
  registry.duration("sophon_d").observe(Seconds(0.25));
  registry.gauge("sophon_g").set(9.0);
  registry.histogram("sophon_h").observe(Seconds(0.1));
  const MetricsSnapshot after = registry.snapshot();

  const MetricsSnapshot delta = snapshot_delta(after, before);
  EXPECT_EQ(delta.counters.at("sophon_c"), 5u);
  EXPECT_EQ(delta.counters.at("sophon_new"), 2u);
  EXPECT_EQ(delta.durations.at("sophon_d").count, 1u);
  EXPECT_DOUBLE_EQ(delta.durations.at("sophon_d").sum, 0.25);
  EXPECT_EQ(delta.histograms.at("sophon_h").count, 1u);
  // Gauges are instantaneous; the delta carries the later reading.
  EXPECT_DOUBLE_EQ(delta.gauges.at("sophon_g"), 9.0);
}

TEST(Telemetry, CountersAreThreadSafe) {
  MetricsRegistry registry;
  auto& c = registry.counter("sophon_mt");
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 80000u);
}

TEST(Telemetry, ReferencesStayValidAcrossRegistryGrowth) {
  MetricsRegistry registry;
  auto& first = registry.counter("sophon_first");
  for (int i = 0; i < 100; ++i) {
    registry.counter("sophon_other_" + std::to_string(i)).increment();
  }
  first.increment();
  EXPECT_EQ(registry.counter("sophon_first").value(), 1u);
}

TEST(Telemetry, GaugeSetMaxIsMonotonic) {
  Gauge gauge;
  gauge.set_max(3.0);
  EXPECT_EQ(gauge.value(), 3.0);
  gauge.set_max(1.0);  // lower values do not win
  EXPECT_EQ(gauge.value(), 3.0);
  gauge.set_max(7.5);
  EXPECT_EQ(gauge.value(), 7.5);
}

TEST(Telemetry, GaugeSetMaxIsThreadSafe) {
  Gauge gauge;
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < 10000; ++i) {
        gauge.set_max(static_cast<double>(t * 10000 + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.value(), 79999.0);
}

TEST(Telemetry, PrefetchMetricsPreRegisteredAtZero) {
  // The prefetch subsystem's convention: every metric it will ever touch is
  // registered up front, so a scrape taken before any activity already
  // lists the full set — at zero.
  MetricsRegistry registry;
  prefetch::register_prefetch_metrics(registry);
  const std::string text = registry.expose();
  for (const char* counter :
       {"sophon_prefetch_issued", "sophon_prefetch_hits", "sophon_prefetch_late",
        "sophon_prefetch_failed", "sophon_prefetch_cancelled", "sophon_prefetch_skipped_cached",
        "sophon_prefetch_skipped_deprioritized", "sophon_prefetch_skipped_consumed"}) {
    EXPECT_NE(text.find(std::string(counter) + "_total 0\n"), std::string::npos) << counter;
  }
  EXPECT_NE(text.find("sophon_prefetch_buffer_depth 0\n"), std::string::npos);
  EXPECT_NE(text.find("sophon_prefetch_buffer_bytes 0\n"), std::string::npos);
  EXPECT_NE(text.find("sophon_prefetch_lead_seconds_count 0\n"), std::string::npos);
  EXPECT_NE(text.find("sophon_prefetch_lead_seconds_sum 0\n"), std::string::npos);
}

TEST(Telemetry, SnapshotDeltaOfEmptyRegistryIsEmpty) {
  MetricsRegistry registry;
  const MetricsSnapshot a = registry.snapshot();
  const MetricsSnapshot b = registry.snapshot();
  const MetricsSnapshot delta = snapshot_delta(b, a);
  EXPECT_TRUE(delta.counters.empty());
  EXPECT_TRUE(delta.gauges.empty());
  EXPECT_TRUE(delta.durations.empty());
  EXPECT_TRUE(delta.histograms.empty());
}

// The flight recorder's contract: snapshots taken while writers hammer the
// registry chop the activity into intervals whose deltas add back up to the
// final totals — nothing double-counted, nothing lost between snapshots.
TEST(Telemetry, ConcurrentSnapshotDeltasSumToTheTotal) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry] {
      for (int i = 0; i < 20000; ++i) {
        registry.counter("sophon_mt_events").increment();
        registry.duration("sophon_mt_cpu").observe(Seconds(0.001));
        registry.histogram("sophon_mt_lat").observe(Seconds(0.01));
      }
    });
  }

  // A snapshotting thread carves the concurrent activity into intervals.
  std::uint64_t counter_sum = 0;
  std::uint64_t duration_count_sum = 0;
  std::uint64_t histogram_count_sum = 0;
  std::thread sampler([&] {
    MetricsSnapshot last;
    while (!stop.load()) {
      const MetricsSnapshot now = registry.snapshot();
      const MetricsSnapshot delta = snapshot_delta(now, last);
      if (delta.counters.count("sophon_mt_events")) {
        counter_sum += delta.counters.at("sophon_mt_events");
      }
      if (delta.durations.count("sophon_mt_cpu")) {
        duration_count_sum += delta.durations.at("sophon_mt_cpu").count;
      }
      if (delta.histograms.count("sophon_mt_lat")) {
        histogram_count_sum += delta.histograms.at("sophon_mt_lat").count;
      }
      last = now;
    }
    // One final interval after the writers quiesced catches the remainder.
    const MetricsSnapshot now = registry.snapshot();
    const MetricsSnapshot delta = snapshot_delta(now, last);
    counter_sum += delta.counters.at("sophon_mt_events");
    duration_count_sum += delta.durations.at("sophon_mt_cpu").count;
    histogram_count_sum += delta.histograms.at("sophon_mt_lat").count;
  });
  for (auto& t : writers) t.join();
  stop.store(true);
  sampler.join();

  EXPECT_EQ(counter_sum, 80000u);
  EXPECT_EQ(duration_count_sum, 80000u);
  EXPECT_EQ(histogram_count_sum, 80000u);
}

TEST(Telemetry, HistogramInfBucketSurvivesConcurrentScrapes) {
  MetricsRegistry registry;
  auto& hist = registry.histogram("sophon_mt_lat");
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&hist] {
      for (int i = 0; i < 5000; ++i) {
        hist.observe(Seconds(0.001));
        hist.observe(Seconds(100.0));  // past the last bound -> +Inf bucket
      }
    });
  }
  std::thread scraper([&registry] {
    for (int i = 0; i < 50; ++i) (void)registry.expose();
  });
  for (auto& t : writers) t.join();
  scraper.join();

  // The +Inf bucket is cumulative: after quiescence it equals _count, and
  // both equal every observation made.
  const std::string text = registry.expose();
  EXPECT_NE(text.find("sophon_mt_lat_bucket{le=\"+Inf\"} 40000\n"), std::string::npos) << text;
  EXPECT_NE(text.find("sophon_mt_lat_count 40000\n"), std::string::npos);
  EXPECT_EQ(registry.snapshot().histograms.at("sophon_mt_lat").count, 40000u);
}

}  // namespace
}  // namespace sophon
