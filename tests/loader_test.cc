#include "loader/loader.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

#include "dataset/sampler.h"
#include "net/wire.h"
#include "storage/dataset_store.h"
#include "storage/server.h"
#include "util/check.h"

namespace sophon::loader {
namespace {

struct Fixture {
  dataset::DatasetProfile profile = [] {
    auto p = dataset::openimages_profile(24);
    p.min_pixels = 6e4;
    p.max_pixels = 2.5e5;  // small images keep the threads fast
    return p;
  }();
  dataset::Catalog catalog = dataset::Catalog::generate(profile, 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  storage::DatasetStore store{catalog, 42, profile.quality};
  storage::StorageServer server{store, pipe, cm, {.seed = 42}};

  core::OffloadPlan mixed_plan() {
    core::OffloadPlan plan(catalog.size());
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      plan.set(i, static_cast<std::uint8_t>(i % 3 == 0 ? 2 : 0));
    }
    return plan;
  }

  /// Single-threaded reference tensors keyed by sample id.
  std::map<std::uint64_t, image::Tensor> reference(const core::OffloadPlan& plan,
                                                   std::size_t epoch) {
    std::map<std::uint64_t, image::Tensor> out;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      net::FetchRequest req;
      req.sample_id = i;
      req.epoch = epoch;
      req.directive.prefix_len = plan.prefix(i);
      const auto resp = server.fetch(req);
      auto payload = net::deserialize_sample(resp.payload);
      auto tensor = pipe.run_seeded(std::move(*payload), resp.stage, pipe.size(),
                                    storage::augmentation_seed(42, epoch, i));
      out.emplace(i, std::get<image::Tensor>(std::move(tensor)));
    }
    return out;
  }
};

TEST(DataLoader, DeliversEverySampleExactlyOnce) {
  Fixture f;
  const auto plan = f.mixed_plan();
  DataLoader loader(f.server, f.pipe, plan, f.catalog.size(),
                    {.num_workers = 4, .queue_capacity = 8, .seed = 42, .epoch = 0});
  loader.start();
  std::vector<bool> seen(f.catalog.size(), false);
  std::size_t count = 0;
  while (const auto item = loader.next()) {
    ASSERT_LT(item->sample_id, f.catalog.size());
    EXPECT_FALSE(seen[item->sample_id]) << "duplicate " << item->sample_id;
    seen[item->sample_id] = true;
    ++count;
    EXPECT_EQ(item->tensor.width(), 224);
    EXPECT_EQ(item->tensor.channels(), 3);
  }
  EXPECT_EQ(count, f.catalog.size());
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(DataLoader, TensorsBitIdenticalToSingleThreaded) {
  Fixture f;
  const auto plan = f.mixed_plan();
  const auto reference = f.reference(plan, /*epoch=*/3);
  for (const std::size_t workers : {1u, 4u}) {
    DataLoader loader(f.server, f.pipe, plan, f.catalog.size(),
                      {.num_workers = workers, .queue_capacity = 4, .seed = 42, .epoch = 3});
    loader.start();
    std::size_t count = 0;
    while (const auto item = loader.next()) {
      EXPECT_EQ(item->tensor, reference.at(item->sample_id))
          << "sample " << item->sample_id << " with " << workers << " workers";
      ++count;
    }
    EXPECT_EQ(count, f.catalog.size());
  }
}

TEST(DataLoader, TrafficMatchesResponseSizes) {
  Fixture f;
  const core::OffloadPlan no_off(f.catalog.size());
  DataLoader loader(f.server, f.pipe, no_off, f.catalog.size(),
                    {.num_workers = 3, .queue_capacity = 4, .seed = 42, .epoch = 0});
  loader.start();
  Bytes sum;
  while (const auto item = loader.next()) sum += item->wire_bytes;
  EXPECT_EQ(loader.traffic(), sum);
  // Raw fetches: traffic equals the framed sizes of the *materialised*
  // blobs (the parametric catalog only approximates them).
  Bytes expected;
  for (std::size_t i = 0; i < f.catalog.size(); ++i) {
    expected += Bytes(static_cast<std::int64_t>(f.store.get(i)->size()) +
                      net::kFrameOverheadBytes);
  }
  EXPECT_EQ(sum, expected);
}

TEST(DataLoader, PositionsCoverEpochOrder) {
  Fixture f;
  const core::OffloadPlan no_off(f.catalog.size());
  DataLoader loader(f.server, f.pipe, no_off, f.catalog.size(),
                    {.num_workers = 2, .queue_capacity = 4, .seed = 42, .epoch = 1});
  loader.start();
  const dataset::EpochOrder order(f.catalog.size(), 42, 1);
  while (const auto item = loader.next()) {
    EXPECT_EQ(order.at(item->position), item->sample_id);
  }
}

TEST(DataLoader, OrderedModeDeliversPositionsInOrder) {
  Fixture f;
  const auto plan = f.mixed_plan();
  for (const std::size_t workers : {1u, 4u}) {
    DataLoader loader(f.server, f.pipe, plan, f.catalog.size(),
                      {.num_workers = workers,
                       .queue_capacity = 4,
                       .seed = 42,
                       .epoch = 2,
                       .ordered = true});
    loader.start();
    std::size_t expected = 0;
    while (const auto item = loader.next()) {
      EXPECT_EQ(item->position, expected) << workers << " workers";
      ++expected;
    }
    EXPECT_EQ(expected, f.catalog.size());
  }
}

TEST(DataLoader, OrderedModeTinyBufferCannotDeadlock) {
  // Capacity 1 with 6 workers: the reorder buffer admits the needed
  // position even when nominally full.
  Fixture f;
  const auto plan = f.mixed_plan();
  DataLoader loader(f.server, f.pipe, plan, f.catalog.size(),
                    {.num_workers = 6,
                     .queue_capacity = 1,
                     .seed = 42,
                     .epoch = 0,
                     .ordered = true});
  loader.start();
  std::size_t count = 0;
  while (loader.next()) ++count;
  EXPECT_EQ(count, f.catalog.size());
}

TEST(DataLoader, OrderedContentMatchesUnordered) {
  Fixture f;
  const auto plan = f.mixed_plan();
  const auto reference = f.reference(plan, /*epoch=*/1);
  DataLoader loader(f.server, f.pipe, plan, f.catalog.size(),
                    {.num_workers = 3,
                     .queue_capacity = 4,
                     .seed = 42,
                     .epoch = 1,
                     .ordered = true});
  loader.start();
  while (const auto item = loader.next()) {
    EXPECT_EQ(item->tensor, reference.at(item->sample_id));
  }
}

TEST(DataLoader, TinyQueueDoesNotDeadlock) {
  Fixture f;
  const auto plan = f.mixed_plan();
  DataLoader loader(f.server, f.pipe, plan, f.catalog.size(),
                    {.num_workers = 6, .queue_capacity = 1, .seed = 42, .epoch = 0});
  loader.start();
  std::size_t count = 0;
  while (loader.next()) ++count;
  EXPECT_EQ(count, f.catalog.size());
}

TEST(DataLoader, EarlyDestructionJoinsCleanly) {
  Fixture f;
  const auto plan = f.mixed_plan();
  {
    DataLoader loader(f.server, f.pipe, plan, f.catalog.size(),
                      {.num_workers = 4, .queue_capacity = 2, .seed = 42, .epoch = 0});
    loader.start();
    (void)loader.next();  // consume one item, then abandon the epoch
  }                        // destructor must not hang
  SUCCEED();
}

/// Stalls the fetch of epoch position 0 until the test releases it, so the
/// reorder buffer verifiably fills past queue_capacity with later positions.
class GatedPositionZero final : public net::StorageService {
 public:
  explicit GatedPositionZero(net::StorageService& inner) : inner_(inner) {}

  net::FetchResponse fetch(const net::FetchRequest& request) override {
    if (request.position == 0) {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return released_.load(); });
    }
    return inner_.fetch(request);
  }

  void release() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      released_.store(true);
    }
    cv_.notify_all();
  }

 private:
  net::StorageService& inner_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<bool> released_{false};
};

TEST(DataLoader, ReorderBufferExceedingCapacityDrainsWithoutDeadlock) {
  // The documented "may briefly exceed queue_capacity" path: with capacity 1
  // and position 0 stalled, a later position occupies the buffer's only
  // nominal slot; position 0 must still be admitted on top of it (else the
  // consumer would wait forever), pushing the buffer over capacity.
  Fixture f;
  const auto plan = f.mixed_plan();
  GatedPositionZero gated(f.server);
  MetricsRegistry metrics;
  DataLoader loader(gated, f.pipe, plan, f.catalog.size(),
                    {.num_workers = 3,
                     .queue_capacity = 1,
                     .seed = 42,
                     .epoch = 0,
                     .ordered = true,
                     .metrics = &metrics});
  loader.start();
  // No consumption yet: one of positions 1/2 lands in the buffer, the other
  // worker waits (buffer nominally full, wrong position), position 0 is
  // stalled in its fetch.
  while (loader.reorder_highwater() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gated.release();
  // Position 0 now completes and must be admitted past the full buffer.
  while (loader.reorder_highwater() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::size_t expected = 0;
  while (const auto item = loader.next()) {
    EXPECT_EQ(item->position, expected);
    ++expected;
  }
  EXPECT_EQ(expected, f.catalog.size());
  EXPECT_GT(loader.reorder_highwater(), std::size_t{1});  // exceeded capacity
  EXPECT_EQ(metrics.gauge("sophon_loader_reorder_highwater").value(),
            static_cast<double>(loader.reorder_highwater()));
}

TEST(DataLoader, ReorderHighwaterReportedInUnorderedModeStaysZero) {
  Fixture f;
  const core::OffloadPlan no_off(f.catalog.size());
  MetricsRegistry metrics;
  DataLoader loader(f.server, f.pipe, no_off, f.catalog.size(),
                    {.num_workers = 2,
                     .queue_capacity = 4,
                     .seed = 42,
                     .epoch = 0,
                     .metrics = &metrics});
  loader.start();
  while (loader.next()) {
  }
  EXPECT_EQ(loader.reorder_highwater(), 0u);
  // Pre-registered at construction: scrapes list the gauge even at zero.
  EXPECT_NE(metrics.expose().find("sophon_loader_reorder_highwater 0"), std::string::npos);
}

TEST(DataLoader, RejectsBadConfiguration) {
  Fixture f;
  const core::OffloadPlan plan(f.catalog.size());
  EXPECT_THROW(DataLoader(f.server, f.pipe, plan, 0, {}), ContractViolation);
  EXPECT_THROW(DataLoader(f.server, f.pipe, plan, f.catalog.size(),
                          {.num_workers = 0, .queue_capacity = 2, .seed = 0, .epoch = 0}),
               ContractViolation);
  const core::OffloadPlan wrong(5);
  EXPECT_THROW(DataLoader(f.server, f.pipe, wrong, f.catalog.size(), {}), ContractViolation);
  DataLoader loader(f.server, f.pipe, plan, f.catalog.size(), {});
  EXPECT_THROW((void)loader.next(), ContractViolation);  // start() not called
}

}  // namespace
}  // namespace sophon::loader
