#include "model/gpu_model.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace sophon::model {
namespace {

TEST(GpuModel, Names) {
  EXPECT_EQ(net_kind_name(NetKind::kAlexNet), "AlexNet");
  EXPECT_EQ(net_kind_name(NetKind::kResNet18), "ResNet18");
  EXPECT_EQ(net_kind_name(NetKind::kResNet50), "ResNet50");
  EXPECT_EQ(gpu_kind_name(GpuKind::kRtx6000), "RTX-6000");
  EXPECT_EQ(gpu_kind_name(GpuKind::kV100), "V100");
}

TEST(GpuModel, ComputeIntensityOrdering) {
  // Finding #5's premise: ResNet50 is much heavier than ResNet18, which is
  // heavier than AlexNet — on both GPUs.
  for (const auto gpu : {GpuKind::kV100, GpuKind::kRtx6000}) {
    const auto alex = GpuModel::lookup(NetKind::kAlexNet, gpu);
    const auto r18 = GpuModel::lookup(NetKind::kResNet18, gpu);
    const auto r50 = GpuModel::lookup(NetKind::kResNet50, gpu);
    EXPECT_GT(alex.images_per_second(), r18.images_per_second());
    EXPECT_GT(r18.images_per_second(), 2.0 * r50.images_per_second());
  }
}

TEST(GpuModel, BatchTimeScalesWithBatchSize) {
  const auto m = GpuModel::lookup(NetKind::kResNet18, GpuKind::kV100);
  const auto small = m.batch_time(64);
  const auto large = m.batch_time(256);
  EXPECT_GT(large.value(), small.value());
  // Four times the batch is just under 4x the time (fixed overhead).
  EXPECT_LT(large.value(), 4.0 * small.value());
}

TEST(GpuModel, BatchTimeMatchesThroughput) {
  const auto m = GpuModel::lookup(NetKind::kResNet50, GpuKind::kV100);
  // 256 / 360 img/s plus ~2 ms overhead.
  EXPECT_NEAR(m.batch_time(256).value(), 256.0 / 360.0 + 0.002, 1e-9);
}

TEST(GpuModel, RejectsBadArguments) {
  EXPECT_THROW(GpuModel(NetKind::kAlexNet, GpuKind::kV100, 0.0, Seconds(0.0)),
               ContractViolation);
  const auto m = GpuModel::lookup(NetKind::kAlexNet, GpuKind::kV100);
  EXPECT_THROW((void)m.batch_time(0), ContractViolation);
}

}  // namespace
}  // namespace sophon::model
