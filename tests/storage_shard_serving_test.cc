// End-to-end shard serving: the tentpole's bit-identity guarantee. A fetch
// served from the packed shard must be indistinguishable — to the bit, at
// every prefetch depth and worker count — from one that ran the pipeline
// prefix live, and a corrupted shard entry must fall back to live execution
// rather than ship garbage.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <vector>

#include "loader/loader.h"
#include "net/wire.h"
#include "pipeline/extra_ops.h"
#include "shard/format.h"
#include "shard/pack.h"
#include "storage/dataset_store.h"
#include "storage/server.h"

namespace sophon::storage {
namespace {

class ShardServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sophon_shard_serving_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path shard_path() const { return dir_ / "test.spshrd"; }

  void flip_byte(std::uint64_t offset) const {
    std::fstream f(shard_path(), std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.get(byte);
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(static_cast<char>(byte ^ 0x01));
  }

  std::filesystem::path dir_;
};

struct Fixture {
  explicit Fixture(pipeline::Pipeline pipeline = pipeline::Pipeline::standard())
      : pipe(std::move(pipeline)) {}

  dataset::DatasetProfile profile = [] {
    auto p = dataset::openimages_profile(24);
    p.min_pixels = 6e4;
    p.max_pixels = 2.5e5;
    return p;
  }();
  dataset::Catalog catalog = dataset::Catalog::generate(profile, 42);
  pipeline::Pipeline pipe;
  pipeline::CostModel cm;
  storage::DatasetStore store{catalog, 42, profile.quality};
  storage::StorageServer plain{store, pipe, cm, {.seed = 42}};

  /// Every 3rd sample offloaded at prefix 2 (prefix 1 for a 1-op-deep cut
  /// when the pipeline's deterministic prefix is 1, the shard still serves
  /// the decode stage under it).
  core::OffloadPlan mixed_plan() {
    core::OffloadPlan plan(catalog.size());
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      plan.set(i, static_cast<std::uint8_t>(i % 3 == 0 ? 2 : 0));
    }
    return plan;
  }

  /// Materialise every offloaded sample at `stage` into a shard file.
  shard::MaterializationPlan materialize_offloaded(const core::OffloadPlan& plan,
                                                   std::uint8_t stage) {
    shard::MaterializationPlan mat;
    mat.stage.assign(catalog.size(), 0);
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      if (plan.prefix(i) > 0) {
        mat.stage[i] = stage;
        ++mat.materialized;
      }
    }
    return mat;
  }

  std::map<std::uint64_t, image::Tensor> reference(const core::OffloadPlan& plan,
                                                   std::size_t epoch) {
    std::map<std::uint64_t, image::Tensor> out;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      net::FetchRequest req;
      req.sample_id = i;
      req.epoch = epoch;
      req.directive.prefix_len = plan.prefix(i);
      const auto resp = plain.fetch(req);
      auto payload = net::deserialize_sample(resp.payload);
      auto tensor = pipe.run_seeded(std::move(*payload), resp.stage, pipe.size(),
                                    storage::augmentation_seed(42, epoch, i));
      out.emplace(i, std::get<image::Tensor>(std::move(tensor)));
    }
    return out;
  }
};

TEST_F(ShardServingTest, TensorsBitIdenticalAcrossDepthsAndWorkers) {
  Fixture f;
  const auto plan = f.mixed_plan();
  const auto mat = f.materialize_offloaded(plan, /*stage=*/1);
  ASSERT_TRUE(
      shard::pack_catalog(f.catalog, 42, f.profile.quality, f.pipe, f.cm, mat, shard_path())
          .has_value());
  const auto reader = shard::ShardReader::open(shard_path());
  ASSERT_TRUE(reader.has_value());
  storage::StorageServer sharded{f.store, f.pipe, f.cm, {.seed = 42, .shard = &*reader}};

  const auto reference = f.reference(plan, /*epoch=*/5);
  for (const std::size_t depth : {0u, 4u, 64u}) {
    for (const std::size_t workers : {1u, 4u}) {
      sharded.reset_counters();
      loader::DataLoader::Options options;
      options.num_workers = workers;
      options.queue_capacity = 8;
      options.seed = 42;
      options.epoch = 5;
      options.prefetch.depth = depth;
      loader::DataLoader loader(sharded, f.pipe, plan, f.catalog.size(), options);
      loader.start();
      std::size_t count = 0;
      while (const auto item = loader.next()) {
        EXPECT_EQ(item->tensor, reference.at(item->sample_id))
            << "sample " << item->sample_id << " depth " << depth << " workers " << workers;
        ++count;
      }
      EXPECT_EQ(count, f.catalog.size());
      EXPECT_EQ(sharded.shard_hits(), mat.materialized);
      EXPECT_EQ(sharded.shard_corrupt(), 0u);
    }
  }
}

TEST_F(ShardServingTest, StageExactHitShipsStoredFrameVerbatim) {
  // Fully deterministic validation pipeline, cut exactly at the materialised
  // stage: the response payload must be the stored frame, byte for byte.
  Fixture f{pipeline::validation_pipeline()};
  ASSERT_EQ(f.pipe.deterministic_prefix(), f.pipe.size());
  core::OffloadPlan plan(f.catalog.size());
  for (std::size_t i = 0; i < f.catalog.size(); ++i) plan.set(i, 2);
  const auto mat = f.materialize_offloaded(plan, /*stage=*/2);
  ASSERT_TRUE(
      shard::pack_catalog(f.catalog, 42, f.profile.quality, f.pipe, f.cm, mat, shard_path())
          .has_value());
  const auto reader = shard::ShardReader::open(shard_path());
  ASSERT_TRUE(reader.has_value());
  MetricsRegistry metrics;
  storage::StorageServer sharded{
      f.store, f.pipe, f.cm, {.seed = 42, .metrics = &metrics, .shard = &*reader}};

  for (std::size_t i = 0; i < f.catalog.size(); ++i) {
    net::FetchRequest req;
    req.sample_id = i;
    req.epoch = 3;
    req.directive.prefix_len = 2;
    const auto live = f.plain.fetch(req);
    const auto stored = sharded.fetch(req);
    EXPECT_EQ(stored.payload, live.payload) << "sample " << i;
    EXPECT_EQ(stored.stage, live.stage);
  }
  EXPECT_EQ(sharded.shard_hits(), f.catalog.size());
  EXPECT_EQ(metrics.counter("sophon_shard_hit").value(), f.catalog.size());
  // The shard absorbed the whole prefix: no live CPU was metered for it.
  EXPECT_EQ(sharded.modeled_cpu_time().value(), 0.0);
  EXPECT_GT(f.plain.modeled_cpu_time().value(), 0.0);
}

TEST_F(ShardServingTest, CorruptEntryFallsBackToBitIdenticalLiveExecution) {
  Fixture f;
  const auto plan = f.mixed_plan();
  const auto mat = f.materialize_offloaded(plan, /*stage=*/1);
  ASSERT_TRUE(
      shard::pack_catalog(f.catalog, 42, f.profile.quality, f.pipe, f.cm, mat, shard_path())
          .has_value());
  // Flip one payload bit of the first materialised sample (id 0) on disk.
  {
    const auto pristine = shard::ShardReader::open(shard_path());
    ASSERT_TRUE(pristine.has_value());
    const auto* victim = pristine->find(0);
    ASSERT_NE(victim, nullptr);
    flip_byte(victim->offset + victim->length / 2);
  }
  const auto reader = shard::ShardReader::open(shard_path());
  ASSERT_TRUE(reader.has_value());  // the index is intact
  MetricsRegistry metrics;
  storage::StorageServer sharded{
      f.store, f.pipe, f.cm, {.seed = 42, .metrics = &metrics, .shard = &*reader}};

  const auto reference = f.reference(plan, /*epoch=*/5);
  for (std::size_t i = 0; i < f.catalog.size(); ++i) {
    net::FetchRequest req;
    req.sample_id = i;
    req.epoch = 5;
    req.directive.prefix_len = plan.prefix(i);
    const auto resp = sharded.fetch(req);
    auto payload = net::deserialize_sample(resp.payload);
    ASSERT_TRUE(payload.has_value()) << "sample " << i;
    auto tensor = f.pipe.run_seeded(std::move(*payload), resp.stage, f.pipe.size(),
                                    storage::augmentation_seed(42, 5, i));
    EXPECT_EQ(std::get<image::Tensor>(tensor), reference.at(i)) << "sample " << i;
  }
  EXPECT_EQ(sharded.shard_corrupt(), 1u);
  EXPECT_EQ(sharded.shard_hits(), mat.materialized - 1);
  EXPECT_EQ(metrics.counter("sophon_shard_corrupt").value(), 1u);
  // The corrupt sample's prefix ran live, so its CPU was metered.
  EXPECT_GT(sharded.modeled_cpu_time().value(), 0.0);
}

TEST_F(ShardServingTest, UnmaterializedOffloadedFetchCountsAsMiss) {
  Fixture f;
  const auto plan = f.mixed_plan();
  // Shard holds only sample 0.
  shard::MaterializationPlan mat;
  mat.stage.assign(f.catalog.size(), 0);
  mat.stage[0] = 1;
  mat.materialized = 1;
  ASSERT_TRUE(
      shard::pack_catalog(f.catalog, 42, f.profile.quality, f.pipe, f.cm, mat, shard_path())
          .has_value());
  const auto reader = shard::ShardReader::open(shard_path());
  ASSERT_TRUE(reader.has_value());
  MetricsRegistry metrics;
  storage::StorageServer sharded{
      f.store, f.pipe, f.cm, {.seed = 42, .metrics = &metrics, .shard = &*reader}};

  std::size_t offloaded = 0;
  for (std::size_t i = 0; i < f.catalog.size(); ++i) {
    net::FetchRequest req;
    req.sample_id = i;
    req.directive.prefix_len = plan.prefix(i);
    (void)sharded.fetch(req);
    if (plan.prefix(i) > 0) ++offloaded;
  }
  EXPECT_EQ(sharded.shard_hits(), 1u);
  // Every other fetch — offloaded or not — is a miss; the three buckets
  // partition the fetches exactly.
  EXPECT_EQ(sharded.shard_misses(), f.catalog.size() - 1);
  EXPECT_EQ(sharded.shard_corrupt(), 0u);
  EXPECT_EQ(metrics.counter("sophon_shard_miss").value(), f.catalog.size() - 1);
  EXPECT_GE(offloaded, 1u);
}

}  // namespace
}  // namespace sophon::storage
