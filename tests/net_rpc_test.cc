#include "net/rpc.h"

#include <gtest/gtest.h>

#include "net/wire.h"
#include "pipeline/sample.h"

namespace sophon::net {
namespace {

/// A canned service for channel-level tests: echoes a payload of a size
/// derived from the sample id.
class StubService final : public StorageService {
 public:
  FetchResponse fetch(const FetchRequest& request) override {
    last_request = request;
    FetchResponse response;
    response.sample_id = request.sample_id;
    response.stage = request.directive.prefix_len;
    pipeline::EncodedBlob blob;
    blob.bytes.assign(static_cast<std::size_t>(100 + request.sample_id), 0x5a);
    response.payload = serialize_sample(pipeline::SampleData(std::move(blob)));
    return response;
  }

  FetchRequest last_request;
};

TEST(LoopbackChannel, ForwardsRequestsVerbatim) {
  StubService service;
  LoopbackChannel channel(service);
  FetchRequest request;
  request.sample_id = 9;
  request.epoch = 3;
  request.position = 17;
  request.directive.prefix_len = 2;
  request.directive.compress_quality = 80;
  const auto response = channel.fetch(request);
  EXPECT_EQ(response.sample_id, 9u);
  EXPECT_EQ(service.last_request.epoch, 3u);
  EXPECT_EQ(service.last_request.position, 17u);
  EXPECT_EQ(service.last_request.directive, request.directive);
}

TEST(LoopbackChannel, MetersEveryResponseByte) {
  StubService service;
  LoopbackChannel channel(service);
  Bytes expected;
  for (std::uint64_t id = 0; id < 10; ++id) {
    FetchRequest request;
    request.sample_id = id;
    expected += channel.fetch(request).wire_bytes();
  }
  EXPECT_EQ(channel.traffic(), expected);
  EXPECT_EQ(channel.requests(), 10u);
  // Payload sizes differ per id, so the meter is not just count * constant.
  EXPECT_EQ(expected.count(), 10 * (100 + kFrameOverheadBytes) + 45);
}

TEST(LoopbackChannel, ResetClearsCounters) {
  StubService service;
  LoopbackChannel channel(service);
  FetchRequest request;
  (void)channel.fetch(request);
  channel.reset_counters();
  EXPECT_EQ(channel.traffic().count(), 0);
  EXPECT_EQ(channel.requests(), 0u);
}

TEST(OffloadDirective, EqualityIncludesCompression) {
  OffloadDirective a{2, 0};
  OffloadDirective b{2, 80};
  EXPECT_NE(a, b);
  b.compress_quality = 0;
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sophon::net
