#include "util/json.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace sophon {
namespace {

TEST(Json, ScalarsDump) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd\te").dump(), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(Json(std::string{'\x01'}).dump(), "\"\\u0001\"");
}

TEST(Json, ArrayAndObjectDump) {
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(Json());
  EXPECT_EQ(arr.dump(), "[1,\"two\",null]");

  Json obj = Json::object();
  obj.set("b", 2);
  obj.set("a", 1);
  // Insertion order preserved (deterministic artifacts).
  EXPECT_EQ(obj.dump(), "{\"b\":2,\"a\":1}");
}

TEST(Json, PrettyPrint) {
  Json obj = Json::object();
  obj.set("x", 1);
  EXPECT_EQ(obj.dump(2), "{\n  \"x\": 1\n}");
  EXPECT_EQ(Json::array().dump(2), "[]");
}

TEST(Json, SetOverwritesExistingKey) {
  Json obj = Json::object();
  obj.set("k", 1);
  obj.set("k", 2);
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(obj.at("k").as_int(), 2);
}

TEST(Json, ParseScalars) {
  EXPECT_EQ(*Json::parse("null"), Json());
  EXPECT_EQ(*Json::parse("true"), Json(true));
  EXPECT_EQ(*Json::parse(" -12.5e2 "), Json(-1250.0));
  EXPECT_EQ(*Json::parse("\"hi\\nthere\""), Json("hi\nthere"));
  EXPECT_EQ(*Json::parse("\"\\u0041\""), Json("A"));
}

TEST(Json, ParseUnicodeEscapesToUtf8) {
  EXPECT_EQ(Json::parse("\"\\u00e9\"")->as_string(), "\xc3\xa9");       // é
  EXPECT_EQ(Json::parse("\"\\u20ac\"")->as_string(), "\xe2\x82\xac");  // €
}

TEST(Json, ParseNested) {
  const auto doc = Json::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("a").size(), 3u);
  EXPECT_TRUE(doc->at("a").at(2).at("b").as_bool());
  EXPECT_EQ(doc->at("c").as_string(), "x");
}

TEST(Json, RoundTripProperty) {
  Json obj = Json::object();
  obj.set("name", "sophon");
  obj.set("pi", 3.141592653589793);
  obj.set("big", 1234567890123.0);
  obj.set("neg", -42);
  obj.set("flag", true);
  obj.set("nothing", Json());
  Json arr = Json::array();
  for (int i = 0; i < 20; ++i) arr.push_back(i * 0.1);
  obj.set("values", std::move(arr));

  for (const int indent : {0, 2, 4}) {
    const auto parsed = Json::parse(obj.dump(indent));
    ASSERT_TRUE(parsed.has_value()) << indent;
    EXPECT_EQ(*parsed, obj) << indent;
  }
}

TEST(Json, RejectsMalformed) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("01a").has_value());
  EXPECT_FALSE(Json::parse("1 2").has_value());  // trailing garbage
  EXPECT_FALSE(Json::parse("nul").has_value());
  EXPECT_FALSE(Json::parse("-").has_value());
  EXPECT_FALSE(Json::parse("1.").has_value());
  EXPECT_FALSE(Json::parse("1e").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
}

TEST(Json, TypedAccessorsAreChecked) {
  const Json num(1.5);
  EXPECT_THROW((void)num.as_string(), ContractViolation);
  EXPECT_THROW((void)num.as_bool(), ContractViolation);
  EXPECT_THROW((void)num.as_int(), ContractViolation);  // not integral
  EXPECT_EQ(Json(3.0).as_int(), 3);
  const Json obj = Json::object();
  EXPECT_THROW((void)obj.at("missing"), ContractViolation);
  EXPECT_THROW((void)Json().size(), ContractViolation);
}

}  // namespace
}  // namespace sophon
