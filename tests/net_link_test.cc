#include "net/link.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace sophon::net {
namespace {

TEST(Link, TransferTimeMatchesBandwidth) {
  SimLink link(Bandwidth::mbps(500.0), Seconds(0.0));
  // 62.5 MB at 500 Mbps = 1 second.
  const auto done = link.schedule(Seconds(0.0), Bytes(62'500'000));
  EXPECT_DOUBLE_EQ(done.value(), 1.0);
}

TEST(Link, LatencyAddsAfterLastByte) {
  SimLink link(Bandwidth::mbps(500.0), Seconds::millis(10.0));
  const auto done = link.schedule(Seconds(0.0), Bytes(62'500'000));
  EXPECT_DOUBLE_EQ(done.value(), 1.01);
  // But the link frees up when the last byte leaves, not after latency.
  EXPECT_DOUBLE_EQ(link.free_at().value(), 1.0);
}

TEST(Link, FifoSerialisation) {
  SimLink link(Bandwidth::mbps(8.0), Seconds(0.0));  // 1 MB/s
  const auto first = link.schedule(Seconds(0.0), Bytes(1'000'000));
  EXPECT_DOUBLE_EQ(first.value(), 1.0);
  // Second message ready at t=0 must wait for the first.
  const auto second = link.schedule(Seconds(0.0), Bytes(1'000'000));
  EXPECT_DOUBLE_EQ(second.value(), 2.0);
  // Third message ready at t=5 starts immediately.
  const auto third = link.schedule(Seconds(5.0), Bytes(1'000'000));
  EXPECT_DOUBLE_EQ(third.value(), 6.0);
}

TEST(Link, TrafficAndBusyAccounting) {
  SimLink link(Bandwidth::mbps(8.0), Seconds(0.0));
  link.schedule(Seconds(0.0), Bytes(500'000));
  link.schedule(Seconds(10.0), Bytes(250'000));
  EXPECT_EQ(link.traffic().count(), 750'000);
  EXPECT_DOUBLE_EQ(link.busy_time().value(), 0.75);
}

TEST(Link, ZeroSizeMessage) {
  SimLink link(Bandwidth::mbps(100.0), Seconds::millis(1.0));
  const auto done = link.schedule(Seconds(2.0), Bytes(0));
  EXPECT_DOUBLE_EQ(done.value(), 2.001);
  EXPECT_EQ(link.traffic().count(), 0);
}

TEST(Link, ResetClearsState) {
  SimLink link(Bandwidth::mbps(8.0), Seconds(0.0));
  link.schedule(Seconds(0.0), Bytes(1'000'000));
  link.reset();
  EXPECT_EQ(link.traffic().count(), 0);
  EXPECT_DOUBLE_EQ(link.busy_time().value(), 0.0);
  const auto done = link.schedule(Seconds(0.0), Bytes(1'000'000));
  EXPECT_DOUBLE_EQ(done.value(), 1.0);
}

TEST(Link, RejectsBadConstruction) {
  EXPECT_THROW(SimLink(Bandwidth::mbps(0.0), Seconds(0.0)), ContractViolation);
  EXPECT_THROW(SimLink(Bandwidth::mbps(1.0), Seconds(-1.0)), ContractViolation);
}

TEST(Link, RejectsNegativePayload) {
  SimLink link(Bandwidth::mbps(1.0), Seconds(0.0));
  EXPECT_THROW((void)link.schedule(Seconds(0.0), Bytes(-1)), ContractViolation);
}

}  // namespace
}  // namespace sophon::net
