#include <gtest/gtest.h>

#include "core/decision.h"
#include "core/profiler.h"
#include "dataset/catalog.h"
#include "pipeline/pipeline.h"
#include "sim/trainer.h"
#include "util/check.h"

namespace sophon::core {
namespace {

struct Fixture {
  dataset::Catalog catalog = dataset::Catalog::generate(dataset::openimages_profile(4000), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  std::vector<SampleProfile> profiles = profile_stage2(catalog, pipe, cm);
  sim::ClusterConfig cluster = [] {
    sim::ClusterConfig c;
    c.bandwidth = Bandwidth::mbps(100.0);
    c.storage_cores = 1;
    return c;
  }();
  Seconds t_g = Seconds(4.0);

  /// 80% of samples primary on node 0 of 4 — heavy skew.
  storage::ShardMap skewed() const {
    std::vector<std::uint16_t> assignment(catalog.size());
    Rng rng(5);
    for (auto& node : assignment) {
      node = static_cast<std::uint16_t>(rng.bernoulli(0.8) ? 0 : rng.uniform_int(1, 3));
    }
    return storage::ShardMap::explicit_map(std::move(assignment), 4);
  }
};

TEST(ReplicaMap, HoldsDistinctNodesPerSample) {
  const auto primary = storage::ShardMap::hashed(500, 6, 1);
  const auto replicas = storage::ReplicaMap::replicated(primary, 3, 7);
  EXPECT_EQ(replicas.size(), 500u);
  EXPECT_EQ(replicas.replication(), 3);
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const auto holders = replicas.replicas_of(i);
    ASSERT_EQ(holders.size(), 3u);
    EXPECT_EQ(holders[0], primary.node_of(i));  // primary first
    EXPECT_NE(holders[0], holders[1]);
    EXPECT_NE(holders[0], holders[2]);
    EXPECT_NE(holders[1], holders[2]);
    for (const auto node : holders) EXPECT_LT(node, 6);
  }
}

TEST(ReplicaMap, ReplicationOneIsJustThePrimary) {
  const auto primary = storage::ShardMap::hashed(100, 4, 2);
  const auto replicas = storage::ReplicaMap::replicated(primary, 1, 7);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(replicas.replicas_of(i)[0], primary.node_of(i));
  }
}

TEST(ReplicaMap, RejectsImpossibleReplication) {
  const auto primary = storage::ShardMap::hashed(10, 3, 1);
  EXPECT_THROW((void)storage::ReplicaMap::replicated(primary, 4, 7), ContractViolation);
  EXPECT_THROW((void)storage::ReplicaMap::replicated(primary, 0, 7), ContractViolation);
}

TEST(ReplicatedDecision, ReplicationOneMatchesShardedEngine) {
  Fixture f;
  const auto shards = f.skewed();
  const auto replicas = storage::ReplicaMap::replicated(shards, 1, 7);
  const auto sharded = decide_offloading_sharded(f.profiles, shards, f.cluster, f.t_g);
  const auto replicated = decide_offloading_replicated(f.profiles, replicas, f.cluster, f.t_g);
  EXPECT_EQ(replicated.offloaded, sharded.offloaded);
  EXPECT_NEAR(replicated.final_cost.predicted_epoch_time().value(),
              sharded.final_cost.predicted_epoch_time().value(), 1e-9);
}

TEST(ReplicatedDecision, ReplicationNeutralisesSkew) {
  Fixture f;
  // Slow storage cores so the hot node saturates well before the candidate
  // list runs out — the regime where replica choice matters.
  f.cluster.storage_core_speed = 0.3;
  const auto shards = f.skewed();
  const auto r1 = decide_offloading_replicated(
      f.profiles, storage::ReplicaMap::replicated(shards, 1, 7), f.cluster, f.t_g);
  const auto r3 = decide_offloading_replicated(
      f.profiles, storage::ReplicaMap::replicated(shards, 3, 7), f.cluster, f.t_g);
  // With three replica choices the engine must offload strictly more and
  // finish faster than when pinned to the skewed primary.
  EXPECT_GT(r3.offloaded, r1.offloaded);
  EXPECT_LT(r3.final_cost.predicted_epoch_time().value(),
            r1.final_cost.predicted_epoch_time().value());
}

TEST(ReplicatedDecision, ExecutionNodesAreValidReplicaHolders) {
  Fixture f;
  const auto shards = f.skewed();
  const auto replicas = storage::ReplicaMap::replicated(shards, 2, 7);
  const auto result = decide_offloading_replicated(f.profiles, replicas, f.cluster, f.t_g);
  for (std::size_t i = 0; i < f.profiles.size(); ++i) {
    if (result.plan.prefix(i) == 0) continue;
    const auto chosen = result.execution_nodes.node_of(i);
    bool is_holder = false;
    for (const auto node : replicas.replicas_of(i)) {
      if (node == chosen) is_holder = true;
    }
    EXPECT_TRUE(is_holder) << "sample " << i << " routed to non-holder " << chosen;
  }
}

TEST(ReplicatedDecision, SimulatorAgreesWithPrediction) {
  // Route the replicated plan through the sharded DES using the execution
  // map; the simulated per-node busy time must match the engine's ledger.
  Fixture f;
  const auto shards = f.skewed();
  const auto replicas = storage::ReplicaMap::replicated(shards, 3, 7);
  const auto result = decide_offloading_replicated(f.profiles, replicas, f.cluster, f.t_g);
  ASSERT_GT(result.offloaded, 0u);

  const auto flow = [&](std::size_t idx) {
    const auto& meta = f.catalog.sample(idx);
    const std::size_t prefix = result.plan.prefix(idx);
    sim::SampleFlow fl;
    fl.storage_cpu = prefix > 0 ? f.pipe.prefix_cost(meta.raw, prefix, f.cm) : Seconds(0.0);
    fl.wire = Bytes(f.profiles[idx].stage_sizes[prefix].count());
    fl.compute_cpu = f.pipe.suffix_cost(meta.raw, prefix, f.cm);
    return fl;
  };
  const auto stats = sim::simulate_epoch_sharded(f.catalog.size(), flow, result.execution_nodes,
                                                 f.cluster, Seconds::millis(85.0), 42, 0);
  ASSERT_EQ(stats.node_cpu_busy.size(), result.node_cpu.size());
  for (std::size_t n = 0; n < result.node_cpu.size(); ++n) {
    EXPECT_NEAR(stats.node_cpu_busy[n].value(), result.node_cpu[n].value(), 1e-6);
  }
}

}  // namespace
}  // namespace sophon::core
