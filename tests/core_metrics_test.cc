#include "core/metrics.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace sophon::core {
namespace {

TEST(ThroughputProfile, BottleneckIsTheSlowestResource) {
  ThroughputProfile p{100.0, 50.0, 200.0};
  EXPECT_EQ(p.bottleneck(), Bottleneck::kIo);
  EXPECT_TRUE(p.io_bound());

  p = {40.0, 50.0, 200.0};
  EXPECT_EQ(p.bottleneck(), Bottleneck::kGpu);
  EXPECT_FALSE(p.io_bound());

  p = {100.0, 90.0, 60.0};
  EXPECT_EQ(p.bottleneck(), Bottleneck::kCpu);
}

TEST(ThroughputProfile, TieBreaksTowardGpu) {
  const ThroughputProfile p{50.0, 50.0, 50.0};
  EXPECT_EQ(p.bottleneck(), Bottleneck::kGpu);
}

TEST(ThroughputProfile, RejectsNonPositive) {
  const ThroughputProfile p{0.0, 1.0, 1.0};
  EXPECT_THROW((void)p.bottleneck(), ContractViolation);
}

TEST(BottleneckName, AllNamed) {
  EXPECT_EQ(bottleneck_name(Bottleneck::kGpu), "GPU");
  EXPECT_EQ(bottleneck_name(Bottleneck::kIo), "IO");
  EXPECT_EQ(bottleneck_name(Bottleneck::kCpu), "CPU");
}

TEST(SampleProfile, EfficiencyDefinition) {
  SampleProfile p;
  p.min_stage = 2;
  p.reduction = Bytes(100'000);
  p.prefix_time = Seconds(0.01);
  EXPECT_DOUBLE_EQ(p.efficiency(), 1e7);
  EXPECT_TRUE(p.benefits());
}

TEST(SampleProfile, NoBenefitMeansZeroEfficiency) {
  SampleProfile p;
  p.min_stage = 0;
  p.reduction = Bytes(0);
  p.prefix_time = Seconds(0.0);
  EXPECT_DOUBLE_EQ(p.efficiency(), 0.0);
  EXPECT_FALSE(p.benefits());
}

TEST(EpochCostVector, PredominantAndNetBound) {
  EpochCostVector v{Seconds(10.0), Seconds(20.0), Seconds(5.0), Seconds(100.0)};
  EXPECT_DOUBLE_EQ(v.predominant().value(), 100.0);
  EXPECT_TRUE(v.net_predominant());
  EXPECT_DOUBLE_EQ(v.predicted_epoch_time().value(), 100.0);

  v.t_cs = Seconds(100.0);  // tie is NOT predominant (strict)
  EXPECT_FALSE(v.net_predominant());

  v.t_cs = Seconds(150.0);
  EXPECT_FALSE(v.net_predominant());
  EXPECT_DOUBLE_EQ(v.predominant().value(), 150.0);
}

}  // namespace
}  // namespace sophon::core
