#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "cache/lru.h"
#include "loader/loader.h"
#include "net/wire.h"
#include "prefetch/metrics.h"
#include "storage/dataset_store.h"
#include "storage/server.h"

namespace sophon::loader {
namespace {

struct Fixture {
  dataset::DatasetProfile profile = [] {
    auto p = dataset::openimages_profile(24);
    p.min_pixels = 6e4;
    p.max_pixels = 2.5e5;
    return p;
  }();
  dataset::Catalog catalog = dataset::Catalog::generate(profile, 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  storage::DatasetStore store{catalog, 42, profile.quality};
  storage::StorageServer server{store, pipe, cm, {.seed = 42}};

  core::OffloadPlan mixed_plan() {
    core::OffloadPlan plan(catalog.size());
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      plan.set(i, static_cast<std::uint8_t>(i % 3 == 0 ? 2 : 0));
    }
    return plan;
  }

  std::map<std::uint64_t, image::Tensor> reference(const core::OffloadPlan& plan,
                                                   std::size_t epoch) {
    std::map<std::uint64_t, image::Tensor> out;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      net::FetchRequest req;
      req.sample_id = i;
      req.epoch = epoch;
      req.directive.prefix_len = plan.prefix(i);
      const auto resp = server.fetch(req);
      auto payload = net::deserialize_sample(resp.payload);
      auto tensor = pipe.run_seeded(std::move(*payload), resp.stage, pipe.size(),
                                    storage::augmentation_seed(42, epoch, i));
      out.emplace(i, std::get<image::Tensor>(std::move(tensor)));
    }
    return out;
  }
};

/// Fails the first fetch of every offloaded sample with a transient error:
/// whichever side tries first — prefetcher or worker — eats the failure and
/// the retry (prefetch fallback or degradation ladder) must still deliver.
class FirstAttemptFails final : public net::StorageService {
 public:
  explicit FirstAttemptFails(net::StorageService& inner) : inner_(inner) {}

  net::FetchResponse fetch(const net::FetchRequest& request) override {
    if (request.directive.prefix_len > 0) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (failed_once_.insert(request.sample_id).second) {
        throw net::FetchError(net::FetchError::Kind::kTransient, "induced first failure");
      }
    }
    return inner_.fetch(request);
  }

 private:
  net::StorageService& inner_;
  std::mutex mutex_;
  std::set<std::uint64_t> failed_once_;
};

DataLoader::Options with_prefetch(std::size_t workers, std::size_t depth) {
  DataLoader::Options options;
  options.num_workers = workers;
  options.queue_capacity = 8;
  options.seed = 42;
  options.epoch = 5;
  options.prefetch.depth = depth;
  return options;
}

// The determinism satellite: byte-identical tensors across prefetch off,
// depth 4, and depth 64, each at 1 and 4 workers.
TEST(LoaderPrefetch, TensorsBitIdenticalAcrossDepthsAndWorkers) {
  Fixture f;
  const auto plan = f.mixed_plan();
  const auto reference = f.reference(plan, /*epoch=*/5);
  for (const std::size_t depth : {0u, 4u, 64u}) {
    for (const std::size_t workers : {1u, 4u}) {
      DataLoader loader(f.server, f.pipe, plan, f.catalog.size(),
                        with_prefetch(workers, depth));
      loader.start();
      std::size_t count = 0;
      while (const auto item = loader.next()) {
        EXPECT_EQ(item->tensor, reference.at(item->sample_id))
            << "sample " << item->sample_id << " depth " << depth << " workers " << workers;
        ++count;
      }
      EXPECT_EQ(count, f.catalog.size()) << "depth " << depth << " workers " << workers;
    }
  }
}

TEST(LoaderPrefetch, DeliversEverySampleExactlyOnceWithSameTraffic) {
  Fixture f;
  const auto plan = f.mixed_plan();
  Bytes demand_traffic;
  {
    DataLoader loader(f.server, f.pipe, plan, f.catalog.size(), with_prefetch(4, 0));
    loader.start();
    while (loader.next()) {
    }
    demand_traffic = loader.traffic();
    EXPECT_FALSE(loader.prefetch_stats().has_value());
  }
  DataLoader loader(f.server, f.pipe, plan, f.catalog.size(), with_prefetch(4, 8));
  loader.start();
  std::vector<bool> seen(f.catalog.size(), false);
  std::size_t count = 0;
  while (const auto item = loader.next()) {
    EXPECT_FALSE(seen[item->sample_id]);
    seen[item->sample_id] = true;
    ++count;
  }
  EXPECT_EQ(count, f.catalog.size());
  // Prefetching must not move a byte more than demand fetching did.
  EXPECT_EQ(loader.traffic(), demand_traffic);
  const auto stats = loader.prefetch_stats();
  ASSERT_TRUE(stats.has_value());
  // Every sample came from exactly one fetch: staged hits plus worker
  // demand fetches (failed/skipped/consumed positions) cover the epoch.
  EXPECT_EQ(stats->issued, stats->hits + stats->cancelled + stats->failed);
  EXPECT_GT(stats->hits, 0u);
}

TEST(LoaderPrefetch, FailedPrefetchFallsBackSilently) {
  Fixture f;
  FirstAttemptFails flaky(f.server);
  const auto plan = f.mixed_plan();
  const auto reference = f.reference(plan, /*epoch=*/5);
  MetricsRegistry metrics;
  auto options = with_prefetch(2, 16);
  options.metrics = &metrics;
  DataLoader loader(flaky, f.pipe, plan, f.catalog.size(), options);
  loader.start();
  std::size_t count = 0;
  std::size_t offloaded = 0;
  while (const auto item = loader.next()) {
    EXPECT_EQ(item->tensor, reference.at(item->sample_id));
    ++count;
    if (plan.prefix(item->sample_id) > 0) ++offloaded;
  }
  EXPECT_EQ(count, f.catalog.size());
  const auto stats = loader.prefetch_stats();
  ASSERT_TRUE(stats.has_value());
  // Each offloaded sample's one induced failure was eaten exactly once:
  // either by the scheduler (silent fallback) or by a worker (degradation).
  EXPECT_EQ(stats->failed + loader.degraded_samples(), offloaded);
}

TEST(LoaderPrefetch, CacheResidentSamplesAreNotPrefetched) {
  Fixture f;
  const core::OffloadPlan no_off(f.catalog.size());
  cache::LruCache cache(Bytes::mib(64));
  for (std::uint64_t id = 0; id < f.catalog.size(); id += 2) {
    cache.access(id, Bytes(1000));
  }
  auto options = with_prefetch(2, 8);
  options.prefetch.cache = &cache;
  DataLoader loader(f.server, f.pipe, no_off, f.catalog.size(), options);
  loader.start();
  std::size_t count = 0;
  while (loader.next()) ++count;
  EXPECT_EQ(count, f.catalog.size());
  const auto stats = loader.prefetch_stats();
  ASSERT_TRUE(stats.has_value());
  // The even ids are cache-resident: the scheduler must leave them to the
  // demand path (which would serve them locally in a full system).
  EXPECT_EQ(stats->skipped_cached, f.catalog.size() / 2);
  EXPECT_LE(stats->issued, f.catalog.size() / 2);
}

TEST(LoaderPrefetch, OrderedModeWithPrefetchStaysInOrder) {
  Fixture f;
  const auto plan = f.mixed_plan();
  auto options = with_prefetch(4, 8);
  options.ordered = true;
  DataLoader loader(f.server, f.pipe, plan, f.catalog.size(), options);
  loader.start();
  std::size_t expected = 0;
  while (const auto item = loader.next()) {
    EXPECT_EQ(item->position, expected);
    ++expected;
  }
  EXPECT_EQ(expected, f.catalog.size());
}

TEST(LoaderPrefetch, EarlyDestructionCancelsCleanly) {
  Fixture f;
  const auto plan = f.mixed_plan();
  {
    DataLoader loader(f.server, f.pipe, plan, f.catalog.size(), with_prefetch(4, 16));
    loader.start();
    (void)loader.next();  // abandon mid-epoch with fetches staged/in flight
  }                        // destructor must cancel the scheduler, not hang
  SUCCEED();
}

TEST(LoaderPrefetch, MetricsReportHitsAndDepth) {
  Fixture f;
  const auto plan = f.mixed_plan();
  MetricsRegistry metrics;
  auto options = with_prefetch(2, 8);
  options.metrics = &metrics;
  DataLoader loader(f.server, f.pipe, plan, f.catalog.size(), options);
  loader.start();
  while (loader.next()) {
  }
  const auto stats = loader.prefetch_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(metrics.counter(prefetch::kHits).value(), stats->hits);
  EXPECT_EQ(metrics.counter(prefetch::kIssued).value(), stats->issued);
  EXPECT_EQ(metrics.histogram(prefetch::kLeadSeconds).count(), stats->hits);
}

}  // namespace
}  // namespace sophon::loader
