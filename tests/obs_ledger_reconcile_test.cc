// The tentpole acceptance tests for the traffic ledger: every byte the link
// counter sees must be attributed to exactly one cause.
//
// Three angles:
//  - the DES adaptive loop, with injected faults, retries, degradation and a
//    mid-run replan — every epoch boundary must reconcile byte-exactly;
//  - the real threaded fetch path (loader workers + prefetch scheduler +
//    resilience + shard-backed server with a corrupted entry), reconciled
//    against a wire meter sitting where the bytes actually arrive;
//  - a shard ablation A/B pair, where `traffic-diff` must attribute the
//    traffic drop to shard-hit bytes displacing demand bytes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>

#include "core/adapt/loop.h"
#include "loader/loader.h"
#include "net/fault.h"
#include "net/resilience.h"
#include "obs/ledger.h"
#include "shard/format.h"
#include "shard/pack.h"
#include "storage/dataset_store.h"
#include "storage/server.h"

namespace sophon::obs {
namespace {

constexpr auto kDemandIdx = static_cast<std::size_t>(TrafficCause::kDemand);
constexpr auto kRetryIdx = static_cast<std::size_t>(TrafficCause::kRetry);
constexpr auto kShardHitIdx = static_cast<std::size_t>(TrafficCause::kShardHit);

TEST(LedgerSimReconciliation, ByteExactAcrossFaultsRetriesAndAMidRunReplan) {
  // 600 samples at 8 Gbps: the greedy offloads nothing up front, so the
  // bandwidth collapse below leaves it the most to re-decide — the scenario
  // the adapt-loop tests already pin as producing exactly one replan.
  const auto catalog = dataset::Catalog::generate(dataset::openimages_profile(600), 42);
  const auto pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  sim::ClusterConfig planned;
  planned.bandwidth = Bandwidth::mbps(8000.0);

  net::FaultProfile fault_profile;
  fault_profile.transient_fail_prob = 0.05;
  fault_profile.permanent_fail_prob = 0.01;
  fault_profile.corrupt_prob = 0.02;
  fault_profile.seed = 7;
  const net::FaultInjector faults(fault_profile);

  MetricsRegistry metrics;
  TrafficLedger ledger({.top_k = 16, .metrics = &metrics});
  core::adapt::RunOptions options;
  options.epochs = 6;
  options.adapt = true;
  options.faults = &faults;
  options.retry.sleep = false;
  // Bandwidth collapses at epoch 3; the adaptive loop must replan, and the
  // ledger must keep reconciling across the plan switch.
  options.bandwidth_at = [](std::size_t epoch) {
    return epoch >= 3 ? Bandwidth::mbps(250.0) : Bandwidth::mbps(8000.0);
  };
  options.telemetry.metrics = &metrics;
  options.telemetry.ledger = &ledger;

  const auto result = core::adapt::run_adaptive(catalog, pipe, cm, planned, Seconds(1.0), options);
  ASSERT_EQ(result.rows.size(), 6u);
  ASSERT_GT(result.replans, 0u) << "scenario must actually replan mid-run";

  const LedgerExport exported = ledger.export_state();
  ASSERT_EQ(exported.epochs.size(), 6u);
  std::int64_t link_sum = 0;
  std::set<std::uint64_t> generations;
  for (std::size_t i = 0; i < exported.epochs.size(); ++i) {
    const LedgerEpochRow& row = exported.epochs[i];
    // The hard invariant: every epoch boundary closes byte-exactly, faults,
    // retries, degradations and the replan included.
    EXPECT_EQ(row.unattributed_bytes, 0) << "epoch " << i;
    EXPECT_EQ(row.link_bytes, result.rows[i].traffic.count()) << "epoch " << i;
    EXPECT_EQ(row.attributed_bytes, row.link_bytes) << "epoch " << i;
    // Plans produced by decide_offloading carry a traffic forecast.
    EXPECT_GE(row.predicted_bytes, 0) << "epoch " << i;
    EXPECT_GE(row.baseline_bytes, 0) << "epoch " << i;
    EXPECT_GE(row.baseline_bytes, row.predicted_bytes) << "epoch " << i;
    link_sum += row.link_bytes;
    generations.insert(row.plan_generation);
  }
  EXPECT_GE(generations.size(), 2u) << "epoch rows must span both plan generations";
  EXPECT_EQ(exported.total(), link_sum);
  EXPECT_EQ(exported.unattributed_bytes, 0);
  // The fault profile has corrupt responses: retry bytes must be visible.
  EXPECT_GT(exported.cause_bytes[kRetryIdx], 0);
  EXPECT_GT(exported.cause_bytes[kDemandIdx], 0);
  EXPECT_EQ(metrics.gauge("sophon_ledger_unattributed_bytes").value(), 0.0);
  EXPECT_EQ(metrics.gauge("sophon_ledger_attributed_bytes").value(),
            static_cast<double>(link_sum));
}

struct ThreadedFixture {
  explicit ThreadedFixture(std::size_t samples = 24)
      : profile([samples] {
          auto p = dataset::openimages_profile(samples);
          p.min_pixels = 6e4;
          p.max_pixels = 2.5e5;
          return p;
        }()),
        catalog(dataset::Catalog::generate(profile, 42)) {}

  dataset::DatasetProfile profile;
  dataset::Catalog catalog;
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  storage::DatasetStore store{catalog, 42, profile.quality};

  core::OffloadPlan mixed_plan() {
    core::OffloadPlan plan(catalog.size());
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      plan.set(i, static_cast<std::uint8_t>(i % 3 == 0 ? 2 : 0));
    }
    return plan;
  }

  shard::MaterializationPlan materialize_offloaded(const core::OffloadPlan& plan,
                                                   std::uint8_t stage) {
    shard::MaterializationPlan mat;
    mat.stage.assign(catalog.size(), 0);
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      if (plan.prefix(i) > 0) {
        mat.stage[i] = stage;
        ++mat.materialized;
      }
    }
    return mat;
  }

  net::RetryPolicy retry_policy() {
    net::RetryPolicy policy;
    policy.max_attempts = 4;
    policy.initial_backoff = Seconds::millis(0.1);
    policy.sleep = false;
    policy.seed = 42;
    return policy;
  }
};

TEST(LedgerThreadedReconciliation, MatchesTheWireMeterAcrossFaultsPrefetchAndShards) {
  // 48 samples: enough offloaded samples that the chosen fault seed yields
  // corrupt arrivals, degradations AND clean offloaded fetches.
  ThreadedFixture f(48);
  const auto plan = f.mixed_plan();
  const auto mat = f.materialize_offloaded(plan, /*stage=*/1);
  const auto shard_path = std::filesystem::temp_directory_path() /
                          ("sophon_ledger_reconcile_" + std::to_string(::getpid()) + ".spshrd");
  ASSERT_TRUE(
      shard::pack_catalog(f.catalog, 42, f.profile.quality, f.pipe, f.cm, mat, shard_path)
          .has_value());

  net::FaultProfile fault_profile;
  fault_profile.transient_fail_prob = 0.08;
  fault_profile.corrupt_prob = 0.2;
  fault_profile.permanent_fail_prob = 0.15;
  fault_profile.offload_only = true;  // the raw degradation path stays alive
  fault_profile.seed = 7;
  const net::FaultInjector faults(fault_profile);
  constexpr std::uint32_t kMaxAttempts = 4;

  // Corrupt-arrived responses are what the ledger books as retry bytes; the
  // seed must produce at least one.
  std::size_t expected_corrupt_arrivals = 0;
  for (std::size_t i = 0; i < f.catalog.size(); ++i) {
    if (plan.prefix(i) == 0) continue;
    for (std::uint32_t attempt = 0; attempt < kMaxAttempts; ++attempt) {
      const auto kind = faults.fetch_fault(i, /*epoch=*/0, attempt, /*offloaded=*/true);
      if (kind == net::FaultKind::kCorrupt) ++expected_corrupt_arrivals;
      if (kind == net::FaultKind::kNone || kind == net::FaultKind::kPermanent) break;
    }
  }
  ASSERT_GT(expected_corrupt_arrivals, 0u);

  // Pick a materialized sample whose (deterministic) fault sequence lets the
  // offloaded fetch succeed — corrupting *its* shard entry guarantees the
  // run exercises shard-corrupt-refetch instead of degrading the victim to a
  // raw fallback before the shard is ever consulted.
  const auto offloaded_fetch_succeeds = [&](std::uint64_t sample) {
    for (std::uint32_t attempt = 0; attempt < kMaxAttempts; ++attempt) {
      const auto kind = faults.fetch_fault(sample, /*epoch=*/0, attempt, /*offloaded=*/true);
      if (kind == net::FaultKind::kNone) return true;
      if (kind == net::FaultKind::kPermanent) return false;
    }
    return false;  // exhausted
  };
  std::uint64_t victim_id = f.catalog.size();
  std::size_t expected_degraded = 0;
  for (std::size_t i = 0; i < f.catalog.size(); ++i) {
    if (plan.prefix(i) == 0) continue;
    if (offloaded_fetch_succeeds(i)) {
      if (victim_id == f.catalog.size()) victim_id = i;
    } else {
      ++expected_degraded;
    }
  }
  ASSERT_LT(victim_id, f.catalog.size()) << "no offloaded sample survives its fault sequence";
  // The seed must make the scenario interesting: at least one offloaded
  // sample degrades to the raw fallback.
  ASSERT_GT(expected_degraded, 0u);

  // Flip one payload bit of the victim's shard entry so the server's crc
  // check fires and re-serves it live (provenance shard-corrupt).
  {
    const auto pristine = shard::ShardReader::open(shard_path);
    ASSERT_TRUE(pristine.has_value());
    const auto* victim = pristine->find(victim_id);
    ASSERT_NE(victim, nullptr);
    std::fstream file(shard_path, std::ios::binary | std::ios::in | std::ios::out);
    const auto offset = static_cast<std::streamoff>(victim->offset + victim->length / 2);
    file.seekg(offset);
    char byte = 0;
    file.get(byte);
    file.seekp(offset);
    file.put(static_cast<char>(byte ^ 0x01));
  }
  const auto reader = shard::ShardReader::open(shard_path);
  ASSERT_TRUE(reader.has_value());

  MetricsRegistry metrics;
  TrafficLedger ledger({.top_k = 16, .metrics = &metrics});
  {
    storage::StorageServer server{f.store, f.pipe, f.cm,
                                  {.seed = 42, .metrics = &metrics, .shard = &*reader}};
    net::FaultyStorageService faulty(server, faults);
    // The meter sits between the fault injector and the resilience layer, so
    // corrupt responses are counted at the size that actually crossed the
    // wire — the ground truth the ledger must match.
    net::MeteringStorageService meter(faulty);
    net::ResilientStorageService resilient(meter, f.retry_policy(), &metrics, &ledger);

    loader::DataLoader::Options options;
    options.num_workers = 3;
    options.queue_capacity = 8;
    options.seed = 42;
    options.epoch = 0;
    options.metrics = &metrics;
    options.ledger = &ledger;
    options.prefetch.depth = 8;
    options.prefetch.deprioritize_offloaded = false;
    options.prefetch.deprioritize_below = Bytes(0);
    loader::DataLoader loader(resilient, f.pipe, plan, f.catalog.size(), options);
    loader.start();
    std::size_t count = 0;
    while (loader.next()) ++count;
    ASSERT_EQ(count, f.catalog.size());

    // All causes the scenario provokes must be represented...
    EXPECT_GT(ledger.total(TrafficCause::kRetry).count(), 0);
    EXPECT_GT(ledger.total(TrafficCause::kRawFallback).count(), 0);
    EXPECT_GT(ledger.total(TrafficCause::kShardHit).count(), 0);
    EXPECT_GT(ledger.total(TrafficCause::kShardCorruptRefetch).count(), 0);
    EXPECT_GT(ledger.total(TrafficCause::kPrefetch).count() +
                  ledger.total(TrafficCause::kPrefetchWasted).count(),
              0);
    // ...and the partition must close byte-exactly against the meter: every
    // response that arrived client-side is attributed to exactly one cause.
    const LedgerReconciliation rec = ledger.reconcile(meter.traffic());
    EXPECT_TRUE(rec.exact()) << "unattributed " << rec.unattributed_bytes << " B of "
                             << rec.link_bytes << " (ledger " << rec.ledger_bytes << ")";
    ledger.end_epoch(0, meter.traffic(), /*plan_generation=*/0);
    EXPECT_EQ(metrics.gauge("sophon_ledger_unattributed_bytes").value(), 0.0);
  }
  std::filesystem::remove(shard_path);
}

/// One fault-free loader epoch into `ledger`; returns the metered wire total.
Bytes run_ledgered_epoch(ThreadedFixture& f, const core::OffloadPlan& plan,
                         const shard::ShardReader* shard, TrafficLedger& ledger) {
  storage::StorageServer server{f.store, f.pipe, f.cm, {.seed = 42, .shard = shard}};
  net::MeteringStorageService meter(server);
  loader::DataLoader::Options options;
  options.num_workers = 2;
  options.queue_capacity = 8;
  options.seed = 42;
  options.epoch = 0;
  options.ledger = &ledger;
  // §6 selective compression rides only on offloaded requests, so the raw
  // baseline run is untouched while offloaded payloads ship re-encoded.
  options.compress_quality = 60;
  loader::DataLoader loader(meter, f.pipe, plan, f.catalog.size(), options);
  loader.start();
  std::size_t count = 0;
  while (loader.next()) ++count;
  EXPECT_EQ(count, f.catalog.size());
  EXPECT_TRUE(ledger.reconcile(meter.traffic()).exact());
  return meter.traffic();
}

TEST(LedgerTrafficDiff, ShardAblationPairAttributesTheDropToShardHits) {
  ThreadedFixture f;
  // Run A: no offloading, no shard — every byte is a raw demand fetch.
  TrafficLedger ledger_a;
  const Bytes traffic_a =
      run_ledgered_epoch(f, core::OffloadPlan(f.catalog.size()), nullptr, ledger_a);

  // Run B: offloaded prefixes served from a materialized shard (stage 1,
  // the deterministic prefix — the pack contract forbids crossing the random
  // crop). The server finishes op 2 live and re-compresses the post-crop
  // image, so offloaded samples cross the wire smaller than their raw blobs.
  const auto plan = f.mixed_plan();
  const auto mat = f.materialize_offloaded(plan, /*stage=*/1);
  const auto shard_path = std::filesystem::temp_directory_path() /
                          ("sophon_ledger_diff_" + std::to_string(::getpid()) + ".spshrd");
  ASSERT_TRUE(
      shard::pack_catalog(f.catalog, 42, f.profile.quality, f.pipe, f.cm, mat, shard_path)
          .has_value());
  const auto reader = shard::ShardReader::open(shard_path);
  ASSERT_TRUE(reader.has_value());
  TrafficLedger ledger_b;
  const Bytes traffic_b = run_ledgered_epoch(f, plan, &*reader, ledger_b);
  std::filesystem::remove(shard_path);

  ASSERT_LT(traffic_b.count(), traffic_a.count()) << "offloading must save traffic";

  const LedgerDiff diff = diff_ledgers(ledger_a.export_state(), ledger_b.export_state());
  EXPECT_EQ(diff.total_delta(), traffic_b.count() - traffic_a.count());
  std::int64_t demand_delta = 0;
  std::int64_t shard_hit_delta = 0;
  for (const LedgerDiffRow& row : diff.rows) {
    if (row.cause == TrafficCause::kDemand) demand_delta = row.delta();
    if (row.cause == TrafficCause::kShardHit) shard_hit_delta = row.delta();
  }
  // The diff must tell the ablation's story: demand bytes fell because the
  // offloaded prefixes now arrive as (smaller) shard-hit payloads.
  EXPECT_LT(demand_delta, 0);
  EXPECT_GT(shard_hit_delta, 0);
  EXPECT_EQ(ledger_a.export_state().cause_bytes[kShardHitIdx], 0);
  EXPECT_NE(render_traffic_diff(diff).find("shard-hit"), std::string::npos);
}

}  // namespace
}  // namespace sophon::obs
