#include "storage/router.h"

#include <gtest/gtest.h>

#include "loader/loader.h"
#include "net/wire.h"
#include "storage/dataset_store.h"
#include "storage/server.h"
#include "util/check.h"

namespace sophon::storage {
namespace {

struct TwoNodeCluster {
  dataset::DatasetProfile profile = [] {
    auto p = dataset::openimages_profile(16);
    p.min_pixels = 5e4;
    p.max_pixels = 1.5e5;
    return p;
  }();
  dataset::Catalog catalog = dataset::Catalog::generate(profile, 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  // Both nodes can materialise every sample (same seed/quality), as if the
  // dataset were fully replicated; the shard map decides who serves what.
  DatasetStore store_a{catalog, 42, profile.quality};
  DatasetStore store_b{catalog, 42, profile.quality};
  StorageServer node_a{store_a, pipe, cm, {.seed = 42}};
  StorageServer node_b{store_b, pipe, cm, {.seed = 42}};
  ShardMap shards = ShardMap::hashed(catalog.size(), 2, 7);
  RoutedFetchService router{{&node_a, &node_b}, shards};
};

TEST(Router, ForwardsToTheOwningNode) {
  TwoNodeCluster c;
  for (std::size_t i = 0; i < c.catalog.size(); ++i) {
    net::FetchRequest req;
    req.sample_id = i;
    (void)c.router.fetch(req);
  }
  const auto hist = c.shards.histogram();
  const auto requests = c.router.per_node_requests();
  EXPECT_EQ(requests[0], hist[0]);
  EXPECT_EQ(requests[1], hist[1]);
  EXPECT_EQ(c.node_a.requests_served(), hist[0]);
  EXPECT_EQ(c.node_b.requests_served(), hist[1]);
}

TEST(Router, ResponsesIdenticalToDirectFetch) {
  TwoNodeCluster c;
  net::FetchRequest req;
  req.sample_id = 3;
  req.epoch = 1;
  req.directive.prefix_len = 2;
  const auto via_router = c.router.fetch(req);
  const auto direct = (c.shards.node_of(3) == 0 ? c.node_a : c.node_b).fetch(req);
  EXPECT_EQ(via_router.payload, direct.payload);
  EXPECT_EQ(via_router.stage, direct.stage);
}

TEST(Router, WorksAsTheLoadersService) {
  TwoNodeCluster c;
  core::OffloadPlan plan(c.catalog.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    plan.set(i, static_cast<std::uint8_t>(i % 2 == 0 ? 2 : 0));
  }
  loader::DataLoader loader(c.router, c.pipe, plan, c.catalog.size(),
                            {.num_workers = 3, .queue_capacity = 8, .seed = 42, .epoch = 0});
  loader.start();
  std::size_t count = 0;
  while (const auto item = loader.next()) {
    EXPECT_EQ(item->tensor.width(), 224);
    ++count;
  }
  EXPECT_EQ(count, c.catalog.size());
  const auto requests = c.router.per_node_requests();
  EXPECT_GT(requests[0], 0u);
  EXPECT_GT(requests[1], 0u);
}

TEST(Router, RejectsBadConstructionAndUnknownSamples) {
  TwoNodeCluster c;
  EXPECT_THROW(RoutedFetchService({&c.node_a}, c.shards), ContractViolation);  // arity
  EXPECT_THROW(RoutedFetchService({&c.node_a, nullptr}, c.shards), ContractViolation);
  net::FetchRequest req;
  req.sample_id = 999;
  EXPECT_THROW((void)c.router.fetch(req), ContractViolation);
}

}  // namespace
}  // namespace sophon::storage
