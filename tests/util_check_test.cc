#include "util/check.h"

#include <gtest/gtest.h>

namespace sophon {
namespace {

TEST(Check, PassingConditionIsSilent) {
  EXPECT_NO_THROW(SOPHON_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(SOPHON_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailureThrowsContractViolation) {
  EXPECT_THROW(SOPHON_CHECK(false), ContractViolation);
  EXPECT_THROW(SOPHON_CHECK_MSG(false, "context"), ContractViolation);
}

TEST(Check, MessageCarriesExpressionFileAndContext) {
  try {
    SOPHON_CHECK_MSG(2 > 3, "two is not greater");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("util_check_test.cc"), std::string::npos);
    EXPECT_NE(what.find("two is not greater"), std::string::npos);
  }
}

TEST(Check, ContractViolationIsALogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(SOPHON_CHECK(false), std::logic_error);
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  const auto bump = [&calls] {
    ++calls;
    return true;
  };
  SOPHON_CHECK(bump());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace sophon
