#include "core/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/decision.h"
#include "core/profiler.h"
#include "dataset/catalog.h"
#include "pipeline/pipeline.h"

namespace sophon::core {
namespace {

std::vector<SampleProfile> make_profiles(std::size_t n = 500) {
  const auto catalog = dataset::Catalog::generate(dataset::openimages_profile(n), 42);
  return profile_stage2(catalog, pipeline::Pipeline::standard(), pipeline::CostModel{});
}

TEST(SerializeProfiles, RoundTripIsLossless) {
  const auto profiles = make_profiles();
  const auto json = profiles_to_json(profiles);
  const auto parsed = Json::parse(json.dump());
  ASSERT_TRUE(parsed.has_value());
  const auto back = profiles_from_json(*parsed);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_EQ((*back)[i].sample_index, profiles[i].sample_index);
    EXPECT_EQ((*back)[i].stage_sizes, profiles[i].stage_sizes);
    EXPECT_EQ((*back)[i].min_stage, profiles[i].min_stage);
    EXPECT_EQ((*back)[i].reduction, profiles[i].reduction);
    ASSERT_EQ((*back)[i].op_costs.size(), profiles[i].op_costs.size());
    for (std::size_t c = 0; c < profiles[i].op_costs.size(); ++c) {
      EXPECT_DOUBLE_EQ((*back)[i].op_costs[c].value(), profiles[i].op_costs[c].value());
    }
    EXPECT_DOUBLE_EQ((*back)[i].efficiency(), profiles[i].efficiency());
  }
}

TEST(SerializeProfiles, RejectsWrongKindOrVersion) {
  auto json = profiles_to_json(make_profiles(10));
  json.set("kind", "something-else");
  EXPECT_FALSE(profiles_from_json(json).has_value());
  auto json2 = profiles_to_json(make_profiles(10));
  json2.set("version", 99);
  EXPECT_FALSE(profiles_from_json(json2).has_value());
  EXPECT_FALSE(profiles_from_json(Json(3)).has_value());
}

TEST(SerializePlan, RoundTripIsLossless) {
  OffloadPlan plan(1000);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    plan.set(i, static_cast<std::uint8_t>(i % 7 == 0 ? 2 : (i % 13 == 0 ? 5 : 0)));
  }
  const auto json = plan_to_json(plan);
  const auto back = plan_from_json(json);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(back->prefix(i), plan.prefix(i));
  }
}

TEST(SerializePlan, RunLengthIsCompact) {
  // A uniform plan must serialise to a single run regardless of size.
  const auto plan = OffloadPlan::uniform(100000, 2);
  const auto json = plan_to_json(plan);
  EXPECT_EQ(json.at("runs").size(), 1u);
  EXPECT_LT(json.dump().size(), 200u);
}

TEST(SerializePlan, RejectsCorruptRuns) {
  const auto plan = OffloadPlan::uniform(10, 1);
  auto json = plan_to_json(plan);
  json.set("num_samples", 5);  // runs now overflow
  EXPECT_FALSE(plan_from_json(json).has_value());
  auto json2 = plan_to_json(plan);
  json2.set("num_samples", 20);  // runs now underflow
  EXPECT_FALSE(plan_from_json(json2).has_value());
}

TEST(SerializeFiles, SaveAndLoad) {
  const std::string path = "/tmp/sophon_serialize_test.json";
  const auto plan = OffloadPlan::uniform(64, 2);
  ASSERT_TRUE(save_json_file(plan_to_json(plan), path));
  const auto loaded = load_json_file(path);
  ASSERT_TRUE(loaded.has_value());
  const auto back = plan_from_json(*loaded);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->offloaded_count(), 64u);
  std::remove(path.c_str());
}

TEST(SerializeFiles, LoadMissingFileFails) {
  EXPECT_FALSE(load_json_file("/tmp/definitely_not_here_sophon.json").has_value());
}

TEST(SerializeEndToEnd, SavedProfilesDriveTheSameDecision) {
  // The point of persistence: a restart loads yesterday's stage-2 profiles
  // and reaches the identical plan.
  const auto profiles = make_profiles(2000);
  sim::ClusterConfig cluster;
  cluster.bandwidth = Bandwidth::mbps(100.0);
  const auto original = decide_offloading(profiles, cluster, Seconds(1.0));

  const std::string path = "/tmp/sophon_profiles_roundtrip.json";
  ASSERT_TRUE(save_json_file(profiles_to_json(profiles), path));
  const auto restored = profiles_from_json(*load_json_file(path));
  ASSERT_TRUE(restored.has_value());
  const auto replayed = decide_offloading(*restored, cluster, Seconds(1.0));
  EXPECT_EQ(replayed.offloaded, original.offloaded);
  for (std::size_t i = 0; i < original.plan.size(); ++i) {
    EXPECT_EQ(replayed.plan.prefix(i), original.plan.prefix(i));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sophon::core
