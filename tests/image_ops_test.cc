#include "image/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace sophon::image {
namespace {

Image gradient_image(int w, int h) {
  Image img(w, h, 3);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      for (int c = 0; c < 3; ++c)
        img.set(x, y, c, static_cast<std::uint8_t>((x * 3 + y * 5 + c * 11) % 256));
  return img;
}

TEST(Crop, ExtractsExactRegion) {
  const auto img = gradient_image(10, 8);
  const auto out = crop(img, {2, 3, 4, 2});
  EXPECT_EQ(out.width(), 4);
  EXPECT_EQ(out.height(), 2);
  for (int y = 0; y < 2; ++y)
    for (int x = 0; x < 4; ++x)
      for (int c = 0; c < 3; ++c) EXPECT_EQ(out.at(x, y, c), img.at(x + 2, y + 3, c));
}

TEST(Crop, FullImageIsIdentity) {
  const auto img = gradient_image(6, 5);
  EXPECT_EQ(crop(img, {0, 0, 6, 5}), img);
}

TEST(Crop, RejectsOutOfBounds) {
  const auto img = gradient_image(4, 4);
  EXPECT_THROW((void)crop(img, {2, 2, 3, 1}), ContractViolation);
  EXPECT_THROW((void)crop(img, {-1, 0, 2, 2}), ContractViolation);
  EXPECT_THROW((void)crop(img, {0, 0, 0, 2}), ContractViolation);
}

TEST(Resize, IdentityWhenSameSize) {
  const auto img = gradient_image(16, 12);
  const auto out = resize_bilinear(img, 16, 12);
  EXPECT_EQ(out, img);
}

TEST(Resize, ConstantImageStaysConstant) {
  Image img(8, 8, 3);
  for (auto& px : img.data()) px = 137;
  const auto out = resize_bilinear(img, 224, 224);
  for (const auto px : out.data()) EXPECT_EQ(px, 137);
}

TEST(Resize, OutputDimensions) {
  const auto img = gradient_image(100, 60);
  const auto out = resize_bilinear(img, 224, 224);
  EXPECT_EQ(out.width(), 224);
  EXPECT_EQ(out.height(), 224);
  EXPECT_EQ(out.channels(), 3);
}

TEST(Resize, DownscalePreservesMeanApproximately) {
  const auto img = gradient_image(128, 128);
  const auto out = resize_bilinear(img, 32, 32);
  auto mean = [](const Image& im) {
    double sum = 0.0;
    for (const auto px : im.data()) sum += px;
    return sum / static_cast<double>(im.data().size());
  };
  EXPECT_NEAR(mean(out), mean(img), 3.0);
}

TEST(Resize, RejectsBadTarget) {
  const auto img = gradient_image(4, 4);
  EXPECT_THROW((void)resize_bilinear(img, 0, 10), ContractViolation);
  EXPECT_THROW((void)resize_bilinear(Image{}, 4, 4), ContractViolation);
}

TEST(Flip, IsInvolution) {
  const auto img = gradient_image(11, 7);
  EXPECT_EQ(horizontal_flip(horizontal_flip(img)), img);
}

TEST(Flip, MirrorsColumns) {
  const auto img = gradient_image(5, 3);
  const auto out = horizontal_flip(img);
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 5; ++x)
      for (int c = 0; c < 3; ++c) EXPECT_EQ(out.at(x, y, c), img.at(4 - x, y, c));
}

TEST(ResizedCropRect, StaysInBounds) {
  Rng rng(21);
  for (int trial = 0; trial < 500; ++trial) {
    const int w = static_cast<int>(rng.uniform_int(64, 4000));
    const int h = static_cast<int>(rng.uniform_int(64, 3000));
    const auto rect = sample_resized_crop_rect(w, h, rng);
    EXPECT_GE(rect.x, 0);
    EXPECT_GE(rect.y, 0);
    EXPECT_GT(rect.width, 0);
    EXPECT_GT(rect.height, 0);
    EXPECT_LE(rect.x + rect.width, w);
    EXPECT_LE(rect.y + rect.height, h);
  }
}

TEST(ResizedCropRect, AreaWithinScaleBounds) {
  Rng rng(22);
  const int w = 1000;
  const int h = 800;
  for (int trial = 0; trial < 200; ++trial) {
    const auto rect = sample_resized_crop_rect(w, h, rng, 0.2, 0.8);
    const double frac =
        static_cast<double>(rect.width) * rect.height / (static_cast<double>(w) * h);
    // Rounding makes exact bounds soft; allow small tolerance.
    EXPECT_GT(frac, 0.15);
    EXPECT_LT(frac, 0.9);
  }
}

TEST(ResizedCropRect, ExtremeAspectUsesFallback) {
  Rng rng(23);
  // A 10000x64 strip: most attempts fail, fallback must still be in bounds.
  for (int trial = 0; trial < 50; ++trial) {
    const auto rect = sample_resized_crop_rect(10000, 64, rng);
    EXPECT_LE(rect.x + rect.width, 10000);
    EXPECT_LE(rect.y + rect.height, 64);
    EXPECT_GT(rect.width, 0);
    EXPECT_GT(rect.height, 0);
  }
}

TEST(ResizedCrop, ProducesTargetSquare) {
  const auto img = gradient_image(300, 200);
  Rng rng(24);
  const auto rect = sample_resized_crop_rect(300, 200, rng);
  const auto out = resized_crop(img, rect, 224);
  EXPECT_EQ(out.width(), 224);
  EXPECT_EQ(out.height(), 224);
}

TEST(ToTensor, ScalesToUnitInterval) {
  Image img(2, 1, 3);
  img.set(0, 0, 0, 0);
  img.set(0, 0, 1, 128);
  img.set(0, 0, 2, 255);
  const auto t = to_tensor(img);
  EXPECT_EQ(t.channels(), 3);
  EXPECT_EQ(t.height(), 1);
  EXPECT_EQ(t.width(), 2);
  EXPECT_FLOAT_EQ(t.at(0, 0, 0), 0.0f);
  EXPECT_NEAR(t.at(1, 0, 0), 128.0f / 255.0f, 1e-6);
  EXPECT_FLOAT_EQ(t.at(2, 0, 0), 1.0f);
}

TEST(ToTensor, LayoutIsChw) {
  Image img(2, 2, 3);
  img.set(1, 0, 2, 255);  // x=1, y=0, channel 2
  const auto t = to_tensor(img);
  EXPECT_FLOAT_EQ(t.at(2, 0, 1), 1.0f);
  EXPECT_FLOAT_EQ(t.at(2, 1, 0), 0.0f);
}

TEST(Normalize, AppliesMeanAndStd) {
  Image img(1, 1, 3);
  img.set(0, 0, 0, 255);
  img.set(0, 0, 1, 0);
  img.set(0, 0, 2, 128);
  auto t = to_tensor(img);
  normalize(t, kImagenetMean, kImagenetStd);
  EXPECT_NEAR(t.at(0, 0, 0), (1.0f - 0.485f) / 0.229f, 1e-5);
  EXPECT_NEAR(t.at(1, 0, 0), (0.0f - 0.456f) / 0.224f, 1e-5);
  EXPECT_NEAR(t.at(2, 0, 0), (128.0f / 255.0f - 0.406f) / 0.225f, 1e-5);
}

TEST(Normalize, RejectsZeroStd) {
  Tensor t(3, 1, 1);
  EXPECT_THROW(normalize(t, {0.f, 0.f, 0.f}, {1.f, 0.f, 1.f}), ContractViolation);
}

TEST(Normalize, SizeUnchanged) {
  Image img(7, 5, 3);
  auto t = to_tensor(img);
  const auto before = t.byte_size();
  normalize(t, kImagenetMean, kImagenetStd);
  EXPECT_EQ(t.byte_size(), before);
}

}  // namespace
}  // namespace sophon::image
