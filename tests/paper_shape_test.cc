// Reproduction guards: the qualitative shapes of the paper's evaluation,
// asserted on moderately sized catalogs so the whole suite stays fast. The
// full-scale numbers live in the bench binaries (see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "core/runner.h"
#include "dataset/catalog.h"

namespace sophon::core {
namespace {

struct Datasets {
  dataset::Catalog openimages = dataset::Catalog::generate(dataset::openimages_profile(8000), 42);
  dataset::Catalog imagenet = dataset::Catalog::generate(dataset::imagenet_profile(18000), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;

  RunConfig config(int storage_cores = 48) const {
    RunConfig c;
    // Bandwidth scaled with the reduced catalog so the regime matches the
    // paper's 12 GB @ 500 Mbps.
    c.cluster.bandwidth = Bandwidth::mbps(100.0);
    c.cluster.storage_cores = storage_cores;
    return c;
  }
};

double ratio(Bytes a, Bytes b) {
  return a.as_double() / b.as_double();
}

// --- Figure 3 shapes: ample storage CPU -------------------------------

TEST(Fig3Shapes, OpenImagesTrafficRatios) {
  Datasets d;
  const auto results = run_all_policies(d.openimages, d.pipe, d.cm, d.config());
  const auto& no_off = results[0].stats;
  const auto& all_off = results[1].stats;
  const auto& fastflow = results[2].stats;
  const auto& resize = results[3].stats;
  const auto& sophon = results[4].stats;

  // All-Off inflates traffic ~1.9x (paper: 1.9x).
  EXPECT_NEAR(ratio(all_off.traffic, no_off.traffic), 1.9, 0.15);
  // FastFlow declines offloading → same traffic as No-Off.
  EXPECT_EQ(fastflow.traffic, no_off.traffic);
  // Resize-Off halves traffic (paper: 2x reduction).
  EXPECT_NEAR(ratio(no_off.traffic, resize.traffic), 2.1, 0.25);
  // SOPHON reduces at least as much as Resize-Off (paper: 2.2x).
  EXPECT_GE(ratio(no_off.traffic, sophon.traffic), ratio(no_off.traffic, resize.traffic) - 0.05);
  EXPECT_GT(ratio(no_off.traffic, sophon.traffic), 1.9);
}

TEST(Fig3Shapes, ImagenetTrafficRatios) {
  Datasets d;
  const auto results = run_all_policies(d.imagenet, d.pipe, d.cm, d.config());
  const auto& no_off = results[0].stats;
  const auto& all_off = results[1].stats;
  const auto& resize = results[3].stats;
  const auto& sophon = results[4].stats;

  // All-Off inflates ~5x (paper: 5.1x).
  EXPECT_NEAR(ratio(all_off.traffic, no_off.traffic), 5.0, 0.4);
  // Resize-Off *increases* traffic on ImageNet (paper: 1.3x).
  EXPECT_GT(ratio(resize.traffic, no_off.traffic), 1.1);
  // SOPHON still reduces it (paper: 1.2x).
  EXPECT_GT(ratio(no_off.traffic, sophon.traffic), 1.15);
}

TEST(Fig3Shapes, TrainingTimeOrdering) {
  Datasets d;
  for (const auto* catalog : {&d.openimages, &d.imagenet}) {
    const auto results = run_all_policies(*catalog, d.pipe, d.cm, d.config());
    const double no_off = results[0].stats.epoch_time.value();
    const double all_off = results[1].stats.epoch_time.value();
    const double sophon = results[4].stats.epoch_time.value();
    EXPECT_GT(all_off, no_off);  // All-Off has the longest training time
    EXPECT_LT(sophon, no_off);   // SOPHON improves on the original
    for (const auto& r : results) {
      EXPECT_LE(sophon, r.stats.epoch_time.value() * 1.001) << r.name;
    }
  }
}

TEST(Fig3Shapes, SophonSpeedupInPaperBand) {
  // Paper headline: 1.2–2.2x reduction in training time over existing
  // solutions. Check the speedup vs No-Off lands in a generous band.
  Datasets d;
  const auto oi = run_all_policies(d.openimages, d.pipe, d.cm, d.config());
  const double oi_speedup = oi[0].stats.epoch_time.value() / oi[4].stats.epoch_time.value();
  EXPECT_GT(oi_speedup, 1.5);
  EXPECT_LT(oi_speedup, 3.0);

  const auto in = run_all_policies(d.imagenet, d.pipe, d.cm, d.config());
  const double in_speedup = in[0].stats.epoch_time.value() / in[4].stats.epoch_time.value();
  EXPECT_GT(in_speedup, 1.1);
  EXPECT_LT(in_speedup, 2.0);
}

// --- Figure 4 shapes: limited storage CPU -----------------------------
//
// Core-count crossovers do not scale with the dataset (CPU totals shrink
// with n but core counts do not), so these tests run the paper's full
// configuration: 40 000-sample OpenImages at 500 Mbps.

struct FullScale {
  dataset::Catalog openimages = dataset::Catalog::generate(dataset::openimages_profile(40000), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;

  RunConfig config(int storage_cores) const {
    RunConfig c;
    c.cluster.storage_cores = storage_cores;
    return c;  // defaults: 500 Mbps, 48 compute cores, AlexNet/RTX-6000
  }
};

TEST(Fig4Shapes, AllOffWorstAndWorseWithOneCore) {
  FullScale d;
  const auto one = run_all_policies(d.openimages, d.pipe, d.cm, d.config(1));
  const auto four = run_all_policies(d.openimages, d.pipe, d.cm, d.config(4));
  // All-Off is the slowest policy at both budgets…
  for (const auto& r : one) {
    EXPECT_LE(r.stats.epoch_time.value(), one[1].stats.epoch_time.value() + 1e-9) << r.name;
  }
  // …and its 1-core time is strictly worse than its 4-core time.
  EXPECT_GT(one[1].stats.epoch_time.value(), four[1].stats.epoch_time.value());
}

TEST(Fig4Shapes, ResizeOffWorseThanNoOffWithFewCores) {
  FullScale d;
  const auto results = run_all_policies(d.openimages, d.pipe, d.cm, d.config(2));
  EXPECT_GT(results[3].stats.epoch_time.value(), results[0].stats.epoch_time.value());
  // But Resize-Off still achieves the lowest traffic of all policies.
  for (const auto& r : results) {
    EXPECT_GE(r.stats.traffic, results[3].stats.traffic);
  }
}

TEST(Fig4Shapes, SophonBestAtEveryCoreBudget) {
  FullScale d;
  for (const int cores : {1, 2, 4, 8}) {
    const auto results = run_all_policies(d.openimages, d.pipe, d.cm, d.config(cores));
    const double sophon = results[4].stats.epoch_time.value();
    for (const auto& r : results) {
      EXPECT_LE(sophon, r.stats.epoch_time.value() * 1.001)
          << r.name << " at " << cores << " cores";
    }
  }
}

TEST(Fig4Shapes, SophonDiminishingReturns) {
  FullScale d;
  std::vector<double> times;
  for (const int cores : {0, 1, 2, 4, 5}) {
    const auto results = run_all_policies(d.openimages, d.pipe, d.cm, d.config(cores));
    times.push_back(results[4].stats.epoch_time.value());
  }
  // Monotone improvement…
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_LE(times[i], times[i - 1] + 1e-9);
  // …with the 0→1 jump much larger than the 4→5 jump (paper: 22 s vs 9 s).
  const double first_gain = times[0] - times[1];
  const double late_gain = times[3] - times[4];
  EXPECT_GT(first_gain, 2.0 * late_gain);
}

// --- Figure 1d shape: GPU utilisation by model ------------------------

TEST(Fig1dShapes, GpuUtilizationOrdering) {
  Datasets d;
  auto config = d.config();
  config.gpu = model::GpuKind::kV100;
  // T_G and T_Net both scale linearly with the sample count, so the
  // utilisation ratio is scale-invariant — use the regime's real 1 Gbps.
  config.cluster.bandwidth = Bandwidth::gbps(1.0);

  auto util = [&](model::NetKind net) {
    config.net = net;
    const auto r = run_policy(*make_policy(PolicyKind::kNoOff), d.openimages, d.pipe, d.cm,
                              config);
    return r.stats.gpu_utilization;
  };
  const double alex = util(model::NetKind::kAlexNet);
  const double r18 = util(model::NetKind::kResNet18);
  const double r50 = util(model::NetKind::kResNet50);
  // ResNet50 near-maximal; ResNet18 mid; AlexNet starved (Finding #5).
  EXPECT_GT(r50, 0.85);
  EXPECT_GT(r18, alex);
  EXPECT_LT(r18, 0.6);
  EXPECT_LT(alex, 0.25);
}

}  // namespace
}  // namespace sophon::core
