// Telemetry endpoint: route behavior via the socketless request() surface,
// plus one end-to-end scrape over a real loopback socket — the ephemeral
// port, HTTP framing, and concurrent-scrape paths a live monitor exercises.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/health.h"
#include "obs/metrics_table.h"
#include "obs/telemetry_server.h"
#include "obs/timeseries.h"
#include "util/json.h"

namespace sophon::obs {
namespace {

/// Minimal scrape client: GET `path`, return the raw response text.
std::optional<std::string> http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) < 0) {
    ::close(fd);
    return std::nullopt;
  }
  std::string response;
  char buffer[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) response.append(buffer, n);
  ::close(fd);
  return response;
}

struct Plane {
  MetricsRegistry metrics;
  FlightRecorder recorder{metrics};
  HealthEvaluator health{default_health_rules()};
  TelemetryServer server{metrics, &recorder, &health, {}};
};

TEST(TelemetryServer, MetricsRouteServesTheExposition) {
  Plane p;
  register_known_metrics(p.metrics);
  p.metrics.counter("sophon_shard_hit").increment(3);

  const auto response = p.server.request("/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(response.body, p.metrics.expose())
      << "/metrics must be byte-identical to the golden-locked exposition";
  EXPECT_NE(response.body.find("sophon_shard_hit_total 3"), std::string::npos);
  EXPECT_NE(response.body.find("# HELP sophon_shard_hit_total "), std::string::npos);
}

TEST(TelemetryServer, HealthzReports503OnCrit) {
  Plane p;
  const auto ok = p.server.request("/healthz");
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.content_type, "application/json");
  auto doc = Json::parse(ok.body);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("overall").as_string(), "ok");

  p.metrics.gauge("sophon_epoch_fetch_stall_fraction").set(0.95);
  p.health.evaluate(p.metrics.snapshot(), Seconds(1.0));
  const auto crit = p.server.request("/healthz");
  EXPECT_EQ(crit.status, 503) << "CRIT must trip off-the-shelf HTTP probes";
  doc = Json::parse(crit.body);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("overall").as_string(), "crit");
}

TEST(TelemetryServer, TimeseriesRouteServesTheRecorderDump) {
  Plane p;
  p.metrics.counter("sophon_shard_hit").increment();
  p.recorder.sample_at(1.0);
  const auto response = p.server.request("/timeseries");
  EXPECT_EQ(response.status, 200);
  const auto doc = Json::parse(response.body);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("kind").as_string(), "sophon.timeseries");
  EXPECT_EQ(doc->at("samples").as_int(), 1);
}

TEST(TelemetryServer, UnknownRouteIs404AndAbsentComponentsToo) {
  Plane p;
  EXPECT_EQ(p.server.request("/nope").status, 404);

  MetricsRegistry bare_metrics;
  TelemetryServer bare{bare_metrics, nullptr, nullptr, {}};
  EXPECT_EQ(bare.request("/metrics").status, 200);
  EXPECT_EQ(bare.request("/healthz").status, 404);
  EXPECT_EQ(bare.request("/timeseries").status, 404);
}

TEST(TelemetryServer, ServesARealScrapeOnAnEphemeralPort) {
  Plane p;
  register_known_metrics(p.metrics);
  p.metrics.counter("sophon_shard_hit").increment(7);
  ASSERT_TRUE(p.server.start()) << p.server.error();
  ASSERT_NE(p.server.port(), 0);
  ASSERT_TRUE(p.server.running());

  const auto response = http_get(p.server.port(), "/metrics");
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response->find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response->find("sophon_shard_hit_total 7"), std::string::npos);

  const auto missing = http_get(p.server.port(), "/missing");
  ASSERT_TRUE(missing.has_value());
  EXPECT_NE(missing->find("HTTP/1.0 404"), std::string::npos);

  EXPECT_EQ(p.server.requests_served(), 2u);
  p.server.stop();
  EXPECT_FALSE(p.server.running());
}

TEST(TelemetryServer, RebindingABusyPortFailsSoft) {
  Plane p;
  ASSERT_TRUE(p.server.start());
  MetricsRegistry other;
  TelemetryServer clash{other, nullptr, nullptr, {.port = p.server.port()}};
  EXPECT_FALSE(clash.start());
  EXPECT_FALSE(clash.error().empty());
  EXPECT_FALSE(clash.running());
}

// TSan target: scrapes racing the writers they observe — the sampler
// folding the recorder, the evaluator grading, counters ticking.
TEST(TelemetryServerConcurrency, ScrapesRaceTheWriters) {
  Plane p;
  ASSERT_TRUE(p.server.start());
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    for (int i = 0; i < 200; ++i) {
      p.metrics.counter("sophon_shard_hit").increment();
      p.metrics.gauge("sophon_epoch_fetch_stall_fraction").set((i % 10) / 10.0);
      p.health.evaluate(p.metrics.snapshot(), Seconds(1.0));
      p.recorder.sample_at(static_cast<double>(i));
    }
    stop.store(true);
  });
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 2; ++s) {
    scrapers.emplace_back([&] {
      // A minimum scrape count even if the writer finishes first, then keep
      // racing until it does.
      for (int i = 0; i < 5 || !stop.load(); ++i) {
        for (const char* path : {"/metrics", "/healthz", "/timeseries"}) {
          (void)http_get(p.server.port(), path);
        }
      }
    });
  }
  writer.join();
  for (auto& t : scrapers) t.join();
  EXPECT_GT(p.server.requests_served(), 0u);
}

}  // namespace
}  // namespace sophon::obs
