#include "codec/bitio.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace sophon::codec {
namespace {

TEST(BitIo, SingleByteRoundTrip) {
  BitWriter w;
  w.put(0b1011, 4);
  w.put(0b0101, 4);
  const auto bytes = w.finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10110101);

  BitReader r(bytes);
  EXPECT_EQ(r.get(4), 0b1011u);
  EXPECT_EQ(r.get(4), 0b0101u);
  EXPECT_FALSE(r.overrun());
}

TEST(BitIo, PartialBytePadsWithZeros) {
  BitWriter w;
  w.put(0b111, 3);
  const auto bytes = w.finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b11100000);
}

TEST(BitIo, BitCountExcludesPadding) {
  BitWriter w;
  w.put(0x3, 2);
  w.put(0x1ff, 9);
  EXPECT_EQ(w.bit_count(), 11u);
}

TEST(BitIo, MaskingOfExtraHighBits) {
  BitWriter w;
  w.put(0xffffffffffffffffULL, 4);  // only low 4 bits should land
  w.put(0, 4);
  const auto bytes = w.finish();
  EXPECT_EQ(bytes[0], 0xf0);
}

TEST(BitIo, ReadPastEndSetsOverrun) {
  BitWriter w;
  w.put(0xab, 8);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.get(8), 0xabu);
  EXPECT_FALSE(r.overrun());
  EXPECT_EQ(r.get(8), 0u);  // zero-filled
  EXPECT_TRUE(r.overrun());
}

TEST(BitIo, GetBit) {
  BitWriter w;
  w.put(0b10, 2);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bit(), 1);
  EXPECT_EQ(r.get_bit(), 0);
  EXPECT_EQ(r.bits_consumed(), 2u);
}

TEST(BitIo, RejectsOversizedGroups) {
  BitWriter w;
  EXPECT_THROW(w.put(0, 58), ContractViolation);
  BitReader r({});
  EXPECT_THROW((void)r.get(58), ContractViolation);
  EXPECT_THROW((void)r.get(-1), ContractViolation);
}

TEST(BitIo, RandomRoundTripProperty) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    BitWriter w;
    std::vector<std::pair<std::uint64_t, int>> groups;
    for (int i = 0; i < 200; ++i) {
      const int count = static_cast<int>(rng.uniform_int(1, 57));
      const std::uint64_t value =
          rng.next() & ((count < 64) ? ((1ULL << count) - 1) : ~0ULL);
      groups.emplace_back(value, count);
      w.put(value, count);
    }
    const auto bytes = w.finish();
    BitReader r(bytes);
    for (const auto& [value, count] : groups) {
      EXPECT_EQ(r.get(count), value);
    }
    EXPECT_FALSE(r.overrun());
  }
}

}  // namespace
}  // namespace sophon::codec
