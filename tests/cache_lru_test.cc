#include "cache/lru.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace sophon::cache {
namespace {

TEST(Lru, MissThenHit) {
  LruCache cache(Bytes(1000));
  EXPECT_FALSE(cache.access(1, Bytes(100)));
  EXPECT_TRUE(cache.access(1, Bytes(100)));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.resident().count(), 100);
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruCache cache(Bytes(300));
  cache.access(1, Bytes(100));
  cache.access(2, Bytes(100));
  cache.access(3, Bytes(100));
  // Touch 1 so 2 becomes LRU.
  EXPECT_TRUE(cache.access(1, Bytes(100)));
  // Insert 4: evicts 2.
  cache.access(4, Bytes(100));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(Lru, EvictsMultipleForLargeEntry) {
  LruCache cache(Bytes(300));
  cache.access(1, Bytes(100));
  cache.access(2, Bytes(100));
  cache.access(3, Bytes(100));
  cache.access(4, Bytes(250));  // needs 2.5 slots → evicts 1, 2 (and 3)
  EXPECT_TRUE(cache.contains(4));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_LE(cache.resident(), cache.capacity());
}

TEST(Lru, OversizedEntryNeverAdmitted) {
  LruCache cache(Bytes(100));
  EXPECT_FALSE(cache.access(1, Bytes(500)));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.entries(), 0u);
  // And a second access is still a miss.
  EXPECT_FALSE(cache.access(1, Bytes(500)));
}

TEST(Lru, ZeroCapacityAlwaysMisses) {
  LruCache cache(Bytes(0));
  EXPECT_FALSE(cache.access(1, Bytes(1)));
  EXPECT_FALSE(cache.access(1, Bytes(1)));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(Lru, ResidencyNeverExceedsCapacity) {
  LruCache cache(Bytes(1000));
  for (std::uint64_t id = 0; id < 200; ++id) {
    cache.access(id, Bytes(static_cast<std::int64_t>(37 + (id * 13) % 113)));
    EXPECT_LE(cache.resident(), cache.capacity());
  }
}

TEST(Lru, ContainsDoesNotRefreshRecency) {
  LruCache cache(Bytes(200));
  cache.access(1, Bytes(100));
  cache.access(2, Bytes(100));
  // contains(1) must NOT promote 1.
  EXPECT_TRUE(cache.contains(1));
  cache.access(3, Bytes(100));  // evicts 1 (true LRU)
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Lru, ClearDropsEntriesKeepsCounters) {
  LruCache cache(Bytes(500));
  cache.access(1, Bytes(100));
  cache.access(1, Bytes(100));
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.resident().count(), 0);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_FALSE(cache.contains(1));
}

TEST(Lru, RejectsBadArguments) {
  EXPECT_THROW(LruCache(Bytes(-1)), ContractViolation);
  LruCache cache(Bytes(10));
  EXPECT_THROW((void)cache.access(1, Bytes(0)), ContractViolation);
}

}  // namespace
}  // namespace sophon::cache
