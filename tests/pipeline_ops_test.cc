#include <gtest/gtest.h>

#include "codec/sjpg.h"
#include "pipeline/op.h"
#include "util/check.h"

namespace sophon::pipeline {
namespace {

image::Image test_image(int w, int h) {
  image::Image img(w, h, 3);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      for (int c = 0; c < 3; ++c)
        img.set(x, y, c, static_cast<std::uint8_t>((x + y * 2 + c * 7) % 256));
  return img;
}

CostModel model() {
  return CostModel{};
}

TEST(OpKindName, AllNamed) {
  EXPECT_EQ(op_kind_name(OpKind::kDecode), "Decode");
  EXPECT_EQ(op_kind_name(OpKind::kRandomResizedCrop), "RandomResizedCrop");
  EXPECT_EQ(op_kind_name(OpKind::kRandomHorizontalFlip), "RandomHorizontalFlip");
  EXPECT_EQ(op_kind_name(OpKind::kToTensor), "ToTensor");
  EXPECT_EQ(op_kind_name(OpKind::kNormalize), "Normalize");
}

TEST(DecodeOp, ApplyMatchesOutShape) {
  const auto img = test_image(120, 90);
  const auto blob = codec::sjpg_encode(img, 90);
  const auto op = make_decode_op();
  EXPECT_EQ(op->kind(), OpKind::kDecode);
  EXPECT_FALSE(op->is_random());

  Rng rng(1);
  const auto out = op->apply(EncodedBlob{blob}, rng);
  const auto* decoded = std::get_if<image::Image>(&out);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->width(), 120);
  EXPECT_EQ(decoded->height(), 90);

  const auto raw = SampleShape::encoded(Bytes(static_cast<std::int64_t>(blob.size())), 120, 90);
  const auto shape = op->out_shape(raw);
  EXPECT_EQ(shape.repr, Repr::kImage);
  EXPECT_EQ(shape.byte_size(), decoded->byte_size());
}

TEST(DecodeOp, RejectsWrongInput) {
  const auto op = make_decode_op();
  Rng rng(1);
  EXPECT_THROW((void)op->apply(image::Image(4, 4, 3), rng), ContractViolation);
  SampleShape img_shape;
  img_shape.repr = Repr::kImage;
  img_shape.width = 4;
  img_shape.height = 4;
  EXPECT_THROW((void)op->out_shape(img_shape), ContractViolation);
}

TEST(DecodeOp, RejectsCorruptBlob) {
  const auto op = make_decode_op();
  Rng rng(1);
  EXPECT_THROW((void)op->apply(EncodedBlob{{1, 2, 3, 4}}, rng), ContractViolation);
}

TEST(RandomResizedCropOp, ProducesTargetAndMatchesShape) {
  const auto op = make_random_resized_crop_op(224);
  EXPECT_TRUE(op->is_random());
  Rng rng(2);
  const auto out = op->apply(test_image(500, 400), rng);
  const auto* img = std::get_if<image::Image>(&out);
  ASSERT_NE(img, nullptr);
  EXPECT_EQ(img->width(), 224);
  EXPECT_EQ(img->height(), 224);

  SampleShape in;
  in.repr = Repr::kImage;
  in.width = 500;
  in.height = 400;
  in.channels = 3;
  const auto shape = op->out_shape(in);
  EXPECT_EQ(shape.byte_size(), img->byte_size());
}

TEST(RandomResizedCropOp, DifferentSeedsDifferentCrops) {
  const auto op = make_random_resized_crop_op(64);
  Rng rng_a(10);
  Rng rng_b(11);
  const auto a = op->apply(test_image(800, 600), rng_a);
  const auto b = op->apply(test_image(800, 600), rng_b);
  EXPECT_NE(std::get<image::Image>(a), std::get<image::Image>(b));
}

TEST(RandomHorizontalFlipOp, ProbabilityZeroAndOne) {
  const auto img = test_image(30, 20);
  Rng rng(3);
  const auto never = make_random_horizontal_flip_op(0.0)->apply(img, rng);
  EXPECT_EQ(std::get<image::Image>(never), img);
  const auto always = make_random_horizontal_flip_op(1.0)->apply(img, rng);
  EXPECT_EQ(std::get<image::Image>(always), image::horizontal_flip(img));
}

TEST(RandomHorizontalFlipOp, ShapePreserved) {
  const auto op = make_random_horizontal_flip_op();
  SampleShape in;
  in.repr = Repr::kImage;
  in.width = 224;
  in.height = 224;
  in.channels = 3;
  EXPECT_EQ(op->out_shape(in), in);
}

TEST(RandomHorizontalFlipOp, FlipsAboutHalfTheTime) {
  const auto img = test_image(8, 8);
  const auto flipped = image::horizontal_flip(img);
  const auto op = make_random_horizontal_flip_op(0.5);
  Rng rng(4);
  int flips = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto out = op->apply(img, rng);
    if (std::get<image::Image>(out) == flipped) ++flips;
  }
  EXPECT_NEAR(flips / 2000.0, 0.5, 0.05);
}

TEST(ToTensorOp, QuadruplesByteSize) {
  const auto op = make_to_tensor_op();
  Rng rng(5);
  const auto img = test_image(50, 40);
  const auto out = op->apply(img, rng);
  EXPECT_EQ(sample_byte_size(out).count(), img.byte_size().count() * 4);

  SampleShape in;
  in.repr = Repr::kImage;
  in.width = 50;
  in.height = 40;
  in.channels = 3;
  EXPECT_EQ(op->out_shape(in).byte_size(), sample_byte_size(out));
}

TEST(NormalizeOp, SizePreservedAndValuesShift) {
  Rng rng(6);
  auto tensor_data = make_to_tensor_op()->apply(test_image(10, 10), rng);
  const auto before = sample_byte_size(tensor_data);
  const auto out = make_normalize_op()->apply(std::move(tensor_data), rng);
  EXPECT_EQ(sample_byte_size(out), before);
  const auto& t = std::get<image::Tensor>(out);
  // Normalised values are not confined to [0,1].
  bool outside = false;
  for (const auto v : t.data())
    if (v < 0.0f || v > 1.0f) outside = true;
  EXPECT_TRUE(outside);
}

TEST(NormalizeOp, RejectsImageInput) {
  Rng rng(7);
  EXPECT_THROW((void)make_normalize_op()->apply(test_image(4, 4), rng), ContractViolation);
}

// Cost properties shared by all ops: positive, monotone in input size.
TEST(OpCosts, PositiveAndMonotone) {
  const auto cm = model();
  const auto small = SampleShape::encoded(Bytes(50'000), 640, 480);
  const auto large = SampleShape::encoded(Bytes(500'000), 2048, 1536);

  const auto decode = make_decode_op();
  EXPECT_GT(decode->cost(small, cm).value(), 0.0);
  EXPECT_GT(decode->cost(large, cm).value(), decode->cost(small, cm).value());

  const auto rrc = make_random_resized_crop_op(224);
  const auto small_img = decode->out_shape(small);
  const auto large_img = decode->out_shape(large);
  EXPECT_GT(rrc->cost(large_img, cm).value(), rrc->cost(small_img, cm).value());

  const auto flip = make_random_horizontal_flip_op();
  const auto cropped = rrc->out_shape(large_img);
  EXPECT_GT(flip->cost(cropped, cm).value(), 0.0);

  const auto tt = make_to_tensor_op();
  EXPECT_GT(tt->cost(cropped, cm).value(), 0.0);

  const auto norm = make_normalize_op();
  EXPECT_GT(norm->cost(tt->out_shape(cropped), cm).value(), 0.0);
}

TEST(OpCosts, DecodeDominatesPipelineForLargeImages) {
  // Finding #4's premise: Decode (+crop) is where the CPU time goes.
  const auto cm = model();
  const auto raw = SampleShape::encoded(Bytes(400'000), 2048, 1536);
  const auto decode = make_decode_op();
  const auto flip = make_random_horizontal_flip_op();
  const auto cropped_shape = make_random_resized_crop_op(224)->out_shape(decode->out_shape(raw));
  EXPECT_GT(decode->cost(raw, cm).value(), 10.0 * flip->cost(cropped_shape, cm).value());
}

}  // namespace
}  // namespace sophon::pipeline
