#include "sim/resources.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace sophon::sim {
namespace {

TEST(CpuPool, SingleCoreSerialises) {
  CpuPool pool(1);
  EXPECT_DOUBLE_EQ(pool.schedule(Seconds(0.0), Seconds(2.0)).value(), 2.0);
  EXPECT_DOUBLE_EQ(pool.schedule(Seconds(0.0), Seconds(3.0)).value(), 5.0);
  EXPECT_DOUBLE_EQ(pool.schedule(Seconds(10.0), Seconds(1.0)).value(), 11.0);
}

TEST(CpuPool, MultiCoreRunsInParallel) {
  CpuPool pool(2);
  EXPECT_DOUBLE_EQ(pool.schedule(Seconds(0.0), Seconds(4.0)).value(), 4.0);
  EXPECT_DOUBLE_EQ(pool.schedule(Seconds(0.0), Seconds(4.0)).value(), 4.0);
  // Third job waits for the earliest core.
  EXPECT_DOUBLE_EQ(pool.schedule(Seconds(0.0), Seconds(1.0)).value(), 5.0);
}

TEST(CpuPool, PicksEarliestFreeCore) {
  CpuPool pool(2);
  pool.schedule(Seconds(0.0), Seconds(10.0));  // core A busy until 10
  pool.schedule(Seconds(0.0), Seconds(1.0));   // core B busy until 1
  EXPECT_DOUBLE_EQ(pool.schedule(Seconds(0.0), Seconds(1.0)).value(), 2.0);
}

TEST(CpuPool, SpeedFactorScalesDurations) {
  CpuPool pool(1, 2.0);
  EXPECT_DOUBLE_EQ(pool.schedule(Seconds(0.0), Seconds(4.0)).value(), 2.0);
  CpuPool slow(1, 0.5);
  EXPECT_DOUBLE_EQ(slow.schedule(Seconds(0.0), Seconds(4.0)).value(), 8.0);
}

TEST(CpuPool, BusyTimeAndMakespan) {
  CpuPool pool(2);
  pool.schedule(Seconds(0.0), Seconds(3.0));
  pool.schedule(Seconds(1.0), Seconds(2.0));
  EXPECT_DOUBLE_EQ(pool.busy_time().value(), 5.0);
  EXPECT_DOUBLE_EQ(pool.makespan().value(), 3.0);
}

TEST(CpuPool, ZeroCorePoolCannotSchedule) {
  CpuPool pool(0);
  EXPECT_FALSE(pool.can_schedule());
  EXPECT_THROW((void)pool.schedule(Seconds(0.0), Seconds(1.0)), ContractViolation);
}

TEST(CpuPool, ResetRestoresIdleState) {
  CpuPool pool(1);
  pool.schedule(Seconds(0.0), Seconds(5.0));
  pool.reset();
  EXPECT_DOUBLE_EQ(pool.busy_time().value(), 0.0);
  EXPECT_DOUBLE_EQ(pool.schedule(Seconds(0.0), Seconds(1.0)).value(), 1.0);
}

TEST(CpuPool, RejectsBadArguments) {
  EXPECT_THROW(CpuPool(-1), ContractViolation);
  EXPECT_THROW(CpuPool(1, 0.0), ContractViolation);
  CpuPool pool(1);
  EXPECT_THROW((void)pool.schedule(Seconds(0.0), Seconds(-1.0)), ContractViolation);
}

TEST(Gpu, FifoBatches) {
  GpuResource gpu;
  EXPECT_DOUBLE_EQ(gpu.schedule(Seconds(0.0), Seconds(0.1)).value(), 0.1);
  EXPECT_DOUBLE_EQ(gpu.schedule(Seconds(0.0), Seconds(0.1)).value(), 0.2);
  EXPECT_DOUBLE_EQ(gpu.schedule(Seconds(1.0), Seconds(0.1)).value(), 1.1);
  EXPECT_DOUBLE_EQ(gpu.busy_time().value(), 0.3);
}

TEST(Gpu, Reset) {
  GpuResource gpu;
  gpu.schedule(Seconds(0.0), Seconds(1.0));
  gpu.reset();
  EXPECT_DOUBLE_EQ(gpu.busy_time().value(), 0.0);
  EXPECT_DOUBLE_EQ(gpu.free_at().value(), 0.0);
}

}  // namespace
}  // namespace sophon::sim
