#include "pipeline/pipeline.h"

#include <gtest/gtest.h>

#include "codec/sjpg.h"
#include "util/check.h"

namespace sophon::pipeline {
namespace {

image::Image test_image(int w, int h) {
  image::Image img(w, h, 3);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      for (int c = 0; c < 3; ++c)
        img.set(x, y, c, static_cast<std::uint8_t>((x * 2 + y * 3 + c * 13) % 256));
  return img;
}

SampleData encoded_sample(int w, int h) {
  return EncodedBlob{codec::sjpg_encode(test_image(w, h), 90)};
}

SampleShape raw_shape(const SampleData& blob, int w, int h) {
  return SampleShape::encoded(sample_byte_size(blob), w, h);
}

TEST(Pipeline, StandardHasFiveOpsInOrder) {
  const auto pipe = Pipeline::standard();
  ASSERT_EQ(pipe.size(), 5u);
  EXPECT_EQ(pipe.op(0).kind(), OpKind::kDecode);
  EXPECT_EQ(pipe.op(1).kind(), OpKind::kRandomResizedCrop);
  EXPECT_EQ(pipe.op(2).kind(), OpKind::kRandomHorizontalFlip);
  EXPECT_EQ(pipe.op(3).kind(), OpKind::kToTensor);
  EXPECT_EQ(pipe.op(4).kind(), OpKind::kNormalize);
}

TEST(Pipeline, RunAllYieldsNormalizedTensor) {
  const auto pipe = Pipeline::standard();
  Rng rng(1);
  const auto out = pipe.run_all(encoded_sample(300, 200), rng);
  const auto* t = std::get_if<image::Tensor>(&out);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->width(), 224);
  EXPECT_EQ(t->height(), 224);
  EXPECT_EQ(t->channels(), 3);
}

TEST(Pipeline, PartialRunStopsAtStage) {
  const auto pipe = Pipeline::standard();
  Rng rng(2);
  const auto at2 = pipe.run(encoded_sample(300, 200), 0, 2, rng);
  const auto* img = std::get_if<image::Image>(&at2);
  ASSERT_NE(img, nullptr);
  EXPECT_EQ(img->width(), 224);
}

TEST(Pipeline, SplitRunMatchesContiguousRun) {
  // The offloading invariant: running [0,k) then [k,5) with the same stream
  // seed equals running [0,5) in one go — for every cut point.
  const auto pipe = Pipeline::standard();
  const auto sample = encoded_sample(400, 300);
  const std::uint64_t stream = 12345;
  const auto whole = pipe.run_seeded(sample, 0, 5, stream);
  for (std::size_t k = 0; k <= 5; ++k) {
    auto part = pipe.run_seeded(sample, 0, k, stream);
    part = pipe.run_seeded(std::move(part), k, 5, stream);
    EXPECT_EQ(std::get<image::Tensor>(part), std::get<image::Tensor>(whole)) << "cut at " << k;
  }
}

TEST(Pipeline, SeededRunsAreReproducible) {
  const auto pipe = Pipeline::standard();
  const auto sample = encoded_sample(256, 256);
  const auto a = pipe.run_seeded(sample, 0, 5, 99);
  const auto b = pipe.run_seeded(sample, 0, 5, 99);
  const auto c = pipe.run_seeded(sample, 0, 5, 100);
  EXPECT_EQ(std::get<image::Tensor>(a), std::get<image::Tensor>(b));
  EXPECT_NE(std::get<image::Tensor>(a), std::get<image::Tensor>(c));
}

TEST(Pipeline, ShapeAtTracksRepresentations) {
  const auto pipe = Pipeline::standard();
  const auto raw = SampleShape::encoded(Bytes(462 * 1024), 2048, 1536);
  EXPECT_EQ(pipe.shape_at(raw, 0).repr, Repr::kEncoded);
  EXPECT_EQ(pipe.shape_at(raw, 1).repr, Repr::kImage);
  EXPECT_EQ(pipe.shape_at(raw, 1).byte_size().count(), 2048 * 1536 * 3);
  EXPECT_EQ(pipe.shape_at(raw, 2).byte_size().count(), 224 * 224 * 3);
  EXPECT_EQ(pipe.shape_at(raw, 3).byte_size().count(), 224 * 224 * 3);
  EXPECT_EQ(pipe.shape_at(raw, 4).byte_size().count(), 224 * 224 * 3 * 4);
  EXPECT_EQ(pipe.shape_at(raw, 5).byte_size().count(), 224 * 224 * 3 * 4);
}

TEST(Pipeline, ShapeAtMatchesRealExecutionEverywhere) {
  const auto pipe = Pipeline::standard();
  const auto sample = encoded_sample(640, 480);
  const auto raw = raw_shape(sample, 640, 480);
  for (std::size_t k = 0; k <= pipe.size(); ++k) {
    const auto real = pipe.run_seeded(sample, 0, k, 7);
    EXPECT_EQ(pipe.shape_at(raw, k).byte_size(), sample_byte_size(real)) << "stage " << k;
  }
}

TEST(Pipeline, AnalyticTraceReproducesFigure1aSampleA) {
  // Paper's Sample A: 462 KB JPEG, large source → minimum after
  // RandomResizedCrop, ToTensor inflates 4x.
  const auto pipe = Pipeline::standard();
  const auto raw = SampleShape::encoded(Bytes(462 * 1024), 2048, 1536);
  const pipeline::CostModel cm;
  const auto trace = pipe.analytic_trace(raw, cm);
  ASSERT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace[0].size.count(), 462 * 1024);
  EXPECT_GT(trace[1].size, trace[0].size);                   // decode inflates
  EXPECT_LT(trace[2].size, trace[0].size);                   // crop shrinks below raw
  EXPECT_EQ(trace[3].size, trace[2].size);                   // flip size-neutral
  EXPECT_EQ(trace[4].size.count(), trace[2].size.count() * 4);  // ToTensor 4x
  EXPECT_EQ(trace[5].size, trace[4].size);                   // normalize size-neutral
  EXPECT_EQ(pipe.min_size_stage(raw), 2u);
}

TEST(Pipeline, MinStageZeroForSmallImages) {
  // Paper's Sample B: already-small raw JPEG should not be offloaded.
  const auto pipe = Pipeline::standard();
  const auto raw = SampleShape::encoded(Bytes(90 * 1024), 500, 375);
  EXPECT_EQ(pipe.min_size_stage(raw), 0u);
}

TEST(Pipeline, PrefixPlusSuffixEqualsTotalCost) {
  const auto pipe = Pipeline::standard();
  const pipeline::CostModel cm;
  const auto raw = SampleShape::encoded(Bytes(300'000), 1600, 1200);
  const auto total = pipe.suffix_cost(raw, 0, cm);
  for (std::size_t k = 0; k <= pipe.size(); ++k) {
    const auto split = pipe.prefix_cost(raw, k, cm) + pipe.suffix_cost(raw, k, cm);
    EXPECT_NEAR(split.value(), total.value(), 1e-12) << "cut at " << k;
  }
}

TEST(Pipeline, OpCostMatchesTraceEntries) {
  const auto pipe = Pipeline::standard();
  const pipeline::CostModel cm;
  const auto raw = SampleShape::encoded(Bytes(200'000), 1024, 768);
  const auto trace = pipe.analytic_trace(raw, cm);
  for (std::size_t i = 0; i < pipe.size(); ++i) {
    EXPECT_DOUBLE_EQ(pipe.op_cost(raw, i, cm).value(), trace[i + 1].op_cost.value());
  }
}

TEST(Pipeline, RunRejectsBadStageBounds) {
  const auto pipe = Pipeline::standard();
  Rng rng(3);
  EXPECT_THROW((void)pipe.run(encoded_sample(64, 64), 3, 2, rng), ContractViolation);
  EXPECT_THROW((void)pipe.run(encoded_sample(64, 64), 0, 6, rng), ContractViolation);
  EXPECT_THROW((void)pipe.op(5), ContractViolation);
}

TEST(Pipeline, CustomTargetSize) {
  const auto pipe = Pipeline::standard(96);
  Rng rng(4);
  const auto out = pipe.run(encoded_sample(300, 300), 0, 2, rng);
  EXPECT_EQ(std::get<image::Image>(out).width(), 96);
}

}  // namespace
}  // namespace sophon::pipeline
