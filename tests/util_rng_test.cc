#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/check.h"

namespace sophon {
namespace {

TEST(SplitMix, DeterministicAndDistinct) {
  SplitMix64 a(1);
  SplitMix64 b(1);
  SplitMix64 c(2);
  const auto x = a.next();
  EXPECT_EQ(x, b.next());
  EXPECT_NE(x, c.next());
}

TEST(DeriveSeed, KeysAreIndependent) {
  const auto base = 42ULL;
  std::set<std::uint64_t> seen;
  for (std::uint64_t k = 0; k < 1000; ++k) seen.insert(derive_seed(base, k));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(DeriveSeed, LabelsDiffer) {
  EXPECT_NE(derive_seed(7, "shuffle"), derive_seed(7, "augment"));
  EXPECT_EQ(derive_seed(7, "shuffle"), derive_seed(7, "shuffle"));
}

TEST(Rng, DeterministicStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(10);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(12);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(13);
  EXPECT_THROW((void)rng.uniform_int(3, 2), ContractViolation);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(15);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(16);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(17);
  std::vector<double> vals;
  constexpr int kN = 50001;
  vals.reserve(kN);
  for (int i = 0; i < kN; ++i) vals.push_back(rng.lognormal(std::log(100.0), 0.5));
  std::nth_element(vals.begin(), vals.begin() + kN / 2, vals.end());
  EXPECT_NEAR(vals[kN / 2], 100.0, 3.0);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(18);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace sophon
