#include "net/wire.h"

#include <gtest/gtest.h>

#include "codec/sjpg.h"
#include "util/rng.h"

namespace sophon::net {
namespace {

pipeline::SampleData random_tensor(int c, int h, int w, std::uint64_t seed) {
  image::Tensor t(c, h, w);
  Rng rng(seed);
  for (auto& v : t.data()) v = static_cast<float>(rng.normal());
  return t;
}

TEST(Wire, EncodedBlobRoundTrip) {
  pipeline::EncodedBlob blob;
  blob.bytes = {1, 2, 3, 4, 5};
  const auto framed = serialize_sample(pipeline::SampleData{blob});
  const auto back = deserialize_sample(framed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<pipeline::EncodedBlob>(*back).bytes, blob.bytes);
}

TEST(Wire, ImageRoundTrip) {
  image::Image img(13, 7, 3);
  Rng rng(1);
  for (auto& px : img.data()) px = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const auto framed = serialize_sample(pipeline::SampleData{img});
  const auto back = deserialize_sample(framed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<image::Image>(*back), img);
}

TEST(Wire, GrayscaleImageRoundTrip) {
  image::Image img(5, 4, 1);
  img.set(2, 2, 0, 99);
  const auto back = deserialize_sample(serialize_sample(pipeline::SampleData{img}));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<image::Image>(*back), img);
}

TEST(Wire, TensorRoundTripBitExact) {
  const auto t = random_tensor(3, 9, 11, 5);
  const auto back = deserialize_sample(serialize_sample(t));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<image::Tensor>(*back), std::get<image::Tensor>(t));
}

TEST(Wire, FramedSizeMatchesAnalyticWireSize) {
  // The analytic wire_size must agree byte-for-byte with serialisation —
  // it is what the simulator charges the link.
  pipeline::EncodedBlob blob;
  blob.bytes.assign(12345, 7);
  const pipeline::SampleData samples[] = {
      pipeline::SampleData{blob},
      pipeline::SampleData{image::Image(224, 224, 3)},
      pipeline::SampleData{image::Tensor(3, 224, 224)},
  };
  for (const auto& s : samples) {
    auto shape = pipeline::shape_of(s);
    EXPECT_EQ(wire_size(shape).count(),
              static_cast<std::int64_t>(serialize_sample(s).size()));
  }
}

TEST(Wire, RejectsTruncatedHeader) {
  EXPECT_FALSE(deserialize_sample(std::vector<std::uint8_t>(8, 0)).has_value());
}

TEST(Wire, RejectsLengthMismatch) {
  auto framed = serialize_sample(pipeline::SampleData{image::Image(4, 4, 3)});
  framed.pop_back();
  EXPECT_FALSE(deserialize_sample(framed).has_value());
  framed.push_back(0);
  framed.push_back(0);
  EXPECT_FALSE(deserialize_sample(framed).has_value());
}

TEST(Wire, RejectsBadTag) {
  auto framed = serialize_sample(pipeline::SampleData{pipeline::EncodedBlob{{1, 2}}});
  framed[0] = 99;
  EXPECT_FALSE(deserialize_sample(framed).has_value());
}

TEST(Wire, RejectsImpossibleImageDims) {
  auto framed = serialize_sample(pipeline::SampleData{image::Image(4, 4, 3)});
  framed[9] = 2;  // channels = 2 is not a legal image
  EXPECT_FALSE(deserialize_sample(framed).has_value());
}

}  // namespace
}  // namespace sophon::net
