#include "net/wire.h"

#include <gtest/gtest.h>

#include "codec/sjpg.h"
#include "net/message.h"
#include "util/rng.h"

namespace sophon::net {
namespace {

pipeline::SampleData random_tensor(int c, int h, int w, std::uint64_t seed) {
  image::Tensor t(c, h, w);
  Rng rng(seed);
  for (auto& v : t.data()) v = static_cast<float>(rng.normal());
  return t;
}

TEST(Wire, EncodedBlobRoundTrip) {
  pipeline::EncodedBlob blob;
  blob.bytes = {1, 2, 3, 4, 5};
  const auto framed = serialize_sample(pipeline::SampleData{blob});
  const auto back = deserialize_sample(framed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<pipeline::EncodedBlob>(*back).bytes, blob.bytes);
}

TEST(Wire, ImageRoundTrip) {
  image::Image img(13, 7, 3);
  Rng rng(1);
  for (auto& px : img.data()) px = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const auto framed = serialize_sample(pipeline::SampleData{img});
  const auto back = deserialize_sample(framed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<image::Image>(*back), img);
}

TEST(Wire, GrayscaleImageRoundTrip) {
  image::Image img(5, 4, 1);
  img.set(2, 2, 0, 99);
  const auto back = deserialize_sample(serialize_sample(pipeline::SampleData{img}));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<image::Image>(*back), img);
}

TEST(Wire, TensorRoundTripBitExact) {
  const auto t = random_tensor(3, 9, 11, 5);
  const auto back = deserialize_sample(serialize_sample(t));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<image::Tensor>(*back), std::get<image::Tensor>(t));
}

TEST(Wire, FramedSizeMatchesAnalyticWireSize) {
  // The analytic wire_size must agree byte-for-byte with serialisation —
  // it is what the simulator charges the link.
  pipeline::EncodedBlob blob;
  blob.bytes.assign(12345, 7);
  const pipeline::SampleData samples[] = {
      pipeline::SampleData{blob},
      pipeline::SampleData{image::Image(224, 224, 3)},
      pipeline::SampleData{image::Tensor(3, 224, 224)},
  };
  for (const auto& s : samples) {
    auto shape = pipeline::shape_of(s);
    EXPECT_EQ(wire_size(shape).count(),
              static_cast<std::int64_t>(serialize_sample(s).size()));
  }
}

TEST(Wire, RejectsTruncatedHeader) {
  EXPECT_FALSE(deserialize_sample(std::vector<std::uint8_t>(8, 0)).has_value());
}

TEST(Wire, RejectsLengthMismatch) {
  auto framed = serialize_sample(pipeline::SampleData{image::Image(4, 4, 3)});
  framed.pop_back();
  EXPECT_FALSE(deserialize_sample(framed).has_value());
  framed.push_back(0);
  framed.push_back(0);
  EXPECT_FALSE(deserialize_sample(framed).has_value());
}

TEST(Wire, RejectsBadTag) {
  auto framed = serialize_sample(pipeline::SampleData{pipeline::EncodedBlob{{1, 2}}});
  framed[0] = 99;
  EXPECT_FALSE(deserialize_sample(framed).has_value());
}

TEST(Wire, RejectsImpossibleImageDims) {
  auto framed = serialize_sample(pipeline::SampleData{image::Image(4, 4, 3)});
  framed[9] = 2;  // channels = 2 is not a legal image
  EXPECT_FALSE(deserialize_sample(framed).has_value());
}

// -- WireFuzz: adversarial-input properties, run in the --asan suite --------
//
// The parsers sit on the trust boundary: shard payloads and fetch responses
// arrive from disk or the wire and may be truncated or bit-rotted. The
// property is not "parsing fails" (a flip inside payload bytes can still
// parse) but "parsing never crashes, over-reads, or returns a value whose
// advertised shape disagrees with its storage" — ASan turns any over-read
// into a hard failure.

std::vector<std::vector<std::uint8_t>> fuzz_frames() {
  pipeline::EncodedBlob blob;
  blob.bytes.assign(313, 0x5A);
  image::Image img(11, 5, 3);
  Rng rng(7);
  for (auto& px : img.data()) px = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return {
      serialize_sample(pipeline::SampleData{pipeline::EncodedBlob{{}}}),
      serialize_sample(pipeline::SampleData{blob}),
      serialize_sample(pipeline::SampleData{img}),
      serialize_sample(random_tensor(3, 6, 9, 11)),
  };
}

/// A parsed payload must be internally consistent before anyone walks it.
void expect_well_formed(const pipeline::SampleData& data) {
  if (const auto* t = std::get_if<image::Tensor>(&data)) {
    EXPECT_EQ(t->data().size(),
              static_cast<std::size_t>(t->channels()) * t->height() * t->width());
  } else if (const auto* i = std::get_if<image::Image>(&data)) {
    EXPECT_EQ(i->data().size(),
              static_cast<std::size_t>(i->channels()) * i->height() * i->width());
  }
}

TEST(WireFuzz, EveryTruncationReturnsNullopt) {
  for (const auto& framed : fuzz_frames()) {
    for (std::size_t keep = 0; keep < framed.size(); ++keep) {
      const auto parsed =
          deserialize_sample(std::span<const std::uint8_t>(framed.data(), keep));
      EXPECT_FALSE(parsed.has_value()) << "frame of " << framed.size() << " cut to " << keep;
    }
  }
}

TEST(WireFuzz, SeededBitFlipsNeverCrashOrOverread) {
  Rng rng(42);
  for (const auto& framed : fuzz_frames()) {
    for (int trial = 0; trial < 300; ++trial) {
      auto mutated = framed;
      const int flips = static_cast<int>(rng.uniform_int(1, 4));
      for (int f = 0; f < flips; ++f) {
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
        mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      }
      if (const auto parsed = deserialize_sample(mutated)) expect_well_formed(*parsed);
    }
  }
}

TEST(WireFuzz, UnpackResponseSurvivesTruncationAndFlips) {
  Rng rng(9);
  for (const auto& framed : fuzz_frames()) {
    for (const bool compressed : {false, true}) {
      FetchResponse response;
      response.payload_compressed = compressed;
      for (std::size_t keep = 0; keep < framed.size(); keep += 3) {
        response.payload.assign(framed.begin(),
                                framed.begin() + static_cast<std::ptrdiff_t>(keep));
        EXPECT_FALSE(unpack_response(response).has_value());
      }
      for (int trial = 0; trial < 100; ++trial) {
        response.payload = framed;
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(framed.size()) - 1));
        response.payload[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
        if (const auto parsed = unpack_response(response)) expect_well_formed(*parsed);
      }
    }
  }
}

TEST(WireFuzz, PureGarbageNeverParsesAsImageOrTensor) {
  // Random noise has a ~1/256 chance of hitting a legal tag byte; whatever
  // survives the tag check must still satisfy the length equation, so the
  // loop doubles as a check that accidental parses stay well-formed.
  Rng rng(1234);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> noise(
        static_cast<std::size_t>(rng.uniform_int(0, 96)));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    if (const auto parsed = deserialize_sample(noise)) expect_well_formed(*parsed);
  }
}

}  // namespace
}  // namespace sophon::net
