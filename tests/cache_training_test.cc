#include "cache/cached_training.h"

#include <gtest/gtest.h>

#include "core/decision.h"
#include "core/profiler.h"

namespace sophon::cache {
namespace {

struct Fixture {
  dataset::Catalog catalog = dataset::Catalog::generate(dataset::openimages_profile(2000), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  sim::ClusterConfig cluster = [] {
    sim::ClusterConfig c;
    c.bandwidth = Bandwidth::mbps(100.0);
    c.batch_size = 64;
    return c;
  }();
  Seconds batch_time = Seconds::millis(25.0);

  CachedTrainingSession session(Bytes capacity, core::OffloadPlan plan = {}) {
    return CachedTrainingSession(catalog, pipe, cm, cluster, batch_time, std::move(plan),
                                 capacity, 42);
  }
};

TEST(CachedTraining, ColdEpochAllMisses) {
  Fixture f;
  auto session = f.session(Bytes::gib(1));
  const auto e0 = session.run_epoch();
  EXPECT_EQ(e0.hits, 0u);
  EXPECT_EQ(e0.misses, f.catalog.size());
  EXPECT_DOUBLE_EQ(e0.hit_rate(), 0.0);
}

TEST(CachedTraining, WholeDatasetFitsMeansNoSteadyStateTraffic) {
  Fixture f;
  auto session = f.session(f.catalog.total_encoded() + Bytes::mib(1));
  (void)session.run_epoch();
  const auto e1 = session.run_epoch();
  EXPECT_EQ(e1.hits, f.catalog.size());
  EXPECT_EQ(e1.stats.traffic.count(), 0);
}

TEST(CachedTraining, SteadyStateShowsLruScanThrashing) {
  // Epoch-reshuffled training is a worst case for LRU: a sample visited at
  // position p only survives to its next visit if fewer than C bytes of
  // other samples pass through in between, giving a steady-state hit rate
  // of roughly (C/N)^2/2 — far BELOW the naive capacity fraction C/N. This
  // is exactly why capacity-bounded caching underdelivers for DL training
  // (the paper's intro argument), and the simulator reproduces it.
  Fixture f;
  const auto capacity = Bytes(f.catalog.total_encoded().count() / 2);
  auto session = f.session(capacity);
  (void)session.run_epoch();
  (void)session.run_epoch();
  const auto e2 = session.run_epoch();
  EXPECT_GT(e2.hit_rate(), 0.05);
  EXPECT_LT(e2.hit_rate(), 0.3);  // well below the 0.5 capacity fraction
  EXPECT_LT(e2.stats.traffic, f.catalog.total_encoded());
}

TEST(CachedTraining, HitRateMonotoneInCapacity) {
  Fixture f;
  double prev = -1.0;
  for (const int denom : {8, 4, 2, 1}) {
    auto session = f.session(Bytes(f.catalog.total_encoded().count() / denom +
                                   (denom == 1 ? 1024 : 0)));
    (void)session.run_epoch();
    (void)session.run_epoch();
    const auto e = session.run_epoch();
    EXPECT_GE(e.hit_rate(), prev - 0.02) << "capacity 1/" << denom;
    prev = e.hit_rate();
  }
  EXPECT_GT(prev, 0.99);  // full capacity → full hits
}

TEST(CachedTraining, TrafficDecreasesEpochOverEpoch) {
  Fixture f;
  auto session = f.session(Bytes(f.catalog.total_encoded().count() / 3));
  const auto e0 = session.run_epoch();
  const auto e1 = session.run_epoch();
  EXPECT_LT(e1.stats.traffic, e0.stats.traffic);
  EXPECT_LT(e1.stats.epoch_time.value(), e0.stats.epoch_time.value() + 1e-9);
}

TEST(CachedTraining, ZeroCapacityMatchesPlainSimulation) {
  Fixture f;
  auto session = f.session(Bytes(0));
  const auto e0 = session.run_epoch();
  const auto plain = sim::simulate_epoch(f.catalog, f.pipe, f.cm, f.cluster, f.batch_time, {},
                                         42, 0);
  EXPECT_EQ(e0.stats.traffic, plain.traffic);
  EXPECT_DOUBLE_EQ(e0.stats.epoch_time.value(), plain.epoch_time.value());
}

TEST(CachedTraining, OffloadedSamplesBypassCache) {
  Fixture f;
  // Offload everything: the cache must stay empty.
  auto session = f.session(Bytes::gib(8), core::OffloadPlan::uniform(f.catalog.size(), 2));
  const auto e0 = session.run_epoch();
  EXPECT_EQ(e0.hits + e0.misses, 0u);
  EXPECT_EQ(session.cache().entries(), 0u);
  EXPECT_GT(e0.stats.offloaded_samples, 0u);
}

TEST(CachedTraining, CachePlusSophonBeatsEither) {
  Fixture f;
  const auto profiles = core::profile_stage2(f.catalog, f.pipe, f.cm);
  const auto decision = core::decide_offloading(profiles, f.cluster, Seconds(0.5));
  const auto capacity = Bytes(f.catalog.total_encoded().count() / 4);

  auto cache_only = f.session(capacity);
  auto sophon_only = f.session(Bytes(0), decision.plan);
  auto combined = f.session(capacity, decision.plan);
  // Warm up two epochs, compare the third.
  for (int i = 0; i < 2; ++i) {
    (void)cache_only.run_epoch();
    (void)sophon_only.run_epoch();
    (void)combined.run_epoch();
  }
  const auto c = cache_only.run_epoch();
  const auto s = sophon_only.run_epoch();
  const auto both = combined.run_epoch();
  EXPECT_LT(both.stats.traffic, c.stats.traffic);
  EXPECT_LT(both.stats.traffic, s.stats.traffic);
}

TEST(CachedTraining, EpochCounterAdvances) {
  Fixture f;
  auto session = f.session(Bytes::mib(64));
  EXPECT_EQ(session.epochs_run(), 0u);
  (void)session.run_epoch();
  (void)session.run_epoch();
  EXPECT_EQ(session.epochs_run(), 2u);
}

}  // namespace
}  // namespace sophon::cache
