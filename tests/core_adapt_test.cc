#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/adapt/adapt.h"
#include "core/adapt/loop.h"
#include "core/profiler.h"
#include "loader/loader.h"
#include "net/wire.h"
#include "storage/dataset_store.h"
#include "storage/server.h"
#include "util/check.h"

namespace sophon::core::adapt {
namespace {

// A small OpenImages-like corpus plus its stage-2 profiles: big enough for
// the greedy to have real choices, small enough for tight test loops.
struct Fixture {
  dataset::Catalog catalog =
      dataset::Catalog::generate(dataset::openimages_profile(600), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  std::vector<SampleProfile> profiles = profile_stage2(catalog, pipe, cm);

  // At 8 Gbps the network is not predominant and the greedy offloads
  // nothing — the plan with the most to lose when the link degrades.
  sim::ClusterConfig planned = [] {
    sim::ClusterConfig c;
    c.bandwidth = Bandwidth::mbps(8000.0);
    return c;
  }();
  Seconds gpu_epoch_time{3.0};

  AdaptiveReplanner replanner(AdaptOptions options = {}) {
    return AdaptiveReplanner(profiles, planned, gpu_epoch_time, options);
  }

  // The observation a perfectly calibrated epoch would report.
  static EpochObservation faithful(const AdaptiveReplanner& r) {
    EpochObservation obs;
    obs.observed = r.predicted();
    // Traffic consistent with the predicted t_net under the calibrated link.
    obs.traffic = Bytes(static_cast<std::int64_t>(
        r.calibrated().bandwidth.bytes_per_sec() * r.predicted().t_net.value()));
    obs.epoch_time = r.predicted().predicted_epoch_time();
    return obs;
  }
};

TEST(AdaptObserve, FoldsEpochStatsIntoCostComponents) {
  sim::EpochStats stats;
  stats.gpu_busy = Seconds(10.0);
  stats.compute_cpu_busy = Seconds(96.0);   // 48 cores -> 2 s
  stats.storage_cpu_busy = Seconds(24.0);   // 48 cores at speed 0.5 -> 1 s
  stats.traffic = Bytes::mib(500);
  stats.epoch_time = Seconds(12.0);
  stats.samples = 1000;
  sim::ClusterConfig actual;
  actual.storage_core_speed = 0.5;
  actual.bandwidth = Bandwidth::mbps(500.0);
  sim::FaultReplayStats faults;
  faults.retries = 7;
  faults.degraded = 3;

  const auto obs = observe_epoch(stats, actual, &faults);
  EXPECT_DOUBLE_EQ(obs.observed.t_g.value(), 10.0);
  EXPECT_DOUBLE_EQ(obs.observed.t_cc.value(), 2.0);
  EXPECT_DOUBLE_EQ(obs.observed.t_cs.value(), 1.0);
  EXPECT_DOUBLE_EQ(obs.observed.t_net.value(),
                   actual.bandwidth.transfer_time(stats.traffic).value());
  EXPECT_EQ(obs.retries, 7u);
  EXPECT_EQ(obs.degraded, 3u);
  EXPECT_DOUBLE_EQ(obs.degraded_rate(), 0.003);
}

TEST(AdaptDrift, NormalisesByPredictedEpochTime) {
  EpochCostVector predicted;
  predicted.t_g = Seconds(4.0);
  predicted.t_net = Seconds(10.0);  // predominant -> denominator
  auto observed = predicted;
  observed.t_net = Seconds(15.0);
  const auto drift = measure_drift(predicted, observed);
  EXPECT_DOUBLE_EQ(drift.t_net, 0.5);
  EXPECT_DOUBLE_EQ(drift.max_drift, 0.5);
  EXPECT_EQ(drift.worst, "t_net");
  EXPECT_FALSE(drift.bottleneck_shifted);

  observed.t_g = Seconds(20.0);  // now the GPU dominates
  const auto shifted = measure_drift(predicted, observed);
  EXPECT_EQ(shifted.worst, "t_g");
  EXPECT_TRUE(shifted.bottleneck_shifted);
}

TEST(AdaptCalibrate, RefitsBandwidthAndStorageSpeedFromMeasurements) {
  sim::ClusterConfig planned;
  planned.bandwidth = Bandwidth::mbps(1000.0);
  planned.storage_core_speed = 1.0;
  EpochCostVector predicted;
  predicted.t_cs = Seconds(2.0);
  EpochObservation obs;
  obs.traffic = Bytes(250'000'000);  // 2 Gbit
  obs.observed.t_net = Seconds(8.0);  // -> 250 Mbps effective
  obs.observed.t_cs = Seconds(4.0);   // storage cores half as fast as planned

  const auto calibrated = calibrate_cluster(planned, predicted, obs);
  EXPECT_NEAR(calibrated.bandwidth.bps(), 250e6, 1e-3);
  EXPECT_NEAR(calibrated.storage_core_speed, 0.5, 1e-12);
  // Knobs the observation says nothing about stay as planned.
  EXPECT_EQ(calibrated.storage_cores, planned.storage_cores);
  EXPECT_EQ(calibrated.batch_size, planned.batch_size);
}

TEST(AdaptReplanner, ZeroDriftIsANoOp) {
  Fixture f;
  auto r = f.replanner();
  const auto before = r.plan();
  for (std::size_t epoch = 0; epoch < 5; ++epoch) {
    r.begin_epoch(epoch);
    const auto decision = r.end_epoch(Fixture::faithful(r));
    EXPECT_EQ(decision.outcome, ReplanOutcome::kNoDrift);
  }
  EXPECT_EQ(r.plan(), before) << "plan lease must be untouched with zero drift";
  EXPECT_EQ(r.generation(), 0u);
}

TEST(AdaptReplanner, DriftExactlyAtThresholdDoesNotTrigger) {
  Fixture f;
  // Perturb t_net and compute the exact drift that perturbation registers.
  auto probe = f.replanner();
  auto observation = Fixture::faithful(probe);
  observation.observed.t_net = observation.observed.t_net + Seconds(2.0);
  const double exact = measure_drift(probe.predicted(), observation.observed).max_drift;
  ASSERT_GT(exact, 0.0);

  AdaptOptions at;
  at.drift_threshold = exact;  // trigger requires strictly-greater drift
  auto r_at = f.replanner(at);
  r_at.begin_epoch(0);
  EXPECT_EQ(r_at.end_epoch(observation).outcome, ReplanOutcome::kNoDrift);
  EXPECT_EQ(r_at.generation(), 0u);

  AdaptOptions below;
  below.drift_threshold = exact * 0.999;
  auto r_below = f.replanner(below);
  r_below.begin_epoch(0);
  EXPECT_NE(r_below.end_epoch(observation).outcome, ReplanOutcome::kNoDrift);
}

// A degraded link: the same traffic took 4x longer than predicted. The
// first boundary must replan; an immediate repeat must hit the cooldown;
// once the cooldown expires the replanner may act again.
TEST(AdaptReplanner, CooldownSuppressesBackToBackReplans) {
  Fixture f;
  AdaptOptions options;
  options.replan_cooldown = 3;
  options.min_improvement = 0.0;
  auto r = f.replanner(options);

  auto degraded = [&] {
    auto obs = Fixture::faithful(r);
    obs.observed.t_net = obs.observed.t_net * 4.0;
    obs.observed.t_net = std::max(obs.observed.t_net, Seconds(20.0));
    return obs;
  };

  r.begin_epoch(0);
  ASSERT_EQ(r.end_epoch(degraded()).outcome, ReplanOutcome::kReplanned);
  EXPECT_EQ(r.generation(), 1u);

  // Pretend the link degraded *again* right away: drift re-fires, but the
  // cooldown holds the plan.
  r.begin_epoch(1);
  const auto suppressed = r.end_epoch(degraded());
  EXPECT_EQ(suppressed.outcome, ReplanOutcome::kSuppressedCooldown);
  EXPECT_EQ(r.generation(), 1u);
  r.begin_epoch(2);
  EXPECT_EQ(r.end_epoch(degraded()).outcome, ReplanOutcome::kSuppressedCooldown);

  // Epoch 3 is `cooldown` epochs after the accepted re-plan: eligible again.
  r.begin_epoch(3);
  const auto eligible = r.end_epoch(degraded());
  EXPECT_NE(eligible.outcome, ReplanOutcome::kSuppressedCooldown);
}

// The improvement floor keeps the plan but re-anchors the prediction to the
// measured coefficients, so a persistent-but-unfixable condition stops
// registering as drift instead of firing forever.
TEST(AdaptReplanner, ImprovementFloorReanchorsPrediction) {
  Fixture f;
  AdaptOptions options;
  options.min_improvement = 2.0;  // no candidate can promise a 200% win
  auto r = f.replanner(options);
  const auto before = r.plan();

  auto obs = Fixture::faithful(r);
  obs.observed.t_net = obs.observed.t_net + Seconds(30.0);
  r.begin_epoch(0);
  EXPECT_EQ(r.end_epoch(obs).outcome, ReplanOutcome::kSuppressedImprovement);
  EXPECT_EQ(r.plan(), before);
  EXPECT_EQ(r.generation(), 0u);

  // The same conditions again: now explained by the re-anchored prediction.
  r.begin_epoch(1);
  EXPECT_EQ(r.end_epoch(obs).outcome, ReplanOutcome::kNoDrift);
}

TEST(AdaptReplanner, BeginEndPairingIsEnforced) {
  Fixture f;
  auto r = f.replanner();
  EXPECT_THROW(r.end_epoch(Fixture::faithful(r)), ContractViolation);
  r.begin_epoch(0);
  EXPECT_THROW(r.begin_epoch(1), ContractViolation);
}

// Oscillating link: the bandwidth flips between healthy and degraded every
// epoch. Hysteresis must keep the plan from thrashing — re-plans stay rare
// and accepted swaps honour the cooldown spacing.
TEST(AdaptLoop, OscillatingBandwidthDoesNotThrash) {
  Fixture f;
  RunOptions options;
  options.epochs = 12;
  options.adapt_options.replan_cooldown = 2;
  options.bandwidth_at = [](std::size_t epoch) {
    return Bandwidth::mbps(epoch % 2 == 0 ? 8000.0 : 2000.0);
  };
  const auto result = run_adaptive(f.catalog, f.pipe, f.cm, f.planned, Seconds(1.0), options);

  EXPECT_LE(result.replans, 2u) << "oscillation must not swap the plan every flip";
  std::size_t last_swap = 0;
  bool swapped_before = false;
  for (const auto& row : result.rows) {
    if (row.decision.outcome == ReplanOutcome::kReplanned) {
      if (swapped_before) {
        EXPECT_GE(row.epoch - last_swap, options.adapt_options.replan_cooldown)
            << "accepted re-plans closer than the cooldown";
      }
      last_swap = row.epoch;
      swapped_before = true;
    }
  }
  // The loop converges: the tail of the run stops churning decisions.
  EXPECT_NE(result.rows.back().decision.outcome, ReplanOutcome::kReplanned);
}

TEST(AdaptLoop, StaticAndAdaptiveAgreeUntilConditionsDrift) {
  Fixture f;
  RunOptions options;
  options.epochs = 6;
  options.bandwidth_at = [](std::size_t epoch) {
    return Bandwidth::mbps(epoch >= 3 ? 250.0 : 8000.0);
  };
  auto static_options = options;
  static_options.adapt = false;
  const auto adaptive = run_adaptive(f.catalog, f.pipe, f.cm, f.planned, Seconds(1.0), options);
  const auto fixed = run_adaptive(f.catalog, f.pipe, f.cm, f.planned, Seconds(1.0),
                                  static_options);
  ASSERT_EQ(adaptive.rows.size(), fixed.rows.size());
  // Identical until (and including) the epoch that observes the drift...
  for (std::size_t e = 0; e <= 3; ++e) {
    EXPECT_EQ(adaptive.rows[e].epoch_time.value(), fixed.rows[e].epoch_time.value()) << e;
    EXPECT_EQ(adaptive.rows[e].traffic.count(), fixed.rows[e].traffic.count()) << e;
  }
  // ...then the swapped plan pulls the adaptive run ahead.
  EXPECT_EQ(adaptive.replans, 1u);
  EXPECT_LT(adaptive.rows[5].epoch_time.value(), fixed.rows[5].epoch_time.value());
  EXPECT_LT(adaptive.rows[5].traffic.count(), fixed.rows[5].traffic.count());
}

// The plan-swap safety property, on the real fetch path: a loader holding
// the previous plan's lease keeps producing tensors bit-identical to that
// plan even after the replanner swaps in a new plan mid-epoch.
TEST(AdaptLoader, ReplanWhilePrefetchInFlightKeepsLeasedPlanConsistent) {
  auto profile = dataset::openimages_profile(24);
  profile.min_pixels = 6e4;
  profile.max_pixels = 2.5e5;
  const auto catalog = dataset::Catalog::generate(profile, 42);
  const pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  storage::DatasetStore store{catalog, 42, profile.quality};
  storage::StorageServer server{store, pipe, cm, {.seed = 42}};

  // Initial plan: a hand-built mixed prefix assignment, leased to the
  // replanner so plan() hands out shared ownership of this exact object.
  auto initial = std::make_shared<const OffloadPlan>([&] {
    OffloadPlan plan(catalog.size());
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      plan.set(i, static_cast<std::uint8_t>(i % 3 == 0 ? 2 : 0));
    }
    return plan;
  }());

  sim::ClusterConfig planned;
  planned.bandwidth = Bandwidth::mbps(8000.0);
  AdaptOptions adapt_options;
  adapt_options.min_improvement = 0.0;
  AdaptiveReplanner replanner(profile_stage2(catalog, pipe, cm), planned, Seconds(3.0),
                              adapt_options, initial);
  ASSERT_EQ(replanner.plan().get(), initial.get());

  // Reference tensors for the *initial* plan, via the storage server's own
  // fetch path (the same oracle loader_prefetch_test uses).
  std::map<std::uint64_t, image::Tensor> reference;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    net::FetchRequest req;
    req.sample_id = i;
    req.epoch = 5;
    req.directive.prefix_len = initial->prefix(i);
    const auto resp = server.fetch(req);
    auto payload = net::deserialize_sample(resp.payload);
    auto tensor = pipe.run_seeded(std::move(*payload), resp.stage, pipe.size(),
                                  storage::augmentation_seed(42, 5, i));
    reference.emplace(i, std::get<image::Tensor>(std::move(tensor)));
  }

  // Epoch 5 runs with prefetching over the leased plan.
  const auto lease = replanner.plan();
  loader::DataLoader::Options loader_options;
  loader_options.num_workers = 4;
  loader_options.queue_capacity = 8;
  loader_options.seed = 42;
  loader_options.epoch = 5;
  loader_options.prefetch.depth = 16;
  loader::DataLoader loader(server, pipe, *lease, catalog.size(), loader_options);
  loader.start();

  // Mid-epoch (prefetch credits in flight), the replanner observes a badly
  // degraded link and swaps the plan.
  replanner.begin_epoch(5);
  std::size_t count = 0;
  bool swapped = false;
  while (const auto item = loader.next()) {
    EXPECT_EQ(item->tensor, reference.at(item->sample_id)) << "sample " << item->sample_id;
    ++count;
    if (!swapped && count == catalog.size() / 2) {
      auto obs = Fixture::faithful(replanner);
      obs.observed.t_net = obs.observed.t_net + Seconds(100.0);
      obs.traffic = Bytes::mib(100);
      const auto decision = replanner.end_epoch(obs);
      ASSERT_EQ(decision.outcome, ReplanOutcome::kReplanned);
      swapped = true;
    }
  }
  EXPECT_EQ(count, catalog.size());
  ASSERT_TRUE(swapped);
  // The swap installed a fresh object; the lease this epoch ran on is the
  // original plan, untouched.
  EXPECT_NE(replanner.plan().get(), lease.get());
  EXPECT_EQ(lease.get(), initial.get());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(lease->prefix(i), i % 3 == 0 ? 2u : 0u);
  }
}

}  // namespace
}  // namespace sophon::core::adapt
