#include "core/multitenant.h"

#include <gtest/gtest.h>

#include "core/profiler.h"
#include "dataset/catalog.h"
#include "pipeline/pipeline.h"
#include "util/check.h"

namespace sophon::core {
namespace {

TenantJob make_job(const std::string& name, std::size_t samples, double bandwidth_mbps,
                   Seconds t_g, std::uint64_t seed) {
  const auto catalog = dataset::Catalog::generate(dataset::openimages_profile(samples), seed);
  const pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  TenantJob job;
  job.name = name;
  job.profiles = profile_stage2(catalog, pipe, cm);
  job.gpu_epoch_time = t_g;
  job.cluster.bandwidth = Bandwidth::mbps(bandwidth_mbps);
  return job;
}

struct Fixture {
  // Two unequal jobs: a heavy one on a slow link and a lighter one.
  std::vector<TenantJob> jobs = {
      make_job("heavy", 3000, 80.0, Seconds(2.0), 1),
      make_job("light", 1000, 200.0, Seconds(1.0), 2),
  };
};

TEST(PredictJobEpoch, MoreCoresNeverSlower) {
  Fixture f;
  Seconds prev = predict_job_epoch(f.jobs[0], 0);
  for (int cores = 1; cores <= 8; ++cores) {
    const Seconds t = predict_job_epoch(f.jobs[0], cores);
    EXPECT_LE(t.value(), prev.value() + 1e-9) << cores;
    prev = t;
  }
}

TEST(PredictJobEpoch, ZeroCoresEqualsNoOffloadBaseline) {
  Fixture f;
  const auto t0 = predict_job_epoch(f.jobs[0], 0);
  const auto baseline =
      decide_offloading(f.jobs[0].profiles,
                        [&] {
                          auto c = f.jobs[0].cluster;
                          c.storage_cores = 0;
                          return c;
                        }(),
                        f.jobs[0].gpu_epoch_time)
          .baseline.predicted_epoch_time();
  EXPECT_NEAR(t0.value(), baseline.value(), 1e-9);
}

TEST(Allocate, UsesAtMostTheBudget) {
  Fixture f;
  const auto alloc = allocate_storage_cores(f.jobs, 8, SchedulerObjective::kMinimizeTotal);
  int used = 0;
  for (const auto c : alloc.cores) used += c;
  EXPECT_LE(used, 8);
  ASSERT_EQ(alloc.cores.size(), 2u);
  ASSERT_EQ(alloc.predicted_epoch.size(), 2u);
}

TEST(Allocate, TotalsAreConsistent) {
  Fixture f;
  const auto alloc = allocate_storage_cores(f.jobs, 6, SchedulerObjective::kMinimizeTotal);
  Seconds total;
  Seconds max_t;
  for (const auto t : alloc.predicted_epoch) {
    total += t;
    max_t = std::max(max_t, t);
  }
  EXPECT_NEAR(alloc.total_epoch.value(), total.value(), 1e-9);
  EXPECT_NEAR(alloc.max_epoch.value(), max_t.value(), 1e-9);
}

TEST(Allocate, GreedyNoWorseThanEqualSplit) {
  Fixture f;
  for (const int budget : {2, 4, 8, 16}) {
    const auto greedy =
        allocate_storage_cores(f.jobs, budget, SchedulerObjective::kMinimizeTotal);
    const auto equal = equal_split(f.jobs, budget);
    EXPECT_LE(greedy.total_epoch.value(), equal.total_epoch.value() + 1e-9) << budget;

    const auto greedy_mk =
        allocate_storage_cores(f.jobs, budget, SchedulerObjective::kMinimizeMakespan);
    EXPECT_LE(greedy_mk.max_epoch.value(), equal.max_epoch.value() + 1e-9) << budget;
  }
}

TEST(Allocate, StopsWhenNoJobBenefits) {
  Fixture f;
  const auto alloc = allocate_storage_cores(f.jobs, 1000, SchedulerObjective::kMinimizeTotal);
  int used = 0;
  for (const auto c : alloc.cores) used += c;
  EXPECT_LT(used, 1000);  // saturates long before the budget
}

TEST(Allocate, ZeroBudget) {
  Fixture f;
  const auto alloc = allocate_storage_cores(f.jobs, 0, SchedulerObjective::kMinimizeTotal);
  EXPECT_EQ(alloc.cores[0], 0);
  EXPECT_EQ(alloc.cores[1], 0);
}

TEST(Allocate, SingleJobGetsEverythingUseful) {
  Fixture f;
  std::vector<TenantJob> one{f.jobs[0]};
  const auto alloc = allocate_storage_cores(one, 4, SchedulerObjective::kMinimizeTotal);
  EXPECT_GT(alloc.cores[0], 0);
  EXPECT_NEAR(alloc.predicted_epoch[0].value(), predict_job_epoch(one[0], alloc.cores[0]).value(),
              1e-9);
}

TEST(EqualSplit, DistributesRemainder) {
  Fixture f;
  const auto alloc = equal_split(f.jobs, 5);
  EXPECT_EQ(alloc.cores[0] + alloc.cores[1], 5);
  EXPECT_EQ(std::abs(alloc.cores[0] - alloc.cores[1]), 1);
}

TEST(Allocate, RejectsEmptyJobs) {
  EXPECT_THROW((void)allocate_storage_cores({}, 4, SchedulerObjective::kMinimizeTotal),
               ContractViolation);
}

}  // namespace
}  // namespace sophon::core
