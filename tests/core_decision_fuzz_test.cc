// Fuzz the decision engine with synthetic random profiles (not derived from
// any catalog): whatever the size/cost landscape, the structural invariants
// must hold and the internal ledger must agree with the independent
// evaluator.
#include <gtest/gtest.h>

#include "core/decision.h"
#include "util/rng.h"

namespace sophon::core {
namespace {

std::vector<SampleProfile> random_profiles(Rng& rng, std::size_t n) {
  std::vector<SampleProfile> profiles;
  profiles.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SampleProfile p;
    p.sample_index = static_cast<std::uint32_t>(i);
    const std::size_t stages = 1 + static_cast<std::size_t>(rng.uniform_int(1, 6));
    p.stage_sizes.reserve(stages + 1);
    p.stage_sizes.push_back(Bytes(rng.uniform_int(1'000, 2'000'000)));
    for (std::size_t s = 0; s < stages; ++s) {
      // Sizes wander up and down arbitrarily.
      const double factor = rng.uniform(0.1, 4.0);
      const auto prev = p.stage_sizes.back().as_double();
      p.stage_sizes.push_back(Bytes(std::max<std::int64_t>(
          16, static_cast<std::int64_t>(prev * factor))));
      p.op_costs.push_back(Seconds(rng.uniform(1e-5, 5e-2)));
    }
    // Derive min stage / reduction / prefix time the way stage 2 does.
    std::size_t best = 0;
    for (std::size_t s = 1; s < p.stage_sizes.size(); ++s) {
      if (p.stage_sizes[s] < p.stage_sizes[best]) best = s;
    }
    p.min_stage = static_cast<std::uint32_t>(best);
    p.reduction = p.stage_sizes[0] - p.stage_sizes[best];
    Seconds prefix;
    for (std::size_t s = 0; s < best; ++s) prefix += p.op_costs[s];
    p.prefix_time = prefix;
    profiles.push_back(std::move(p));
  }
  return profiles;
}

TEST(DecisionFuzz, InvariantsHoldOnRandomLandscapes) {
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const auto profiles =
        random_profiles(rng, 50 + static_cast<std::size_t>(rng.uniform_int(0, 450)));
    sim::ClusterConfig cluster;
    cluster.bandwidth = Bandwidth::mbps(rng.uniform(10.0, 2000.0));
    cluster.storage_cores = static_cast<int>(rng.uniform_int(0, 16));
    cluster.compute_cores = static_cast<int>(rng.uniform_int(1, 64));
    const Seconds t_g(rng.uniform(0.01, 50.0));

    const auto result = decide_offloading(profiles, cluster, t_g);

    // Never worse than the baseline, never negative components.
    ASSERT_LE(result.final_cost.predicted_epoch_time().value(),
              result.baseline.predicted_epoch_time().value() + 1e-9);
    ASSERT_GE(result.final_cost.t_net.value(), -1e-12);
    ASSERT_GE(result.final_cost.t_cs.value(), -1e-12);
    ASSERT_GE(result.final_cost.t_cc.value(), -1e-12);
    ASSERT_LE(result.offloaded, result.beneficial_candidates);

    // Offloaded prefixes are exactly each sample's min-size stage.
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      const auto prefix = result.plan.prefix(i);
      if (prefix > 0) {
        ASSERT_EQ(prefix, profiles[i].min_stage);
        ASSERT_TRUE(profiles[i].benefits());
      }
      ASSERT_LT(static_cast<std::size_t>(prefix), profiles[i].stage_sizes.size());
    }

    // The independent evaluator agrees with the greedy's running ledger.
    if (cluster.storage_cores > 0) {
      const auto evaluated = evaluate_plan(profiles, result.plan, cluster, t_g);
      ASSERT_NEAR(evaluated.t_net.value(), result.final_cost.t_net.value(),
                  1e-6 * std::max(1.0, evaluated.t_net.value()));
      ASSERT_NEAR(evaluated.t_cs.value(), result.final_cost.t_cs.value(),
                  1e-6 * std::max(1.0, evaluated.t_cs.value()));
    }
  }
}

TEST(DecisionFuzz, ShardedEngineInvariantsOnRandomLandscapes) {
  Rng rng(4048);
  for (int trial = 0; trial < 15; ++trial) {
    const auto profiles =
        random_profiles(rng, 100 + static_cast<std::size_t>(rng.uniform_int(0, 200)));
    const int nodes = static_cast<int>(rng.uniform_int(1, 8));
    const auto shards = storage::ShardMap::hashed(profiles.size(), nodes,
                                                  static_cast<std::uint64_t>(trial));
    sim::ClusterConfig cluster;
    cluster.bandwidth = Bandwidth::mbps(rng.uniform(10.0, 500.0));
    cluster.storage_cores = static_cast<int>(rng.uniform_int(0, 4));
    const Seconds t_g(rng.uniform(0.01, 10.0));

    const auto result = decide_offloading_sharded(profiles, shards, cluster, t_g);
    ASSERT_LE(result.final_cost.predicted_epoch_time().value(),
              result.baseline.predicted_epoch_time().value() + 1e-9);

    // Node ledger equals the recomputation from the plan.
    std::vector<Seconds> recomputed(static_cast<std::size_t>(nodes));
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      if (result.plan.prefix(i) > 0) {
        recomputed[static_cast<std::size_t>(shards.node_of(i))] += profiles[i].prefix_time;
      }
    }
    for (int n = 0; n < nodes; ++n) {
      ASSERT_NEAR(result.node_cpu[static_cast<std::size_t>(n)].value(),
                  recomputed[static_cast<std::size_t>(n)].value(), 1e-9);
    }
  }
}

}  // namespace
}  // namespace sophon::core
