#include "pipeline/cost_model.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace sophon::pipeline {
namespace {

SampleShape encoded(std::int64_t bytes, int w, int h) {
  return SampleShape::encoded(Bytes(bytes), w, h);
}

SampleShape image_shape(int w, int h) {
  SampleShape s;
  s.repr = Repr::kImage;
  s.width = w;
  s.height = h;
  s.channels = 3;
  s.bytes = s.byte_size();
  return s;
}

SampleShape tensor_shape(int w, int h) {
  auto s = image_shape(w, h);
  s.repr = Repr::kTensor;
  s.bytes = s.byte_size();
  return s;
}

TEST(CostModel, DecodeScalesWithBytesAndPixels) {
  const CostModel cm;
  const auto small = cm.decode_cost(encoded(100'000, 1024, 768));
  const auto more_bytes = cm.decode_cost(encoded(400'000, 1024, 768));
  const auto more_pixels = cm.decode_cost(encoded(100'000, 2048, 1536));
  EXPECT_GT(more_bytes.value(), small.value());
  EXPECT_GT(more_pixels.value(), small.value());
}

TEST(CostModel, DecodeOfTypicalPhotoIsMilliseconds) {
  // Calibration check: a ~2 MP / ~300 KB photo decodes in single-digit to
  // low-double-digit milliseconds on one core.
  const CostModel cm;
  const auto t = cm.decode_cost(encoded(300'000, 1632, 1224));
  EXPECT_GT(t.value(), 2e-3);
  EXPECT_LT(t.value(), 40e-3);
}

TEST(CostModel, ResizedCropUsesExpectedArea) {
  CostCoefficients coeffs;
  coeffs.expected_crop_area_fraction = 1.0;
  const CostModel full(coeffs);
  coeffs.expected_crop_area_fraction = 0.5;
  const CostModel half(coeffs);
  const auto shape = image_shape(2000, 1500);
  EXPECT_GT(full.resized_crop_cost(shape, 224).value(),
            half.resized_crop_cost(shape, 224).value());
}

TEST(CostModel, CheapOpsAreCheap) {
  const CostModel cm;
  const auto crop = image_shape(224, 224);
  EXPECT_LT(cm.flip_cost(crop).value(), 2e-3);
  EXPECT_LT(cm.to_tensor_cost(crop).value(), 2e-3);
  EXPECT_LT(cm.normalize_cost(tensor_shape(224, 224)).value(), 2e-3);
}

TEST(CostModel, PerOpOverheadIsIncluded) {
  CostCoefficients coeffs;
  coeffs.flip_ns_per_pixel = 0.0;
  coeffs.per_op_overhead_ns = 5000.0;
  const CostModel cm(coeffs);
  EXPECT_DOUBLE_EQ(cm.flip_cost(image_shape(10, 10)).value(), 5e-6);
}

TEST(CostModel, RepresentationPreconditions) {
  const CostModel cm;
  EXPECT_THROW((void)cm.decode_cost(image_shape(10, 10)), ContractViolation);
  EXPECT_THROW((void)cm.resized_crop_cost(encoded(100, 10, 10), 224), ContractViolation);
  EXPECT_THROW((void)cm.flip_cost(tensor_shape(10, 10)), ContractViolation);
  EXPECT_THROW((void)cm.to_tensor_cost(tensor_shape(10, 10)), ContractViolation);
  EXPECT_THROW((void)cm.normalize_cost(image_shape(10, 10)), ContractViolation);
}

TEST(CostModel, DecodeNeedsDimensions) {
  const CostModel cm;
  SampleShape s;
  s.repr = Repr::kEncoded;
  s.bytes = Bytes(100);
  EXPECT_THROW((void)cm.decode_cost(s), ContractViolation);
}

}  // namespace
}  // namespace sophon::pipeline
