// Cross-validation of the two evaluation paths: the decision engine's
// analytic cost vector (max of T_G/T_CC/T_CS/T_Net) must predict the
// discrete-event simulator's epoch time closely across regimes — it is the
// quantity SOPHON optimises, so a drift here would mean the engine
// optimises the wrong thing.
#include <gtest/gtest.h>

#include "core/decision.h"
#include "core/profiler.h"
#include "sim/trainer.h"

namespace sophon::core {
namespace {

struct Fixture {
  dataset::Catalog catalog = dataset::Catalog::generate(dataset::openimages_profile(6000), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  std::vector<SampleProfile> profiles = profile_stage2(catalog, pipe, cm);

  void expect_consistent(const sim::ClusterConfig& cluster, Seconds batch_time,
                         const OffloadPlan& plan, double tolerance) {
    const auto batches = (catalog.size() + cluster.batch_size - 1) / cluster.batch_size;
    const Seconds t_g = batch_time * static_cast<double>(batches);
    const auto predicted = evaluate_plan(profiles, plan, cluster, t_g).predicted_epoch_time();
    const auto simulated = sim::simulate_epoch(catalog, pipe, cm, cluster, batch_time,
                                               plan.assignment(), 42, 0);
    EXPECT_NEAR(simulated.epoch_time.value(), predicted.value(),
                tolerance * predicted.value())
        << "bw=" << cluster.bandwidth.bps() << " cores=" << cluster.storage_cores;
  }
};

TEST(AnalyticVsSimulator, NetworkBoundNoOffload) {
  Fixture f;
  sim::ClusterConfig cluster;
  cluster.bandwidth = Bandwidth::mbps(100.0);
  f.expect_consistent(cluster, Seconds::millis(85.0), OffloadPlan(f.catalog.size()), 0.05);
}

TEST(AnalyticVsSimulator, NetworkBoundWithSophonPlan) {
  Fixture f;
  for (const int cores : {1, 2, 8, 48}) {
    sim::ClusterConfig cluster;
    cluster.bandwidth = Bandwidth::mbps(100.0);
    cluster.storage_cores = cores;
    const auto batches = (f.catalog.size() + cluster.batch_size - 1) / cluster.batch_size;
    const Seconds t_g = Seconds::millis(85.0) * static_cast<double>(batches);
    const auto decision = decide_offloading(f.profiles, cluster, t_g);
    f.expect_consistent(cluster, Seconds::millis(85.0), decision.plan, 0.06);
  }
}

TEST(AnalyticVsSimulator, GpuBoundRegime) {
  Fixture f;
  sim::ClusterConfig cluster;
  cluster.bandwidth = Bandwidth::gbps(20.0);
  f.expect_consistent(cluster, Seconds(0.5), OffloadPlan(f.catalog.size()), 0.06);
}

TEST(AnalyticVsSimulator, CpuBoundRegime) {
  Fixture f;
  sim::ClusterConfig cluster;
  cluster.bandwidth = Bandwidth::gbps(20.0);
  cluster.compute_cores = 1;
  f.expect_consistent(cluster, Seconds::millis(20.0), OffloadPlan(f.catalog.size()), 0.08);
}

TEST(AnalyticVsSimulator, StorageCpuBoundRegime) {
  // Resize-Off with one storage core: T_CS dominates by a wide margin.
  Fixture f;
  sim::ClusterConfig cluster;
  cluster.bandwidth = Bandwidth::mbps(500.0);
  cluster.storage_cores = 1;
  f.expect_consistent(cluster, Seconds::millis(85.0),
                      OffloadPlan::uniform(f.catalog.size(), 2), 0.06);
}

}  // namespace
}  // namespace sophon::core
