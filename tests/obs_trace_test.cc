#include "obs/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace sophon::obs {
namespace {

TEST(Tracer, DisabledRecordPathIsInert) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  tracer.record(SpanCategory::kFetch, "fetch", 0, 100);
  tracer.record_at(0, SpanCategory::kTransfer, "transfer", Seconds(0.0), Seconds(1.0));
  EXPECT_TRUE(tracer.drain().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RecordAtCollectsVirtualSpans) {
  Tracer tracer;
  tracer.set_enabled(true);
  const std::uint32_t link = tracer.track("link");
  const std::uint32_t gpu = tracer.track("gpu");
  SpanArgs args;
  args.sample = 7;
  args.bytes = 1024;
  tracer.record_at(link, SpanCategory::kTransfer, "transfer", Seconds(0.5), Seconds(1.5), args);
  tracer.record_at(gpu, SpanCategory::kGpu, "gpu_batch", Seconds(2.0), Seconds(2.25));
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 2u);
  // drain() sorts by begin time.
  EXPECT_STREQ(spans[0].name, "transfer");
  EXPECT_EQ(spans[0].track, link);
  EXPECT_EQ(spans[0].category, SpanCategory::kTransfer);
  EXPECT_EQ(spans[0].args.sample, 7);
  EXPECT_EQ(spans[0].args.bytes, 1024);
  EXPECT_DOUBLE_EQ(spans[0].duration().value(), 1.0);
  EXPECT_STREQ(spans[1].name, "gpu_batch");
  EXPECT_DOUBLE_EQ(spans[1].duration().value(), 0.25);
}

TEST(Tracer, SpanGuardStampsRealTime) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span span(tracer, SpanCategory::kPreprocess, "decode");
    ASSERT_TRUE(span.active());
    span.args().sample = 3;
  }
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "decode");
  EXPECT_EQ(spans[0].args.sample, 3);
  EXPECT_GE(spans[0].end_ns, spans[0].begin_ns);
}

TEST(Tracer, SpanGuardInertWhenDisabled) {
  Tracer tracer;
  {
    Span span(tracer, SpanCategory::kPreprocess, "decode");
    EXPECT_FALSE(span.active());
    span.args().sample = 3;  // writes to a dead member, never dereferences
  }
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(Tracer, TrackRegistrationIsIdempotent) {
  Tracer tracer;
  const auto a = tracer.track("link");
  const auto b = tracer.track("link");
  const auto c = tracer.track("gpu");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  const auto labels = tracer.labels();
  std::set<std::string> names;
  for (const auto& [id, label] : labels) names.insert(label);
  EXPECT_TRUE(names.contains("link"));
  EXPECT_TRUE(names.contains("gpu"));
}

TEST(Tracer, ThreadLabelAppearsInLabels) {
  Tracer tracer;
  tracer.set_enabled(true);
  std::thread worker([&tracer] {
    tracer.set_thread_label("worker-0");
    Span span(tracer, SpanCategory::kFetch, "fetch");
  });
  worker.join();
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 1u);
  bool found = false;
  for (const auto& [id, label] : tracer.labels()) {
    if (id == spans[0].track && label == "worker-0") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Tracer, LongNamesTruncate) {
  Tracer tracer;
  tracer.set_enabled(true);
  const std::string long_name(100, 'x');
  tracer.record(SpanCategory::kOther, long_name, 0, 1);
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::string(spans[0].name).size(), SpanEvent::kNameCapacity - 1);
}

TEST(SpanRing, WrapAroundKeepsNewestAndCountsDropped) {
  Tracer tracer(/*capacity=*/8);  // 8 is also the enforced minimum
  tracer.set_enabled(true);
  for (std::uint64_t i = 0; i < 20; ++i) {
    tracer.record(SpanCategory::kOther, "s", i, i + 1);
  }
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 8u);
  // The eight newest survive, oldest first.
  EXPECT_EQ(spans[0].begin_ns, 12u);
  EXPECT_EQ(spans[7].begin_ns, 19u);
  EXPECT_EQ(tracer.dropped(), 12u);
}

TEST(SpanRing, DrainResetsBuffers) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.record(SpanCategory::kOther, "a", 0, 1);
  EXPECT_EQ(tracer.drain().size(), 1u);
  EXPECT_TRUE(tracer.drain().empty());
  tracer.record(SpanCategory::kOther, "b", 2, 3);
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "b");
}

TEST(Tracer, ChromeTraceJsonSchema) {
  Tracer tracer;
  tracer.set_enabled(true);
  const std::uint32_t link = tracer.track("link");
  SpanArgs args;
  args.sample = 11;
  args.position = 4;
  args.bytes = 2048;
  args.prefetched = 1;
  tracer.record_at(link, SpanCategory::kTransfer, "transfer", Seconds(1.0), Seconds(3.0), args);
  tracer.record_at(tracer.track("gpu"), SpanCategory::kGpu, "gpu_batch", Seconds(3.0),
                   Seconds(3.5));
  const auto spans = tracer.drain();
  const Json doc = chrome_trace_json(spans, tracer.labels());

  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  std::size_t metadata = 0;
  std::size_t complete = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& event = events.at(i);
    ASSERT_TRUE(event.is_object());
    const std::string& ph = event.at("ph").as_string();
    ASSERT_TRUE(event.has("pid"));
    ASSERT_TRUE(event.has("tid"));
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(event.at("name").as_string(), "thread_name");
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    ASSERT_TRUE(event.has("ts"));
    ASSERT_TRUE(event.has("dur"));
    EXPECT_GE(event.at("dur").as_number(), 0.0);
    ASSERT_TRUE(event.has("cat"));
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(metadata, tracer.labels().size());

  // The transfer span carries its per-sample args; ts/dur are microseconds.
  bool checked = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& event = events.at(i);
    if (event.at("ph").as_string() != "X" || event.at("name").as_string() != "transfer") continue;
    EXPECT_DOUBLE_EQ(event.at("ts").as_number(), 1.0e6);
    EXPECT_DOUBLE_EQ(event.at("dur").as_number(), 2.0e6);
    const Json& span_args = event.at("args");
    EXPECT_EQ(span_args.at("sample").as_int(), 11);
    EXPECT_EQ(span_args.at("position").as_int(), 4);
    EXPECT_EQ(span_args.at("bytes").as_int(), 2048);
    EXPECT_FALSE(span_args.has("retries"));  // unset args are omitted
    checked = true;
  }
  EXPECT_TRUE(checked);

  // The document round-trips through the in-repo parser.
  EXPECT_TRUE(Json::parse(doc.dump()).has_value());
}

TEST(Tracer, ChromeTraceJsonEmitsPairedFlowEvents) {
  Tracer tracer;
  tracer.set_enabled(true);
  const std::uint32_t prefetch = tracer.track("prefetch");
  const std::uint32_t worker = tracer.track("worker-0");
  tracer.record_at(prefetch, SpanCategory::kOther, "prefetch_issue", Seconds(0.0), Seconds(1.0));
  tracer.record_at(worker, SpanCategory::kStagingWait, "staging_wait", Seconds(0.5), Seconds(1.0));
  tracer.record_at(worker, SpanCategory::kRetry, "retry_backoff", Seconds(2.0), Seconds(2.5));
  const std::vector<TraceFlow> flows{
      {1, "prefetch", prefetch, 0, worker, 1'000'000'000},
      {(std::uint64_t{1} << 32) + 0, "retry", worker, 2'500'000'000, worker, 3'000'000'000},
  };
  const Json doc = chrome_trace_json(tracer.drain(), tracer.labels(), flows);
  const Json& events = doc.at("traceEvents");

  // Every flow id appears exactly once as a start ("s") and once as a finish
  // ("f"), on the right tracks, finish bound to the enclosing slice.
  std::map<std::int64_t, std::pair<std::size_t, std::size_t>> phases;  // id -> (s, f)
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& event = events.at(i);
    const std::string& ph = event.at("ph").as_string();
    if (ph != "s" && ph != "f") continue;
    ASSERT_TRUE(event.has("id"));
    auto& [starts, finishes] = phases[event.at("id").as_int()];
    if (ph == "s") {
      ++starts;
    } else {
      ++finishes;
      EXPECT_EQ(event.at("bp").as_string(), "e");
    }
  }
  ASSERT_EQ(phases.size(), 2u);
  for (const auto& [id, counts] : phases) {
    EXPECT_EQ(counts.first, 1u) << "flow " << id;
    EXPECT_EQ(counts.second, 1u) << "flow " << id;
  }
  // Prefetch and retry flows occupy disjoint id spaces.
  EXPECT_TRUE(phases.contains(1));
  EXPECT_TRUE(phases.contains(static_cast<std::int64_t>(std::uint64_t{1} << 32)));
  EXPECT_TRUE(Json::parse(doc.dump()).has_value());
}

TEST(Tracer, CapacityAppliesToNewThreads) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  tracer.set_capacity(32);  // new thread buffers pick this up
  std::thread t([&tracer] {
    for (std::uint64_t i = 0; i < 32; ++i) tracer.record(SpanCategory::kOther, "s", i, i + 1);
  });
  t.join();
  EXPECT_EQ(tracer.drain().size(), 32u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

}  // namespace
}  // namespace sophon::obs
