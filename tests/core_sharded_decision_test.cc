#include <gtest/gtest.h>

#include "core/decision.h"
#include "core/profiler.h"
#include "dataset/catalog.h"
#include "pipeline/pipeline.h"
#include "util/check.h"

namespace sophon::core {
namespace {

struct Fixture {
  dataset::Catalog catalog = dataset::Catalog::generate(dataset::openimages_profile(4000), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  std::vector<SampleProfile> profiles = profile_stage2(catalog, pipe, cm);
  sim::ClusterConfig cluster = [] {
    sim::ClusterConfig c;
    c.bandwidth = Bandwidth::mbps(100.0);
    c.storage_cores = 1;  // per node
    return c;
  }();
  Seconds t_g = Seconds(4.0);
};

TEST(ShardedDecision, SingleNodeMatchesFlatEngine) {
  Fixture f;
  const auto shards = storage::ShardMap::hashed(f.catalog.size(), 1, 1);
  const auto sharded = decide_offloading_sharded(f.profiles, shards, f.cluster, f.t_g);
  const auto flat = decide_offloading(f.profiles, f.cluster, f.t_g);
  // The sharded engine's skip rule is slightly more permissive than the
  // paper's hard stop, so it may offload marginally more — but never less,
  // and the cost vectors must agree closely.
  EXPECT_GE(sharded.offloaded, flat.offloaded);
  EXPECT_NEAR(sharded.final_cost.t_net.value(), flat.final_cost.t_net.value(),
              0.05 * flat.final_cost.t_net.value());
}

TEST(ShardedDecision, MoreNodesOffloadMore) {
  Fixture f;
  const auto one = decide_offloading_sharded(
      f.profiles, storage::ShardMap::hashed(f.catalog.size(), 1, 1), f.cluster, f.t_g);
  const auto four = decide_offloading_sharded(
      f.profiles, storage::ShardMap::hashed(f.catalog.size(), 4, 1), f.cluster, f.t_g);
  EXPECT_GT(four.offloaded, one.offloaded);
  EXPECT_LT(four.final_cost.t_net.value(), one.final_cost.t_net.value());
}

TEST(ShardedDecision, NodeCpuAccountingConsistent) {
  Fixture f;
  const auto shards = storage::ShardMap::hashed(f.catalog.size(), 4, 9);
  const auto result = decide_offloading_sharded(f.profiles, shards, f.cluster, f.t_g);
  std::vector<Seconds> recomputed(4);
  for (std::size_t i = 0; i < f.profiles.size(); ++i) {
    if (result.plan.prefix(i) > 0) {
      recomputed[static_cast<std::size_t>(shards.node_of(i))] += f.profiles[i].prefix_time;
    }
  }
  ASSERT_EQ(result.node_cpu.size(), 4u);
  for (std::size_t n = 0; n < 4; ++n) {
    EXPECT_NEAR(result.node_cpu[n].value(), recomputed[n].value(), 1e-9);
  }
  // t_cs is governed by the busiest node.
  Seconds worst;
  for (const auto busy : result.node_cpu) worst = std::max(worst, busy);
  EXPECT_NEAR(result.final_cost.t_cs.value(),
              worst.value() / (f.cluster.storage_cores * f.cluster.storage_core_speed), 1e-9);
}

TEST(ShardedDecision, SkewedMapUsesColdNodes) {
  // 90% of samples on node 0; the engine must keep offloading via nodes
  // 1..3 after node 0 saturates.
  Fixture f;
  std::vector<std::uint16_t> assignment(f.catalog.size());
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    assignment[i] = static_cast<std::uint16_t>(i % 10 == 0 ? 1 + (i / 10) % 3 : 0);
  }
  const auto shards = storage::ShardMap::explicit_map(std::move(assignment), 4);
  const auto result = decide_offloading_sharded(f.profiles, shards, f.cluster, f.t_g);
  ASSERT_GT(result.offloaded, 0u);
  std::size_t off_cold = 0;
  for (std::size_t i = 0; i < f.profiles.size(); ++i) {
    if (result.plan.prefix(i) > 0 && shards.node_of(i) != 0) ++off_cold;
  }
  EXPECT_GT(off_cold, 0u);
  // Balanced placement must do at least as well as the skewed one.
  const auto balanced = decide_offloading_sharded(
      f.profiles, storage::ShardMap::hashed(f.catalog.size(), 4, 2), f.cluster, f.t_g);
  EXPECT_LE(balanced.final_cost.predicted_epoch_time().value(),
            result.final_cost.predicted_epoch_time().value() + 1e-9);
}

TEST(ShardedDecision, NeverWorsensPredictedEpochTime) {
  Fixture f;
  for (const int nodes : {1, 2, 4, 8}) {
    const auto shards = storage::ShardMap::hashed(f.catalog.size(), nodes, 3);
    const auto result = decide_offloading_sharded(f.profiles, shards, f.cluster, f.t_g);
    EXPECT_LE(result.final_cost.predicted_epoch_time().value(),
              result.baseline.predicted_epoch_time().value() + 1e-9)
        << nodes;
  }
}

TEST(ShardedDecision, ZeroPerNodeCoresOffloadsNothing) {
  Fixture f;
  f.cluster.storage_cores = 0;
  const auto shards = storage::ShardMap::hashed(f.catalog.size(), 4, 1);
  const auto result = decide_offloading_sharded(f.profiles, shards, f.cluster, f.t_g);
  EXPECT_EQ(result.offloaded, 0u);
}

TEST(ShardedDecision, RejectsMismatchedMap) {
  Fixture f;
  const auto shards = storage::ShardMap::hashed(10, 2, 1);
  EXPECT_THROW((void)decide_offloading_sharded(f.profiles, shards, f.cluster, f.t_g),
               ContractViolation);
}

}  // namespace
}  // namespace sophon::core
