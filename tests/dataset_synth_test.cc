#include "dataset/synth.h"

#include <gtest/gtest.h>

#include "codec/sjpg.h"

namespace sophon::dataset {
namespace {

SampleMeta meta_with(int w, int h, double texture, std::uint64_t id = 1) {
  SampleMeta meta;
  meta.id = id;
  meta.raw = pipeline::SampleShape::encoded(Bytes(1), w, h, 3);
  meta.texture = texture;
  return meta;
}

TEST(Synth, DimensionsMatchMetadata) {
  const auto img = generate_synthetic_image(meta_with(320, 180, 0.5), 42);
  EXPECT_EQ(img.width(), 320);
  EXPECT_EQ(img.height(), 180);
  EXPECT_EQ(img.channels(), 3);
}

TEST(Synth, DeterministicPerSeedAndId) {
  const auto a = generate_synthetic_image(meta_with(64, 64, 0.5, 9), 42);
  const auto b = generate_synthetic_image(meta_with(64, 64, 0.5, 9), 42);
  EXPECT_EQ(a, b);
  const auto other_seed = generate_synthetic_image(meta_with(64, 64, 0.5, 9), 43);
  EXPECT_NE(a, other_seed);
  const auto other_id = generate_synthetic_image(meta_with(64, 64, 0.5, 10), 42);
  EXPECT_NE(a, other_id);
}

TEST(Synth, NotDegenerate) {
  // The generator must produce actual structure, not a constant field.
  const auto img = generate_synthetic_image(meta_with(128, 128, 0.3), 1);
  std::uint8_t lo = 255;
  std::uint8_t hi = 0;
  for (const auto px : img.data()) {
    lo = std::min(lo, px);
    hi = std::max(hi, px);
  }
  EXPECT_GT(static_cast<int>(hi) - lo, 40);
}

TEST(Synth, CompressedSizeGrowsWithTexture) {
  // The property the whole materialised path relies on: texture controls
  // compressibility through the real codec.
  std::size_t prev = 0;
  for (const double texture : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto blob = materialize_encoded(meta_with(256, 192, texture), 42, 80);
    EXPECT_GT(blob.size(), prev) << "texture " << texture;
    prev = blob.size();
  }
}

TEST(Synth, MaterializeYieldsValidSjpg) {
  const auto blob = materialize_encoded(meta_with(120, 90, 0.6), 5, 85);
  const auto hdr = codec::sjpg_peek(blob);
  ASSERT_TRUE(hdr.has_value());
  EXPECT_EQ(hdr->width, 120);
  EXPECT_EQ(hdr->height, 90);
  EXPECT_EQ(hdr->quality, 85);
  EXPECT_TRUE(codec::sjpg_decode(blob).has_value());
}

TEST(Synth, RealBppInsideProfileRange) {
  // Cross-validation of the parametric size model against the real codec:
  // materialised blobs must land in the bpp band the profiles assume.
  const auto profile = openimages_profile(1);
  for (const double texture : {0.1, 0.5, 0.9}) {
    const auto blob = materialize_encoded(meta_with(512, 384, texture), 7, profile.quality);
    const double bpp = static_cast<double>(blob.size()) * 8.0 / (512.0 * 384.0);
    EXPECT_GE(bpp, profile.min_bpp * 0.5) << texture;
    EXPECT_LE(bpp, profile.max_bpp * 1.5) << texture;
  }
}

}  // namespace
}  // namespace sophon::dataset
