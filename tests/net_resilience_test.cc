#include "net/resilience.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "net/fault.h"
#include "net/link.h"
#include "net/wire.h"
#include "pipeline/sample.h"
#include "util/check.h"

namespace sophon::net {
namespace {

FetchResponse ok_response(std::uint64_t sample_id) {
  FetchResponse response;
  response.sample_id = sample_id;
  pipeline::EncodedBlob blob;
  blob.bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  response.payload = serialize_sample(blob);
  return response;
}

/// Scripted service: one letter per call — 'o' ok, 't' transient error,
/// 'p' permanent error, 'c' corrupt (frame-invalid) payload. The script's
/// last letter repeats forever.
class ScriptedService final : public StorageService {
 public:
  explicit ScriptedService(std::string script) : script_(std::move(script)) {}

  FetchResponse fetch(const FetchRequest& request) override {
    const char action = script_[std::min(calls_, script_.size() - 1)];
    ++calls_;
    switch (action) {
      case 't':
        throw FetchError(FetchError::Kind::kTransient, "scripted transient");
      case 'p':
        throw FetchError(FetchError::Kind::kPermanent, "scripted permanent");
      case 'c': {
        FetchResponse corrupt;
        corrupt.sample_id = request.sample_id;
        corrupt.payload = {0xDE, 0xAD};
        return corrupt;
      }
      default:
        return ok_response(request.sample_id);
    }
  }

  [[nodiscard]] std::size_t calls() const { return calls_; }

 private:
  std::string script_;
  std::size_t calls_ = 0;
};

RetryPolicy fast_policy() {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = Seconds::millis(1.0);
  policy.sleep = false;
  policy.seed = 7;
  return policy;
}

TEST(Backoff, ScheduleIsDeterministic) {
  const auto policy = fast_policy();
  for (std::uint32_t retry = 1; retry <= 5; ++retry) {
    EXPECT_EQ(backoff_for(policy, 11, 2, retry).value(),
              backoff_for(policy, 11, 2, retry).value());
  }
  // Distinct samples jitter differently but share the schedule's shape.
  EXPECT_NE(backoff_for(policy, 11, 2, 1).value(), backoff_for(policy, 12, 2, 1).value());
}

TEST(Backoff, GrowsExponentiallyWithinJitterBounds) {
  auto policy = fast_policy();
  policy.multiplier = 2.0;
  policy.jitter = 0.5;
  for (std::uint32_t retry = 1; retry <= 6; ++retry) {
    const double base = policy.initial_backoff.value() * std::pow(2.0, retry - 1);
    const double b = backoff_for(policy, 3, 0, retry).value();
    EXPECT_GE(b, base * 0.5) << "retry " << retry;
    EXPECT_LT(b, base * 1.5) << "retry " << retry;
  }
}

TEST(Resilience, RetriesTransientFailuresThenSucceeds) {
  ScriptedService inner("tto");
  MetricsRegistry metrics;
  ResilientStorageService service(inner, fast_policy(), &metrics);
  FetchRequest request;
  request.sample_id = 5;
  const auto response = service.fetch(request);
  EXPECT_EQ(response.sample_id, 5u);
  EXPECT_EQ(inner.calls(), 3u);
  EXPECT_EQ(service.retries(), 2u);
  EXPECT_EQ(metrics.counter("sophon_fetch_retries").value(), 2u);
  EXPECT_EQ(metrics.counter("sophon_fetch_attempts").value(), 3u);
  EXPECT_EQ(metrics.histogram("sophon_fetch_backoff").count(), 2u);
}

TEST(Resilience, ExhaustsRetryBudget) {
  ScriptedService inner("t");
  ResilientStorageService service(inner, fast_policy());
  try {
    (void)service.fetch(FetchRequest{});
    FAIL() << "expected FetchError";
  } catch (const FetchError& error) {
    EXPECT_EQ(error.kind(), FetchError::Kind::kExhausted);
  }
  EXPECT_EQ(inner.calls(), 4u);  // max_attempts
  EXPECT_EQ(service.retries(), 3u);
  EXPECT_EQ(service.failures(), 1u);
}

TEST(Resilience, PermanentFailureIsNotRetried) {
  ScriptedService inner("p");
  ResilientStorageService service(inner, fast_policy());
  try {
    (void)service.fetch(FetchRequest{});
    FAIL() << "expected FetchError";
  } catch (const FetchError& error) {
    EXPECT_EQ(error.kind(), FetchError::Kind::kPermanent);
  }
  EXPECT_EQ(inner.calls(), 1u);
  EXPECT_EQ(service.retries(), 0u);
}

TEST(Resilience, DeadlineBoundsTheRetryWait) {
  ScriptedService inner("t");
  auto policy = fast_policy();
  policy.initial_backoff = Seconds(10.0);  // first backoff alone bursts it
  policy.deadline = Seconds(5.0);
  MetricsRegistry metrics;
  ResilientStorageService service(inner, policy, &metrics);
  try {
    (void)service.fetch(FetchRequest{});
    FAIL() << "expected FetchError";
  } catch (const FetchError& error) {
    EXPECT_EQ(error.kind(), FetchError::Kind::kDeadline);
  }
  EXPECT_EQ(inner.calls(), 1u);  // no retry fits inside the deadline
  EXPECT_EQ(service.deadline_exceeded(), 1u);
  EXPECT_EQ(metrics.counter("sophon_fetch_deadline_exceeded").value(), 1u);
}

TEST(Resilience, DetectsCorruptResponsesAndRetries) {
  ScriptedService inner("co");
  ResilientStorageService service(inner, fast_policy());
  const auto response = service.fetch(FetchRequest{});
  EXPECT_TRUE(deserialize_sample(response.payload).has_value());
  EXPECT_EQ(service.corrupt_responses(), 1u);
  EXPECT_EQ(service.retries(), 1u);
}

TEST(Resilience, ExposesZeroedCountersBeforeAnyTraffic) {
  ScriptedService inner("o");
  MetricsRegistry metrics;
  ResilientStorageService service(inner, fast_policy(), &metrics);
  const auto text = metrics.expose();
  EXPECT_NE(text.find("sophon_fetch_retries_total 0"), std::string::npos) << text;
  EXPECT_NE(text.find("sophon_fetch_deadline_exceeded_total 0"), std::string::npos);
  EXPECT_NE(text.find("sophon_fetch_backoff_bucket{le=\"+Inf\"} 0"), std::string::npos);
}

TEST(Resilience, RejectsBadPolicy) {
  ScriptedService inner("o");
  RetryPolicy bad = fast_policy();
  bad.max_attempts = 0;
  EXPECT_THROW(ResilientStorageService(inner, bad), ContractViolation);
  bad = fast_policy();
  bad.jitter = 1.0;
  EXPECT_THROW(ResilientStorageService(inner, bad), ContractViolation);
}

TEST(FaultInjector, DrawsAreDeterministicAndSeedSensitive) {
  FaultProfile profile;
  profile.transient_fail_prob = 0.3;
  profile.corrupt_prob = 0.1;
  profile.seed = 99;
  const FaultInjector a(profile);
  const FaultInjector b(profile);
  profile.seed = 100;
  const FaultInjector c(profile);
  bool any_difference = false;
  for (std::uint64_t sample = 0; sample < 200; ++sample) {
    EXPECT_EQ(a.fetch_fault(sample, 0, 0, true), b.fetch_fault(sample, 0, 0, true));
    any_difference |= a.fetch_fault(sample, 0, 0, true) != c.fetch_fault(sample, 0, 0, true);
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultInjector, PermanentFaultsStickAcrossAttempts) {
  FaultProfile profile;
  profile.permanent_fail_prob = 0.25;
  profile.seed = 4;
  const FaultInjector injector(profile);
  std::size_t permanent = 0;
  for (std::uint64_t sample = 0; sample < 400; ++sample) {
    const auto first = injector.fetch_fault(sample, 0, 0, true);
    if (first == FaultKind::kPermanent) {
      ++permanent;
      for (std::uint32_t attempt = 1; attempt < 5; ++attempt) {
        EXPECT_EQ(injector.fetch_fault(sample, 0, attempt, true), FaultKind::kPermanent);
      }
    }
  }
  EXPECT_GT(permanent, 400 * 0.15);
  EXPECT_LT(permanent, 400 * 0.35);
}

TEST(FaultInjector, OffloadOnlySparesRawFetches) {
  FaultProfile profile;
  profile.transient_fail_prob = 1.0;
  profile.permanent_fail_prob = 1.0;
  profile.offload_only = true;
  profile.seed = 1;
  const FaultInjector injector(profile);
  EXPECT_EQ(injector.fetch_fault(0, 0, 0, false), FaultKind::kNone);
  EXPECT_NE(injector.fetch_fault(0, 0, 0, true), FaultKind::kNone);
}

TEST(FaultInjector, RejectsBadProfile) {
  FaultProfile profile;
  profile.transient_fail_prob = 1.5;
  EXPECT_THROW(FaultInjector{profile}, ContractViolation);
  profile = {};
  profile.bandwidth_dip_factor = 0.5;
  EXPECT_THROW(FaultInjector{profile}, ContractViolation);
}

TEST(FaultyService, InjectsFailuresAndCorruption) {
  ScriptedService inner("o");
  FaultProfile profile;
  profile.permanent_fail_prob = 1.0;
  profile.seed = 3;
  const FaultInjector always_fail(profile);
  FaultyStorageService failing(inner, always_fail);
  EXPECT_THROW((void)failing.fetch(FetchRequest{}), FetchError);
  EXPECT_EQ(failing.injected_failures(), 1u);

  profile = {};
  profile.corrupt_prob = 1.0;
  profile.seed = 3;
  const FaultInjector always_corrupt(profile);
  FaultyStorageService corrupting(inner, always_corrupt);
  const auto response = corrupting.fetch(FetchRequest{});
  EXPECT_FALSE(deserialize_sample(response.payload).has_value());
  EXPECT_EQ(corrupting.injected_corruptions(), 1u);
}

TEST(LinkFaults, SpikesAndDipsDegradeTransfersDeterministically) {
  FaultProfile profile;
  profile.latency_spike_prob = 1.0;
  profile.latency_spike = Seconds::millis(100.0);
  profile.bandwidth_dip_prob = 1.0;
  profile.bandwidth_dip_factor = 2.0;
  profile.seed = 8;
  const FaultInjector injector(profile);

  SimLink link(Bandwidth::mbps(8.0), Seconds(0.0));  // 1 MB/s healthy
  link.set_fault_injector(&injector);
  // 1 MB at a 2x dip takes 2 s, plus the 100 ms spike after the last byte.
  const auto arrival = link.schedule(Seconds(0.0), Bytes(1'000'000));
  EXPECT_DOUBLE_EQ(arrival.value(), 2.1);
  EXPECT_EQ(link.faulted_transfers(), 1u);

  // reset() restarts the transfer index: the replay is identical.
  link.reset();
  EXPECT_DOUBLE_EQ(link.schedule(Seconds(0.0), Bytes(1'000'000)).value(), 2.1);
}

TEST(LinkFaults, HealthyLinkIsUnchanged) {
  FaultProfile profile;  // all probabilities zero
  profile.seed = 8;
  const FaultInjector injector(profile);
  SimLink faulty(Bandwidth::mbps(8.0), Seconds(0.0));
  faulty.set_fault_injector(&injector);
  SimLink plain(Bandwidth::mbps(8.0), Seconds(0.0));
  EXPECT_DOUBLE_EQ(faulty.schedule(Seconds(0.0), Bytes(1'000'000)).value(),
                   plain.schedule(Seconds(0.0), Bytes(1'000'000)).value());
  EXPECT_EQ(faulty.faulted_transfers(), 0u);
}

}  // namespace
}  // namespace sophon::net
