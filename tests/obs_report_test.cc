#include "obs/report.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "net/fault.h"
#include "net/resilience.h"
#include "obs/replay_trace.h"
#include "prefetch/replay.h"
#include "sim/cluster.h"
#include "sim/trace.h"
#include "sim/trainer.h"

namespace sophon::obs {
namespace {

using Labels = std::vector<std::pair<std::uint32_t, std::string>>;

SpanEvent make_span(std::uint32_t track, SpanCategory category, const char* name, double begin_s,
                    double end_s) {
  SpanEvent span;
  std::snprintf(span.name, sizeof(span.name), "%s", name);
  span.category = category;
  span.track = track;
  span.begin_ns = static_cast<std::uint64_t>(begin_s * 1e9);
  span.end_ns = static_cast<std::uint64_t>(end_s * 1e9);
  return span;
}

TEST(EpochReport, NestedSpansFoldIntoSelfTime) {
  // A demand fetch that encloses the storage-side prefix execution (loopback
  // RPC on the worker thread) charges only the wire-and-wait portion to
  // fetch; the prefix time is storage busy, not worker stall.
  const Labels labels{{0, "worker-0"}};
  const std::vector<SpanEvent> spans{
      make_span(0, SpanCategory::kFetch, "fetch", 0.0, 10.0),
      make_span(0, SpanCategory::kStoragePrep, "storage_prefix", 2.0, 6.0),
  };
  const auto report = EpochReport::build(spans, labels, Seconds(12.0));
  ASSERT_EQ(report.workers().size(), 1u);
  const auto& worker = report.workers()[0];
  EXPECT_NEAR(worker.fetch_stall.value(), 6.0, 1e-9);
  EXPECT_NEAR(report.storage_busy().value(), 4.0, 1e-9);
  EXPECT_NEAR(worker.idle.value(), 6.0, 1e-9);
  EXPECT_EQ(worker.spans, 2u);
}

TEST(EpochReport, SiblingSpansAccumulateWithoutNesting) {
  const Labels labels{{0, "worker-0"}};
  const std::vector<SpanEvent> spans{
      make_span(0, SpanCategory::kPreprocess, "decode", 0.0, 2.0),
      make_span(0, SpanCategory::kPreprocess, "resize", 2.0, 5.0),
      make_span(0, SpanCategory::kCollate, "collate", 5.0, 6.0),
  };
  const auto report = EpochReport::build(spans, labels, Seconds(6.0));
  ASSERT_EQ(report.workers().size(), 1u);
  const auto& worker = report.workers()[0];
  EXPECT_NEAR(worker.preprocess.value(), 5.0, 1e-9);
  EXPECT_NEAR(worker.collate.value(), 1.0, 1e-9);
  EXPECT_NEAR(worker.idle.value(), 0.0, 1e-9);
  EXPECT_NEAR(worker.total().value(), 6.0, 1e-9);
}

TEST(EpochReport, NonWorkerTracksFeedObservedCosts) {
  const Labels labels{{0, "worker-0"}, {1, "link"}, {2, "gpu"}};
  const std::vector<SpanEvent> spans{
      make_span(0, SpanCategory::kPreprocess, "preprocess", 0.0, 2.0),
      make_span(1, SpanCategory::kTransfer, "transfer", 0.0, 1.0),
      make_span(1, SpanCategory::kTransfer, "transfer", 1.0, 3.0),
      make_span(2, SpanCategory::kGpu, "gpu_batch", 0.0, 0.5),
  };
  const auto report = EpochReport::build(spans, labels, Seconds(3.0));
  EXPECT_NEAR(report.transfer_busy().value(), 3.0, 1e-9);
  EXPECT_NEAR(report.gpu_busy().value(), 0.5, 1e-9);
  const auto observed = report.observed();
  EXPECT_NEAR(observed.t_net.value(), 3.0, 1e-9);
  EXPECT_NEAR(observed.t_cc.value(), 2.0, 1e-9);
  EXPECT_NEAR(observed.t_g.value(), 0.5, 1e-9);
  EXPECT_EQ(report.observed_bottleneck(), "net");
}

TEST(EpochReport, BottleneckTieOrderPrefersNet) {
  EpochReport::Costs costs{Seconds(1.0), Seconds(1.0), Seconds(1.0), Seconds(1.0)};
  EXPECT_EQ(EpochReport::bottleneck_of(costs), "net");
  costs.t_net = Seconds(0.5);
  EXPECT_EQ(EpochReport::bottleneck_of(costs), "gpu");
  costs.t_g = Seconds(0.5);
  EXPECT_EQ(EpochReport::bottleneck_of(costs), "storage-cpu");
  costs.t_cs = Seconds(0.5);
  EXPECT_EQ(EpochReport::bottleneck_of(costs), "cpu");
}

TEST(EpochReport, RenderReportsAgreementAndDivergence) {
  const Labels labels{{0, "worker-0"}, {1, "link"}};
  const std::vector<SpanEvent> spans{
      make_span(0, SpanCategory::kPreprocess, "preprocess", 0.0, 1.0),
      make_span(1, SpanCategory::kTransfer, "transfer", 0.0, 4.0),
  };
  auto report = EpochReport::build(spans, labels, Seconds(4.0));
  report.set_predicted(report.observed());
  EXPECT_NE(report.render().find("agreement"), std::string::npos);
  // A prediction that names a different bottleneck must be flagged loudly.
  report.set_predicted(EpochReport::Costs{Seconds(10.0), Seconds(0.1), Seconds(0.1), Seconds(0.1)});
  EXPECT_NE(report.render().find("DIVERGENCE"), std::string::npos);
}

TEST(EpochReport, ToJsonCarriesWorkersAndCosts) {
  const Labels labels{{0, "worker-0"}, {1, "worker-1"}, {2, "link"}};
  const std::vector<SpanEvent> spans{
      make_span(0, SpanCategory::kFetch, "fetch", 0.0, 1.0),
      make_span(1, SpanCategory::kPreprocess, "preprocess", 0.0, 2.0),
      make_span(2, SpanCategory::kTransfer, "transfer", 0.0, 1.0),
  };
  auto report = EpochReport::build(spans, labels, Seconds(2.0));
  Json doc = report.to_json();
  EXPECT_EQ(doc.at("kind").as_string(), "sophon.epoch_report");
  EXPECT_EQ(doc.at("workers").size(), 2u);
  EXPECT_TRUE(doc.at("observed").has("bottleneck"));
  EXPECT_FALSE(doc.has("predicted"));
  report.set_predicted(report.observed());
  EXPECT_TRUE(report.to_json().has("predicted"));
}

TEST(EpochReport, ReplayReconciliationWithinOnePercent) {
  // The acceptance bar for the whole subsystem: fold the trace of a
  // deterministic replay and the per-worker/per-resource totals must
  // reconcile with the replay's own accounting to within 1%.
  constexpr std::size_t kSamples = 512;
  constexpr std::size_t kWorkers = 4;
  const Seconds compute_cost(0.010);
  const Bytes wire(1 << 20);

  sim::ClusterConfig cluster;
  cluster.compute_cores = 16;  // >= workers: no core queueing, windows exact
  cluster.storage_cores = 4;
  cluster.bandwidth = Bandwidth::mbps(1000.0);
  cluster.batch_size = 64;

  const auto flow = [&](std::size_t) {
    sim::SampleFlow f;
    f.wire = wire;
    f.compute_cpu = compute_cost;
    return f;
  };

  prefetch::ReplayOptions options;
  options.workers = kWorkers;
  options.prefetch.depth = 16;

  Tracer& tracer = global_tracer();
  (void)tracer.drain();  // discard anything a previous test left behind
  tracer.set_capacity(kSamples * 8 + 1024);
  tracer.set_enabled(true);
  sim::TraceRecorder recorder;
  const auto result = prefetch::replay_epoch(kSamples, flow, cluster, Seconds(0.05),
                                             /*seed=*/42, /*epoch=*/1, options, recorder.sink());
  const SampleCostFn costs = [&](std::uint32_t) {
    SampleOpCosts detail;
    detail.compute_ops = {{"decode", compute_cost * 0.5}, {"augment", compute_cost * 0.5}};
    detail.prefix = 0;
    return detail;
  };
  build_replay_trace(recorder.rows(), costs, tracer);
  tracer.set_enabled(false);
  const auto spans = tracer.drain();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(tracer.dropped(), 0u);

  const auto report = EpochReport::build(spans, tracer.labels(), result.epoch.epoch_time);
  ASSERT_EQ(report.workers().size(), kWorkers);

  const auto within_1pct = [](Seconds observed, Seconds expected) {
    const double reference = std::max(expected.value(), 1e-9);
    EXPECT_NEAR(observed.value(), expected.value(), 0.01 * reference)
        << "observed " << observed.value() << " vs expected " << expected.value();
  };
  // Worker preprocess self time == the replay's compute-CPU busy total.
  within_1pct(report.total_preprocess(), result.epoch.compute_cpu_busy);
  // Link-track transfer spans == the FIFO link's busy time for the traffic.
  within_1pct(report.transfer_busy(), cluster.bandwidth.transfer_time(result.epoch.traffic));
  // Byte drift is held to zero, not 1%: the transfer spans carry exact byte
  // args, so their sum must equal the replay's own traffic counter (and the
  // known per-sample wire size) to the byte — the same ground truth the
  // traffic ledger reconciles against.
  EXPECT_EQ(report.transfer_bytes().count(), result.epoch.traffic.count());
  EXPECT_EQ(report.transfer_bytes().count(),
            static_cast<std::int64_t>(kSamples) * wire.count());
  // GPU-track spans == the trainer's GPU service total.
  within_1pct(report.gpu_busy(), result.epoch.gpu_busy);
  // Fetch stalls + staging waits == the replay's own worker-stall counter.
  within_1pct(report.total_fetch_stall() + report.total_staging_wait(),
              result.prefetch.worker_stall);
  // Every worker's breakdown closes: accounted + idle spans the wall clock.
  for (const auto& worker : report.workers()) {
    EXPECT_LE(worker.accounted().value(), result.epoch.epoch_time.value() * 1.01);
    within_1pct(worker.total(), result.epoch.epoch_time);
  }
}

TEST(EpochReport, FaultyReplayReconcilesWithRetryBucket) {
  // Under fault injection the resilience ladder charges backoff as injected
  // delay; the trace records those windows as kRetry spans nested inside the
  // demand fetch. They must land in the distinct `retry` bucket — not
  // inflate fetch-stall — and the bucket must reconcile with the fault
  // replay's own backoff accounting.
  constexpr std::size_t kSamples = 256;
  sim::ClusterConfig cluster;
  cluster.compute_cores = 16;
  cluster.storage_cores = 4;
  cluster.bandwidth = Bandwidth::mbps(1000.0);
  cluster.batch_size = 64;

  const auto clean_flow = [](std::size_t) {
    sim::SampleFlow f;
    f.storage_cpu = Seconds(0.002);  // offloaded, so offload-only faults apply
    f.wire = Bytes(1 << 19);
    f.compute_cpu = Seconds(0.004);
    return f;
  };
  const auto raw_flow = [](std::size_t) {
    sim::SampleFlow f;
    f.wire = Bytes(1 << 20);
    f.compute_cpu = Seconds(0.008);
    return f;
  };
  net::FaultProfile profile;
  profile.transient_fail_prob = 0.3;  // plenty of retries, ladders rarely exhaust
  profile.seed = 7;
  const net::FaultInjector faults{profile};
  net::RetryPolicy retry;
  retry.max_attempts = 4;
  retry.seed = profile.seed;
  sim::FaultReplayStats replay_stats;
  const auto flow =
      sim::faulty_flow(clean_flow, raw_flow, faults, retry, /*epoch_index=*/1, &replay_stats);

  prefetch::ReplayOptions options;
  options.workers = 4;
  options.prefetch.depth = 0;  // all demand: the flow runs exactly once per sample

  Tracer& tracer = global_tracer();
  (void)tracer.drain();
  tracer.set_capacity(kSamples * 8 + 1024);
  tracer.set_enabled(true);
  sim::TraceRecorder recorder;
  const auto result = prefetch::replay_epoch(kSamples, flow, cluster, Seconds(0.05),
                                             /*seed=*/42, /*epoch=*/1, options, recorder.sink());
  const auto flows = build_replay_trace(recorder.rows(), {}, tracer);
  tracer.set_enabled(false);
  const auto spans = tracer.drain();
  ASSERT_GT(replay_stats.retries, 0u);
  ASSERT_GT(replay_stats.backoff.value(), 0.0);

  const auto report = EpochReport::build(spans, tracer.labels(), result.epoch.epoch_time);
  ASSERT_EQ(report.workers().size(), 4u);

  // The retry bucket is the backoff — exactly what faulty_flow charged.
  EXPECT_NEAR(report.total_retry().value(), replay_stats.backoff.value(),
              0.01 * replay_stats.backoff.value());
  // And fetch-stall no longer swallows it: stall components plus retry
  // reconcile with the replay's own worker-stall counter (which spans the
  // whole claim-to-arrival round trip, backoff included).
  const double stall = report.total_fetch_stall().value() + report.total_staging_wait().value() +
                       report.total_retry().value();
  EXPECT_NEAR(stall, result.prefetch.worker_stall.value(),
              0.01 * result.prefetch.worker_stall.value());
  // Every retried sample emitted one retry->success flow arrow, ids in the
  // dedicated retry id space.
  std::size_t retried_rows = 0;
  for (const auto& row : recorder.rows()) {
    if (!row.prefetched && row.issued > row.claimed) ++retried_rows;
  }
  std::size_t retry_flows = 0;
  for (const auto& flow_event : flows) {
    if (flow_event.name == "retry") {
      EXPECT_GE(flow_event.id, std::uint64_t{1} << 32);
      EXPECT_GE(flow_event.to_ns, flow_event.from_ns);
      ++retry_flows;
    }
  }
  EXPECT_EQ(retry_flows, retried_rows);
  EXPECT_GT(retry_flows, 0u);
  // Per-worker closure still holds under faults.
  for (const auto& worker : report.workers()) {
    EXPECT_LE(worker.accounted().value(), result.epoch.epoch_time.value() * 1.01);
  }
  EXPECT_NE(report.to_json().at("workers").at(0).has("retry_seconds"), false);
}

}  // namespace
}  // namespace sophon::obs
