// Flight recorder semantics: counters sample as interval deltas, gauges as
// instantaneous readings, durations as accrued seconds; raw rings fold into
// the downsampled tail (sum vs mean by kind); memory stays bounded via the
// ring capacities and the max_series cap.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/timeseries.h"

namespace sophon::obs {
namespace {

TEST(FlightRecorder, CountersRecordDeltasGaugesRecordValues) {
  MetricsRegistry registry;
  FlightRecorder recorder(registry);

  registry.counter("sophon_test_events").increment(5);
  registry.gauge("sophon_test_depth").set(3.0);
  recorder.sample_at(1.0);

  registry.counter("sophon_test_events").increment(2);
  registry.gauge("sophon_test_depth").set(9.0);
  recorder.sample_at(2.0);

  const auto events = recorder.recent("sophon_test_events");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].t, 1.0);
  EXPECT_DOUBLE_EQ(events[0].value, 5.0);  // delta from the empty baseline
  EXPECT_DOUBLE_EQ(events[1].value, 2.0);  // delta, not cumulative 7
  EXPECT_EQ(recorder.kind("sophon_test_events"), SeriesKind::kCounterDelta);

  const auto depth = recorder.recent("sophon_test_depth");
  ASSERT_EQ(depth.size(), 2u);
  EXPECT_DOUBLE_EQ(depth[0].value, 3.0);
  EXPECT_DOUBLE_EQ(depth[1].value, 9.0);
  EXPECT_EQ(recorder.kind("sophon_test_depth"), SeriesKind::kGauge);

  EXPECT_EQ(recorder.samples(), 2u);
  EXPECT_EQ(recorder.recent("sophon_unknown").size(), 0u);
}

TEST(FlightRecorder, DurationsRecordIntervalSeconds) {
  MetricsRegistry registry;
  FlightRecorder recorder(registry);
  registry.duration("sophon_test_cpu").observe(Seconds(1.5));
  recorder.sample_at(1.0);
  registry.duration("sophon_test_cpu").observe(Seconds(0.25));
  registry.duration("sophon_test_cpu").observe(Seconds(0.25));
  recorder.sample_at(2.0);

  const auto points = recorder.recent("sophon_test_cpu");
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].value, 1.5);
  EXPECT_DOUBLE_EQ(points[1].value, 0.5);
  EXPECT_EQ(recorder.kind("sophon_test_cpu"), SeriesKind::kSeconds);
}

TEST(FlightRecorder, RawWindowFoldsIntoTailByKind) {
  TimeSeriesOptions options;
  options.raw_capacity = 4;
  options.tail_capacity = 8;
  options.downsample = 2;
  MetricsRegistry registry;
  FlightRecorder recorder(registry, options);

  // 8 samples: counter +1 each interval, gauge ramp 1..8. The first 4
  // points overflow the raw ring and fold pairwise into the tail.
  for (int i = 1; i <= 8; ++i) {
    registry.counter("sophon_test_events").increment(1);
    registry.gauge("sophon_test_depth").set(static_cast<double>(i));
    recorder.sample_at(static_cast<double>(i));
  }

  const auto raw = recorder.recent("sophon_test_events");
  ASSERT_EQ(raw.size(), 4u);
  EXPECT_DOUBLE_EQ(raw.front().t, 5.0);  // oldest surviving raw point

  const auto counter_tail = recorder.tail("sophon_test_events");
  ASSERT_EQ(counter_tail.size(), 2u);
  EXPECT_DOUBLE_EQ(counter_tail[0].value, 2.0);  // two deltas of 1, summed
  EXPECT_DOUBLE_EQ(counter_tail[1].value, 2.0);

  const auto gauge_tail = recorder.tail("sophon_test_depth");
  ASSERT_EQ(gauge_tail.size(), 2u);
  EXPECT_DOUBLE_EQ(gauge_tail[0].value, 1.5);  // mean of 1 and 2
  EXPECT_DOUBLE_EQ(gauge_tail[1].value, 3.5);  // mean of 3 and 4
}

TEST(FlightRecorder, MaxSeriesCapCountsDrops) {
  TimeSeriesOptions options;
  options.max_series = 2;
  MetricsRegistry registry;
  FlightRecorder recorder(registry, options);
  registry.counter("sophon_a").increment();
  registry.counter("sophon_b").increment();
  registry.counter("sophon_c").increment();
  registry.counter("sophon_d").increment();
  recorder.sample_at(1.0);
  EXPECT_EQ(recorder.series_names().size(), 2u);
  EXPECT_EQ(recorder.dropped_series(), 2u);
}

TEST(FlightRecorder, ToJsonCarriesTheDocumentShape) {
  MetricsRegistry registry;
  FlightRecorder recorder(registry);
  registry.counter("sophon_test_events").increment(3);
  recorder.sample_at(1.0);
  recorder.sample_at(2.0);

  const Json doc = recorder.to_json();
  EXPECT_EQ(doc.at("kind").as_string(), "sophon.timeseries");
  EXPECT_EQ(doc.at("samples").as_int(), 2);
  const Json& series = doc.at("series");
  ASSERT_EQ(series.size(), 1u);
  const Json& one = series.at(0);
  EXPECT_EQ(one.at("name").as_string(), "sophon_test_events");
  EXPECT_EQ(one.at("series_kind").as_string(), "counter_delta");
  ASSERT_EQ(one.at("recent").size(), 2u);
  EXPECT_DOUBLE_EQ(one.at("recent").at(0).at(0).as_number(), 1.0);
  EXPECT_DOUBLE_EQ(one.at("recent").at(0).at(1).as_number(), 3.0);

  // Round-trips through the parser (the /timeseries consumer's contract).
  const auto parsed = Json::parse(doc.dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, doc);
}

TEST(FlightRecorder, WallClockSampleUsesMonotonicTime) {
  MetricsRegistry registry;
  FlightRecorder recorder(registry);
  registry.gauge("sophon_test_depth").set(1.0);
  recorder.sample();
  recorder.sample();
  const auto points = recorder.recent("sophon_test_depth");
  ASSERT_EQ(points.size(), 2u);
  EXPECT_GE(points[0].t, 0.0);
  EXPECT_GE(points[1].t, points[0].t);
}

// TSan target: a sampler thread folding while readers dump JSON and pull
// series — the telemetry server's actual access pattern.
TEST(FlightRecorderConcurrency, SamplerAndReadersInterleave) {
  MetricsRegistry registry;
  FlightRecorder recorder(registry);
  std::atomic<bool> stop{false};

  std::thread sampler([&] {
    for (int i = 0; i < 400; ++i) {
      registry.counter("sophon_test_events").increment();
      registry.gauge("sophon_test_depth").set(static_cast<double>(i));
      recorder.sample_at(static_cast<double>(i));
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        (void)recorder.to_json();
        (void)recorder.recent("sophon_test_events");
        (void)recorder.series_names();
        (void)recorder.last_snapshot();
      }
    });
  }
  sampler.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(recorder.samples(), 400u);
}

}  // namespace
}  // namespace sophon::obs
