// Health evaluator semantics: immediate escalation, hold-gated
// de-escalation, default-rule arithmetic over crafted snapshots — and the
// acceptance arc: a static run whose link degrades then recovers walks the
// overall state OK -> WARN -> CRIT -> (hold) -> OK.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/adapt/loop.h"
#include "obs/health.h"

namespace sophon::obs {
namespace {

HealthRule gauge_rule(const char* metric, double warn, double crit, std::size_t hold = 2) {
  HealthRule rule;
  rule.name = "test_rule";
  rule.help = "test";
  rule.warn = warn;
  rule.crit = crit;
  rule.hold = hold;
  rule.value = [metric](const HealthSample& s) {
    const auto it = s.total.gauges.find(metric);
    return it == s.total.gauges.end() ? 0.0 : it->second;
  };
  return rule;
}

TEST(HealthEvaluator, EscalatesImmediatelyDeescalatesAfterHold) {
  MetricsRegistry metrics;
  HealthEvaluator health({gauge_rule("sophon_test_level", 0.5, 0.8, /*hold=*/2)});
  auto eval_at = [&](double level) {
    metrics.gauge("sophon_test_level").set(level);
    return health.evaluate(metrics.snapshot(), Seconds(1.0));
  };

  EXPECT_EQ(eval_at(0.1), HealthState::kOk);
  EXPECT_EQ(eval_at(0.6), HealthState::kWarn);  // escalation is immediate
  EXPECT_EQ(eval_at(0.9), HealthState::kCrit);
  // One calm interval is not enough to de-escalate...
  EXPECT_EQ(eval_at(0.1), HealthState::kCrit);
  // ...the second is, and the state drops straight to the graded level.
  EXPECT_EQ(eval_at(0.1), HealthState::kOk);

  const RuleStatus status = health.status("test_rule");
  EXPECT_EQ(status.state, HealthState::kOk);
  // ok->warn, warn->crit, crit->ok.
  EXPECT_EQ(status.transitions, 3u);
  EXPECT_EQ(health.evaluations(), 5u);
  EXPECT_EQ(health.overall(), HealthState::kOk);
}

TEST(HealthEvaluator, FlappingInputHoldsTheElevatedState) {
  MetricsRegistry metrics;
  HealthEvaluator health({gauge_rule("sophon_test_level", 0.5, 2.0, /*hold=*/2)});
  auto eval_at = [&](double level) {
    metrics.gauge("sophon_test_level").set(level);
    return health.evaluate(metrics.snapshot(), Seconds(1.0));
  };
  EXPECT_EQ(eval_at(0.6), HealthState::kWarn);
  // Alternating calm/hot never accumulates `hold` calm intervals in a row.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(eval_at(0.1), HealthState::kWarn) << "flap " << i;
    EXPECT_EQ(eval_at(0.6), HealthState::kWarn) << "flap " << i;
  }
  EXPECT_EQ(health.status("test_rule").transitions, 1u);
}

TEST(HealthRules, ShardCorruptRateIsDeltaBased) {
  MetricsRegistry metrics;
  HealthEvaluator health(default_health_rules());

  metrics.counter("sophon_shard_hit").increment(90);
  metrics.counter("sophon_fetch_attempts").increment(10);
  metrics.counter("sophon_shard_corrupt").increment(10);
  EXPECT_EQ(health.evaluate(metrics.snapshot(), Seconds(1.0)), HealthState::kCrit);
  EXPECT_DOUBLE_EQ(health.status("shard_corrupt_rate").value, 0.1);

  // The next interval is clean: the rate is computed on the delta, so the
  // historical corruption does not pin the rule forever.
  metrics.counter("sophon_shard_hit").increment(100);
  EXPECT_EQ(health.evaluate(metrics.snapshot(), Seconds(1.0)), HealthState::kCrit)
      << "hold keeps CRIT for one calm interval";
  EXPECT_DOUBLE_EQ(health.status("shard_corrupt_rate").value, 0.0);
  metrics.counter("sophon_shard_hit").increment(100);
  EXPECT_EQ(health.evaluate(metrics.snapshot(), Seconds(1.0)), HealthState::kOk);
}

TEST(HealthRules, StagingHighwaterReadsBudgetAndZeroIsHealthy) {
  MetricsRegistry metrics;
  HealthEvaluator health(default_health_rules());
  // No budget gauge at all: the rule reports 0 rather than dividing by zero.
  EXPECT_EQ(health.evaluate(metrics.snapshot(), Seconds(1.0)), HealthState::kOk);

  metrics.gauge("sophon_prefetch_buffer_budget_bytes").set(1000.0);
  metrics.gauge("sophon_prefetch_buffer_highwater_bytes").set(950.0);
  EXPECT_EQ(health.evaluate(metrics.snapshot(), Seconds(1.0)), HealthState::kWarn);
  EXPECT_DOUBLE_EQ(health.status("staging_buffer_highwater").value, 0.95);
  metrics.gauge("sophon_prefetch_buffer_highwater_bytes").set(1000.0);
  EXPECT_EQ(health.evaluate(metrics.snapshot(), Seconds(1.0)), HealthState::kCrit);
}

TEST(HealthEvaluator, ToJsonCarriesRuleStates) {
  MetricsRegistry metrics;
  HealthEvaluator health(default_health_rules());
  metrics.gauge("sophon_epoch_fetch_stall_fraction").set(0.95);
  health.evaluate(metrics.snapshot(), Seconds(1.0));

  const Json doc = health.to_json();
  EXPECT_EQ(doc.at("kind").as_string(), "sophon.health");
  EXPECT_EQ(doc.at("overall").as_string(), "crit");
  EXPECT_EQ(doc.at("evaluations").as_int(), 1);
  bool found = false;
  for (std::size_t i = 0; i < doc.at("rules").size(); ++i) {
    const Json& rule = doc.at("rules").at(i);
    if (rule.at("name").as_string() != "fetch_stall_fraction") continue;
    found = true;
    EXPECT_EQ(rule.at("state").as_string(), "crit");
    EXPECT_DOUBLE_EQ(rule.at("value").as_number(), 0.95);
    EXPECT_DOUBLE_EQ(rule.at("warn").as_number(), 0.5);
    EXPECT_DOUBLE_EQ(rule.at("crit").as_number(), 0.8);
  }
  EXPECT_TRUE(found);
}

// The acceptance pin: a run whose link drops mildly, then severely, then
// recovers must walk the stall-fraction rule OK -> WARN -> CRIT and, after
// `hold` calm epochs, back to OK. Static plan (adapt off) so the stall
// tracks the injected bandwidth and nothing else.
TEST(HealthArc, WarnCritOkAcrossBandwidthDropAndRecovery) {
  const auto catalog = dataset::Catalog::generate(dataset::openimages_profile(600), 42);
  const auto pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  sim::ClusterConfig planned;
  planned.bandwidth = Bandwidth::mbps(8000.0);

  std::vector<HealthRule> rules = default_health_rules();
  std::erase_if(rules, [](const HealthRule& r) { return r.name != "fetch_stall_fraction"; });
  ASSERT_EQ(rules.size(), 1u);

  MetricsRegistry metrics;
  HealthEvaluator health(std::move(rules));
  core::adapt::RunOptions options;
  options.epochs = 10;
  options.adapt = false;
  options.bandwidth_at = [](std::size_t epoch) {
    if (epoch >= 6) return Bandwidth::mbps(8000.0);  // recovery
    if (epoch >= 4) return Bandwidth::mbps(20.0);    // severe drop
    if (epoch >= 2) return Bandwidth::mbps(150.0);   // mild drop
    return Bandwidth::mbps(8000.0);                  // healthy
  };
  options.telemetry.metrics = &metrics;
  options.telemetry.health = &health;
  std::vector<HealthState> states;
  std::vector<double> stalls;
  options.telemetry.on_epoch = [&](const core::adapt::EpochRow&) {
    const auto snap = metrics.snapshot();
    states.push_back(static_cast<HealthState>(snap.gauges.at("sophon_health_state")));
    stalls.push_back(snap.gauges.at("sophon_epoch_fetch_stall_fraction"));
  };

  const auto result =
      core::adapt::run_adaptive(catalog, pipe, cm, planned, Seconds(1.0), options);
  ASSERT_EQ(result.rows.size(), 10u);
  ASSERT_EQ(states.size(), 10u);

  std::string trace;
  for (std::size_t e = 0; e < states.size(); ++e) {
    trace += "epoch " + std::to_string(e) + ": stall " + std::to_string(stalls[e]) + " -> " +
             std::string(health_state_name(states[e])) + "\n";
  }

  EXPECT_EQ(states[0], HealthState::kOk) << trace;
  EXPECT_EQ(states[1], HealthState::kOk) << trace;
  EXPECT_EQ(states[2], HealthState::kWarn) << trace;  // mild drop pages WARN...
  EXPECT_EQ(states[3], HealthState::kWarn) << trace;
  EXPECT_EQ(states[4], HealthState::kCrit) << trace;  // ...severe drop CRIT
  EXPECT_EQ(states[5], HealthState::kCrit) << trace;
  // Recovery at epoch 6: one calm epoch is within the hold window...
  EXPECT_EQ(states[6], HealthState::kCrit) << trace;
  // ...two calm epochs clear it.
  EXPECT_EQ(states[7], HealthState::kOk) << trace;
  EXPECT_EQ(states[9], HealthState::kOk) << trace;
}

// TSan target: the run thread evaluating while the server thread renders.
TEST(HealthConcurrency, EvaluateAndReadersInterleave) {
  MetricsRegistry metrics;
  HealthEvaluator health(default_health_rules());
  std::atomic<bool> stop{false};
  std::thread evaluator([&] {
    for (int i = 0; i < 500; ++i) {
      metrics.gauge("sophon_epoch_fetch_stall_fraction").set((i % 10) / 10.0);
      metrics.counter("sophon_shard_hit").increment();
      health.evaluate(metrics.snapshot(), Seconds(1.0));
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        (void)health.to_json();
        (void)health.overall();
        (void)health.status("fetch_stall_fraction");
      }
    });
  }
  evaluator.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(health.evaluations(), 500u);
}

}  // namespace
}  // namespace sophon::obs
