#include "sim/trainer.h"

#include <gtest/gtest.h>

#include "net/wire.h"
#include "util/check.h"

namespace sophon::sim {
namespace {

struct Fixture {
  dataset::Catalog catalog = dataset::Catalog::generate(dataset::openimages_profile(2000), 42);
  pipeline::Pipeline pipeline = pipeline::Pipeline::standard();
  pipeline::CostModel cost_model;
  ClusterConfig cluster = [] {
    ClusterConfig c;
    c.bandwidth = Bandwidth::mbps(200.0);
    c.batch_size = 64;
    return c;
  }();
  Seconds batch_time = Seconds::millis(25.0);

  EpochStats run(std::span<const std::uint8_t> assignment, std::size_t epoch = 0) {
    return simulate_epoch(catalog, pipeline, cost_model, cluster, batch_time, assignment, 42,
                          epoch);
  }
};

TEST(Trainer, NoOffloadTrafficEqualsRawWireBytes) {
  Fixture f;
  const auto stats = f.run({});
  Bytes expected;
  for (const auto& s : f.catalog.samples()) expected += net::wire_size(s.raw);
  EXPECT_EQ(stats.traffic, expected);
  EXPECT_EQ(stats.samples, 2000u);
  EXPECT_EQ(stats.batches, (2000u + 63) / 64);
  EXPECT_EQ(stats.offloaded_samples, 0u);
  EXPECT_DOUBLE_EQ(stats.storage_cpu_busy.value(), 0.0);
}

TEST(Trainer, EpochTimeBoundedBelowByResourceTotals) {
  Fixture f;
  const auto stats = f.run({});
  // The epoch can never beat the network or the GPU alone.
  const double net_time = stats.traffic.as_double() / f.cluster.bandwidth.bytes_per_sec();
  EXPECT_GE(stats.epoch_time.value(), net_time - 1e-9);
  EXPECT_GE(stats.epoch_time.value(), stats.gpu_busy.value() - 1e-9);
  EXPECT_GE(stats.epoch_time.value(),
            stats.compute_cpu_busy.value() / f.cluster.compute_cores - 1e-9);
}

TEST(Trainer, GpuUtilizationConsistent) {
  Fixture f;
  const auto stats = f.run({});
  EXPECT_NEAR(stats.gpu_utilization, stats.gpu_busy.value() / stats.epoch_time.value(), 1e-12);
  EXPECT_GT(stats.gpu_utilization, 0.0);
  EXPECT_LE(stats.gpu_utilization, 1.0);
}

TEST(Trainer, FullOffloadMovesCpuToStorage) {
  Fixture f;
  const std::vector<std::uint8_t> all(f.catalog.size(), 5);
  const auto stats = f.run(all);
  EXPECT_EQ(stats.offloaded_samples, f.catalog.size());
  EXPECT_GT(stats.storage_cpu_busy.value(), 0.0);
  EXPECT_DOUBLE_EQ(stats.compute_cpu_busy.value(), 0.0);
  // Tensor payloads: traffic must be ~602 KB per sample.
  EXPECT_NEAR(stats.traffic.as_double() / static_cast<double>(f.catalog.size()),
              224.0 * 224 * 3 * 4 + 16, 1.0);
}

TEST(Trainer, ResizePrefixReducesTrafficOnOpenImages) {
  Fixture f;
  const std::vector<std::uint8_t> resize(f.catalog.size(), 2);
  const auto base = f.run({});
  const auto off = f.run(resize);
  EXPECT_LT(off.traffic, base.traffic);
  EXPECT_GT(off.storage_cpu_busy.value(), 0.0);
}

TEST(Trainer, SelectiveAssignmentOnlyChargesOffloadedSamples) {
  Fixture f;
  std::vector<std::uint8_t> some(f.catalog.size(), 0);
  for (std::size_t i = 0; i < some.size(); i += 4) some[i] = 2;
  const auto stats = f.run(some);
  EXPECT_EQ(stats.offloaded_samples, (f.catalog.size() + 3) / 4);
}

TEST(Trainer, ConservationAcrossEpochShuffles) {
  // Traffic is order-independent: every epoch moves the same bytes.
  Fixture f;
  const auto e0 = f.run({}, 0);
  const auto e1 = f.run({}, 1);
  EXPECT_EQ(e0.traffic, e1.traffic);
  EXPECT_NEAR(e0.epoch_time.value(), e1.epoch_time.value(), 0.05 * e0.epoch_time.value());
}

TEST(Trainer, SlowerLinkIncreasesEpochTime) {
  Fixture f;
  const auto fast = f.run({});
  f.cluster.bandwidth = Bandwidth::mbps(50.0);
  const auto slow = f.run({});
  EXPECT_GT(slow.epoch_time.value(), fast.epoch_time.value());
}

TEST(Trainer, MoreStorageCoresNeverHurtFullOffload) {
  Fixture f;
  const std::vector<std::uint8_t> all(f.catalog.size(), 5);
  f.cluster.storage_cores = 1;
  const auto one = f.run(all);
  f.cluster.storage_cores = 8;
  const auto eight = f.run(all);
  EXPECT_LE(eight.epoch_time.value(), one.epoch_time.value() + 1e-9);
}

TEST(Trainer, OffloadWithZeroStorageCoresIsRejected) {
  Fixture f;
  f.cluster.storage_cores = 0;
  const std::vector<std::uint8_t> all(f.catalog.size(), 2);
  EXPECT_THROW((void)f.run(all), ContractViolation);
  // But a no-offload run is fine.
  EXPECT_NO_THROW((void)f.run({}));
}

TEST(Trainer, RejectsMalformedAssignment) {
  Fixture f;
  const std::vector<std::uint8_t> wrong_size(5, 0);
  EXPECT_THROW((void)f.run(wrong_size), ContractViolation);
  std::vector<std::uint8_t> bad_prefix(f.catalog.size(), 0);
  bad_prefix[0] = 6;
  EXPECT_THROW((void)f.run(bad_prefix), ContractViolation);
}

TEST(Trainer, GpuBoundWorkloadIsGpuLimited) {
  Fixture f;
  f.cluster.bandwidth = Bandwidth::gbps(100.0);  // network essentially free
  f.batch_time = Seconds::millis(400.0);
  const auto stats = f.run({});
  const double gpu_total = 0.4 * static_cast<double>(stats.batches);
  EXPECT_NEAR(stats.epoch_time.value(), gpu_total, 0.1 * gpu_total);
  EXPECT_GT(stats.gpu_utilization, 0.9);
}

TEST(Trainer, FlowsApiMatchesAssignmentApi) {
  Fixture f;
  std::vector<std::uint8_t> some(f.catalog.size(), 0);
  for (std::size_t i = 0; i < some.size(); i += 3) some[i] = 2;
  const auto direct = f.run(some);

  const auto flow = [&](std::size_t idx) {
    const auto& meta = f.catalog.sample(idx);
    const std::size_t prefix = some[idx];
    SampleFlow fl;
    fl.storage_cpu =
        prefix > 0 ? f.pipeline.prefix_cost(meta.raw, prefix, f.cost_model) : Seconds(0.0);
    fl.wire = net::wire_size(f.pipeline.shape_at(meta.raw, prefix));
    fl.compute_cpu = f.pipeline.suffix_cost(meta.raw, prefix, f.cost_model);
    return fl;
  };
  const auto via_flows = simulate_epoch_flows(f.catalog.size(), flow, f.cluster, f.batch_time,
                                              42, 0);
  EXPECT_EQ(via_flows.traffic, direct.traffic);
  EXPECT_DOUBLE_EQ(via_flows.epoch_time.value(), direct.epoch_time.value());
}

TEST(Trainer, MultiEpochAverage) {
  Fixture f;
  const auto one = simulate_epochs(f.catalog, f.pipeline, f.cost_model, f.cluster, f.batch_time,
                                   {}, 42, 1);
  const auto three = simulate_epochs(f.catalog, f.pipeline, f.cost_model, f.cluster,
                                     f.batch_time, {}, 42, 3);
  EXPECT_EQ(one.traffic, three.traffic);  // same bytes every epoch
  EXPECT_NEAR(one.epoch_time.value(), three.epoch_time.value(),
              0.05 * one.epoch_time.value());
}

}  // namespace
}  // namespace sophon::sim
