#include "storage/disk_store.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "codec/sjpg.h"
#include "dataset/synth.h"
#include "util/check.h"

namespace sophon::storage {
namespace {

class DiskStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("sophon_disk_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
  }

  void TearDown() override { std::filesystem::remove_all(root_); }

  std::filesystem::path root_;
};

TEST_F(DiskStoreTest, PutGetRoundTrip) {
  DiskStore store(root_);
  const std::vector<std::uint8_t> blob{1, 2, 3, 4, 5};
  ASSERT_TRUE(store.put(7, blob));
  EXPECT_TRUE(store.contains(7));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stored_bytes().count(), 5);
  const auto back = store.get(7);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, blob);
}

TEST_F(DiskStoreTest, MissingIdReturnsNullopt) {
  DiskStore store(root_);
  EXPECT_FALSE(store.get(99).has_value());
  EXPECT_FALSE(store.contains(99));
}

TEST_F(DiskStoreTest, OverwriteReplacesBlob) {
  DiskStore store(root_);
  ASSERT_TRUE(store.put(1, {1, 2, 3}));
  ASSERT_TRUE(store.put(1, {9, 9, 9, 9}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stored_bytes().count(), 4);
  EXPECT_EQ(store.get(1)->size(), 4u);
}

TEST_F(DiskStoreTest, SurvivesReopen) {
  {
    DiskStore store(root_);
    ASSERT_TRUE(store.put(1, {10, 20}));
    ASSERT_TRUE(store.put(2, {30, 40, 50}));
  }
  DiskStore reopened(root_);
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_EQ(reopened.stored_bytes().count(), 5);
  EXPECT_EQ(*reopened.get(2), (std::vector<std::uint8_t>{30, 40, 50}));
}

TEST_F(DiskStoreTest, IngestCatalogWritesDecodableBlobs) {
  auto profile = dataset::openimages_profile(6);
  profile.min_pixels = 5e4;
  profile.max_pixels = 1.2e5;
  const auto catalog = dataset::Catalog::generate(profile, 42);

  DiskStore store(root_);
  EXPECT_EQ(store.ingest_catalog(catalog, 42, profile.quality), 6u);
  EXPECT_EQ(store.size(), 6u);
  for (const auto& meta : catalog.samples()) {
    const auto blob = store.get(meta.id);
    ASSERT_TRUE(blob.has_value());
    const auto decoded = codec::sjpg_decode(*blob);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->width(), meta.raw.width);
    EXPECT_EQ(decoded->height(), meta.raw.height);
  }
  // Re-ingest is a no-op.
  EXPECT_EQ(store.ingest_catalog(catalog, 42, profile.quality), 0u);
}

TEST_F(DiskStoreTest, IngestedBytesMatchManifest) {
  auto profile = dataset::openimages_profile(4);
  profile.min_pixels = 5e4;
  profile.max_pixels = 1e5;
  const auto catalog = dataset::Catalog::generate(profile, 7);
  DiskStore store(root_);
  store.ingest_catalog(catalog, 7, profile.quality);

  std::int64_t on_disk = 0;
  for (const auto& entry : std::filesystem::directory_iterator(root_)) {
    if (entry.path().extension() == ".sjpg") {
      on_disk += static_cast<std::int64_t>(entry.file_size());
    }
  }
  EXPECT_EQ(store.stored_bytes().count(), on_disk);
}

TEST_F(DiskStoreTest, RejectsEmptyBlob) {
  DiskStore store(root_);
  EXPECT_THROW((void)store.put(1, {}), ContractViolation);
}

TEST_F(DiskStoreTest, TruncatedBlobIsCorruptionNotData) {
  MetricsRegistry metrics;
  DiskStore store(root_, &metrics);
  ASSERT_TRUE(store.put(3, {1, 2, 3, 4, 5, 6}));
  // Truncate the blob behind the manifest's back.
  const auto file = [&] {
    for (const auto& entry : std::filesystem::directory_iterator(root_)) {
      if (entry.path().extension() == ".sjpg") return entry.path();
    }
    return std::filesystem::path{};
  }();
  ASSERT_FALSE(file.empty());
  std::filesystem::resize_file(file, 2);
  EXPECT_FALSE(store.get(3).has_value());
  EXPECT_EQ(metrics.counter("sophon_diskstore_corrupt").value(), 1u);
  // A blob that *grew* is just as suspect as one that shrank.
  std::filesystem::resize_file(file, 64);
  EXPECT_FALSE(store.get(3).has_value());
  EXPECT_EQ(metrics.counter("sophon_diskstore_corrupt").value(), 2u);
}

TEST_F(DiskStoreTest, VanishedBlobIsAbsentNotCorrupt) {
  MetricsRegistry metrics;
  DiskStore store(root_, &metrics);
  ASSERT_TRUE(store.put(4, {9, 9}));
  for (const auto& entry : std::filesystem::directory_iterator(root_)) {
    if (entry.path().extension() == ".sjpg") std::filesystem::remove(entry.path());
  }
  EXPECT_FALSE(store.get(4).has_value());
  EXPECT_EQ(metrics.counter("sophon_diskstore_corrupt").value(), 0u);
}

TEST_F(DiskStoreTest, IntactBlobDoesNotBumpCorruptCounter) {
  MetricsRegistry metrics;
  DiskStore store(root_, &metrics);
  ASSERT_TRUE(store.put(5, {1, 2, 3}));
  EXPECT_TRUE(store.get(5).has_value());
  EXPECT_EQ(metrics.counter("sophon_diskstore_corrupt").value(), 0u);
}

}  // namespace
}  // namespace sophon::storage
