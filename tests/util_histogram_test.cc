#include "util/histogram.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/check.h"

namespace sophon {
namespace {

TEST(Histogram, BucketsAndFractions) {
  Histogram h(0.0, 10.0, 5);
  for (const double v : {0.5, 1.0, 2.5, 9.9, 5.0}) h.add(v);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);  // [0,2)
  EXPECT_EQ(h.count(1), 1u);  // [2,4)
  EXPECT_EQ(h.count(2), 1u);  // [4,6)
  EXPECT_EQ(h.count(3), 0u);
  EXPECT_EQ(h.count(4), 1u);  // [8,10)
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
}

TEST(Histogram, OutOfRangeSaturates) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(25.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, BucketEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, RejectsNonFiniteValues) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.add(std::numeric_limits<double>::quiet_NaN()), ContractViolation);
  EXPECT_THROW(h.add(std::numeric_limits<double>::infinity()), ContractViolation);
  EmpiricalCdf cdf;
  EXPECT_THROW(cdf.add(std::numeric_limits<double>::quiet_NaN()), ContractViolation);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, AsciiRendersOneLinePerBucket) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const auto text = h.ascii(10);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(EmpiricalCdf, FractionsAndQuantiles) {
  EmpiricalCdf cdf;
  cdf.add_all({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(3.0), 0.6);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  EXPECT_EQ(cdf.size(), 5u);
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  EmpiricalCdf cdf;
  for (int i = 0; i < 100; ++i) cdf.add(static_cast<double>((i * 37) % 101));
  const auto curve = cdf.curve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalCdf, RejectsEmptyQueries) {
  EmpiricalCdf cdf;
  EXPECT_THROW((void)cdf.quantile(0.5), ContractViolation);
  EXPECT_THROW((void)cdf.fraction_at_or_below(1.0), ContractViolation);
}

}  // namespace
}  // namespace sophon
