#include "util/units.h"

#include <gtest/gtest.h>

namespace sophon {
namespace {

TEST(Bytes, ArithmeticAndComparison) {
  const Bytes a(1000);
  const Bytes b(24);
  EXPECT_EQ((a + b).count(), 1024);
  EXPECT_EQ((a - b).count(), 976);
  EXPECT_EQ((a * 3).count(), 3000);
  EXPECT_EQ((3 * a).count(), 3000);
  EXPECT_LT(b, a);
  EXPECT_DOUBLE_EQ(a / b, 1000.0 / 24.0);
}

TEST(Bytes, CompoundAssignment) {
  Bytes a(10);
  a += Bytes(5);
  EXPECT_EQ(a.count(), 15);
  a -= Bytes(20);
  EXPECT_EQ(a.count(), -5);
}

TEST(Bytes, UnitHelpers) {
  EXPECT_EQ(Bytes::kib(2).count(), 2048);
  EXPECT_EQ(Bytes::mib(1).count(), 1024 * 1024);
  EXPECT_EQ(Bytes::gib(1).count(), 1024LL * 1024 * 1024);
}

TEST(Seconds, ArithmeticAndHelpers) {
  const Seconds s = Seconds::millis(1500.0);
  EXPECT_DOUBLE_EQ(s.value(), 1.5);
  EXPECT_DOUBLE_EQ(Seconds::micros(10.0).value(), 1e-5);
  EXPECT_DOUBLE_EQ(Seconds::nanos(100.0).value(), 1e-7);
  EXPECT_DOUBLE_EQ((s * 2.0).value(), 3.0);
  EXPECT_DOUBLE_EQ((s / 3.0).value(), 0.5);
  EXPECT_DOUBLE_EQ(Seconds(3.0) / Seconds(1.5), 2.0);
}

TEST(Bandwidth, TransferTime) {
  const auto bw = Bandwidth::mbps(500.0);
  EXPECT_DOUBLE_EQ(bw.bytes_per_sec(), 62.5e6);
  // 62.5 MB should take exactly one second.
  EXPECT_DOUBLE_EQ(bw.transfer_time(Bytes(62'500'000)).value(), 1.0);
  EXPECT_DOUBLE_EQ(Bandwidth::gbps(1.0).bps(), 1e9);
}

TEST(HumanFormat, Bytes) {
  EXPECT_EQ(human_bytes(Bytes(512)), "512.0 B");
  EXPECT_EQ(human_bytes(Bytes(2048)), "2.0 KiB");
  EXPECT_EQ(human_bytes(Bytes::mib(3)), "3.0 MiB");
  EXPECT_EQ(human_bytes(Bytes::gib(2)), "2.0 GiB");
  EXPECT_EQ(human_bytes(Bytes(-2048)), "-2.0 KiB");
}

TEST(HumanFormat, Seconds) {
  EXPECT_EQ(human_seconds(Seconds::nanos(50.0)), "50.0 ns");
  EXPECT_EQ(human_seconds(Seconds::micros(5.0)), "5.0 us");
  EXPECT_EQ(human_seconds(Seconds::millis(12.0)), "12.0 ms");
  EXPECT_EQ(human_seconds(Seconds(90.0)), "90.0 s");
}

TEST(HumanFormat, Bandwidth) {
  EXPECT_EQ(human_bandwidth(Bandwidth::mbps(500.0)), "500.0 Mbps");
  EXPECT_EQ(human_bandwidth(Bandwidth::gbps(1.5)), "1.5 Gbps");
  EXPECT_EQ(human_bandwidth(Bandwidth::bits_per_sec(2000.0)), "2.0 Kbps");
}

}  // namespace
}  // namespace sophon
