#include "core/runner.h"

#include <gtest/gtest.h>

namespace sophon::core {
namespace {

struct Fixture {
  dataset::Catalog catalog = dataset::Catalog::generate(dataset::openimages_profile(3000), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  RunConfig config = [] {
    RunConfig c;
    c.cluster.bandwidth = Bandwidth::mbps(100.0);
    return c;
  }();
};

TEST(Runner, RunsOnePolicyEndToEnd) {
  Fixture f;
  const auto policy = make_policy(PolicyKind::kSophon);
  const auto result = run_policy(*policy, f.catalog, f.pipe, f.cm, f.config);
  EXPECT_EQ(result.kind, PolicyKind::kSophon);
  EXPECT_EQ(result.name, "SOPHON");
  EXPECT_GT(result.stats.epoch_time.value(), 0.0);
  EXPECT_GT(result.stats.traffic.count(), 0);
  EXPECT_EQ(result.stats.offloaded_samples, result.decision.plan.offloaded_count());
}

TEST(Runner, AllPoliciesProduceConsistentResults) {
  Fixture f;
  const auto results = run_all_policies(f.catalog, f.pipe, f.cm, f.config);
  ASSERT_EQ(results.size(), 5u);
  for (const auto& r : results) {
    EXPECT_GT(r.stats.epoch_time.value(), 0.0);
    EXPECT_EQ(r.stats.samples, f.catalog.size());
  }
}

TEST(Runner, SophonNoWorseThanEveryBaseline) {
  // The headline property: under an I/O-bound configuration SOPHON's epoch
  // time is the minimum across all policies.
  Fixture f;
  const auto results = run_all_policies(f.catalog, f.pipe, f.cm, f.config);
  const auto* sophon = &results.back();
  ASSERT_EQ(sophon->kind, PolicyKind::kSophon);
  for (const auto& r : results) {
    EXPECT_LE(sophon->stats.epoch_time.value(), r.stats.epoch_time.value() * 1.001) << r.name;
  }
}

TEST(Runner, FastFlowMatchesNoOffInEvaluatedSetups) {
  Fixture f;
  const auto results = run_all_policies(f.catalog, f.pipe, f.cm, f.config);
  const auto& no_off = results[0];
  const auto& fastflow = results[2];
  EXPECT_EQ(fastflow.stats.traffic, no_off.stats.traffic);
  EXPECT_NEAR(fastflow.stats.epoch_time.value(), no_off.stats.epoch_time.value(), 1e-9);
}

TEST(Runner, GpuModelSelectionMatters) {
  Fixture f;
  f.config.net = model::NetKind::kAlexNet;
  const auto alex = run_policy(*make_policy(PolicyKind::kNoOff), f.catalog, f.pipe, f.cm,
                               f.config);
  f.config.net = model::NetKind::kResNet50;
  const auto r50 =
      run_policy(*make_policy(PolicyKind::kNoOff), f.catalog, f.pipe, f.cm, f.config);
  EXPECT_GT(r50.stats.gpu_busy.value(), alex.stats.gpu_busy.value());
  EXPECT_GT(r50.stats.gpu_utilization, alex.stats.gpu_utilization);
}

TEST(Runner, MultiEpochAveragingWorks) {
  Fixture f;
  f.config.epochs = 3;
  const auto result = run_policy(*make_policy(PolicyKind::kNoOff), f.catalog, f.pipe, f.cm,
                                 f.config);
  EXPECT_GT(result.stats.epoch_time.value(), 0.0);
}

}  // namespace
}  // namespace sophon::core
