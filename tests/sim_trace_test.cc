#include "sim/trace.h"

#include <gtest/gtest.h>

#include "net/wire.h"
#include "sim/trainer.h"
#include "util/check.h"

namespace sophon::sim {
namespace {

struct Fixture {
  dataset::Catalog catalog = dataset::Catalog::generate(dataset::openimages_profile(800), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  ClusterConfig cluster = [] {
    ClusterConfig c;
    c.bandwidth = Bandwidth::mbps(200.0);
    c.batch_size = 64;
    return c;
  }();

  std::function<SampleFlow(std::size_t)> flows(std::uint8_t prefix) {
    return [this, prefix](std::size_t idx) {
      const auto& meta = catalog.sample(idx);
      SampleFlow f;
      f.storage_cpu = prefix > 0 ? pipe.prefix_cost(meta.raw, prefix, cm) : Seconds(0.0);
      f.wire = net::wire_size(pipe.shape_at(meta.raw, prefix));
      f.compute_cpu = pipe.suffix_cost(meta.raw, prefix, cm);
      return f;
    };
  }
};

TEST(Trace, OneRowPerSampleWithOrderedTimestamps) {
  Fixture f;
  TraceRecorder recorder;
  const auto stats = simulate_epoch_flows(f.catalog.size(), f.flows(2), f.cluster,
                                          Seconds::millis(25.0), 42, 0, recorder.sink());
  ASSERT_EQ(recorder.size(), f.catalog.size());
  for (const auto& row : recorder.rows()) {
    EXPECT_LE(row.issued.value(), row.storage_done.value());
    EXPECT_LE(row.storage_done.value(), row.link_done.value());
    EXPECT_LE(row.link_done.value(), row.ready.value());
    EXPECT_LE(row.ready.value(), stats.epoch_time.value());
    EXPECT_GT(row.wire.count(), 0);
  }
}

TEST(Trace, TracedRunIsIdenticalToUntraced) {
  Fixture f;
  TraceRecorder recorder;
  const auto traced = simulate_epoch_flows(f.catalog.size(), f.flows(0), f.cluster,
                                           Seconds::millis(25.0), 42, 0, recorder.sink());
  const auto plain = simulate_epoch_flows(f.catalog.size(), f.flows(0), f.cluster,
                                          Seconds::millis(25.0), 42, 0);
  EXPECT_DOUBLE_EQ(traced.epoch_time.value(), plain.epoch_time.value());
  EXPECT_EQ(traced.traffic, plain.traffic);
}

TEST(Trace, WireBytesSumToTraffic) {
  Fixture f;
  TraceRecorder recorder;
  const auto stats = simulate_epoch_flows(f.catalog.size(), f.flows(0), f.cluster,
                                          Seconds::millis(25.0), 42, 0, recorder.sink());
  Bytes sum;
  for (const auto& row : recorder.rows()) sum += row.wire;
  EXPECT_EQ(sum, stats.traffic);
}

TEST(Trace, LinkUtilizationNearOneWhenNetworkBound) {
  Fixture f;
  f.cluster.bandwidth = Bandwidth::mbps(50.0);  // deeply network-bound
  TraceRecorder recorder;
  (void)simulate_epoch_flows(f.catalog.size(), f.flows(0), f.cluster, Seconds::millis(25.0),
                             42, 0, recorder.sink());
  const auto util = recorder.link_utilization(Seconds(1.0), f.cluster.bandwidth);
  ASSERT_GT(util.size(), 4u);
  // Interior buckets (skip ramp-up and tail) should be ~saturated.
  double mid_sum = 0.0;
  std::size_t mid_n = 0;
  for (std::size_t b = 1; b + 1 < util.size(); ++b) {
    mid_sum += util[b];
    ++mid_n;
    EXPECT_LE(util[b], 1.0 + 1e-9);
  }
  EXPECT_GT(mid_sum / static_cast<double>(mid_n), 0.9);
}

TEST(Trace, LinkUtilizationDropsWhenGpuBound) {
  Fixture f;
  f.cluster.bandwidth = Bandwidth::gbps(50.0);
  TraceRecorder recorder;
  (void)simulate_epoch_flows(f.catalog.size(), f.flows(0), f.cluster, Seconds(0.5), 42, 0,
                             recorder.sink());
  const auto util = recorder.link_utilization(Seconds(0.5), f.cluster.bandwidth);
  double total = 0.0;
  for (const auto u : util) total += u;
  EXPECT_LT(total / static_cast<double>(util.size()), 0.2);
}

TEST(Trace, MeanLatencyAndJsonExport) {
  Fixture f;
  TraceRecorder recorder;
  (void)simulate_epoch_flows(f.catalog.size(), f.flows(2), f.cluster, Seconds::millis(25.0),
                             42, 0, recorder.sink());
  EXPECT_GT(recorder.mean_latency().value(), 0.0);
  const auto json = recorder.to_json();
  ASSERT_EQ(json.size(), f.catalog.size());
  EXPECT_TRUE(json.at(static_cast<std::size_t>(0)).has("issued_s"));
  // Round-trips through the parser.
  EXPECT_TRUE(Json::parse(json.dump()).has_value());
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(Trace, EmptyRecorderContracts) {
  TraceRecorder recorder;
  EXPECT_TRUE(recorder.link_utilization(Seconds(1.0), Bandwidth::mbps(100.0)).empty());
  EXPECT_THROW((void)recorder.mean_latency(), ContractViolation);
}

}  // namespace
}  // namespace sophon::sim
