// Robustness fuzzing: the decoder and the wire parser must never crash,
// hang, or violate contracts on arbitrary input — they return nullopt.
// (Deterministic pseudo-random corpus so CI results are reproducible.)
#include <gtest/gtest.h>

#include "codec/sjpg.h"
#include "net/wire.h"
#include "util/json.h"
#include "util/rng.h"

namespace sophon {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(max_len))));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

TEST(CodecFuzz, RandomBuffersNeverCrashDecoder) {
  Rng rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    const auto junk = random_bytes(rng, 4096);
    (void)codec::sjpg_peek(junk);
    (void)codec::sjpg_decode(junk);  // must return; result value irrelevant
  }
  SUCCEED();
}

TEST(CodecFuzz, ValidMagicRandomBodyNeverCrashes) {
  Rng rng(102);
  for (int trial = 0; trial < 300; ++trial) {
    auto junk = random_bytes(rng, 2048);
    if (junk.size() < 10) junk.resize(10);
    junk[0] = 0x53;  // 'S'
    junk[1] = 0x4a;  // 'J'
    junk[2] = 0x50;  // 'P'
    junk[3] = 0x47;  // 'G'
    // Clamp header fields into the valid range so decoding proceeds into
    // the entropy-coded body.
    junk[4] = 0;
    junk[5] = static_cast<std::uint8_t>(1 + trial % 64);  // width
    junk[6] = 0;
    junk[7] = static_cast<std::uint8_t>(1 + trial % 48);  // height
    junk[8] = (trial % 2 == 0) ? 3 : 1;                   // channels
    junk[9] = static_cast<std::uint8_t>(1 + trial % 100); // quality
    const auto decoded = codec::sjpg_decode(junk);
    if (decoded.has_value()) {
      // If it decodes, the dimensions must match the header we forged.
      EXPECT_EQ(decoded->width(), junk[5]);
      EXPECT_EQ(decoded->height(), junk[7]);
    }
  }
  SUCCEED();
}

TEST(CodecFuzz, TruncationSweepOnValidBlob) {
  // Every truncation point of a valid stream must be rejected or decode to
  // a well-formed image — never crash.
  image::Image img(32, 24, 3);
  for (int y = 0; y < 24; ++y)
    for (int x = 0; x < 32; ++x)
      for (int c = 0; c < 3; ++c)
        img.set(x, y, c, static_cast<std::uint8_t>((x * 7 + y * 3 + c) % 256));
  const auto blob = codec::sjpg_encode(img, 75);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    const std::vector<std::uint8_t> prefix(blob.begin(),
                                           blob.begin() + static_cast<std::ptrdiff_t>(len));
    (void)codec::sjpg_decode(prefix);
  }
  SUCCEED();
}

TEST(WireFuzz, RandomBuffersNeverCrashDeserializer) {
  Rng rng(103);
  for (int trial = 0; trial < 500; ++trial) {
    const auto junk = random_bytes(rng, 1024);
    (void)net::deserialize_sample(junk);
  }
  SUCCEED();
}

TEST(JsonFuzz, RandomTextNeverCrashesParser) {
  Rng rng(104);
  const char alphabet[] = "{}[]\",:0123456789.eE+-truefalsnl \t\n";
  for (int trial = 0; trial < 1000; ++trial) {
    std::string text;
    const auto len = rng.uniform_int(0, 200);
    text.reserve(static_cast<std::size_t>(len));
    for (std::int64_t i = 0; i < len; ++i) {
      text += alphabet[rng.uniform_int(0, static_cast<std::int64_t>(sizeof(alphabet)) - 2)];
    }
    (void)Json::parse(text);
  }
  SUCCEED();
}

TEST(JsonFuzz, DeepNestingDoesNotOverflowQuickly) {
  // 2000 nested arrays — parse must either succeed or fail cleanly.
  std::string text;
  for (int i = 0; i < 2000; ++i) text += '[';
  text += '1';
  for (int i = 0; i < 2000; ++i) text += ']';
  const auto parsed = Json::parse(text);
  EXPECT_TRUE(parsed.has_value());
}

}  // namespace
}  // namespace sophon
