#include "storage/sharding.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace sophon::storage {
namespace {

TEST(ShardMap, HashedIsBalanced) {
  const auto map = ShardMap::hashed(40000, 4, 42);
  EXPECT_EQ(map.size(), 40000u);
  EXPECT_EQ(map.num_nodes(), 4);
  const auto hist = map.histogram();
  ASSERT_EQ(hist.size(), 4u);
  for (const auto count : hist) {
    EXPECT_NEAR(static_cast<double>(count), 10000.0, 300.0);
  }
}

TEST(ShardMap, HashedIsDeterministic) {
  const auto a = ShardMap::hashed(1000, 3, 7);
  const auto b = ShardMap::hashed(1000, 3, 7);
  const auto c = ShardMap::hashed(1000, 3, 8);
  bool differs = false;
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.node_of(i), b.node_of(i));
    if (a.node_of(i) != c.node_of(i)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(ShardMap, ContiguousRanges) {
  const auto map = ShardMap::contiguous(10, 3);
  // per_node = ceil(10/3) = 4 → [0..3]=0, [4..7]=1, [8..9]=2
  EXPECT_EQ(map.node_of(0), 0);
  EXPECT_EQ(map.node_of(3), 0);
  EXPECT_EQ(map.node_of(4), 1);
  EXPECT_EQ(map.node_of(7), 1);
  EXPECT_EQ(map.node_of(8), 2);
  EXPECT_EQ(map.node_of(9), 2);
}

TEST(ShardMap, ContiguousCoversAllNodesWhenDivisible) {
  const auto map = ShardMap::contiguous(12, 4);
  const auto hist = map.histogram();
  for (const auto count : hist) EXPECT_EQ(count, 3u);
}

TEST(ShardMap, ExplicitMapValidated) {
  const auto map = ShardMap::explicit_map({0, 1, 1, 0}, 2);
  EXPECT_EQ(map.node_of(1), 1);
  EXPECT_THROW((void)ShardMap::explicit_map({0, 2}, 2), ContractViolation);
}

TEST(ShardMap, SingleNodeMapsEverythingToZero) {
  const auto map = ShardMap::hashed(100, 1, 1);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(map.node_of(i), 0);
}

TEST(ShardMap, BoundsChecked) {
  const auto map = ShardMap::hashed(10, 2, 1);
  EXPECT_THROW((void)map.node_of(10), ContractViolation);
  EXPECT_THROW((void)ShardMap::hashed(10, 0, 1), ContractViolation);
}

}  // namespace
}  // namespace sophon::storage
