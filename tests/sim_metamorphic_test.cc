// Metamorphic properties of the discrete-event trainer: known input
// transformations must move the outputs in provably known directions.
#include <gtest/gtest.h>

#include "net/wire.h"
#include "sim/trainer.h"

namespace sophon::sim {
namespace {

struct Fixture {
  dataset::Catalog catalog = dataset::Catalog::generate(dataset::openimages_profile(3000), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  ClusterConfig cluster = [] {
    ClusterConfig c;
    c.bandwidth = Bandwidth::mbps(200.0);
    return c;
  }();
  Seconds batch_time = Seconds::millis(40.0);

  EpochStats run() {
    return simulate_epoch(catalog, pipe, cm, cluster, batch_time, {}, 42, 0);
  }
};

TEST(SimMetamorphic, BandwidthScalingScalesNetworkBoundEpoch) {
  // Network-dominated regime: scaling bandwidth by k scales epoch time by
  // ~1/k until another resource takes over.
  Fixture f;
  f.cluster.bandwidth = Bandwidth::mbps(50.0);  // deeply network-bound
  const auto slow = f.run();
  f.cluster.bandwidth = Bandwidth::mbps(100.0);
  const auto fast = f.run();
  EXPECT_NEAR(slow.epoch_time.value() / fast.epoch_time.value(), 2.0, 0.1);
  EXPECT_EQ(slow.traffic, fast.traffic);  // bytes moved are invariant
}

TEST(SimMetamorphic, CostModelScalingScalesCpuBusy) {
  Fixture f;
  const auto base = f.run();
  pipeline::CostCoefficients coeffs;  // defaults
  coeffs.decode_ns_per_byte *= 2.0;
  coeffs.decode_ns_per_pixel *= 2.0;
  coeffs.crop_ns_per_src_pixel *= 2.0;
  coeffs.resize_ns_per_out_pixel *= 2.0;
  coeffs.flip_ns_per_pixel *= 2.0;
  coeffs.to_tensor_ns_per_element *= 2.0;
  coeffs.normalize_ns_per_element *= 2.0;
  coeffs.per_op_overhead_ns *= 2.0;
  f.cm = pipeline::CostModel(coeffs);
  const auto doubled = f.run();
  EXPECT_NEAR(doubled.compute_cpu_busy.value(), 2.0 * base.compute_cpu_busy.value(),
              1e-6 * base.compute_cpu_busy.value());
}

TEST(SimMetamorphic, LargerPrefetchWindowNeverSlower) {
  Fixture f;
  double prev = 1e300;
  for (const std::size_t window : {1u, 2u, 4u, 8u, 16u}) {
    f.cluster.prefetch_batches = window;
    const auto stats = f.run();
    EXPECT_LE(stats.epoch_time.value(), prev + 1e-9) << "window " << window;
    prev = stats.epoch_time.value();
  }
}

TEST(SimMetamorphic, MoreComputeCoresNeverSlower) {
  Fixture f;
  f.cluster.compute_cores = 2;
  const auto few = f.run();
  f.cluster.compute_cores = 16;
  const auto many = f.run();
  EXPECT_LE(many.epoch_time.value(), few.epoch_time.value() + 1e-9);
  // Total CPU work is identical; it just spreads across cores.
  EXPECT_NEAR(many.compute_cpu_busy.value(), few.compute_cpu_busy.value(), 1e-9);
}

TEST(SimMetamorphic, LatencyOnlyShiftsNotScales) {
  Fixture f;
  f.cluster.link_latency = Seconds::millis(0.0);
  const auto zero = f.run();
  f.cluster.link_latency = Seconds::millis(50.0);
  const auto high = f.run();
  // Pipelined fetches hide per-message latency: the epoch grows by far less
  // than samples * latency.
  EXPECT_GE(high.epoch_time.value(), zero.epoch_time.value() - 1e-9);
  EXPECT_LT(high.epoch_time.value() - zero.epoch_time.value(),
            0.05 * static_cast<double>(f.catalog.size()) * 0.050);
}

TEST(SimMetamorphic, BatchSizeChangesGranularityNotTraffic) {
  Fixture f;
  f.cluster.batch_size = 64;
  const auto small = f.run();
  f.cluster.batch_size = 512;
  const auto large = f.run();
  EXPECT_EQ(small.traffic, large.traffic);
  EXPECT_EQ(small.batches, (3000u + 63) / 64);
  EXPECT_EQ(large.batches, (3000u + 511) / 512);
}

TEST(SimMetamorphic, SubsetCatalogTakesProportionallyLess) {
  // Half the samples (same distribution) → roughly half the network-bound
  // epoch time.
  Fixture f;
  const auto full = f.run();
  const auto half_catalog =
      dataset::Catalog::generate(dataset::openimages_profile(1500), 42);
  const auto half = simulate_epoch(half_catalog, f.pipe, f.cm, f.cluster, f.batch_time, {}, 42,
                                   0);
  EXPECT_NEAR(full.epoch_time.value() / half.epoch_time.value(), 2.0, 0.25);
}

}  // namespace
}  // namespace sophon::sim
