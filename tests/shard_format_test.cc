#include "shard/format.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "net/wire.h"
#include "util/crc32.h"

namespace sophon::shard {
namespace {

class ShardFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sophon_shard_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    path_ = dir_ / "test.spshrd";
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  static pipeline::SampleData blob(std::uint8_t fill, std::size_t n) {
    pipeline::EncodedBlob b;
    b.bytes.assign(n, fill);
    return b;
  }

  /// Write a 3-entry shard and return the framed payloads keyed by id.
  std::vector<std::vector<std::uint8_t>> write_shard() {
    std::vector<std::vector<std::uint8_t>> framed;
    ShardWriter writer(path_);
    for (std::uint64_t id = 0; id < 3; ++id) {
      const auto payload = blob(static_cast<std::uint8_t>(0x10 + id), 100 + 7 * id);
      EXPECT_TRUE(writer.add(id, static_cast<std::uint8_t>(1 + id % 2), payload));
      framed.push_back(net::serialize_sample(payload));
    }
    EXPECT_TRUE(writer.finish());
    return framed;
  }

  std::vector<std::uint8_t> read_file() const {
    std::ifstream in(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  void write_file(const std::vector<std::uint8_t>& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
  std::filesystem::path path_;
};

TEST(Crc32, MatchesIeeeCheckValue) {
  // The canonical CRC-32/IEEE check string.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(std::span<const std::uint8_t>(data, 9)), 0xCBF43926u);
  // Chunked evaluation must match one-shot.
  const auto first = crc32(std::span<const std::uint8_t>(data, 4));
  EXPECT_EQ(crc32(std::span<const std::uint8_t>(data + 4, 5), first),
            crc32(std::span<const std::uint8_t>(data, 9)));
}

TEST_F(ShardFormatTest, RoundTrip) {
  const auto framed = write_shard();
  auto reader = ShardReader::open(path_);
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->size(), 3u);
  EXPECT_EQ(static_cast<std::uintmax_t>(reader->file_bytes().count()),
            std::filesystem::file_size(path_));
  for (std::uint64_t id = 0; id < 3; ++id) {
    const auto* entry = reader->find(id);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->sample_id, id);
    EXPECT_EQ(entry->stage, 1 + id % 2);
    EXPECT_EQ(entry->repr, pipeline::Repr::kEncoded);
    const auto verified = reader->read_verified(*entry);
    ASSERT_TRUE(verified.has_value());
    ASSERT_EQ(verified->size(), framed[id].size());
    EXPECT_TRUE(std::equal(verified->begin(), verified->end(), framed[id].begin()));
    // The stored bytes parse back into the original payload.
    const auto parsed = net::deserialize_sample(*verified);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(std::get<pipeline::EncodedBlob>(*parsed).bytes.size(), 100 + 7 * id);
    // Encoded shape: blob size is framed length minus wire overhead.
    EXPECT_EQ(entry->shape().bytes.count(),
              static_cast<std::int64_t>(entry->length) - net::kFrameOverheadBytes);
  }
  EXPECT_EQ(reader->find(99), nullptr);
}

TEST_F(ShardFormatTest, DuplicateIdRejected) {
  ShardWriter writer(path_);
  EXPECT_TRUE(writer.add(5, 1, blob(1, 10)));
  EXPECT_FALSE(writer.add(5, 1, blob(2, 10)));
  EXPECT_EQ(writer.count(), 1u);
}

TEST_F(ShardFormatTest, UnfinishedWriterLeavesNoFile) {
  {
    ShardWriter writer(path_);
    EXPECT_TRUE(writer.add(1, 1, blob(1, 64)));
    // no finish(): simulated crash mid-pack
  }
  EXPECT_FALSE(std::filesystem::exists(path_));
  EXPECT_TRUE(std::filesystem::is_empty(dir_));
}

TEST_F(ShardFormatTest, OpenRejectsMissingAndTiny) {
  EXPECT_FALSE(ShardReader::open(path_).has_value());
  write_file({1, 2, 3});
  EXPECT_FALSE(ShardReader::open(path_).has_value());
}

TEST_F(ShardFormatTest, OpenRejectsBadMagicAndVersion) {
  write_shard();
  auto bytes = read_file();
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  write_file(bad_magic);
  EXPECT_FALSE(ShardReader::open(path_).has_value());
  auto bad_version = bytes;
  bad_version[8] ^= 0x02;
  write_file(bad_version);
  EXPECT_FALSE(ShardReader::open(path_).has_value());
}

TEST_F(ShardFormatTest, EveryTruncationRejectedAtOpen) {
  write_shard();
  const auto bytes = read_file();
  // The header pins count, index offset, and total size into one equation;
  // any shorter file breaks it, so no truncation length can slip through.
  for (std::size_t keep = 0; keep < bytes.size(); keep += 13) {
    write_file({bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(keep)});
    EXPECT_FALSE(ShardReader::open(path_).has_value()) << "kept " << keep << " bytes";
  }
}

TEST_F(ShardFormatTest, IndexBitFlipRejectedAtOpen) {
  write_shard();
  auto bytes = read_file();
  // Index occupies the tail; flip a byte in its middle.
  bytes[bytes.size() - kIndexEntryBytes - 4] ^= 0x40;
  write_file(bytes);
  EXPECT_FALSE(ShardReader::open(path_).has_value());
}

TEST_F(ShardFormatTest, PayloadBitFlipCaughtByReadVerified) {
  write_shard();
  auto bytes = read_file();
  auto pristine = ShardReader::open(path_);
  ASSERT_TRUE(pristine.has_value());
  const auto* found = pristine->find(1);
  ASSERT_NE(found, nullptr);
  const ShardEntry victim = *found;  // copy: found dies with the reader
  bytes[victim.offset + victim.length / 2] ^= 0x01;
  pristine.reset();  // release the mapping before rewriting the file
  write_file(bytes);

  auto reader = ShardReader::open(path_);
  ASSERT_TRUE(reader.has_value());  // index is intact, open succeeds
  EXPECT_FALSE(reader->read_verified(*reader->find(1)).has_value());
  // Unverified access still sees the (corrupt) bytes — crc is the only gate.
  EXPECT_EQ(reader->payload(*reader->find(1)).size(), victim.length);
  // The other entries remain readable.
  EXPECT_TRUE(reader->read_verified(*reader->find(0)).has_value());
  EXPECT_TRUE(reader->read_verified(*reader->find(2)).has_value());
}

TEST_F(ShardFormatTest, EntryPointingOutsidePayloadRegionRejected) {
  write_shard();
  auto bytes = read_file();
  // Entry 0's length field sits at index start + 16; inflate it so
  // offset + length crosses the index, and re-seal the index crc so only the
  // bounds check can reject it.
  const std::size_t index_offset = bytes.size() - 3 * kIndexEntryBytes;
  bytes[index_offset + 16] = 0xFF;
  bytes[index_offset + 17] = 0xFF;
  const std::uint32_t new_crc =
      crc32(std::span<const std::uint8_t>(bytes.data() + index_offset, 3 * kIndexEntryBytes));
  bytes[28] = static_cast<std::uint8_t>(new_crc);
  bytes[29] = static_cast<std::uint8_t>(new_crc >> 8);
  bytes[30] = static_cast<std::uint8_t>(new_crc >> 16);
  bytes[31] = static_cast<std::uint8_t>(new_crc >> 24);
  write_file(bytes);
  EXPECT_FALSE(ShardReader::open(path_).has_value());
}

TEST_F(ShardFormatTest, EmptyShardRoundTrips) {
  {
    ShardWriter writer(path_);
    EXPECT_TRUE(writer.finish());
  }
  auto reader = ShardReader::open(path_);
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->size(), 0u);
  EXPECT_EQ(reader->find(0), nullptr);
}

}  // namespace
}  // namespace sophon::shard
