#include "core/policy.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace sophon::core {
namespace {

struct Fixture {
  dataset::Catalog catalog = dataset::Catalog::generate(dataset::openimages_profile(3000), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;

  PlanContext context(Seconds batch_time = Seconds::millis(85.0)) const {
    PlanContext ctx;
    ctx.catalog = &catalog;
    ctx.pipeline = &pipe;
    ctx.cost_model = &cm;
    ctx.cluster.bandwidth = Bandwidth::mbps(100.0);
    ctx.gpu_batch_time = batch_time;
    ctx.seed = 42;
    return ctx;
  }
};

TEST(PolicyNames, MatchPaper) {
  EXPECT_EQ(policy_kind_name(PolicyKind::kNoOff), "No-Off");
  EXPECT_EQ(policy_kind_name(PolicyKind::kAllOff), "All-Off");
  EXPECT_EQ(policy_kind_name(PolicyKind::kFastFlow), "FastFlow");
  EXPECT_EQ(policy_kind_name(PolicyKind::kResizeOff), "Resize-Off");
  EXPECT_EQ(policy_kind_name(PolicyKind::kSophon), "SOPHON");
}

TEST(PlanContext, GpuEpochTime) {
  Fixture f;
  const auto ctx = f.context(Seconds::millis(100.0));
  // 3000 samples / 256 per batch = 12 batches.
  EXPECT_NEAR(ctx.gpu_epoch_time().value(), 1.2, 1e-9);
}

TEST(NoOff, NeverOffloads) {
  Fixture f;
  const auto d = make_policy(PolicyKind::kNoOff)->plan(f.context());
  EXPECT_FALSE(d.offloading_active);
  EXPECT_EQ(d.plan.offloaded_count(), 0u);
}

TEST(AllOff, OffloadsWholePipelineForEverySample) {
  Fixture f;
  const auto d = make_policy(PolicyKind::kAllOff)->plan(f.context());
  EXPECT_TRUE(d.offloading_active);
  EXPECT_EQ(d.plan.offloaded_count(), f.catalog.size());
  for (std::size_t i = 0; i < d.plan.size(); ++i) EXPECT_EQ(d.plan.prefix(i), 5);
}

TEST(ResizeOff, OffloadsDecodeAndCrop) {
  Fixture f;
  const auto d = make_policy(PolicyKind::kResizeOff)->plan(f.context());
  EXPECT_TRUE(d.offloading_active);
  for (std::size_t i = 0; i < d.plan.size(); ++i) EXPECT_EQ(d.plan.prefix(i), 2);
}

TEST(FastFlow, DeclinesWhenAllOffWouldBeSlower) {
  // The evaluated setups of the paper: float-tensor payloads inflate
  // traffic, so FastFlow's all-or-nothing profile says "don't".
  Fixture f;
  const auto d = make_policy(PolicyKind::kFastFlow)->plan(f.context());
  EXPECT_FALSE(d.offloading_active);
  EXPECT_EQ(d.plan.offloaded_count(), 0u);
  EXPECT_NE(d.rationale.find("not offloading"), std::string::npos);
}

TEST(FastFlow, AcceptsWhenOffloadingEverythingHelps) {
  // Contrived regime: compute node has a single core (CPU-bound locally)
  // while the storage node has plenty — offloading all ops wins even with
  // bigger payloads because the link is fast.
  Fixture f;
  auto ctx = f.context(Seconds::millis(20.0));
  ctx.cluster.bandwidth = Bandwidth::gbps(50.0);
  ctx.cluster.compute_cores = 1;
  ctx.cluster.storage_cores = 48;
  const auto d = make_policy(PolicyKind::kFastFlow)->plan(ctx);
  EXPECT_TRUE(d.offloading_active);
  EXPECT_EQ(d.plan.offloaded_count(), f.catalog.size());
}

TEST(Sophon, OffloadsSelectivelyWhenIoBound) {
  Fixture f;
  const auto d = make_policy(PolicyKind::kSophon)->plan(f.context());
  EXPECT_TRUE(d.offloading_active);
  EXPECT_GT(d.plan.offloaded_count(), 0u);
  EXPECT_LT(d.plan.offloaded_count(), f.catalog.size());  // selective!
  EXPECT_NE(d.rationale.find("I/O-bound"), std::string::npos);
}

TEST(Sophon, DeclinesWhenGpuBound) {
  Fixture f;
  auto ctx = f.context(Seconds(2.0));  // very slow model
  ctx.cluster.bandwidth = Bandwidth::gbps(10.0);
  const auto d = make_policy(PolicyKind::kSophon)->plan(ctx);
  EXPECT_FALSE(d.offloading_active);
  EXPECT_NE(d.rationale.find("GPU"), std::string::npos);
}

TEST(Sophon, DeclinesWhenCpuBound) {
  Fixture f;
  auto ctx = f.context(Seconds::millis(10.0));
  ctx.cluster.bandwidth = Bandwidth::gbps(10.0);
  ctx.cluster.compute_cores = 1;
  const auto d = make_policy(PolicyKind::kSophon)->plan(ctx);
  EXPECT_FALSE(d.offloading_active);
  EXPECT_NE(d.rationale.find("CPU"), std::string::npos);
}

TEST(Sophon, FallsBackWithoutStorageCores) {
  Fixture f;
  auto ctx = f.context();
  ctx.cluster.storage_cores = 0;
  const auto d = make_policy(PolicyKind::kSophon)->plan(ctx);
  EXPECT_FALSE(d.offloading_active);
  EXPECT_EQ(d.plan.offloaded_count(), 0u);
}

TEST(OffloadCapablePolicies, FallBackWithoutStorageCores) {
  Fixture f;
  auto ctx = f.context();
  ctx.cluster.storage_cores = 0;
  for (const auto kind : {PolicyKind::kAllOff, PolicyKind::kResizeOff, PolicyKind::kFastFlow}) {
    const auto d = make_policy(kind)->plan(ctx);
    EXPECT_FALSE(d.offloading_active) << policy_kind_name(kind);
    EXPECT_EQ(d.plan.offloaded_count(), 0u) << policy_kind_name(kind);
  }
}

TEST(MakeAllPolicies, FiveInPresentationOrder) {
  const auto policies = make_all_policies();
  ASSERT_EQ(policies.size(), 5u);
  EXPECT_EQ(policies[0]->kind(), PolicyKind::kNoOff);
  EXPECT_EQ(policies[1]->kind(), PolicyKind::kAllOff);
  EXPECT_EQ(policies[2]->kind(), PolicyKind::kFastFlow);
  EXPECT_EQ(policies[3]->kind(), PolicyKind::kResizeOff);
  EXPECT_EQ(policies[4]->kind(), PolicyKind::kSophon);
}

TEST(Policies, RejectIncompleteContext) {
  const PlanContext empty;
  EXPECT_THROW((void)make_policy(PolicyKind::kNoOff)->plan(empty), ContractViolation);
}

}  // namespace
}  // namespace sophon::core
