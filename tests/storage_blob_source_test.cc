#include "storage/blob_source.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "dataset/synth.h"
#include "net/wire.h"
#include "storage/dataset_store.h"
#include "storage/server.h"

namespace sophon::storage {
namespace {

class BlobSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("sophon_blob_source_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);

    profile_ = dataset::openimages_profile(8);
    profile_.min_pixels = 5e4;
    profile_.max_pixels = 1.5e5;
    catalog_ = dataset::Catalog::generate(profile_, 42);
    disk_ = std::make_unique<DiskStore>(root_);
    disk_->ingest_catalog(catalog_, 42, profile_.quality);
  }

  void TearDown() override { std::filesystem::remove_all(root_); }

  std::filesystem::path root_;
  dataset::DatasetProfile profile_;
  dataset::Catalog catalog_;
  std::unique_ptr<DiskStore> disk_;
};

TEST_F(BlobSourceTest, CachingDiskSourceReadsThroughAndPins) {
  CachingDiskSource source(*disk_);
  EXPECT_EQ(source.cached_count(), 0u);
  const auto* blob = source.get(3);
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(*blob, *disk_->get(3));
  EXPECT_EQ(source.cached_count(), 1u);
  // Pinned: identical pointer on re-read.
  EXPECT_EQ(source.get(3), blob);
  EXPECT_EQ(source.cached_count(), 1u);
}

TEST_F(BlobSourceTest, UnknownIdReturnsNull) {
  CachingDiskSource source(*disk_);
  EXPECT_EQ(source.get(12345), nullptr);
}

TEST_F(BlobSourceTest, ServerServesFromDiskTier) {
  // The same StorageServer runs unchanged on the file-backed tier: raw
  // fetches return the on-disk blob, offloaded fetches preprocess it.
  CachingDiskSource source(*disk_);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  StorageServer server(source, pipe, cm, {.seed = 42});

  net::FetchRequest raw;
  raw.sample_id = 1;
  const auto raw_resp = server.fetch(raw);
  const auto raw_payload = net::deserialize_sample(raw_resp.payload);
  ASSERT_TRUE(raw_payload.has_value());
  EXPECT_EQ(std::get<pipeline::EncodedBlob>(*raw_payload).bytes, *disk_->get(1));

  net::FetchRequest off;
  off.sample_id = 1;
  off.directive.prefix_len = 2;
  const auto off_resp = server.fetch(off);
  const auto off_payload = net::deserialize_sample(off_resp.payload);
  ASSERT_TRUE(off_payload.has_value());
  EXPECT_EQ(std::get<image::Image>(*off_payload).width(), 224);
}

TEST_F(BlobSourceTest, MemoryAndDiskTiersServeIdenticalContent) {
  // DatasetStore (memory, lazily materialised) and CachingDiskSource (disk,
  // pre-ingested with the same seed/quality) must hand the server identical
  // bytes — the tier is an implementation detail.
  DatasetStore memory(catalog_, 42, profile_.quality);
  CachingDiskSource disk_source(*disk_);
  for (std::size_t i = 0; i < catalog_.size(); ++i) {
    const auto* a = memory.get(i);
    const auto* b = disk_source.get(i);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(*a, *b) << "sample " << i;
  }
}

}  // namespace
}  // namespace sophon::storage
