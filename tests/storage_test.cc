#include "storage/dataset_store.h"
#include "storage/server.h"

#include <gtest/gtest.h>

#include "dataset/synth.h"
#include "net/wire.h"
#include "util/check.h"

namespace sophon::storage {
namespace {

struct Fixture {
  dataset::DatasetProfile profile = [] {
    auto p = dataset::openimages_profile(20);
    // Keep the materialised images small so tests stay fast.
    p.min_pixels = 5e4;
    p.max_pixels = 1.5e5;
    return p;
  }();
  dataset::Catalog catalog = dataset::Catalog::generate(profile, 42);
  pipeline::Pipeline pipeline = pipeline::Pipeline::standard();
  pipeline::CostModel cost_model;
  DatasetStore store{catalog, 42, 85};
  StorageServer server{store, pipeline, cost_model, {.seed = 42}};
};

TEST(DatasetStore, LazyMaterialisation) {
  Fixture f;
  EXPECT_EQ(f.store.materialized_count(), 0u);
  const auto* blob = f.store.get(3);
  ASSERT_NE(blob, nullptr);
  EXPECT_FALSE(blob->empty());
  EXPECT_EQ(f.store.materialized_count(), 1u);
  EXPECT_EQ(f.store.resident_bytes().count(), static_cast<std::int64_t>(blob->size()));
  // Second access returns the cached blob (same address).
  EXPECT_EQ(f.store.get(3), blob);
  EXPECT_EQ(f.store.materialized_count(), 1u);
}

TEST(DatasetStore, UnknownIdReturnsNull) {
  Fixture f;
  EXPECT_EQ(f.store.get(999), nullptr);
}

TEST(DatasetStore, ExplicitPut) {
  Fixture f;
  dataset::SampleMeta meta;
  meta.id = 999;
  meta.raw = pipeline::SampleShape::encoded(Bytes(1), 64, 64, 3);
  meta.texture = 0.2;
  auto blob = dataset::materialize_encoded(meta, 1, 80);
  const auto size = blob.size();
  f.store.put(999, std::move(blob));
  ASSERT_NE(f.store.get(999), nullptr);
  EXPECT_EQ(f.store.resident_bytes().count(), static_cast<std::int64_t>(size));
  // Replacement keeps accounting right.
  f.store.put(999, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_EQ(f.store.resident_bytes().count(), 10);
}

TEST(StorageServer, RawFetchReturnsBlobVerbatim) {
  Fixture f;
  net::FetchRequest req;
  req.sample_id = 2;
  const auto resp = f.server.fetch(req);
  EXPECT_EQ(resp.sample_id, 2u);
  EXPECT_EQ(resp.stage, 0);
  const auto payload = net::deserialize_sample(resp.payload);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(std::get<pipeline::EncodedBlob>(*payload).bytes, *f.store.get(2));
  EXPECT_DOUBLE_EQ(f.server.modeled_cpu_time().value(), 0.0);
  EXPECT_EQ(f.server.offloaded_requests(), 0u);
}

TEST(StorageServer, OffloadedFetchReturnsCroppedImage) {
  Fixture f;
  net::FetchRequest req;
  req.sample_id = 1;
  req.epoch = 0;
  req.directive.prefix_len = 2;
  const auto resp = f.server.fetch(req);
  EXPECT_EQ(resp.stage, 2);
  const auto payload = net::deserialize_sample(resp.payload);
  ASSERT_TRUE(payload.has_value());
  const auto& img = std::get<image::Image>(*payload);
  EXPECT_EQ(img.width(), 224);
  EXPECT_EQ(img.height(), 224);
  EXPECT_GT(f.server.modeled_cpu_time().value(), 0.0);
  EXPECT_EQ(f.server.offloaded_requests(), 1u);
}

TEST(StorageServer, OffloadEquivalence) {
  // The core correctness property of near-storage offloading: for any cut
  // point, finishing the suffix locally yields the exact tensor a fully
  // local run would produce.
  Fixture f;
  const std::uint64_t sample_id = 4;
  const std::uint64_t epoch = 2;
  const auto stream = augmentation_seed(42, epoch, sample_id);

  // Fully local reference.
  net::FetchRequest raw_req;
  raw_req.sample_id = sample_id;
  raw_req.epoch = epoch;
  const auto raw_resp = f.server.fetch(raw_req);
  const auto raw_payload = net::deserialize_sample(raw_resp.payload);
  ASSERT_TRUE(raw_payload.has_value());
  const auto reference = f.pipeline.run_seeded(*raw_payload, 0, 5, stream);

  for (std::uint8_t cut = 1; cut <= 5; ++cut) {
    net::FetchRequest req;
    req.sample_id = sample_id;
    req.epoch = epoch;
    req.directive.prefix_len = cut;
    const auto resp = f.server.fetch(req);
    const auto payload = net::deserialize_sample(resp.payload);
    ASSERT_TRUE(payload.has_value());
    const auto finished = f.pipeline.run_seeded(*payload, cut, 5, stream);
    EXPECT_EQ(std::get<image::Tensor>(finished), std::get<image::Tensor>(reference))
        << "cut at " << static_cast<int>(cut);
  }
}

TEST(StorageServer, EpochsGetDifferentAugmentations) {
  Fixture f;
  net::FetchRequest req;
  req.sample_id = 0;
  req.directive.prefix_len = 2;
  req.epoch = 0;
  const auto a = f.server.fetch(req);
  req.epoch = 1;
  const auto b = f.server.fetch(req);
  EXPECT_NE(a.payload, b.payload);  // different random crops
  req.epoch = 0;
  const auto c = f.server.fetch(req);
  EXPECT_EQ(a.payload, c.payload);  // same epoch → same crop
}

TEST(StorageServer, RejectsUnknownSampleAndBadDirective) {
  Fixture f;
  net::FetchRequest req;
  req.sample_id = 12345;
  EXPECT_THROW((void)f.server.fetch(req), ContractViolation);
  req.sample_id = 0;
  req.directive.prefix_len = 6;
  EXPECT_THROW((void)f.server.fetch(req), ContractViolation);
}

TEST(StorageServer, ReportsTelemetryWhenConfigured) {
  Fixture f;
  MetricsRegistry metrics;
  StorageServer server(f.store, f.pipeline, f.cost_model, {.seed = 42, .metrics = &metrics});
  net::FetchRequest req;
  req.sample_id = 0;
  req.directive.prefix_len = 2;
  (void)server.fetch(req);
  req.sample_id = 1;
  req.directive.prefix_len = 0;
  (void)server.fetch(req);
  EXPECT_EQ(metrics.counter("sophon_server_fetch").value(), 2u);
  EXPECT_EQ(metrics.counter("sophon_server_offload").value(), 1u);
  const auto prefix_cpu = metrics.duration("sophon_server_prefix_cpu").snapshot();
  EXPECT_EQ(prefix_cpu.count(), 1u);
  EXPECT_NEAR(prefix_cpu.sum(), server.modeled_cpu_time().value(), 1e-12);
  EXPECT_NE(metrics.expose().find("sophon_server_fetch_total 2"), std::string::npos);
}

TEST(StorageServer, CountersAndReset) {
  Fixture f;
  net::FetchRequest req;
  req.sample_id = 0;
  req.directive.prefix_len = 2;
  (void)f.server.fetch(req);
  req.directive.prefix_len = 0;
  (void)f.server.fetch(req);
  EXPECT_EQ(f.server.requests_served(), 2u);
  EXPECT_EQ(f.server.offloaded_requests(), 1u);
  f.server.reset_counters();
  EXPECT_EQ(f.server.requests_served(), 0u);
  EXPECT_DOUBLE_EQ(f.server.modeled_cpu_time().value(), 0.0);
}

}  // namespace
}  // namespace sophon::storage
