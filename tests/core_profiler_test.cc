#include "core/profiler.h"

#include <gtest/gtest.h>

#include "dataset/sampler.h"
#include "net/wire.h"
#include "util/check.h"

namespace sophon::core {
namespace {

struct Fixture {
  dataset::Catalog catalog = dataset::Catalog::generate(dataset::openimages_profile(5000), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  sim::ClusterConfig cluster;
};

TEST(Stage1, ClassifiesIoBoundUnderConstrainedLink) {
  Fixture f;
  f.cluster.bandwidth = Bandwidth::mbps(500.0);
  // AlexNet-class GPU: fast batches.
  const auto profile = profile_stage1(f.catalog, f.pipe, f.cm, f.cluster, Seconds::millis(85.0));
  EXPECT_TRUE(profile.io_bound());
  EXPECT_GT(profile.gpu_samples_per_sec, profile.io_samples_per_sec);
  EXPECT_GT(profile.cpu_samples_per_sec, profile.io_samples_per_sec);
}

TEST(Stage1, ClassifiesGpuBoundUnderFastLink) {
  Fixture f;
  f.cluster.bandwidth = Bandwidth::gbps(100.0);
  // ResNet50-class GPU: slow batches.
  const auto profile = profile_stage1(f.catalog, f.pipe, f.cm, f.cluster, Seconds(0.75));
  EXPECT_EQ(profile.bottleneck(), Bottleneck::kGpu);
}

TEST(Stage1, ClassifiesCpuBoundWithFewCores) {
  Fixture f;
  f.cluster.bandwidth = Bandwidth::gbps(100.0);
  f.cluster.compute_cores = 1;
  const auto profile = profile_stage1(f.catalog, f.pipe, f.cm, f.cluster, Seconds::millis(20.0));
  EXPECT_EQ(profile.bottleneck(), Bottleneck::kCpu);
}

TEST(Stage1, IoThroughputMatchesHandComputation) {
  Fixture f;
  Stage1Options opts;
  opts.num_batches = 2;
  f.cluster.batch_size = 16;
  const auto profile =
      profile_stage1(f.catalog, f.pipe, f.cm, f.cluster, Seconds::millis(50.0), opts);
  // 32 probe samples; recompute by hand over the same shuffled order.
  const dataset::EpochOrder order(f.catalog.size(), opts.seed, 0);
  Bytes bytes;
  for (std::size_t pos = 0; pos < 32; ++pos)
    bytes += net::wire_size(f.catalog.sample(order.at(pos)).raw);
  const double expected = 32.0 / (bytes.as_double() / f.cluster.bandwidth.bytes_per_sec());
  EXPECT_NEAR(profile.io_samples_per_sec, expected, 1e-9);
}

TEST(Stage1, ProbeIsCappedAtDatasetSize) {
  Fixture f;
  Stage1Options opts;
  opts.num_batches = 1000000;  // would exceed the dataset
  EXPECT_NO_THROW(
      (void)profile_stage1(f.catalog, f.pipe, f.cm, f.cluster, Seconds::millis(50.0), opts));
}

TEST(Stage2, OneProfilePerSampleInCatalogOrder) {
  Fixture f;
  const auto profiles = profile_stage2(f.catalog, f.pipe, f.cm);
  ASSERT_EQ(profiles.size(), f.catalog.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_EQ(profiles[i].sample_index, i);
    ASSERT_EQ(profiles[i].stage_sizes.size(), 6u);
    ASSERT_EQ(profiles[i].op_costs.size(), 5u);
  }
}

TEST(Stage2, StageSizesMatchPipelineShapes) {
  Fixture f;
  const auto profiles = profile_stage2(f.catalog, f.pipe, f.cm);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto& meta = f.catalog.sample(i);
    for (std::size_t s = 0; s <= 5; ++s) {
      EXPECT_EQ(profiles[i].stage_sizes[s], net::wire_size(f.pipe.shape_at(meta.raw, s)));
    }
  }
}

TEST(Stage2, MinStageAndReductionConsistent) {
  Fixture f;
  const auto profiles = profile_stage2(f.catalog, f.pipe, f.cm);
  for (const auto& p : profiles) {
    // min_stage is the argmin of stage_sizes (earliest).
    for (std::size_t s = 0; s < p.stage_sizes.size(); ++s) {
      EXPECT_LE(p.stage_sizes[p.min_stage], p.stage_sizes[s]);
    }
    EXPECT_EQ(p.reduction, p.stage_sizes[0] - p.stage_sizes[p.min_stage]);
    if (p.min_stage == 0) {
      EXPECT_EQ(p.reduction.count(), 0);
      EXPECT_DOUBLE_EQ(p.efficiency(), 0.0);
    } else {
      EXPECT_GT(p.efficiency(), 0.0);
    }
    // Prefix time is the sum of the first min_stage op costs.
    Seconds prefix;
    for (std::size_t s = 0; s < p.min_stage; ++s) prefix += p.op_costs[s];
    EXPECT_DOUBLE_EQ(p.prefix_time.value(), prefix.value());
  }
}

TEST(Stage2, BeneficialFractionMatchesCatalog) {
  // Stage-2's notion of "benefits" must agree with the catalog-level
  // threshold check used by the Fig 1b analysis.
  Fixture f;
  const auto profiles = profile_stage2(f.catalog, f.pipe, f.cm);
  std::size_t benefits = 0;
  for (const auto& p : profiles)
    if (p.benefits()) ++benefits;
  const double frac = static_cast<double>(benefits) / static_cast<double>(profiles.size());
  pipeline::SampleShape crop;
  crop.repr = pipeline::Repr::kImage;
  crop.width = 224;
  crop.height = 224;
  crop.channels = 3;
  EXPECT_NEAR(frac, f.catalog.fraction_larger_than(net::wire_size(crop)), 1e-9);
}

TEST(Stage2, MinStageIsCropForLargeSamples) {
  Fixture f;
  const auto profiles = profile_stage2(f.catalog, f.pipe, f.cm);
  for (const auto& p : profiles) {
    EXPECT_TRUE(p.min_stage == 0 || p.min_stage == 2) << p.min_stage;
  }
}

}  // namespace
}  // namespace sophon::core
