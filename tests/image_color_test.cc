#include "image/color.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace sophon::image {
namespace {

TEST(Color, GrayAxisMapsToNeutralChroma) {
  for (const int v : {0, 64, 128, 200, 255}) {
    const auto ycc = rgb_to_ycbcr(static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v),
                                  static_cast<std::uint8_t>(v));
    EXPECT_NEAR(ycc.y, v, 1);
    EXPECT_NEAR(ycc.cb, 128, 1);
    EXPECT_NEAR(ycc.cr, 128, 1);
  }
}

TEST(Color, PrimariesHaveExpectedLuma) {
  EXPECT_NEAR(rgb_to_ycbcr(255, 0, 0).y, 76, 2);   // 0.299 * 255
  EXPECT_NEAR(rgb_to_ycbcr(0, 255, 0).y, 150, 2);  // 0.587 * 255
  EXPECT_NEAR(rgb_to_ycbcr(0, 0, 255).y, 29, 2);   // 0.114 * 255
}

TEST(Color, RoundTripErrorBounded) {
  Rng rng(31);
  double worst = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const auto r = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto g = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto ycc = rgb_to_ycbcr(r, g, b);
    const auto rgb = ycbcr_to_rgb(ycc.y, ycc.cb, ycc.cr);
    worst = std::max({worst, std::abs(static_cast<double>(rgb.r) - r),
                      std::abs(static_cast<double>(rgb.g) - g),
                      std::abs(static_cast<double>(rgb.b) - b)});
  }
  EXPECT_LE(worst, 3.0);  // 8-bit fixed-point round trip
}

TEST(Color, SplitProducesSubsampledPlanes) {
  Image img(9, 7, 3);  // odd dims exercise the ceil edges
  const auto planes = split_ycbcr_420(img);
  EXPECT_EQ(planes.y.width(), 9);
  EXPECT_EQ(planes.y.height(), 7);
  EXPECT_EQ(planes.cb.width(), 5);
  EXPECT_EQ(planes.cb.height(), 4);
  EXPECT_EQ(planes.cr.width(), 5);
  EXPECT_EQ(planes.cr.height(), 4);
}

TEST(Color, SplitMergeRoundTripOnSmoothContent) {
  Image img(32, 24, 3);
  for (int y = 0; y < 24; ++y)
    for (int x = 0; x < 32; ++x) {
      img.set(x, y, 0, static_cast<std::uint8_t>(40 + x * 2));
      img.set(x, y, 1, static_cast<std::uint8_t>(60 + y * 3));
      img.set(x, y, 2, static_cast<std::uint8_t>(100));
    }
  const auto planes = split_ycbcr_420(img);
  const auto back = merge_ycbcr_420(planes.y, planes.cb, planes.cr, 32, 24);
  double err = 0.0;
  for (std::size_t i = 0; i < img.data().size(); ++i)
    err += std::abs(static_cast<int>(img.data()[i]) - static_cast<int>(back.data()[i]));
  EXPECT_LT(err / static_cast<double>(img.data().size()), 4.0);
}

TEST(Color, MergeRejectsMismatchedPlanes) {
  Plane y(8, 8);
  Plane cb(4, 4);
  Plane cr(3, 4);  // wrong width
  EXPECT_THROW((void)merge_ycbcr_420(y, cb, cr, 8, 8), ContractViolation);
}

TEST(Color, SplitRejectsGrayscale) {
  EXPECT_THROW((void)split_ycbcr_420(Image(4, 4, 1)), ContractViolation);
}

}  // namespace
}  // namespace sophon::image
