// The §6 selective-compression extension on the REAL byte path: the server
// re-encodes offloaded image payloads, the client transparently decodes —
// less traffic, bounded pixel error, never a size increase.
#include <gtest/gtest.h>

#include <cmath>

#include "loader/loader.h"
#include "net/wire.h"
#include "storage/dataset_store.h"
#include "storage/server.h"
#include "util/check.h"

namespace sophon {
namespace {

struct Fixture {
  dataset::DatasetProfile profile = [] {
    auto p = dataset::openimages_profile(12);
    p.min_pixels = 1.5e5;
    p.max_pixels = 6e5;
    return p;
  }();
  dataset::Catalog catalog = dataset::Catalog::generate(profile, 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  storage::DatasetStore store{catalog, 42, profile.quality};
  storage::StorageServer server{store, pipe, cm, {.seed = 42}};
};

TEST(CompressionPath, CompressedResponseIsSmaller) {
  Fixture f;
  net::FetchRequest plain;
  plain.sample_id = 0;
  plain.directive.prefix_len = 2;
  const auto plain_resp = f.server.fetch(plain);
  EXPECT_FALSE(plain_resp.payload_compressed);

  auto compressed = plain;
  compressed.directive.compress_quality = 80;
  const auto comp_resp = f.server.fetch(compressed);
  EXPECT_TRUE(comp_resp.payload_compressed);
  EXPECT_LT(comp_resp.wire_bytes(), plain_resp.wire_bytes());
}

TEST(CompressionPath, ClientDecodesToBoundedError) {
  Fixture f;
  net::FetchRequest plain;
  plain.sample_id = 1;
  plain.epoch = 3;
  plain.directive.prefix_len = 2;
  const auto plain_resp = f.server.fetch(plain);
  const auto plain_img =
      std::get<image::Image>(*net::unpack_response(plain_resp));

  auto compressed = plain;
  compressed.directive.compress_quality = 85;
  const auto comp_resp = f.server.fetch(compressed);
  const auto unpacked = net::unpack_response(comp_resp);
  ASSERT_TRUE(unpacked.has_value());
  const auto& comp_img = std::get<image::Image>(*unpacked);

  ASSERT_EQ(comp_img.width(), plain_img.width());
  ASSERT_EQ(comp_img.height(), plain_img.height());
  double err = 0.0;
  for (std::size_t i = 0; i < plain_img.data().size(); ++i) {
    err += std::abs(static_cast<int>(plain_img.data()[i]) -
                    static_cast<int>(comp_img.data()[i]));
  }
  EXPECT_LT(err / static_cast<double>(plain_img.data().size()), 10.0);
}

TEST(CompressionPath, RawPayloadsAreLeftAlone) {
  // Compression only applies to image payloads; a raw (already compressed)
  // fetch must pass through untouched even with the flag set.
  Fixture f;
  net::FetchRequest req;
  req.sample_id = 2;
  req.directive.prefix_len = 0;
  req.directive.compress_quality = 80;
  const auto resp = f.server.fetch(req);
  EXPECT_FALSE(resp.payload_compressed);
  const auto payload = net::unpack_response(resp);
  ASSERT_TRUE(payload.has_value());
  EXPECT_TRUE(std::holds_alternative<pipeline::EncodedBlob>(*payload));
}

TEST(CompressionPath, TensorPayloadsAreLeftAlone) {
  Fixture f;
  net::FetchRequest req;
  req.sample_id = 2;
  req.directive.prefix_len = 5;  // fully preprocessed → tensor
  req.directive.compress_quality = 80;
  const auto resp = f.server.fetch(req);
  EXPECT_FALSE(resp.payload_compressed);
}

TEST(CompressionPath, RejectsInvalidQuality) {
  Fixture f;
  net::FetchRequest req;
  req.sample_id = 0;
  req.directive.prefix_len = 2;
  req.directive.compress_quality = 101;
  EXPECT_THROW((void)f.server.fetch(req), ContractViolation);
}

TEST(CompressionPath, LoaderEndToEndWithCompression) {
  Fixture f;
  core::OffloadPlan plan(f.catalog.size());
  for (std::size_t i = 0; i < plan.size(); ++i) plan.set(i, 2);

  loader::DataLoader plain(f.server, f.pipe, plan, f.catalog.size(),
                           {.num_workers = 2, .queue_capacity = 8, .seed = 42, .epoch = 0});
  plain.start();
  std::size_t n_plain = 0;
  while (plain.next()) ++n_plain;

  loader::DataLoader compressed(f.server, f.pipe, plan, f.catalog.size(),
                                {.num_workers = 2,
                                 .queue_capacity = 8,
                                 .seed = 42,
                                 .epoch = 0,
                                 .compress_quality = 80});
  compressed.start();
  std::size_t n_comp = 0;
  while (const auto item = compressed.next()) {
    EXPECT_EQ(item->tensor.width(), 224);
    ++n_comp;
  }
  EXPECT_EQ(n_plain, f.catalog.size());
  EXPECT_EQ(n_comp, f.catalog.size());
  EXPECT_LT(compressed.traffic(), plain.traffic());
}

TEST(CompressionPath, UnpackRejectsLyingFlag) {
  // A response claiming compression but carrying a non-blob payload is
  // malformed and must be rejected, not misinterpreted.
  net::FetchResponse bogus;
  bogus.payload_compressed = true;
  bogus.payload = net::serialize_sample(pipeline::SampleData(image::Image(4, 4, 3)));
  EXPECT_FALSE(net::unpack_response(bogus).has_value());
  // And a compressed flag over garbage bytes fails cleanly too.
  bogus.payload = net::serialize_sample(
      pipeline::SampleData(pipeline::EncodedBlob{{1, 2, 3, 4}}));
  EXPECT_FALSE(net::unpack_response(bogus).has_value());
}

}  // namespace
}  // namespace sophon
