#include "codec/huffman.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace sophon::codec {
namespace {

TEST(HuffmanLengths, EmptyAlphabet) {
  const auto lengths = huffman_code_lengths({0, 0, 0});
  EXPECT_EQ(lengths, (std::vector<std::uint8_t>{0, 0, 0}));
}

TEST(HuffmanLengths, SingleSymbolGetsLengthOne) {
  const auto lengths = huffman_code_lengths({0, 5, 0});
  EXPECT_EQ(lengths[1], 1);
  EXPECT_EQ(lengths[0], 0);
}

TEST(HuffmanLengths, TwoEqualSymbols) {
  const auto lengths = huffman_code_lengths({10, 10});
  EXPECT_EQ(lengths[0], 1);
  EXPECT_EQ(lengths[1], 1);
}

TEST(HuffmanLengths, SkewedFrequenciesGetShorterCodes) {
  const auto lengths = huffman_code_lengths({1000, 10, 10, 10});
  EXPECT_LT(lengths[0], lengths[1]);
}

TEST(HuffmanLengths, KraftInequalityHolds) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> freqs(300);
    for (auto& f : freqs) f = rng.bernoulli(0.3) ? 0 : static_cast<std::uint64_t>(
                                                           rng.uniform_int(1, 1000000));
    const int max_len = 16;
    const auto lengths = huffman_code_lengths(freqs, max_len);
    double kraft = 0.0;
    for (std::size_t s = 0; s < lengths.size(); ++s) {
      if (lengths[s] > 0) {
        EXPECT_LE(lengths[s], max_len);
        kraft += std::pow(2.0, -static_cast<double>(lengths[s]));
      }
      if (freqs[s] == 0) {
        EXPECT_EQ(lengths[s], 0);
      }
      if (freqs[s] > 0) {
        EXPECT_GT(lengths[s], 0);
      }
    }
    EXPECT_LE(kraft, 1.0 + 1e-12);
  }
}

TEST(HuffmanLengths, LengthLimitRespectedUnderExtremeSkew) {
  // Fibonacci-like frequencies force deep trees without a limit.
  std::vector<std::uint64_t> freqs;
  std::uint64_t a = 1;
  std::uint64_t b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs.push_back(a);
    const auto next = a + b;
    a = b;
    b = next;
  }
  const auto lengths = huffman_code_lengths(freqs, 12);
  for (const auto len : lengths) EXPECT_LE(len, 12);
}

TEST(HuffmanRoundTrip, EncodesAndDecodesRandomStreams) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t alphabet = 2 + static_cast<std::size_t>(rng.uniform_int(0, 510));
    std::vector<std::uint64_t> freqs(alphabet, 0);
    std::vector<std::uint32_t> message;
    for (int i = 0; i < 2000; ++i) {
      // Zipf-ish skew.
      const auto sym = static_cast<std::uint32_t>(
          static_cast<std::size_t>(rng.uniform() * rng.uniform() * static_cast<double>(alphabet)) %
          alphabet);
      message.push_back(sym);
      ++freqs[sym];
    }
    const auto lengths = huffman_code_lengths(freqs);
    const HuffmanEncoder encoder(lengths);
    BitWriter w;
    for (const auto sym : message) encoder.encode(w, sym);
    const auto bytes = w.finish();

    const HuffmanDecoder decoder(lengths);
    BitReader r(bytes);
    for (const auto expected : message) {
      EXPECT_EQ(decoder.decode(r), expected);
    }
    EXPECT_FALSE(r.overrun());
  }
}

TEST(HuffmanRoundTrip, CompressionBeatsFixedWidthOnSkewedData) {
  std::vector<std::uint64_t> freqs(256, 1);
  freqs[0] = 100000;
  const auto lengths = huffman_code_lengths(freqs);
  const HuffmanEncoder encoder(lengths);
  BitWriter w;
  for (int i = 0; i < 10000; ++i) encoder.encode(w, 0);
  EXPECT_LT(w.bit_count(), 10000u * 8u / 2u);
}

TEST(HuffmanEncoder, RejectsSymbolWithoutCode) {
  const auto lengths = huffman_code_lengths({5, 0, 5});
  const HuffmanEncoder encoder(lengths);
  BitWriter w;
  EXPECT_THROW(encoder.encode(w, 1), ContractViolation);
  EXPECT_THROW(encoder.encode(w, 99), ContractViolation);
}

TEST(HuffmanDecoder, CorruptStreamReturnsInvalid) {
  // Codes: symbol 0 -> "0", symbol 1 -> "10" — "11..." is invalid only if
  // nothing maps there; craft lengths {1,2} leaving code space.
  const std::vector<std::uint8_t> lengths{1, 2};
  const HuffmanDecoder decoder(lengths);
  const std::vector<std::uint8_t> junk{0xff};  // starts with 11
  BitReader r(junk);
  EXPECT_EQ(decoder.decode(r), HuffmanDecoder::invalid_symbol());
}

TEST(CodeLengthSerialisation, RoundTripsSparseTables) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> lengths(512, 0);
    for (int i = 0; i < 40; ++i) {
      lengths[static_cast<std::size_t>(rng.uniform_int(0, 511))] =
          static_cast<std::uint8_t>(rng.uniform_int(1, 20));
    }
    BitWriter w;
    write_code_lengths(w, lengths);
    const auto bytes = w.finish();
    BitReader r(bytes);
    EXPECT_EQ(read_code_lengths(r, 512), lengths);
  }
}

TEST(CodeLengthSerialisation, AllZeroTableIsCompact) {
  std::vector<std::uint8_t> lengths(512, 0);
  BitWriter w;
  write_code_lengths(w, lengths);
  const auto bytes = w.finish();
  EXPECT_LE(bytes.size(), 4u);  // two 9-bit run tokens
  BitReader r(bytes);
  EXPECT_EQ(read_code_lengths(r, 512), lengths);
}

}  // namespace
}  // namespace sophon::codec
