#include "shard/planner.h"

#include <gtest/gtest.h>

#include <vector>

#include "shard/format.h"

namespace sophon::shard {
namespace {

/// A profile from explicit per-op costs (seconds) and per-stage wire sizes
/// (bytes, length = ops + 1), with the derived fields the profiler would
/// compute.
core::SampleProfile make_profile(std::uint32_t index, const std::vector<double>& costs,
                                 const std::vector<std::int64_t>& sizes) {
  core::SampleProfile p;
  p.sample_index = index;
  for (const double c : costs) p.op_costs.emplace_back(c);
  for (const auto s : sizes) p.stage_sizes.emplace_back(s);
  std::size_t best = 0;
  for (std::size_t s = 1; s < sizes.size(); ++s) {
    if (sizes[s] < sizes[best]) best = s;
  }
  p.min_stage = static_cast<std::uint32_t>(best);
  p.reduction = Bytes(sizes[0] - sizes[best]);
  for (std::size_t s = 0; s < best; ++s) p.prefix_time += p.op_costs[s];
  return p;
}

TEST(MaterializationCandidates, PicksBestEfficiencyStage) {
  // Stage 1 saves 1 s for 500 B; stage 2 saves 2 s for 100 B — far better
  // seconds-per-byte, so the deeper stage wins.
  const auto p = make_profile(0, {1.0, 1.0}, {1000, 500, 100});
  core::OffloadPlan plan(1);
  plan.set(0, 2);
  const auto candidates = materialization_candidates({p}, plan, /*deterministic_limit=*/2);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].stage, 2);
  EXPECT_DOUBLE_EQ(candidates[0].cpu_saved.value(), 2.0);
  EXPECT_EQ(candidates[0].bytes.count(),
            100 + static_cast<std::int64_t>(kIndexEntryBytes));
}

TEST(MaterializationCandidates, ClampedToDeterministicLimit) {
  const auto p = make_profile(0, {1.0, 1.0}, {1000, 500, 100});
  core::OffloadPlan plan(1);
  plan.set(0, 2);
  const auto candidates = materialization_candidates({p}, plan, /*deterministic_limit=*/1);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].stage, 1);
  EXPECT_DOUBLE_EQ(candidates[0].cpu_saved.value(), 1.0);
}

TEST(MaterializationCandidates, AnticipatesBeneficialUnoffloadedSamples) {
  // In no offload plan, but benefits(): with anticipation on we budget for
  // its min-size stage; with anticipation off it is invisible.
  const auto p = make_profile(0, {2.0}, {1000, 400});
  const core::OffloadPlan no_offload(1);
  auto candidates = materialization_candidates({p}, no_offload, 1);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].stage, 1);

  MaterializationOptions options;
  options.anticipate_offload = false;
  candidates = materialization_candidates({p}, no_offload, 1, options);
  EXPECT_TRUE(candidates.empty());
}

TEST(MaterializationCandidates, SkipsSamplesWithNothingToSave) {
  // Grows at every stage: benefits() is false and the plan ignores it.
  const auto p = make_profile(0, {1.0}, {100, 900});
  const core::OffloadPlan no_offload(1);
  EXPECT_TRUE(materialization_candidates({p}, no_offload, 1).empty());
}

TEST(PlanMaterialization, ZeroBudgetSelectsNothing) {
  const auto p = make_profile(0, {1.0}, {1000, 100});
  core::OffloadPlan plan(1);
  plan.set(0, 1);
  const auto mat = plan_materialization({p}, plan, 1, Bytes(0));
  EXPECT_EQ(mat.materialized, 0u);
  EXPECT_EQ(mat.total_bytes.count(), 0);
}

TEST(PlanMaterialization, GreedyStopsAtFirstOverflow) {
  // Efficiency order: p0 (10 s / ~1 KiB) > p1 (10 s / ~100 KiB) > p2
  // (0.1 s / ~1 KiB). A budget that fits p0 and p2 but not p1 must stop at
  // p1 — the stop-at-first-overflow rule keeps every selection a prefix of
  // one order, which is what makes savings monotone in the budget.
  const std::vector<core::SampleProfile> profiles = {
      make_profile(0, {10.0}, {10000, 1000}),
      make_profile(1, {10.0}, {200000, 100000}),
      make_profile(2, {0.1}, {10000, 1000}),
  };
  core::OffloadPlan plan(3);
  for (std::uint32_t i = 0; i < 3; ++i) plan.set(i, 1);
  const auto mat = plan_materialization(profiles, plan, 1, Bytes(4096));
  EXPECT_EQ(mat.materialized, 1u);
  EXPECT_EQ(mat.stage_of(0), 1);
  EXPECT_EQ(mat.stage_of(1), 0);
  EXPECT_EQ(mat.stage_of(2), 0);
}

TEST(PlanMaterialization, LargerBudgetSelectsSuperset) {
  std::vector<core::SampleProfile> profiles;
  for (std::uint32_t i = 0; i < 8; ++i) {
    profiles.push_back(
        make_profile(i, {0.5 + 0.25 * i}, {20000 + 1000 * i, 2000 + 500 * i}));
  }
  core::OffloadPlan plan(8);
  for (std::uint32_t i = 0; i < 8; ++i) plan.set(i, 1);

  std::vector<std::uint8_t> previous(8, 0);
  Seconds previous_saved;
  for (const std::int64_t budget : {0, 3000, 9000, 15000, 30000, 1 << 20}) {
    const auto mat = plan_materialization(profiles, plan, 1, Bytes(budget));
    EXPECT_LE(mat.total_bytes.count(), budget);
    EXPECT_GE(mat.cpu_saved.value(), previous_saved.value());
    for (std::size_t i = 0; i < 8; ++i) {
      if (previous[i] != 0) {
        EXPECT_EQ(mat.stage_of(i), previous[i]) << "budget " << budget << " dropped sample " << i;
      }
    }
    previous = mat.stage;
    previous_saved = mat.cpu_saved;
  }
}

TEST(PlanMaterialization, AccountsHeaderOnce) {
  const auto p = make_profile(0, {1.0}, {1000, 100});
  core::OffloadPlan plan(1);
  plan.set(0, 1);
  const auto entry_bytes = 100 + static_cast<std::int64_t>(kIndexEntryBytes);
  // Budget covering the entry but not header + entry: nothing fits.
  const auto tight = plan_materialization({p}, plan, 1, Bytes(entry_bytes));
  EXPECT_EQ(tight.materialized, 0u);
  const auto exact = plan_materialization(
      {p}, plan, 1, Bytes(entry_bytes + static_cast<std::int64_t>(kHeaderBytes)));
  EXPECT_EQ(exact.materialized, 1u);
  EXPECT_EQ(exact.total_bytes.count(), entry_bytes + static_cast<std::int64_t>(kHeaderBytes));
}

TEST(AdjustedProfiles, MaterializedSamplesRankFirstOnRedecide) {
  // Two equally-shaped samples; materialise only #0. Its prefix collapses to
  // the near-zero shard-read cost, so its offloading efficiency (bytes saved
  // per storage-CPU-second) must now dominate #1's — the re-rank picks
  // materialised samples first instead of dropping them to the back.
  const std::vector<core::SampleProfile> profiles = {
      make_profile(0, {2.0}, {100000, 10000}),
      make_profile(1, {2.0}, {100000, 10000}),
  };
  core::OffloadPlan plan(2);
  plan.set(0, 1);
  plan.set(1, 1);
  const auto mat = plan_materialization(profiles, plan, 1, Bytes(10240 + 72));
  ASSERT_EQ(mat.materialized, 1u);
  ASSERT_EQ(mat.stage_of(0), 1);

  const auto adjusted = adjusted_profiles(profiles, mat);
  EXPECT_GT(adjusted[0].prefix_time.value(), 0.0);  // not free: the shard read
  EXPECT_LT(adjusted[0].prefix_time.value(), 1e-3);
  EXPECT_GT(adjusted[0].efficiency(), adjusted[1].efficiency());
  // The untouched sample is bit-for-bit the original.
  EXPECT_EQ(adjusted[1].prefix_time.value(), profiles[1].prefix_time.value());
  EXPECT_EQ(adjusted[1].op_costs[0].value(), profiles[1].op_costs[0].value());
  // Wire sizes never change — materialisation moves CPU, not bytes.
  EXPECT_EQ(adjusted[0].stage_sizes[1].count(), profiles[0].stage_sizes[1].count());
}

}  // namespace
}  // namespace sophon::shard
