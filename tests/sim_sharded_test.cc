#include <gtest/gtest.h>

#include "net/wire.h"
#include "sim/trainer.h"
#include "util/check.h"

namespace sophon::sim {
namespace {

struct Fixture {
  dataset::Catalog catalog = dataset::Catalog::generate(dataset::openimages_profile(2000), 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  ClusterConfig cluster = [] {
    ClusterConfig c;
    c.bandwidth = Bandwidth::mbps(200.0);
    c.batch_size = 64;
    return c;
  }();
  Seconds batch_time = Seconds::millis(25.0);

  std::function<SampleFlow(std::size_t)> flows(std::uint8_t prefix) {
    return [this, prefix](std::size_t idx) {
      const auto& meta = catalog.sample(idx);
      SampleFlow f;
      f.storage_cpu = prefix > 0 ? pipe.prefix_cost(meta.raw, prefix, cm) : Seconds(0.0);
      f.wire = net::wire_size(pipe.shape_at(meta.raw, prefix));
      f.compute_cpu = pipe.suffix_cost(meta.raw, prefix, cm);
      return f;
    };
  }
};

TEST(ShardedTrainer, SingleNodeMatchesFlatSimulator) {
  Fixture f;
  const auto shards = storage::ShardMap::hashed(f.catalog.size(), 1, 1);
  const auto sharded = simulate_epoch_sharded(f.catalog.size(), f.flows(2), shards, f.cluster,
                                              f.batch_time, 42, 0);
  const auto flat = simulate_epoch_flows(f.catalog.size(), f.flows(2), f.cluster, f.batch_time,
                                         42, 0);
  EXPECT_DOUBLE_EQ(sharded.totals.epoch_time.value(), flat.epoch_time.value());
  EXPECT_EQ(sharded.totals.traffic, flat.traffic);
  EXPECT_DOUBLE_EQ(sharded.totals.storage_cpu_busy.value(), flat.storage_cpu_busy.value());
}

TEST(ShardedTrainer, PerNodeBusyTimesSumToTotal) {
  Fixture f;
  const auto shards = storage::ShardMap::hashed(f.catalog.size(), 4, 9);
  const auto stats = simulate_epoch_sharded(f.catalog.size(), f.flows(2), shards, f.cluster,
                                            f.batch_time, 42, 0);
  ASSERT_EQ(stats.node_cpu_busy.size(), 4u);
  Seconds sum;
  for (const auto busy : stats.node_cpu_busy) sum += busy;
  EXPECT_NEAR(sum.value(), stats.totals.storage_cpu_busy.value(), 1e-9);
  for (const auto busy : stats.node_cpu_busy) EXPECT_GT(busy.value(), 0.0);
}

TEST(ShardedTrainer, MoreNodesNeverSlower) {
  // Same per-node core budget, more nodes → strictly more CPU capacity.
  Fixture f;
  f.cluster.storage_cores = 1;
  const auto one = simulate_epoch_sharded(f.catalog.size(), f.flows(2),
                                          storage::ShardMap::hashed(f.catalog.size(), 1, 1),
                                          f.cluster, f.batch_time, 42, 0);
  const auto four = simulate_epoch_sharded(f.catalog.size(), f.flows(2),
                                           storage::ShardMap::hashed(f.catalog.size(), 4, 1),
                                           f.cluster, f.batch_time, 42, 0);
  EXPECT_LE(four.totals.epoch_time.value(), one.totals.epoch_time.value() + 1e-9);
}

TEST(ShardedTrainer, SkewedMapConcentratesLoad) {
  Fixture f;
  // All samples on node 0 of 4: nodes 1-3 stay idle.
  std::vector<std::uint16_t> assignment(f.catalog.size(), 0);
  const auto shards = storage::ShardMap::explicit_map(std::move(assignment), 4);
  const auto stats = simulate_epoch_sharded(f.catalog.size(), f.flows(2), shards, f.cluster,
                                            f.batch_time, 42, 0);
  EXPECT_GT(stats.node_cpu_busy[0].value(), 0.0);
  EXPECT_DOUBLE_EQ(stats.node_cpu_busy[1].value(), 0.0);
  EXPECT_DOUBLE_EQ(stats.node_cpu_busy[2].value(), 0.0);
  EXPECT_DOUBLE_EQ(stats.node_cpu_busy[3].value(), 0.0);
}

TEST(ShardedTrainer, SkewHurtsUnderTightCores) {
  Fixture f;
  f.cluster.storage_cores = 1;
  const auto balanced = simulate_epoch_sharded(f.catalog.size(), f.flows(2),
                                               storage::ShardMap::hashed(f.catalog.size(), 4, 1),
                                               f.cluster, f.batch_time, 42, 0);
  std::vector<std::uint16_t> hot(f.catalog.size(), 0);
  const auto skewed = simulate_epoch_sharded(f.catalog.size(), f.flows(2),
                                             storage::ShardMap::explicit_map(std::move(hot), 4),
                                             f.cluster, f.batch_time, 42, 0);
  EXPECT_GT(skewed.totals.epoch_time.value(), balanced.totals.epoch_time.value());
}

TEST(ShardedTrainer, RejectsMismatchedShardMap) {
  Fixture f;
  const auto shards = storage::ShardMap::hashed(10, 2, 1);
  EXPECT_THROW((void)simulate_epoch_sharded(f.catalog.size(), f.flows(0), shards, f.cluster,
                                            f.batch_time, 42, 0),
               ContractViolation);
}

}  // namespace
}  // namespace sophon::sim
