#include "pipeline/sample.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace sophon::pipeline {
namespace {

TEST(Sample, ByteSizePerRepresentation) {
  const SampleData blob = EncodedBlob{std::vector<std::uint8_t>(1000)};
  EXPECT_EQ(sample_byte_size(blob).count(), 1000);
  EXPECT_EQ(sample_repr(blob), Repr::kEncoded);

  const SampleData img = image::Image(224, 224, 3);
  EXPECT_EQ(sample_byte_size(img).count(), 224 * 224 * 3);
  EXPECT_EQ(sample_repr(img), Repr::kImage);

  const SampleData tensor = image::Tensor(3, 224, 224);
  EXPECT_EQ(sample_byte_size(tensor).count(), 224 * 224 * 3 * 4);
  EXPECT_EQ(sample_repr(tensor), Repr::kTensor);
}

TEST(SampleShape, EncodedFactory) {
  const auto s = SampleShape::encoded(Bytes(5000), 640, 480);
  EXPECT_EQ(s.repr, Repr::kEncoded);
  EXPECT_EQ(s.byte_size().count(), 5000);
  EXPECT_EQ(s.pixel_count(), 640 * 480);
  EXPECT_EQ(s.channels, 3);
}

TEST(SampleShape, DerivedSizes) {
  SampleShape s;
  s.repr = Repr::kImage;
  s.width = 100;
  s.height = 50;
  s.channels = 3;
  EXPECT_EQ(s.byte_size().count(), 100 * 50 * 3);
  s.repr = Repr::kTensor;
  EXPECT_EQ(s.byte_size().count(), 100 * 50 * 3 * 4);
}

TEST(SampleShape, FactoryRejectsBadArguments) {
  EXPECT_THROW((void)SampleShape::encoded(Bytes(0), 10, 10), ContractViolation);
  EXPECT_THROW((void)SampleShape::encoded(Bytes(10), 0, 10), ContractViolation);
  EXPECT_THROW((void)SampleShape::encoded(Bytes(10), 10, 10, 2), ContractViolation);
}

TEST(ShapeOf, MatchesMaterialisedData) {
  const SampleData img = image::Image(320, 240, 3);
  const auto s = shape_of(img);
  EXPECT_EQ(s.repr, Repr::kImage);
  EXPECT_EQ(s.width, 320);
  EXPECT_EQ(s.height, 240);
  EXPECT_EQ(s.bytes, sample_byte_size(img));

  const SampleData tensor = image::Tensor(3, 8, 8);
  const auto ts = shape_of(tensor);
  EXPECT_EQ(ts.repr, Repr::kTensor);
  EXPECT_EQ(ts.bytes.count(), 3 * 8 * 8 * 4);

  const SampleData blob = EncodedBlob{std::vector<std::uint8_t>(321)};
  const auto bs = shape_of(blob);
  EXPECT_EQ(bs.repr, Repr::kEncoded);
  EXPECT_EQ(bs.bytes.count(), 321);
}

}  // namespace
}  // namespace sophon::pipeline
