#include "prefetch/replay.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/trace.h"

namespace sophon::prefetch {
namespace {

// A link-bound shape: at 500 Mbps a 315 KB payload transfers in ~5 ms while
// a worker's synchronous round trip (1 ms request + transfer + 1 ms
// response + 16 ms local compute, over 4 workers) paces demand at ~5.8 ms
// per sample — the link sits idle whenever every worker is preprocessing,
// which is precisely the gap clairvoyant prefetching closes.
sim::SampleFlow uniform_flow(std::size_t /*i*/) {
  sim::SampleFlow f;
  f.wire = Bytes(315000);
  f.compute_cpu = Seconds::millis(16.0);
  return f;
}

sim::ClusterConfig test_cluster() {
  sim::ClusterConfig cluster;
  cluster.bandwidth = Bandwidth::mbps(500.0);
  cluster.link_latency = Seconds::millis(1.0);
  cluster.batch_size = 64;
  return cluster;
}

ReplayOptions with_depth(std::size_t depth) {
  ReplayOptions options;
  options.prefetch.depth = depth;
  options.workers = 4;
  return options;
}

constexpr std::size_t kSamples = 512;
constexpr std::uint64_t kSeed = 42;

TEST(PrefetchReplay, DepthFourBeatsDemandWhenLinkBound) {
  const auto demand =
      replay_epoch(kSamples, uniform_flow, test_cluster(), Seconds::millis(5.0), kSeed, 0,
                   with_depth(0));
  const auto prefetch =
      replay_epoch(kSamples, uniform_flow, test_cluster(), Seconds::millis(5.0), kSeed, 0,
                   with_depth(4));
  EXPECT_LT(prefetch.epoch.epoch_time.value(), demand.epoch.epoch_time.value());
  // Latency hiding must not move extra bytes.
  EXPECT_EQ(prefetch.epoch.traffic, demand.epoch.traffic);
  EXPECT_EQ(demand.prefetch.issued, 0u);
  EXPECT_EQ(demand.prefetch.demand_fetches, kSamples);
  EXPECT_EQ(prefetch.prefetch.issued, kSamples);
  EXPECT_EQ(prefetch.prefetch.hits, kSamples);
}

TEST(PrefetchReplay, DepthAtLeastWorkersBeatsDemandAndDeeperNeverHurts) {
  // Depth below the worker count can lose to demand (fewer concurrent
  // transfers than the workers would keep up themselves); the guarantee
  // starts at depth >= workers and deepening further must not regress.
  const auto demand =
      replay_epoch(kSamples, uniform_flow, test_cluster(), Seconds::millis(5.0), kSeed, 0,
                   with_depth(0));
  double previous = demand.epoch.epoch_time.value();
  for (const std::size_t depth : {4u, 16u, 64u}) {
    const auto result =
        replay_epoch(kSamples, uniform_flow, test_cluster(), Seconds::millis(5.0), kSeed, 0,
                     with_depth(depth));
    EXPECT_LT(result.epoch.epoch_time.value(), demand.epoch.epoch_time.value())
        << "depth " << depth;
    EXPECT_LE(result.epoch.epoch_time.value(), previous + 1e-9) << "depth " << depth;
    EXPECT_EQ(result.epoch.traffic, demand.epoch.traffic) << "depth " << depth;
    previous = result.epoch.epoch_time.value();
  }
}

TEST(PrefetchReplay, PrefetchPipelinesTransfersOnTheLink) {
  const auto demand =
      replay_epoch(kSamples, uniform_flow, test_cluster(), Seconds::millis(5.0), kSeed, 0,
                   with_depth(0));
  const auto prefetch =
      replay_epoch(kSamples, uniform_flow, test_cluster(), Seconds::millis(5.0), kSeed, 0,
                   with_depth(8));
  // The scheduler keeps several requests outstanding; a demand worker keeps
  // at most one per worker.
  EXPECT_GT(prefetch.prefetch.max_inflight, demand.prefetch.max_inflight);
  EXPECT_LE(prefetch.prefetch.max_inflight, 8u + 4u);
  EXPECT_LT(prefetch.prefetch.worker_stall.value(), demand.prefetch.worker_stall.value());
}

TEST(PrefetchReplay, BytesBudgetStillBeatsDemand) {
  ReplayOptions options = with_depth(16);
  options.prefetch.bytes_budget = Bytes(2 * 315000);  // ~2 payloads staged
  const auto demand =
      replay_epoch(kSamples, uniform_flow, test_cluster(), Seconds::millis(5.0), kSeed, 0,
                   with_depth(0));
  const auto budgeted =
      replay_epoch(kSamples, uniform_flow, test_cluster(), Seconds::millis(5.0), kSeed, 0,
                   options);
  EXPECT_LT(budgeted.epoch.epoch_time.value(), demand.epoch.epoch_time.value());
  EXPECT_EQ(budgeted.epoch.traffic, demand.epoch.traffic);
}

TEST(PrefetchReplay, TinyPayloadsGoThroughTheDemandPath) {
  const auto tiny_flow = [](std::size_t) {
    sim::SampleFlow f;
    f.wire = Bytes(2000);  // below the 4 KiB deprioritization default
    f.compute_cpu = Seconds::millis(2.0);
    return f;
  };
  const auto result = replay_epoch(kSamples, tiny_flow, test_cluster(), Seconds::millis(5.0),
                                   kSeed, 0, with_depth(8));
  EXPECT_EQ(result.prefetch.issued, 0u);
  EXPECT_EQ(result.prefetch.skipped_deprioritized, kSamples);
  EXPECT_EQ(result.prefetch.demand_fetches, kSamples);
}

TEST(PrefetchReplay, LocallyServedSamplesMoveNoBytes) {
  ReplayOptions options = with_depth(8);
  options.served_locally = [](std::uint64_t id) { return id % 2 == 0; };
  const auto result = replay_epoch(kSamples, uniform_flow, test_cluster(), Seconds::millis(5.0),
                                   kSeed, 0, options);
  EXPECT_EQ(result.prefetch.served_locally, kSamples / 2);
  EXPECT_EQ(result.prefetch.issued, kSamples / 2);
  EXPECT_EQ(result.epoch.traffic, Bytes(315000) * static_cast<std::int64_t>(kSamples / 2));
}

TEST(PrefetchReplay, TraceMarksPrefetchedSamples) {
  sim::TraceRecorder recorder;
  const auto result = replay_epoch(kSamples, uniform_flow, test_cluster(), Seconds::millis(5.0),
                                   kSeed, 0, with_depth(8), recorder.sink());
  ASSERT_EQ(recorder.size(), kSamples);
  std::set<std::size_t> positions;
  for (const auto& row : recorder.rows()) {
    positions.insert(row.position);
    EXPECT_TRUE(row.prefetched) << "position " << row.position;
    EXPECT_LE(row.issued.value(), row.link_done.value());
    EXPECT_LE(row.link_done.value(), row.ready.value());
  }
  EXPECT_EQ(positions.size(), kSamples);
  EXPECT_EQ(result.prefetch.hits, kSamples);
}

TEST(PrefetchReplay, DeterministicAcrossRuns) {
  const auto a = replay_epoch(kSamples, uniform_flow, test_cluster(), Seconds::millis(5.0),
                              kSeed, 3, with_depth(4));
  const auto b = replay_epoch(kSamples, uniform_flow, test_cluster(), Seconds::millis(5.0),
                              kSeed, 3, with_depth(4));
  EXPECT_EQ(a.epoch.epoch_time.value(), b.epoch.epoch_time.value());
  EXPECT_EQ(a.epoch.traffic, b.epoch.traffic);
  EXPECT_EQ(a.prefetch.hits, b.prefetch.hits);
  EXPECT_EQ(a.prefetch.late_hits, b.prefetch.late_hits);
}

}  // namespace
}  // namespace sophon::prefetch
