// Parameterized property sweeps (TEST_P): the library's key invariants
// checked across a grid of configurations rather than hand-picked points.
#include <gtest/gtest.h>

#include "codec/sjpg.h"
#include "core/decision.h"
#include "core/profiler.h"
#include "dataset/synth.h"
#include "net/wire.h"
#include "sim/trainer.h"

namespace sophon {
namespace {

// ---- Pipeline split invariance across (dims, cut, seed) -------------------

struct SplitCase {
  int width;
  int height;
  std::uint64_t stream_seed;
};

class PipelineSplitSweep : public ::testing::TestWithParam<SplitCase> {};

TEST_P(PipelineSplitSweep, SplitEqualsContiguousAtEveryCut) {
  const auto [w, h, stream] = GetParam();
  dataset::SampleMeta meta;
  meta.id = static_cast<std::uint64_t>(w * 1000 + h);
  meta.raw = pipeline::SampleShape::encoded(Bytes(1), w, h, 3);
  meta.texture = 0.4;
  const pipeline::SampleData raw =
      pipeline::EncodedBlob{dataset::materialize_encoded(meta, 3, 70)};
  const auto pipe = pipeline::Pipeline::standard();
  const auto whole = pipe.run_seeded(raw, 0, pipe.size(), stream);
  for (std::size_t cut = 0; cut <= pipe.size(); ++cut) {
    auto part = pipe.run_seeded(raw, 0, cut, stream);
    part = pipe.run_seeded(std::move(part), cut, pipe.size(), stream);
    ASSERT_EQ(std::get<image::Tensor>(part), std::get<image::Tensor>(whole))
        << w << "x" << h << " cut " << cut << " stream " << stream;
  }
}

INSTANTIATE_TEST_SUITE_P(DimsAndSeeds, PipelineSplitSweep,
                         ::testing::Values(SplitCase{160, 120, 1}, SplitCase{160, 120, 2},
                                           SplitCase{301, 211, 1}, SplitCase{97, 240, 9},
                                           SplitCase{512, 96, 5}, SplitCase{224, 224, 7}));

// ---- Codec round trip across (quality, dims) ------------------------------

struct CodecCase {
  int quality;
  int width;
  int height;
};

class CodecRoundTripSweep : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecRoundTripSweep, DecodesToSameGeometryWithBoundedError) {
  const auto [quality, w, h] = GetParam();
  dataset::SampleMeta meta;
  meta.id = 77;
  meta.raw = pipeline::SampleShape::encoded(Bytes(1), w, h, 3);
  meta.texture = 0.45;
  const auto img = dataset::generate_synthetic_image(meta, 21);
  const auto blob = codec::sjpg_encode(img, quality);
  const auto decoded = codec::sjpg_decode(blob);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->width(), w);
  EXPECT_EQ(decoded->height(), h);
  double err = 0.0;
  for (std::size_t i = 0; i < img.data().size(); ++i) {
    err += std::abs(static_cast<int>(img.data()[i]) - static_cast<int>(decoded->data()[i]));
  }
  // Worst tolerated mean error grows as quality falls.
  const double bound = quality >= 80 ? 6.0 : (quality >= 50 ? 12.0 : 20.0);
  EXPECT_LT(err / static_cast<double>(img.data().size()), bound);
}

INSTANTIATE_TEST_SUITE_P(QualityByDims, CodecRoundTripSweep,
                         ::testing::Values(CodecCase{95, 128, 96}, CodecCase{95, 129, 97},
                                           CodecCase{70, 128, 96}, CodecCase{70, 257, 63},
                                           CodecCase{35, 128, 96}, CodecCase{35, 64, 200}));

// ---- Decision-engine invariants across (bandwidth, cores) -----------------

struct DecisionCase {
  double mbps;
  int storage_cores;
};

class DecisionSweep : public ::testing::TestWithParam<DecisionCase> {
 protected:
  static const dataset::Catalog& catalog() {
    static const auto c = dataset::Catalog::generate(dataset::openimages_profile(3000), 42);
    return c;
  }
  static const std::vector<core::SampleProfile>& profiles() {
    static const auto p =
        core::profile_stage2(catalog(), pipeline::Pipeline::standard(), pipeline::CostModel{});
    return p;
  }
};

TEST_P(DecisionSweep, InvariantsHoldEverywhere) {
  const auto [mbps, cores] = GetParam();
  sim::ClusterConfig cluster;
  cluster.bandwidth = Bandwidth::mbps(mbps);
  cluster.storage_cores = cores;
  const Seconds t_g(2.0);
  const auto result = core::decide_offloading(profiles(), cluster, t_g);

  // (1) Offloading never increases the predicted epoch time.
  EXPECT_LE(result.final_cost.predicted_epoch_time().value(),
            result.baseline.predicted_epoch_time().value() + 1e-9);
  // (2) Network time never increases; storage CPU time never decreases.
  EXPECT_LE(result.final_cost.t_net.value(), result.baseline.t_net.value() + 1e-9);
  EXPECT_GE(result.final_cost.t_cs.value(), 0.0);
  // (3) Only beneficial samples are offloaded, at their min-size stage.
  for (std::size_t i = 0; i < profiles().size(); ++i) {
    if (result.plan.prefix(i) > 0) {
      EXPECT_TRUE(profiles()[i].benefits());
      EXPECT_EQ(result.plan.prefix(i), profiles()[i].min_stage);
    }
  }
  // (4) The analytic evaluator agrees with the engine's internal ledger.
  const auto evaluated = core::evaluate_plan(profiles(), result.plan, cluster, t_g);
  EXPECT_NEAR(evaluated.t_net.value(), result.final_cost.t_net.value(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DecisionSweep,
    ::testing::Values(DecisionCase{50.0, 0}, DecisionCase{50.0, 1}, DecisionCase{50.0, 48},
                      DecisionCase{200.0, 1}, DecisionCase{200.0, 4}, DecisionCase{200.0, 48},
                      DecisionCase{2000.0, 1}, DecisionCase{2000.0, 48},
                      DecisionCase{20000.0, 48}));

// ---- Wire round trip across representations and dims ----------------------

struct WireCase {
  int width;
  int height;
  int channels;
};

class WireSweep : public ::testing::TestWithParam<WireCase> {};

TEST_P(WireSweep, ImageAndTensorSurviveTheWire) {
  const auto [w, h, c] = GetParam();
  image::Image img(w, h, c);
  Rng rng(static_cast<std::uint64_t>(w * 31 + h * 7 + c));
  for (auto& px : img.data()) px = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const auto img_back = net::deserialize_sample(net::serialize_sample(img));
  ASSERT_TRUE(img_back.has_value());
  EXPECT_EQ(std::get<image::Image>(*img_back), img);

  image::Tensor tensor(c, h, w);
  for (auto& v : tensor.data()) v = static_cast<float>(rng.normal());
  const auto t_back = net::deserialize_sample(net::serialize_sample(tensor));
  ASSERT_TRUE(t_back.has_value());
  EXPECT_EQ(std::get<image::Tensor>(*t_back), tensor);
}

INSTANTIATE_TEST_SUITE_P(Dims, WireSweep,
                         ::testing::Values(WireCase{1, 1, 1}, WireCase{1, 1, 3},
                                           WireCase{224, 224, 3}, WireCase{13, 7, 3},
                                           WireCase{640, 1, 1}, WireCase{1, 480, 3}));

}  // namespace
}  // namespace sophon
