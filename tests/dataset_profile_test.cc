#include "dataset/profile.h"

#include <gtest/gtest.h>

#include "dataset/catalog.h"
#include "net/wire.h"
#include "util/check.h"

namespace sophon::dataset {
namespace {

// The post-crop wire size that separates "benefits from offloading" from
// "already small" — 224*224*3 payload plus framing.
Bytes crop_wire() {
  pipeline::SampleShape s;
  s.repr = pipeline::Repr::kImage;
  s.width = 224;
  s.height = 224;
  s.channels = 3;
  return net::wire_size(s);
}

TEST(Profile, DrawIsDeterministic) {
  const auto profile = openimages_profile(100);
  const auto a = draw_sample(profile, 42, 7);
  const auto b = draw_sample(profile, 42, 7);
  EXPECT_EQ(a.raw, b.raw);
  EXPECT_EQ(a.texture, b.texture);
  const auto c = draw_sample(profile, 43, 7);
  EXPECT_NE(a.raw, c.raw);
}

TEST(Profile, SamplesRespectClamps) {
  const auto profile = imagenet_profile(1);
  for (std::uint64_t id = 0; id < 2000; ++id) {
    const auto meta = draw_sample(profile, 1, id);
    EXPECT_GE(meta.raw.width, 64);
    EXPECT_GE(meta.raw.height, 64);
    EXPECT_LE(meta.raw.width, 0xffff);
    EXPECT_LE(meta.raw.height, 0xffff);
    EXPECT_GE(meta.raw.bytes.count(), 256);
    EXPECT_GE(meta.texture, 0.0);
    EXPECT_LE(meta.texture, 1.0);
    const double pixels = static_cast<double>(meta.raw.pixel_count());
    const double bpp = meta.raw.bytes.as_double() * 8.0 / pixels;
    EXPECT_GE(bpp, profile.min_bpp * 0.99);
    EXPECT_LE(bpp, profile.max_bpp * 1.01);
  }
}

TEST(Profile, OpenImagesMatchesPaperAggregates) {
  // Paper: 12 GB subset, >40k images, 76% shrink after Decode+RRC,
  // All-Off/No-Off traffic ratio 1.9x (=> mean encoded ~317 KB).
  const auto catalog = Catalog::generate(openimages_profile(40000), 42);
  EXPECT_NEAR(catalog.fraction_larger_than(crop_wire()), 0.76, 0.02);
  EXPECT_NEAR(catalog.mean_encoded().as_double(), 317e3, 25e3);
  EXPECT_NEAR(catalog.total_encoded().as_double(), 12.7e9, 1.0e9);
}

TEST(Profile, ImagenetMatchesPaperAggregates) {
  // Paper: smaller files; only ~26% shrink; All-Off inflates ~5.1x
  // (=> mean encoded ~120 KB).
  const auto catalog = Catalog::generate(imagenet_profile(40000), 42);
  EXPECT_NEAR(catalog.fraction_larger_than(crop_wire()), 0.26, 0.03);
  EXPECT_NEAR(catalog.mean_encoded().as_double(), 120e3, 12e3);
}

TEST(Profile, OpenImagesIsHeavierThanImagenet) {
  const auto oi = Catalog::generate(openimages_profile(10000), 7);
  const auto in = Catalog::generate(imagenet_profile(10000), 7);
  EXPECT_GT(oi.mean_encoded().as_double(), 2.0 * in.mean_encoded().as_double());
}

TEST(Profile, MixtureProducesBimodalImagenet) {
  // The small component must dominate: median well below the mean.
  const auto catalog = Catalog::generate(imagenet_profile(20000), 11);
  std::vector<double> sizes;
  sizes.reserve(catalog.size());
  for (const auto& s : catalog.samples()) sizes.push_back(s.raw.bytes.as_double());
  std::nth_element(sizes.begin(), sizes.begin() + sizes.size() / 2, sizes.end());
  const double median = sizes[sizes.size() / 2];
  EXPECT_LT(median, 0.8 * catalog.mean_encoded().as_double());
}

TEST(Profile, TextureCorrelatesWithBpp) {
  const auto profile = openimages_profile(1);
  double low_bpp_texture = 0.0;
  double high_bpp_texture = 0.0;
  int low_n = 0;
  int high_n = 0;
  for (std::uint64_t id = 0; id < 3000; ++id) {
    const auto meta = draw_sample(profile, 3, id);
    const double bpp =
        meta.raw.bytes.as_double() * 8.0 / static_cast<double>(meta.raw.pixel_count());
    if (bpp < 0.8) {
      low_bpp_texture += meta.texture;
      ++low_n;
    } else if (bpp > 1.5) {
      high_bpp_texture += meta.texture;
      ++high_n;
    }
  }
  ASSERT_GT(low_n, 10);
  ASSERT_GT(high_n, 10);
  EXPECT_LT(low_bpp_texture / low_n, high_bpp_texture / high_n);
}

}  // namespace
}  // namespace sophon::dataset
