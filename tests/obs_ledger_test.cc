// TrafficLedger unit tests: the cause partition stays exact under record /
// reclassify, epoch boundaries close byte-exactly, the bounded top-K sample
// view keeps the heaviest samples, the JSON export round-trips losslessly
// (the property `sophonctl traffic-diff` depends on), and the diff/render
// helpers say what operators need to read.
#include <gtest/gtest.h>

#include <string>

#include "obs/ledger.h"
#include "util/telemetry.h"

namespace sophon::obs {
namespace {

TEST(TrafficCause, NamesRoundTripThroughTheTaxonomy) {
  for (std::size_t c = 0; c < kTrafficCauseCount; ++c) {
    const auto cause = static_cast<TrafficCause>(c);
    const auto back = traffic_cause_from_name(traffic_cause_name(cause));
    ASSERT_TRUE(back.has_value()) << traffic_cause_name(cause);
    EXPECT_EQ(*back, cause);
  }
  EXPECT_FALSE(traffic_cause_from_name("not-a-cause").has_value());
  EXPECT_FALSE(traffic_cause_from_name("").has_value());
}

TEST(TrafficLedger, RecordAccumulatesExactTotals) {
  TrafficLedger ledger;
  ledger.record(1, 0, TrafficCause::kDemand, Bytes(100));
  ledger.record(1, 2, TrafficCause::kPrefetch, Bytes(50));
  ledger.record(2, 2, TrafficCause::kDemand, Bytes(25));
  ledger.record(3, 1, TrafficCause::kControl, Bytes(7));

  EXPECT_EQ(ledger.total().count(), 182);
  EXPECT_EQ(ledger.total(TrafficCause::kDemand).count(), 125);
  EXPECT_EQ(ledger.total(TrafficCause::kDemand, 2).count(), 25);
  EXPECT_EQ(ledger.total(TrafficCause::kPrefetch, 2).count(), 50);
  EXPECT_EQ(ledger.total(TrafficCause::kControl).count(), 7);
  EXPECT_EQ(ledger.records(), 4u);

  // Zero-byte records are dropped, not counted.
  ledger.record(9, 0, TrafficCause::kDemand, Bytes(0));
  EXPECT_EQ(ledger.records(), 4u);
}

TEST(TrafficLedger, StagesAboveTheTableClampIntoTheLastBucket) {
  TrafficLedger ledger;
  ledger.record(1, 200, TrafficCause::kDemand, Bytes(10));
  EXPECT_EQ(ledger.total(TrafficCause::kDemand, kLedgerMaxStages - 1).count(), 10);
  // Querying with an over-range stage clamps the same way.
  EXPECT_EQ(ledger.total(TrafficCause::kDemand, 255).count(), 10);
}

TEST(TrafficLedger, ReclassifyMovesBytesWithoutChangingTheTotal) {
  TrafficLedger ledger;
  ledger.record(5, 2, TrafficCause::kPrefetch, Bytes(100));
  ledger.reclassify(5, 2, TrafficCause::kPrefetch, TrafficCause::kPrefetchWasted, Bytes(60));

  EXPECT_EQ(ledger.total().count(), 100);
  EXPECT_EQ(ledger.total(TrafficCause::kPrefetch).count(), 40);
  EXPECT_EQ(ledger.total(TrafficCause::kPrefetchWasted).count(), 60);
  EXPECT_EQ(ledger.total(TrafficCause::kPrefetchWasted, 2).count(), 60);

  const auto exported = ledger.export_state();
  ASSERT_EQ(exported.top_samples.size(), 1u);
  EXPECT_EQ(exported.top_samples[0].bytes, 100);
  EXPECT_EQ(exported.top_samples[0]
                .cause_bytes[static_cast<std::size_t>(TrafficCause::kPrefetchWasted)],
            60);
}

TEST(TrafficLedger, EndEpochClosesTheBooksByteExactly) {
  TrafficLedger ledger;
  ledger.record(1, 0, TrafficCause::kDemand, Bytes(100));
  const auto first = ledger.end_epoch(0, Bytes(100), /*plan_generation=*/7);
  EXPECT_TRUE(first.exact());
  EXPECT_EQ(first.ledger_bytes, 100);
  EXPECT_EQ(first.link_bytes, 100);

  // Second epoch: 10 bytes crossed the link that nobody attributed.
  ledger.record(2, 0, TrafficCause::kDemand, Bytes(50));
  const auto second = ledger.end_epoch(1, Bytes(60), /*plan_generation=*/7);
  EXPECT_FALSE(second.exact());
  EXPECT_EQ(second.unattributed_bytes, 10);

  const auto exported = ledger.export_state();
  ASSERT_EQ(exported.epochs.size(), 2u);
  EXPECT_EQ(exported.epochs[0].unattributed_bytes, 0);
  EXPECT_EQ(exported.epochs[1].unattributed_bytes, 10);
  // Epoch rows carry per-epoch deltas, not cumulative totals.
  EXPECT_EQ(exported.epochs[1].cause_bytes[static_cast<std::size_t>(TrafficCause::kDemand)], 50);
  EXPECT_EQ(exported.unattributed_bytes, 10);

  // Cumulative reconciliation agrees with the per-epoch residue.
  const auto cumulative = ledger.reconcile(Bytes(160));
  EXPECT_EQ(cumulative.unattributed_bytes, 10);
}

TEST(TrafficLedger, PlanForecastRidesTheEpochRowOfItsGeneration) {
  TrafficLedger ledger;
  ledger.note_plan_forecast(3, /*baseline=*/Bytes(1000), /*predicted=*/Bytes(400));
  ledger.record(1, 2, TrafficCause::kDemand, Bytes(400));
  ledger.end_epoch(0, Bytes(400), /*plan_generation=*/3);
  ledger.record(2, 2, TrafficCause::kDemand, Bytes(400));
  ledger.end_epoch(1, Bytes(400), /*plan_generation=*/9);  // no forecast noted

  const auto exported = ledger.export_state();
  ASSERT_EQ(exported.epochs.size(), 2u);
  EXPECT_EQ(exported.epochs[0].baseline_bytes, 1000);
  EXPECT_EQ(exported.epochs[0].predicted_bytes, 400);
  EXPECT_EQ(exported.epochs[1].baseline_bytes, -1);
  EXPECT_EQ(exported.epochs[1].predicted_bytes, -1);
}

TEST(TrafficLedger, PublishesGaugesAndRecordCounterAtEpochBoundaries) {
  MetricsRegistry metrics;
  TrafficLedger ledger({.top_k = 8, .metrics = &metrics});
  // Pre-registered: scrapes before the first epoch see explicit zeros.
  EXPECT_EQ(metrics.gauge("sophon_ledger_demand_bytes").value(), 0.0);
  EXPECT_EQ(metrics.counter("sophon_ledger_records").value(), 0u);

  ledger.record(1, 0, TrafficCause::kDemand, Bytes(100));
  ledger.record(1, 2, TrafficCause::kPrefetch, Bytes(50));
  ledger.reclassify(1, 2, TrafficCause::kPrefetch, TrafficCause::kPrefetchWasted, Bytes(50));
  ledger.end_epoch(0, Bytes(150), 0);

  EXPECT_EQ(metrics.gauge("sophon_ledger_demand_bytes").value(), 100.0);
  EXPECT_EQ(metrics.gauge("sophon_ledger_prefetch_bytes").value(), 0.0);
  EXPECT_EQ(metrics.gauge("sophon_ledger_prefetch_wasted_bytes").value(), 50.0);
  EXPECT_EQ(metrics.gauge("sophon_ledger_attributed_bytes").value(), 150.0);
  EXPECT_EQ(metrics.gauge("sophon_ledger_unattributed_bytes").value(), 0.0);
  EXPECT_EQ(metrics.counter("sophon_ledger_records").value(), 2u);

  // The records counter publishes deltas: a second boundary with no new
  // records must not double-count.
  ledger.end_epoch(1, Bytes(0), 0);
  EXPECT_EQ(metrics.counter("sophon_ledger_records").value(), 2u);

  // Over-attribution surfaces as the same absolute-residue gauge.
  ledger.record(2, 0, TrafficCause::kDemand, Bytes(40));
  ledger.end_epoch(2, Bytes(10), 0);
  EXPECT_EQ(metrics.gauge("sophon_ledger_unattributed_bytes").value(), 30.0);
}

TEST(TrafficLedger, TopKViewIsBoundedAndKeepsTheHeaviestSamples) {
  TrafficLedger ledger({.top_k = 4});
  // Enough distinct samples to force the amortized prune (capacity is
  // max(64, 4*top_k) and pruning triggers at twice that).
  constexpr std::size_t kSamples = 400;
  std::int64_t expected_total = 0;
  for (std::size_t i = 0; i < kSamples; ++i) {
    ledger.record(i, 0, TrafficCause::kDemand, Bytes(static_cast<std::int64_t>(i + 1)));
    expected_total += static_cast<std::int64_t>(i + 1);
  }
  // Cause totals stay exact no matter what the sample view dropped.
  EXPECT_EQ(ledger.total().count(), expected_total);
  EXPECT_EQ(ledger.records(), kSamples);

  const auto exported = ledger.export_state();
  ASSERT_EQ(exported.top_samples.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(exported.top_samples[i].sample_id, kSamples - 1 - i);
    EXPECT_EQ(exported.top_samples[i].bytes, static_cast<std::int64_t>(kSamples - i));
  }
}

/// Touch every cause and a couple of epochs (the mutex member makes the
/// ledger unmovable, so callers hand one in).
void populate_ledger(TrafficLedger& ledger) {
  ledger.note_plan_forecast(1, Bytes(5000), Bytes(2000));
  ledger.record(1, 0, TrafficCause::kDemand, Bytes(1200));
  ledger.record(2, 2, TrafficCause::kPrefetch, Bytes(800));
  ledger.record(2, 2, TrafficCause::kShardHit, Bytes(300));
  ledger.record(3, 2, TrafficCause::kRetry, Bytes(150));
  ledger.record(4, 0, TrafficCause::kRawFallback, Bytes(90));
  ledger.reclassify(2, 2, TrafficCause::kPrefetch, TrafficCause::kPrefetchWasted, Bytes(100));
  ledger.end_epoch(0, Bytes(2540), 1);
  ledger.record(5, 3, TrafficCause::kShardCorruptRefetch, Bytes(60));
  ledger.end_epoch(1, Bytes(61), 1);  // 1 B residue, deliberately inexact
}

TEST(LedgerExport, JsonRoundTripIsLossless) {
  TrafficLedger ledger({.top_k = 8});
  populate_ledger(ledger);
  const LedgerExport exported = ledger.export_state();
  const Json doc = exported.to_json();

  const auto parsed = LedgerExport::from_json(doc);
  ASSERT_TRUE(parsed.has_value());
  // Re-serializing the parsed copy must reproduce the document bit-for-bit —
  // the invariant behind `traffic-diff A A` reporting zero.
  EXPECT_EQ(parsed->to_json(), doc);
  EXPECT_EQ(parsed->total(), exported.total());
  EXPECT_EQ(parsed->records, exported.records);
  EXPECT_EQ(parsed->unattributed_bytes, 1);
  ASSERT_EQ(parsed->epochs.size(), 2u);
  EXPECT_EQ(parsed->epochs[0].baseline_bytes, 5000);
  ASSERT_EQ(parsed->top_samples.size(), exported.top_samples.size());
  EXPECT_TRUE(diff_ledgers(*parsed, exported).identical());
}

TEST(LedgerExport, FromJsonRejectsForeignAndVersionSkewedDocs) {
  TrafficLedger ledger({.top_k = 8});
  populate_ledger(ledger);
  EXPECT_TRUE(LedgerExport::from_json(ledger.to_json()).has_value());

  Json wrong_kind = ledger.to_json();
  wrong_kind.set("kind", "sophon.trace");
  EXPECT_FALSE(LedgerExport::from_json(wrong_kind).has_value());

  Json wrong_version = ledger.to_json();
  wrong_version.set("schema_version", std::int64_t{2});
  EXPECT_FALSE(LedgerExport::from_json(wrong_version).has_value());

  EXPECT_FALSE(LedgerExport::from_json(Json::object()).has_value());
}

TEST(LedgerDiff, RanksCausesByAbsoluteByteDelta) {
  LedgerExport a;
  a.cause_bytes[static_cast<std::size_t>(TrafficCause::kDemand)] = 1000;
  LedgerExport b;
  b.cause_bytes[static_cast<std::size_t>(TrafficCause::kDemand)] = 400;
  b.cause_bytes[static_cast<std::size_t>(TrafficCause::kShardHit)] = 500;

  const LedgerDiff diff = diff_ledgers(a, b);
  ASSERT_EQ(diff.rows.size(), kTrafficCauseCount);
  EXPECT_EQ(diff.rows[0].cause, TrafficCause::kDemand);     // |-600| first
  EXPECT_EQ(diff.rows[0].delta(), -600);
  EXPECT_EQ(diff.rows[1].cause, TrafficCause::kShardHit);   // |+500| second
  EXPECT_EQ(diff.rows[1].delta(), 500);
  EXPECT_EQ(diff.total_delta(), -100);
  EXPECT_FALSE(diff.identical());

  EXPECT_TRUE(diff_ledgers(a, a).identical());
}

TEST(LedgerRender, ReportAndDiffMentionTheLoadBearingFacts) {
  TrafficLedger ledger({.top_k = 8});
  populate_ledger(ledger);
  const LedgerExport exported = ledger.export_state();
  const std::string report = render_traffic_report(exported);
  EXPECT_NE(report.find("traffic by cause"), std::string::npos);
  EXPECT_NE(report.find("traffic by pipeline stage"), std::string::npos);
  EXPECT_NE(report.find("plan savings per epoch"), std::string::npos);
  EXPECT_NE(report.find("heaviest samples"), std::string::npos);
  EXPECT_NE(report.find("prefetch-wasted"), std::string::npos);

  LedgerExport baseline;
  baseline.cause_bytes[static_cast<std::size_t>(TrafficCause::kDemand)] = exported.total();
  const std::string diff = render_traffic_diff(diff_ledgers(baseline, exported));
  EXPECT_NE(diff.find("shard-hit"), std::string::npos);
  EXPECT_EQ(diff.find("byte-identical"), std::string::npos);

  const std::string self_diff = render_traffic_diff(diff_ledgers(exported, exported));
  EXPECT_NE(self_diff.find("ledgers are byte-identical"), std::string::npos);
}

}  // namespace
}  // namespace sophon::obs
