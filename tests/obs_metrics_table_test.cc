// The metric pre-registration drift test: run the system end-to-end with
// every emitting subsystem lit up — prefetching loader over a packed shard,
// resilient fetches eating injected faults, the adaptive loop with telemetry
// hooks — and assert every `sophon_*` name the registry ends up holding has
// a row in obs::known_metrics() with the matching kind. An instrumentation
// point that invents a name fails here; a table row of the wrong kind fails
// the reverse test below.
#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>
#include <set>
#include <string>

#include "core/adapt/loop.h"
#include "loader/loader.h"
#include "net/fault.h"
#include "net/resilience.h"
#include "obs/critpath/monitor.h"
#include "obs/health.h"
#include "obs/ledger.h"
#include "obs/metrics_table.h"
#include "obs/timeseries.h"
#include "shard/format.h"
#include "shard/pack.h"
#include "storage/dataset_store.h"
#include "storage/server.h"

namespace sophon::obs {
namespace {

/// Fails the first offloaded fetch of every sample with a transient error so
/// the resilience layer's retry/backoff metrics fire.
class FirstAttemptFails final : public net::StorageService {
 public:
  explicit FirstAttemptFails(net::StorageService& inner) : inner_(inner) {}

  net::FetchResponse fetch(const net::FetchRequest& request) override {
    if (request.directive.prefix_len > 0) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (failed_once_.insert(request.sample_id).second) {
        throw net::FetchError(net::FetchError::Kind::kTransient, "induced first failure");
      }
    }
    return inner_.fetch(request);
  }

 private:
  net::StorageService& inner_;
  std::mutex mutex_;
  std::set<std::uint64_t> failed_once_;
};

/// Drive a prefetching loader epoch (shard-backed server, transient faults,
/// resilient fetches) plus an adaptive run with fault replay and telemetry
/// hooks, all into one registry.
void populate_full_run(MetricsRegistry& metrics) {
  auto profile = dataset::openimages_profile(24);
  profile.min_pixels = 6e4;
  profile.max_pixels = 2.5e5;
  const auto catalog = dataset::Catalog::generate(profile, 42);
  const auto pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  storage::DatasetStore store{catalog, 42, profile.quality};

  core::OffloadPlan plan(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    plan.set(i, static_cast<std::uint8_t>(i % 3 == 0 ? 2 : 0));
  }

  shard::MaterializationPlan mat;
  mat.stage.assign(catalog.size(), 0);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (plan.prefix(i) > 0) {
      mat.stage[i] = 1;
      ++mat.materialized;
    }
  }
  const auto shard_path = std::filesystem::temp_directory_path() /
                          ("sophon_drift_" + std::to_string(::getpid()) + ".spshrd");
  ASSERT_TRUE(
      shard::pack_catalog(catalog, 42, profile.quality, pipe, cm, mat, shard_path).has_value());
  const auto reader = shard::ShardReader::open(shard_path);
  ASSERT_TRUE(reader.has_value());

  // Traffic ledger on the real fetch path: its sophon_ledger_* gauges and
  // record counter must be governed by the table like everything else.
  TrafficLedger loader_ledger({.top_k = 8, .metrics = &metrics});

  {
    storage::StorageServer server{store, pipe, cm,
                                  {.seed = 42, .metrics = &metrics, .shard = &*reader}};
    FirstAttemptFails flaky(server);
    net::RetryPolicy policy;
    policy.sleep = false;
    net::ResilientStorageService resilient(flaky, policy, &metrics, &loader_ledger);

    loader::DataLoader::Options options;
    options.num_workers = 2;
    options.queue_capacity = 8;
    options.seed = 42;
    options.epoch = 5;
    options.metrics = &metrics;
    options.ledger = &loader_ledger;
    options.prefetch.depth = 8;
    loader::DataLoader loader(resilient, pipe, plan, catalog.size(), options);
    loader.start();
    std::size_t count = 0;
    while (loader.next()) ++count;
    ASSERT_EQ(count, catalog.size());
    loader_ledger.publish_metrics();
  }
  std::filesystem::remove(shard_path);

  // Adaptive run under a mid-run bandwidth drop with fault replay; telemetry
  // hooks feed the epoch gauges and health state into the same registry.
  const auto big = dataset::Catalog::generate(dataset::openimages_profile(300), 42);
  sim::ClusterConfig planned;
  planned.bandwidth = Bandwidth::mbps(8000.0);
  net::FaultProfile fault_profile;
  fault_profile.transient_fail_prob = 0.05;
  fault_profile.permanent_fail_prob = 0.01;
  fault_profile.corrupt_prob = 0.02;
  fault_profile.seed = 7;
  const net::FaultInjector faults(fault_profile);

  FlightRecorder recorder(metrics);
  HealthEvaluator health(default_health_rules());
  TrafficLedger sim_ledger({.top_k = 8, .metrics = &metrics});
  critpath::CritPathMonitor critpath_monitor(&metrics);
  core::adapt::RunOptions options;
  options.epochs = 6;
  options.faults = &faults;
  options.retry.sleep = false;
  options.bandwidth_at = [](std::size_t epoch) {
    return epoch < 2 ? Bandwidth::mbps(8000.0) : Bandwidth::mbps(400.0);
  };
  options.telemetry.metrics = &metrics;
  options.telemetry.recorder = &recorder;
  options.telemetry.health = &health;
  options.telemetry.ledger = &sim_ledger;
  options.telemetry.critpath = &critpath_monitor;
  const auto result = core::adapt::run_adaptive(big, pipe, cm, planned, Seconds(1.0), options);
  ASSERT_EQ(result.rows.size(), 6u);
  ASSERT_GT(health.evaluations(), 0u);
  ASSERT_EQ(critpath_monitor.epochs(), 6u);
}

void expect_known(const std::string& name, MetricKind kind) {
  if (name.rfind("sophon_", 0) != 0) return;      // only the sophon_ namespace is governed
  if (name.rfind("sophon_bench_", 0) == 0) return;  // bench-local names are exempt
  const MetricInfo* info = find_metric(name);
  ASSERT_NE(info, nullptr) << "metric '" << name
                           << "' is emitted but missing from obs::known_metrics()";
  EXPECT_EQ(static_cast<int>(info->kind), static_cast<int>(kind))
      << "metric '" << name << "' registered as " << metric_kind_name(kind)
      << " but the table says " << metric_kind_name(info->kind);
}

TEST(MetricsTableDrift, EveryEmittedNameIsPreRegistered) {
  MetricsRegistry metrics;
  populate_full_run(metrics);

  const MetricsSnapshot snap = metrics.snapshot();
  // The run must actually have lit up the interesting subsystems, or the
  // drift test silently tests nothing.
  EXPECT_GT(snap.counters.count("sophon_shard_hit"), 0u);
  EXPECT_GT(snap.counters.count("sophon_fetch_retries"), 0u);
  EXPECT_GT(snap.counters.count("sophon_prefetch_issued"), 0u);
  EXPECT_GT(snap.counters.count("sophon_epochs_completed"), 0u);
  EXPECT_GT(snap.gauges.count("sophon_health_state"), 0u);
  EXPECT_GT(snap.counters.count("sophon_fetch_attempt_bytes"), 0u);
  EXPECT_GT(snap.counters.count("sophon_ledger_records"), 0u);
  EXPECT_GT(snap.gauges.count("sophon_ledger_unattributed_bytes"), 0u);
  EXPECT_GT(snap.gauges.count("sophon_critpath_bottleneck"), 0u);
  EXPECT_GT(snap.gauges.count("sophon_critpath_blame_link_seconds"), 0u);

  for (const auto& [name, value] : snap.counters) expect_known(name, MetricKind::kCounter);
  for (const auto& [name, value] : snap.gauges) expect_known(name, MetricKind::kGauge);
  for (const auto& [name, dist] : snap.durations) expect_known(name, MetricKind::kDuration);
  for (const auto& [name, dist] : snap.histograms) expect_known(name, MetricKind::kHistogram);
}

// The reverse direction: every table row instantiates under its declared
// kind and surfaces in the exposition with its help text.
TEST(MetricsTable, RegisterKnownMetricsExposesEveryFamily) {
  MetricsRegistry registry;
  register_known_metrics(registry);
  const MetricsSnapshot snap = registry.snapshot();
  const std::string exposition = registry.expose();
  for (const MetricInfo& info : known_metrics()) {
    const std::string name(info.name);
    // The exposition suffixes the family name by kind (counter _total,
    // duration _seconds); the help text rides on the exposed family.
    std::string family = name;
    switch (info.kind) {
      case MetricKind::kCounter:
        EXPECT_EQ(snap.counters.count(name), 1u) << name;
        family += "_total";
        break;
      case MetricKind::kGauge:
        EXPECT_EQ(snap.gauges.count(name), 1u) << name;
        break;
      case MetricKind::kDuration:
        EXPECT_EQ(snap.durations.count(name), 1u) << name;
        family += "_seconds";
        break;
      case MetricKind::kHistogram:
        EXPECT_EQ(snap.histograms.count(name), 1u) << name;
        break;
    }
    EXPECT_NE(exposition.find("# HELP " + family + " "), std::string::npos)
        << "no help line for " << family;
  }
}

TEST(MetricsTable, SortedAndFindable) {
  const auto table = known_metrics();
  ASSERT_FALSE(table.empty());
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_LT(std::string_view(table[i - 1].name), std::string_view(table[i].name))
        << "table must stay sorted for find_metric's binary search";
  }
  for (const MetricInfo& info : table) {
    const MetricInfo* found = find_metric(info.name);
    ASSERT_NE(found, nullptr) << info.name;
    EXPECT_EQ(found, &info);
    EXPECT_NE(std::string_view(info.help), "") << info.name << " needs help text";
  }
  EXPECT_EQ(find_metric("sophon_not_a_metric"), nullptr);
  EXPECT_EQ(find_metric(""), nullptr);
}

TEST(MetricsTable, HealthRuleInputsAreTableRows) {
  // The default health rules read metric names; each must resolve against
  // the table so a rename cannot silently zero a rule.
  for (const char* name :
       {"sophon_epoch_fetch_stall_fraction", "sophon_shard_hit", "sophon_shard_miss",
        "sophon_shard_corrupt", "sophon_fetch_corrupt", "sophon_diskstore_corrupt",
        "sophon_fetch_attempts", "sophon_replan_checks", "sophon_replan_triggered",
        "sophon_prefetch_buffer_highwater_bytes", "sophon_prefetch_buffer_budget_bytes",
        "sophon_epoch_link_utilization", "sophon_health_state",
        "sophon_critpath_bottleneck_migrations"}) {
    EXPECT_NE(find_metric(name), nullptr) << name;
  }
}

}  // namespace
}  // namespace sophon::obs
