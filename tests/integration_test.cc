// End-to-end integration over the real byte path: synthetic images through
// the real codec, stored on the storage server, fetched over the loopback
// channel with offload directives, finished on the compute side — verifying
// that the traffic the channel meters equals what the analytic path
// predicts, and that offloaded training is bit-identical to local training.
#include <gtest/gtest.h>

#include "core/decision.h"
#include "core/profiler.h"
#include "net/rpc.h"
#include "net/wire.h"
#include "storage/dataset_store.h"
#include "storage/server.h"
#include "util/check.h"

namespace sophon {
namespace {

struct Cluster {
  dataset::DatasetProfile profile = [] {
    auto p = dataset::openimages_profile(30);
    // Span the benefit threshold: some raw blobs above the ~147 KiB
    // post-crop size, some below — while keeping materialisation fast.
    p.min_pixels = 1.2e5;
    p.max_pixels = 1.2e6;
    return p;
  }();
  dataset::Catalog parametric = dataset::Catalog::generate(profile, 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  storage::DatasetStore store{parametric, 42, profile.quality};
  storage::StorageServer server{store, pipe, cm, {.seed = 42}};
  net::LoopbackChannel channel{server};

  /// A catalog rebuilt from the *actual* blobs, so sizes are exact.
  dataset::Catalog materialized() {
    std::vector<std::vector<std::uint8_t>> blobs;
    for (std::size_t i = 0; i < parametric.size(); ++i) blobs.push_back(*store.get(i));
    return dataset::Catalog::from_blobs(blobs);
  }
};

TEST(Integration, ChannelTrafficMatchesAnalyticWireSizes) {
  Cluster c;
  const auto real_catalog = c.materialized();
  c.channel.reset_counters();

  // Fetch every sample raw and every sample at the crop stage; compare the
  // metered traffic with the analytic prediction from the real catalog.
  Bytes predicted;
  for (std::size_t i = 0; i < real_catalog.size(); ++i) {
    net::FetchRequest raw;
    raw.sample_id = i;
    (void)c.channel.fetch(raw);
    predicted += net::wire_size(c.pipe.shape_at(real_catalog.sample(i).raw, 0));

    net::FetchRequest cropped;
    cropped.sample_id = i;
    cropped.directive.prefix_len = 2;
    (void)c.channel.fetch(cropped);
    predicted += net::wire_size(c.pipe.shape_at(real_catalog.sample(i).raw, 2));
  }
  EXPECT_EQ(c.channel.traffic(), predicted);
  EXPECT_EQ(c.channel.requests(), 2 * real_catalog.size());
}

TEST(Integration, OffloadedEpochBitIdenticalToLocalEpoch) {
  // Train "one epoch" both ways for a handful of samples: all-local vs a
  // mixed offload plan. Every resulting tensor must match bit-for-bit —
  // the §3.3 accuracy-preservation argument made concrete.
  Cluster c;
  const std::uint64_t epoch = 1;
  for (std::uint64_t id = 0; id < 10; ++id) {
    const auto stream = storage::augmentation_seed(42, epoch, id);

    // Local: fetch raw, run the whole pipeline on the compute side.
    net::FetchRequest raw;
    raw.sample_id = id;
    raw.epoch = epoch;
    const auto raw_resp = c.channel.fetch(raw);
    const auto raw_payload = net::deserialize_sample(raw_resp.payload);
    ASSERT_TRUE(raw_payload.has_value());
    const auto local = c.pipe.run_seeded(*raw_payload, 0, 5, stream);

    // Offloaded: vary the cut per sample like a SOPHON plan would.
    const auto cut = static_cast<std::uint8_t>(1 + id % 5);
    net::FetchRequest off;
    off.sample_id = id;
    off.epoch = epoch;
    off.directive.prefix_len = cut;
    const auto off_resp = c.channel.fetch(off);
    ASSERT_EQ(off_resp.stage, cut);
    const auto off_payload = net::deserialize_sample(off_resp.payload);
    ASSERT_TRUE(off_payload.has_value());
    const auto finished = c.pipe.run_seeded(*off_payload, cut, 5, stream);

    EXPECT_EQ(std::get<image::Tensor>(finished), std::get<image::Tensor>(local))
        << "sample " << id << " cut " << static_cast<int>(cut);
  }
}

TEST(Integration, MaterializedSizesTrackParametricModel) {
  // The parametric catalog models JPEG-like sizes; SJPG (predictive coding,
  // no DCT) needs roughly 2-3x the rate for the same content, so the
  // materialised blobs run larger but must stay in the same regime —
  // dimensions identical, sizes within a small constant factor.
  Cluster c;
  const auto real_catalog = c.materialized();
  double ratio_sum = 0.0;
  for (std::size_t i = 0; i < real_catalog.size(); ++i) {
    const double parametric = c.parametric.sample(i).raw.bytes.as_double();
    const double real = real_catalog.sample(i).raw.bytes.as_double();
    EXPECT_EQ(real_catalog.sample(i).raw.width, c.parametric.sample(i).raw.width);
    EXPECT_EQ(real_catalog.sample(i).raw.height, c.parametric.sample(i).raw.height);
    ratio_sum += real / parametric;
  }
  const double mean_ratio = ratio_sum / static_cast<double>(real_catalog.size());
  EXPECT_GT(mean_ratio, 0.4);
  EXPECT_LT(mean_ratio, 3.5);
}

TEST(Integration, SophonPlanExecutesOnRealBytePath) {
  // Plan with the real decision engine against the materialised catalog,
  // then execute the plan through the server and verify the metered traffic
  // equals the decision engine's prediction.
  Cluster c;
  const auto real_catalog = c.materialized();
  const auto profiles = core::profile_stage2(real_catalog, c.pipe, c.cm);
  sim::ClusterConfig cluster;
  cluster.bandwidth = Bandwidth::mbps(2.0);  // tiny set → tiny link keeps it I/O-bound
  const auto decision = core::decide_offloading(profiles, cluster, Seconds(0.1));
  ASSERT_GT(decision.offloaded, 0u);

  c.channel.reset_counters();
  for (std::size_t i = 0; i < real_catalog.size(); ++i) {
    net::FetchRequest req;
    req.sample_id = i;
    req.directive.prefix_len = decision.plan.prefix(i);
    (void)c.channel.fetch(req);
  }
  const double predicted_traffic =
      decision.final_cost.t_net.value() * cluster.bandwidth.bytes_per_sec();
  EXPECT_NEAR(c.channel.traffic().as_double(), predicted_traffic,
              1e-6 * predicted_traffic + 1.0);
}

TEST(Integration, ServerCpuMeterMatchesAnalyticPrefixCosts) {
  Cluster c;
  const auto real_catalog = c.materialized();
  c.server.reset_counters();
  Seconds predicted;
  for (std::size_t i = 0; i < real_catalog.size(); ++i) {
    net::FetchRequest req;
    req.sample_id = i;
    req.directive.prefix_len = 2;
    (void)c.server.fetch(req);
    predicted += c.pipe.prefix_cost(real_catalog.sample(i).raw, 2, c.cm);
  }
  EXPECT_NEAR(c.server.modeled_cpu_time().value(), predicted.value(), 1e-9);
}

}  // namespace
}  // namespace sophon
