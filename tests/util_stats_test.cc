#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace sophon {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(median(v), 25.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.3), 7.0);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  EXPECT_THROW((void)percentile({}, 0.5), ContractViolation);
  EXPECT_THROW((void)percentile({1.0}, 1.5), ContractViolation);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

}  // namespace
}  // namespace sophon
