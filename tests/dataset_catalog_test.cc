#include "dataset/catalog.h"

#include <gtest/gtest.h>

#include "codec/sjpg.h"
#include "dataset/synth.h"
#include "util/check.h"

namespace sophon::dataset {
namespace {

TEST(Catalog, GenerateHasRequestedSizeAndIds) {
  const auto catalog = Catalog::generate(openimages_profile(500), 42);
  ASSERT_EQ(catalog.size(), 500u);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog.sample(i).id, i);
  }
}

TEST(Catalog, TotalsAreConsistent) {
  const auto catalog = Catalog::generate(imagenet_profile(300), 1);
  Bytes total;
  for (const auto& s : catalog.samples()) total += s.raw.bytes;
  EXPECT_EQ(catalog.total_encoded(), total);
  EXPECT_EQ(catalog.mean_encoded().count(), total.count() / 300);
}

TEST(Catalog, GenerateIsDeterministic) {
  const auto a = Catalog::generate(openimages_profile(100), 9);
  const auto b = Catalog::generate(openimages_profile(100), 9);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.sample(i).raw, b.sample(i).raw);
  }
}

TEST(Catalog, FractionLargerThan) {
  const auto catalog = Catalog::generate(openimages_profile(1000), 3);
  EXPECT_DOUBLE_EQ(catalog.fraction_larger_than(Bytes(0)), 1.0);
  EXPECT_DOUBLE_EQ(catalog.fraction_larger_than(Bytes::gib(1)), 0.0);
  const auto mid = catalog.mean_encoded();
  const double frac = catalog.fraction_larger_than(mid);
  EXPECT_GT(frac, 0.1);
  EXPECT_LT(frac, 0.9);
}

TEST(Catalog, FromBlobsRecoversDimensionsAndSizes) {
  std::vector<std::vector<std::uint8_t>> blobs;
  for (int i = 0; i < 5; ++i) {
    SampleMeta meta;
    meta.id = static_cast<std::uint64_t>(i);
    meta.raw = pipeline::SampleShape::encoded(Bytes(1), 64 + i * 16, 48 + i * 8, 3);
    meta.texture = 0.4;
    blobs.push_back(materialize_encoded(meta, 11, 80));
  }
  const auto catalog = Catalog::from_blobs(blobs);
  ASSERT_EQ(catalog.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(catalog.sample(i).raw.width, 64 + static_cast<int>(i) * 16);
    EXPECT_EQ(catalog.sample(i).raw.height, 48 + static_cast<int>(i) * 8);
    EXPECT_EQ(catalog.sample(i).raw.bytes.count(),
              static_cast<std::int64_t>(blobs[i].size()));
  }
}

TEST(Catalog, FromBlobsRejectsGarbage) {
  std::vector<std::vector<std::uint8_t>> blobs{{1, 2, 3}};
  EXPECT_THROW((void)Catalog::from_blobs(blobs), ContractViolation);
}

TEST(Catalog, SampleIndexBoundsChecked) {
  const auto catalog = Catalog::generate(openimages_profile(10), 1);
  EXPECT_THROW((void)catalog.sample(10), ContractViolation);
}

TEST(Catalog, EmptyCatalogBehaviour) {
  const Catalog catalog;
  EXPECT_TRUE(catalog.empty());
  EXPECT_EQ(catalog.mean_encoded().count(), 0);
  EXPECT_DOUBLE_EQ(catalog.fraction_larger_than(Bytes(1)), 0.0);
}

}  // namespace
}  // namespace sophon::dataset
