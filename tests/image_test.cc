#include "image/image.h"

#include <gtest/gtest.h>

#include "image/tensor.h"
#include "util/check.h"

namespace sophon::image {
namespace {

TEST(Image, ConstructZeroFilled) {
  const Image img(4, 3, 3);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.channels(), 3);
  EXPECT_EQ(img.pixel_count(), 12);
  EXPECT_EQ(img.byte_size().count(), 36);
  EXPECT_EQ(img.at(2, 1, 0), 0);
}

TEST(Image, SetGetRoundTrip) {
  Image img(5, 5, 3);
  img.set(3, 4, 2, 200);
  EXPECT_EQ(img.at(3, 4, 2), 200);
  EXPECT_EQ(img.at(3, 4, 1), 0);
}

TEST(Image, TakeOwnershipOfPixels) {
  std::vector<std::uint8_t> pixels{1, 2, 3, 4, 5, 6};
  const Image img(2, 1, 3, std::move(pixels));
  EXPECT_EQ(img.at(0, 0, 0), 1);
  EXPECT_EQ(img.at(1, 0, 2), 6);
}

TEST(Image, RejectsBadConstruction) {
  EXPECT_THROW(Image(0, 4, 3), ContractViolation);
  EXPECT_THROW(Image(4, 4, 2), ContractViolation);
  EXPECT_THROW(Image(2, 2, 3, std::vector<std::uint8_t>(5)), ContractViolation);
}

TEST(Image, BoundsChecked) {
  Image img(2, 2, 1);
  EXPECT_THROW((void)img.at(2, 0, 0), ContractViolation);
  EXPECT_THROW((void)img.at(0, -1, 0), ContractViolation);
  EXPECT_THROW(img.set(0, 0, 1, 7), ContractViolation);
}

TEST(Image, EqualityIsValueBased) {
  Image a(2, 2, 1);
  Image b(2, 2, 1);
  EXPECT_EQ(a, b);
  b.set(1, 1, 0, 9);
  EXPECT_NE(a, b);
}

TEST(Plane, SetGet) {
  Plane p(3, 2);
  p.set(2, 1, 77);
  EXPECT_EQ(p.at(2, 1), 77);
  EXPECT_THROW((void)p.at(3, 0), ContractViolation);
}

TEST(Tensor, ConstructAndSize) {
  const Tensor t(3, 224, 224);
  EXPECT_EQ(t.numel(), 3 * 224 * 224);
  EXPECT_EQ(t.byte_size().count(), 3 * 224 * 224 * 4);
}

TEST(Tensor, SetGetChw) {
  Tensor t(3, 2, 2);
  t.set(2, 1, 0, 0.5f);
  EXPECT_FLOAT_EQ(t.at(2, 1, 0), 0.5f);
  EXPECT_FLOAT_EQ(t.at(0, 0, 0), 0.0f);
}

TEST(Tensor, BoundsChecked) {
  Tensor t(1, 2, 2);
  EXPECT_THROW((void)t.at(1, 0, 0), ContractViolation);
  EXPECT_THROW(t.set(0, 2, 0, 1.0f), ContractViolation);
}

TEST(Tensor, ByteSizeIsFourTimesImage) {
  const Image img(224, 224, 3);
  const Tensor t(3, 224, 224);
  EXPECT_EQ(t.byte_size().count(), img.byte_size().count() * 4);
}

}  // namespace
}  // namespace sophon::image
