// Postmortem dump: the document composes whatever surfaces exist, the
// deferred-signal guard turns a SIGTERM into a clean epoch-boundary stop,
// and — the acceptance pin — a stopped run's flight-recorder tail reconciles
// with the epochs the run actually completed.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/adapt/loop.h"
#include "obs/health.h"
#include "obs/postmortem.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace sophon::obs {
namespace {

std::filesystem::path temp_json(const char* tag) {
  return std::filesystem::temp_directory_path() /
         (std::string("sophon_pm_") + tag + "_" + std::to_string(::getpid()) + ".json");
}

TEST(Postmortem, DocumentComposesPresentSourcesOnly) {
  MetricsRegistry metrics;
  metrics.counter("sophon_shard_hit").increment(4);
  FlightRecorder recorder(metrics);
  recorder.sample_at(1.0);
  HealthEvaluator health(default_health_rules());
  health.evaluate(metrics.snapshot(), Seconds(1.0));
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.record(SpanCategory::kFetch, "fetch", 100, 200);
  tracer.record_at(tracer.track("link"), SpanCategory::kTransfer, "xfer", Seconds(1.0),
                   Seconds(2.0));

  PostmortemSources sources;
  sources.metrics = &metrics;
  sources.recorder = &recorder;
  sources.health = &health;
  sources.tracer = &tracer;
  const Json doc = postmortem_json(sources, "test reason");
  EXPECT_EQ(doc.at("kind").as_string(), "sophon.postmortem");
  EXPECT_EQ(doc.at("reason").as_string(), "test reason");
  EXPECT_EQ(doc.at("metrics").at("counters").at("sophon_shard_hit").as_int(), 4);
  EXPECT_EQ(doc.at("health").at("kind").as_string(), "sophon.health");
  EXPECT_EQ(doc.at("timeseries").at("samples").as_int(), 1);
  ASSERT_EQ(doc.at("spans").size(), 2u);
  EXPECT_EQ(doc.at("spans").at(0).at("tb").as_string(), "steady");
  EXPECT_EQ(doc.at("spans").at(1).at("tb").as_string(), "virtual");
  EXPECT_EQ(doc.at("spans_dropped").as_int(), 0);

  const Json bare = postmortem_json(PostmortemSources{}, "nothing attached");
  EXPECT_FALSE(bare.has("metrics"));
  EXPECT_FALSE(bare.has("health"));
  EXPECT_FALSE(bare.has("timeseries"));
  EXPECT_FALSE(bare.has("spans"));
}

TEST(Postmortem, MaxSpansKeepsTheMostRecent) {
  Tracer tracer;
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    tracer.record(SpanCategory::kOther, ("span" + std::to_string(i)).c_str(),
                  static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i + 1));
  }
  PostmortemSources sources;
  sources.tracer = &tracer;
  sources.max_spans = 3;
  const Json doc = postmortem_json(sources, "truncation");
  ASSERT_EQ(doc.at("spans").size(), 3u);
  EXPECT_EQ(doc.at("spans").at(0).at("name").as_string(), "span7");
  EXPECT_EQ(doc.at("spans").at(2).at("name").as_string(), "span9");
  EXPECT_EQ(doc.at("spans_dropped").as_int(), 7);
}

TEST(Postmortem, WriteLandsParseableJsonOnDisk) {
  MetricsRegistry metrics;
  metrics.counter("sophon_shard_hit").increment();
  PostmortemSources sources;
  sources.metrics = &metrics;
  const auto path = temp_json("write");
  ASSERT_TRUE(write_postmortem(path.string(), sources, "disk"));
  std::ifstream in(path);
  std::stringstream text;
  text << in.rdbuf();
  const auto doc = Json::parse(text.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("reason").as_string(), "disk");
  std::filesystem::remove(path);

  EXPECT_FALSE(write_postmortem("/nonexistent-dir/x.json", sources, "bad path"));
}

TEST(PostmortemGuard, DeferredSignalLandsInTheMailbox) {
  MetricsRegistry metrics;
  PostmortemSources sources;
  sources.metrics = &metrics;
  const auto path = temp_json("guard");
  {
    PostmortemGuard guard(path.string(), sources);
    EXPECT_EQ(guard.stop_signal().load(), 0);
    ASSERT_EQ(::raise(SIGTERM), 0);  // deferred: stored, not fatal
    EXPECT_EQ(guard.stop_signal().load(), SIGTERM);
    EXPECT_TRUE(guard.dump("deferred stop"));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream text;
  text << in.rdbuf();
  const auto doc = Json::parse(text.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("reason").as_string(), "deferred stop");
  std::filesystem::remove(path);
}

TEST(PostmortemGuard, RestoresPreviousHandlersAndSecondGuardIsInert) {
  struct sigaction ignore{};
  ignore.sa_handler = SIG_IGN;
  sigemptyset(&ignore.sa_mask);
  struct sigaction saved{};
  ASSERT_EQ(::sigaction(SIGTERM, &ignore, &saved), 0);

  {
    PostmortemGuard first(temp_json("first").string(), {});
    PostmortemGuard second(temp_json("second").string(), {});
    ASSERT_EQ(::raise(SIGTERM), 0);
    EXPECT_EQ(first.stop_signal().load(), SIGTERM) << "the live guard owns the handler";
    EXPECT_EQ(second.stop_signal().load(), 0) << "a second guard must stay inert";
  }

  struct sigaction after{};
  ASSERT_EQ(::sigaction(SIGTERM, nullptr, &after), 0);
  EXPECT_EQ(after.sa_handler, SIG_IGN) << "destructor must restore the previous handler";
  ::sigaction(SIGTERM, &saved, nullptr);
}

// The acceptance pin: stop an adaptive run mid-flight through the signal
// mailbox and check the dump's flight-recorder series reconcile with the
// epoch rows the run reports — same epoch count, same final epoch time.
TEST(Postmortem, FlightRecorderTailReconcilesWithAStoppedRun) {
  const auto catalog = dataset::Catalog::generate(dataset::openimages_profile(300), 42);
  const auto pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  sim::ClusterConfig planned;
  planned.bandwidth = Bandwidth::mbps(8000.0);

  MetricsRegistry metrics;
  FlightRecorder recorder(metrics);
  HealthEvaluator health(default_health_rules());
  std::atomic<int> stop{0};

  core::adapt::RunOptions options;
  options.epochs = 100;
  options.telemetry.metrics = &metrics;
  options.telemetry.recorder = &recorder;
  options.telemetry.health = &health;
  options.telemetry.stop_signal = &stop;
  options.telemetry.on_epoch = [&](const core::adapt::EpochRow& row) {
    if (row.epoch == 4) stop.store(SIGTERM);  // "kill" lands mid-epoch 4
  };
  const auto result =
      core::adapt::run_adaptive(catalog, pipe, cm, planned, Seconds(1.0), options);
  EXPECT_EQ(result.stopped_by_signal, SIGTERM);
  ASSERT_EQ(result.rows.size(), 5u) << "stops at the next epoch boundary";

  PostmortemSources sources;
  sources.metrics = &metrics;
  sources.recorder = &recorder;
  sources.health = &health;
  const auto path = temp_json("reconcile");
  ASSERT_TRUE(write_postmortem(path.string(), sources, "signal 15"));
  std::ifstream in(path);
  std::stringstream text;
  text << in.rdbuf();
  const auto parsed = Json::parse(text.str());
  ASSERT_TRUE(parsed.has_value());
  std::filesystem::remove(path);
  const Json& doc = *parsed;

  // Counter series: the epochs-completed deltas across recent + tail must
  // sum to exactly the rows the run returned.
  double completed = 0.0;
  bool found = false;
  const Json& series = doc.at("timeseries").at("series");
  for (std::size_t i = 0; i < series.size(); ++i) {
    const Json& one = series.at(i);
    if (one.at("name").as_string() != "sophon_epochs_completed") continue;
    found = true;
    for (const char* window : {"recent", "tail"}) {
      const Json& points = one.at(window);
      for (std::size_t j = 0; j < points.size(); ++j) {
        completed += points.at(j).at(1).as_number();
      }
    }
  }
  ASSERT_TRUE(found);
  EXPECT_DOUBLE_EQ(completed, 5.0);

  // Cumulative metrics in the dump agree with the recorder's epoch count...
  EXPECT_EQ(doc.at("metrics").at("counters").at("sophon_epochs_completed").as_int(), 5);
  // ...and the last recorded epoch-time gauge is the final row's.
  const auto time_points = recorder.recent("sophon_epoch_time_seconds");
  ASSERT_FALSE(time_points.empty());
  EXPECT_DOUBLE_EQ(time_points.back().value, result.rows.back().epoch_time.value());
}

}  // namespace
}  // namespace sophon::obs
