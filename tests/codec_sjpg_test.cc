#include "codec/sjpg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dataset/profile.h"
#include "dataset/synth.h"
#include "util/check.h"
#include "util/rng.h"

namespace sophon::codec {
namespace {

image::Image random_image(int w, int h, int channels, std::uint64_t seed) {
  image::Image img(w, h, channels);
  Rng rng(seed);
  for (auto& px : img.data()) px = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return img;
}

image::Image smooth_image(int w, int h) {
  image::Image img(w, h, 3);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      for (int c = 0; c < 3; ++c)
        img.set(x, y, c, static_cast<std::uint8_t>((x * 2 + y + c * 40) % 256));
  return img;
}

double mean_abs_error(const image::Image& a, const image::Image& b) {
  SOPHON_CHECK(a.width() == b.width() && a.height() == b.height());
  double err = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    err += std::abs(static_cast<int>(a.data()[i]) - static_cast<int>(b.data()[i]));
  return err / static_cast<double>(a.data().size());
}

TEST(Sjpg, HeaderPeek) {
  const auto img = smooth_image(37, 21);
  const auto blob = sjpg_encode(img, 75);
  const auto hdr = sjpg_peek(blob);
  ASSERT_TRUE(hdr.has_value());
  EXPECT_EQ(hdr->width, 37);
  EXPECT_EQ(hdr->height, 21);
  EXPECT_EQ(hdr->channels, 3);
  EXPECT_EQ(hdr->quality, 75);
}

TEST(Sjpg, PeekRejectsGarbage) {
  EXPECT_FALSE(sjpg_peek(std::vector<std::uint8_t>{1, 2, 3}).has_value());
  std::vector<std::uint8_t> junk(64, 0xaa);
  EXPECT_FALSE(sjpg_peek(junk).has_value());
}

TEST(Sjpg, GrayscaleRoundTripNearLossless) {
  const auto img = random_image(64, 48, 1, 11);
  const auto blob = sjpg_encode(img, 95);  // step 1 → lossless DPCM
  const auto decoded = sjpg_decode(blob);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, img);  // grayscale at step 1 is exactly lossless
}

TEST(Sjpg, ColorRoundTripBoundedError) {
  // Chroma subsampling + colour-space round trip is lossy but bounded.
  const auto img = smooth_image(96, 64);
  const auto blob = sjpg_encode(img, 95);
  const auto decoded = sjpg_decode(blob);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->width(), img.width());
  EXPECT_EQ(decoded->height(), img.height());
  EXPECT_LT(mean_abs_error(img, *decoded), 8.0);
}

TEST(Sjpg, LowerQualityIsSmallerAndWorse) {
  dataset::SampleMeta meta;
  meta.id = 3;
  meta.raw = pipeline::SampleShape::encoded(Bytes(1), 256, 192, 3);
  meta.texture = 0.4;
  const auto img = dataset::generate_synthetic_image(meta, 99);

  const auto hi = sjpg_encode(img, 95);
  const auto lo = sjpg_encode(img, 40);
  EXPECT_LT(lo.size(), hi.size());

  const auto hi_dec = sjpg_decode(hi);
  const auto lo_dec = sjpg_decode(lo);
  ASSERT_TRUE(hi_dec.has_value() && lo_dec.has_value());
  EXPECT_LE(mean_abs_error(img, *hi_dec), mean_abs_error(img, *lo_dec));
  // Even at quality 40 the reconstruction must stay recognisable.
  EXPECT_LT(mean_abs_error(img, *lo_dec), 16.0);
}

TEST(Sjpg, SmoothCompressesBetterThanNoise) {
  const auto smooth = smooth_image(128, 128);
  const auto noisy = random_image(128, 128, 3, 12);
  const auto smooth_blob = sjpg_encode(smooth, 80);
  const auto noisy_blob = sjpg_encode(noisy, 80);
  EXPECT_LT(smooth_blob.size() * 2, noisy_blob.size());
}

TEST(Sjpg, AdaptivePredictorsKeepSmoothContentCheap) {
  // Regression floor for the per-row adaptive predictors: smooth synthetic
  // content at quality 70 must stay near 1 bpp (it was ~1.6 bpp with the
  // fixed MED predictor).
  dataset::SampleMeta meta;
  meta.id = 7;
  meta.raw = pipeline::SampleShape::encoded(Bytes(1), 512, 384, 3);
  meta.texture = 0.05;
  const auto img = dataset::generate_synthetic_image(meta, 1);
  const auto blob = sjpg_encode(img, 70);
  const double bpp = static_cast<double>(blob.size()) * 8.0 / (512.0 * 384.0);
  EXPECT_LT(bpp, 1.2);
}

TEST(Sjpg, Deterministic) {
  const auto img = smooth_image(50, 40);
  EXPECT_EQ(sjpg_encode(img, 80), sjpg_encode(img, 80));
}

TEST(Sjpg, DecodeRejectsTruncation) {
  const auto img = smooth_image(64, 64);
  auto blob = sjpg_encode(img, 80);
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(sjpg_decode(blob).has_value());
}

TEST(Sjpg, DecodeRejectsBitFlipsGracefully) {
  // Any corruption must yield nullopt or a decoded image — never a crash.
  const auto img = smooth_image(48, 48);
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    auto blob = sjpg_encode(img, 70);
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(6, static_cast<std::int64_t>(blob.size()) - 1));
    blob[pos] ^= static_cast<std::uint8_t>(1 << rng.uniform_int(0, 7));
    const auto decoded = sjpg_decode(blob);  // must not throw
    if (decoded.has_value()) {
      EXPECT_EQ(decoded->width(), 48);
      EXPECT_EQ(decoded->height(), 48);
    }
  }
}

TEST(Sjpg, OddDimensionsRoundTrip) {
  for (const auto& [w, h] : {std::pair{65, 33}, {1, 1}, {3, 7}, {127, 1}}) {
    const auto img = random_image(w, h, 3, static_cast<std::uint64_t>(w * 1000 + h));
    const auto blob = sjpg_encode(img, 90);
    const auto decoded = sjpg_decode(blob);
    ASSERT_TRUE(decoded.has_value()) << w << "x" << h;
    EXPECT_EQ(decoded->width(), w);
    EXPECT_EQ(decoded->height(), h);
  }
}

TEST(Sjpg, QuantStepMonotoneInQuality) {
  int prev = sjpg_quant_step(1);
  for (int q = 2; q <= 100; ++q) {
    const int step = sjpg_quant_step(q);
    EXPECT_LE(step, prev);
    prev = step;
  }
  EXPECT_EQ(sjpg_quant_step(100), 1);
  EXPECT_THROW((void)sjpg_quant_step(0), ContractViolation);
  EXPECT_THROW((void)sjpg_quant_step(101), ContractViolation);
}

TEST(Sjpg, EncodeRejectsBadArguments) {
  const auto img = smooth_image(8, 8);
  EXPECT_THROW((void)sjpg_encode(img, 0), ContractViolation);
  EXPECT_THROW((void)sjpg_encode(image::Image{}, 80), ContractViolation);
}

// Property sweep: compressed size grows with texture at fixed dimensions —
// the behaviour the dataset profiles rely on.
class SjpgTextureSweep : public ::testing::TestWithParam<int> {};

TEST_P(SjpgTextureSweep, SizeGrowsWithTexture) {
  const int quality = GetParam();
  std::size_t prev = 0;
  for (const double texture : {0.05, 0.35, 0.65, 0.95}) {
    dataset::SampleMeta meta;
    meta.id = 17;
    meta.raw = pipeline::SampleShape::encoded(Bytes(1), 160, 120, 3);
    meta.texture = texture;
    const auto blob =
        sjpg_encode(dataset::generate_synthetic_image(meta, 5), quality);
    EXPECT_GT(blob.size(), prev) << "texture " << texture << " quality " << quality;
    prev = blob.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Qualities, SjpgTextureSweep, ::testing::Values(95, 80, 60, 40));

}  // namespace
}  // namespace sophon::codec
