#include "obs/critpath/critpath.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "net/fault.h"
#include "obs/critpath/monitor.h"
#include "obs/critpath/whatif.h"
#include "prefetch/replay.h"
#include "sim/trainer.h"
#include "util/telemetry.h"

namespace sophon::obs::critpath {
namespace {

constexpr std::size_t kSamples = 256;

// Heterogeneous demands: a mix of offloaded and local samples, wire sizes
// spanning deprioritization-small to large, occasional injected delay, and
// zero-compute samples — every branch of both schedulers gets exercised.
sim::SampleFlow flow_for(std::size_t i) {
  sim::SampleFlow f;
  f.wire = i % 7 == 3 ? Bytes(2 * 1024) : Bytes(static_cast<std::int64_t>((i % 7 + 1) * 64 * 1024));
  f.storage_cpu = i % 3 == 0 ? Seconds::millis(2.0 * static_cast<double>(i % 5 + 1)) : Seconds(0.0);
  f.compute_cpu = Seconds::millis(1.0 * static_cast<double>(i % 4));
  f.delay = i % 11 == 0 ? Seconds::millis(0.5) : Seconds(0.0);
  return f;
}

SampleDemand demand_for(std::size_t i) {
  const sim::SampleFlow f = flow_for(i);
  return SampleDemand{f.storage_cpu, f.compute_cpu, f.wire, f.delay};
}

sim::ClusterConfig test_cluster() {
  sim::ClusterConfig cluster;
  cluster.compute_cores = 4;  // < typical demand: real core queueing
  cluster.storage_cores = 2;
  cluster.storage_core_speed = 0.8;
  cluster.bandwidth = Bandwidth::mbps(800.0);
  cluster.link_latency = Seconds::millis(1.0);
  cluster.batch_size = 32;
  cluster.prefetch_batches = 2;
  return cluster;
}

EpochParams batch_params() {
  EpochParams p;
  p.cluster = test_cluster();
  p.gpu_batch_time = Seconds::millis(20.0);
  p.seed = 42;
  p.epoch_index = 1;
  p.num_samples = kSamples;
  p.discipline = Discipline::kBatchWindow;
  return p;
}

EpochParams worker_params() {
  EpochParams p = batch_params();
  p.discipline = Discipline::kWorkerReplay;
  p.replay.workers = 3;
  p.replay.prefetch.depth = 8;
  p.replay.prefetch.bytes_budget = Bytes::mib(1);
  p.replay.served_locally = [](std::uint64_t id) { return id % 13 == 0; };
  return p;
}

double simulate_under(const EpochParams& p) {
  if (p.discipline == Discipline::kWorkerReplay) {
    return prefetch::replay_epoch(p.num_samples, flow_for, p.cluster, p.gpu_batch_time, p.seed,
                                  p.epoch_index, p.replay)
        .epoch.epoch_time.value();
  }
  return sim::simulate_epoch_flows(p.num_samples, flow_for, p.cluster, p.gpu_batch_time, p.seed,
                                   p.epoch_index)
      .epoch_time.value();
}

void expect_path_tiles(const Analysis& analysis) {
  ASSERT_FALSE(analysis.path.empty());
  EXPECT_EQ(analysis.path.front().begin.value(), 0.0);
  EXPECT_EQ(analysis.path.back().end.value(), analysis.epoch_time.value());
  for (std::size_t i = 1; i < analysis.path.size(); ++i) {
    EXPECT_EQ(analysis.path[i].begin.value(), analysis.path[i - 1].end.value());
  }
  // The blame vector is the same tiling bucketed by resource.
  EXPECT_NEAR(analysis.blame.total().value(), analysis.epoch_time.value(),
              1e-9 * std::max(analysis.epoch_time.value(), 1.0));
}

TEST(CritPath, BatchWindowRetimingMatchesSimulatorExactly) {
  const EpochParams p = batch_params();
  const double simulated = simulate_under(p);
  const Analysis analysis = analyze_epoch(demand_for, p, Seconds(simulated));
  EXPECT_DOUBLE_EQ(analysis.epoch_time.value(), simulated);
  EXPECT_LT(analysis.reconcile_error, 1e-12);
  expect_path_tiles(analysis);
}

TEST(CritPath, WorkerReplayRetimingMatchesReplayExactly) {
  const EpochParams p = worker_params();
  const double simulated = simulate_under(p);
  const Analysis analysis = analyze_epoch(demand_for, p, Seconds(simulated));
  EXPECT_DOUBLE_EQ(analysis.epoch_time.value(), simulated);
  EXPECT_LT(analysis.reconcile_error, 1e-12);
  expect_path_tiles(analysis);
}

TEST(CritPath, DemandOnlyReplayMatchesToo) {
  EpochParams p = worker_params();
  p.replay.prefetch.depth = 0;  // pure demand fetching
  const double simulated = simulate_under(p);
  const Analysis analysis = analyze_epoch(demand_for, p, Seconds(simulated));
  EXPECT_DOUBLE_EQ(analysis.epoch_time.value(), simulated);
}

TEST(CritPath, FaultyLinkRetimesIdentically) {
  // Link faults draw per transfer index; the retimer schedules transfers in
  // the simulator's order, so a degraded epoch re-times bit-identically.
  net::FaultProfile profile;
  profile.latency_spike_prob = 0.3;
  profile.latency_spike = Seconds::millis(25.0);
  profile.bandwidth_dip_prob = 0.2;
  profile.bandwidth_dip_factor = 3.0;
  profile.seed = 7;
  const net::FaultInjector faults(profile);

  for (const bool worker : {false, true}) {
    EpochParams p = worker ? worker_params() : batch_params();
    p.cluster.link_faults = &faults;
    const double simulated = simulate_under(p);
    const Analysis analysis = analyze_epoch(demand_for, p, Seconds(simulated));
    EXPECT_DOUBLE_EQ(analysis.epoch_time.value(), simulated)
        << (worker ? "worker replay" : "batch window");
  }
}

TEST(CritPath, InjectedBottleneckIsBlamed) {
  // Starve the link: nearly all critical-path time must land on it.
  EpochParams narrow = batch_params();
  narrow.cluster.bandwidth = Bandwidth::mbps(20.0);
  const Analysis link_bound = analyze_epoch(demand_for, narrow);
  EXPECT_EQ(link_bound.bottleneck(), Resource::kLink);
  EXPECT_GT(link_bound.blame.link.value(), 0.5 * link_bound.epoch_time.value());

  // A glacial GPU swamps everything else.
  EpochParams slow_gpu = batch_params();
  slow_gpu.gpu_batch_time = Seconds(2.0);
  const Analysis gpu_bound = analyze_epoch(demand_for, slow_gpu);
  EXPECT_EQ(gpu_bound.bottleneck(), Resource::kGpu);
  EXPECT_GT(gpu_bound.blame.gpu.value(), 0.9 * gpu_bound.epoch_time.value());
}

TEST(CritPath, AnalysisIsDeterministic) {
  const EpochParams p = worker_params();
  const std::string a = analyze_epoch(demand_for, p).to_json().dump();
  const std::string b = analyze_epoch(demand_for, p).to_json().dump();
  EXPECT_EQ(a, b);
}

TEST(WhatIf, DefaultScenariosCoverRequiredKnobs) {
  const auto has = [](const std::vector<Scenario>& scenarios, const std::string& name) {
    for (const auto& s : scenarios) {
      if (s.name == name) return true;
    }
    return false;
  };
  const auto batch = default_scenarios(batch_params());
  EXPECT_TRUE(has(batch, "link_bandwidth_x2"));
  EXPECT_TRUE(has(batch, "storage_cores_plus2"));
  EXPECT_TRUE(has(batch, "prefetch_window_x2"));
  EXPECT_TRUE(has(batch, "gpu_2x_faster"));
  const auto worker = default_scenarios(worker_params());
  EXPECT_TRUE(has(worker, "prefetch_depth_x2"));
  EXPECT_TRUE(has(worker, "workers_plus2"));
}

TEST(WhatIf, ProjectionsMatchSimulatorRerunWithinTolerance) {
  // The acceptance bar: every projected epoch time must agree with an
  // actual simulator re-run under the perturbed config within 5% — and
  // because the retimer is exact, the agreement is really to float
  // rounding. Covers 2x bandwidth, +2 storage cores, and deeper prefetch
  // (window for the batch discipline, depth for worker replay).
  for (const bool worker : {false, true}) {
    const EpochParams base = worker ? worker_params() : batch_params();
    const auto scenarios = default_scenarios(base);
    ASSERT_GE(scenarios.size(), 3u);
    const WhatIfReport report = project(demand_for, base, scenarios, Seconds(simulate_under(base)));
    EXPECT_LT(report.baseline.reconcile_error, 1e-12);
    ASSERT_EQ(report.ranked.size(), scenarios.size());
    for (const Projection& projection : report.ranked) {
      const double resimulated = simulate_under(projection.params);
      ASSERT_GT(resimulated, 0.0);
      const double error =
          std::abs(projection.projected_epoch_time.value() - resimulated) / resimulated;
      EXPECT_LT(error, 0.05) << projection.name << " predicted "
                             << projection.projected_epoch_time.value() << " vs simulated "
                             << resimulated;
      EXPECT_LT(error, 1e-12) << projection.name << " should be exact, not merely within 5%";
      EXPECT_GE(projection.speedup, 1.0 - 1e-9) << projection.name;
    }
  }
}

TEST(WhatIf, RankingIsDeterministicAndSorted) {
  const EpochParams base = worker_params();
  const auto scenarios = default_scenarios(base);
  const WhatIfReport a = project(demand_for, base, scenarios);
  const WhatIfReport b = project(demand_for, base, scenarios);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  for (std::size_t i = 1; i < a.ranked.size(); ++i) {
    EXPECT_GE(a.ranked[i - 1].speedup, a.ranked[i].speedup);
  }
  EXPECT_FALSE(a.render().empty());
}

TEST(Monitor, PublishesBlameAndCountsMigrations) {
  MetricsRegistry metrics;
  CritPathMonitor monitor(&metrics);
  EXPECT_EQ(monitor.bottleneck(), Resource::kStart);

  // Epoch 1: link-starved.
  EpochParams narrow = batch_params();
  narrow.cluster.bandwidth = Bandwidth::mbps(20.0);
  monitor.observe_epoch(demand_for, narrow, Seconds(simulate_under(narrow)));
  EXPECT_EQ(monitor.bottleneck(), Resource::kLink);
  EXPECT_EQ(monitor.migrations(), 0u);

  // Epoch 2: GPU-bound — the bottleneck migrated.
  EpochParams slow_gpu = batch_params();
  slow_gpu.gpu_batch_time = Seconds(2.0);
  monitor.observe_epoch(demand_for, slow_gpu, Seconds(simulate_under(slow_gpu)));
  EXPECT_EQ(monitor.bottleneck(), Resource::kGpu);
  EXPECT_EQ(monitor.migrations(), 1u);
  EXPECT_EQ(monitor.epochs(), 2u);

  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("sophon_critpath_bottleneck_migrations"), 1u);
  EXPECT_EQ(snap.gauges.at("sophon_critpath_bottleneck"),
            static_cast<double>(Resource::kGpu));
  EXPECT_GT(snap.gauges.at("sophon_critpath_blame_gpu_seconds"), 0.0);
  EXPECT_LT(snap.gauges.at("sophon_critpath_reconcile_error"), 1e-12);

  // Same bottleneck again: no new migration.
  monitor.observe_epoch(demand_for, slow_gpu, Seconds(simulate_under(slow_gpu)));
  EXPECT_EQ(monitor.migrations(), 1u);
}

TEST(CritPath, RenderAndJsonCarryTheStory) {
  const EpochParams p = batch_params();
  const Analysis analysis = analyze_epoch(demand_for, p, Seconds(simulate_under(p)));
  const std::string text = analysis.render();
  EXPECT_NE(text.find("bottleneck"), std::string::npos);
  EXPECT_NE(text.find("reconciles"), std::string::npos);
  const Json doc = analysis.to_json();
  EXPECT_EQ(doc.at("kind").as_string(), "sophon.critpath");
  EXPECT_TRUE(doc.has("blame"));
  EXPECT_GT(doc.at("path").size(), 0u);
}

}  // namespace
}  // namespace sophon::obs::critpath
