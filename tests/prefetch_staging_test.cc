#include "prefetch/staging_buffer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cache/lru.h"
#include "prefetch/admission.h"
#include "prefetch/metrics.h"

namespace sophon::prefetch {
namespace {

net::FetchResponse response_of(std::uint64_t id, std::size_t bytes) {
  net::FetchResponse response;
  response.sample_id = id;
  response.payload.resize(bytes, std::uint8_t{0xAB});
  return response;
}

PrefetchOptions depth_options(std::size_t depth) {
  PrefetchOptions options;
  options.depth = depth;
  return options;
}

TEST(StagingBuffer, ReserveCommitClaimRoundTrip) {
  StagingBuffer buffer(depth_options(2), nullptr);
  ASSERT_EQ(buffer.reserve(0, Bytes(0), true), StagingBuffer::Reserve::kOk);
  buffer.commit(0, response_of(7, 100));
  EXPECT_EQ(buffer.staged(), 1u);
  EXPECT_EQ(buffer.staged_bytes(), Bytes(100));
  const auto claimed = buffer.claim(0);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->response.sample_id, 7u);
  EXPECT_FALSE(claimed->late);
  EXPECT_EQ(buffer.hits(), 1u);
  EXPECT_EQ(buffer.late_hits(), 0u);
  EXPECT_EQ(buffer.staged(), 0u);
}

TEST(StagingBuffer, DepthCreditsLimitReservations) {
  StagingBuffer buffer(depth_options(2), nullptr);
  ASSERT_EQ(buffer.reserve(0, Bytes(0), true), StagingBuffer::Reserve::kOk);
  ASSERT_EQ(buffer.reserve(1, Bytes(0), true), StagingBuffer::Reserve::kOk);
  // Both credits in use: a non-blocking reserve must bounce.
  EXPECT_EQ(buffer.reserve(2, Bytes(0), false), StagingBuffer::Reserve::kNoCredit);
  buffer.commit(0, response_of(0, 10));
  (void)buffer.claim(0);  // frees one credit
  EXPECT_EQ(buffer.reserve(2, Bytes(0), false), StagingBuffer::Reserve::kOk);
}

TEST(StagingBuffer, BytesBudgetLimitsReservationsButNeverBlocksEmpty) {
  PrefetchOptions options = depth_options(8);
  options.bytes_budget = Bytes(150);
  StagingBuffer buffer(options, nullptr);
  // An empty buffer admits even an over-budget sample — otherwise the
  // scheduler would wedge on it forever.
  ASSERT_EQ(buffer.reserve(0, Bytes(1000), true), StagingBuffer::Reserve::kOk);
  EXPECT_EQ(buffer.reserve(1, Bytes(100), false), StagingBuffer::Reserve::kNoCredit);
  buffer.fail(0);
  EXPECT_EQ(buffer.reserve(1, Bytes(100), false), StagingBuffer::Reserve::kOk);
  EXPECT_EQ(buffer.reserve(2, Bytes(100), false), StagingBuffer::Reserve::kNoCredit);
}

TEST(StagingBuffer, ClaimOnUnreservedPositionLeavesConsumedMark) {
  StagingBuffer buffer(depth_options(4), nullptr);
  EXPECT_FALSE(buffer.claim(3).has_value());  // demand fallback
  // The scheduler later reaches position 3: the mark stops a double fetch.
  EXPECT_EQ(buffer.reserve(3, Bytes(0), true), StagingBuffer::Reserve::kConsumed);
  // And the mark is consumed by that reserve — the next epoch position at
  // this index would be fetchable again.
  EXPECT_EQ(buffer.reserve(3, Bytes(0), true), StagingBuffer::Reserve::kOk);
}

TEST(StagingBuffer, AdvanceCursorSkipsMarkingDecidedPositions) {
  StagingBuffer buffer(depth_options(4), nullptr);
  buffer.advance_cursor(5);
  // Claims below the cursor (scheduler already decided to skip those) must
  // not leave marks behind.
  EXPECT_FALSE(buffer.claim(2).has_value());
  EXPECT_EQ(buffer.reserve(6, Bytes(0), true), StagingBuffer::Reserve::kOk);
}

TEST(StagingBuffer, AdvanceCursorReapsStaleMarks) {
  StagingBuffer buffer(depth_options(4), nullptr);
  EXPECT_FALSE(buffer.claim(1).has_value());  // mark at 1
  buffer.advance_cursor(3);                   // scheduler skipped past it
  // Nothing observable should remain; a fresh reserve at 1 succeeds.
  EXPECT_EQ(buffer.reserve(1, Bytes(0), true), StagingBuffer::Reserve::kOk);
}

TEST(StagingBuffer, ClaimBlocksOnInFlightUntilCommit) {
  StagingBuffer buffer(depth_options(2), nullptr);
  ASSERT_EQ(buffer.reserve(0, Bytes(0), true), StagingBuffer::Reserve::kOk);
  std::atomic<bool> claimed{false};
  std::thread consumer([&] {
    const auto got = buffer.claim(0);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(got->late);
    claimed.store(true);
  });
  // Give the consumer a chance to block, then deliver.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(claimed.load());
  buffer.commit(0, response_of(0, 8));
  consumer.join();
  EXPECT_TRUE(claimed.load());
  EXPECT_EQ(buffer.late_hits(), 1u);
}

TEST(StagingBuffer, FailedSlotFallsThroughToDemand) {
  StagingBuffer buffer(depth_options(2), nullptr);
  ASSERT_EQ(buffer.reserve(0, Bytes(0), true), StagingBuffer::Reserve::kOk);
  buffer.fail(0);
  EXPECT_FALSE(buffer.claim(0).has_value());
  EXPECT_EQ(buffer.hits(), 0u);
}

TEST(StagingBuffer, ShutdownWakesBlockedClaimAndCountsCancellations) {
  StagingBuffer buffer(depth_options(4), nullptr);
  ASSERT_EQ(buffer.reserve(0, Bytes(0), true), StagingBuffer::Reserve::kOk);
  ASSERT_EQ(buffer.reserve(1, Bytes(0), true), StagingBuffer::Reserve::kOk);
  buffer.commit(1, response_of(1, 50));
  std::thread consumer([&] { EXPECT_FALSE(buffer.claim(0).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  buffer.shutdown();
  consumer.join();
  EXPECT_EQ(buffer.cancelled(), 2u);  // one in flight + one staged
  EXPECT_EQ(buffer.reserve(2, Bytes(0), true), StagingBuffer::Reserve::kShutdown);
  EXPECT_FALSE(buffer.claim(5).has_value());
}

TEST(StagingBuffer, HorizonBoundsSchedulerLead) {
  PrefetchOptions options = depth_options(2);
  options.horizon = 4;
  StagingBuffer buffer(options, nullptr);
  // Consumer is at 0 (never claimed): cursor may not pass horizon.
  buffer.advance_cursor(5);
  EXPECT_EQ(buffer.reserve(5, Bytes(0), false), StagingBuffer::Reserve::kNoCredit);
  // Consumer progress re-opens the window.
  EXPECT_FALSE(buffer.claim(3).has_value());
  EXPECT_EQ(buffer.reserve(5, Bytes(0), false), StagingBuffer::Reserve::kOk);
}

TEST(StagingBuffer, GaugesTrackOccupancy) {
  MetricsRegistry metrics;
  register_prefetch_metrics(metrics);
  StagingBuffer buffer(depth_options(4), &metrics);
  ASSERT_EQ(buffer.reserve(0, Bytes(0), true), StagingBuffer::Reserve::kOk);
  buffer.commit(0, response_of(0, 64));
  EXPECT_EQ(metrics.gauge(kBufferDepth).value(), 1.0);
  EXPECT_EQ(metrics.gauge(kBufferBytes).value(), 64.0);
  (void)buffer.claim(0);
  EXPECT_EQ(metrics.gauge(kBufferDepth).value(), 0.0);
  EXPECT_EQ(metrics.counter(kHits).value(), 1u);
}

TEST(Admission, CacheResidentSamplesAreSkipped) {
  cache::LruCache cache(Bytes(1000));
  cache.access(3, Bytes(100));
  PrefetchOptions options = depth_options(4);
  options.cache = &cache;
  EXPECT_EQ(admit(options, 3, 0, Bytes(50000)), Admission::kSkip);
  EXPECT_EQ(admit(options, 4, 0, Bytes(50000)), Admission::kPrefetch);
  EXPECT_EQ(cache.resident_size(3), Bytes(100));
  EXPECT_EQ(cache.resident_size(4), Bytes(0));
}

TEST(Admission, TinyKnownPayloadsAreDeprioritized) {
  PrefetchOptions options = depth_options(4);
  options.deprioritize_below = Bytes(4096);
  EXPECT_EQ(admit(options, 0, 0, Bytes(1024)), Admission::kDeprioritize);
  EXPECT_EQ(admit(options, 0, 0, Bytes(300000)), Admission::kPrefetch);
  options.deprioritize_below = Bytes(0);
  EXPECT_EQ(admit(options, 0, 0, Bytes(1024)), Admission::kPrefetch);
}

TEST(Admission, OffloadedSamplesDeprioritizedWithoutSizeKnowledge) {
  PrefetchOptions options = depth_options(4);
  EXPECT_EQ(admit(options, 0, 2, std::nullopt), Admission::kDeprioritize);
  EXPECT_EQ(admit(options, 0, 0, std::nullopt), Admission::kPrefetch);
  options.deprioritize_offloaded = false;
  EXPECT_EQ(admit(options, 0, 2, std::nullopt), Admission::kPrefetch);
  // A known size overrides the directive heuristic.
  options.deprioritize_offloaded = true;
  EXPECT_EQ(admit(options, 0, 2, Bytes(300000)), Admission::kPrefetch);
}

}  // namespace
}  // namespace sophon::prefetch
