// Concurrency stress for the observability substrates: the span rings'
// single-writer publish protocol and the metrics registry's create-on-use
// maps. Run under tools/check.sh --tsan, where a missing release/acquire
// pair or a locked-map slip shows up as a reported race.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/critpath/critpath.h"
#include "obs/critpath/whatif.h"
#include "obs/trace.h"
#include "sim/cluster.h"
#include "util/telemetry.h"

namespace sophon {
namespace {

TEST(ObsConcurrency, ManyThreadsRecordIntoPrivateRings) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kSpansPerThread = 2000;
  obs::Tracer tracer(kSpansPerThread + 16);
  tracer.set_enabled(true);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      tracer.set_thread_label("worker-" + std::to_string(t));
      for (std::size_t i = 0; i < kSpansPerThread; ++i) {
        obs::Span span(tracer, obs::SpanCategory::kPreprocess, "op");
        span.args().sample = static_cast<std::int64_t>(i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto spans = tracer.drain();
  EXPECT_EQ(spans.size(), kThreads * kSpansPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.labels().size(), kThreads);
}

TEST(ObsConcurrency, RecordingRacesEnableToggleSafely) {
  // Flipping the master switch while writers are mid-loop must never tear a
  // span or trip TSan; spans recorded around the flip are simply best-effort.
  obs::Tracer tracer(1 << 14);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        obs::Span span(tracer, obs::SpanCategory::kFetch, "fetch");
        span.args().sample = static_cast<std::int64_t>(i++);
      }
    });
  }
  std::thread toggler([&] {
    for (int i = 0; i < 200; ++i) {
      tracer.set_enabled(i % 2 == 0);
      std::this_thread::yield();
    }
    tracer.set_enabled(false);
    stop.store(true, std::memory_order_relaxed);
  });
  toggler.join();
  for (auto& thread : writers) thread.join();
  const auto spans = tracer.drain();  // all threads quiesced: safe to drain
  for (const auto& span : spans) {
    EXPECT_GE(span.end_ns, span.begin_ns);
  }
}

TEST(ObsConcurrency, TrackRegistrationRacesRecording) {
  obs::Tracer tracer(1 << 12);
  tracer.set_enabled(true);
  std::vector<std::thread> threads;
  threads.reserve(6);
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < 500; ++i) {
        const auto track = tracer.track("lane-" + std::to_string((t + i) % 7));
        tracer.record_at(track, obs::SpanCategory::kTransfer, "transfer",
                         Seconds(static_cast<double>(i)), Seconds(static_cast<double>(i) + 0.5));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tracer.drain().size(), 6u * 500u);
  // 7 shared virtual tracks + 6 thread lanes.
  EXPECT_EQ(tracer.labels().size(), 13u);
}

TEST(ObsConcurrency, TelemetryRegistryCreateExposeSnapshotRace) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, t] {
      for (int i = 0; i < 2000; ++i) {
        registry.counter("sophon_c_" + std::to_string(i % 16)).increment();
        registry.gauge("sophon_g_" + std::to_string(t)).set_max(static_cast<double>(i));
        registry.duration("sophon_d").observe(Seconds(1e-6));
        registry.histogram("sophon_h").observe(Seconds(1e-3));
      }
    });
  }
  std::thread scraper([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string text = registry.expose();
      EXPECT_FALSE(text.empty());
      const MetricsSnapshot snap = registry.snapshot();
      (void)snap;
    }
  });
  for (auto& thread : writers) thread.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  std::uint64_t total = 0;
  for (int i = 0; i < 16; ++i) {
    total += registry.counter("sophon_c_" + std::to_string(i)).value();
  }
  EXPECT_EQ(total, 4u * 2000u);
  EXPECT_EQ(registry.duration("sophon_d").snapshot().count(), 4u * 2000u);
  EXPECT_EQ(registry.histogram("sophon_h").count(), 4u * 2000u);
}

obs::critpath::EpochParams concurrency_params() {
  obs::critpath::EpochParams params;
  params.cluster.compute_cores = 4;
  params.cluster.storage_cores = 2;
  params.cluster.bandwidth = Bandwidth::mbps(400.0);
  params.cluster.batch_size = 32;
  params.gpu_batch_time = Seconds(0.02);
  params.seed = 42;
  params.epoch_index = 1;
  params.num_samples = 384;
  params.discipline = obs::critpath::Discipline::kWorkerReplay;
  params.replay.workers = 3;
  params.replay.prefetch.depth = 8;
  return params;
}

obs::critpath::SampleDemand concurrency_demand(std::size_t i) {
  obs::critpath::SampleDemand d;
  d.storage_cpu = i % 3 == 0 ? Seconds(0.002) : Seconds(0.0);
  d.compute_cpu = Seconds(0.001 * static_cast<double>(i % 4));
  d.wire = Bytes(static_cast<std::int64_t>((i % 7 + 1)) * 65536);
  d.delay = i % 11 == 0 ? Seconds(0.0005) : Seconds(0.0);
  return d;
}

TEST(ObsConcurrency, AnalyzerIsDeterministicAcrossConcurrentRuns) {
  // The analyzer holds no global state: N threads analyzing the same epoch
  // must produce byte-identical blame vectors and scenario rankings.
  const auto params = concurrency_params();
  const auto reference =
      obs::critpath::project(concurrency_demand, params,
                             obs::critpath::default_scenarios(params))
          .to_json()
          .dump();
  constexpr std::size_t kThreads = 6;
  std::vector<std::string> dumps(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&params, &dumps, t] {
      dumps[t] = obs::critpath::project(concurrency_demand, params,
                                        obs::critpath::default_scenarios(params))
                     .to_json()
                     .dump();
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& dump : dumps) {
    EXPECT_EQ(dump, reference);
  }
}

TEST(ObsConcurrency, AnalyzerRunsWhileTracerWritersAreLive) {
  // An operator may re-time the last epoch while the next one is already
  // recording spans: the analyzer touches no tracer state, so it must fold
  // cleanly against live writers (TSan enforces the claim).
  obs::Tracer tracer(1 << 12);
  tracer.set_enabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&tracer, &stop] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        obs::Span span(tracer, obs::SpanCategory::kPreprocess, "op");
        span.args().sample = static_cast<std::int64_t>(i++);
      }
    });
  }
  const auto params = concurrency_params();
  const auto a = obs::critpath::analyze_epoch(concurrency_demand, params);
  const auto b = obs::critpath::analyze_epoch(concurrency_demand, params);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_GT(a.epoch_time.value(), 0.0);
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : writers) thread.join();
  tracer.set_enabled(false);
  const auto spans = tracer.drain();
  for (const auto& span : spans) {
    EXPECT_GE(span.end_ns, span.begin_ns);
  }
}

}  // namespace
}  // namespace sophon
