// Fault sweep: epoch-time and traffic impact of an unreliable fetch path.
//
// Not a paper figure — an operational question the paper's Fig. 4 gestures
// at: how does SOPHON's plan hold up when the storage node starts failing?
// We replay seeded fault traces (transient failures with retries, corrupt
// payloads, permanent offload failures with graceful degradation to raw
// fetches) over the SOPHON plan's flows and report the damage. See
// EXPERIMENTS.md ("Fault sweep") for how to read the output.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/decision.h"
#include "core/profiler.h"
#include "net/fault.h"
#include "net/resilience.h"
#include "net/wire.h"
#include "sim/trainer.h"

namespace sophon {
namespace {

struct Scenario {
  std::string name;
  net::FaultProfile profile;
};

int run() {
  const auto catalog = dataset::Catalog::generate(dataset::openimages_profile(8000), 42);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto config = bench::paper_config();
  const auto gpu = model::GpuModel::lookup(config.net, config.gpu);
  const Seconds batch_time = gpu.batch_time(config.cluster.batch_size);

  const std::size_t num_batches =
      (catalog.size() + config.cluster.batch_size - 1) / config.cluster.batch_size;
  const Seconds gpu_epoch_time = batch_time * static_cast<double>(num_batches);

  const auto profiles = core::profile_stage2(catalog, pipe, cm);
  const auto decision = core::decide_offloading(profiles, config.cluster, gpu_epoch_time);
  const auto& plan = decision.plan;

  const auto flow = [&](std::size_t idx) {
    const auto& meta = catalog.sample(idx);
    const std::size_t prefix = plan.prefix(idx);
    sim::SampleFlow f;
    f.storage_cpu = prefix > 0 ? pipe.prefix_cost(meta.raw, prefix, cm) : Seconds(0.0);
    f.wire = net::wire_size(pipe.shape_at(meta.raw, prefix));
    f.compute_cpu = pipe.suffix_cost(meta.raw, prefix, cm);
    return f;
  };
  const auto raw_flow = [&](std::size_t idx) {
    const auto& meta = catalog.sample(idx);
    sim::SampleFlow f;
    f.wire = net::wire_size(pipe.shape_at(meta.raw, 0));
    f.compute_cpu = pipe.suffix_cost(meta.raw, 0, cm);
    return f;
  };

  net::RetryPolicy retry;
  retry.max_attempts = 4;
  retry.initial_backoff = Seconds::millis(5.0);
  retry.seed = 42;

  auto scenario = [](std::string name) {
    Scenario s;
    s.name = std::move(name);
    s.profile.seed = 42;
    s.profile.offload_only = true;
    return s;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back(scenario("healthy"));
  for (const double p : {0.02, 0.05, 0.10, 0.20}) {
    auto s = scenario(strf("transient %2.0f%%", 100.0 * p));
    s.profile.transient_fail_prob = p;
    scenarios.push_back(s);
  }
  {
    auto s = scenario("corrupt 5%");
    s.profile.corrupt_prob = 0.05;
    scenarios.push_back(s);
  }
  {
    auto s = scenario("permanent 10%");
    s.profile.permanent_fail_prob = 0.10;
    scenarios.push_back(s);
  }
  {
    auto s = scenario("link spikes 10%");
    s.profile.latency_spike_prob = 0.10;
    s.profile.latency_spike = Seconds::millis(50.0);
    s.profile.bandwidth_dip_prob = 0.10;
    s.profile.bandwidth_dip_factor = 4.0;
    scenarios.push_back(s);
  }

  bench::print_header(
      "Fault sweep — SOPHON plan under an unreliable fetch path",
      "n/a (operational extension; paper assumes a healthy 500 Mbps link)");

  TextTable table({"scenario", "epoch time", "traffic", "retries", "degraded", "failed",
                   "vs healthy"});
  double healthy_epoch = 0.0;
  for (const auto& s : scenarios) {
    const net::FaultInjector faults(s.profile);
    sim::FaultReplayStats replay;
    auto cluster = config.cluster;
    std::function<sim::SampleFlow(std::size_t)> run_flow = flow;
    if (faults.enabled()) {
      cluster.link_faults = &faults;
      run_flow = sim::faulty_flow(flow, raw_flow, faults, retry, 0, &replay);
    }
    const auto stats =
        sim::simulate_epoch_flows(catalog.size(), run_flow, cluster, batch_time, 42, 0);
    if (healthy_epoch == 0.0) healthy_epoch = stats.epoch_time.value();
    table.add_row({s.name, strf("%.1f s", stats.epoch_time.value()),
                   bench::gb(stats.traffic), strf("%llu", (unsigned long long)replay.retries),
                   strf("%zu", replay.degraded), strf("%zu", replay.failed),
                   strf("%+.1f%%", 100.0 * (stats.epoch_time.value() / healthy_epoch - 1.0))});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nDegraded samples ship raw bytes (full local pipeline), so permanent\n"
      "offload failures show up as extra traffic, not a stalled epoch.\n");
  return 0;
}

}  // namespace
}  // namespace sophon

int main() { return sophon::run(); }
