// Ablation A5 — multi-tenant storage-CPU scheduling (paper §6 future work).
//
// Three jobs share one storage node's preprocessing cores. Compare the
// greedy marginal-gain scheduler against a naive equal split, for both
// objectives.
#include <memory>

#include "bench_common.h"
#include "core/multitenant.h"
#include "core/profiler.h"
#include "net/wire.h"
#include "sim/multijob.h"

using namespace sophon;

namespace {

core::TenantJob make_job(const char* name, const dataset::Catalog& catalog, double mbps,
                         model::NetKind net) {
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  core::TenantJob job;
  job.name = name;
  job.profiles = core::profile_stage2(catalog, pipe, cm);
  job.cluster.bandwidth = Bandwidth::mbps(mbps);
  const auto gpu = model::GpuModel::lookup(net, model::GpuKind::kRtx6000);
  job.gpu_epoch_time =
      gpu.batch_time(job.cluster.batch_size) *
      static_cast<double>((catalog.size() + job.cluster.batch_size - 1) /
                          job.cluster.batch_size);
  return job;
}

void print_alloc(const char* label, const std::vector<core::TenantJob>& jobs,
                 const core::CoreAllocation& alloc) {
  TextTable table({"job", "cores", "predicted epoch"});
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    table.add_row({jobs[j].name, strf("%d", alloc.cores[j]),
                   strf("%.1f s", alloc.predicted_epoch[j].value())});
  }
  std::printf("%s:\n%smakespan %.1f s, total %.1f s\n\n", label, table.render().c_str(),
              alloc.max_epoch.value(), alloc.total_epoch.value());
}

}  // namespace

int main() {
  bench::print_header("Ablation A5 — multi-tenant storage-CPU scheduler (§6 extension)",
                      "(future work in the paper: allocate storage-side CPUs among jobs)");

  const auto oi_a = dataset::Catalog::generate(dataset::openimages_profile(40000), 1);
  const auto oi_b = dataset::Catalog::generate(dataset::openimages_profile(20000), 2);
  const auto in_c = dataset::Catalog::generate(dataset::imagenet_profile(45000), 3);
  const std::vector<core::TenantJob> jobs = {
      make_job("job-A (OpenImages 40k, AlexNet, 500 Mbps)", oi_a, 500.0,
               model::NetKind::kAlexNet),
      make_job("job-B (OpenImages 20k, ResNet18, 250 Mbps)", oi_b, 250.0,
               model::NetKind::kResNet18),
      make_job("job-C (ImageNet 45k, AlexNet, 500 Mbps)", in_c, 500.0,
               model::NetKind::kAlexNet),
  };

  for (const int budget : {4, 8, 16}) {
    std::printf("---- storage-core budget: %d ----\n", budget);
    print_alloc("equal split", jobs, core::equal_split(jobs, budget));
    print_alloc("greedy (minimise total)", jobs,
                core::allocate_storage_cores(jobs, budget,
                                             core::SchedulerObjective::kMinimizeTotal));
    print_alloc("greedy (minimise makespan)", jobs,
                core::allocate_storage_cores(jobs, budget,
                                             core::SchedulerObjective::kMinimizeMakespan));
  }

  // --- DES-grounded check: shared pool vs hard partitions -----------------
  // Three jobs share one link and one 6-core storage pool. "Shared pool":
  // each plans as if it owned all 6 cores and they contend (work-conserving
  // sharing). "Partitioned": the greedy scheduler carves private slices and
  // each job plans within its slice (the isolation/quota deployment).
  std::printf("---- discrete-event check (shared 500 Mbps link, 6 shared cores) ----\n");
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto cat_a = dataset::Catalog::generate(dataset::openimages_profile(20000), 11);
  const auto cat_b = dataset::Catalog::generate(dataset::openimages_profile(20000), 12);
  const auto cat_c = dataset::Catalog::generate(dataset::imagenet_profile(30000), 13);
  const dataset::Catalog* catalogs[] = {&cat_a, &cat_b, &cat_c};

  sim::ClusterConfig shared;
  shared.bandwidth = Bandwidth::mbps(500.0);
  shared.storage_cores = 6;
  const auto gpu = model::GpuModel::lookup(model::NetKind::kAlexNet, model::GpuKind::kRtx6000);
  const Seconds batch_time = gpu.batch_time(256);

  auto make_spec = [&](const dataset::Catalog& catalog, int plan_cores, int private_cores) {
    auto cluster = shared;
    cluster.storage_cores = plan_cores;
    const auto profiles = core::profile_stage2(catalog, pipe, cm);
    const Seconds t_g = batch_time * static_cast<double>((catalog.size() + 255) / 256);
    auto decision = core::decide_offloading(profiles, cluster, t_g);
    sim::JobSpec spec;
    spec.num_samples = catalog.size();
    spec.gpu_batch_time = batch_time;
    spec.private_storage_cores = private_cores;
    auto plan = std::make_shared<core::OffloadPlan>(std::move(decision.plan));
    spec.flow = [&catalog, &pipe, &cm, plan](std::size_t idx) {
      const auto& meta = catalog.sample(idx);
      const std::size_t prefix = plan->prefix(idx);
      sim::SampleFlow f;
      f.storage_cpu = prefix > 0 ? pipe.prefix_cost(meta.raw, prefix, cm) : Seconds(0.0);
      f.wire = net::wire_size(pipe.shape_at(meta.raw, prefix));
      f.compute_cpu = pipe.suffix_cost(meta.raw, prefix, cm);
      return f;
    };
    return spec;
  };

  // Uncoordinated: plan for 6, contend on 6.
  std::vector<sim::JobSpec> uncoordinated;
  for (const auto* catalog : catalogs) uncoordinated.push_back(make_spec(*catalog, 6, -1));
  const auto free_for_all = sim::simulate_multijob_epoch(uncoordinated, shared);

  // Partitioned: the greedy scheduler's allocation, made physical.
  std::vector<core::TenantJob> tenant_jobs;
  for (const auto* catalog : catalogs) {
    core::TenantJob job;
    job.profiles = core::profile_stage2(*catalog, pipe, cm);
    job.gpu_epoch_time = batch_time * static_cast<double>((catalog->size() + 255) / 256);
    job.cluster = shared;
    tenant_jobs.push_back(std::move(job));
  }
  const auto alloc = core::allocate_storage_cores(tenant_jobs, shared.storage_cores,
                                                  core::SchedulerObjective::kMinimizeMakespan);
  std::vector<sim::JobSpec> coordinated;
  for (std::size_t j = 0; j < 3; ++j) {
    coordinated.push_back(make_spec(*catalogs[j], std::max(alloc.cores[j], 0), alloc.cores[j]));
  }
  const auto partitioned = sim::simulate_multijob_epoch(coordinated, shared);

  TextTable des({"scheme", "job", "epoch time", "offloaded", "traffic"});
  const char* names[] = {"OI-20k", "OI-20k'", "IN-30k"};
  for (std::size_t j = 0; j < 3; ++j) {
    des.add_row({"shared pool (plan for 6, contend)", names[j],
                 strf("%.1f s", free_for_all.per_job[j].epoch_time.value()),
                 strf("%zu", free_for_all.per_job[j].offloaded_samples),
                 strf("%.2f GB", free_for_all.per_job[j].traffic.as_double() / 1e9)});
  }
  for (std::size_t j = 0; j < 3; ++j) {
    des.add_row({strf("partitioned (greedy: %d cores)", alloc.cores[j]), names[j],
                 strf("%.1f s", partitioned.per_job[j].epoch_time.value()),
                 strf("%zu", partitioned.per_job[j].offloaded_samples),
                 strf("%.2f GB", partitioned.per_job[j].traffic.as_double() / 1e9)});
  }
  std::printf("%s", des.render().c_str());
  std::printf(
      "makespan: shared pool %.1f s vs partitioned %.1f s\n"
      "(Finding: a work-conserving shared pool beats hard partitions — idle private\n"
      " cores are wasted capacity, and under link sharing each job's effective T_Net\n"
      " is higher than the partition planner's per-job model assumes, which makes\n"
      " offloading MORE valuable, not less. The greedy allocator is the right tool\n"
      " when quotas/isolation force partitions; otherwise share the pool.)\n",
      free_for_all.makespan.value(), partitioned.makespan.value());
  return 0;
}
