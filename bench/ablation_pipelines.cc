// Ablation A12 — pipeline variants: training, heavy augmentation,
// validation.
//
// SOPHON's profiling and decision machinery is pipeline-agnostic; this
// bench runs it over three realistic pipelines and shows how the optimal
// cut point and the offloading payoff move:
//   * standard train:  Decode → RRC → Flip → ToTensor → Normalize
//   * augmented train: Decode → RRC → ColorJitter → Flip → ToTensor → Norm
//   * validation:      Decode → Resize(256) → CenterCrop(224) → ToTensor →
//                      Normalize (deterministic — preprocess-once is safe)
#include <map>

#include "bench_common.h"
#include "core/profiler.h"
#include "pipeline/extra_ops.h"

using namespace sophon;

int main() {
  bench::print_header("Ablation A12 — pipeline variants (OpenImages, 500 Mbps, 8 cores)",
                      "(beyond the paper: its evaluation uses the one standard pipeline)");

  const auto catalog = bench::openimages_catalog();
  const pipeline::CostModel cm;
  const auto gpu = model::GpuModel::lookup(model::NetKind::kAlexNet, model::GpuKind::kRtx6000);
  auto config = bench::paper_config(8);
  const Seconds batch_time = gpu.batch_time(config.cluster.batch_size);
  const Seconds t_g = batch_time * static_cast<double>(
                                       (catalog.size() + config.cluster.batch_size - 1) /
                                       config.cluster.batch_size);

  struct Variant {
    const char* name;
    pipeline::Pipeline pipe;
    bool has_random_ops;
  };
  Variant variants[] = {
      {"standard train", pipeline::Pipeline::standard(), true},
      {"augmented train", pipeline::augmented_pipeline(), true},
      {"validation", pipeline::validation_pipeline(), false},
  };

  TextTable table({"pipeline", "ops", "beneficial", "typical cut", "No-Off epoch",
                   "SOPHON epoch", "traffic saved", "reuse-safe"});
  for (auto& v : variants) {
    const auto profiles = core::profile_stage2(catalog, v.pipe, cm);
    const auto decision = core::decide_offloading(profiles, config.cluster, t_g);
    const auto base =
        sim::simulate_epoch(catalog, v.pipe, cm, config.cluster, batch_time, {}, 42, 0);
    const auto off = sim::simulate_epoch(catalog, v.pipe, cm, config.cluster, batch_time,
                                         decision.plan.assignment(), 42, 0);
    // Most common nonzero cut point.
    std::map<std::uint8_t, std::size_t> cuts;
    for (std::size_t i = 0; i < decision.plan.size(); ++i) {
      if (decision.plan.prefix(i) > 0) ++cuts[decision.plan.prefix(i)];
    }
    std::uint8_t top_cut = 0;
    std::size_t top_count = 0;
    for (const auto& [cut, count] : cuts) {
      if (count > top_count) {
        top_cut = cut;
        top_count = count;
      }
    }
    table.add_row(
        {v.name, strf("%zu", v.pipe.size()), strf("%zu", decision.beneficial_candidates),
         top_cut == 0 ? "-"
                      : strf("after op %d (%s)", top_cut,
                             std::string(v.pipe.op(top_cut - 1).name()).c_str()),
         strf("%.1f s", base.epoch_time.value()), strf("%.1f s", off.epoch_time.value()),
         strf("%.2fx", base.traffic.as_double() / off.traffic.as_double()),
         v.has_random_ops ? "no (random augmentation)" : "yes (deterministic)"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\n(For the deterministic validation pipeline, preprocess-once reuse — see\n"
      " ablation_reuse — is safe and strictly better; SOPHON matters for the two\n"
      " training pipelines, where augmentations must stay fresh.)\n");
  return 0;
}
