// Figure 2 — SOPHON design overview, reproduced as an executable walkthrough.
//
// The paper's Figure 2 is a block diagram of steps (a)–(f). This binary
// *runs* each step on the real byte path and prints what happened, so the
// figure is verified rather than drawn:
//   (a) stage-1 profiler triages the bottleneck,
//   (b) stage-2 profiler records per-sample sizes/times,
//   (c) the decision engine builds the per-sample plan,
//   (d) fetch requests carry the offloading directives,
//   (e) the storage server executes the prefix and replies,
//   (f) the compute node finishes preprocessing and feeds the GPU.
#include "bench_common.h"
#include "core/decision.h"
#include "core/profiler.h"
#include "net/rpc.h"
#include "net/wire.h"
#include "storage/dataset_store.h"
#include "storage/server.h"
#include "util/check.h"

using namespace sophon;

int main() {
  bench::print_header("Figure 2 — design walkthrough (executed, not drawn)",
                      "steps (a)-(f) of the SOPHON workflow");

  // A small materialised corpus so every step below moves real bytes.
  auto profile = dataset::openimages_profile(48);
  profile.min_pixels = 1.2e5;
  profile.max_pixels = 9e5;
  const auto parametric = dataset::Catalog::generate(profile, 42);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  storage::DatasetStore store(parametric, 42, profile.quality);
  storage::StorageServer server(store, pipe, cm, {.seed = 42});
  net::LoopbackChannel channel(server);

  std::vector<std::vector<std::uint8_t>> blobs;
  for (std::size_t i = 0; i < parametric.size(); ++i) blobs.push_back(*store.get(i));
  const auto catalog = dataset::Catalog::from_blobs(blobs);

  sim::ClusterConfig cluster;
  cluster.bandwidth = Bandwidth::mbps(4.0);
  cluster.storage_cores = 4;
  const Seconds batch_time = Seconds::millis(20.0);

  // (a) stage-1 triage.
  const auto throughput = core::profile_stage1(catalog, pipe, cm, cluster, batch_time);
  std::printf("(a) profiler, stage 1: gpu %.0f / io %.0f / cpu %.0f samples/s -> %s-bound\n",
              throughput.gpu_samples_per_sec, throughput.io_samples_per_sec,
              throughput.cpu_samples_per_sec,
              std::string(core::bottleneck_name(throughput.bottleneck())).c_str());
  if (!throughput.io_bound()) {
    std::printf("    not I/O-bound: SOPHON would stop here (standard training).\n");
    return 0;
  }

  // (b) stage-2 per-sample trace.
  const auto profiles = core::profile_stage2(catalog, pipe, cm);
  std::size_t beneficial = 0;
  for (const auto& p : profiles) {
    if (p.benefits()) ++beneficial;
  }
  std::printf("(b) profiler, stage 2: %zu samples traced; %zu shrink at an intermediate stage\n",
              profiles.size(), beneficial);

  // (c) decision engine.
  const Seconds t_g = batch_time * static_cast<double>(
                                       (catalog.size() + cluster.batch_size - 1) /
                                       cluster.batch_size);
  const auto decision = core::decide_offloading(profiles, cluster, t_g);
  std::printf("(c) decision engine: offload %zu samples; predicted T_Net %.1fs -> %.1fs "
              "(T_CS %.1fs)\n",
              decision.offloaded, decision.baseline.t_net.value(),
              decision.final_cost.t_net.value(), decision.final_cost.t_cs.value());

  // (d)+(e)+(f) one epoch of real fetches.
  Bytes raw_equivalent;
  std::size_t directives_sent = 0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    net::FetchRequest request;                      // (d) directive in the request
    request.sample_id = i;
    request.directive.prefix_len = decision.plan.prefix(i);
    if (request.directive.prefix_len > 0) ++directives_sent;
    const auto response = channel.fetch(request);   // (e) server runs the prefix
    const auto payload = net::unpack_response(response);
    const auto tensor = pipe.run_seeded(*payload, response.stage, pipe.size(),
                                        storage::augmentation_seed(42, 0, i));  // (f)
    SOPHON_CHECK(std::get<image::Tensor>(tensor).width() == 224);
    raw_equivalent += net::wire_size(catalog.sample(i).raw);
  }
  std::printf("(d) fetch requests: %zu of %zu carried a nonzero offload directive\n",
              directives_sent, catalog.size());
  std::printf("(e) storage server: %zu offloaded prefixes executed, %s modeled CPU\n",
              server.offloaded_requests(), human_seconds(server.modeled_cpu_time()).c_str());
  std::printf("(f) compute node: every sample finished to a 224x224 tensor; traffic %s vs %s "
              "raw (%.2fx less)\n",
              human_bytes(channel.traffic()).c_str(), human_bytes(raw_equivalent).c_str(),
              raw_equivalent.as_double() / channel.traffic().as_double());
  return 0;
}
