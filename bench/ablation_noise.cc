// Ablation A11 — robustness of the decision engine to profiling noise.
//
// Stage-2 measurements ride along with a real training epoch, so they carry
// wall-clock noise. We perturb the per-op times (and sizes, which in a real
// system are exact — perturbed here only as a worst case) by multiplicative
// noise, plan on the noisy profiles, and evaluate the resulting plan under
// the *true* profiles: how much epoch time does SOPHON lose to noise?
#include "bench_common.h"
#include "core/profiler.h"
#include "util/rng.h"

using namespace sophon;

namespace {

std::vector<core::SampleProfile> perturb_times(const std::vector<core::SampleProfile>& profiles,
                                               double relative_noise, std::uint64_t seed) {
  Rng rng(seed);
  auto noisy = profiles;
  for (auto& p : noisy) {
    Seconds prefix;
    for (std::size_t op = 0; op < p.op_costs.size(); ++op) {
      const double factor = std::max(0.05, 1.0 + relative_noise * rng.normal());
      p.op_costs[op] = p.op_costs[op] * factor;
      if (op < p.min_stage) prefix += p.op_costs[op];
    }
    p.prefix_time = prefix;
  }
  return noisy;
}

}  // namespace

int main() {
  bench::print_header("Ablation A11 — decision robustness to stage-2 timing noise (OpenImages)",
                      "(not in paper; stage-2 rides along a real epoch and is inherently noisy)");

  const auto catalog = bench::openimages_catalog();
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto truth = core::profile_stage2(catalog, pipe, cm);
  const auto gpu = model::GpuModel::lookup(model::NetKind::kAlexNet, model::GpuKind::kRtx6000);

  TextTable table({"cores", "timing noise", "offloaded", "epoch time (true costs)",
                   "regret vs noise-free"});
  for (const int cores : {1, 4, 48}) {
    auto config = bench::paper_config(cores);
    const Seconds batch_time = gpu.batch_time(config.cluster.batch_size);
    const Seconds t_g = batch_time * static_cast<double>(
                                         (catalog.size() + config.cluster.batch_size - 1) /
                                         config.cluster.batch_size);
    double noise_free_epoch = 0.0;
    for (const double noise : {0.0, 0.1, 0.3, 0.5}) {
      const auto profiles = noise == 0.0 ? truth : perturb_times(truth, noise, 7);
      const auto decision = core::decide_offloading(profiles, config.cluster, t_g);
      // Evaluate the noisy plan against reality.
      const auto stats = sim::simulate_epoch(catalog, pipe, cm, config.cluster, batch_time,
                                             decision.plan.assignment(), 42, 0);
      if (noise == 0.0) noise_free_epoch = stats.epoch_time.value();
      table.add_row({strf("%d", cores), strf("±%.0f%%", noise * 100.0),
                     strf("%zu", decision.offloaded), strf("%.1f s", stats.epoch_time.value()),
                     strf("+%.1f%%", 100.0 * (stats.epoch_time.value() - noise_free_epoch) /
                                         noise_free_epoch)});
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
