// Table 1 — capability matrix: existing offloading frameworks vs SOPHON.
//
// The paper's table is qualitative; here each claim about *our* policies is
// verified programmatically against an actual plan, so the printed matrix
// is derived from behaviour, not hard-coded.
#include "bench_common.h"
#include "core/policy.h"
#include "core/profiler.h"

using namespace sophon;

namespace {

struct Capabilities {
  bool operation_selective = false;  // offloads a strict subset of ops
  bool data_partial = false;         // offloads only part of the dataset
  bool data_selective = false;       // chooses *which* samples per their traits
  bool near_storage = false;         // executes on the storage node
};

Capabilities probe(core::PolicyKind kind, const core::PlanContext& ctx,
                   const std::vector<core::SampleProfile>& profiles) {
  const auto decision = core::make_policy(kind)->plan(ctx);
  Capabilities caps;
  caps.near_storage = decision.plan.offloaded_count() > 0;
  const std::size_t n = decision.plan.size();
  bool any_partial_prefix = false;
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = decision.plan.prefix(i);
    if (p > 0 && p < 5) any_partial_prefix = true;
  }
  caps.operation_selective = any_partial_prefix;
  caps.data_partial = decision.plan.offloaded_count() > 0 && decision.plan.offloaded_count() < n;
  // Data-selective: offloaded samples are chosen by their characteristics —
  // every offloaded sample must be one stage-2 says benefits.
  if (caps.data_partial) {
    caps.data_selective = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (decision.plan.prefix(i) > 0 && !profiles[i].benefits()) caps.data_selective = false;
    }
  }
  return caps;
}

const char* mark(bool b) {
  return b ? "yes" : "-";
}

}  // namespace

int main() {
  bench::print_header("Table 1 — offloading capability matrix (verified against plans)",
                      "SOPHON is the only framework with operation-selective, data-partial, "
                      "data-selective near-storage offloading");

  const auto catalog = dataset::Catalog::generate(dataset::openimages_profile(8000), 42);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto profiles = core::profile_stage2(catalog, pipe, cm);

  core::PlanContext ctx;
  ctx.catalog = &catalog;
  ctx.pipeline = &pipe;
  ctx.cost_model = &cm;
  ctx.cluster.bandwidth = Bandwidth::mbps(100.0);
  ctx.gpu_batch_time = model::GpuModel::lookup(model::NetKind::kAlexNet, model::GpuKind::kRtx6000)
                           .batch_time(ctx.cluster.batch_size);
  ctx.seed = 42;

  TextTable table(
      {"policy", "operation-selective", "data-partial", "data-selective", "near-storage"});
  for (const auto kind :
       {core::PolicyKind::kNoOff, core::PolicyKind::kAllOff, core::PolicyKind::kFastFlow,
        core::PolicyKind::kResizeOff, core::PolicyKind::kSophon}) {
    const auto caps = probe(kind, ctx, profiles);
    table.add_row({std::string(core::policy_kind_name(kind)), mark(caps.operation_selective),
                   mark(caps.data_partial), mark(caps.data_selective),
                   mark(caps.near_storage)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nNote: FastFlow *can* offload near storage in other regimes; in the paper's\n"
      "I/O-bound setups its coarse profile always declines (hence '-' here).\n");
  return 0;
}
