// Ablation A9 — bandwidth sensitivity: where SOPHON helps and where it
// correctly does nothing.
//
// Paper §5: SOPHON targets remote-I/O-bound training; on a fast enough link
// the stage-1 profiler must classify the workload as GPU/CPU-bound and
// decline to offload (FastFlow-like behaviour would be a bug). The sweep
// shows the benefit shrinking with bandwidth and SOPHON bowing out cleanly.
#include "bench_common.h"

using namespace sophon;

int main() {
  bench::print_header("Ablation A9 — link bandwidth sweep (OpenImages, ResNet18/V100)",
                      "paper §5: no benefit when remote I/O is not the bottleneck; SOPHON "
                      "must decline via stage-1 profiling");

  const auto catalog = bench::openimages_catalog();
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;

  TextTable table({"bandwidth", "No-Off epoch", "SOPHON epoch", "speedup", "offloaded",
                   "SOPHON rationale"});
  for (const double mbps : {100.0, 250.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0}) {
    auto config = bench::paper_config(48);
    config.cluster.bandwidth = Bandwidth::mbps(mbps);
    config.net = model::NetKind::kResNet18;
    config.gpu = model::GpuKind::kV100;
    const auto results = core::run_all_policies(catalog, pipe, cm, config);
    const auto& no_off = results[0];
    const auto& sophon = results[4];
    std::string rationale = sophon.decision.rationale.substr(0, 60);
    table.add_row({human_bandwidth(config.cluster.bandwidth),
                   strf("%.1f s", no_off.stats.epoch_time.value()),
                   strf("%.1f s", sophon.stats.epoch_time.value()),
                   strf("%.2fx",
                        no_off.stats.epoch_time.value() / sophon.stats.epoch_time.value()),
                   strf("%zu", sophon.stats.offloaded_samples), rationale});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
