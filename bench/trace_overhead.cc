// Tracing + telemetry overhead pin: the claim in src/obs/trace.h is that
// span guards are cheap enough to stay compiled into the hot
// fetch/preprocess loops — under 3% on a realistic per-op workload while
// tracing is enabled, and nothing but a relaxed load and a branch while
// disabled. The telemetry plane (src/obs/timeseries.h, obs/health.h) makes
// the analogous claim for run_adaptive's epoch-boundary hooks: under 3%
// with the metric/recorder/health hooks live, and exactly zero work when
// the hooks are absent. The critical-path analyzer (obs/critpath) makes a
// third claim: one epoch re-time costs under 3% of the epoch it explains,
// and an unhooked monitor does exactly zero work. This bench measures all
// three claims and self-verifies the bounds, so a regression in any path
// fails ctest instead of silently taxing every run.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "core/adapt/loop.h"
#include "net/wire.h"
#include "obs/critpath/critpath.h"
#include "obs/critpath/monitor.h"
#include "obs/health.h"
#include "obs/ledger.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

using namespace sophon;

namespace {

constexpr std::size_t kIterations = 20000;
constexpr std::size_t kRepetitions = 7;
constexpr std::size_t kWorkloadSteps = 3000;  // ~ a few microseconds, a small pipeline op

/// Stand-in for one pipeline op: a pure xorshift accumulation the compiler
/// cannot fold away (the result is consumed by the caller).
std::uint64_t workload(std::uint64_t seed) {
  std::uint64_t x = seed | 1;
  for (std::size_t i = 0; i < kWorkloadSteps; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

/// One op plus one ledger attribution record per iteration. The ledger's
/// unit of work is a fetch response, and a realistic fetch (wire copy + crc
/// of a ~0.5 MiB payload) costs microseconds — the op-sized workload here is
/// the honest denominator for the <3% claim; the DES harness below strips
/// per-fetch cost entirely, so a per-sample hook measured against it would
/// be bounded by simulator speed, not by the ledger.
double ns_per_iter_ledger(std::uint64_t& sink, obs::TrafficLedger& ledger, std::size_t rep) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kIterations; ++i) {
    sink += workload(sink + i);
    ledger.record(rep * kIterations + i, 2, obs::TrafficCause::kDemand, Bytes(1 << 19));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
         static_cast<double>(kIterations);
}

double ns_per_iter(std::uint64_t& sink, bool with_span) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kIterations; ++i) {
    if (with_span) {
      obs::Span span(obs::SpanCategory::kPreprocess, "bench_op");
      span.args().sample = static_cast<std::int64_t>(i);
      sink += workload(sink + i);
    } else {
      sink += workload(sink + i);
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
         static_cast<double>(kIterations);
}

struct TelemetryCost {
  double baseline_ms = 1e18;  // run_adaptive with no hooks, best-of-N
  double enabled_ms = 1e18;   // full metrics + recorder + health hooks
  double ledger_ms = 1e18;    // hooks plus the per-sample traffic ledger
  double critpath_ms = 1e18;  // hooks plus the critical-path monitor
  std::size_t samples = 0;    // flight-recorder samples the enabled runs took
  std::uint64_t ledger_records = 0;  // attribution records the ledger runs took
  std::size_t critpath_epochs = 0;   // epochs the monitor re-timed
  bool disabled_is_zero = false;  // absent hooks touched no telemetry object
};

/// Time run_adaptive with and without the telemetry hooks, interleaved
/// best-of-N like the span measurement above.
TelemetryCost telemetry_cost() {
  using namespace sophon::core::adapt;
  const auto catalog = dataset::Catalog::generate(dataset::openimages_profile(8000), 42);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  sim::ClusterConfig planned;
  planned.bandwidth = Bandwidth::mbps(8000.0);

  // Constructed up front but only wired into the enabled runs: if the
  // baseline runs leave them untouched, "absent hooks cost exactly zero"
  // holds structurally, not just below measurement noise.
  MetricsRegistry sentinel_registry;
  sophon::obs::FlightRecorder sentinel_recorder(sentinel_registry);
  sophon::obs::TrafficLedger sentinel_ledger;
  sophon::obs::critpath::CritPathMonitor sentinel_critpath(&sentinel_registry);

  MetricsRegistry registry;
  sophon::obs::FlightRecorder recorder(registry);
  sophon::obs::HealthEvaluator health(sophon::obs::default_health_rules());
  sophon::obs::TrafficLedger::Options ledger_options;
  ledger_options.metrics = &registry;
  sophon::obs::TrafficLedger ledger(ledger_options);
  sophon::obs::critpath::CritPathMonitor critpath(&registry);

  enum class Mode { kBare, kTelemetry, kTelemetryAndLedger, kTelemetryAndCritPath };
  auto run_ms = [&](Mode mode) {
    RunOptions options;
    options.epochs = 6;
    if (mode != Mode::kBare) {
      options.telemetry.metrics = &registry;
      options.telemetry.recorder = &recorder;
      options.telemetry.health = &health;
    }
    if (mode == Mode::kTelemetryAndLedger) options.telemetry.ledger = &ledger;
    if (mode == Mode::kTelemetryAndCritPath) options.telemetry.critpath = &critpath;
    const auto start = std::chrono::steady_clock::now();
    const auto result = run_adaptive(catalog, pipe, cm, planned, Seconds(1.0), options);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (result.rows.size() != options.epochs) return -1.0;
    return std::chrono::duration<double, std::milli>(elapsed).count();
  };

  TelemetryCost cost;
  for (std::size_t rep = 0; rep < 8; ++rep) {
    const double base = run_ms(Mode::kBare);
    const double enabled = run_ms(Mode::kTelemetry);
    const double with_ledger = run_ms(Mode::kTelemetryAndLedger);
    const double with_critpath = run_ms(Mode::kTelemetryAndCritPath);
    if (base < 0.0 || enabled < 0.0 || with_ledger < 0.0 || with_critpath < 0.0) return cost;
    if (rep == 0) continue;  // warm-up
    cost.baseline_ms = std::min(cost.baseline_ms, base);
    cost.enabled_ms = std::min(cost.enabled_ms, enabled);
    cost.ledger_ms = std::min(cost.ledger_ms, with_ledger);
    cost.critpath_ms = std::min(cost.critpath_ms, with_critpath);
  }
  cost.samples = recorder.samples();
  cost.ledger_records = ledger.records();
  cost.critpath_epochs = critpath.epochs();
  const MetricsSnapshot untouched = sentinel_registry.snapshot();
  cost.disabled_is_zero = sentinel_recorder.samples() == 0 && sentinel_ledger.records() == 0 &&
                          sentinel_critpath.epochs() == 0 && !sentinel_critpath.last() &&
                          untouched.counters.empty() && untouched.gauges.empty() &&
                          untouched.durations.empty() && untouched.histograms.empty();
  return cost;
}

struct CritPathCost {
  double analyzer_ms = 1e18;   // one analyze_epoch over the full epoch, best-of-N
  double epoch_seconds = 0.0;  // duration of the epoch it re-timed
  double pct = 100.0;          // analyzer wall time / epoch duration
};

/// The critical-path pin proper: the analyzer runs once per epoch boundary,
/// so its honest denominator is the epoch it re-times — the simulator's
/// epoch_time *is* the wall-clock a real run of that cluster would spend
/// before the boundary hook fires. Re-timing 8000 samples takes
/// milliseconds against a multi-second epoch, and the bound is <3%.
CritPathCost critpath_cost() {
  namespace critpath = sophon::obs::critpath;
  const auto catalog = dataset::Catalog::generate(dataset::openimages_profile(8000), 42);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;

  critpath::EpochParams params;
  params.cluster.compute_cores = 16;
  params.cluster.storage_cores = 4;
  params.cluster.bandwidth = Bandwidth::mbps(500.0);
  params.cluster.batch_size = 64;
  params.gpu_batch_time = Seconds(0.05);
  params.num_samples = catalog.size();
  const critpath::DemandFn demand = [&](std::size_t i) {
    const auto& meta = catalog.sample(i);
    critpath::SampleDemand d;
    d.compute_cpu = pipe.suffix_cost(meta.raw, 0, cm);
    d.wire = net::wire_size(pipe.shape_at(meta.raw, 0));
    return d;
  };

  CritPathCost cost;
  for (std::size_t rep = 0; rep < kRepetitions + 1; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const auto analysis = critpath::analyze_epoch(demand, params);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (rep == 0) continue;  // warm-up
    cost.analyzer_ms =
        std::min(cost.analyzer_ms, std::chrono::duration<double, std::milli>(elapsed).count());
    cost.epoch_seconds = analysis.epoch_time.value();
  }
  cost.pct = cost.epoch_seconds > 0.0
                 ? 100.0 * (cost.analyzer_ms / 1e3) / cost.epoch_seconds
                 : 100.0;
  return cost;
}

}  // namespace

int main() {
  obs::Tracer& tracer = obs::global_tracer();
  tracer.set_capacity(kIterations + 64);
  std::uint64_t sink = 0x9e3779b97f4a7c15ull;

  // Configs are interleaved within each repetition so frequency drift and
  // other slow machine-state changes tax all three equally; best-of-N then
  // discards the noise-contaminated repetitions.
  double baseline = 1e18;
  double disabled = 1e18;
  double enabled = 1e18;
  std::size_t drained = 0;
  for (std::size_t rep = 0; rep < kRepetitions + 1; ++rep) {
    tracer.set_enabled(false);
    const double b = ns_per_iter(sink, false);
    const double d = ns_per_iter(sink, true);
    tracer.set_enabled(true);
    const double e = ns_per_iter(sink, true);
    tracer.set_enabled(false);
    drained += tracer.drain().size();
    if (rep == 0) continue;  // warm-up round: caches, rings, branch predictor
    baseline = std::min(baseline, b);
    disabled = std::min(disabled, d);
    enabled = std::min(enabled, e);
  }

  // Ledger record cost, in its own interleaved pairing (with its own
  // baseline) so the span measurement above stays undisturbed.
  double ledger_base = 1e18;
  double with_ledger = 1e18;
  obs::TrafficLedger op_ledger;
  for (std::size_t rep = 0; rep < kRepetitions + 1; ++rep) {
    const double b = ns_per_iter(sink, false);
    const double l = ns_per_iter_ledger(sink, op_ledger, rep);
    if (rep == 0) continue;  // warm-up
    ledger_base = std::min(ledger_base, b);
    with_ledger = std::min(with_ledger, l);
  }

  const double disabled_pct = 100.0 * (disabled - baseline) / baseline;
  const double enabled_pct = 100.0 * (enabled - baseline) / baseline;
  const double ledger_pct = 100.0 * (with_ledger - ledger_base) / ledger_base;
  std::printf("trace overhead (%zu iterations x %zu reps, ~%.0f ns workload, sink %llx)\n",
              kIterations, kRepetitions, baseline, static_cast<unsigned long long>(sink));
  std::printf("  baseline  %8.1f ns/iter\n", baseline);
  std::printf("  disabled  %8.1f ns/iter  (%+.2f%%)\n", disabled, disabled_pct);
  std::printf("  enabled   %8.1f ns/iter  (%+.2f%%, %.0f ns/span, %zu spans drained)\n", enabled,
              enabled_pct, enabled - baseline, drained);
  std::printf("  +ledger   %8.1f ns/iter  (%+.2f%%, %.0f ns/record, %llu records)\n", with_ledger,
              ledger_pct, with_ledger - ledger_base,
              static_cast<unsigned long long>(op_ledger.records()));

  // Bounds: enabled tracing must stay under 3% on an op-sized workload;
  // the disabled guard must be indistinguishable from no guard. Its true
  // cost is one relaxed load and a branch (~1 ns), but the measured delta
  // between two identical-cost loops jitters about +/-2% on a busy machine,
  // so that is the bound — anything real (a lock, an allocation) would
  // clear it by an order of magnitude.
  const bool enabled_ok = enabled_pct < 3.0;
  const bool disabled_ok = disabled_pct < 2.0;
  const bool ledger_ok = ledger_pct < 3.0 && op_ledger.records() > 0;

  // The telemetry plane's epoch-boundary hooks, measured on the real
  // adaptive run loop.
  const TelemetryCost telemetry = telemetry_cost();
  const double telemetry_pct =
      100.0 * (telemetry.enabled_ms - telemetry.baseline_ms) / telemetry.baseline_ms;
  // Informational, deliberately not pinned: the DES simulates a sample in
  // tens of nanoseconds, so *any* per-sample hook is large relative to it.
  // The pinned ledger bound is the per-record one above, against an op-sized
  // workload — the granularity the ledger actually operates at. This run
  // still proves records flow end-to-end and that absent hooks stay at
  // exactly zero.
  const double ledger_run_pct =
      100.0 * (telemetry.ledger_ms - telemetry.baseline_ms) / telemetry.baseline_ms;
  const double critpath_run_pct =
      100.0 * (telemetry.critpath_ms - telemetry.baseline_ms) / telemetry.baseline_ms;
  std::printf("telemetry overhead (run_adaptive, 6 epochs, best of 7)\n");
  std::printf("  baseline  %8.2f ms/run\n", telemetry.baseline_ms);
  std::printf("  enabled   %8.2f ms/run  (%+.2f%%, %zu recorder samples)\n", telemetry.enabled_ms,
              telemetry_pct, telemetry.samples);
  std::printf("  +ledger   %8.2f ms/run  (%+.2f%% of a ~20 ns/sample DES, unpinned; "
              "%llu attribution records)\n",
              telemetry.ledger_ms, ledger_run_pct,
              static_cast<unsigned long long>(telemetry.ledger_records));
  std::printf("  +critpath %8.2f ms/run  (%+.2f%% of the DES, unpinned; "
              "%zu epochs re-timed)\n",
              telemetry.critpath_ms, critpath_run_pct, telemetry.critpath_epochs);
  std::printf("  disabled  hooks absent: %s\n",
              telemetry.disabled_is_zero
                  ? "0 samples, 0 records, 0 epochs re-timed, 0 metrics touched"
                  : "TOUCHED TELEMETRY STATE");
  const bool telemetry_ok = telemetry_pct < 3.0 && telemetry.samples > 0;
  const bool ledger_flow_ok = telemetry.ledger_records > 0;
  const bool critpath_flow_ok = telemetry.critpath_epochs > 0;

  // The analyzer's own pin: one per-epoch re-time against the epoch it
  // explains. Like the ledger, the run-level number above is bounded by DES
  // speed, not analyzer cost; the epoch-relative bound is the honest one.
  const CritPathCost critpath = critpath_cost();
  std::printf("critpath analyzer (8000-sample epoch, best of %zu)\n", kRepetitions);
  std::printf("  analyze   %8.2f ms against a %.1f s epoch  (%.3f%% of the epoch)\n",
              critpath.analyzer_ms, critpath.epoch_seconds, critpath.pct);
  const bool critpath_ok = critpath.pct < 3.0 && critpath.epoch_seconds > 0.0;

  if (enabled_ok && disabled_ok && ledger_ok && telemetry_ok && ledger_flow_ok &&
      critpath_flow_ok && critpath_ok && telemetry.disabled_is_zero) {
    std::printf("verified: enabled overhead %.2f%% < 3%%, disabled %.2f%% < 2%%, "
                "ledger %.2f%% < 3%%, telemetry %.2f%% < 3%%, critpath %.3f%% of the "
                "epoch < 3%% (exactly 0 when absent)\n",
                enabled_pct, disabled_pct, ledger_pct, telemetry_pct, critpath.pct);
    return 0;
  }
  std::printf("FAILED: enabled %.2f%% (limit 3%%), disabled %.2f%% (limit 2%%), "
              "ledger %.2f%% (limit 3%%), telemetry %.2f%% (limit 3%%), "
              "critpath %.3f%% (limit 3%%), ledger records: %llu, critpath epochs: %zu, "
              "absent-hooks zero: %s\n",
              enabled_pct, disabled_pct, ledger_pct, telemetry_pct, critpath.pct,
              static_cast<unsigned long long>(telemetry.ledger_records),
              telemetry.critpath_epochs, telemetry.disabled_is_zero ? "yes" : "no");
  return 1;
}
