// Tracing overhead pin: the claim in src/obs/trace.h is that span guards are
// cheap enough to stay compiled into the hot fetch/preprocess loops — under
// 3% on a realistic per-op workload while tracing is enabled, and nothing
// but a relaxed load and a branch while disabled. This bench measures all
// three configurations on the same workload and self-verifies the bounds,
// so a regression in the record path fails ctest instead of silently taxing
// every traced run.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "obs/trace.h"

using namespace sophon;

namespace {

constexpr std::size_t kIterations = 20000;
constexpr std::size_t kRepetitions = 7;
constexpr std::size_t kWorkloadSteps = 3000;  // ~ a few microseconds, a small pipeline op

/// Stand-in for one pipeline op: a pure xorshift accumulation the compiler
/// cannot fold away (the result is consumed by the caller).
std::uint64_t workload(std::uint64_t seed) {
  std::uint64_t x = seed | 1;
  for (std::size_t i = 0; i < kWorkloadSteps; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

double ns_per_iter(std::uint64_t& sink, bool with_span) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kIterations; ++i) {
    if (with_span) {
      obs::Span span(obs::SpanCategory::kPreprocess, "bench_op");
      span.args().sample = static_cast<std::int64_t>(i);
      sink += workload(sink + i);
    } else {
      sink += workload(sink + i);
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
         static_cast<double>(kIterations);
}

}  // namespace

int main() {
  obs::Tracer& tracer = obs::global_tracer();
  tracer.set_capacity(kIterations + 64);
  std::uint64_t sink = 0x9e3779b97f4a7c15ull;

  // Configs are interleaved within each repetition so frequency drift and
  // other slow machine-state changes tax all three equally; best-of-N then
  // discards the noise-contaminated repetitions.
  double baseline = 1e18;
  double disabled = 1e18;
  double enabled = 1e18;
  std::size_t drained = 0;
  for (std::size_t rep = 0; rep < kRepetitions + 1; ++rep) {
    tracer.set_enabled(false);
    const double b = ns_per_iter(sink, false);
    const double d = ns_per_iter(sink, true);
    tracer.set_enabled(true);
    const double e = ns_per_iter(sink, true);
    tracer.set_enabled(false);
    drained += tracer.drain().size();
    if (rep == 0) continue;  // warm-up round: caches, rings, branch predictor
    baseline = std::min(baseline, b);
    disabled = std::min(disabled, d);
    enabled = std::min(enabled, e);
  }

  const double disabled_pct = 100.0 * (disabled - baseline) / baseline;
  const double enabled_pct = 100.0 * (enabled - baseline) / baseline;
  std::printf("trace overhead (%zu iterations x %zu reps, ~%.0f ns workload, sink %llx)\n",
              kIterations, kRepetitions, baseline, static_cast<unsigned long long>(sink));
  std::printf("  baseline  %8.1f ns/iter\n", baseline);
  std::printf("  disabled  %8.1f ns/iter  (%+.2f%%)\n", disabled, disabled_pct);
  std::printf("  enabled   %8.1f ns/iter  (%+.2f%%, %.0f ns/span, %zu spans drained)\n", enabled,
              enabled_pct, enabled - baseline, drained);

  // Bounds: enabled tracing must stay under 3% on an op-sized workload;
  // the disabled guard must be indistinguishable from no guard. Its true
  // cost is one relaxed load and a branch (~1 ns), but the measured delta
  // between two identical-cost loops jitters about +/-2% on a busy machine,
  // so that is the bound — anything real (a lock, an allocation) would
  // clear it by an order of magnitude.
  const bool enabled_ok = enabled_pct < 3.0;
  const bool disabled_ok = disabled_pct < 2.0;
  if (enabled_ok && disabled_ok) {
    std::printf("verified: enabled overhead %.2f%% < 3%%, disabled %.2f%% < 2%%\n", enabled_pct,
                disabled_pct);
    return 0;
  }
  std::printf("FAILED: enabled %.2f%% (limit 3%%), disabled %.2f%% (limit 2%%)\n", enabled_pct,
              disabled_pct);
  return 1;
}
