// Figure 1c — offloading efficiency (size reduction per CPU second) across
// the OpenImages dataset.
//
// Paper: 24% of images have ratio 0 (smallest raw); the remaining 76% span
// a wide range, motivating prioritising high-efficiency samples when
// storage CPU is scarce.
#include "bench_common.h"
#include "core/profiler.h"
#include "util/histogram.h"

using namespace sophon;

int main() {
  bench::print_header("Figure 1c — offloading efficiency distribution (OpenImages)",
                      "24% of images have ratio 0; the rest vary widely, calling for "
                      "efficiency-ordered offloading");

  const auto catalog = bench::openimages_catalog();
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto profiles = core::profile_stage2(catalog, pipe, cm);

  EmpiricalCdf cdf;
  std::size_t zeros = 0;
  for (const auto& p : profiles) {
    cdf.add(p.efficiency() / 1e6);  // MB saved per CPU-second
    if (!p.benefits()) ++zeros;
  }

  std::printf("samples with ratio 0 (no benefit): %.1f%%\n\n",
              100.0 * static_cast<double>(zeros) / static_cast<double>(profiles.size()));

  TextTable table({"efficiency (MB/s of CPU)", "CDF"});
  for (const auto& [x, f] : cdf.curve(15)) {
    table.add_row({strf("%.1f", x), strf("%.3f", f)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("quantiles of positive-efficiency samples:\n");
  EmpiricalCdf positive;
  for (const auto& p : profiles) {
    if (p.benefits()) positive.add(p.efficiency() / 1e6);
  }
  TextTable q({"quantile", "MB saved per CPU-second"});
  for (const double quant : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    q.add_row({strf("p%.0f", quant * 100), strf("%.1f", positive.quantile(quant))});
  }
  std::printf("%s", q.render().c_str());
  return 0;
}
