// Figure 4 — training time and traffic vs storage-node CPU cores
// (OpenImages).
//
// Paper: All-Off worst everywhere, much worse at 1 core; FastFlow always
// declines; Resize-Off has the lowest traffic but is slower than No-Off at
// <=2 cores; SOPHON is fastest at every budget with diminishing returns
// (0->1 core saves ~22 s, 4->5 only ~9 s).
#include "bench_common.h"

using namespace sophon;

int main() {
  bench::print_header(
      "Figure 4 — epoch time & traffic vs storage CPU cores (OpenImages)",
      "All-Off worst (spikes at 1 core); Resize-Off lowest traffic but slower than "
      "No-Off at small core counts; SOPHON fastest everywhere, diminishing returns");

  const auto catalog = bench::openimages_catalog();
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;

  TextTable time_table({"cores", "No-Off", "All-Off", "FastFlow", "Resize-Off", "SOPHON",
                        "SOPHON offloaded"});
  TextTable traffic_table({"cores", "No-Off", "All-Off", "FastFlow", "Resize-Off", "SOPHON"});

  double prev_sophon = 0.0;
  std::vector<std::pair<int, double>> sophon_times;
  for (const int cores : {0, 1, 2, 3, 4, 5, 6, 8, 48}) {
    const auto results = core::run_all_policies(catalog, pipe, cm, bench::paper_config(cores));
    std::vector<std::string> times{strf("%d", cores)};
    std::vector<std::string> traffics{strf("%d", cores)};
    for (const auto& r : results) {
      times.push_back(strf("%.1f s", r.stats.epoch_time.value()));
      traffics.push_back(bench::gb(r.stats.traffic));
    }
    times.push_back(strf("%zu", results[4].stats.offloaded_samples));
    time_table.add_row(std::move(times));
    traffic_table.add_row(std::move(traffics));
    sophon_times.emplace_back(cores, results[4].stats.epoch_time.value());
    prev_sophon = results[4].stats.epoch_time.value();
  }
  (void)prev_sophon;

  std::printf("Epoch time:\n%s\n", time_table.render().c_str());
  std::printf("Traffic per epoch:\n%s\n", traffic_table.render().c_str());

  std::printf("SOPHON marginal gain per added core (paper: 22 s for 0->1, 9 s for 4->5):\n");
  TextTable gains({"transition", "epoch time saved"});
  for (std::size_t i = 1; i < sophon_times.size(); ++i) {
    gains.add_row({strf("%d -> %d cores", sophon_times[i - 1].first, sophon_times[i].first),
                   strf("%.1f s", sophon_times[i - 1].second - sophon_times[i].second)});
  }
  std::printf("%s", gains.render().c_str());
  return 0;
}
