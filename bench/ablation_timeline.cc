// Ablation A13 — link-utilisation timeline.
//
// The per-sample trace makes the bottleneck visible over time: under No-Off
// the inter-cluster link is pinned at ~100% for the whole epoch; under
// SOPHON the same training work finishes in half the time at a similar
// saturation level but with half the bytes, and per-sample latency drops.
#include "bench_common.h"
#include "core/profiler.h"
#include "core/decision.h"
#include "net/wire.h"
#include "sim/trace.h"

using namespace sophon;

namespace {

void run_variant(const char* name, const dataset::Catalog& catalog,
                 const pipeline::Pipeline& pipe, const pipeline::CostModel& cm,
                 const sim::ClusterConfig& cluster, Seconds batch_time,
                 const core::OffloadPlan& plan) {
  sim::TraceRecorder recorder;
  const auto flow = [&](std::size_t idx) {
    const auto& meta = catalog.sample(idx);
    const std::size_t prefix = plan.prefix(idx);
    sim::SampleFlow f;
    f.storage_cpu = prefix > 0 ? pipe.prefix_cost(meta.raw, prefix, cm) : Seconds(0.0);
    f.wire = net::wire_size(pipe.shape_at(meta.raw, prefix));
    f.compute_cpu = pipe.suffix_cost(meta.raw, prefix, cm);
    return f;
  };
  const auto stats = sim::simulate_epoch_flows(catalog.size(), flow, cluster, batch_time, 42, 0,
                                               recorder.sink());

  const Seconds bucket(10.0);
  const auto util = recorder.link_utilization(bucket, cluster.bandwidth);
  std::printf("%s: epoch %.1f s, traffic %s, mean per-sample latency %s\n", name,
              stats.epoch_time.value(), bench::gb(stats.traffic).c_str(),
              human_seconds(recorder.mean_latency()).c_str());
  std::printf("link utilisation per 10 s bucket:\n  ");
  for (std::size_t b = 0; b < util.size(); ++b) {
    static const char* kGlyphs[] = {" ", ".", ":", "-", "=", "#"};
    const auto level = static_cast<std::size_t>(util[b] * 5.0 + 0.5);
    std::printf("%s", kGlyphs[std::min<std::size_t>(level, 5)]);
  }
  std::printf("|  (%zu buckets; '#'=saturated, ' '=idle)\n\n", util.size());
}

}  // namespace

int main() {
  bench::print_header("Ablation A13 — link-utilisation timeline (OpenImages, 500 Mbps)",
                      "(beyond the paper: the per-sample trace behind its aggregate numbers)");

  const auto catalog = bench::openimages_catalog();
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  auto config = bench::paper_config(48);
  const auto gpu = model::GpuModel::lookup(config.net, config.gpu);
  const Seconds batch_time = gpu.batch_time(config.cluster.batch_size);
  const Seconds t_g = batch_time * static_cast<double>(
                                       (catalog.size() + config.cluster.batch_size - 1) /
                                       config.cluster.batch_size);

  run_variant("No-Off", catalog, pipe, cm, config.cluster, batch_time,
              core::OffloadPlan(catalog.size()));

  const auto profiles = core::profile_stage2(catalog, pipe, cm);
  const auto decision = core::decide_offloading(profiles, config.cluster, t_g);
  run_variant("SOPHON", catalog, pipe, cm, config.cluster, batch_time, decision.plan);
  return 0;
}
