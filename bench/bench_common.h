// Shared setup for the figure/table reproduction benches: the paper's
// evaluation configuration (§4) and formatting helpers so every bench prints
// uniform, diffable tables for EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>

#include "core/runner.h"
#include "dataset/catalog.h"
#include "util/table.h"
#include "util/units.h"

namespace sophon::bench {

/// The paper's experiment setup: RTX-6000 compute node with 48 preprocessing
/// cores, storage node with a variable core budget, 500 Mbps link, AlexNet.
inline core::RunConfig paper_config(int storage_cores = 48) {
  core::RunConfig c;
  c.cluster.compute_cores = 48;
  c.cluster.storage_cores = storage_cores;
  c.cluster.bandwidth = Bandwidth::mbps(500.0);
  c.net = model::NetKind::kAlexNet;
  c.gpu = model::GpuKind::kRtx6000;
  c.seed = 42;
  return c;
}

/// The paper's two datasets at evaluation scale: a ~12 GB OpenImages-like
/// subset (40 k large images) and a ~11 GB ImageNet-like subset (90 k
/// mostly-small images).
inline dataset::Catalog openimages_catalog() {
  return dataset::Catalog::generate(dataset::openimages_profile(40000), 42);
}

inline dataset::Catalog imagenet_catalog() {
  return dataset::Catalog::generate(dataset::imagenet_profile(90000), 42);
}

inline std::string gb(Bytes b) {
  return strf("%.2f GB", b.as_double() / 1e9);
}

inline void print_header(const char* experiment, const char* paper_summary) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper reports: %s\n", paper_summary);
  std::printf("==============================================================\n\n");
}

}  // namespace sophon::bench
