// Shared setup for the figure/table reproduction benches: the paper's
// evaluation configuration (§4) and formatting helpers so every bench prints
// uniform, diffable tables for EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "core/runner.h"
#include "core/serialize.h"
#include "dataset/catalog.h"
#include "util/json.h"
#include "util/table.h"
#include "util/units.h"

namespace sophon::bench {

/// The paper's experiment setup: RTX-6000 compute node with 48 preprocessing
/// cores, storage node with a variable core budget, 500 Mbps link, AlexNet.
inline core::RunConfig paper_config(int storage_cores = 48) {
  core::RunConfig c;
  c.cluster.compute_cores = 48;
  c.cluster.storage_cores = storage_cores;
  c.cluster.bandwidth = Bandwidth::mbps(500.0);
  c.net = model::NetKind::kAlexNet;
  c.gpu = model::GpuKind::kRtx6000;
  c.seed = 42;
  return c;
}

/// The paper's two datasets at evaluation scale: a ~12 GB OpenImages-like
/// subset (40 k large images) and a ~11 GB ImageNet-like subset (90 k
/// mostly-small images).
inline dataset::Catalog openimages_catalog() {
  return dataset::Catalog::generate(dataset::openimages_profile(40000), 42);
}

inline dataset::Catalog imagenet_catalog() {
  return dataset::Catalog::generate(dataset::imagenet_profile(90000), 42);
}

inline std::string gb(Bytes b) {
  return strf("%.2f GB", b.as_double() / 1e9);
}

/// Builder for the committed BENCH_*.json artifacts (ablation_adapt,
/// ablation_prefetch, ablation_materialize, ...). All of them share one
/// schema shape — `kind` + `version` + flat meta keys + a `rows` array —
/// which the EXPERIMENTS.md tooling relies on; routing every bench through
/// this emitter keeps that shape from drifting per bench.
class ArtifactEmitter {
 public:
  explicit ArtifactEmitter(const char* kind, std::int64_t version = 1) {
    json_.set("kind", kind);
    json_.set("version", version);
  }

  /// Record one top-level meta key (samples, seed, sweep parameters, ...).
  ArtifactEmitter& meta(const char* key, Json value) {
    json_.set(key, std::move(value));
    return *this;
  }

  /// Attach the row array and write the artifact. Prints the outcome either
  /// way; false on I/O failure so main() can exit non-zero.
  [[nodiscard]] bool write(const char* path, Json rows) {
    json_.set("rows", std::move(rows));
    if (!core::save_json_file(json_, path)) {
      std::fprintf(stderr, "failed to write %s\n", path);
      return false;
    }
    std::printf("wrote %s\n", path);
    return true;
  }

 private:
  Json json_ = Json::object();
};

inline void print_header(const char* experiment, const char* paper_summary) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper reports: %s\n", paper_summary);
  std::printf("==============================================================\n\n");
}

}  // namespace sophon::bench
