// Figure 1b — where in the pipeline each sample's size is minimal.
//
// Paper: 76% of OpenImages samples shrink below their raw size at an
// intermediate stage (and should be offloaded); 24% are smallest raw. For
// ImageNet only 26% benefit.
#include <array>

#include "bench_common.h"
#include "core/profiler.h"

using namespace sophon;

namespace {

void analyze(const char* name, const dataset::Catalog& catalog) {
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto profiles = core::profile_stage2(catalog, pipe, cm);

  std::array<std::size_t, 6> stage_counts{};
  for (const auto& p : profiles) ++stage_counts[p.min_stage];

  TextTable table({"min-size stage", "samples", "fraction"});
  static const char* kStageNames[] = {"raw (no offload)", "after Decode",
                                      "after RandomResizedCrop", "after Flip",
                                      "after ToTensor", "after Normalize"};
  for (std::size_t s = 0; s < stage_counts.size(); ++s) {
    table.add_row({kStageNames[s], strf("%zu", stage_counts[s]),
                   strf("%.1f%%", 100.0 * static_cast<double>(stage_counts[s]) /
                                      static_cast<double>(profiles.size()))});
  }
  const double benefit = 100.0 *
                         static_cast<double>(profiles.size() - stage_counts[0]) /
                         static_cast<double>(profiles.size());
  std::printf("%s (%zu samples, mean raw %s):\n%s=> %.1f%% benefit from offloading\n\n", name,
              catalog.size(), human_bytes(catalog.mean_encoded()).c_str(),
              table.render().c_str(), benefit);
}

}  // namespace

int main() {
  bench::print_header("Figure 1b — distribution of min-size stage",
                      "OpenImages: 76% benefit from offloading, 24% smallest raw; "
                      "ImageNet: 26% benefit, 74% smallest raw");
  analyze("OpenImages-like", bench::openimages_catalog());
  analyze("ImageNet-like", bench::imagenet_catalog());
  return 0;
}
