// Figure 3 — training time and data traffic per epoch, ample (48) storage
// CPU cores, all five policies on both datasets.
//
// Paper: All-Off inflates traffic 1.9x (OpenImages) / 5.1x (ImageNet) and
// has the longest training time; FastFlow declines offloading; Resize-Off
// halves OpenImages traffic but *increases* ImageNet traffic 1.3x; SOPHON
// reduces traffic 2.2x / 1.2x and achieves the shortest training time.
#include "bench_common.h"

using namespace sophon;

namespace {

void evaluate(const char* name, const dataset::Catalog& catalog) {
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto config = bench::paper_config(48);
  const auto results = core::run_all_policies(catalog, pipe, cm, config);
  const double base_time = results[0].stats.epoch_time.value();
  const auto base_traffic = results[0].stats.traffic;

  std::printf("%s: %zu samples, %s total, link %s\n", name, catalog.size(),
              bench::gb(catalog.total_encoded()).c_str(),
              human_bandwidth(config.cluster.bandwidth).c_str());
  TextTable table({"policy", "epoch time", "vs No-Off", "traffic", "traffic vs No-Off",
                   "offloaded", "GPU util"});
  for (const auto& r : results) {
    const double traffic_ratio = r.stats.traffic.as_double() / base_traffic.as_double();
    table.add_row({r.name, strf("%.1f s", r.stats.epoch_time.value()),
                   strf("%.2fx", base_time / r.stats.epoch_time.value()),
                   bench::gb(r.stats.traffic),
                   traffic_ratio >= 1.0 ? strf("%.2fx more", traffic_ratio)
                                        : strf("%.2fx less", 1.0 / traffic_ratio),
                   strf("%zu", r.stats.offloaded_samples),
                   strf("%.1f%%", 100.0 * r.stats.gpu_utilization)});
  }
  std::printf("%s", table.render().c_str());
  for (const auto& r : results) {
    std::printf("  %-10s %s\n", r.name.c_str(), r.decision.rationale.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 3 — epoch time & traffic, ample storage CPU (48 cores)",
      "All-Off traffic x1.9 (OI) / x5.1 (IN), longest time; FastFlow = No-Off; "
      "Resize-Off: OI traffic /2 but IN traffic x1.3; SOPHON: /2.2 and /1.2, fastest");
  evaluate("OpenImages-like", bench::openimages_catalog());
  evaluate("ImageNet-like", bench::imagenet_catalog());
  return 0;
}
