// Ablation A4 — heterogeneous CPU speeds (paper §6 future work).
//
// The paper assumes identical CPU types on both nodes. We sweep the
// storage-core speed factor: slower storage cores shrink the amount SOPHON
// chooses to offload; faster ones extend it.
#include "bench_common.h"

using namespace sophon;

int main() {
  bench::print_header("Ablation A4 — heterogeneous storage CPU speed (OpenImages, §6 extension)",
                      "(future work in the paper: heterogeneous CPU types across nodes)");

  const auto catalog = bench::openimages_catalog();
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;

  TextTable table({"storage core speed", "policy", "epoch time", "traffic", "offloaded"});
  for (const double speed : {0.25, 0.5, 1.0, 2.0}) {
    auto config = bench::paper_config(4);
    config.cluster.storage_core_speed = speed;
    const auto results = core::run_all_policies(catalog, pipe, cm, config);
    for (const auto& r : results) {
      if (r.kind != core::PolicyKind::kSophon && r.kind != core::PolicyKind::kResizeOff) continue;
      table.add_row({strf("%.2fx", speed), r.name, strf("%.1f s", r.stats.epoch_time.value()),
                     bench::gb(r.stats.traffic), strf("%zu", r.stats.offloaded_samples)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n(4 storage cores; speed factor scales each core's throughput.)\n");
  return 0;
}
