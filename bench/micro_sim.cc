// M2 — simulator & planner micro-benchmarks: how fast the discrete-event
// trainer, the stage-2 profiler and the decision engine run at evaluation
// scale (they must stay cheap enough to iterate on).
#include <benchmark/benchmark.h>

#include "core/decision.h"
#include "core/profiler.h"
#include "sim/trainer.h"

namespace sophon {
namespace {

const dataset::Catalog& catalog() {
  static const auto c = dataset::Catalog::generate(dataset::openimages_profile(40000), 42);
  return c;
}

const pipeline::Pipeline& pipe() {
  static const auto p = pipeline::Pipeline::standard();
  return p;
}

void BM_SimulateEpochNoOff(benchmark::State& state) {
  const pipeline::CostModel cm;
  sim::ClusterConfig cluster;
  for (auto _ : state) {
    auto stats = sim::simulate_epoch(catalog(), pipe(), cm, cluster, Seconds::millis(85.0), {},
                                     42, 0);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(catalog().size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateEpochNoOff);

void BM_SimulateEpochFullOffload(benchmark::State& state) {
  const pipeline::CostModel cm;
  sim::ClusterConfig cluster;
  const std::vector<std::uint8_t> assignment(catalog().size(), 2);
  for (auto _ : state) {
    auto stats = sim::simulate_epoch(catalog(), pipe(), cm, cluster, Seconds::millis(85.0),
                                     assignment, 42, 0);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_SimulateEpochFullOffload);

void BM_Stage2Profiler(benchmark::State& state) {
  const pipeline::CostModel cm;
  for (auto _ : state) {
    auto profiles = core::profile_stage2(catalog(), pipe(), cm);
    benchmark::DoNotOptimize(profiles);
  }
}
BENCHMARK(BM_Stage2Profiler);

void BM_DecisionEngine(benchmark::State& state) {
  const pipeline::CostModel cm;
  const auto profiles = core::profile_stage2(catalog(), pipe(), cm);
  sim::ClusterConfig cluster;
  cluster.storage_cores = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = core::decide_offloading(profiles, cluster, Seconds(14.0));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DecisionEngine)->Arg(1)->Arg(48);

void BM_EpochShuffle(benchmark::State& state) {
  for (auto _ : state) {
    dataset::EpochOrder order(catalog().size(), 42, 0);
    benchmark::DoNotOptimize(order);
  }
}
BENCHMARK(BM_EpochShuffle);

}  // namespace
}  // namespace sophon

BENCHMARK_MAIN();
