// Ablation A2 — the greedy loop's stop condition.
//
// The paper stops when T_Net ceases to be the predominant metric. How close
// is that to an exact predicted-epoch-time minimiser, and what does
// "offload every beneficial sample" cost?
#include "bench_common.h"
#include "core/profiler.h"

using namespace sophon;

int main() {
  bench::print_header("Ablation A2 — decision-engine stop rule (OpenImages)",
                      "(not in paper; quantifies §3.2's 'until T_Net ceases to be "
                      "predominant' rule)");

  const auto catalog = bench::openimages_catalog();
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto profiles = core::profile_stage2(catalog, pipe, cm);
  const auto gpu = model::GpuModel::lookup(model::NetKind::kAlexNet, model::GpuKind::kRtx6000);

  TextTable table({"cores", "stop rule", "offloaded", "simulated epoch", "traffic",
                   "storage CPU busy"});
  for (const int cores : {1, 2, 4, 8, 48}) {
    auto config = bench::paper_config(cores);
    const Seconds batch_time = gpu.batch_time(config.cluster.batch_size);
    const Seconds t_g = batch_time * static_cast<double>(
                                         (catalog.size() + config.cluster.batch_size - 1) /
                                         config.cluster.batch_size);
    for (const auto& [rule, name] :
         {std::pair{core::StopRule::kNetPredominant, "net-predominant (paper)"},
          {core::StopRule::kExactMinimize, "exact minimiser"},
          {core::StopRule::kExhaustBenefits, "exhaust benefits"}}) {
      core::DecisionOptions opts;
      opts.stop_rule = rule;
      const auto decision = core::decide_offloading(profiles, config.cluster, t_g, opts);
      const auto stats =
          sim::simulate_epoch(catalog, pipe, cm, config.cluster, batch_time,
                              decision.plan.assignment(), 42, 0);
      table.add_row({strf("%d", cores), name, strf("%zu", decision.offloaded),
                     strf("%.1f s", stats.epoch_time.value()), bench::gb(stats.traffic),
                     strf("%.1f s", stats.storage_cpu_busy.value())});
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
