// Figure 1d — GPU utilisation of three models under a constrained link.
//
// Paper (Finding #5): with a V100, ample CPUs and constrained storage
// bandwidth, ResNet50 reaches near-maximal GPU utilisation, while ResNet18
// idles ~65% of the time waiting on data — so offloading benefit depends on
// the model's compute intensity.
#include "bench_common.h"

using namespace sophon;

int main() {
  bench::print_header("Figure 1d — GPU utilisation by model (No-Off, V100, constrained link)",
                      "ResNet50 near-maximal; ResNet18 ~35% utilised (65% data-fetch idle); "
                      "compute-light models starve");

  const auto catalog = bench::openimages_catalog();
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;

  TextTable table({"model", "GPU throughput (img/s)", "epoch time", "GPU util", "idle"});
  for (const auto net :
       {model::NetKind::kResNet50, model::NetKind::kResNet18, model::NetKind::kAlexNet}) {
    auto config = bench::paper_config();
    config.net = net;
    config.gpu = model::GpuKind::kV100;
    config.cluster.bandwidth = Bandwidth::gbps(1.0);
    const auto result =
        core::run_policy(*core::make_policy(core::PolicyKind::kNoOff), catalog, pipe, cm, config);
    const auto gpu = model::GpuModel::lookup(net, config.gpu);
    table.add_row({std::string(model::net_kind_name(net)),
                   strf("%.0f", gpu.images_per_second()),
                   human_seconds(result.stats.epoch_time),
                   strf("%.1f%%", 100.0 * result.stats.gpu_utilization),
                   strf("%.1f%%", 100.0 * (1.0 - result.stats.gpu_utilization))});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
