// Ablation A7 — local raw-sample caching vs / with selective offloading.
//
// The paper's intro argues caching approaches (Quiver, SiloD, …) are bounded
// by local capacity while datasets keep growing. This bench quantifies that:
// steady-state traffic & epoch time for cache-only, SOPHON-only, and the
// combination, across cache sizes (dataset is ~12.6 GB).
#include "bench_common.h"
#include "cache/cached_training.h"
#include "core/profiler.h"

using namespace sophon;

int main() {
  bench::print_header("Ablation A7 — compute-node cache vs selective offloading (OpenImages)",
                      "(paper intro: cache benefit is bounded by local capacity; SOPHON is "
                      "capacity-independent)");

  const auto catalog = bench::openimages_catalog();
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto config = bench::paper_config(48);
  const auto gpu = model::GpuModel::lookup(config.net, config.gpu);
  const Seconds batch_time = gpu.batch_time(config.cluster.batch_size);

  const auto profiles = core::profile_stage2(catalog, pipe, cm);
  const Seconds t_g = batch_time * static_cast<double>(
                                       (catalog.size() + config.cluster.batch_size - 1) /
                                       config.cluster.batch_size);
  const auto decision = core::decide_offloading(profiles, config.cluster, t_g);

  TextTable table({"cache size", "variant", "steady hit rate", "traffic/epoch", "epoch time"});
  for (const double gib : {0.0, 2.0, 4.0, 8.0}) {
    const auto capacity = Bytes(static_cast<std::int64_t>(gib * 1024 * 1024 * 1024));
    struct Variant {
      const char* name;
      core::OffloadPlan plan;
    };
    const Variant variants[] = {
        {"cache only", core::OffloadPlan(catalog.size())},
        {"SOPHON + cache", decision.plan},
    };
    for (const auto& v : variants) {
      cache::CachedTrainingSession session(catalog, pipe, cm, config.cluster, batch_time,
                                           v.plan, capacity, 42);
      cache::CachedEpochResult last;
      for (int e = 0; e < 3; ++e) last = session.run_epoch();  // steady state
      table.add_row({gib == 0.0 ? "none" : strf("%.0f GiB", gib), v.name,
                     strf("%.1f%%", 100.0 * last.hit_rate()), bench::gb(last.stats.traffic),
                     strf("%.1f s", last.stats.epoch_time.value())});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n(dataset at rest: %s; 'cache only' with no cache = No-Off)\n",
              bench::gb(catalog.total_encoded()).c_str());
  return 0;
}
