// Ablation A6 — sharded storage clusters and placement skew.
//
// The paper models the storage side as one node; real deployments shard the
// dataset across a cluster whose nodes each contribute preprocessing CPU.
// This bench sweeps cluster width and compares balanced (hashed) placement
// against a skewed one, for both the flat decision engine (which only sees
// the aggregate core count) and the shard-aware engine.
#include "bench_common.h"
#include "core/profiler.h"
#include "net/wire.h"

using namespace sophon;

namespace {

std::function<sim::SampleFlow(std::size_t)> plan_flows(const dataset::Catalog& catalog,
                                                       const pipeline::Pipeline& pipe,
                                                       const pipeline::CostModel& cm,
                                                       const core::OffloadPlan& plan) {
  return [&catalog, &pipe, &cm, &plan](std::size_t idx) {
    const auto& meta = catalog.sample(idx);
    const std::size_t prefix = plan.prefix(idx);
    sim::SampleFlow f;
    f.storage_cpu = prefix > 0 ? pipe.prefix_cost(meta.raw, prefix, cm) : Seconds(0.0);
    f.wire = net::wire_size(pipe.shape_at(meta.raw, prefix));
    f.compute_cpu = pipe.suffix_cost(meta.raw, prefix, cm);
    return f;
  };
}

}  // namespace

int main() {
  bench::print_header("Ablation A6 — sharded storage cluster, shard-aware planning",
                      "(beyond the paper: its storage side is a single node)");

  const auto catalog = bench::openimages_catalog();
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto profiles = core::profile_stage2(catalog, pipe, cm);
  const auto gpu = model::GpuModel::lookup(model::NetKind::kAlexNet, model::GpuKind::kRtx6000);

  auto config = bench::paper_config();
  config.cluster.storage_cores = 1;  // per node
  const Seconds batch_time = gpu.batch_time(config.cluster.batch_size);
  const Seconds t_g = batch_time * static_cast<double>(
                                       (catalog.size() + config.cluster.batch_size - 1) /
                                       config.cluster.batch_size);

  // Skewed placement: 70% of samples on node 0, rest spread evenly.
  auto skewed_map = [&](int nodes) {
    std::vector<std::uint16_t> assignment(catalog.size());
    Rng rng(11);
    for (auto& node : assignment) {
      node = static_cast<std::uint16_t>(
          rng.bernoulli(0.7) ? 0 : rng.uniform_int(0, nodes - 1));
    }
    return storage::ShardMap::explicit_map(std::move(assignment), nodes);
  };

  TextTable table({"nodes (1 core each)", "placement", "offloaded", "epoch time", "traffic",
                   "busiest node CPU"});
  for (const int nodes : {1, 2, 4, 8}) {
    for (const auto& [label, shards] :
         {std::pair{"hashed (balanced)", storage::ShardMap::hashed(catalog.size(), nodes, 5)},
          {"skewed (70% on node 0)", skewed_map(nodes)}}) {
      const auto decision =
          core::decide_offloading_sharded(profiles, shards, config.cluster, t_g);
      const auto stats = sim::simulate_epoch_sharded(
          catalog.size(), plan_flows(catalog, pipe, cm, decision.plan), shards, config.cluster,
          batch_time, 42, 0);
      Seconds busiest;
      for (const auto busy : stats.node_cpu_busy) busiest = std::max(busiest, busy);
      table.add_row({strf("%d", nodes), label, strf("%zu", decision.offloaded),
                     strf("%.1f s", stats.totals.epoch_time.value()),
                     bench::gb(stats.totals.traffic), strf("%.1f s", busiest.value())});
    }
  }
  std::printf("%s", table.render().c_str());

  // Replica-aware routing: how much of the skew penalty does replication
  // buy back? (r replicas per sample; prefixes run on the least-loaded
  // holder.)
  std::printf("\nReplication vs skew (8 nodes, 70%% of primaries on node 0):\n");
  TextTable rep({"replication", "offloaded", "epoch time", "traffic"});
  const auto skewed8 = skewed_map(8);
  for (const int r : {1, 2, 3}) {
    const auto replicas = storage::ReplicaMap::replicated(skewed8, r, 5);
    const auto decision =
        core::decide_offloading_replicated(profiles, replicas, config.cluster, t_g);
    const auto stats = sim::simulate_epoch_sharded(
        catalog.size(), plan_flows(catalog, pipe, cm, decision.plan), decision.execution_nodes,
        config.cluster, batch_time, 42, 0);
    rep.add_row({strf("%d", r), strf("%zu", decision.offloaded),
                 strf("%.1f s", stats.totals.epoch_time.value()),
                 bench::gb(stats.totals.traffic)});
  }
  std::printf("%s", rep.render().c_str());
  return 0;
}
