// Ablation A1 — candidate ordering in the decision engine.
//
// DESIGN.md question: does greedy-by-efficiency actually beat
// greedy-by-absolute-reduction and random order? The difference should be
// largest when storage CPU is scarce (the efficiency ratio is exactly
// "traffic saved per unit of the scarce resource").
#include "bench_common.h"
#include "core/profiler.h"

using namespace sophon;

int main() {
  bench::print_header("Ablation A1 — decision-engine candidate ordering (OpenImages)",
                      "(not in paper; supports §3.2's efficiency-ordered greedy)");

  const auto catalog = bench::openimages_catalog();
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto profiles = core::profile_stage2(catalog, pipe, cm);
  const auto gpu = model::GpuModel::lookup(model::NetKind::kAlexNet, model::GpuKind::kRtx6000);

  TextTable table({"cores", "ordering", "offloaded", "predicted epoch", "simulated epoch",
                   "traffic"});
  for (const int cores : {1, 2, 4, 8}) {
    auto config = bench::paper_config(cores);
    const Seconds t_g =
        gpu.batch_time(config.cluster.batch_size) *
        static_cast<double>((catalog.size() + config.cluster.batch_size - 1) /
                            config.cluster.batch_size);
    for (const auto& [order, name] :
         {std::pair{core::CandidateOrder::kByEfficiency, "by efficiency (paper)"},
          {core::CandidateOrder::kByReduction, "by reduction"},
          {core::CandidateOrder::kRandom, "random"}}) {
      core::DecisionOptions opts;
      opts.order = order;
      opts.random_seed = 7;
      const auto decision = core::decide_offloading(profiles, config.cluster, t_g, opts);
      const auto stats = sim::simulate_epoch(
          catalog, pipe, cm, config.cluster,
          gpu.batch_time(config.cluster.batch_size), decision.plan.assignment(), 42, 0);
      table.add_row({strf("%d", cores), name, strf("%zu", decision.offloaded),
                     strf("%.1f s", decision.final_cost.predicted_epoch_time().value()),
                     strf("%.1f s", stats.epoch_time.value()), bench::gb(stats.traffic)});
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
