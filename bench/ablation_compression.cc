// Ablation A3 — selective compression of offloaded payloads (paper §6
// future work).
//
// On top of SOPHON's offload plan, the storage node may SJPG-re-encode
// image payloads before shipping. How much extra traffic does that recover,
// and at what storage-CPU price, across link speeds?
#include "bench_common.h"
#include "core/compression.h"
#include "core/profiler.h"

using namespace sophon;

int main() {
  bench::print_header("Ablation A3 — selective payload compression (OpenImages, §6 extension)",
                      "(future work in the paper: 'selectively compress preprocessed data')");

  const auto catalog = bench::openimages_catalog();
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto profiles = core::profile_stage2(catalog, pipe, cm);
  const auto gpu = model::GpuModel::lookup(model::NetKind::kAlexNet, model::GpuKind::kRtx6000);

  TextTable table({"bandwidth", "variant", "epoch time", "traffic", "compressed", "storage CPU"});
  for (const double mbps : {250.0, 500.0, 1000.0}) {
    auto config = bench::paper_config(48);
    config.cluster.bandwidth = Bandwidth::mbps(mbps);
    const Seconds batch_time = gpu.batch_time(config.cluster.batch_size);
    const Seconds t_g = batch_time * static_cast<double>(
                                         (catalog.size() + config.cluster.batch_size - 1) /
                                         config.cluster.batch_size);

    const auto base = core::decide_offloading(profiles, config.cluster, t_g);
    const auto plain =
        sim::simulate_epoch(catalog, pipe, cm, config.cluster, batch_time,
                            base.plan.assignment(), 42, 0);
    table.add_row({human_bandwidth(config.cluster.bandwidth), "SOPHON",
                   strf("%.1f s", plain.epoch_time.value()), bench::gb(plain.traffic), "0",
                   strf("%.1f s", plain.storage_cpu_busy.value())});

    const core::CompressionModel model;
    const auto compressed_plan = core::decide_compression(profiles, catalog, pipe, base.plan,
                                                          base.final_cost, config.cluster, model);
    const auto flows = core::make_compressed_flows(compressed_plan, catalog, pipe, cm, model);
    const auto stats = sim::simulate_epoch_flows(catalog.size(), flows, config.cluster,
                                                 batch_time, 42, 0);
    table.add_row({human_bandwidth(config.cluster.bandwidth), "SOPHON + compression",
                   strf("%.1f s", stats.epoch_time.value()), bench::gb(stats.traffic),
                   strf("%zu", compressed_plan.compressed_count),
                   strf("%.1f s", stats.storage_cpu_busy.value())});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
