// M3 — real-path data-loader throughput: wall-clock samples/second through
// fetch → deserialise → finish-pipeline, as worker count scales.
//
// NOTE: scaling with workers requires physical cores; on a single-core CI
// machine the curve is flat by construction (threads time-share one CPU).
#include <benchmark/benchmark.h>

#include "loader/loader.h"
#include "storage/dataset_store.h"
#include "storage/server.h"

namespace sophon {
namespace {

struct LoaderRig {
  dataset::DatasetProfile profile = [] {
    auto p = dataset::openimages_profile(48);
    p.min_pixels = 6e4;
    p.max_pixels = 2.0e5;
    return p;
  }();
  dataset::Catalog catalog = dataset::Catalog::generate(profile, 42);
  pipeline::Pipeline pipe = pipeline::Pipeline::standard();
  pipeline::CostModel cm;
  storage::DatasetStore store{catalog, 42, profile.quality};
  storage::StorageServer server{store, pipe, cm, {.seed = 42}};
  core::OffloadPlan plan{catalog.size()};

  LoaderRig() {
    // Pre-materialise so the benchmark measures the load path, not synth.
    for (std::size_t i = 0; i < catalog.size(); ++i) (void)store.get(i);
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      plan.set(i, static_cast<std::uint8_t>(i % 2 == 0 ? 2 : 0));
    }
  }
};

LoaderRig& rig() {
  static LoaderRig r;
  return r;
}

void BM_DataLoaderEpoch(benchmark::State& state) {
  auto& r = rig();
  const auto workers = static_cast<std::size_t>(state.range(0));
  std::size_t epoch = 0;
  for (auto _ : state) {
    loader::DataLoader loader(r.server, r.pipe, r.plan, r.catalog.size(),
                              {.num_workers = workers,
                               .queue_capacity = 16,
                               .seed = 42,
                               .epoch = epoch++});
    loader.start();
    std::size_t count = 0;
    while (loader.next()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(r.catalog.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DataLoaderEpoch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sophon

BENCHMARK_MAIN();
