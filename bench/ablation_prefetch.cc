// Ablation A14 — clairvoyant prefetching: depth x bandwidth x cache sweep.
//
// The epoch order is a seeded shuffle known before training starts, so the
// compute node can pipeline fetches ahead of the loop (NoPFS). This bench
// replays one epoch through the worker-level model (src/prefetch/replay.h)
// at prefetch depths {0 = demand, 1, 4, 16, 64}, link speeds {500 Mbps,
// 1 Gbps}, and raw-blob LRU sizes {none, 1 GiB}, and verifies the two
// properties the subsystem promises: with depth >= workers the epoch is
// strictly faster than demand fetching whenever the link is the bottleneck,
// and prefetching never inflates traffic (CoorDL's rule: bytes stay within
// 1% of the demand baseline — here they are exactly equal).
//
// Emits BENCH_prefetch.json with every row for EXPERIMENTS.md tooling.
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "cache/lru.h"
#include "core/metrics.h"
#include "core/serialize.h"
#include "dataset/sampler.h"
#include "net/wire.h"
#include "prefetch/replay.h"
#include "util/json.h"
#include "util/telemetry.h"

using namespace sophon;

namespace {

constexpr std::size_t kSamples = 8000;
constexpr std::size_t kWorkers = 8;
constexpr std::uint64_t kSeed = 42;
constexpr std::size_t kEpoch = 1;  // epoch 0 is the cache warm-up pass

}  // namespace

int main() {
  bench::print_header(
      "Ablation A14 — clairvoyant prefetch depth x bandwidth x cache (OpenImages subset)",
      "(NoPFS: exploiting the known access sequence hides I/O stalls; CoorDL: "
      "prefetch must not inflate traffic)");

  const auto catalog = dataset::Catalog::generate(dataset::openimages_profile(kSamples), kSeed);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto config = bench::paper_config(48);
  const auto gpu = model::GpuModel::lookup(config.net, config.gpu);
  const Seconds batch_time = gpu.batch_time(config.cluster.batch_size);

  // Demand baseline fetches raw blobs (no offloading) — the configuration
  // where the link is most exposed and look-ahead has the most to hide.
  const auto flow = [&](std::size_t idx) {
    const auto& meta = catalog.sample(idx);
    sim::SampleFlow f;
    f.wire = net::wire_size(pipe.shape_at(meta.raw, 0));
    f.compute_cpu = pipe.suffix_cost(meta.raw, 0, cm);
    return f;
  };

  TextTable table({"link", "cache", "depth", "bottleneck", "epoch time", "traffic", "hits",
                   "late", "stall", "peak inflight"});
  Json rows = Json::array();
  std::size_t link_bound_configs = 0;
  std::size_t link_bound_wins = 0;
  std::size_t traffic_violations = 0;

  // One registry accumulates across the whole sweep; per-bandwidth numbers
  // come out of snapshot deltas instead of resetting the metrics between
  // blocks — the same pattern a long-lived loader process uses per epoch.
  MetricsRegistry metrics;
  metrics.set_help("sophon_bench_replays", "Epoch replays executed by this sweep.");

  for (const double mbps : {500.0, 1000.0}) {
    const MetricsSnapshot sweep_start = metrics.snapshot();
    auto cluster = config.cluster;
    cluster.bandwidth = Bandwidth::mbps(mbps);
    for (const double cache_gib : {0.0, 1.0}) {
      // Warm-up pass: run the epoch-0 access order through the LRU; whatever
      // is resident afterwards is served locally during the measured epoch.
      std::unordered_set<std::uint64_t> resident;
      if (cache_gib > 0.0) {
        cache::LruCache lru(Bytes::gib(static_cast<std::int64_t>(cache_gib)));
        const dataset::EpochOrder warmup(catalog.size(), kSeed, 0);
        for (std::size_t pos = 0; pos < warmup.size(); ++pos) {
          const auto id = warmup.at(pos);
          lru.access(id, flow(id).wire);
        }
        for (std::size_t id = 0; id < catalog.size(); ++id) {
          if (lru.contains(id)) resident.insert(id);
        }
      }

      prefetch::ReplayOptions options;
      options.workers = kWorkers;
      if (!resident.empty()) {
        options.served_locally = [&resident](std::uint64_t id) { return resident.contains(id); };
      }

      prefetch::ReplayResult demand;
      for (const std::size_t depth : {0, 1, 4, 16, 64}) {
        options.prefetch.depth = depth;
        const auto result = [&] {
          metrics.counter("sophon_bench_replays").increment();
          ScopedTimer timer(metrics.duration("sophon_bench_replay"));
          return prefetch::replay_epoch(catalog.size(), flow, cluster, batch_time, kSeed, kEpoch,
                                        options);
        }();
        if (depth == 0) demand = result;
        metrics.counter("sophon_bench_simulated_bytes")
            .increment(static_cast<std::uint64_t>(result.epoch.traffic.count()));

        // Label the config's bottleneck from the demand-side cost vector.
        // Local preprocessing runs on the loader's workers, not the whole
        // core budget, so t_cc divides by the worker count.
        const core::EpochCostVector costs{
            demand.epoch.gpu_busy,
            demand.epoch.compute_cpu_busy / static_cast<double>(kWorkers),
            demand.epoch.storage_cpu_busy / static_cast<double>(cluster.storage_cores),
            cluster.bandwidth.transfer_time(demand.epoch.traffic)};
        const auto bottleneck = costs.bottleneck();
        const bool link_bound = bottleneck == core::Bottleneck::kIo;

        if (depth >= 4 && link_bound) {
          ++link_bound_configs;
          if (result.epoch.epoch_time < demand.epoch.epoch_time) ++link_bound_wins;
        }
        const auto delta = result.epoch.traffic >= demand.epoch.traffic
                               ? result.epoch.traffic - demand.epoch.traffic
                               : demand.epoch.traffic - result.epoch.traffic;
        if (delta.as_double() > 0.01 * demand.epoch.traffic.as_double()) ++traffic_violations;

        table.add_row({strf("%.0f Mbps", mbps),
                       cache_gib == 0.0 ? "none" : strf("%.0f GiB", cache_gib),
                       depth == 0 ? "demand" : strf("%zu", depth),
                       std::string(core::bottleneck_name(bottleneck)),
                       strf("%.1f s", result.epoch.epoch_time.value()),
                       bench::gb(result.epoch.traffic),
                       strf("%llu", static_cast<unsigned long long>(result.prefetch.hits)),
                       strf("%llu", static_cast<unsigned long long>(result.prefetch.late_hits)),
                       strf("%.1f s", result.prefetch.worker_stall.value()),
                       strf("%llu", static_cast<unsigned long long>(result.prefetch.max_inflight))});

        Json row = Json::object();
        row.set("mbps", mbps);
        row.set("cache_gib", cache_gib);
        row.set("depth", static_cast<std::int64_t>(depth));
        row.set("workers", static_cast<std::int64_t>(kWorkers));
        row.set("bottleneck", std::string(core::bottleneck_name(bottleneck)));
        row.set("epoch_seconds", result.epoch.epoch_time.value());
        row.set("traffic_bytes", static_cast<std::int64_t>(result.epoch.traffic.count()));
        row.set("prefetch_hits", static_cast<std::int64_t>(result.prefetch.hits));
        row.set("late_hits", static_cast<std::int64_t>(result.prefetch.late_hits));
        row.set("served_locally", static_cast<std::int64_t>(result.prefetch.served_locally));
        row.set("worker_stall_seconds", result.prefetch.worker_stall.value());
        row.set("max_inflight", static_cast<std::int64_t>(result.prefetch.max_inflight));
        rows.push_back(row);
      }
    }
    const MetricsSnapshot sweep =
        snapshot_delta(metrics.snapshot(), sweep_start);
    std::printf("[%.0f Mbps] %llu replays, %.2f s replay wall-clock, %.2f GB simulated traffic "
                "(snapshot delta)\n",
                mbps,
                static_cast<unsigned long long>(sweep.counters.at("sophon_bench_replays")),
                sweep.durations.at("sophon_bench_replay").sum,
                static_cast<double>(sweep.counters.at("sophon_bench_simulated_bytes")) / 1e9);
  }

  std::printf("%s\n", table.render().c_str());

  if (!bench::ArtifactEmitter("sophon.bench_prefetch")
           .meta("samples", static_cast<std::int64_t>(kSamples))
           .meta("seed", static_cast<std::int64_t>(kSeed))
           .meta("epoch", static_cast<std::int64_t>(kEpoch))
           .write("BENCH_prefetch.json", rows)) {
    return 1;
  }

  if (link_bound_wins == link_bound_configs && traffic_violations == 0) {
    std::printf("verified: prefetch depth>=4 beats demand on %zu/%zu link-bound configs, "
                "traffic within 1%% everywhere\n",
                link_bound_wins, link_bound_configs);
    return 0;
  }
  std::printf("FAILED: %zu/%zu link-bound wins, %zu traffic violations\n", link_bound_wins,
              link_bound_configs, traffic_violations);
  return 1;
}
