// Ablation A16 — stage materialization vs. disk-space budget.
//
// The packed shard store trades disk space for storage CPU: persisting a
// sample's deterministic pipeline prefix turns that prefix's per-epoch cost
// into a near-free shard read, and the planner (src/shard/planner.h) spends
// the byte budget greedily by CPU-seconds-saved per byte. This bench sweeps
// the budget over an 8 k-sample OpenImages subset for both pipelines:
//
//   standard    Decode | RRC | RHF | ToTensor | Normalize — only Decode is
//               deterministic, so materialization saves CPU but the wire
//               still carries (large) decoded images: no traffic change.
//   validation  Decode | Resize | CenterCrop | ToTensor | Normalize — fully
//               deterministic, so post-resize stages can be materialised;
//               the re-ranked decision then offloads those samples at deep
//               prefixes whose wire size is far below the encoded blob:
//               the crossover where materialization ALSO cuts traffic.
//
// Self-verifies: storage CPU under the base plan is monotone non-increasing
// in the budget for both pipelines, the re-ranked predicted epoch time never
// regresses versus the unmaterialised baseline, and the validation pipeline
// shows the traffic crossover at the top budget. Emits BENCH_materialize.json.
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_common.h"
#include "core/decision.h"
#include "core/profiler.h"
#include "net/wire.h"
#include "pipeline/extra_ops.h"
#include "shard/planner.h"
#include "util/json.h"

using namespace sophon;

namespace {

constexpr std::size_t kSamples = 8000;
constexpr std::uint64_t kSeed = 42;
constexpr std::int64_t kUnlimited = -1;  // budget sentinel in rows/labels

Bytes budget_bytes(std::int64_t mib) {
  return mib == kUnlimited ? Bytes(std::numeric_limits<std::int64_t>::max() / 2)
                           : Bytes::mib(mib);
}

std::string budget_label(std::int64_t mib) {
  if (mib == kUnlimited) return "unlimited";
  if (mib == 0) return "none";
  return strf("%lld MiB", static_cast<long long>(mib));
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A16 — stage materialization: storage CPU and traffic vs. disk budget "
      "(OpenImages subset)",
      "(materialised prefixes cost ~zero t_cs, so the greedy re-rank picks them first; "
      "deterministic post-resize stages also shrink the wire)");

  const auto catalog = dataset::Catalog::generate(dataset::openimages_profile(kSamples), kSeed);
  // Scarce storage CPU (2 cores): the greedy stops offloading once t_cs
  // overtakes t_net, so freeing storage CPU via the shard directly unlocks
  // more offloading — and with it, the traffic cut.
  const auto config = bench::paper_config(2);
  const auto gpu = model::GpuModel::lookup(config.net, config.gpu);
  const double batches = std::ceil(static_cast<double>(catalog.size()) /
                                   static_cast<double>(config.cluster.batch_size));
  const Seconds gpu_epoch = gpu.batch_time(config.cluster.batch_size) * batches;
  const pipeline::CostModel cm;
  const std::vector<std::int64_t> budgets = {0, 256, 1024, 4096, kUnlimited};

  TextTable table({"pipeline", "budget", "materialized", "shard size", "storage CPU", "epoch",
                   "traffic", "offloaded"});
  Json rows = Json::array();
  bool monotone = true;
  bool no_regression = true;
  double validation_first_traffic = 0.0;
  double validation_last_traffic = 0.0;

  struct PipeCase {
    const char* name;
    pipeline::Pipeline pipe;
  };
  const PipeCase cases[] = {{"standard", pipeline::Pipeline::standard()},
                            {"validation", pipeline::validation_pipeline()}};

  for (const auto& pc : cases) {
    const auto profiles = core::profile_stage2(catalog, pc.pipe, cm);
    const auto base = core::decide_offloading(profiles, config.cluster, gpu_epoch);
    double prev_cpu = std::numeric_limits<double>::infinity();
    const double baseline_epoch = base.final_cost.predicted_epoch_time().value();

    for (const std::int64_t mib : budgets) {
      const auto mat = shard::plan_materialization(
          profiles, base.plan, pc.pipe.deterministic_prefix(), budget_bytes(mib));
      const auto adjusted = shard::adjusted_profiles(profiles, mat);
      const auto redecided = core::decide_offloading(adjusted, config.cluster, gpu_epoch);

      // Storage CPU an epoch actually burns under the *base* plan once the
      // shard absorbs the materialised prefixes — the budget's direct payoff,
      // independent of how the re-rank then respends the freed cores.
      Seconds storage_cpu;
      for (const auto& p : adjusted) {
        for (std::size_t j = 0; j < base.plan.prefix(p.sample_index); ++j) {
          storage_cpu += p.op_costs[j];
        }
      }
      // Traffic under the re-ranked plan: exact wire bytes per sample.
      Bytes traffic;
      for (std::size_t i = 0; i < catalog.size(); ++i) {
        traffic += net::wire_size(
            pc.pipe.shape_at(catalog.sample(i).raw, redecided.plan.prefix(i)));
      }
      const double epoch_s = redecided.final_cost.predicted_epoch_time().value();

      if (storage_cpu.value() > prev_cpu + 1e-9) monotone = false;
      prev_cpu = storage_cpu.value();
      if (epoch_s > baseline_epoch * (1.0 + 1e-9)) no_regression = false;
      if (pc.pipe.deterministic_prefix() == pc.pipe.size()) {  // validation
        if (mib == budgets.front()) validation_first_traffic = traffic.as_double();
        if (mib == budgets.back()) validation_last_traffic = traffic.as_double();
      }

      table.add_row({pc.name, budget_label(mib), strf("%zu", mat.materialized),
                     bench::gb(mat.total_bytes), strf("%.1f s", storage_cpu.value()),
                     strf("%.1f s", epoch_s), bench::gb(traffic),
                     strf("%zu", redecided.plan.offloaded_count())});

      Json row = Json::object();
      row.set("pipeline", pc.name);
      row.set("budget_mib", mib);
      row.set("materialized", static_cast<std::int64_t>(mat.materialized));
      row.set("shard_bytes", static_cast<std::int64_t>(mat.total_bytes.count()));
      row.set("cpu_saved_seconds", mat.cpu_saved.value());
      row.set("storage_cpu_seconds", storage_cpu.value());
      row.set("epoch_seconds", epoch_s);
      row.set("baseline_epoch_seconds", baseline_epoch);
      row.set("traffic_bytes", static_cast<std::int64_t>(traffic.count()));
      row.set("offloaded", static_cast<std::int64_t>(redecided.plan.offloaded_count()));
      rows.push_back(row);
    }
  }

  std::printf("%s\n", table.render().c_str());

  if (!bench::ArtifactEmitter("sophon.bench_materialize")
           .meta("samples", static_cast<std::int64_t>(kSamples))
           .meta("seed", static_cast<std::int64_t>(kSeed))
           .meta("storage_cores", static_cast<std::int64_t>(config.cluster.storage_cores))
           .write("BENCH_materialize.json", rows)) {
    return 1;
  }

  const bool crossover = validation_last_traffic < 0.99 * validation_first_traffic;
  if (monotone && no_regression && crossover) {
    std::printf("verified: storage CPU monotone non-increasing in budget, epoch time never "
                "regresses, validation-pipeline traffic crossover %.2f GB -> %.2f GB\n",
                validation_first_traffic / 1e9, validation_last_traffic / 1e9);
    return 0;
  }
  std::printf("FAILED: monotone=%d no_regression=%d crossover=%d (traffic %.2f -> %.2f GB)\n",
              monotone, no_regression, crossover, validation_first_traffic / 1e9,
              validation_last_traffic / 1e9);
  return 1;
}
