// Figure 1a — per-sample size across the preprocessing pipeline.
//
// The paper traces two representative samples: Sample A, a 462 KB JPEG of a
// large photo whose size drops to ~151 KB after RandomResizedCrop, and
// Sample B, a small JPEG that is smallest in its raw form. We reproduce the
// trajectory with the analytic path and cross-check it against real
// execution of materialised synthetic images with the same characteristics.
#include "bench_common.h"
#include "codec/sjpg.h"
#include "dataset/synth.h"
#include "net/wire.h"
#include "pipeline/pipeline.h"

using namespace sophon;

namespace {

void print_trajectory(const char* label, const pipeline::SampleShape& raw) {
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto trace = pipe.analytic_trace(raw, cm);

  TextTable table({"stage", "operation", "size", "op cpu time"});
  static const char* kStageNames[] = {"0 raw",      "1 decoded", "2 cropped",
                                      "3 flipped",  "4 tensor",  "5 normalized"};
  static const char* kOps[] = {"-",        "Decode",   "RandomResizedCrop",
                               "RandomHorizontalFlip", "ToTensor", "Normalize"};
  for (std::size_t s = 0; s < trace.size(); ++s) {
    table.add_row({kStageNames[s], kOps[s], human_bytes(trace[s].size),
                   s == 0 ? "-" : human_seconds(trace[s].op_cost)});
  }
  std::printf("%s (raw %s, %dx%d):\n%s", label, human_bytes(raw.bytes).c_str(), raw.width,
              raw.height, table.render().c_str());
  std::printf("min-size stage: %zu\n\n", pipe.min_size_stage(raw));
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 1a — sample size across preprocessing stages",
      "Sample A: 462KB raw -> ~151KB after RandomResizedCrop, 4x larger after "
      "ToTensor; Sample B: smallest as raw JPEG");

  // Sample A: the paper's 462 KB, 2048x1536 photograph.
  print_trajectory("Sample A", pipeline::SampleShape::encoded(Bytes(462 * 1024), 2048, 1536));
  // Sample B: a small thumbnail-class JPEG.
  print_trajectory("Sample B", pipeline::SampleShape::encoded(Bytes(95 * 1024), 500, 375));

  // Cross-validation on the real byte path: materialise a synthetic image
  // with Sample A's geometry and run the real pipeline, printing the actual
  // wire size at every stage.
  dataset::SampleMeta meta;
  meta.id = 0;
  meta.raw = pipeline::SampleShape::encoded(Bytes(1), 2048, 1536, 3);
  meta.texture = 0.35;
  const auto blob = dataset::materialize_encoded(meta, 42, 55);
  const auto pipe = pipeline::Pipeline::standard();

  TextTable table({"stage", "real wire size"});
  pipeline::SampleData data = pipeline::EncodedBlob{blob};
  table.add_row({"0 raw", human_bytes(Bytes(static_cast<std::int64_t>(
                              net::serialize_sample(data).size())))});
  for (std::size_t s = 1; s <= pipe.size(); ++s) {
    data = pipe.run_seeded(std::move(data), s - 1, s, 7);
    table.add_row({strf("%zu %s", s, std::string(pipe.op(s - 1).name()).c_str()),
                   human_bytes(Bytes(static_cast<std::int64_t>(
                       net::serialize_sample(data).size())))});
  }
  std::printf("Materialised cross-check (real codec + real ops, 2048x1536 synthetic):\n%s\n",
              table.render().c_str());
  return 0;
}
