// Ablation A8 — preprocess-once reuse vs online selective offloading (§3.3).
//
// The paper argues against preprocessing to minimum size once and reusing
// it: traffic and CPU look great, but every epoch then trains on the same
// augmented variant, which costs accuracy. This bench puts numbers on both
// sides of that trade-off.
#include "bench_common.h"
#include "core/decision.h"
#include "core/profiler.h"
#include "core/reuse.h"
#include "dataset/synth.h"

using namespace sophon;

int main() {
  bench::print_header("Ablation A8 — preprocess-once reuse vs SOPHON (§3.3, OpenImages)",
                      "paper §3.3: reuse 'risks diminishing training accuracy' because random "
                      "augmentations are drawn once");

  const auto catalog = bench::openimages_catalog();
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto config = bench::paper_config(48);
  const auto gpu = model::GpuModel::lookup(config.net, config.gpu);
  const Seconds batch_time = gpu.batch_time(config.cluster.batch_size);
  const Seconds t_g = batch_time * static_cast<double>(
                                       (catalog.size() + config.cluster.batch_size - 1) /
                                       config.cluster.batch_size);
  constexpr std::size_t kEpochs = 50;

  // No-Off and SOPHON for reference.
  const auto no_off = sim::simulate_epoch(catalog, pipe, cm, config.cluster, batch_time, {}, 42,
                                          1);
  const auto profiles = core::profile_stage2(catalog, pipe, cm);
  const auto decision = core::decide_offloading(profiles, config.cluster, t_g);
  const auto sophon = sim::simulate_epoch(catalog, pipe, cm, config.cluster, batch_time,
                                          decision.plan.assignment(), 42, 1);
  const auto reuse = core::evaluate_preprocess_once(catalog, pipe, cm, config.cluster,
                                                    batch_time, kEpochs, 42);

  TextTable table({"strategy", "steady epoch time", "traffic/epoch", "storage CPU/epoch",
                   "extra storage footprint", "variants/sample over 50 epochs"});
  table.add_row({"No-Off", strf("%.1f s", no_off.epoch_time.value()), bench::gb(no_off.traffic),
                 "0 s", "0 GB", "50"});
  table.add_row({"SOPHON", strf("%.1f s", sophon.epoch_time.value()), bench::gb(sophon.traffic),
                 strf("%.1f s", sophon.storage_cpu_busy.value()), "0 GB", "50"});
  table.add_row({"Preprocess-once", strf("%.1f s", reuse.steady_epoch.epoch_time.value()),
                 bench::gb(reuse.steady_epoch.traffic), "0 s",
                 bench::gb(reuse.stored_footprint),
                 strf("%.1f", reuse.variants_per_sample)});
  std::printf("%s", table.render().c_str());

  // Make the diversity loss concrete on a real sample.
  dataset::SampleMeta meta;
  meta.id = 17;
  meta.raw = pipeline::SampleShape::encoded(Bytes(1), 640, 480, 3);
  meta.texture = 0.4;
  const pipeline::SampleData raw =
      pipeline::EncodedBlob{dataset::materialize_encoded(meta, 42, 70)};
  std::printf(
      "\nreal-pipeline check, one 640x480 sample over 50 epochs: online %zu distinct augmented "
      "tensors, reuse %zu\n",
      core::count_distinct_variants(pipe, raw, 50, 42, meta.id, false),
      core::count_distinct_variants(pipe, raw, 50, 42, meta.id, true));
  std::printf(
      "(reuse wins on every systems metric and loses the one that matters for accuracy —\n"
      " the paper's rationale for keeping preprocessing online and offloading selectively.)\n");
  return 0;
}
