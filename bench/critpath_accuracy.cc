// Critical-path what-if accuracy pin: every projection the analyzer ranks
// must match a real simulator re-run under the same perturbed parameters.
//
// The analyzer (src/obs/critpath) promises its projections are "as
// trustworthy as the simulator itself" because the retimer mirrors the
// discrete-event schedulers operation-for-operation rather than fitting a
// regression. This bench holds that promise to account across both
// disciplines (batch-window admission and worker-lane replay with
// clairvoyant prefetch) and across cluster regimes (a link-bound 100 Mbps
// edge config and the paper's 500 Mbps evaluation config with a real
// offload plan in force): for each config it runs the stock what-if
// scenario set, re-runs the *actual* simulator under each perturbed config,
// and pins the relative prediction error at 5% — in practice the retimer
// agrees to float rounding, and errors below 1e-9 are clamped to an exact
// zero so the committed artifact stays byte-stable for bench-compare.
//
// Self-verifies: every scenario within tolerance, at least 3 scenarios
// validated per config, baseline reconciliation to the observed epoch time,
// and byte-identical analyzer output across repeated runs. Emits
// BENCH_critpath.json for EXPERIMENTS.md tooling and check.sh
// --bench-regress.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/decision.h"
#include "core/profiler.h"
#include "net/wire.h"
#include "obs/critpath/critpath.h"
#include "obs/critpath/whatif.h"
#include "prefetch/replay.h"
#include "sim/trainer.h"
#include "util/json.h"

using namespace sophon;

namespace {

constexpr std::size_t kSamples = 4000;
constexpr std::uint64_t kSeed = 42;
constexpr double kTolerance = 0.05;

struct BenchConfig {
  std::string name;
  obs::critpath::EpochParams params;
  bool offload_plan = false;  // run decide_offloading and apply its plan
};

/// Prediction errors this far below the pin are float rounding; publish them
/// as an exact zero so re-runs diff clean against the committed artifact.
double clamp_error(double error) { return error < 1e-9 ? 0.0 : error; }

/// Ground truth: the real simulator under one (possibly perturbed) config.
Seconds simulate(const obs::critpath::EpochParams& params,
                 const std::function<sim::SampleFlow(std::size_t)>& flow) {
  if (params.discipline == obs::critpath::Discipline::kWorkerReplay) {
    return prefetch::replay_epoch(params.num_samples, flow, params.cluster,
                                  params.gpu_batch_time, params.seed, params.epoch_index,
                                  params.replay)
        .epoch.epoch_time;
  }
  return sim::simulate_epoch_flows(params.num_samples, flow, params.cluster,
                                   params.gpu_batch_time, params.seed, params.epoch_index)
      .epoch_time;
}

}  // namespace

int main() {
  bench::print_header(
      "Critical-path what-if accuracy — projections vs simulator re-runs "
      "(OpenImages subset)",
      "(retimer mirrors the DES schedulers exactly, so single-knob projections "
      "validate against real re-runs instead of trusting a fitted model)");

  const auto catalog = dataset::Catalog::generate(dataset::openimages_profile(kSamples), kSeed);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto gpu = model::GpuModel::lookup(model::NetKind::kAlexNet, model::GpuKind::kRtx6000);

  std::vector<BenchConfig> configs;
  {
    // Link-bound edge cluster, batch-window discipline: the regime where
    // buying bandwidth pays and the link dominates the blame vector.
    BenchConfig c;
    c.name = "batch_window_link_bound";
    c.params.cluster.compute_cores = 16;
    c.params.cluster.storage_cores = 4;
    c.params.cluster.bandwidth = Bandwidth::mbps(100.0);
    c.params.cluster.batch_size = 64;
    configs.push_back(c);
  }
  {
    // Same link-bound cluster under worker-lane replay with prefetch: adds
    // the depth/worker scenarios and the staging-admission dependencies.
    BenchConfig c;
    c.name = "worker_replay_link_bound";
    c.params.cluster.compute_cores = 16;
    c.params.cluster.storage_cores = 4;
    c.params.cluster.bandwidth = Bandwidth::mbps(100.0);
    c.params.cluster.batch_size = 64;
    c.params.discipline = obs::critpath::Discipline::kWorkerReplay;
    c.params.replay.workers = 4;
    c.params.replay.prefetch.depth = 8;
    configs.push_back(c);
  }
  {
    // The paper's evaluation cluster with a real offload plan in force, so
    // offloaded samples exercise the storage-CPU edges of the DAG.
    BenchConfig c;
    c.name = "worker_replay_paper_plan";
    c.params.cluster = bench::paper_config(8).cluster;
    c.params.discipline = obs::critpath::Discipline::kWorkerReplay;
    c.params.replay.workers = 4;
    c.params.replay.prefetch.depth = 16;
    c.offload_plan = true;
    configs.push_back(c);
  }

  Json rows = Json::array();
  double max_error = 0.0;
  std::size_t scenarios_total = 0;
  std::size_t scenarios_ok = 0;
  bool deterministic = true;
  bool reconciled = true;

  for (auto& config : configs) {
    auto& params = config.params;
    params.seed = kSeed;
    params.num_samples = catalog.size();
    params.gpu_batch_time = gpu.batch_time(params.cluster.batch_size);

    core::OffloadPlan plan(catalog.size());
    if (config.offload_plan) {
      const auto profiles = core::profile_stage2(catalog, pipe, cm);
      const double batches = std::ceil(static_cast<double>(catalog.size()) /
                                       static_cast<double>(params.cluster.batch_size));
      plan = core::decide_offloading(profiles, params.cluster,
                                     params.gpu_batch_time * batches)
                 .plan;
    }
    const auto flow = [&](std::size_t idx) {
      const auto& meta = catalog.sample(idx);
      const std::size_t prefix = plan.prefix(idx);
      sim::SampleFlow f;
      if (prefix > 0) f.storage_cpu = pipe.prefix_cost(meta.raw, prefix, cm);
      f.wire = net::wire_size(pipe.shape_at(meta.raw, prefix));
      f.compute_cpu = pipe.suffix_cost(meta.raw, prefix, cm);
      return f;
    };
    const obs::critpath::DemandFn demand = [&flow](std::size_t i) {
      const auto f = flow(i);
      return obs::critpath::SampleDemand{f.storage_cpu, f.compute_cpu, f.wire, f.delay};
    };

    const Seconds observed = simulate(params, flow);
    const auto report = obs::critpath::project(
        demand, params, obs::critpath::default_scenarios(params), observed);
    const auto rerun = obs::critpath::project(
        demand, params, obs::critpath::default_scenarios(params), observed);
    deterministic = deterministic &&
                    report.to_json().dump() == rerun.to_json().dump();
    reconciled = reconciled && report.baseline.reconcile_error < 0.01;

    std::printf("%s: observed %.3f s, bottleneck %s, reconcile error %.1e, plan offloads %zu\n",
                config.name.c_str(), observed.value(),
                std::string(obs::critpath::resource_name(report.baseline.bottleneck())).c_str(),
                report.baseline.reconcile_error, plan.offloaded_count());

    Json baseline_row = Json::object();
    baseline_row.set("config", config.name);
    baseline_row.set("scenario", std::string("baseline"));
    baseline_row.set("projected_seconds", report.baseline.epoch_time.value());
    baseline_row.set("simulated_seconds", observed.value());
    baseline_row.set("rel_error", clamp_error(report.baseline.reconcile_error));
    baseline_row.set("speedup", 1.0);
    baseline_row.set("bottleneck",
                     std::string(obs::critpath::resource_name(report.baseline.bottleneck())));
    rows.push_back(baseline_row);

    for (const auto& projection : report.ranked) {
      const Seconds actual = simulate(projection.params, flow);
      const double error =
          clamp_error(std::fabs(projection.projected_epoch_time.value() - actual.value()) /
                      std::max(actual.value(), 1e-12));
      max_error = std::max(max_error, error);
      ++scenarios_total;
      if (error <= kTolerance) ++scenarios_ok;
      std::printf("  %-22s projected %9.3f s | simulated %9.3f s | error %.2e | x%.2f -> %s\n",
                  projection.name.c_str(), projection.projected_epoch_time.value(),
                  actual.value(), error, projection.speedup,
                  std::string(obs::critpath::resource_name(projection.bottleneck)).c_str());
      Json row = Json::object();
      row.set("config", config.name);
      row.set("scenario", projection.name);
      row.set("projected_seconds", projection.projected_epoch_time.value());
      row.set("simulated_seconds", actual.value());
      row.set("rel_error", error);
      row.set("speedup", projection.speedup);
      row.set("bottleneck",
              std::string(obs::critpath::resource_name(projection.bottleneck)));
      rows.push_back(row);
    }
    std::printf("\n");
  }

  if (!bench::ArtifactEmitter("sophon.bench_critpath")
           .meta("samples", static_cast<std::int64_t>(kSamples))
           .meta("seed", static_cast<std::int64_t>(kSeed))
           .meta("tolerance", kTolerance)
           .meta("scenarios", static_cast<std::int64_t>(scenarios_total))
           .meta("validated", static_cast<std::int64_t>(scenarios_ok))
           .meta("max_rel_error", max_error)
           .write("BENCH_critpath.json", rows)) {
    return 1;
  }

  const bool enough = scenarios_total >= 3 * configs.size() &&
                      scenarios_ok == scenarios_total;
  if (enough && deterministic && reconciled && max_error <= kTolerance) {
    std::printf("verified: what-if projections match simulator re-runs — %zu of %zu "
                "scenarios within %.0f%% (max error %.1e), baselines reconcile, "
                "deterministic across runs\n",
                scenarios_ok, scenarios_total, 100.0 * kTolerance, max_error);
    return 0;
  }
  std::printf("FAILED: validated %zu/%zu, max error %.2e, deterministic=%d, reconciled=%d\n",
              scenarios_ok, scenarios_total, max_error, deterministic ? 1 : 0,
              reconciled ? 1 : 0);
  return 1;
}
