// M1 — codec micro-benchmarks: SJPG encode/decode throughput across texture
// and quality, plus the pixel kernels the pipeline executes per sample.
#include <benchmark/benchmark.h>

#include "codec/sjpg.h"
#include "dataset/synth.h"
#include "image/ops.h"

namespace sophon {
namespace {

image::Image synth(int w, int h, double texture) {
  dataset::SampleMeta meta;
  meta.id = 1;
  meta.raw = pipeline::SampleShape::encoded(Bytes(1), w, h, 3);
  meta.texture = texture;
  return dataset::generate_synthetic_image(meta, 42);
}

void BM_SjpgEncode(benchmark::State& state) {
  const auto img = synth(512, 384, static_cast<double>(state.range(0)) / 100.0);
  const int quality = static_cast<int>(state.range(1));
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto blob = codec::sjpg_encode(img, quality);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["bpp"] = static_cast<double>(bytes) * 8.0 / (512.0 * 384.0);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 512 * 384 * 3);
}
BENCHMARK(BM_SjpgEncode)
    ->Args({10, 95})
    ->Args({10, 55})
    ->Args({50, 95})
    ->Args({50, 55})
    ->Args({90, 95})
    ->Args({90, 55});

void BM_SjpgDecode(benchmark::State& state) {
  const auto blob = codec::sjpg_encode(synth(512, 384, 0.5), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto img = codec::sjpg_decode(blob);
    benchmark::DoNotOptimize(img);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 512 * 384 * 3);
}
BENCHMARK(BM_SjpgDecode)->Arg(95)->Arg(55);

void BM_ResizeBilinear(benchmark::State& state) {
  const auto img = synth(static_cast<int>(state.range(0)), static_cast<int>(state.range(0)), 0.5);
  for (auto _ : state) {
    auto out = image::resize_bilinear(img, 224, 224);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ResizeBilinear)->Arg(512)->Arg(1024)->Arg(2048);

void BM_HorizontalFlip(benchmark::State& state) {
  const auto img = synth(224, 224, 0.5);
  for (auto _ : state) {
    auto out = image::horizontal_flip(img);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_HorizontalFlip);

void BM_ToTensorNormalize(benchmark::State& state) {
  const auto img = synth(224, 224, 0.5);
  for (auto _ : state) {
    auto t = image::to_tensor(img);
    image::normalize(t, image::kImagenetMean, image::kImagenetStd);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ToTensorNormalize);

}  // namespace
}  // namespace sophon

BENCHMARK_MAIN();
