// Ablation A15 — online adaptive re-planning under a mid-run bandwidth drop.
//
// The greedy plan is calibrated against a healthy 8 Gbps link, where the
// network is not predominant and SOPHON offloads nothing. At epoch 3 the
// link degrades 4x (8 Gbps -> 2 Gbps) and stays degraded. The static plan
// keeps shipping raw bytes into the slow link; the adaptive replanner
// (src/core/adapt) sees the t_net drift at the next epoch boundary, re-fits
// the bandwidth coefficient from the measured transfer time, re-runs the
// greedy with it, and swaps the new plan in at the boundary — recovering
// most of the regression. An oracle series (planned against the degraded
// link from epoch 0) bounds what any replanner could achieve.
//
// Self-verifies the acceptance property: the adaptive plan recovers at least
// half of the epoch-time regression the drop induced on the static plan,
// and the whole run is deterministic (two adaptive runs produce identical
// rows). Emits BENCH_adapt.json with every row for EXPERIMENTS.md tooling.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/adapt/loop.h"
#include "core/serialize.h"
#include "util/json.h"

using namespace sophon;

namespace {

constexpr std::size_t kSamples = 8000;
constexpr std::uint64_t kSeed = 42;
constexpr std::size_t kEpochs = 10;
constexpr std::size_t kDropEpoch = 3;
constexpr double kPlannedMbps = 8000.0;
constexpr double kDropFactor = 4.0;

core::adapt::RunResult run_series(const dataset::Catalog& catalog,
                                  const pipeline::Pipeline& pipe,
                                  const pipeline::CostModel& cm,
                                  const sim::ClusterConfig& planned, Seconds batch_time,
                                  bool adapt) {
  core::adapt::RunOptions options;
  options.epochs = kEpochs;
  options.adapt = adapt;
  options.seed = kSeed;
  options.bandwidth_at = [](std::size_t epoch) {
    const double mbps = epoch >= kDropEpoch ? kPlannedMbps / kDropFactor : kPlannedMbps;
    return Bandwidth::mbps(mbps);
  };
  return core::adapt::run_adaptive(catalog, pipe, cm, planned, batch_time, options);
}

double mean_epoch_time(const std::vector<core::adapt::EpochRow>& rows, std::size_t from,
                       std::size_t to) {
  double sum = 0.0;
  for (std::size_t i = from; i < to; ++i) sum += rows[i].epoch_time.value();
  return sum / static_cast<double>(to - from);
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A15 — adaptive re-planning vs static plan, 4x mid-run bandwidth drop "
      "(OpenImages subset)",
      "(DS-Analyzer: stall attribution must feed back into configuration; SOPHON's plan "
      "drifts when the link departs from its calibration)");

  const auto catalog = dataset::Catalog::generate(dataset::openimages_profile(kSamples), kSeed);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  auto planned = bench::paper_config(48).cluster;
  planned.bandwidth = Bandwidth::mbps(kPlannedMbps);
  const auto gpu = model::GpuModel::lookup(model::NetKind::kAlexNet, model::GpuKind::kRtx6000);
  const Seconds batch_time = gpu.batch_time(planned.batch_size);

  const auto run_static = run_series(catalog, pipe, cm, planned, batch_time, false);
  const auto run_adapt = run_series(catalog, pipe, cm, planned, batch_time, true);
  const auto run_adapt_again = run_series(catalog, pipe, cm, planned, batch_time, true);

  // Oracle: a plan calibrated against the degraded link from epoch 0 — the
  // floor any boundary-granularity replanner can hope to track.
  auto degraded = planned;
  degraded.bandwidth = Bandwidth::mbps(kPlannedMbps / kDropFactor);
  const auto run_oracle = run_series(catalog, pipe, cm, degraded, batch_time, false);

  TextTable table({"epoch", "link", "static", "adaptive", "oracle", "adaptive decision"});
  Json rows = Json::array();
  for (std::size_t e = 0; e < kEpochs; ++e) {
    const auto& a = run_adapt.rows[e];
    table.add_row({strf("%zu", e), strf("%.0f Mbps", a.actual_mbps),
                   strf("%.1f s", run_static.rows[e].epoch_time.value()),
                   strf("%.1f s (gen %llu, %zu off)", a.epoch_time.value(),
                        static_cast<unsigned long long>(a.plan_generation), a.offloaded),
                   strf("%.1f s", run_oracle.rows[e].epoch_time.value()),
                   std::string(core::adapt::replan_outcome_name(a.decision.outcome))});
    Json row = Json::object();
    row.set("epoch", static_cast<std::int64_t>(e));
    row.set("mbps", a.actual_mbps);
    row.set("static_seconds", run_static.rows[e].epoch_time.value());
    row.set("adaptive_seconds", a.epoch_time.value());
    row.set("oracle_seconds", run_oracle.rows[e].epoch_time.value());
    row.set("adaptive_generation", static_cast<std::int64_t>(a.plan_generation));
    row.set("adaptive_offloaded", static_cast<std::int64_t>(a.offloaded));
    row.set("adaptive_traffic_bytes", static_cast<std::int64_t>(a.traffic.count()));
    row.set("decision", std::string(core::adapt::replan_outcome_name(a.decision.outcome)));
    row.set("drift", a.decision.drift.max_drift);
    rows.push_back(row);
  }
  std::printf("%s\n", table.render().c_str());

  // Recovery: how much of the drop-induced regression the replanner won
  // back, measured over the steady state (epochs after the swapped plan is
  // in force) against the static plan's degraded steady state.
  const double pre = mean_epoch_time(run_static.rows, 0, kDropEpoch);
  const double post_static = mean_epoch_time(run_static.rows, kDropEpoch, kEpochs);
  std::size_t steady_from = kEpochs;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    if (run_adapt.rows[e].plan_generation > 0) {
      steady_from = e;
      break;
    }
  }
  const bool replanned = run_adapt.replans > 0 && steady_from < kEpochs;
  const double post_adapt =
      replanned ? mean_epoch_time(run_adapt.rows, steady_from, kEpochs) : post_static;
  const double regression = post_static - pre;
  const double recovered = post_static - post_adapt;
  const double fraction = regression > 0.0 ? recovered / regression : 0.0;
  std::printf("pre-drop %.1f s | static post-drop %.1f s | adaptive steady %.1f s | "
              "re-plans %zu\n",
              pre, post_static, post_adapt, run_adapt.replans);
  std::printf("regression %.1f s, recovered %.1f s (%.0f%%)\n", regression, recovered,
              100.0 * fraction);

  bool deterministic = run_adapt_again.replans == run_adapt.replans;
  for (std::size_t e = 0; deterministic && e < kEpochs; ++e) {
    const auto& a = run_adapt.rows[e];
    const auto& b = run_adapt_again.rows[e];
    deterministic = a.epoch_time.value() == b.epoch_time.value() &&
                    a.traffic.count() == b.traffic.count() &&
                    a.plan_generation == b.plan_generation &&
                    a.decision.outcome == b.decision.outcome;
  }

  if (!bench::ArtifactEmitter("sophon.bench_adapt")
           .meta("samples", static_cast<std::int64_t>(kSamples))
           .meta("seed", static_cast<std::int64_t>(kSeed))
           .meta("planned_mbps", kPlannedMbps)
           .meta("drop_factor", kDropFactor)
           .meta("drop_epoch", static_cast<std::int64_t>(kDropEpoch))
           .meta("recovered_fraction", fraction)
           .meta("replans", static_cast<std::int64_t>(run_adapt.replans))
           .write("BENCH_adapt.json", rows)) {
    return 1;
  }

  if (replanned && fraction >= 0.5 && deterministic) {
    std::printf("verified: adaptive replan recovers %.0f%% of the 4x-drop regression "
                "(>= 50%%), deterministic across runs\n",
                100.0 * fraction);
    return 0;
  }
  std::printf("FAILED: replans=%zu recovered=%.0f%% deterministic=%d\n", run_adapt.replans,
              100.0 * fraction, deterministic ? 1 : 0);
  return 1;
}
