// Ablation A10 — GPU scaling: the remote-I/O bottleneck worsens as
// accelerators multiply.
//
// Paper intro: "as GPUs become faster, this data fetch bottleneck becomes
// increasingly problematic" — a 400-GPU cluster needs 200 Gbps aggregate
// I/O. We scale data-parallel GPU count at fixed link bandwidth and track
// GPU utilisation and SOPHON's recovered time.
#include "bench_common.h"

using namespace sophon;

int main() {
  bench::print_header("Ablation A10 — data-parallel GPU count at fixed 500 Mbps (OpenImages)",
                      "paper intro: faster/more GPUs make the remote-I/O bottleneck worse, "
                      "raising the value of traffic reduction");

  const auto catalog = bench::openimages_catalog();
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;

  TextTable table({"GPUs", "model", "No-Off epoch", "No-Off GPU util", "SOPHON epoch",
                   "SOPHON GPU util", "speedup"});
  for (const auto net : {model::NetKind::kResNet50, model::NetKind::kResNet18}) {
    for (const int gpus : {1, 2, 4, 8}) {
      auto config = bench::paper_config(48);
      config.net = net;
      config.gpu = model::GpuKind::kV100;
      config.gpu_count = gpus;
      const auto results = core::run_all_policies(catalog, pipe, cm, config);
      const auto& no_off = results[0];
      const auto& sophon = results[4];
      table.add_row({strf("%d", gpus), std::string(model::net_kind_name(net)),
                     strf("%.1f s", no_off.stats.epoch_time.value()),
                     strf("%.1f%%", 100.0 * no_off.stats.gpu_utilization),
                     strf("%.1f s", sophon.stats.epoch_time.value()),
                     strf("%.1f%%", 100.0 * sophon.stats.gpu_utilization),
                     strf("%.2fx", no_off.stats.epoch_time.value() /
                                       sophon.stats.epoch_time.value())});
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
