// Paper-style evaluation runner: reproduce the §4 experiments at any scale
// from the command line.
//
//   ./build/examples/paper_evaluation [dataset] [storage_cores] [mbps] [samples]
//     dataset:       openimages | imagenet          (default openimages)
//     storage_cores: cores for offloaded work        (default 48)
//     mbps:          inter-cluster bandwidth         (default 500)
//     samples:       catalog size                    (default 40000 / 90000)
//
// Prints the Fig-3-style row set for all five policies under that
// configuration.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/runner.h"
#include "util/table.h"

using namespace sophon;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "openimages";
  const int storage_cores = argc > 2 ? std::atoi(argv[2]) : 48;
  const double mbps = argc > 3 ? std::atof(argv[3]) : 500.0;

  dataset::DatasetProfile profile;
  if (which == "imagenet") {
    profile = dataset::imagenet_profile(argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 90000);
  } else if (which == "openimages") {
    profile = dataset::openimages_profile(argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 40000);
  } else {
    std::fprintf(stderr, "unknown dataset '%s' (use openimages|imagenet)\n", which.c_str());
    return 1;
  }

  const auto catalog = dataset::Catalog::generate(profile, 42);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;

  core::RunConfig config;
  config.cluster.storage_cores = storage_cores;
  config.cluster.bandwidth = Bandwidth::mbps(mbps);
  config.net = model::NetKind::kAlexNet;
  config.gpu = model::GpuKind::kRtx6000;

  std::printf("dataset=%s  samples=%zu  total=%s  link=%s  storage_cores=%d\n\n",
              profile.name.c_str(), catalog.size(), human_bytes(catalog.total_encoded()).c_str(),
              human_bandwidth(config.cluster.bandwidth).c_str(), storage_cores);

  const auto results = core::run_all_policies(catalog, pipe, cm, config);
  const double base_time = results[0].stats.epoch_time.value();

  TextTable table({"policy", "epoch time", "speedup", "traffic", "offloaded", "GPU util"});
  for (const auto& r : results) {
    table.add_row({r.name, strf("%.1f s", r.stats.epoch_time.value()),
                   strf("%.2fx", base_time / r.stats.epoch_time.value()),
                   human_bytes(r.stats.traffic), strf("%zu", r.stats.offloaded_samples),
                   strf("%.1f%%", 100.0 * r.stats.gpu_utilization)});
  }
  std::printf("%s\n", table.render().c_str());
  for (const auto& r : results) {
    std::printf("%-10s %s\n", r.name.c_str(), r.decision.rationale.c_str());
  }
  return 0;
}
