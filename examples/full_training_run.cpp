// A complete 50-epoch training job, profiling overhead included.
//
// The paper argues (§3.1) that SOPHON's profiling is cheap: stage 1 runs 50
// batches under three settings, and stage 2 rides along with the first
// (unoffloaded) training epoch. This example simulates the whole job the
// way it would actually execute —
//   epoch 0:  stage-1 probes + plain training epoch (stage-2 collection)
//   epochs 1+: training under the decided plan
// — and reports the amortised cost of profiling against the steady-state
// savings.
#include <cstdio>

#include "core/decision.h"
#include "core/profiler.h"
#include "model/gpu_model.h"
#include "sim/trainer.h"
#include "util/table.h"

using namespace sophon;

int main(int argc, char** argv) {
  const std::size_t epochs = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50;

  const auto catalog = dataset::Catalog::generate(dataset::openimages_profile(40000), 42);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  sim::ClusterConfig cluster;  // paper defaults: 500 Mbps, 48+48 cores
  const auto gpu = model::GpuModel::lookup(model::NetKind::kAlexNet, model::GpuKind::kRtx6000);
  const Seconds batch_time = gpu.batch_time(cluster.batch_size);

  // --- Stage 1: three 50-batch probe settings (§3.1) ---------------------
  core::Stage1Options s1;
  const auto throughput = core::profile_stage1(catalog, pipe, cm, cluster, batch_time, s1);
  const double probe_samples =
      static_cast<double>(std::min(catalog.size(), s1.num_batches * cluster.batch_size));
  const Seconds stage1_cost(probe_samples / throughput.gpu_samples_per_sec +
                            probe_samples / throughput.io_samples_per_sec +
                            probe_samples / throughput.cpu_samples_per_sec);
  std::printf("stage 1: gpu %.0f / io %.0f / cpu %.0f samples/s -> %s; probe cost %s\n",
              throughput.gpu_samples_per_sec, throughput.io_samples_per_sec,
              throughput.cpu_samples_per_sec,
              std::string(core::bottleneck_name(throughput.bottleneck())).c_str(),
              human_seconds(stage1_cost).c_str());

  // --- Epoch 0: plain training, stage-2 collection rides along -----------
  const auto epoch0 = sim::simulate_epoch(catalog, pipe, cm, cluster, batch_time, {}, 42, 0);
  const auto profiles = core::profile_stage2(catalog, pipe, cm);
  const Seconds t_g = batch_time * static_cast<double>(epoch0.batches);
  const auto decision = core::decide_offloading(profiles, cluster, t_g);

  // --- Epochs 1..E-1: offloaded steady state ------------------------------
  Seconds total = stage1_cost + epoch0.epoch_time;
  Seconds steady_sum;
  for (std::size_t e = 1; e < epochs; ++e) {
    const auto stats = sim::simulate_epoch(catalog, pipe, cm, cluster, batch_time,
                                           decision.plan.assignment(), 42, e);
    total += stats.epoch_time;
    steady_sum += stats.epoch_time;
  }
  const double steady = steady_sum.value() / static_cast<double>(epochs - 1);

  // --- Comparison: the same job with no SOPHON at all ---------------------
  Seconds baseline_total;
  for (std::size_t e = 0; e < epochs; ++e) {
    baseline_total += sim::simulate_epoch(catalog, pipe, cm, cluster, batch_time, {}, 42, e)
                          .epoch_time;
  }

  TextTable table({"quantity", "value"});
  table.add_row({"epochs", strf("%zu", epochs)});
  table.add_row({"stage-1 probe cost (once)", human_seconds(stage1_cost)});
  table.add_row({"epoch 0 (profiling epoch, unoffloaded)", human_seconds(epoch0.epoch_time)});
  table.add_row({"steady-state epoch (offloaded)", strf("%.1f s", steady)});
  table.add_row({"SOPHON job total", strf("%.0f s", total.value())});
  table.add_row({"No-Off job total", strf("%.0f s", baseline_total.value())});
  table.add_row({"job speedup", strf("%.2fx", baseline_total.value() / total.value())});
  table.add_row({"profiling overhead vs job",
                 strf("%.2f%%", 100.0 * (stage1_cost.value() + epoch0.epoch_time.value() -
                                         steady) /
                                    total.value())});
  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\n(§3.1's claim quantified: one probe pass plus one unoffloaded epoch cost a\n"
      " small single-digit percentage of a %zu-epoch job, and the plan they buy\n"
      " halves every remaining epoch.)\n",
      epochs);
  return 0;
}
