// Extending SOPHON with a custom preprocessing pipeline.
//
// The framework is not tied to the five torchvision ops: any operator
// implementing pipeline::PreprocessOp — with both the real `apply` path and
// the analytic `out_shape`/`cost` path — slots into a Pipeline, and the
// profiler/decision engine reason about it automatically.
//
// Here we build a grayscale document-processing pipeline:
//   Decode → Grayscale → CenterCrop(192) → ToTensor
// Grayscale shrinks every decoded sample 3x, so the optimal cut differs
// from the RGB pipeline — SOPHON discovers that from the shapes alone.
#include <cstdio>

#include "core/decision.h"
#include "core/profiler.h"
#include "dataset/synth.h"
#include "util/table.h"

using namespace sophon;

namespace {

/// RGB → single-channel luma. Real path does the pixel math; the analytic
/// path reports the 3x size reduction and a per-pixel cost.
class GrayscaleOp final : public pipeline::PreprocessOp {
 public:
  [[nodiscard]] pipeline::OpKind kind() const override {
    return pipeline::OpKind::kRandomHorizontalFlip;  // kind is informational here
  }
  [[nodiscard]] std::string_view name() const override { return "Grayscale"; }

  [[nodiscard]] pipeline::SampleData apply(pipeline::SampleData in, Rng&) const override {
    const auto& img = std::get<image::Image>(in);
    image::Image out(img.width(), img.height(), 1);
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        const int luma =
            (299 * img.at(x, y, 0) + 587 * img.at(x, y, 1) + 114 * img.at(x, y, 2)) / 1000;
        out.set(x, y, 0, static_cast<std::uint8_t>(luma));
      }
    }
    return pipeline::SampleData(std::move(out));
  }

  [[nodiscard]] pipeline::SampleShape out_shape(const pipeline::SampleShape& in) const override {
    auto out = in;
    out.channels = 1;
    out.bytes = out.byte_size();
    return out;
  }

  [[nodiscard]] Seconds cost(const pipeline::SampleShape& in,
                             const pipeline::CostModel&) const override {
    return Seconds::nanos(3.0 * static_cast<double>(in.pixel_count()));
  }
};

/// Deterministic center crop to size x size (no resampling).
class CenterCropOp final : public pipeline::PreprocessOp {
 public:
  explicit CenterCropOp(int size) : size_(size) {}

  [[nodiscard]] pipeline::OpKind kind() const override {
    return pipeline::OpKind::kRandomResizedCrop;
  }
  [[nodiscard]] std::string_view name() const override { return "CenterCrop"; }

  [[nodiscard]] pipeline::SampleData apply(pipeline::SampleData in, Rng&) const override {
    const auto& img = std::get<image::Image>(in);
    const int w = std::min(size_, img.width());
    const int h = std::min(size_, img.height());
    return pipeline::SampleData(
        image::crop(img, {(img.width() - w) / 2, (img.height() - h) / 2, w, h}));
  }

  [[nodiscard]] pipeline::SampleShape out_shape(const pipeline::SampleShape& in) const override {
    auto out = in;
    out.width = std::min(size_, in.width);
    out.height = std::min(size_, in.height);
    out.bytes = out.byte_size();
    return out;
  }

  [[nodiscard]] Seconds cost(const pipeline::SampleShape& in,
                             const pipeline::CostModel&) const override {
    const auto out = out_shape(in);
    return Seconds::nanos(2.0 * static_cast<double>(out.pixel_count()));
  }

 private:
  int size_;
};

}  // namespace

int main() {
  std::vector<std::unique_ptr<pipeline::PreprocessOp>> ops;
  ops.push_back(pipeline::make_decode_op());
  ops.push_back(std::make_unique<GrayscaleOp>());
  ops.push_back(std::make_unique<CenterCropOp>(192));
  ops.push_back(pipeline::make_to_tensor_op());
  const pipeline::Pipeline pipe(std::move(ops));

  // A document-scan-like corpus: large, highly compressible pages.
  auto profile = dataset::openimages_profile(5000);
  profile.name = "documents";
  profile.components = {{1.0, 3.0e6, 0.4, 0.8, 0.35}};
  const auto catalog = dataset::Catalog::generate(profile, 7);

  const pipeline::CostModel cm;
  const auto profiles = core::profile_stage2(catalog, pipe, cm);

  // Where do samples get smallest in THIS pipeline?
  std::array<std::size_t, 5> stage_count{};
  for (const auto& p : profiles) ++stage_count[p.min_stage];
  TextTable dist({"min-size stage", "samples"});
  const char* names[] = {"raw", "decoded", "grayscale", "center-cropped", "tensor"};
  for (std::size_t s = 0; s < stage_count.size(); ++s) {
    dist.add_row({names[s], strf("%zu", stage_count[s])});
  }
  std::printf("custom pipeline: Decode -> Grayscale -> CenterCrop(192) -> ToTensor\n%s\n",
              dist.render().c_str());

  sim::ClusterConfig cluster;
  cluster.bandwidth = Bandwidth::mbps(200.0);
  cluster.storage_cores = 8;
  const auto decision = core::decide_offloading(profiles, cluster, Seconds(2.0));
  std::printf("SOPHON offloads %zu of %zu samples; predicted T_Net %.1fs -> %.1fs\n",
              decision.offloaded, catalog.size(), decision.baseline.t_net.value(),
              decision.final_cost.t_net.value());

  // Demonstrate the split-execution invariant holds for custom ops too.
  dataset::SampleMeta meta = catalog.sample(0);
  const auto blob = dataset::materialize_encoded(meta, 7, profile.quality);
  const pipeline::SampleData raw = pipeline::EncodedBlob{blob};
  const auto whole = pipe.run_seeded(raw, 0, pipe.size(), 99);
  auto split = pipe.run_seeded(raw, 0, 3, 99);
  split = pipe.run_seeded(std::move(split), 3, pipe.size(), 99);
  std::printf("split == local execution: %s\n",
              std::get<image::Tensor>(whole) == std::get<image::Tensor>(split) ? "yes" : "NO");
  return 0;
}
