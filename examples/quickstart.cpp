// Quickstart: the smallest end-to-end SOPHON run, on the *real* byte path.
//
//   1. Generate a small synthetic dataset and store it (as real SJPG blobs)
//      in the storage node's memory.
//   2. Profile it and let SOPHON's decision engine build an offload plan.
//   3. Fetch every sample through the RPC channel with the plan's
//      directives, finish preprocessing locally, and compare the metered
//      traffic against a plain (no-offload) epoch.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/decision.h"
#include "core/profiler.h"
#include "net/rpc.h"
#include "net/wire.h"
#include "storage/dataset_store.h"
#include "storage/server.h"
#include "util/table.h"

using namespace sophon;

int main() {
  // --- 1. A small corpus of real encoded images -------------------------
  auto profile = dataset::openimages_profile(64);
  profile.min_pixels = 1.5e5;  // keep the demo snappy
  profile.max_pixels = 1.5e6;
  const auto parametric = dataset::Catalog::generate(profile, 42);

  const auto pipeline = pipeline::Pipeline::standard();
  const pipeline::CostModel cost_model;
  storage::DatasetStore store(parametric, 42, profile.quality);
  storage::StorageServer server(store, pipeline, cost_model, {.seed = 42});
  net::LoopbackChannel channel(server);

  // Rebuild the catalog from the actual blobs so sizes are exact.
  std::vector<std::vector<std::uint8_t>> blobs;
  for (std::size_t i = 0; i < parametric.size(); ++i) blobs.push_back(*store.get(i));
  const auto catalog = dataset::Catalog::from_blobs(blobs);
  std::printf("dataset: %zu images, %s at rest in storage memory\n", catalog.size(),
              human_bytes(catalog.total_encoded()).c_str());

  // --- 2. Profile and decide -------------------------------------------
  const auto profiles = core::profile_stage2(catalog, pipeline, cost_model);
  sim::ClusterConfig cluster;
  cluster.bandwidth = Bandwidth::mbps(4.0);  // tiny corpus → tiny link
  cluster.storage_cores = 4;
  const auto decision = core::decide_offloading(profiles, cluster, Seconds(0.5));
  std::printf("SOPHON plan: offload %zu of %zu samples (%zu beneficial)\n",
              decision.plan.offloaded_count(), catalog.size(),
              decision.beneficial_candidates);

  // --- 3. Run one "epoch" both ways through the real fetch path ---------
  const std::uint64_t epoch = 0;
  Bytes plain_traffic;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    net::FetchRequest req;
    req.sample_id = i;
    req.epoch = epoch;
    plain_traffic += channel.fetch(req).wire_bytes();
  }

  channel.reset_counters();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    net::FetchRequest req;
    req.sample_id = i;
    req.epoch = epoch;
    req.directive.prefix_len = decision.plan.prefix(i);
    const auto resp = channel.fetch(req);

    // Finish the remaining ops locally; the result is a ready tensor.
    const auto payload = net::deserialize_sample(resp.payload);
    const auto tensor = pipeline.run_seeded(*payload, resp.stage, pipeline.size(),
                                            storage::augmentation_seed(42, epoch, i));
    (void)tensor;  // → would go to the GPU here
  }

  TextTable table({"mode", "traffic over the link"});
  table.add_row({"No-Off (raw fetches)", human_bytes(plain_traffic)});
  table.add_row({"SOPHON (selective offload)", human_bytes(channel.traffic())});
  std::printf("\n%s", table.render().c_str());
  std::printf("\ntraffic reduced %.2fx; storage CPU spent: %s (modeled)\n",
              plain_traffic.as_double() / channel.traffic().as_double(),
              human_seconds(server.modeled_cpu_time()).c_str());
  return 0;
}
