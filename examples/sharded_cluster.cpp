// A multi-node storage cluster on the real byte path.
//
// Four storage servers each own a shard of the dataset; a router presents
// them as one endpoint. The shard-aware decision engine plans with the
// per-node CPU budgets, and a DataLoader trains through the router. With a
// skewed placement, replica-aware planning routes offloaded prefixes to the
// colder replica holders.
#include <cstdio>

#include "core/decision.h"
#include "core/profiler.h"
#include "loader/loader.h"
#include "storage/dataset_store.h"
#include "storage/router.h"
#include "storage/server.h"
#include "util/table.h"

using namespace sophon;

int main() {
  auto profile = dataset::openimages_profile(64);
  profile.min_pixels = 1.2e5;
  profile.max_pixels = 8e5;
  const auto parametric = dataset::Catalog::generate(profile, 42);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;

  // Four nodes; every node can materialise every sample (fully replicated
  // store), but the shard map says who *serves* what.
  constexpr int kNodes = 4;
  std::vector<std::unique_ptr<storage::DatasetStore>> stores;
  std::vector<std::unique_ptr<storage::StorageServer>> servers;
  std::vector<net::StorageService*> endpoints;
  for (int n = 0; n < kNodes; ++n) {
    stores.push_back(std::make_unique<storage::DatasetStore>(parametric, 42, profile.quality));
    servers.push_back(std::make_unique<storage::StorageServer>(
        *stores.back(), pipe, cm, storage::StorageServer::Options{.seed = 42}));
    endpoints.push_back(servers.back().get());
  }

  // Skewed placement: node 0 holds most primaries.
  std::vector<std::uint16_t> assignment(parametric.size());
  Rng rng(5);
  for (auto& node : assignment) {
    node = static_cast<std::uint16_t>(rng.bernoulli(0.7) ? 0 : rng.uniform_int(1, kNodes - 1));
  }
  const auto primaries = storage::ShardMap::explicit_map(assignment, kNodes);
  const auto replicas = storage::ReplicaMap::replicated(primaries, 2, 7);

  // Plan shard-aware (primaries only) vs replica-aware.
  std::vector<std::vector<std::uint8_t>> blobs;
  for (std::size_t i = 0; i < parametric.size(); ++i) blobs.push_back(*stores[0]->get(i));
  const auto catalog = dataset::Catalog::from_blobs(blobs);
  const auto profiles = core::profile_stage2(catalog, pipe, cm);
  sim::ClusterConfig cluster;
  cluster.bandwidth = Bandwidth::mbps(5.0);
  cluster.storage_cores = 1;          // per node
  cluster.storage_core_speed = 0.3;   // slow cores: skew matters
  const Seconds t_g(0.3);

  const auto pinned = core::decide_offloading_sharded(profiles, primaries, cluster, t_g);
  const auto routed = core::decide_offloading_replicated(profiles, replicas, cluster, t_g);
  std::printf("shard-aware (primaries only): offload %zu, predicted epoch %.1f s\n",
              pinned.offloaded, pinned.final_cost.predicted_epoch_time().value());
  std::printf("replica-aware (2 replicas):   offload %zu, predicted epoch %.1f s\n\n",
              routed.offloaded, routed.final_cost.predicted_epoch_time().value());

  // Train one epoch through the router, serving each sample from the node
  // the replica-aware plan picked.
  storage::RoutedFetchService router(endpoints, routed.execution_nodes);
  loader::DataLoader loader(router, pipe, routed.plan, catalog.size(),
                            {.num_workers = 2, .queue_capacity = 8, .seed = 42, .epoch = 0});
  loader.start();
  std::size_t delivered = 0;
  while (loader.next()) ++delivered;

  TextTable table({"node", "requests", "offloaded prefixes", "modeled CPU"});
  const auto per_node = router.per_node_requests();
  for (int n = 0; n < kNodes; ++n) {
    table.add_row({strf("%d", n), strf("%llu", static_cast<unsigned long long>(per_node[n])),
                   strf("%llu",
                        static_cast<unsigned long long>(servers[n]->offloaded_requests())),
                   human_seconds(servers[n]->modeled_cpu_time())});
  }
  std::printf("%zu samples trained through the router; traffic %s\n%s", delivered,
              human_bytes(loader.traffic()).c_str(), table.render().c_str());
  std::printf("\n(replica-aware routing pushed offloaded work off the hot node 0.)\n");
  return 0;
}
