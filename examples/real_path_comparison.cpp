// All five policies over the REAL byte path.
//
// The evaluation benches use the discrete-event simulator; this example
// executes the same comparison on actual bytes: a small materialised
// dataset on the storage server, a multi-worker DataLoader per policy, and
// exactly metered per-epoch traffic. The traffic ordering must match the
// Fig 3 story (and does); wall-clock times are whatever this machine's
// cores give.
#include <chrono>
#include <cstdio>

#include "core/profiler.h"
#include "util/check.h"
#include "core/runner.h"
#include "dataset/catalog.h"
#include "loader/loader.h"
#include "storage/dataset_store.h"
#include "storage/server.h"
#include "util/table.h"

using namespace sophon;

int main() {
  auto profile = dataset::openimages_profile(96);
  profile.min_pixels = 1.0e5;
  profile.max_pixels = 1.0e6;
  const auto parametric = dataset::Catalog::generate(profile, 42);

  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  storage::DatasetStore store(parametric, 42, profile.quality);
  storage::StorageServer server(store, pipe, cm, {.seed = 42});

  // Materialise everything once so policy timings are comparable, and
  // rebuild the catalog from real blob sizes for honest planning.
  std::vector<std::vector<std::uint8_t>> blobs;
  for (std::size_t i = 0; i < parametric.size(); ++i) blobs.push_back(*store.get(i));
  const auto catalog = dataset::Catalog::from_blobs(blobs);
  std::printf("dataset: %zu real images, %s at rest\n\n", catalog.size(),
              human_bytes(catalog.total_encoded()).c_str());

  core::PlanContext ctx;
  ctx.catalog = &catalog;
  ctx.pipeline = &pipe;
  ctx.cost_model = &cm;
  ctx.cluster.bandwidth = Bandwidth::mbps(6.0);  // scaled to the tiny corpus
  ctx.cluster.storage_cores = 4;
  ctx.gpu_batch_time = Seconds::millis(20.0);
  ctx.seed = 42;

  TextTable table({"policy", "traffic (real bytes)", "vs No-Off", "offloaded",
                   "wall time (this machine)"});
  Bytes no_off_traffic;
  for (const auto& policy : core::make_all_policies()) {
    const auto decision = policy->plan(ctx);
    server.reset_counters();

    const auto start = std::chrono::steady_clock::now();
    loader::DataLoader loader(server, pipe, decision.plan, catalog.size(),
                              {.num_workers = 2, .queue_capacity = 16, .seed = 42, .epoch = 0});
    loader.start();
    std::size_t delivered = 0;
    while (loader.next()) ++delivered;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    if (policy->kind() == core::PolicyKind::kNoOff) no_off_traffic = loader.traffic();
    table.add_row({std::string(policy->name()), human_bytes(loader.traffic()),
                   strf("%.2fx", no_off_traffic.as_double() / loader.traffic().as_double()),
                   strf("%zu", decision.plan.offloaded_count()), strf("%.2f s", wall)});
    SOPHON_CHECK(delivered == catalog.size());
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\n(traffic ratios mirror Figure 3 on real bytes: All-Off inflates, Resize-Off\n"
      " and SOPHON shrink, SOPHON never ships a sample in a larger-than-raw form.)\n");
  return 0;
}
