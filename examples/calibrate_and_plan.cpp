// Calibrate the cost model on THIS machine, then plan with it.
//
// The library ships with coefficients matched to the paper's testbed; this
// example measures the real pipeline ops here (wall clock over materialised
// samples), fits fresh coefficients, and shows how the calibrated model
// changes the stage-1 triage numbers and the offload plan.
#include <cstdio>

#include "core/decision.h"
#include "core/profiler.h"
#include "dataset/calibrate.h"
#include "util/table.h"

using namespace sophon;

int main() {
  // A small calibration corpus spanning sizes and textures.
  std::vector<dataset::SampleMeta> corpus;
  const int dims[][2] = {{320, 240}, {512, 384}, {640, 480}, {800, 600}, {1024, 768}};
  for (int i = 0; i < 5; ++i) {
    dataset::SampleMeta meta;
    meta.id = static_cast<std::uint64_t>(i);
    meta.raw = pipeline::SampleShape::encoded(Bytes(1), dims[i][0], dims[i][1], 3);
    meta.texture = 0.15 + 0.17 * i;
    corpus.push_back(meta);
  }

  std::printf("calibrating on %zu samples (real encode/decode/crop/... timings)...\n",
              corpus.size());
  dataset::CalibrationOptions options;
  options.repeats = 3;
  const auto calibration = dataset::calibrate_cost_model(corpus, options);

  const pipeline::CostCoefficients paper;  // defaults
  const auto& fitted = calibration.coefficients;
  TextTable table({"coefficient", "paper-calibrated", "this machine"});
  table.add_row({"decode ns/byte", strf("%.1f", paper.decode_ns_per_byte),
                 strf("%.1f", fitted.decode_ns_per_byte)});
  table.add_row({"decode ns/pixel", strf("%.1f", paper.decode_ns_per_pixel),
                 strf("%.1f", fitted.decode_ns_per_pixel)});
  table.add_row({"crop ns/src pixel", strf("%.1f", paper.crop_ns_per_src_pixel),
                 strf("%.1f", fitted.crop_ns_per_src_pixel)});
  table.add_row({"resize ns/out pixel", strf("%.1f", paper.resize_ns_per_out_pixel),
                 strf("%.1f", fitted.resize_ns_per_out_pixel)});
  table.add_row({"flip ns/pixel", strf("%.1f", paper.flip_ns_per_pixel),
                 strf("%.1f", fitted.flip_ns_per_pixel)});
  table.add_row({"to-tensor ns/elem", strf("%.1f", paper.to_tensor_ns_per_element),
                 strf("%.1f", fitted.to_tensor_ns_per_element)});
  table.add_row({"normalize ns/elem", strf("%.1f", paper.normalize_ns_per_element),
                 strf("%.1f", fitted.normalize_ns_per_element)});
  std::printf("%s", table.render().c_str());
  std::printf("fit quality: median relative error %.0f%% over %zu observations\n\n",
              100.0 * calibration.median_relative_error(), calibration.observations.size());

  // Plan the same workload under both models.
  const auto catalog = dataset::Catalog::generate(dataset::openimages_profile(8000), 42);
  const auto pipe = pipeline::Pipeline::standard();
  sim::ClusterConfig cluster;
  cluster.bandwidth = Bandwidth::mbps(100.0);
  cluster.storage_cores = 2;

  for (const auto& [label, cm] :
       {std::pair{"paper-calibrated model", pipeline::CostModel{}},
        {"machine-calibrated model", pipeline::CostModel(fitted)}}) {
    const auto profiles = core::profile_stage2(catalog, pipe, cm);
    const auto decision = core::decide_offloading(profiles, cluster, Seconds(3.0));
    std::printf("%-25s offloads %5zu samples, predicted epoch %.1fs (T_CS %.1fs)\n", label,
                decision.offloaded, decision.final_cost.predicted_epoch_time().value(),
                decision.final_cost.t_cs.value());
  }
  std::printf("\n(The SJPG codec is slower per byte than libjpeg-turbo, so the fitted\n"
              " decode coefficients typically come out higher — and SOPHON responds by\n"
              " offloading fewer samples per storage core. That is the intended loop:\n"
              " measure, fit, replan.)\n");
  return 0;
}
