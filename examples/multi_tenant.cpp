// Multi-tenant scenario (paper §6): a shared storage node serves several
// training jobs at once; its preprocessing cores are the contended
// resource. The scheduler splits the core budget using each job's own
// decision-engine predictions.
#include <cstdio>

#include "core/multitenant.h"
#include "core/profiler.h"
#include "model/gpu_model.h"
#include "util/table.h"

using namespace sophon;

namespace {

core::TenantJob make_job(const char* name, const dataset::DatasetProfile& profile,
                         std::uint64_t seed, double mbps, model::NetKind net) {
  const auto catalog = dataset::Catalog::generate(profile, seed);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  core::TenantJob job;
  job.name = name;
  job.profiles = core::profile_stage2(catalog, pipe, cm);
  job.cluster.bandwidth = Bandwidth::mbps(mbps);
  const auto gpu = model::GpuModel::lookup(net, model::GpuKind::kRtx6000);
  job.gpu_epoch_time =
      gpu.batch_time(job.cluster.batch_size) *
      static_cast<double>((catalog.size() + job.cluster.batch_size - 1) /
                          job.cluster.batch_size);
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  const int budget = argc > 1 ? std::atoi(argv[1]) : 8;

  const std::vector<core::TenantJob> jobs = {
      make_job("vision-team/large-photos", dataset::openimages_profile(30000), 1, 400.0,
               model::NetKind::kAlexNet),
      make_job("vision-team/thumbnails", dataset::imagenet_profile(60000), 2, 400.0,
               model::NetKind::kAlexNet),
      make_job("research/resnet18-sweep", dataset::openimages_profile(15000), 3, 200.0,
               model::NetKind::kResNet18),
  };

  std::printf("3 tenant jobs share one storage node with %d preprocessing cores\n\n", budget);

  const auto equal = core::equal_split(jobs, budget);
  const auto greedy = core::allocate_storage_cores(
      jobs, budget, core::SchedulerObjective::kMinimizeMakespan);

  TextTable table({"job", "equal cores", "equal epoch", "greedy cores", "greedy epoch"});
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    table.add_row({jobs[j].name, strf("%d", equal.cores[j]),
                   strf("%.1f s", equal.predicted_epoch[j].value()),
                   strf("%d", greedy.cores[j]),
                   strf("%.1f s", greedy.predicted_epoch[j].value())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("makespan: equal split %.1f s -> greedy %.1f s (%.1f%% better)\n",
              equal.max_epoch.value(), greedy.max_epoch.value(),
              100.0 * (equal.max_epoch.value() - greedy.max_epoch.value()) /
                  equal.max_epoch.value());
  return 0;
}
