#!/usr/bin/env bash
# Developer check driver.
#
#   tools/check.sh            configure + build + full ctest (build/)
#   tools/check.sh --tsan     same, in a ThreadSanitizer build (build-tsan/),
#                             restricted to the concurrency-sensitive suites
#                             (loader, resilience, net) — TSan slows the rest
#                             down ~10x for no extra signal.
#
# Each sanitizer needs its own build directory: objects built with
# -fsanitize=thread are not link-compatible with a plain build.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

if [[ "${1:-}" == "--tsan" ]]; then
  cmake -B build-tsan -S . -DSOPHON_SANITIZE=thread
  cmake --build build-tsan -j "$jobs" --target \
    loader_test loader_degradation_test net_resilience_test net_rpc_test net_link_test
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'Loader|Resilience|Backoff|FaultInjector|FaultyService|LinkFaults|Rpc'
elif [[ $# -gt 0 ]]; then
  echo "usage: tools/check.sh [--tsan]" >&2
  exit 2
else
  cmake -B build -S .
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
fi
