#!/usr/bin/env bash
# Developer check driver.
#
#   tools/check.sh            configure + build + full ctest (build/)
#   tools/check.sh --tsan     same, in a ThreadSanitizer build (build-tsan/),
#                             restricted to the concurrency-sensitive suites
#                             (loader, prefetch, resilience, net) — TSan slows
#                             the rest down ~10x for no extra signal.
#   tools/check.sh --asan     AddressSanitizer build (build-asan/), same suite
#                             restriction — heap abuse hides in the same
#                             concurrent code TSan watches for races.
#   tools/check.sh --ubsan    UndefinedBehaviorSanitizer build (build-ubsan/),
#                             same restricted suite — the shard reader and
#                             wire parsers do byte-level decoding of untrusted
#                             input, exactly where misaligned loads and
#                             integer overflow hide.
#   tools/check.sh --trace-smoke
#                             build sophonctl, run a small traced simulation
#                             and schema-check the emitted Chrome trace JSON
#                             with the in-repo parser (validate-trace); fails
#                             on malformed traces or missing span coverage.
#   tools/check.sh --docs     doc-drift linter: diff the flag/command
#                             vocabulary of `sophonctl help` against
#                             docs/CLI.md and README.md — fails when the docs
#                             mention a flag the binary no longer has, or the
#                             binary grows a flag/command the docs omit. Also
#                             runs as part of the default check.
#   tools/check.sh --ledger-smoke
#                             build sophonctl, run a short adaptive simulation
#                             with the traffic ledger enabled, render the
#                             export with traffic-report, and traffic-diff it
#                             against itself with --expect-zero — the
#                             round-trip proof that export → parse → diff is
#                             lossless and a run diffs clean against itself.
#   tools/check.sh --critpath-smoke
#                             build sophonctl, run `whatif` (every ranked
#                             projection validated against a real simulator
#                             re-run — the command exits non-zero on any
#                             out-of-tolerance scenario) and a traced
#                             simulate with --critpath-out, then check the
#                             analysis JSON and the flow-annotated trace.
#                             Also runs as part of the default check.
#   tools/check.sh --bench-regress
#                             re-run the ablations that commit BENCH_*.json
#                             artifacts (prefetch, adapt, materialize) in a
#                             scratch directory and compare every numeric
#                             field against the committed artifact with
#                             `sophonctl bench-compare` (5% tolerance). The
#                             runs are deterministic DES output, so a
#                             mismatch means the substrate drifted, not the
#                             machine. Opt-in like the sanitizer modes: three
#                             full ablation runs are too slow for every edit.
#
# Each sanitizer needs its own build directory: objects built with
# -fsanitize=thread or -fsanitize=address are not link-compatible with a
# plain build (or with each other).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

# Doc-drift linter: `sophonctl help` is generated from the same command
# table that validates flags at runtime, so it is the ground truth. Docs may
# additionally mention flags of *other* tools (check.sh's own modes, cmake/
# ctest switches, generic placeholders) — those live on the allowlist.
check_docs() {
  local help flags_help flags_docs commands missing stale ok=0
  local allowlist='^--(tsan|asan|ubsan|trace-smoke|docs|bench-regress|ledger-smoke|critpath-smoke|build|target|test-dir|output-on-failure|key)$'
  help=$(build/tools/sophonctl help)

  flags_help=$(printf '%s\n' "$help" | grep -oE '^\s*--[a-z][a-z0-9-]*' | tr -d ' ' | sort -u)
  flags_docs=$(grep -ohE '[-][-][a-z][a-z0-9-]*' docs/CLI.md README.md | sort -u |
    grep -vE "$allowlist" || true)
  commands=$(printf '%s\n' "$help" | sed -nE 's/^sophonctl ([a-z-]+) .*/\1/p' | sort -u)

  # Docs must not reference flags the binary no longer has.
  stale=$(comm -23 <(printf '%s\n' "$flags_docs") <(printf '%s\n' "$flags_help"))
  if [[ -n "$stale" ]]; then
    echo "doc-drift: docs/CLI.md or README.md reference flags sophonctl does not have:" >&2
    printf '  %s\n' $stale >&2
    ok=1
  fi
  # Every binary flag must be documented in the CLI reference.
  missing=$(comm -23 <(printf '%s\n' "$flags_help") \
    <(grep -ohE '[-][-][a-z][a-z0-9-]*' docs/CLI.md | sort -u))
  if [[ -n "$missing" ]]; then
    echo "doc-drift: sophonctl flags missing from docs/CLI.md:" >&2
    printf '  %s\n' $missing >&2
    ok=1
  fi
  # Every command must be documented in the CLI reference.
  for cmd in $commands; do
    if ! grep -q "### $cmd" docs/CLI.md && ! grep -qE "^\| \[?\`$cmd\`" docs/CLI.md; then
      echo "doc-drift: sophonctl command '$cmd' undocumented in docs/CLI.md" >&2
      ok=1
    fi
  done
  if [[ $ok -eq 0 ]]; then
    echo "docs OK: $(printf '%s\n' "$flags_help" | wc -l) flags, $(printf '%s\n' "$commands" | wc -l) commands in sync with docs/CLI.md"
  fi
  return $ok
}

sanitized_targets=(
  loader_test loader_degradation_test loader_prefetch_test
  prefetch_staging_test prefetch_replay_test
  net_resilience_test net_rpc_test net_link_test net_wire_test
  obs_concurrency_test obs_timeseries_test obs_health_test obs_telemetry_server_test
  obs_critpath_test
  shard_format_test storage_shard_serving_test storage_disk_test
)
sanitized_regex='Loader|Prefetch|StagingBuffer|Admission|Resilience|Backoff|FaultInjector|FaultyService|LinkFaults|Rpc|Tracer|SpanRing|Telemetry|ObsConcurrency|FlightRecorder|Health|Wire|Crc32|Shard|DiskStore|CritPath|WhatIf|Monitor'

# Critical-path smoke: the whatif command validates every ranked projection
# against a real simulator re-run (it exits non-zero if any scenario misses
# tolerance), and a traced simulate must produce both the analysis JSON and
# a flow-annotated trace that validate-trace accepts.
check_critpath() {
  local tmp
  tmp=$(mktemp -d)
  # shellcheck disable=SC2064
  trap "rm -rf '$tmp'" RETURN
  build/tools/sophonctl whatif --dataset openimages --samples 1000 --mbps 100 \
    --storage-cores 4 --replay 1 --prefetch-depth 8 --out "$tmp/whatif.json"
  build/tools/sophonctl simulate --dataset openimages --samples 500 --mbps 100 \
    --prefetch-depth 8 --workers 4 --trace-out="$tmp/trace.json" \
    --critpath-out="$tmp/cp.json"
  grep -q 'sophon.critpath' "$tmp/cp.json"
  grep -q 'sophon.whatif' "$tmp/whatif.json"
  build/tools/sophonctl validate-trace --in "$tmp/trace.json"
  echo "critpath-smoke OK: projections validated and the critical-path trace is well-formed"
}

if [[ "${1:-}" == "--tsan" ]]; then
  cmake -B build-tsan -S . -DSOPHON_SANITIZE=thread
  cmake --build build-tsan -j "$jobs" --target "${sanitized_targets[@]}"
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" -R "$sanitized_regex"
elif [[ "${1:-}" == "--asan" ]]; then
  cmake -B build-asan -S . -DSOPHON_SANITIZE=address
  cmake --build build-asan -j "$jobs" --target "${sanitized_targets[@]}"
  ctest --test-dir build-asan --output-on-failure -j "$jobs" -R "$sanitized_regex"
elif [[ "${1:-}" == "--ubsan" ]]; then
  cmake -B build-ubsan -S . -DSOPHON_SANITIZE=undefined
  cmake --build build-ubsan -j "$jobs" --target "${sanitized_targets[@]}"
  ctest --test-dir build-ubsan --output-on-failure -j "$jobs" -R "$sanitized_regex"
elif [[ "${1:-}" == "--trace-smoke" ]]; then
  cmake -B build -S .
  cmake --build build -j "$jobs" --target sophonctl
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' EXIT
  build/tools/sophonctl simulate --dataset openimages --samples 500 --mbps 100 \
    --prefetch-depth 8 --workers 4 --trace-out="$tmp/trace.json" --report
  build/tools/sophonctl validate-trace --in "$tmp/trace.json"
elif [[ "${1:-}" == "--ledger-smoke" ]]; then
  cmake -B build -S .
  cmake --build build -j "$jobs" --target sophonctl
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' EXIT
  build/tools/sophonctl simulate --dataset openimages --samples 500 --mbps 100 \
    --adapt --epochs 4 --bw-drop-factor 4 --bw-drop-epoch 2 \
    --ledger-out "$tmp/ledger.json"
  build/tools/sophonctl traffic-report --in "$tmp/ledger.json"
  build/tools/sophonctl traffic-diff --a "$tmp/ledger.json" --b "$tmp/ledger.json" \
    --expect-zero
  echo "ledger-smoke OK: export round-trips and diffs clean against itself"
elif [[ "${1:-}" == "--critpath-smoke" ]]; then
  cmake -B build -S .
  cmake --build build -j "$jobs" --target sophonctl
  check_critpath
elif [[ "${1:-}" == "--docs" ]]; then
  cmake -B build -S .
  cmake --build build -j "$jobs" --target sophonctl
  check_docs
elif [[ "${1:-}" == "--bench-regress" ]]; then
  cmake -B build -S .
  cmake --build build -j "$jobs" --target sophonctl ablation_prefetch ablation_adapt \
    ablation_materialize critpath_accuracy
  repo=$(pwd)
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' EXIT
  for bench in prefetch adapt materialize critpath; do
    case "$bench" in
      critpath) bin=critpath_accuracy ;;
      *) bin=ablation_$bench ;;
    esac
    echo "bench-regress: re-running $bin"
    (cd "$tmp" && "$repo/build/bench/$bin" > /dev/null)
    "$repo/build/tools/sophonctl" bench-compare \
      --baseline "$repo/BENCH_$bench.json" \
      --candidate "$tmp/BENCH_$bench.json" \
      --tolerance 0.05
  done
  echo "bench-regress OK: prefetch, adapt, materialize, critpath match the committed artifacts"
elif [[ $# -gt 0 ]]; then
  echo "usage: tools/check.sh [--tsan|--asan|--ubsan|--trace-smoke|--docs|--ledger-smoke|--critpath-smoke|--bench-regress]" >&2
  exit 2
else
  cmake -B build -S .
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
  check_docs
  check_critpath
fi
