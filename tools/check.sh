#!/usr/bin/env bash
# Developer check driver.
#
#   tools/check.sh            configure + build + full ctest (build/)
#   tools/check.sh --tsan     same, in a ThreadSanitizer build (build-tsan/),
#                             restricted to the concurrency-sensitive suites
#                             (loader, prefetch, resilience, net) — TSan slows
#                             the rest down ~10x for no extra signal.
#   tools/check.sh --asan     AddressSanitizer build (build-asan/), same suite
#                             restriction — heap abuse hides in the same
#                             concurrent code TSan watches for races.
#   tools/check.sh --trace-smoke
#                             build sophonctl, run a small traced simulation
#                             and schema-check the emitted Chrome trace JSON
#                             with the in-repo parser (validate-trace); fails
#                             on malformed traces or missing span coverage.
#
# Each sanitizer needs its own build directory: objects built with
# -fsanitize=thread or -fsanitize=address are not link-compatible with a
# plain build (or with each other).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

sanitized_targets=(
  loader_test loader_degradation_test loader_prefetch_test
  prefetch_staging_test prefetch_replay_test
  net_resilience_test net_rpc_test net_link_test
  obs_concurrency_test
)
sanitized_regex='Loader|Prefetch|StagingBuffer|Admission|Resilience|Backoff|FaultInjector|FaultyService|LinkFaults|Rpc|Tracer|SpanRing|Telemetry|ObsConcurrency'

if [[ "${1:-}" == "--tsan" ]]; then
  cmake -B build-tsan -S . -DSOPHON_SANITIZE=thread
  cmake --build build-tsan -j "$jobs" --target "${sanitized_targets[@]}"
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" -R "$sanitized_regex"
elif [[ "${1:-}" == "--asan" ]]; then
  cmake -B build-asan -S . -DSOPHON_SANITIZE=address
  cmake --build build-asan -j "$jobs" --target "${sanitized_targets[@]}"
  ctest --test-dir build-asan --output-on-failure -j "$jobs" -R "$sanitized_regex"
elif [[ "${1:-}" == "--trace-smoke" ]]; then
  cmake -B build -S .
  cmake --build build -j "$jobs" --target sophonctl
  tmp=$(mktemp -d)
  trap 'rm -rf "$tmp"' EXIT
  build/tools/sophonctl simulate --dataset openimages --samples 500 --mbps 100 \
    --prefetch-depth 8 --workers 4 --trace-out="$tmp/trace.json" --report
  build/tools/sophonctl validate-trace --in "$tmp/trace.json"
elif [[ $# -gt 0 ]]; then
  echo "usage: tools/check.sh [--tsan|--asan|--trace-smoke]" >&2
  exit 2
else
  cmake -B build -S .
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
fi
