// sophonctl — command-line front end for the SOPHON library.
//
//   sophonctl gen-profiles --dataset openimages --samples 40000 --out p.json
//   sophonctl decide --profiles p.json --mbps 500 --storage-cores 8
//                    --tg-seconds 14 --out plan.json
//   sophonctl simulate --dataset openimages --samples 40000 --plan plan.json
//                      --mbps 500 --storage-cores 8
//                      [--prefetch-depth 16 --prefetch-budget-mib 64 --workers 4]
//                      [--trace-out=trace.json --report --critpath-out=cp.json]
//                      [--adapt --epochs 10 --bw-drop-factor 4 --bw-drop-epoch 3]
//   sophonctl evaluate --dataset imagenet --samples 90000 --mbps 500
//   sophonctl calibrate --repeats 3 --out coeffs.json
//   sophonctl ingest --dataset openimages --samples 64 --dir /tmp/ds
//   sophonctl whatif --dataset openimages --samples 1000 --mbps 100
//                    --replay 1 --prefetch-depth 8
//   sophonctl validate-trace --in trace.json
//   sophonctl help [command]
//
// Every command prints a short report; gen-profiles/decide write JSON
// artifacts the other commands (and external tooling) can consume.
//
// Commands and their flags are declared in one table (kCommands below):
// `sophonctl help` renders it, and every invocation validates its flags
// against it — so the table is the single source of truth the doc-drift
// linter (tools/check.sh --docs) checks docs/CLI.md against.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <functional>

#include "core/adapt/adapt.h"
#include "core/adapt/loop.h"
#include "core/decision.h"
#include "core/profiler.h"
#include "core/runner.h"
#include "core/serialize.h"
#include "net/fault.h"
#include "net/resilience.h"
#include "net/wire.h"
#include "obs/critpath/critpath.h"
#include "obs/critpath/whatif.h"
#include "obs/health.h"
#include "obs/ledger.h"
#include "obs/metrics_table.h"
#include "obs/postmortem.h"
#include "obs/replay_trace.h"
#include "obs/report.h"
#include "obs/telemetry_server.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "pipeline/extra_ops.h"
#include "prefetch/replay.h"
#include "shard/format.h"
#include "shard/pack.h"
#include "shard/planner.h"
#include "sim/trace.h"
#include "sim/trainer.h"
#include "dataset/calibrate.h"
#include "storage/disk_store.h"
#include "util/table.h"
#include "util/telemetry.h"

using namespace sophon;

namespace {

/// Flag bag with typed, defaulted lookups. Accepts "--key value",
/// "--key=value" and bare boolean switches ("--report", stored as "1").
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        std::exit(2);
      }
      const std::string body = argv[i] + 2;
      if (const auto eq = body.find('='); eq != std::string::npos) {
        values_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[body] = argv[i + 1];
        ++i;
      } else {
        values_[body] = "1";
      }
    }
  }

  [[nodiscard]] bool flag(const std::string& key) const { return values_.contains(key); }

  [[nodiscard]] std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::string required(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }

  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  [[nodiscard]] long integer(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }

  [[nodiscard]] const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

dataset::DatasetProfile profile_for(const std::string& name, std::size_t samples) {
  if (name == "openimages") return dataset::openimages_profile(samples);
  if (name == "imagenet") return dataset::imagenet_profile(samples);
  std::fprintf(stderr, "unknown dataset '%s' (openimages|imagenet)\n", name.c_str());
  std::exit(2);
}

pipeline::Pipeline pipeline_for(const std::string& name) {
  if (name == "standard") return pipeline::Pipeline::standard();
  if (name == "validation") return pipeline::validation_pipeline();
  std::fprintf(stderr, "unknown pipeline '%s' (standard|validation)\n", name.c_str());
  std::exit(2);
}

/// The --shard-budget-mib convention: 0 (or omitted) means unlimited.
Bytes shard_budget_from(const Flags& flags) {
  const long mib = flags.integer("shard-budget-mib", 0);
  return mib <= 0 ? Bytes(std::numeric_limits<std::int64_t>::max() / 2) : Bytes::mib(mib);
}

sim::ClusterConfig cluster_from(const Flags& flags) {
  sim::ClusterConfig cluster;
  cluster.bandwidth = Bandwidth::mbps(flags.number("mbps", 500.0));
  cluster.storage_cores = static_cast<int>(flags.integer("storage-cores", 48));
  cluster.compute_cores = static_cast<int>(flags.integer("compute-cores", 48));
  cluster.storage_core_speed = flags.number("storage-speed", 1.0);
  cluster.batch_size = static_cast<std::size_t>(flags.integer("batch-size", 256));
  return cluster;
}

int cmd_gen_profiles(const Flags& flags) {
  const auto name = flags.str("dataset", "openimages");
  const auto samples = static_cast<std::size_t>(flags.integer("samples", 40000));
  const auto seed = static_cast<std::uint64_t>(flags.integer("seed", 42));
  const auto out = flags.required("out");

  MetricsRegistry metrics;
  const auto catalog = [&] {
    ScopedTimer timer(metrics.duration("sophonctl_catalog"));
    return dataset::Catalog::generate(profile_for(name, samples), seed);
  }();
  const auto profiles = [&] {
    ScopedTimer timer(metrics.duration("sophonctl_stage2"));
    return core::profile_stage2(catalog, pipeline::Pipeline::standard(),
                                pipeline::CostModel{});
  }();
  if (!core::save_json_file(core::profiles_to_json(profiles), out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::size_t beneficial = 0;
  for (const auto& p : profiles) {
    if (p.benefits()) ++beneficial;
  }
  std::printf("wrote %zu profiles to %s (%zu beneficial, dataset %s at rest)\n",
              profiles.size(), out.c_str(), beneficial,
              human_bytes(catalog.total_encoded()).c_str());
  std::printf("%s", metrics.expose().c_str());
  return 0;
}

int cmd_decide(const Flags& flags) {
  const auto in = flags.required("profiles");
  const auto out = flags.required("out");
  const auto loaded = core::load_json_file(in);
  if (!loaded) {
    std::fprintf(stderr, "cannot read %s\n", in.c_str());
    return 1;
  }
  const auto profiles = core::profiles_from_json(*loaded);
  if (!profiles) {
    std::fprintf(stderr, "%s is not a stage-2 profile artifact\n", in.c_str());
    return 1;
  }
  const auto cluster = cluster_from(flags);
  const Seconds t_g(flags.number("tg-seconds", 14.0));
  const auto result = core::decide_offloading(*profiles, cluster, t_g);
  if (!core::save_json_file(core::plan_to_json(result.plan), out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf(
      "plan: %zu of %zu samples offloaded (%zu beneficial)\n"
      "predicted: T_Net %.1fs -> %.1fs, T_CS %.1fs, epoch %.1fs -> %.1fs\nwrote %s\n",
      result.offloaded, profiles->size(), result.beneficial_candidates,
      result.baseline.t_net.value(), result.final_cost.t_net.value(),
      result.final_cost.t_cs.value(), result.baseline.predicted_epoch_time().value(),
      result.final_cost.predicted_epoch_time().value(), out.c_str());
  return 0;
}

/// Blocking HTTP/1.0 GET against the loopback telemetry endpoint. Used by
/// `monitor` and `simulate --monitor-self`; nullopt when the connection
/// fails (server gone), a parsed status + body otherwise.
struct HttpReply {
  int status = 0;
  std::string body;
};

std::optional<HttpReply> http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    raw.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return std::nullopt;
  HttpReply reply;
  // Status line: "HTTP/1.0 200 OK".
  if (const auto space = raw.find(' '); space != std::string::npos) {
    reply.status = std::atoi(raw.c_str() + space + 1);
  }
  reply.body = raw.substr(header_end + 4);
  return reply;
}

/// One `monitor` status line from a /healthz document and a /metrics
/// exposition: the live per-epoch terminal view.
std::string monitor_line(const Json& healthz, const std::string& exposition) {
  const auto metric_value = [&exposition](const std::string& name) {
    const auto pos = exposition.find("\n" + name + " ");
    if (pos == std::string::npos) return 0.0;
    return std::atof(exposition.c_str() + pos + 1 + name.size());
  };
  std::string worst;
  if (healthz.has("rules")) {
    const auto& rules = healthz.at("rules");
    for (std::size_t i = 0; i < rules.size(); ++i) {
      const auto& rule = rules.at(i);
      if (rule.at("state").as_string() != "ok" && worst.empty()) {
        worst = rule.at("name").as_string() + "=" + rule.at("state").as_string();
      }
    }
  }
  std::string line = strf(
      "epochs %.0f | epoch %.1fs | link util %.2f | stall %.2f | gen %.0f | health %s",
      metric_value("sophon_epochs_completed_total"), metric_value("sophon_epoch_time_seconds"),
      metric_value("sophon_epoch_link_utilization"),
      metric_value("sophon_epoch_fetch_stall_fraction"),
      metric_value("sophon_replan_generation"), healthz.at("overall").as_string().c_str());
  if (!worst.empty()) line += " (" + worst + ")";
  return line;
}

/// The --adapt path of simulate: a multi-epoch run under a bandwidth
/// schedule, with the online replanner checking drift at every boundary.
int cmd_simulate_adaptive(const Flags& flags, const dataset::Catalog& catalog,
                          const pipeline::Pipeline& pipe, const pipeline::CostModel& cm,
                          const sim::ClusterConfig& cluster, Seconds gpu_batch,
                          const net::FaultInjector& faults, std::uint64_t seed) {
  MetricsRegistry metrics;
  core::adapt::RunOptions options;
  options.epochs = static_cast<std::size_t>(flags.integer("epochs", 10));
  options.adapt = flags.integer("adapt", 1) != 0;
  options.adapt_options.drift_threshold = flags.number("drift-threshold", 0.2);
  options.adapt_options.replan_cooldown =
      static_cast<std::size_t>(flags.integer("replan-cooldown", 2));
  options.adapt_options.min_improvement = flags.number("min-improvement", 0.05);
  options.adapt_options.metrics = &metrics;
  options.seed = seed;

  const double drop_factor = flags.number("bw-drop-factor", 1.0);
  const auto drop_epoch = static_cast<std::size_t>(flags.integer("bw-drop-epoch", 0));
  // 0 = the drop is permanent; otherwise the link heals at this epoch (the
  // recovery leg of the health arc).
  const auto recover_epoch = static_cast<std::size_t>(flags.integer("bw-recover-epoch", 0));
  const Bandwidth planned_bw = cluster.bandwidth;
  if (drop_factor != 1.0) {
    options.bandwidth_at = [planned_bw, drop_factor, drop_epoch,
                            recover_epoch](std::size_t epoch) {
      const bool dropped =
          epoch >= drop_epoch && (recover_epoch == 0 || epoch < recover_epoch);
      return dropped ? Bandwidth::bits_per_sec(planned_bw.bps() / drop_factor) : planned_bw;
    };
  }
  net::RetryPolicy retry;
  if (faults.enabled()) {
    retry.max_attempts = static_cast<std::uint32_t>(flags.integer("retries", 3)) + 1;
    retry.seed = faults.profile().seed;
    options.faults = &faults;
    options.retry = retry;
  }

  // Live telemetry plane: flight recorder + health rules always ride along
  // (they are cheap and feed the final exposition); the HTTP endpoint and
  // the postmortem guard are opt-in.
  obs::register_known_metrics(metrics);
  obs::FlightRecorder recorder(metrics);
  obs::HealthEvaluator health(obs::default_health_rules());
  options.telemetry.metrics = &metrics;
  options.telemetry.recorder = &recorder;
  options.telemetry.health = &health;
  options.telemetry.sample_interval = Seconds(flags.number("sample-interval", 0.0));

  // The traffic ledger is opt-in (--ledger-out): when absent the run loop
  // carries a null pointer and spends nothing on attribution.
  const auto ledger_out = flags.str("ledger-out", "");
  std::unique_ptr<obs::TrafficLedger> ledger;
  if (!ledger_out.empty()) {
    obs::TrafficLedger::Options ledger_options;
    ledger_options.metrics = &metrics;
    ledger = std::make_unique<obs::TrafficLedger>(ledger_options);
    options.telemetry.ledger = ledger.get();
  }

  std::unique_ptr<obs::TelemetryServer> server;
  if (flags.flag("telemetry-port")) {
    obs::TelemetryServerOptions server_options;
    server_options.port = static_cast<std::uint16_t>(flags.integer("telemetry-port", 0));
    server = std::make_unique<obs::TelemetryServer>(metrics, &recorder, &health, server_options);
    if (server->start()) {
      std::printf("telemetry: http://127.0.0.1:%u (/metrics /healthz /timeseries)\n",
                  static_cast<unsigned>(server->port()));
      std::fflush(stdout);  // a polling parent must see the port before the run
    } else {
      std::fprintf(stderr, "telemetry: %s (continuing without)\n", server->error().c_str());
      server.reset();
    }
  }

  const auto postmortem_out = flags.str("postmortem-out", "");
  obs::PostmortemSources sources;
  sources.metrics = &metrics;
  sources.recorder = &recorder;
  sources.health = &health;
  sources.ledger = ledger.get();
  std::unique_ptr<obs::PostmortemGuard> guard;
  if (!postmortem_out.empty()) {
    guard = std::make_unique<obs::PostmortemGuard>(postmortem_out, sources);
    options.telemetry.stop_signal = &guard->stop_signal();
  }

  if (flags.flag("monitor-self") && server != nullptr) {
    // Scrape our own endpoint over the real socket at every boundary — the
    // single-process proof that a mid-run scrape sees the run move.
    const std::uint16_t port = server->port();
    options.telemetry.on_epoch = [port](const core::adapt::EpochRow& row) {
      const auto healthz = http_get(port, "/healthz");
      const auto exposition = http_get(port, "/metrics");
      if (!healthz || !exposition) {
        std::printf("monitor-self: epoch %zu scrape failed\n", row.epoch);
        return;
      }
      const auto doc = Json::parse(healthz->body);
      if (!doc) {
        std::printf("monitor-self: epoch %zu /healthz unparseable\n", row.epoch);
        return;
      }
      std::printf("monitor-self: %s\n", monitor_line(*doc, exposition->body).c_str());
      std::fflush(stdout);
    };
  }

  const auto result = core::adapt::run_adaptive(catalog, pipe, cm, cluster, gpu_batch, options);
  TextTable table({"epoch", "link", "gen", "offloaded", "epoch time", "traffic", "decision"});
  for (const auto& row : result.rows) {
    const auto& drift = row.decision.drift;
    std::string decision = options.adapt
                               ? strf("%s (drift %.2f %s)",
                                      std::string(core::adapt::replan_outcome_name(
                                                      row.decision.outcome))
                                          .c_str(),
                                      drift.max_drift, std::string(drift.worst).c_str())
                               : "static";
    table.add_row({strf("%zu", row.epoch), strf("%.0f Mbps", row.actual_mbps),
                   strf("%llu", static_cast<unsigned long long>(row.plan_generation)),
                   strf("%zu", row.offloaded), strf("%.1f s", row.epoch_time.value()),
                   human_bytes(row.traffic), decision});
  }
  std::printf("%s", table.render().c_str());
  std::printf("re-plans accepted: %zu | final plan offloads %zu of %zu samples\n",
              result.replans, result.final_plan->offloaded_count(), catalog.size());
  if (ledger != nullptr) {
    const auto exported = ledger->export_state();
    std::printf("%s", obs::render_traffic_report(exported).c_str());
    if (!core::save_json_file(exported.to_json(), ledger_out)) {
      std::fprintf(stderr, "cannot write %s\n", ledger_out.c_str());
      return 1;
    }
    std::printf("wrote traffic ledger to %s\n", ledger_out.c_str());
  }
  if (options.adapt) std::printf("%s", metrics.expose().c_str());
  if (server != nullptr) server->stop();

  if (result.stopped_by_signal != 0) {
    if (guard != nullptr) {
      guard->dump(strf("signal %d after %zu epochs", result.stopped_by_signal,
                       result.rows.size()));
      std::printf("stopped by signal %d after %zu epochs; wrote %s\n",
                  result.stopped_by_signal, result.rows.size(), postmortem_out.c_str());
    }
    return 128 + result.stopped_by_signal;
  }
  if (guard != nullptr) {
    // Fault-ladder exhaustion leaves the same black box a kill does.
    const auto snapshot = metrics.snapshot();
    const auto failures = snapshot.counters.find("sophon_fetch_failures");
    if (failures != snapshot.counters.end() && failures->second > 0) {
      guard->dump(strf("fault-ladder exhaustion: %llu fetches failed",
                       static_cast<unsigned long long>(failures->second)));
      std::printf("wrote postmortem (%llu exhausted fetch ladders) to %s\n",
                  static_cast<unsigned long long>(failures->second), postmortem_out.c_str());
    }
  }
  return 0;
}

int cmd_simulate(const Flags& flags) {
  const auto name = flags.str("dataset", "openimages");
  const auto samples = static_cast<std::size_t>(flags.integer("samples", 40000));
  const auto seed = static_cast<std::uint64_t>(flags.integer("seed", 42));
  const auto epoch = static_cast<std::size_t>(flags.integer("epoch", 0));
  const auto catalog = dataset::Catalog::generate(profile_for(name, samples), seed);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;

  core::OffloadPlan plan(catalog.size());
  if (const auto path = flags.str("plan", ""); !path.empty()) {
    const auto loaded = core::load_json_file(path);
    auto parsed = loaded ? core::plan_from_json(*loaded) : std::nullopt;
    if (!parsed || parsed->size() != catalog.size()) {
      std::fprintf(stderr, "plan %s missing or wrong size\n", path.c_str());
      return 1;
    }
    plan = std::move(*parsed);
  }

  auto cluster = cluster_from(flags);
  const auto gpu = model::GpuModel::lookup(model::NetKind::kAlexNet, model::GpuKind::kRtx6000);

  // Optional fault replay (see docs/ARCHITECTURE.md, "Fault model").
  net::FaultProfile fault_profile;
  fault_profile.transient_fail_prob = flags.number("transient-fail", 0.0);
  fault_profile.permanent_fail_prob = flags.number("permanent-fail", 0.0);
  fault_profile.corrupt_prob = flags.number("corrupt", 0.0);
  fault_profile.offload_only = flags.integer("fail-offload-only", 1) != 0;
  fault_profile.latency_spike_prob = flags.number("latency-spike", 0.0);
  fault_profile.bandwidth_dip_prob = flags.number("bandwidth-dip", 0.0);
  fault_profile.seed = static_cast<std::uint64_t>(flags.integer("fault-seed", seed));
  const net::FaultInjector faults{fault_profile};

  // Materialization what-if: spend a disk budget on deterministic prefixes,
  // then re-run the offload decision over the adjusted profiles (materialised
  // samples carry near-zero t_cs, so the greedy picks them first). The flows
  // below charge the shard-read cost instead of live prefix CPU for them.
  std::vector<core::SampleProfile> adjusted;  // non-empty iff materialization on
  if (const long budget_mib = flags.integer("shard-budget-mib", -1); budget_mib >= 0) {
    if (flags.flag("adapt")) {
      std::fprintf(stderr, "--shard-budget-mib cannot be combined with --adapt\n");
      return 1;
    }
    const auto profiles = core::profile_stage2(catalog, pipe, cm);
    const double batches = std::ceil(static_cast<double>(catalog.size()) /
                                     static_cast<double>(cluster.batch_size));
    const Seconds gpu_epoch = gpu.batch_time(cluster.batch_size) * batches;
    if (flags.str("plan", "").empty()) {
      plan = core::decide_offloading(profiles, cluster, gpu_epoch).plan;
    }
    const auto mat = shard::plan_materialization(profiles, plan, pipe.deterministic_prefix(),
                                                 shard_budget_from(flags));
    adjusted = shard::adjusted_profiles(profiles, mat);
    const auto baseline = core::evaluate_plan(profiles, plan, cluster, gpu_epoch);
    const auto redecided = core::decide_offloading(adjusted, cluster, gpu_epoch);
    std::printf("materialized %zu of %zu samples (%s on disk, saves %.1f s/epoch storage CPU)\n",
                mat.materialized, catalog.size(), human_bytes(mat.total_bytes).c_str(),
                mat.cpu_saved.value());
    std::printf(
        "re-rank: offloaded %zu -> %zu | predicted epoch %.1f s -> %.1f s | "
        "T_CS %.1f s -> %.1f s | T_Net %.1f s -> %.1f s\n",
        plan.offloaded_count(), redecided.plan.offloaded_count(),
        baseline.predicted_epoch_time().value(),
        redecided.final_cost.predicted_epoch_time().value(), baseline.t_cs.value(),
        redecided.final_cost.t_cs.value(), baseline.t_net.value(),
        redecided.final_cost.t_net.value());
    plan = redecided.plan;
  }

  if (flags.flag("adapt")) {
    return cmd_simulate_adaptive(flags, catalog, pipe, cm, cluster,
                                 gpu.batch_time(cluster.batch_size), faults, seed);
  }

  std::function<sim::SampleFlow(std::size_t)> flow = [&](std::size_t idx) {
    const auto& meta = catalog.sample(idx);
    const std::size_t prefix = plan.prefix(idx);
    sim::SampleFlow f;
    if (prefix > 0) {
      if (adjusted.empty()) {
        f.storage_cpu = pipe.prefix_cost(meta.raw, prefix, cm);
      } else {
        for (std::size_t j = 0; j < prefix; ++j) f.storage_cpu += adjusted[idx].op_costs[j];
      }
    }
    f.wire = net::wire_size(pipe.shape_at(meta.raw, prefix));
    f.compute_cpu = pipe.suffix_cost(meta.raw, prefix, cm);
    return f;
  };
  sim::FaultReplayStats replay;
  if (faults.enabled()) {
    cluster.link_faults = &faults;
    const auto raw_flow = [&](std::size_t idx) {
      const auto& meta = catalog.sample(idx);
      sim::SampleFlow f;
      f.wire = net::wire_size(pipe.shape_at(meta.raw, 0));
      f.compute_cpu = pipe.suffix_cost(meta.raw, 0, cm);
      return f;
    };
    net::RetryPolicy retry;
    retry.max_attempts = static_cast<std::uint32_t>(flags.integer("retries", 3)) + 1;
    retry.seed = fault_profile.seed;
    flow = sim::faulty_flow(flow, raw_flow, faults, retry, epoch, &replay);
  }

  const auto stats = sim::simulate_epoch_flows(catalog.size(), flow, cluster,
                                               gpu.batch_time(cluster.batch_size), seed, epoch);
  std::printf("epoch %.1f s | traffic %s | GPU util %.1f%% | offloaded %zu | storage CPU %.1fs\n",
              stats.epoch_time.value(), human_bytes(stats.traffic).c_str(),
              100.0 * stats.gpu_utilization, stats.offloaded_samples,
              stats.storage_cpu_busy.value());
  if (faults.enabled()) {
    std::printf("faults: %llu retries | %zu degraded | %zu failed | %s wasted | %.2fs backoff\n",
                static_cast<unsigned long long>(replay.retries), replay.degraded, replay.failed,
                human_bytes(replay.wasted_traffic).c_str(), replay.backoff.value());
    MetricsRegistry metrics;
    metrics.counter("sophon_fetch_retries").increment(replay.retries);
    metrics.counter("sophon_degraded_samples").increment(replay.degraded);
    metrics.counter("sophon_fetch_failures").increment(replay.failed);
    metrics.gauge("sophon_fetch_backoff_seconds").set(replay.backoff.value());
    std::printf("%s", metrics.expose().c_str());
  }

  // Optional clairvoyant-prefetch comparison: replay the same flows through
  // the worker-level loader model, demand vs. prefetch (see src/prefetch/).
  if (const auto depth = static_cast<std::size_t>(flags.integer("prefetch-depth", 0));
      depth > 0) {
    prefetch::ReplayOptions replay_options;
    replay_options.workers = static_cast<std::size_t>(flags.integer("workers", 4));
    const auto gpu_batch = gpu.batch_time(cluster.batch_size);
    const auto demand = prefetch::replay_epoch(catalog.size(), flow, cluster, gpu_batch, seed,
                                               epoch, replay_options);
    replay_options.prefetch.depth = depth;
    replay_options.prefetch.bytes_budget =
        Bytes::mib(flags.integer("prefetch-budget-mib", 0));
    const auto prefetched = prefetch::replay_epoch(catalog.size(), flow, cluster, gpu_batch,
                                                   seed, epoch, replay_options);
    const double speedup =
        demand.epoch.epoch_time.value() / prefetched.epoch.epoch_time.value();
    std::printf(
        "prefetch (depth %zu, %zu workers): epoch %.1f s -> %.1f s (%.2fx) | "
        "traffic %s -> %s\n",
        depth, replay_options.workers, demand.epoch.epoch_time.value(),
        prefetched.epoch.epoch_time.value(), speedup,
        human_bytes(demand.epoch.traffic).c_str(), human_bytes(prefetched.epoch.traffic).c_str());
    const auto& ps = prefetched.prefetch;
    std::printf(
        "prefetch stats: %llu issued | %llu hits (%llu late) | %llu demand | "
        "%llu deprioritized | stall %.1fs -> %.1fs | link inflight peak %llu\n",
        static_cast<unsigned long long>(ps.issued), static_cast<unsigned long long>(ps.hits),
        static_cast<unsigned long long>(ps.late_hits),
        static_cast<unsigned long long>(ps.demand_fetches),
        static_cast<unsigned long long>(ps.skipped_deprioritized),
        demand.prefetch.worker_stall.value(), ps.worker_stall.value(),
        static_cast<unsigned long long>(ps.max_inflight));
  }

  // Traced run: replay the epoch through the worker-level model with span
  // tracing on, export Chrome trace JSON and/or the stall attribution.
  const auto trace_out = flags.str("trace-out", "");
  const auto critpath_out = flags.str("critpath-out", "");
  const bool want_report = flags.flag("report");
  if (!trace_out.empty() || want_report || !critpath_out.empty()) {
    prefetch::ReplayOptions replay_options;
    replay_options.workers = static_cast<std::size_t>(flags.integer("workers", 4));
    replay_options.prefetch.depth =
        static_cast<std::size_t>(flags.integer("prefetch-depth", 0));
    replay_options.prefetch.bytes_budget = Bytes::mib(flags.integer("prefetch-budget-mib", 0));
    const auto gpu_batch = gpu.batch_time(cluster.batch_size);

    auto& tracer = obs::global_tracer();
    // Everything records from this thread: one ring must hold the whole
    // epoch (fetch/wait + preprocess + per-op + storage + link + gpu spans).
    tracer.set_capacity(catalog.size() * 12 + 4096);
    tracer.set_enabled(true);
    sim::TraceRecorder recorder;
    const auto traced = prefetch::replay_epoch(catalog.size(), flow, cluster, gpu_batch, seed,
                                               epoch, replay_options, recorder.sink());
    const obs::SampleCostFn costs = [&](std::uint32_t idx) {
      const auto& meta = catalog.sample(idx);
      const std::size_t prefix = plan.prefix(idx);
      obs::SampleOpCosts detail;
      detail.prefix = static_cast<std::int32_t>(prefix);
      detail.storage_prefix =
          prefix > 0 ? pipe.prefix_cost(meta.raw, prefix, cm) : Seconds(0.0);
      for (std::size_t i = prefix; i < pipe.size(); ++i) {
        detail.compute_ops.emplace_back(std::string(pipe.op(i).name()),
                                        pipe.op_cost(meta.raw, i, cm));
      }
      return detail;
    };
    const auto flows = obs::build_replay_trace(recorder.rows(), costs, tracer);

    // Critical-path analysis of the traced epoch: re-time the exact same
    // demands, decompose the blame vector, rank the stock what-if scenarios,
    // and overlay the path as a highlighted track in the Chrome trace.
    if (!critpath_out.empty()) {
      obs::critpath::EpochParams params;
      params.cluster = cluster;
      params.gpu_batch_time = gpu_batch;
      params.seed = seed;
      params.epoch_index = epoch;
      params.num_samples = catalog.size();
      params.discipline = obs::critpath::Discipline::kWorkerReplay;
      params.replay = replay_options;
      const obs::critpath::DemandFn demand = [&flow](std::size_t i) {
        const auto f = flow(i);
        return obs::critpath::SampleDemand{f.storage_cpu, f.compute_cpu, f.wire, f.delay};
      };
      const auto whatif = obs::critpath::project(demand, params,
                                                 obs::critpath::default_scenarios(params),
                                                 traced.epoch.epoch_time);
      const auto& analysis = whatif.baseline;
      std::printf("%s%s", analysis.render().c_str(), whatif.render().c_str());
      const std::uint32_t critpath_track = tracer.track("critical-path");
      for (const auto& segment : analysis.path) {
        obs::SpanArgs args;
        args.sample = segment.sample;
        args.position = segment.position;
        tracer.record_at(critpath_track, obs::SpanCategory::kOther,
                         obs::critpath::resource_name(segment.via), segment.begin, segment.end,
                         args);
      }
      Json doc = analysis.to_json();
      doc.set("whatif", whatif.to_json());
      if (!core::save_json_file(doc, critpath_out)) {
        std::fprintf(stderr, "cannot write %s\n", critpath_out.c_str());
        return 1;
      }
      std::printf("wrote critical-path analysis to %s\n", critpath_out.c_str());
    }

    tracer.set_enabled(false);
    const auto spans = tracer.drain();
    const auto labels = tracer.labels();

    if (!trace_out.empty()) {
      if (!core::save_json_file(obs::chrome_trace_json(spans, labels, flows), trace_out)) {
        std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
        return 1;
      }
      std::printf("wrote %zu spans + %zu flows (%llu dropped) to %s\n", spans.size(),
                  flows.size(), static_cast<unsigned long long>(tracer.dropped()),
                  trace_out.c_str());
    }
    if (want_report) {
      auto report = obs::EpochReport::build(spans, labels, traced.epoch.epoch_time);
      const auto profiles = core::profile_stage2(catalog, pipe, cm);
      const double batches = std::ceil(static_cast<double>(catalog.size()) /
                                       static_cast<double>(cluster.batch_size));
      const auto predicted = core::evaluate_plan(profiles, plan, cluster, gpu_batch * batches);
      report.set_predicted(obs::EpochReport::Costs{predicted.t_g, predicted.t_cc,
                                                   predicted.t_cs, predicted.t_net});
      std::printf("%s", report.render().c_str());
      if (const auto out = flags.str("report-out", ""); !out.empty()) {
        if (!core::save_json_file(report.to_json(), out)) {
          std::fprintf(stderr, "cannot write %s\n", out.c_str());
          return 1;
        }
        std::printf("wrote stall report to %s\n", out.c_str());
      }
    }
  }
  return 0;
}

/// Run the real simulator under one EpochParams config — the ground truth
/// the what-if projections are validated against.
Seconds simulate_under_params(const obs::critpath::EpochParams& params,
                              const std::function<sim::SampleFlow(std::size_t)>& flow) {
  if (params.discipline == obs::critpath::Discipline::kWorkerReplay) {
    return prefetch::replay_epoch(params.num_samples, flow, params.cluster,
                                  params.gpu_batch_time, params.seed, params.epoch_index,
                                  params.replay)
        .epoch.epoch_time;
  }
  return sim::simulate_epoch_flows(params.num_samples, flow, params.cluster,
                                   params.gpu_batch_time, params.seed, params.epoch_index)
      .epoch_time;
}

/// Re-time one epoch, decompose the critical path, rank the stock what-if
/// scenarios, and (by default) validate every projection against a real
/// simulator re-run under the perturbed config.
int cmd_whatif(const Flags& flags) {
  const auto name = flags.str("dataset", "openimages");
  const auto samples = static_cast<std::size_t>(flags.integer("samples", 40000));
  const auto seed = static_cast<std::uint64_t>(flags.integer("seed", 42));
  const auto epoch = static_cast<std::size_t>(flags.integer("epoch", 0));
  const auto catalog = dataset::Catalog::generate(profile_for(name, samples), seed);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;

  core::OffloadPlan plan(catalog.size());
  if (const auto path = flags.str("plan", ""); !path.empty()) {
    const auto loaded = core::load_json_file(path);
    auto parsed = loaded ? core::plan_from_json(*loaded) : std::nullopt;
    if (!parsed || parsed->size() != catalog.size()) {
      std::fprintf(stderr, "plan %s missing or wrong size\n", path.c_str());
      return 1;
    }
    plan = std::move(*parsed);
  }

  const auto cluster = cluster_from(flags);
  const auto gpu = model::GpuModel::lookup(model::NetKind::kAlexNet, model::GpuKind::kRtx6000);

  obs::critpath::EpochParams params;
  params.cluster = cluster;
  params.gpu_batch_time = gpu.batch_time(cluster.batch_size);
  params.seed = seed;
  params.epoch_index = epoch;
  params.num_samples = catalog.size();
  if (flags.integer("replay", 0) != 0) {
    params.discipline = obs::critpath::Discipline::kWorkerReplay;
    params.replay.workers = static_cast<std::size_t>(flags.integer("workers", 4));
    params.replay.prefetch.depth =
        static_cast<std::size_t>(flags.integer("prefetch-depth", 0));
    params.replay.prefetch.bytes_budget = Bytes::mib(flags.integer("prefetch-budget-mib", 0));
  }

  const auto flow = [&](std::size_t idx) {
    const auto& meta = catalog.sample(idx);
    const std::size_t prefix = plan.prefix(idx);
    sim::SampleFlow f;
    if (prefix > 0) f.storage_cpu = pipe.prefix_cost(meta.raw, prefix, cm);
    f.wire = net::wire_size(pipe.shape_at(meta.raw, prefix));
    f.compute_cpu = pipe.suffix_cost(meta.raw, prefix, cm);
    return f;
  };
  const obs::critpath::DemandFn demand = [&flow](std::size_t i) {
    const auto f = flow(i);
    return obs::critpath::SampleDemand{f.storage_cpu, f.compute_cpu, f.wire, f.delay};
  };

  const Seconds observed = simulate_under_params(params, flow);
  const auto report = obs::critpath::project(demand, params,
                                             obs::critpath::default_scenarios(params), observed);
  std::printf("%s%s", report.baseline.render().c_str(), report.render().c_str());

  int exit_code = 0;
  Json doc = report.to_json();
  if (flags.integer("validate", 1) != 0) {
    // Every projection must match a real simulator re-run under the
    // perturbed config — the check that keeps the retimer honest.
    const double tolerance = flags.number("tolerance", 0.05);
    std::size_t validated = 0;
    Json verdicts = Json::array();
    for (const auto& projection : report.ranked) {
      const Seconds actual = simulate_under_params(projection.params, flow);
      const double reference = std::max(actual.value(), 1e-12);
      const double error =
          std::fabs(projection.projected_epoch_time.value() - actual.value()) / reference;
      const bool ok = error <= tolerance;
      std::printf("  %-22s projected %9.3f s | simulated %9.3f s | error %.2e %s\n",
                  projection.name.c_str(), projection.projected_epoch_time.value(),
                  actual.value(), error, ok ? "OK" : "FAIL");
      Json verdict = Json::object();
      verdict.set("name", projection.name);
      verdict.set("simulated_epoch_time_seconds", actual.value());
      verdict.set("rel_error", error);
      verdict.set("ok", ok);
      verdicts.push_back(std::move(verdict));
      if (ok) {
        ++validated;
      } else {
        exit_code = 1;
      }
    }
    std::printf("what-if validated: %zu of %zu scenarios within %.0f%%\n", validated,
                report.ranked.size(), 100.0 * tolerance);
    Json validation = Json::object();
    validation.set("tolerance", tolerance);
    validation.set("validated", static_cast<std::int64_t>(validated));
    validation.set("total", static_cast<std::int64_t>(report.ranked.size()));
    validation.set("scenarios", std::move(verdicts));
    doc.set("validation", std::move(validation));
  }

  if (const auto out = flags.str("out", ""); !out.empty()) {
    if (!core::save_json_file(doc, out)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote what-if report to %s\n", out.c_str());
  }
  return exit_code;
}

/// Schema-check a Chrome trace-event document with the in-repo JSON parser:
/// structural validity plus the event fields Perfetto needs. --strict
/// additionally requires the sample-lifecycle span categories.
int cmd_validate_trace(const Flags& flags) {
  const auto in = flags.required("in");
  const auto loaded = core::load_json_file(in);
  if (!loaded) {
    std::fprintf(stderr, "cannot read or parse %s\n", in.c_str());
    return 1;
  }
  if (!loaded->is_object() || !loaded->has("traceEvents") ||
      !loaded->at("traceEvents").is_array()) {
    std::fprintf(stderr, "%s: missing traceEvents array\n", in.c_str());
    return 1;
  }
  const auto& events = loaded->at("traceEvents");
  std::map<std::string, std::size_t> categories;
  std::map<std::string, std::size_t> time_bases;
  // Flow-event pairing: each id must appear exactly once as a start ("s")
  // and once as a finish ("f") — a dangling arrow is a malformed trace.
  std::map<std::int64_t, std::pair<std::size_t, std::size_t>> flow_phases;
  std::size_t complete = 0;
  std::size_t metadata = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& event = events.at(i);
    const auto fail = [&](const char* what) {
      std::fprintf(stderr, "%s: event %zu %s\n", in.c_str(), i, what);
      return 1;
    };
    if (!event.is_object()) return fail("is not an object");
    for (const char* key : {"name", "ph", "pid", "tid"}) {
      if (!event.has(key)) return fail("lacks a required field");
    }
    const auto& ph = event.at("ph").as_string();
    if (ph == "M") {
      ++metadata;
      continue;
    }
    if (ph == "s" || ph == "f") {
      if (!event.has("id")) return fail("flow event lacks an id");
      if (!event.has("ts")) return fail("lacks ts");
      auto& [starts, finishes] = flow_phases[event.at("id").as_int()];
      if (ph == "s") {
        ++starts;
      } else {
        if (!event.has("bp") || event.at("bp").as_string() != "e") {
          return fail("flow finish is not bound to the enclosing slice (bp != e)");
        }
        ++finishes;
      }
      continue;
    }
    if (ph != "X") return fail("has unsupported phase");
    if (!event.has("ts") || !event.has("dur")) return fail("lacks ts/dur");
    if (event.at("dur").as_number() < 0.0) return fail("has negative duration");
    if (event.has("tb")) {
      const auto& tb = event.at("tb").as_string();
      if (tb != "virtual" && tb != "steady") return fail("has an unknown time base");
      ++time_bases[tb];
    }
    if (event.has("cat")) ++categories[event.at("cat").as_string()];
    ++complete;
  }
  for (const auto& [id, phases] : flow_phases) {
    if (phases.first != 1 || phases.second != 1) {
      std::fprintf(stderr, "%s: flow id %lld has %zu start(s) and %zu finish(es), want 1+1\n",
                   in.c_str(), static_cast<long long>(id), phases.first, phases.second);
      return 1;
    }
  }
  if (flags.integer("strict", 1) != 0) {
    for (const char* required : {"preprocess", "transfer"}) {
      if (categories[required] == 0) {
        std::fprintf(stderr, "%s: no '%s' spans\n", in.c_str(), required);
        return 1;
      }
    }
    if (categories["fetch"] == 0 && categories["staging_wait"] == 0) {
      std::fprintf(stderr, "%s: no fetch or staging_wait spans\n", in.c_str());
      return 1;
    }
    // The "two time bases" invariant (docs/OBSERVABILITY.md): one file is
    // either a virtual-time replay or a steady-clock recording, never both.
    // Events without a "tb" marker (older exports) don't count either way.
    if (time_bases["virtual"] > 0 && time_bases["steady"] > 0) {
      std::fprintf(stderr,
                   "%s: mixed time bases (%zu virtual, %zu steady spans in one file)\n",
                   in.c_str(), time_bases["virtual"], time_bases["steady"]);
      return 1;
    }
  }
  std::printf("trace OK: %zu spans, %zu thread names, %zu flows", complete, metadata,
              flow_phases.size());
  for (const auto& [category, count] : categories) {
    std::printf(" | %s %zu", category.c_str(), count);
  }
  for (const auto& [base, count] : time_bases) {
    std::printf(" | tb:%s %zu", base.c_str(), count);
  }
  std::printf("\n");
  return 0;
}

/// Poll a live telemetry endpoint and render one status line per scrape —
/// the operator-facing counterpart of `simulate --telemetry-port`.
int cmd_monitor(const Flags& flags) {
  const auto port = static_cast<std::uint16_t>(flags.integer("port", 0));
  if (port == 0) {
    std::fprintf(stderr, "missing required flag --port\n");
    return 2;
  }
  const double interval = flags.number("interval", 1.0);
  const auto iterations = static_cast<std::size_t>(flags.integer("iterations", 0));
  std::size_t succeeded = 0;
  std::size_t consecutive_failures = 0;
  for (std::size_t i = 0; iterations == 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(std::max(interval, 0.01)));
    }
    const auto healthz = http_get(port, "/healthz");
    const auto exposition = http_get(port, "/metrics");
    if (!healthz || !exposition) {
      // Two misses in a row means the run ended, not a blip.
      if (++consecutive_failures >= 2) break;
      continue;
    }
    consecutive_failures = 0;
    const auto doc = Json::parse(healthz->body);
    if (!doc) {
      std::fprintf(stderr, "monitor: /healthz unparseable\n");
      return 1;
    }
    std::printf("%s\n", monitor_line(*doc, exposition->body).c_str());
    std::fflush(stdout);
    ++succeeded;
  }
  if (succeeded == 0) {
    std::fprintf(stderr, "monitor: no scrape of 127.0.0.1:%u succeeded\n",
                 static_cast<unsigned>(port));
    return 1;
  }
  std::printf("monitor: %zu scrapes\n", succeeded);
  return 0;
}

/// Recursive numeric comparison of two JSON bench artifacts. Numbers must
/// agree within the relative tolerance, everything else exactly; candidate
/// keys missing from the baseline are ignored (new fields are not a
/// regression).
bool bench_compare_value(const std::string& path, const Json& baseline, const Json& candidate,
                         double tolerance, std::size_t& mismatches) {
  const auto report = [&](const std::string& what) {
    std::fprintf(stderr, "  %s: %s\n", path.empty() ? "(root)" : path.c_str(), what.c_str());
    ++mismatches;
    return false;
  };
  if (baseline.is_number() && candidate.is_number()) {
    const double want = baseline.as_number();
    const double got = candidate.as_number();
    const double scale = std::max({std::fabs(want), std::fabs(got), 1e-12});
    if (std::fabs(want - got) / scale > tolerance) {
      return report(strf("%.6g -> %.6g (%.1f%% off, tolerance %.1f%%)", want, got,
                         100.0 * std::fabs(want - got) / scale, 100.0 * tolerance));
    }
    return true;
  }
  if (baseline.type() != candidate.type()) return report("type changed");
  if (baseline.is_object()) {
    bool ok = true;
    for (const auto& [key, value] : baseline.items()) {
      const std::string child = path.empty() ? key : path + "." + key;
      if (!candidate.has(key)) {
        report("missing from candidate");
        ok = false;
        continue;
      }
      ok = bench_compare_value(child, value, candidate.at(key), tolerance, mismatches) && ok;
    }
    return ok;
  }
  if (baseline.is_array()) {
    if (baseline.size() != candidate.size()) return report("array length changed");
    bool ok = true;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      ok = bench_compare_value(path + strf("[%zu]", i), baseline.at(i), candidate.at(i),
                               tolerance, mismatches) &&
           ok;
    }
    return ok;
  }
  if (!(baseline == candidate)) return report("value changed");
  return true;
}

/// Compare a freshly produced BENCH_*.json against the committed baseline.
/// Backs tools/check.sh --bench-regress.
int cmd_bench_compare(const Flags& flags) {
  const auto baseline_path = flags.required("baseline");
  const auto candidate_path = flags.required("candidate");
  const double tolerance = flags.number("tolerance", 0.05);
  const auto baseline = core::load_json_file(baseline_path);
  const auto candidate = core::load_json_file(candidate_path);
  if (!baseline || !candidate) {
    std::fprintf(stderr, "cannot read %s\n", (!baseline ? baseline_path : candidate_path).c_str());
    return 1;
  }
  std::size_t mismatches = 0;
  if (!bench_compare_value("", *baseline, *candidate, tolerance, mismatches)) {
    std::fprintf(stderr, "bench-compare: %zu field(s) regressed (%s vs %s)\n", mismatches,
                 candidate_path.c_str(), baseline_path.c_str());
    return 1;
  }
  std::printf("bench-compare OK: %s within %.0f%% of %s\n", candidate_path.c_str(),
              100.0 * tolerance, baseline_path.c_str());
  return 0;
}

int cmd_evaluate(const Flags& flags) {
  const auto name = flags.str("dataset", "openimages");
  const auto samples = static_cast<std::size_t>(
      flags.integer("samples", name == "imagenet" ? 90000 : 40000));
  const auto catalog = dataset::Catalog::generate(
      profile_for(name, samples), static_cast<std::uint64_t>(flags.integer("seed", 42)));
  core::RunConfig config;
  config.cluster = cluster_from(flags);
  const auto results = core::run_all_policies(catalog, pipeline::Pipeline::standard(),
                                              pipeline::CostModel{}, config);
  TextTable table({"policy", "epoch time", "traffic", "offloaded"});
  for (const auto& r : results) {
    table.add_row({r.name, strf("%.1f s", r.stats.epoch_time.value()),
                   human_bytes(r.stats.traffic), strf("%zu", r.stats.offloaded_samples)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_trace(const Flags& flags) {
  const auto name = flags.str("dataset", "openimages");
  const auto samples = static_cast<std::size_t>(flags.integer("samples", 8000));
  const auto seed = static_cast<std::uint64_t>(flags.integer("seed", 42));
  const auto catalog = dataset::Catalog::generate(profile_for(name, samples), seed);
  const auto pipe = pipeline::Pipeline::standard();
  const pipeline::CostModel cm;
  const auto cluster = cluster_from(flags);

  core::OffloadPlan plan(catalog.size());
  if (const auto path = flags.str("plan", ""); !path.empty()) {
    const auto loaded = core::load_json_file(path);
    auto parsed = loaded ? core::plan_from_json(*loaded) : std::nullopt;
    if (!parsed || parsed->size() != catalog.size()) {
      std::fprintf(stderr, "plan %s missing or wrong size\n", path.c_str());
      return 1;
    }
    plan = std::move(*parsed);
  }

  const auto gpu = model::GpuModel::lookup(model::NetKind::kAlexNet, model::GpuKind::kRtx6000);
  sim::TraceRecorder recorder;
  const auto flow = [&](std::size_t idx) {
    const auto& meta = catalog.sample(idx);
    const std::size_t prefix = plan.prefix(idx);
    sim::SampleFlow f;
    f.storage_cpu = prefix > 0 ? pipe.prefix_cost(meta.raw, prefix, cm) : Seconds(0.0);
    f.wire = net::wire_size(pipe.shape_at(meta.raw, prefix));
    f.compute_cpu = pipe.suffix_cost(meta.raw, prefix, cm);
    return f;
  };
  const auto stats = sim::simulate_epoch_flows(catalog.size(), flow, cluster,
                                               gpu.batch_time(cluster.batch_size), seed, 0,
                                               recorder.sink());
  std::printf("epoch %.1f s | traffic %s | mean per-sample latency %s\n",
              stats.epoch_time.value(), human_bytes(stats.traffic).c_str(),
              human_seconds(recorder.mean_latency()).c_str());
  if (const auto out = flags.str("out", ""); !out.empty()) {
    if (!core::save_json_file(recorder.to_json(), out)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %zu timeline records to %s\n", recorder.size(), out.c_str());
  }
  return 0;
}

int cmd_calibrate(const Flags& flags) {
  const auto samples = static_cast<std::size_t>(flags.integer("samples", 5));
  const auto repeats = static_cast<int>(flags.integer("repeats", 3));
  std::vector<dataset::SampleMeta> corpus;
  for (std::size_t i = 0; i < samples; ++i) {
    dataset::SampleMeta meta;
    meta.id = i;
    const int w = 320 + static_cast<int>(i) * 160;
    meta.raw = pipeline::SampleShape::encoded(Bytes(1), w, w * 3 / 4, 3);
    meta.texture = 0.15 + 0.7 * static_cast<double>(i) / static_cast<double>(samples);
    corpus.push_back(meta);
  }
  dataset::CalibrationOptions options;
  options.repeats = repeats;
  const auto result = dataset::calibrate_cost_model(corpus, options);
  const auto& c = result.coefficients;
  std::printf("fitted coefficients (median relative error %.0f%%):\n",
              100.0 * result.median_relative_error());
  std::printf("  decode_ns_per_byte        %.2f\n", c.decode_ns_per_byte);
  std::printf("  decode_ns_per_pixel       %.2f\n", c.decode_ns_per_pixel);
  std::printf("  crop_ns_per_src_pixel     %.2f\n", c.crop_ns_per_src_pixel);
  std::printf("  resize_ns_per_out_pixel   %.2f\n", c.resize_ns_per_out_pixel);
  std::printf("  flip_ns_per_pixel         %.2f\n", c.flip_ns_per_pixel);
  std::printf("  to_tensor_ns_per_element  %.2f\n", c.to_tensor_ns_per_element);
  std::printf("  normalize_ns_per_element  %.2f\n", c.normalize_ns_per_element);
  if (const auto out = flags.str("out", ""); !out.empty()) {
    Json json = Json::object();
    json.set("kind", "sophon.cost_coefficients");
    json.set("version", 1);
    json.set("decode_ns_per_byte", c.decode_ns_per_byte);
    json.set("decode_ns_per_pixel", c.decode_ns_per_pixel);
    json.set("crop_ns_per_src_pixel", c.crop_ns_per_src_pixel);
    json.set("resize_ns_per_out_pixel", c.resize_ns_per_out_pixel);
    json.set("flip_ns_per_pixel", c.flip_ns_per_pixel);
    json.set("to_tensor_ns_per_element", c.to_tensor_ns_per_element);
    json.set("normalize_ns_per_element", c.normalize_ns_per_element);
    if (!core::save_json_file(json, out)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int cmd_ingest(const Flags& flags) {
  const auto name = flags.str("dataset", "openimages");
  const auto samples = static_cast<std::size_t>(flags.integer("samples", 64));
  const auto seed = static_cast<std::uint64_t>(flags.integer("seed", 42));
  const auto dir = flags.required("dir");
  auto profile = profile_for(name, samples);
  // Ingest is real materialisation; keep images modest unless overridden.
  profile.max_pixels = flags.number("max-pixels", 1.5e6);
  const auto catalog = dataset::Catalog::generate(profile, seed);
  storage::DiskStore store{dir};
  const auto written = store.ingest_catalog(catalog, seed, profile.quality);
  std::printf("ingested %zu blobs (%s) into %s\n", written,
              human_bytes(store.stored_bytes()).c_str(), dir.c_str());
  return 0;
}

/// Plan a materialization and pack the shard file: profile the corpus, run
/// the offload decision, greedily select deterministic prefixes by
/// materialization efficiency under the byte budget, execute them, write
/// the shard.
int cmd_pack(const Flags& flags) {
  const auto name = flags.str("dataset", "openimages");
  const auto samples = static_cast<std::size_t>(flags.integer("samples", 512));
  const auto seed = static_cast<std::uint64_t>(flags.integer("seed", 42));
  const auto out = flags.required("out");
  auto profile = profile_for(name, samples);
  // Packing is real materialisation (like ingest); keep images modest
  // unless overridden.
  profile.max_pixels = flags.number("max-pixels", 1.5e6);
  const auto catalog = dataset::Catalog::generate(profile, seed);
  const auto pipe = pipeline_for(flags.str("pipeline", "standard"));
  const pipeline::CostModel cm;
  const auto profiles = core::profile_stage2(catalog, pipe, cm);
  const auto cluster = cluster_from(flags);
  const Seconds t_g(flags.number("tg-seconds", 14.0));
  const auto decision = core::decide_offloading(profiles, cluster, t_g);
  const auto budget = shard_budget_from(flags);
  const auto plan = shard::plan_materialization(profiles, decision.plan,
                                                pipe.deterministic_prefix(), budget);
  const auto stats = shard::pack_catalog(catalog, seed, profile.quality, pipe, cm, plan, out);
  if (!stats) {
    std::fprintf(stderr, "cannot write shard %s\n", out.c_str());
    return 1;
  }
  std::printf("packed %zu of %zu samples (deterministic prefix <= %zu of %zu ops) into %s\n",
              stats->entries, catalog.size(), pipe.deterministic_prefix(), pipe.size(),
              out.c_str());
  std::printf("shard %s (payloads %s) | storage CPU saved %.2f s/epoch | "
              "one-time pack cost %.2f s\n",
              human_bytes(stats->file_bytes).c_str(), human_bytes(stats->payload_bytes).c_str(),
              plan.cpu_saved.value(), stats->modeled_cpu.value());
  return 0;
}

/// Open a shard, re-verify every entry's crc32, and summarise the contents
/// per materialisation stage. Non-zero exit on a malformed file or any
/// failed checksum.
int cmd_inspect_shard(const Flags& flags) {
  const auto in = flags.required("in");
  const auto reader = shard::ShardReader::open(in);
  if (!reader) {
    std::fprintf(stderr, "%s is not a valid shard (bad magic/version/index)\n", in.c_str());
    return 1;
  }
  std::map<unsigned, std::pair<std::size_t, std::int64_t>> by_stage;  // stage -> count, bytes
  std::size_t corrupt = 0;
  for (const auto& entry : reader->entries()) {
    if (!reader->read_verified(entry)) {
      ++corrupt;
      std::fprintf(stderr, "entry %llu: crc mismatch\n",
                   static_cast<unsigned long long>(entry.sample_id));
      continue;
    }
    auto& [count, bytes] = by_stage[entry.stage];
    ++count;
    bytes += static_cast<std::int64_t>(entry.length);
  }
  TextTable table({"stage", "entries", "payload"});
  for (const auto& [stage, agg] : by_stage) {
    table.add_row({strf("%u", stage), strf("%zu", agg.first), human_bytes(Bytes(agg.second))});
  }
  std::printf("%s", table.render().c_str());
  std::printf("%zu entries, %s on disk, %zu corrupt\n", reader->size(),
              human_bytes(reader->file_bytes()).c_str(), corrupt);
  if (corrupt > 0) return 1;
  std::printf("all checksums OK\n");
  return 0;
}

std::optional<obs::LedgerExport> load_ledger(const std::string& path) {
  const auto doc = core::load_json_file(path);
  auto exported = doc ? obs::LedgerExport::from_json(*doc) : std::nullopt;
  if (!exported) {
    std::fprintf(stderr, "%s is not a valid traffic-ledger export\n", path.c_str());
  }
  return exported;
}

int cmd_traffic_report(const Flags& flags) {
  const auto exported = load_ledger(flags.required("in"));
  if (!exported) return 1;
  std::printf("%s", obs::render_traffic_report(*exported).c_str());
  return 0;
}

int cmd_traffic_diff(const Flags& flags) {
  const auto a = load_ledger(flags.required("a"));
  const auto b = load_ledger(flags.required("b"));
  if (!a || !b) return 1;
  const auto diff = obs::diff_ledgers(*a, *b);
  std::printf("%s", obs::render_traffic_diff(diff).c_str());
  if (flags.flag("expect-zero") && !diff.identical()) {
    std::fprintf(stderr, "expected byte-identical ledgers, total delta %lld bytes\n",
                 static_cast<long long>(diff.total_delta()));
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Command table: the single source of truth for dispatch, help output, and
// flag validation. tools/check.sh --docs diffs `sophonctl help` against
// docs/CLI.md, so a flag added here without a docs entry fails CI.

struct FlagSpec {
  const char* name;
  const char* arg;  // value placeholder, or "" for a boolean switch
  const char* help;
};

struct CommandSpec {
  const char* name;
  const char* summary;
  std::vector<FlagSpec> flags;
  int (*run)(const Flags&);
};

const std::vector<FlagSpec> kClusterFlags = {
    {"mbps", "N", "inter-cluster link bandwidth in Mbps (default 500)"},
    {"storage-cores", "N", "storage-node preprocessing cores (default 48)"},
    {"compute-cores", "N", "compute-node preprocessing cores (default 48)"},
    {"storage-speed", "X", "storage core speed relative to a compute core (default 1.0)"},
    {"batch-size", "N", "training batch size (default 256)"},
};

const std::vector<FlagSpec> kCorpusFlags = {
    {"dataset", "NAME", "openimages | imagenet (default openimages)"},
    {"samples", "N", "catalog size"},
    {"seed", "N", "deterministic corpus/shuffle seed (default 42)"},
};

std::vector<FlagSpec> with_common(std::vector<FlagSpec> own, bool corpus, bool cluster) {
  std::vector<FlagSpec> all;
  if (corpus) all.insert(all.end(), kCorpusFlags.begin(), kCorpusFlags.end());
  if (cluster) all.insert(all.end(), kClusterFlags.begin(), kClusterFlags.end());
  all.insert(all.end(), own.begin(), own.end());
  return all;
}

const std::vector<CommandSpec>& commands() {
  static const std::vector<CommandSpec> kCommands = {
      {"gen-profiles", "run the stage-2 profiler and write the per-sample profile artifact",
       with_common({{"out", "FILE", "profile JSON artifact to write (required)"}}, true, false),
       cmd_gen_profiles},
      {"decide", "run the greedy offloading decision over a profile artifact",
       with_common({{"profiles", "FILE", "stage-2 profile artifact from gen-profiles (required)"},
                    {"out", "FILE", "offload plan JSON to write (required)"},
                    {"tg-seconds", "X", "T_G, the GPU epoch time in seconds (default 14)"}},
                   false, true),
       cmd_decide},
      {"simulate", "simulate training epochs under a plan, faults, prefetch, or --adapt",
       with_common(
           {{"epoch", "N", "epoch index for the single-epoch run (default 0)"},
            {"plan", "FILE", "offload plan from decide (default: no offloading)"},
            {"transient-fail", "P", "per-attempt transient fetch failure probability"},
            {"permanent-fail", "P", "per-sample permanent fetch failure probability"},
            {"corrupt", "P", "per-attempt payload corruption probability"},
            {"fail-offload-only", "0|1", "restrict faults to offloaded fetches (default 1)"},
            {"latency-spike", "P", "per-transfer link latency spike probability"},
            {"bandwidth-dip", "P", "per-transfer link bandwidth dip probability"},
            {"fault-seed", "N", "fault replay seed (default: --seed)"},
            {"retries", "N", "retry budget per failed fetch (default 3)"},
            {"prefetch-depth", "N", "enable prefetch comparison at this depth"},
            {"workers", "N", "loader workers for prefetch/traced replay (default 4)"},
            {"prefetch-budget-mib", "N", "staging-buffer byte budget (0 = unbounded)"},
            {"trace-out", "FILE", "write a Chrome trace of the replayed epoch"},
            {"report", "", "print the epoch stall-attribution report"},
            {"report-out", "FILE", "write the stall report JSON"},
            {"critpath-out", "FILE", "write the critical-path analysis + ranked what-if "
                                     "scenarios JSON (adds a critical-path trace track)"},
            {"adapt", "0|1", "multi-epoch adaptive run (0 = static multi-epoch baseline)"},
            {"epochs", "N", "epochs for the --adapt run (default 10)"},
            {"drift-threshold", "X", "re-plan when drift exceeds this (default 0.2)"},
            {"replan-cooldown", "N", "min epochs between accepted re-plans (default 2)"},
            {"min-improvement", "X", "relative-improvement floor for a re-plan (default 0.05)"},
            {"bw-drop-factor", "X", "divide link bandwidth by this mid-run (default 1)"},
            {"bw-drop-epoch", "N", "epoch at which the bandwidth drop hits (default 0)"},
            {"bw-recover-epoch", "N", "epoch at which the link heals (default 0 = never)"},
            {"telemetry-port", "N", "serve /metrics /healthz /timeseries on 127.0.0.1 (0 = ephemeral)"},
            {"sample-interval", "X", "wall-clock flight-recorder sampling period in seconds"},
            {"postmortem-out", "FILE", "write a postmortem dump on kill or fault exhaustion"},
            {"monitor-self", "", "scrape our own telemetry endpoint at every epoch boundary"},
            {"ledger-out", "FILE", "attribute every link byte to a cause and write the "
                                   "traffic-ledger export (--adapt runs)"},
            {"shard-budget-mib", "N",
             "materialize deterministic prefixes under this disk budget and re-rank "
             "(0 = unlimited)"}},
           true, true),
       cmd_simulate},
      {"evaluate", "compare all offloading policies on one corpus",
       with_common({}, true, true), cmd_evaluate},
      {"calibrate", "fit cost-model coefficients against materialised samples",
       {{"samples", "N", "synthetic calibration corpus size (default 5)"},
        {"repeats", "N", "timing repeats per op (default 3)"},
        {"out", "FILE", "write fitted coefficients JSON"}},
       cmd_calibrate},
      {"ingest", "materialise a synthetic corpus into an on-disk blob store",
       with_common({{"dir", "DIR", "target directory (required)"},
                    {"max-pixels", "N", "cap per-image pixel count (default 1.5e6)"}},
                   true, false),
       cmd_ingest},
      {"pack", "plan a stage materialization and write the packed shard file",
       with_common({{"out", "FILE", "shard file to write (required)"},
                    {"pipeline", "NAME", "standard | validation (default standard)"},
                    {"shard-budget-mib", "N", "disk budget for the shard (0 = unlimited)"},
                    {"tg-seconds", "X", "T_G, the GPU epoch time in seconds (default 14)"},
                    {"max-pixels", "N", "cap per-image pixel count (default 1.5e6)"}},
                   true, true),
       cmd_pack},
      {"inspect-shard", "verify a packed shard's checksums and summarise its contents",
       {{"in", "FILE", "shard file to inspect (required)"}}, cmd_inspect_shard},
      {"trace", "simulate one epoch and export per-sample timeline records",
       with_common({{"plan", "FILE", "offload plan from decide (default: no offloading)"},
                    {"out", "FILE", "write timeline JSON"}},
                   true, true),
       cmd_trace},
      {"whatif", "re-time an epoch under perturbed resources and rank validated scenarios",
       with_common({{"plan", "FILE", "offload plan from decide (default: no offloading)"},
                    {"epoch", "N", "epoch index to analyze (default 0)"},
                    {"replay", "0|1",
                     "worker-level replay discipline instead of the batch-window trainer "
                     "(default 0)"},
                    {"workers", "N", "loader workers for --replay 1 (default 4)"},
                    {"prefetch-depth", "N", "prefetch depth for --replay 1 (default 0)"},
                    {"prefetch-budget-mib", "N",
                     "staging byte budget for --replay 1 (0 = unbounded)"},
                    {"validate", "0|1",
                     "re-run the simulator under each scenario and check the projection "
                     "(default 1)"},
                    {"tolerance", "X", "max relative projection error per scenario (default 0.05)"},
                    {"out", "FILE", "write the what-if report JSON"}},
                   true, true),
       cmd_whatif},
      {"validate-trace", "schema-check a Chrome trace produced by simulate --trace-out",
       {{"in", "FILE", "trace JSON to validate (required)"},
        {"strict", "0|1", "require span coverage and a single time base (default 1)"}},
       cmd_validate_trace},
      {"monitor", "poll a live telemetry endpoint and render per-epoch status lines",
       {{"port", "N", "telemetry port of a simulate --telemetry-port run (required)"},
        {"interval", "X", "seconds between scrapes (default 1)"},
        {"iterations", "N", "stop after this many scrapes (default: until the run ends)"}},
       cmd_monitor},
      {"bench-compare", "compare a bench artifact against a committed baseline",
       {{"baseline", "FILE", "committed BENCH_*.json (required)"},
        {"candidate", "FILE", "freshly produced artifact to check (required)"},
        {"tolerance", "X", "max relative drift per numeric field (default 0.05)"}},
       cmd_bench_compare},
      {"traffic-report", "render a traffic-ledger export: per-cause, per-stage, plan savings",
       {{"in", "FILE", "ledger JSON from simulate --ledger-out (required)"}},
       cmd_traffic_report},
      {"traffic-diff", "compare two traffic-ledger exports, causes ranked by byte delta",
       {{"a", "FILE", "baseline ledger export (required)"},
        {"b", "FILE", "candidate ledger export (required)"},
        {"expect-zero", "", "fail unless the two ledgers are byte-identical"}},
       cmd_traffic_diff},
  };
  return kCommands;
}

const CommandSpec* find_command(const std::string& name) {
  for (const auto& spec : commands()) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

void print_command_help(const CommandSpec& spec, std::FILE* out) {
  std::fprintf(out, "sophonctl %s — %s\n", spec.name, spec.summary);
  for (const auto& flag : spec.flags) {
    const std::string left =
        std::string("--") + flag.name + (flag.arg[0] == '\0' ? "" : std::string(" ") + flag.arg);
    std::fprintf(out, "  %-26s %s\n", left.c_str(), flag.help);
  }
}

int cmd_help(const std::string& topic) {
  if (!topic.empty()) {
    const auto* spec = find_command(topic);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown command '%s'\n", topic.c_str());
      return 2;
    }
    print_command_help(*spec, stdout);
    return 0;
  }
  std::printf("usage: sophonctl <command> [flags]\n\n");
  for (const auto& spec : commands()) {
    print_command_help(spec, stdout);
    std::printf("\n");
  }
  std::printf("run 'sophonctl help <command>' for a single command\n");
  return 0;
}

/// Reject flags the command's spec does not declare — typos fail loudly
/// instead of silently falling back to defaults.
bool validate_flags(const CommandSpec& spec, const Flags& flags) {
  bool ok = true;
  for (const auto& [key, value] : flags.values()) {
    if (key == "help") continue;
    bool known = false;
    for (const auto& flag : spec.flags) {
      if (key == flag.name) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr, "unknown flag --%s for 'sophonctl %s' (see: sophonctl help %s)\n",
                   key.c_str(), spec.name, spec.name);
      ok = false;
    }
  }
  return ok;
}

void usage() {
  std::fprintf(stderr,
               "usage: sophonctl <command> [flags]\n"
               "commands: gen-profiles | decide | simulate | evaluate | ingest | pack | "
               "inspect-shard | calibrate | trace | whatif | validate-trace | monitor | "
               "bench-compare | traffic-report | traffic-diff | help\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    return cmd_help(argc > 2 ? argv[2] : "");
  }
  const auto* spec = find_command(command);
  if (spec == nullptr) {
    usage();
    return 2;
  }
  const Flags flags(argc, argv, 2);
  if (flags.flag("help")) {
    print_command_help(*spec, stdout);
    return 0;
  }
  if (!validate_flags(*spec, flags)) return 2;
  return spec->run(flags);
}
