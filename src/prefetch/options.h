// Configuration for the clairvoyant prefetch subsystem.
//
// The compute node knows the entire future access sequence — the epoch order
// is a seeded shuffle computable before training starts — so a prefetcher
// can walk ahead of the training loop and have each sample's payload staged
// (or at least in flight) by the time a loader worker asks for it. These
// options bound how far ahead it runs: credits in samples (`depth`) and in
// staged bytes (`bytes_budget`) keep the buffer from ballooning, and the
// horizon keeps the scheduler from racing arbitrarily far past consumption.
#pragma once

#include <cstddef>

#include "util/units.h"

namespace sophon::cache {
class LruCache;
}  // namespace sophon::cache

namespace sophon::prefetch {

struct PrefetchOptions {
  /// Maximum samples reserved-or-staged at once. 0 disables prefetching
  /// entirely (pure demand fetching).
  std::size_t depth = 0;

  /// Cap on bytes held in the staging buffer. 0 = unlimited. Enforced
  /// against committed payloads, so one in-flight fetch may overshoot.
  Bytes bytes_budget;

  /// How many epoch positions the scheduler may run ahead of the consumer's
  /// most recent claim. Bounds skip-marker bookkeeping even when admission
  /// rejects long runs of samples. 0 = 8 * depth.
  std::size_t horizon = 0;

  /// Samples whose expected payload is at most this many bytes are fetched
  /// opportunistically (only when a credit is immediately free): their
  /// transfer is too small for look-ahead to hide anything worth the buffer
  /// slot. 0 disables the size-based rule.
  Bytes deprioritize_below = Bytes(4 * 1024);

  /// Treat samples with a nonzero offload directive as deprioritized when
  /// their exact payload size is unknown (the real fetch path has no
  /// catalog): the offload plan ships them as small post-crop tensors.
  bool deprioritize_offloaded = true;

  /// Optional raw-blob LRU on the compute node: samples resident in it are
  /// served locally, so prefetching them would fetch bytes the demand path
  /// never moves. Borrowed; keep it alive while prefetching.
  const cache::LruCache* cache = nullptr;

  [[nodiscard]] std::size_t effective_horizon() const {
    if (horizon > 0) return horizon;
    return depth * 8;
  }
};

}  // namespace sophon::prefetch
