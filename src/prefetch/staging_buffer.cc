#include "prefetch/staging_buffer.h"

#include <algorithm>
#include <utility>

#include "prefetch/metrics.h"

namespace sophon::prefetch {

namespace {

/// The ledger cause for a staged response: shard-served bytes keep their
/// storage-side identity; everything else staged ahead of need is prefetch.
obs::TrafficCause staged_cause(const net::FetchResponse& response) {
  switch (response.provenance) {
    case net::FetchResponse::Provenance::kShard:
      return obs::TrafficCause::kShardHit;
    case net::FetchResponse::Provenance::kShardCorrupt:
      return obs::TrafficCause::kShardCorruptRefetch;
    case net::FetchResponse::Provenance::kLive:
      break;
  }
  return obs::TrafficCause::kPrefetch;
}

}  // namespace

StagingBuffer::StagingBuffer(const PrefetchOptions& options, MetricsRegistry* metrics,
                             obs::TrafficLedger* ledger)
    : options_(options), metrics_(metrics), ledger_(ledger), budget_(options.bytes_budget) {
  if (metrics_ != nullptr) {
    metrics_->gauge(kBufferBudgetBytes).set(static_cast<double>(budget_.count()));
  }
}

bool StagingBuffer::has_credit(Bytes estimated_bytes) const {
  if (occupied_ >= options_.depth) return false;
  if (budget_.count() > 0 && occupied_ > 0 &&
      occupied_bytes_ + estimated_bytes > budget_) {
    // The budget never blocks an empty buffer: one oversized sample must
    // still be prefetchable or the scheduler would wedge on it.
    return false;
  }
  // Horizon: do not run further past the consumer than configured. Before
  // the first claim the consumer is at position 0.
  const std::size_t consumer = claimed_any_ ? max_claimed_ + 1 : 0;
  if (cursor_ > consumer + options_.effective_horizon()) return false;
  return true;
}

void StagingBuffer::update_gauges_locked() {
  if (metrics_ == nullptr) return;
  metrics_->gauge(kBufferDepth).set(static_cast<double>(occupied_));
  metrics_->gauge(kBufferBytes).set(static_cast<double>(occupied_bytes_.count()));
  metrics_->gauge(kBufferHighwaterBytes).set_max(static_cast<double>(occupied_bytes_.count()));
}

StagingBuffer::Reserve StagingBuffer::reserve(std::size_t position, Bytes estimated_bytes,
                                              bool wait) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (shutdown_) return Reserve::kShutdown;
    if (auto it = slots_.find(position);
        it != slots_.end() && it->second.state == State::kConsumedMark) {
      slots_.erase(it);
      return Reserve::kConsumed;
    }
    if (has_credit(estimated_bytes)) break;
    if (!wait) return Reserve::kNoCredit;
    credit_cv_.wait(lock);
  }
  slots_[position] = Slot{State::kInFlight, estimated_bytes, {}, {}};
  ++occupied_;
  occupied_bytes_ += estimated_bytes;
  update_gauges_locked();
  return Reserve::kOk;
}

void StagingBuffer::commit(std::size_t position, net::FetchResponse response) {
  std::lock_guard lock(mutex_);
  auto it = slots_.find(position);
  if (it == slots_.end() || it->second.state != State::kInFlight) {
    // Raced shutdown: the bytes crossed the wire but no consumer can ever
    // claim them — they are waste, recorded directly (not reclassified,
    // since commit never got to record them under a live cause).
    if (ledger_ != nullptr) {
      ledger_->record(response.sample_id, response.stage,
                      obs::TrafficCause::kPrefetchWasted, response.wire_bytes());
    }
    return;
  }
  occupied_bytes_ -= it->second.bytes;
  it->second.bytes = response.wire_bytes();
  occupied_bytes_ += it->second.bytes;
  it->second.cause = staged_cause(response);
  if (ledger_ != nullptr) {
    // Single recording point for prefetch-path wire bytes: the buffer holds
    // the response and knows its provenance; claim keeps this cause, every
    // unclaimed-drop path reclassifies it to prefetch-wasted.
    ledger_->record(response.sample_id, response.stage, it->second.cause,
                    response.wire_bytes());
  }
  it->second.response = std::move(response);
  it->second.ready_at = std::chrono::steady_clock::now();
  it->second.state = State::kReady;
  update_gauges_locked();
  ready_cv_.notify_all();
  // Byte accounting may have shrunk (estimate > payload): a credit may be free.
  credit_cv_.notify_all();
}

void StagingBuffer::fail(std::size_t position) {
  std::lock_guard lock(mutex_);
  auto it = slots_.find(position);
  if (it == slots_.end() || it->second.state != State::kInFlight) return;
  occupied_bytes_ -= it->second.bytes;
  --occupied_;
  it->second.state = State::kFailed;
  it->second.bytes = Bytes(0);
  update_gauges_locked();
  ready_cv_.notify_all();
  credit_cv_.notify_all();
}

std::optional<StagingBuffer::Claimed> StagingBuffer::claim(std::size_t position) {
  std::unique_lock lock(mutex_);
  if (claimed_any_) {
    max_claimed_ = std::max(max_claimed_, position);
  } else {
    max_claimed_ = position;
    claimed_any_ = true;
  }
  credit_cv_.notify_all();  // consumer progress may widen the horizon

  bool waited = false;
  for (;;) {
    if (shutdown_) return std::nullopt;
    auto it = slots_.find(position);
    if (it == slots_.end()) {
      if (position >= cursor_) {
        // The scheduler has not decided this position yet: mark it consumed
        // so it will not be fetched a second time over the wire.
        slots_[position] = Slot{State::kConsumedMark, Bytes(0), {}, {}};
      }
      return std::nullopt;
    }
    switch (it->second.state) {
      case State::kInFlight:
        waited = true;
        ready_cv_.wait(lock);
        continue;
      case State::kReady: {
        Claimed claimed{std::move(it->second.response), waited};
        const auto ready_at = it->second.ready_at;
        occupied_bytes_ -= it->second.bytes;
        --occupied_;
        slots_.erase(it);
        ++hits_;
        if (waited) ++late_hits_;
        if (metrics_ != nullptr) {
          metrics_->counter(kHits).increment();
          if (waited) metrics_->counter(kLate).increment();
          const auto lead = std::chrono::steady_clock::now() - ready_at;
          metrics_->histogram(kLeadSeconds)
              .observe(Seconds(std::max(0.0, std::chrono::duration<double>(lead).count())));
        }
        update_gauges_locked();
        credit_cv_.notify_all();
        return claimed;
      }
      case State::kFailed:
        slots_.erase(it);
        return std::nullopt;
      case State::kConsumedMark:
        // Same worker position claimed twice cannot happen in the loader;
        // treat it as "not staged" without disturbing the mark.
        return std::nullopt;
    }
  }
}

void StagingBuffer::advance_cursor(std::size_t position) {
  std::lock_guard lock(mutex_);
  cursor_ = std::max(cursor_, position);
  // Consumed-marks below the cursor are moot — the scheduler has already
  // decided those positions — so reap them instead of leaking map entries.
  for (auto it = slots_.begin(); it != slots_.end() && it->first < cursor_;) {
    if (it->second.state == State::kConsumedMark) {
      it = slots_.erase(it);
    } else {
      ++it;
    }
  }
}

std::map<std::size_t, StagingBuffer::Slot>::iterator StagingBuffer::evict_ready_locked(
    std::map<std::size_t, Slot>::iterator it, Bytes& evicted) {
  if (ledger_ != nullptr) {
    ledger_->reclassify(it->second.response.sample_id, it->second.response.stage,
                        it->second.cause, obs::TrafficCause::kPrefetchWasted, it->second.bytes);
  }
  evicted += it->second.bytes;
  occupied_bytes_ -= it->second.bytes;
  --occupied_;
  ++cancelled_;
  if (metrics_ != nullptr) metrics_->counter(kCancelled).increment();
  return slots_.erase(it);
}

Bytes StagingBuffer::evict_unclaimed() {
  return evict_unclaimed_if([](std::size_t, const net::FetchResponse&) { return true; });
}

Bytes StagingBuffer::evict_unclaimed_if(
    const std::function<bool(std::size_t, const net::FetchResponse&)>& pred) {
  std::lock_guard lock(mutex_);
  Bytes evicted;
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->second.state == State::kReady && pred(it->first, it->second.response)) {
      it = evict_ready_locked(it, evicted);
    } else {
      ++it;
    }
  }
  if (evicted.count() > 0) {
    update_gauges_locked();
    credit_cv_.notify_all();
  }
  return evicted;
}

Bytes StagingBuffer::shrink_budget(Bytes new_budget) {
  std::lock_guard lock(mutex_);
  budget_ = new_budget;
  if (metrics_ != nullptr) {
    metrics_->gauge(kBufferBudgetBytes).set(static_cast<double>(budget_.count()));
  }
  Bytes evicted;
  if (budget_.count() > 0) {
    // Drop the consumer's furthest-out staged work first: those positions
    // have the most time to be re-fetched on demand without a stall.
    for (auto it = slots_.rbegin();
         occupied_bytes_ > budget_ && it != slots_.rend();) {
      if (it->second.state == State::kReady) {
        auto forward = std::next(it).base();
        forward = evict_ready_locked(forward, evicted);
        it = std::make_reverse_iterator(forward);
      } else {
        ++it;
      }
    }
  }
  update_gauges_locked();
  credit_cv_.notify_all();
  return evicted;
}

Bytes StagingBuffer::budget() const {
  std::lock_guard lock(mutex_);
  return budget_;
}

void StagingBuffer::shutdown() {
  std::lock_guard lock(mutex_);
  if (shutdown_) return;
  shutdown_ = true;
  for (const auto& [position, slot] : slots_) {
    if (slot.state == State::kInFlight || slot.state == State::kReady) ++cancelled_;
    // Ready slots were recorded at commit; dying unclaimed makes their
    // bytes waste. In-flight slots recorded nothing yet — their racing
    // commit() records waste directly.
    if (slot.state == State::kReady && ledger_ != nullptr) {
      ledger_->reclassify(slot.response.sample_id, slot.response.stage, slot.cause,
                          obs::TrafficCause::kPrefetchWasted, slot.bytes);
    }
  }
  if (metrics_ != nullptr && cancelled_ > 0) {
    metrics_->counter(kCancelled).increment(cancelled_);
  }
  slots_.clear();
  occupied_ = 0;
  occupied_bytes_ = Bytes(0);
  update_gauges_locked();
  ready_cv_.notify_all();
  credit_cv_.notify_all();
}

std::uint64_t StagingBuffer::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t StagingBuffer::late_hits() const {
  std::lock_guard lock(mutex_);
  return late_hits_;
}

std::uint64_t StagingBuffer::cancelled() const {
  std::lock_guard lock(mutex_);
  return cancelled_;
}

std::size_t StagingBuffer::staged() const {
  std::lock_guard lock(mutex_);
  return occupied_;
}

Bytes StagingBuffer::staged_bytes() const {
  std::lock_guard lock(mutex_);
  return occupied_bytes_;
}

}  // namespace sophon::prefetch
