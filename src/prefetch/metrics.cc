#include "prefetch/metrics.h"

namespace sophon::prefetch {

void register_prefetch_metrics(MetricsRegistry& registry) {
  for (const char* name : {kIssued, kHits, kLate, kFailed, kCancelled, kSkippedCached,
                           kSkippedDeprioritized, kSkippedConsumed}) {
    (void)registry.counter(name);
  }
  (void)registry.gauge(kBufferDepth);
  (void)registry.gauge(kBufferBytes);
  (void)registry.gauge(kBufferBudgetBytes);
  (void)registry.gauge(kBufferHighwaterBytes);
  (void)registry.histogram(kLeadSeconds);
}

}  // namespace sophon::prefetch
