#include "prefetch/scheduler.h"

#include <utility>

#include "obs/trace.h"
#include "prefetch/admission.h"
#include "prefetch/metrics.h"
#include "util/check.h"

namespace sophon::prefetch {

PrefetchScheduler::PrefetchScheduler(net::StorageService& service, const core::OffloadPlan& plan,
                                     std::vector<std::uint32_t> order, Config config)
    : service_(service),
      plan_(plan),
      order_(std::move(order)),
      config_(config),
      buffer_(config.options, config.metrics, config.ledger) {
  SOPHON_CHECK_MSG(config_.options.depth > 0, "a zero-depth scheduler is just overhead");
  SOPHON_CHECK(plan_.size() == 0 || plan_.size() >= order_.size());
  if (config_.metrics != nullptr) register_prefetch_metrics(*config_.metrics);
}

PrefetchScheduler::~PrefetchScheduler() { shutdown(); }

void PrefetchScheduler::start() {
  SOPHON_CHECK_MSG(!started_, "start() may only be called once");
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void PrefetchScheduler::run() {
  if (obs::global_tracer().enabled()) obs::global_tracer().set_thread_label("prefetcher");
  for (std::size_t position = 0; position < order_.size(); ++position) {
    if (stop_.load(std::memory_order_relaxed)) return;

    const std::uint64_t sample_id = order_[position];
    const std::uint8_t prefix =
        plan_.size() == 0 ? std::uint8_t{0} : plan_.prefix(sample_id);

    const Admission decision = admit(config_.options, sample_id, prefix, std::nullopt);
    if (decision == Admission::kSkip) {
      skipped_cached_.fetch_add(1, std::memory_order_relaxed);
      if (config_.metrics != nullptr) config_.metrics->counter(kSkippedCached).increment();
      buffer_.advance_cursor(position + 1);
      continue;
    }

    // The real path has no catalog, so reservations carry a zero byte
    // estimate; the budget bites once payloads commit.
    const auto reserved =
        buffer_.reserve(position, Bytes(0), /*wait=*/decision == Admission::kPrefetch);
    buffer_.advance_cursor(position + 1);
    switch (reserved) {
      case StagingBuffer::Reserve::kShutdown:
        return;
      case StagingBuffer::Reserve::kConsumed:
        skipped_consumed_.fetch_add(1, std::memory_order_relaxed);
        if (config_.metrics != nullptr) config_.metrics->counter(kSkippedConsumed).increment();
        continue;
      case StagingBuffer::Reserve::kNoCredit:
        skipped_deprioritized_.fetch_add(1, std::memory_order_relaxed);
        if (config_.metrics != nullptr) {
          config_.metrics->counter(kSkippedDeprioritized).increment();
        }
        continue;
      case StagingBuffer::Reserve::kOk:
        break;
    }

    net::FetchRequest request;
    request.sample_id = sample_id;
    request.epoch = config_.epoch;
    request.position = position;
    request.directive.prefix_len = prefix;
    if (prefix > 0) request.directive.compress_quality = config_.compress_quality;
    try {
      auto response = [&] {
        obs::Span span(obs::SpanCategory::kFetch, "prefetch_fetch");
        span.args().sample = static_cast<std::int64_t>(sample_id);
        span.args().position = static_cast<std::int64_t>(position);
        span.args().prefix = static_cast<std::int32_t>(prefix);
        span.args().prefetched = 1;
        auto fetched = service_.fetch(request);
        span.args().bytes = static_cast<std::int64_t>(fetched.wire_bytes().count());
        return fetched;
      }();
      issued_.fetch_add(1, std::memory_order_relaxed);
      if (config_.metrics != nullptr) config_.metrics->counter(kIssued).increment();
      buffer_.commit(position, std::move(response));
    } catch (...) {
      // Any failure — FetchError after retries, malformed reply, whatever —
      // releases the slot; the worker's demand fetch (with its own
      // degradation ladder) is the error handler.
      failed_.fetch_add(1, std::memory_order_relaxed);
      if (config_.metrics != nullptr) config_.metrics->counter(kFailed).increment();
      buffer_.fail(position);
    }
  }
}

std::optional<StagingBuffer::Claimed> PrefetchScheduler::claim(std::size_t position) {
  return buffer_.claim(position);
}

Bytes PrefetchScheduler::invalidate(const core::OffloadPlan& plan) {
  return buffer_.evict_unclaimed_if(
      [&](std::size_t position, const net::FetchResponse& response) {
        const std::uint64_t sample_id = order_[position];
        const std::uint8_t prefix =
            plan.size() == 0 ? std::uint8_t{0} : plan.prefix(sample_id);
        return response.stage != prefix;
      });
}

Bytes PrefetchScheduler::shrink_budget(Bytes new_budget) {
  return buffer_.shrink_budget(new_budget);
}

void PrefetchScheduler::shutdown() {
  stop_.store(true, std::memory_order_relaxed);
  buffer_.shutdown();  // wakes a reserve()-blocked run() and claim()-blocked consumers
  if (thread_.joinable()) thread_.join();
}

PrefetchScheduler::Stats PrefetchScheduler::stats() const {
  Stats stats;
  stats.issued = issued_.load(std::memory_order_relaxed);
  stats.hits = buffer_.hits();
  stats.late_hits = buffer_.late_hits();
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.cancelled = buffer_.cancelled();
  stats.skipped_cached = skipped_cached_.load(std::memory_order_relaxed);
  stats.skipped_deprioritized = skipped_deprioritized_.load(std::memory_order_relaxed);
  stats.skipped_consumed = skipped_consumed_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace sophon::prefetch
