// Bounded staging area between the prefetch scheduler and loader workers.
//
// Flow control is credit-based: the scheduler must reserve() a slot before
// fetching, and a reservation is granted only while (in-flight + ready)
// stays under the depth, staged bytes stay under the budget, and the
// scheduler's lead over the consumer stays inside the horizon. Consumers
// claim() positions in whatever order their workers reach them; a claim on
// an in-flight slot blocks until the fetch commits or fails, a claim on an
// untouched position returns nullopt immediately (demand fallback) and
// leaves a consumed-mark so the scheduler never fetches bytes the demand
// path already moved — the invariant that keeps prefetch traffic identical
// to baseline traffic.
//
// shutdown() (epoch end or loader destruction) cancels everything and wakes
// all waiters; claims after shutdown fall through to the demand path.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>

#include "net/message.h"
#include "obs/ledger.h"
#include "prefetch/options.h"
#include "util/telemetry.h"

namespace sophon::prefetch {

class StagingBuffer {
 public:
  /// `metrics` and `ledger` are optional; when set they must outlive the
  /// buffer. The buffer is the single recording point for prefetch-path
  /// wire bytes: commit() records them (cause mapped from the response's
  /// provenance), and any path that drops a staged-but-unclaimed response
  /// (evict, shrink, shutdown, commit racing shutdown) reclassifies those
  /// bytes to prefetch-wasted so the ledger partition stays exact.
  StagingBuffer(const PrefetchOptions& options, MetricsRegistry* metrics,
                obs::TrafficLedger* ledger = nullptr);

  enum class Reserve {
    kOk,        ///< Slot reserved; caller must commit() or fail() it.
    kConsumed,  ///< A demand fetch already took this position; skip it.
    kNoCredit,  ///< Non-blocking reserve found no free credit.
    kShutdown,  ///< Buffer is shut down; stop scheduling.
  };

  /// Scheduler side. Reserves `position`, accounting `estimated_bytes`
  /// against the budget until commit() replaces the estimate with the real
  /// payload size. With `wait`, blocks until a credit frees up (or
  /// shutdown); without, returns kNoCredit instead of blocking — the
  /// opportunistic mode deprioritized samples use.
  [[nodiscard]] Reserve reserve(std::size_t position, Bytes estimated_bytes, bool wait);

  /// Completes a reservation with the fetched response and wakes any
  /// consumer blocked on it.
  void commit(std::size_t position, net::FetchResponse response);

  /// Abandons a reservation (fetch failed). The consumer's claim() returns
  /// nullopt and the worker demand-fetches — failures stay silent here.
  void fail(std::size_t position);

  struct Claimed {
    net::FetchResponse response;
    bool late = false;  ///< The consumer had to block on an in-flight fetch.
  };

  /// Consumer side. Returns the staged response for `position`, blocking
  /// while it is in flight. Returns nullopt — demand-fetch it yourself —
  /// when the position was never reserved (leaving a consumed-mark if the
  /// scheduler has not passed it yet), when the fetch failed, or after
  /// shutdown.
  [[nodiscard]] std::optional<Claimed> claim(std::size_t position);

  /// Scheduler bookkeeping: positions below the cursor are decided (fetched
  /// or skipped), so claims on them need no consumed-mark. Monotonic.
  void advance_cursor(std::size_t position);

  /// Cancel all slots, wake all waiters, refuse further traffic.
  void shutdown();

  /// Evict every ready-but-unclaimed slot (their bytes become
  /// prefetch-wasted in the ledger). Returns the evicted byte total.
  /// In-flight fetches are left alone — their commit() decides their fate.
  Bytes evict_unclaimed();

  /// Evict the ready slots for which `pred(position, response)` returns
  /// true — the replan hook: a new plan invalidates staged responses whose
  /// stage no longer matches the plan's prefix for that sample.
  Bytes evict_unclaimed_if(
      const std::function<bool(std::size_t, const net::FetchResponse&)>& pred);

  /// Tighten (or relax) the byte budget mid-epoch. When the new budget is
  /// below current occupancy, ready slots are evicted highest-position-first
  /// (the ones the consumer needs last) until occupancy fits. Returns the
  /// evicted byte total.
  Bytes shrink_budget(Bytes new_budget);

  /// The currently effective byte budget (options_.bytes_budget until
  /// shrink_budget changes it).
  [[nodiscard]] Bytes budget() const;

  // Introspection (tests, scheduler stats).
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t late_hits() const;
  [[nodiscard]] std::uint64_t cancelled() const;
  [[nodiscard]] std::size_t staged() const;
  [[nodiscard]] Bytes staged_bytes() const;

 private:
  enum class State { kInFlight, kReady, kFailed, kConsumedMark };

  struct Slot {
    State state = State::kInFlight;
    Bytes bytes;  // estimate while in flight, real payload size once ready
    net::FetchResponse response;
    std::chrono::steady_clock::time_point ready_at;  // set by commit()
    /// Ledger cause the bytes were recorded under at commit() (kReady only).
    obs::TrafficCause cause = obs::TrafficCause::kPrefetch;
  };

  // All helpers below require `mutex_` held.
  [[nodiscard]] bool has_credit(Bytes estimated_bytes) const;
  void update_gauges_locked();
  /// Evict one ready slot: reclassify its bytes to prefetch-wasted, count
  /// it cancelled, release its credit. Returns the next iterator.
  std::map<std::size_t, Slot>::iterator evict_ready_locked(
      std::map<std::size_t, Slot>::iterator it, Bytes& evicted);

  const PrefetchOptions options_;
  MetricsRegistry* metrics_;
  obs::TrafficLedger* ledger_;
  Bytes budget_;  // effective byte budget; starts at options_.bytes_budget

  mutable std::mutex mutex_;
  std::condition_variable credit_cv_;  // scheduler waits for a free credit
  std::condition_variable ready_cv_;   // consumers wait on in-flight slots
  std::map<std::size_t, Slot> slots_;
  std::size_t occupied_ = 0;      // in-flight + ready slots (credits in use)
  Bytes occupied_bytes_;          // their byte accounting
  std::size_t cursor_ = 0;        // first position the scheduler has not decided
  std::size_t max_claimed_ = 0;   // consumer progress, for the horizon bound
  bool claimed_any_ = false;
  bool shutdown_ = false;
  std::uint64_t hits_ = 0;
  std::uint64_t late_hits_ = 0;
  std::uint64_t cancelled_ = 0;
};

}  // namespace sophon::prefetch
