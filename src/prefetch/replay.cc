#include "prefetch/replay.h"

#include <algorithm>
#include <map>
#include <vector>

#include "dataset/sampler.h"
#include "net/link.h"
#include "obs/trace.h"
#include "prefetch/admission.h"
#include "sim/resources.h"
#include "util/check.h"

namespace sophon::prefetch {

namespace {

/// A prefetched fetch that has arrived (or will) but is not yet consumed.
struct StagedFetch {
  Seconds issue;
  Seconds storage_done;
  Seconds arrival;
  Bytes wire;
};

}  // namespace

ReplayResult replay_epoch(std::size_t num_samples,
                          const std::function<sim::SampleFlow(std::size_t)>& flow,
                          const sim::ClusterConfig& cluster, Seconds gpu_batch_time,
                          std::uint64_t seed, std::size_t epoch_index,
                          const ReplayOptions& options, const sim::TraceSink& trace) {
  SOPHON_CHECK(num_samples > 0);
  SOPHON_CHECK(options.workers >= 1);
  SOPHON_CHECK(cluster.compute_cores > 0);
  SOPHON_CHECK(cluster.batch_size > 0);

  const auto order = dataset::EpochOrder(num_samples, seed, epoch_index).order();
  const std::size_t depth = options.prefetch.depth;
  const Bytes budget = options.prefetch.bytes_budget;

  net::SimLink link(cluster.bandwidth, cluster.link_latency);
  link.set_fault_injector(cluster.link_faults);
  link.set_track_inflight(true);
  sim::CpuPool storage_pool(cluster.storage_cores, cluster.storage_core_speed);
  sim::CpuPool compute_pool(cluster.compute_cores);
  sim::GpuResource gpu;

  const auto is_local = [&](std::uint64_t id) {
    return options.served_locally && options.served_locally(id);
  };

  ReplayStats stats;

  // --- Scheduler state -----------------------------------------------------
  // Prefetched fetches are issued in position order and (because workers
  // consume positions in order) consumed in the same order, so slot and
  // byte credits release FIFO: the j-th issue may start once the (j-depth)-th
  // prefetched sample was consumed and, under a bytes budget, once enough
  // staged bytes were handed to workers.
  std::size_t sched_pos = 0;           // first position the scheduler has not decided
  std::size_t issued_count = 0;        // prefetched fetches issued so far
  std::size_t consumed_count = 0;      // prefetched fetches consumed so far
  Bytes outstanding_bytes;             // issued-but-not-consumed payload bytes
  double issued_bytes_cum = 0.0;
  double consumed_bytes_cum = 0.0;
  Seconds last_issue;
  std::vector<Seconds> consume_times;  // per prefetched fetch, in issue order
  // (time, cumulative consumed bytes) after each prefetched consumption.
  std::vector<std::pair<Seconds, double>> consume_events;
  std::size_t bytes_release_ptr = 0;
  std::map<std::size_t, StagedFetch> staged;

  const auto advance_scheduler = [&]() {
    if (depth == 0) return;
    while (sched_pos < num_samples) {
      const std::uint64_t id = order[sched_pos];
      if (is_local(id)) {
        ++sched_pos;  // a cache hit moves no bytes; prefetching it would
        continue;
      }
      const sim::SampleFlow f = flow(id);
      if (admit(options.prefetch, id, 0, f.wire) != Admission::kPrefetch) {
        ++stats.skipped_deprioritized;
        ++sched_pos;
        continue;
      }
      const std::size_t outstanding = issued_count - consumed_count;
      if (outstanding >= depth) break;
      if (budget.count() > 0 && outstanding > 0 && outstanding_bytes + f.wire > budget) break;

      Seconds release;
      if (issued_count >= depth) release = consume_times[issued_count - depth];
      if (budget.count() > 0) {
        // The byte credit for this fetch freed when cumulative consumption
        // first covered (all bytes issued including this one) - budget.
        const double required =
            issued_bytes_cum + static_cast<double>(f.wire.count()) -
            static_cast<double>(budget.count());
        while (bytes_release_ptr < consume_events.size() &&
               consume_events[bytes_release_ptr].second < required) {
          ++bytes_release_ptr;
        }
        if (required > 0.0 && bytes_release_ptr < consume_events.size()) {
          release = std::max(release, consume_events[bytes_release_ptr].first);
        }
      }
      const Seconds issue = std::max(last_issue, release) + f.delay;
      last_issue = issue;
      const Seconds at_storage = issue + cluster.link_latency;  // request propagation
      const Seconds storage_done =
          (f.storage_cpu.value() > 0.0 && storage_pool.can_schedule())
              ? storage_pool.schedule(at_storage, f.storage_cpu)
              : at_storage;
      const Seconds arrival = link.schedule(storage_done, f.wire);
      staged.emplace(sched_pos, StagedFetch{issue, storage_done, arrival, f.wire});
      ++issued_count;
      ++stats.issued;
      issued_bytes_cum += static_cast<double>(f.wire.count());
      outstanding_bytes += f.wire;
      ++sched_pos;
    }
  };

  // --- Consumption: W synchronous workers in position order ----------------
  std::vector<Seconds> worker_free(options.workers);
  sim::EpochStats epoch;
  Seconds batch_ready;
  Seconds epoch_end;

  for (std::size_t position = 0; position < num_samples; ++position) {
    advance_scheduler();

    const auto worker =
        std::min_element(worker_free.begin(), worker_free.end()) - worker_free.begin();
    const Seconds t0 = worker_free[static_cast<std::size_t>(worker)];
    const std::uint64_t id = order[position];

    sim::SampleTimeline row;
    row.sample_index = static_cast<std::uint32_t>(id);
    row.position = position;
    row.worker = static_cast<std::int32_t>(worker);
    row.claimed = t0;

    Seconds done;
    if (is_local(id)) {
      const sim::SampleFlow f = flow(id);
      done = compute_pool.schedule(t0, f.compute_cpu);
      ++stats.served_locally;
      row.issued = t0;
      row.storage_done = t0;
      row.link_done = t0;
    } else if (const auto it = staged.find(position); it != staged.end()) {
      const StagedFetch fetch = it->second;
      staged.erase(it);
      const Seconds start = std::max(t0, fetch.arrival);
      if (fetch.arrival <= t0) {
        ++stats.hits;
      } else {
        ++stats.hits;
        ++stats.late_hits;
        stats.worker_stall += fetch.arrival - t0;
      }
      const sim::SampleFlow f = flow(id);
      done = compute_pool.schedule(start, f.compute_cpu);
      ++consumed_count;
      consume_times.push_back(start);
      outstanding_bytes -= fetch.wire;
      consumed_bytes_cum += static_cast<double>(fetch.wire.count());
      consume_events.emplace_back(start, consumed_bytes_cum);
      if (f.storage_cpu.value() > 0.0) ++epoch.offloaded_samples;
      row.issued = fetch.issue;
      row.storage_done = fetch.storage_done;
      row.link_done = fetch.arrival;
      row.wire = fetch.wire;
      row.prefetched = true;
    } else {
      // Demand fetch: the worker runs the whole round trip synchronously.
      sched_pos = std::max(sched_pos, position + 1);  // consumed-mark semantics
      const sim::SampleFlow f = flow(id);
      const Seconds issue = t0 + f.delay;
      const Seconds at_storage = issue + cluster.link_latency;
      const Seconds storage_done =
          (f.storage_cpu.value() > 0.0 && storage_pool.can_schedule())
              ? storage_pool.schedule(at_storage, f.storage_cpu)
              : at_storage;
      const Seconds arrival = link.schedule(storage_done, f.wire);
      stats.worker_stall += arrival - t0;
      done = compute_pool.schedule(arrival, f.compute_cpu);
      ++stats.demand_fetches;
      if (f.storage_cpu.value() > 0.0) ++epoch.offloaded_samples;
      row.issued = issue;
      row.storage_done = storage_done;
      row.link_done = arrival;
      row.wire = f.wire;
    }
    worker_free[static_cast<std::size_t>(worker)] = done;
    row.ready = done;
    if (trace) trace(row);

    batch_ready = std::max(batch_ready, done);
    if ((position + 1) % cluster.batch_size == 0 || position + 1 == num_samples) {
      const Seconds gpu_start = std::max(batch_ready, gpu.free_at());
      epoch_end = gpu.schedule(batch_ready, gpu_batch_time);
      if (obs::global_tracer().enabled()) {
        obs::SpanArgs args;
        args.position = static_cast<std::int64_t>(position);
        obs::global_tracer().record_at(obs::global_tracer().track("gpu"), obs::SpanCategory::kGpu,
                                       "gpu_batch", gpu_start, epoch_end, args);
      }
      batch_ready = Seconds(0.0);
      ++epoch.batches;
    }
  }

  epoch.epoch_time = epoch_end;
  epoch.traffic = link.traffic();
  epoch.gpu_busy = gpu.busy_time();
  epoch.gpu_utilization =
      epoch.epoch_time.value() > 0.0 ? epoch.gpu_busy / epoch.epoch_time : 0.0;
  epoch.storage_cpu_busy = storage_pool.busy_time();
  epoch.compute_cpu_busy = compute_pool.busy_time();
  epoch.samples = num_samples;
  stats.max_inflight = link.max_inflight();
  return ReplayResult{epoch, stats};
}

}  // namespace sophon::prefetch
