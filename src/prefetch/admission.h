// Admission policy: which upcoming samples are worth a prefetch credit.
//
// Prefetch and cache must cooperate, not compete (the CoorDL rule): a sample
// resident in the compute-node LRU costs zero wire bytes on demand, so
// prefetching it would *add* traffic the baseline never pays — those are
// skipped outright. Samples the offload plan ships as tiny post-crop
// tensors, and samples whose known payload is below a threshold, transfer
// too quickly for look-ahead to hide anything: they are deprioritized,
// fetched only when a buffer credit is free anyway.
#pragma once

#include <cstdint>
#include <optional>

#include "prefetch/options.h"
#include "util/units.h"

namespace sophon::prefetch {

enum class Admission {
  kPrefetch,      ///< Worth a credit: reserve (blocking) and fetch ahead.
  kDeprioritize,  ///< Fetch only opportunistically (non-blocking reserve).
  kSkip,          ///< Do not prefetch at all (would inflate traffic).
};

/// Decide for one sample. `expected_wire` is the exact payload size when the
/// caller knows it (the DES replay does); the real fetch path passes
/// std::nullopt and falls back to the directive-based heuristic.
[[nodiscard]] Admission admit(const PrefetchOptions& options, std::uint64_t sample_id,
                              std::uint8_t prefix_len, std::optional<Bytes> expected_wire);

}  // namespace sophon::prefetch
