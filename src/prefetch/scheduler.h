// Clairvoyant prefetch scheduler for the real fetch path.
//
// One background thread walks the epoch's shuffled order — fully known in
// advance, it is a seeded Fisher–Yates permutation — ahead of the loader
// workers, runs each upcoming sample through the admission policy, and
// issues the exact FetchRequest a demand worker would have sent. Completed
// responses land in a StagingBuffer the workers claim from; anything the
// scheduler skipped, failed on, or has not reached yet is fetched on demand
// by the worker, so prefetching can change *when* bytes move but never
// *whether* they move, and a dead prefetcher degrades to the status quo
// rather than a stalled epoch.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/plan.h"
#include "net/rpc.h"
#include "prefetch/options.h"
#include "prefetch/staging_buffer.h"
#include "util/telemetry.h"

namespace sophon::prefetch {

class PrefetchScheduler {
 public:
  struct Config {
    PrefetchOptions options;
    // No seed here on purpose: the scheduler never shuffles — it walks the
    // `order` vector handed to the constructor, which the caller derived
    // from its own (seed, epoch).
    std::uint64_t epoch = 0;
    std::uint8_t compress_quality = 0;  // applied to offloaded fetches, as in the loader
    MetricsRegistry* metrics = nullptr;
    /// Optional traffic ledger; staged bytes are recorded at commit and
    /// reclassified to prefetch-wasted when dropped unclaimed.
    obs::TrafficLedger* ledger = nullptr;
  };

  /// Borrows service/plan/order; keep them alive until shutdown() returns.
  /// `order` is the epoch's visit order (order[position] = sample id) and
  /// must be the same permutation the consumer walks.
  PrefetchScheduler(net::StorageService& service, const core::OffloadPlan& plan,
                    std::vector<std::uint32_t> order, Config config);

  ~PrefetchScheduler();

  PrefetchScheduler(const PrefetchScheduler&) = delete;
  PrefetchScheduler& operator=(const PrefetchScheduler&) = delete;

  /// Spawn the scheduler thread. Call exactly once.
  void start();

  /// Consumer entry point: the staged response for `position`, or nullopt
  /// when the caller should demand-fetch it (skipped, failed, not reached,
  /// or shut down). Blocks only while the position is actively in flight.
  [[nodiscard]] std::optional<StagingBuffer::Claimed> claim(std::size_t position);

  /// Stop scheduling, cancel staged slots, wake all claim()-blocked
  /// consumers, join the thread. Idempotent; called by the destructor.
  void shutdown();

  /// Replan hook: evict staged-but-unclaimed responses whose stage no
  /// longer matches `plan`'s prefix for their sample — their bytes become
  /// prefetch-wasted and the worker demand-fetches under the new plan.
  /// Returns the evicted byte total.
  Bytes invalidate(const core::OffloadPlan& plan);

  /// Tighten the staging byte budget mid-epoch (see StagingBuffer).
  Bytes shrink_budget(Bytes new_budget);

  struct Stats {
    std::uint64_t issued = 0;
    std::uint64_t hits = 0;
    std::uint64_t late_hits = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t skipped_cached = 0;
    std::uint64_t skipped_deprioritized = 0;
    std::uint64_t skipped_consumed = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  void run();

  net::StorageService& service_;
  const core::OffloadPlan& plan_;
  std::vector<std::uint32_t> order_;
  Config config_;
  StagingBuffer buffer_;

  std::thread thread_;
  bool started_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> issued_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> skipped_cached_{0};
  std::atomic<std::uint64_t> skipped_deprioritized_{0};
  std::atomic<std::uint64_t> skipped_consumed_{0};
};

}  // namespace sophon::prefetch
