// Telemetry surface of the prefetch subsystem.
//
// Every metric the scheduler and staging buffer touch is declared here and
// pre-registered by register_prefetch_metrics(), so a scrape taken before
// (or without) any prefetch activity still lists the full set at zero —
// dashboards and alert rules can be written against names that are
// guaranteed to exist. Same convention as the loader's degradation counters.
#pragma once

#include "util/telemetry.h"

namespace sophon::prefetch {

// Counters.
inline constexpr const char* kIssued = "sophon_prefetch_issued";
inline constexpr const char* kHits = "sophon_prefetch_hits";
inline constexpr const char* kLate = "sophon_prefetch_late";
inline constexpr const char* kFailed = "sophon_prefetch_failed";
inline constexpr const char* kCancelled = "sophon_prefetch_cancelled";
inline constexpr const char* kSkippedCached = "sophon_prefetch_skipped_cached";
inline constexpr const char* kSkippedDeprioritized = "sophon_prefetch_skipped_deprioritized";
inline constexpr const char* kSkippedConsumed = "sophon_prefetch_skipped_consumed";

// Gauges.
inline constexpr const char* kBufferDepth = "sophon_prefetch_buffer_depth";
inline constexpr const char* kBufferBytes = "sophon_prefetch_buffer_bytes";
inline constexpr const char* kBufferBudgetBytes = "sophon_prefetch_buffer_budget_bytes";
inline constexpr const char* kBufferHighwaterBytes = "sophon_prefetch_buffer_highwater_bytes";

// Histograms.
inline constexpr const char* kLeadSeconds = "sophon_prefetch_lead_seconds";

/// Instantiate every prefetch metric in `registry` at its zero value.
void register_prefetch_metrics(MetricsRegistry& registry);

}  // namespace sophon::prefetch
