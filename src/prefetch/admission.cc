#include "prefetch/admission.h"

#include "cache/lru.h"

namespace sophon::prefetch {

Admission admit(const PrefetchOptions& options, std::uint64_t sample_id, std::uint8_t prefix_len,
                std::optional<Bytes> expected_wire) {
  if (options.cache != nullptr && options.cache->contains(sample_id)) {
    return Admission::kSkip;
  }
  if (expected_wire.has_value()) {
    if (options.deprioritize_below.count() > 0 && *expected_wire <= options.deprioritize_below) {
      return Admission::kDeprioritize;
    }
    return Admission::kPrefetch;
  }
  // No size knowledge (real fetch path): an offloaded sample arrives as a
  // post-crop tensor, typically orders of magnitude smaller than the blob.
  if (options.deprioritize_offloaded && prefix_len > 0) {
    return Admission::kDeprioritize;
  }
  return Admission::kPrefetch;
}

}  // namespace sophon::prefetch
