// Discrete-event replay of an epoch under clairvoyant prefetching.
//
// The existing sim::simulate_epoch_flows models a loader that admits work
// by batch window; for studying prefetch we need the sharper contrast the
// real loader exhibits: W worker threads, each running one synchronous
// fetch round trip (request latency → storage CPU → FIFO link → response
// latency) before it can preprocess — so link latency serializes behind
// compute on every sample. The prefetch replay keeps the same resources
// (CpuPool, SimLink, GpuResource, identical SampleFlow costs) and only
// changes who issues the fetch: a scheduler walking the known epoch order,
// bounded by the same depth/bytes credits the real StagingBuffer enforces.
// Depth 0 reproduces the pure demand loader, so one entry point yields both
// sides of every comparison — same flows, same link, byte-identical
// traffic.
#pragma once

#include <cstdint>
#include <functional>

#include "prefetch/options.h"
#include "sim/cluster.h"
#include "sim/trace.h"
#include "sim/trainer.h"

namespace sophon::prefetch {

struct ReplayOptions {
  PrefetchOptions prefetch;  // depth 0 = demand baseline
  /// Loader worker threads on the compute node (each holds at most one
  /// sample: fetch, then preprocess).
  std::size_t workers = 4;
  /// Optional: sample ids served from compute-local storage (cache hits) —
  /// no wire bytes, no storage CPU, never prefetched.
  std::function<bool(std::uint64_t)> served_locally;
};

/// What the prefetch side of the replay did.
struct ReplayStats {
  std::uint64_t issued = 0;        // fetches the scheduler pipelined
  std::uint64_t hits = 0;          // staged before the worker needed them
  std::uint64_t late_hits = 0;     // worker blocked on an in-flight fetch
  std::uint64_t demand_fetches = 0;  // fetched by workers (skipped/depth 0)
  std::uint64_t served_locally = 0;  // cache hits, no fetch at all
  std::uint64_t skipped_deprioritized = 0;
  Seconds worker_stall;            // total time workers waited on arrivals
  std::uint64_t max_inflight = 0;  // peak concurrent transfers on the link
};

struct ReplayResult {
  sim::EpochStats epoch;
  ReplayStats prefetch;
};

/// Replay one epoch. `flow(i)` gives catalog sample i's resource demands
/// (same contract as simulate_epoch_flows, composes with sim::faulty_flow);
/// the visit order is the seeded shuffle for (seed, epoch_index), identical
/// to the loader's and the trainer's.
[[nodiscard]] ReplayResult replay_epoch(std::size_t num_samples,
                                        const std::function<sim::SampleFlow(std::size_t)>& flow,
                                        const sim::ClusterConfig& cluster,
                                        Seconds gpu_batch_time, std::uint64_t seed,
                                        std::size_t epoch_index, const ReplayOptions& options,
                                        const sim::TraceSink& trace = {});

}  // namespace sophon::prefetch
