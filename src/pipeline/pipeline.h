// An ordered preprocessing pipeline with partial (stage-bounded) execution —
// the mechanism that makes *selective* offloading possible: the storage node
// runs ops [0, k), the compute node runs ops [k, n).
#pragma once

#include <memory>
#include <vector>

#include "obs/trace.h"
#include "pipeline/op.h"

namespace sophon::pipeline {

/// A pipeline "stage" s means "after s ops have been applied"; stage 0 is
/// the raw encoded sample, stage size() is fully preprocessed.
class Pipeline {
 public:
  Pipeline() = default;
  explicit Pipeline(std::vector<std::unique_ptr<PreprocessOp>> ops);

  /// The paper's five-op image-classification pipeline:
  /// Decode → RandomResizedCrop(target) → RandomHorizontalFlip → ToTensor →
  /// Normalize(ImageNet stats).
  static Pipeline standard(int target_size = 224);

  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  [[nodiscard]] const PreprocessOp& op(std::size_t index) const;

  /// Execute ops [from_stage, to_stage) on a real payload.
  [[nodiscard]] SampleData run(SampleData sample, std::size_t from_stage, std::size_t to_stage,
                               Rng& rng) const;

  /// Execute the whole pipeline.
  [[nodiscard]] SampleData run_all(SampleData sample, Rng& rng) const;

  /// Execute ops [from_stage, to_stage) with per-op RNG streams derived from
  /// `stream_seed`. Because each op gets its own stream (keyed by op index),
  /// the result is identical no matter where the pipeline is cut — the
  /// property that lets the storage node run a prefix and the compute node
  /// the suffix while preserving the exact augmentations of local execution.
  /// Each op records a span of `span_category` when tracing is enabled; the
  /// storage node passes kStoragePrep so prefix work is attributed to it.
  [[nodiscard]] SampleData run_seeded(
      SampleData sample, std::size_t from_stage, std::size_t to_stage, std::uint64_t stream_seed,
      obs::SpanCategory span_category = obs::SpanCategory::kPreprocess) const;

  /// Analytic shape after `stage` ops, given the raw shape.
  [[nodiscard]] SampleShape shape_at(const SampleShape& raw, std::size_t stage) const;

  /// Analytic single-core cost of op `index` given the raw shape.
  [[nodiscard]] Seconds op_cost(const SampleShape& raw, std::size_t index,
                                const CostModel& model) const;

  /// Analytic cost of ops [0, k) — what the storage node pays to deliver the
  /// sample at stage k.
  [[nodiscard]] Seconds prefix_cost(const SampleShape& raw, std::size_t k,
                                    const CostModel& model) const;

  /// Analytic cost of ops [k, size()) — what the compute node pays to finish
  /// a sample received at stage k.
  [[nodiscard]] Seconds suffix_cost(const SampleShape& raw, std::size_t k,
                                    const CostModel& model) const;

  /// Per-stage wire size and per-op cost for one sample: entry s has the
  /// size at stage s and the cost of the op that produced it (stage 0 cost
  /// is zero). This is exactly the stage-2 profiler's record.
  struct StagePoint {
    Bytes size;
    Seconds op_cost;
  };
  [[nodiscard]] std::vector<StagePoint> analytic_trace(const SampleShape& raw,
                                                       const CostModel& model) const;

  /// Earliest stage at which the sample's wire size is minimal — the optimal
  /// offload cut point for that sample (earliest minimiser spends the least
  /// storage CPU for the same traffic).
  [[nodiscard]] std::size_t min_size_stage(const SampleShape& raw) const;

  /// Length of the longest prefix made only of deterministic ops — the
  /// deepest stage at which a sample may be persisted across epochs. Beyond
  /// it, ops draw per-(epoch, sample) augmentation streams, so a cached
  /// result from one epoch would be wrong for every other (paper §3.3).
  [[nodiscard]] std::size_t deterministic_prefix() const;

 private:
  std::vector<std::unique_ptr<PreprocessOp>> ops_;
};

}  // namespace sophon::pipeline
