// A training sample as it moves through the preprocessing pipeline.
//
// A sample exists in one of three physical representations — compressed blob,
// decoded uint8 image, float tensor — and the whole point of SOPHON is that
// the *byte size* of those representations differs wildly. `SampleShape`
// carries the metadata needed to reason about sizes/costs without touching
// pixels (the parametric catalog and the simulator work purely on shapes).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "image/image.h"
#include "image/tensor.h"
#include "util/units.h"

namespace sophon::pipeline {

/// An encoded (SJPG) payload, the representation a sample has at rest in the
/// storage cluster.
struct EncodedBlob {
  std::vector<std::uint8_t> bytes;

  [[nodiscard]] Bytes byte_size() const {
    return Bytes(static_cast<std::int64_t>(bytes.size()));
  }
};

/// The physical payload of a sample at some pipeline stage.
using SampleData = std::variant<EncodedBlob, image::Image, image::Tensor>;

/// Wire/rest cost of a representation.
[[nodiscard]] Bytes sample_byte_size(const SampleData& data);

/// Representation kind, for dispatch and wire tagging.
enum class Repr : std::uint8_t { kEncoded = 0, kImage = 1, kTensor = 2 };

[[nodiscard]] Repr sample_repr(const SampleData& data);

/// Size-and-shape metadata for a sample at a pipeline stage — everything the
/// analytic path (cost model, decision engine, simulator) needs. For
/// kEncoded, `bytes` is the blob size; for kImage/kTensor it is derived from
/// the dimensions.
struct SampleShape {
  Repr repr = Repr::kEncoded;
  int width = 0;
  int height = 0;
  int channels = 3;
  Bytes bytes;  // authoritative for kEncoded; derived otherwise

  [[nodiscard]] std::int64_t pixel_count() const {
    return static_cast<std::int64_t>(width) * height;
  }

  /// Wire size of this shape: blob bytes, w*h*c for images, 4*w*h*c for
  /// tensors.
  [[nodiscard]] Bytes byte_size() const;

  /// Shape of a raw encoded sample with known source dimensions.
  static SampleShape encoded(Bytes blob_size, int width, int height, int channels = 3);

  friend bool operator==(const SampleShape& a, const SampleShape& b) = default;
};

/// Extract the shape of a materialised sample (used to cross-validate the
/// analytic path against real execution).
[[nodiscard]] SampleShape shape_of(const SampleData& data);

}  // namespace sophon::pipeline
