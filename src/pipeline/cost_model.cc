#include "pipeline/cost_model.h"

#include "util/check.h"

namespace sophon::pipeline {

Seconds CostModel::decode_cost(const SampleShape& in) const {
  SOPHON_CHECK(in.repr == Repr::kEncoded);
  SOPHON_CHECK_MSG(in.width > 0 && in.height > 0, "decode cost needs source dimensions");
  const double ns = coeffs_.decode_ns_per_byte * in.bytes.as_double() +
                    coeffs_.decode_ns_per_pixel * static_cast<double>(in.pixel_count());
  return Seconds::nanos(ns) + overhead();
}

Seconds CostModel::resized_crop_cost(const SampleShape& in, int target_size) const {
  SOPHON_CHECK(in.repr == Repr::kImage);
  SOPHON_CHECK(target_size > 0);
  const double src_read =
      coeffs_.crop_ns_per_src_pixel * static_cast<double>(in.pixel_count()) *
      coeffs_.expected_crop_area_fraction;
  const double out_write = coeffs_.resize_ns_per_out_pixel *
                           static_cast<double>(target_size) * target_size;
  return Seconds::nanos(src_read + out_write) + overhead();
}

Seconds CostModel::flip_cost(const SampleShape& in) const {
  SOPHON_CHECK(in.repr == Repr::kImage);
  return Seconds::nanos(coeffs_.flip_ns_per_pixel * static_cast<double>(in.pixel_count()) *
                        in.channels) +
         overhead();
}

Seconds CostModel::to_tensor_cost(const SampleShape& in) const {
  SOPHON_CHECK(in.repr == Repr::kImage);
  return Seconds::nanos(coeffs_.to_tensor_ns_per_element *
                        static_cast<double>(in.pixel_count()) * in.channels) +
         overhead();
}

Seconds CostModel::normalize_cost(const SampleShape& in) const {
  SOPHON_CHECK(in.repr == Repr::kTensor);
  return Seconds::nanos(coeffs_.normalize_ns_per_element *
                        static_cast<double>(in.pixel_count()) * in.channels) +
         overhead();
}

}  // namespace sophon::pipeline
