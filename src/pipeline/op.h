// The preprocessing operator abstraction.
//
// Each op supports two evaluation paths:
//   * `apply`     — real execution on a materialised sample (pixels move),
//   * `out_shape`/`cost` — analytic evaluation on a SampleShape, used by the
//     profiler, decision engine and simulator so that 40 000-sample datasets
//     can be reasoned about without decoding 40 000 images.
// Tests cross-validate the two paths on materialised data.
#pragma once

#include <array>
#include <memory>
#include <string_view>

#include "image/ops.h"
#include "pipeline/cost_model.h"
#include "pipeline/sample.h"
#include "util/rng.h"
#include "util/units.h"

namespace sophon::pipeline {

/// The five operators of the paper's image-classification pipeline, in
/// pipeline order.
enum class OpKind : std::uint8_t {
  kDecode = 0,
  kRandomResizedCrop = 1,
  kRandomHorizontalFlip = 2,
  kToTensor = 3,
  kNormalize = 4,
};

[[nodiscard]] std::string_view op_kind_name(OpKind kind);

/// A single preprocessing operator. Stateless once constructed; randomness
/// comes from the caller-provided Rng so augmentation is reproducible.
class PreprocessOp {
 public:
  virtual ~PreprocessOp() = default;

  [[nodiscard]] virtual OpKind kind() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Execute on a real payload. Precondition: the input representation must
  /// match this op's expected input (enforced with SOPHON_CHECK).
  [[nodiscard]] virtual SampleData apply(SampleData in, Rng& rng) const = 0;

  /// Shape transform without execution.
  [[nodiscard]] virtual SampleShape out_shape(const SampleShape& in) const = 0;

  /// Single-core cost of this op on an input of shape `in`.
  [[nodiscard]] virtual Seconds cost(const SampleShape& in, const CostModel& model) const = 0;

  /// True if the op draws random augmentation parameters — the reason
  /// preprocessed data cannot simply be cached across epochs (paper §3.3).
  [[nodiscard]] virtual bool is_random() const { return false; }
};

/// Factory helpers for the standard operators.
std::unique_ptr<PreprocessOp> make_decode_op();
std::unique_ptr<PreprocessOp> make_random_resized_crop_op(int target_size);
std::unique_ptr<PreprocessOp> make_random_horizontal_flip_op(double probability = 0.5);
std::unique_ptr<PreprocessOp> make_to_tensor_op();
std::unique_ptr<PreprocessOp> make_normalize_op(std::array<float, 3> mean = image::kImagenetMean,
                                                std::array<float, 3> stddev = image::kImagenetStd);

}  // namespace sophon::pipeline
