// Additional preprocessing operators beyond the paper's five.
//
// Real torchvision pipelines mix in more transforms; these give the library
// enough vocabulary to express the common image-classification variants:
//   * Resize(shorter_side)   — deterministic aspect-preserving resize,
//   * CenterCrop(size)       — deterministic central crop,
//   * ColorJitter(b, c)      — random brightness/contrast perturbation.
// Together with the core ops they build the standard *validation* pipeline
// (Resize(256) → CenterCrop(224) → ToTensor → Normalize), which has no
// random stages — the case where preprocess-once reuse is actually safe.
#pragma once

#include <memory>

#include "pipeline/op.h"
#include "pipeline/pipeline.h"

namespace sophon::pipeline {

/// Aspect-preserving resize so the shorter side equals `shorter_side`.
std::unique_ptr<PreprocessOp> make_resize_shorter_op(int shorter_side);

/// Deterministic central crop to size x size (clamped to the image).
std::unique_ptr<PreprocessOp> make_center_crop_op(int size);

/// Random brightness/contrast jitter: brightness factor drawn from
/// [1-b, 1+b], contrast factor from [1-c, 1+c]. Size-neutral.
std::unique_ptr<PreprocessOp> make_color_jitter_op(double brightness = 0.4,
                                                   double contrast = 0.4);

/// Random rotation by an angle uniform in [-max_degrees, +max_degrees],
/// bilinear resampling, edge pixels replicated outside the source.
/// Size-neutral (same canvas).
std::unique_ptr<PreprocessOp> make_random_rotation_op(double max_degrees = 15.0);

/// The torchvision validation pipeline:
/// Decode → Resize(resize_to) → CenterCrop(crop_to) → ToTensor → Normalize.
/// Fully deterministic (no random ops).
[[nodiscard]] Pipeline validation_pipeline(int resize_to = 256, int crop_to = 224);

/// A heavier augmentation pipeline:
/// Decode → RandomResizedCrop(target) → ColorJitter → RandomHorizontalFlip →
/// ToTensor → Normalize.
[[nodiscard]] Pipeline augmented_pipeline(int target_size = 224);

}  // namespace sophon::pipeline
