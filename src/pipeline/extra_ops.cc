#include "pipeline/extra_ops.h"

#include <algorithm>
#include <cmath>

#include "image/ops.h"
#include "util/check.h"

namespace sophon::pipeline {

namespace {

/// Scaled output dimensions for a shorter-side resize.
std::pair<int, int> resize_shorter_dims(int w, int h, int shorter_side) {
  if (w <= h) {
    const int out_h = std::max(
        1, static_cast<int>(std::lround(static_cast<double>(h) * shorter_side / w)));
    return {shorter_side, out_h};
  }
  const int out_w = std::max(
      1, static_cast<int>(std::lround(static_cast<double>(w) * shorter_side / h)));
  return {out_w, shorter_side};
}

class ResizeShorterOp final : public PreprocessOp {
 public:
  explicit ResizeShorterOp(int shorter_side) : shorter_side_(shorter_side) {
    SOPHON_CHECK(shorter_side > 0);
  }

  [[nodiscard]] OpKind kind() const override { return OpKind::kRandomResizedCrop; }
  [[nodiscard]] std::string_view name() const override { return "Resize"; }

  [[nodiscard]] SampleData apply(SampleData in, Rng& /*rng*/) const override {
    const auto* img = std::get_if<image::Image>(&in);
    SOPHON_CHECK_MSG(img != nullptr, "Resize expects a decoded image");
    const auto [w, h] = resize_shorter_dims(img->width(), img->height(), shorter_side_);
    return SampleData(image::resize_bilinear(*img, w, h));
  }

  [[nodiscard]] SampleShape out_shape(const SampleShape& in) const override {
    SOPHON_CHECK(in.repr == Repr::kImage);
    const auto [w, h] = resize_shorter_dims(in.width, in.height, shorter_side_);
    SampleShape out = in;
    out.width = w;
    out.height = h;
    out.bytes = out.byte_size();
    return out;
  }

  [[nodiscard]] Seconds cost(const SampleShape& in, const CostModel& model) const override {
    const auto& coeffs = model.coefficients();
    const auto out = out_shape(in);
    // Reads the whole source, writes the scaled output.
    return Seconds::nanos(coeffs.crop_ns_per_src_pixel * static_cast<double>(in.pixel_count()) +
                          coeffs.resize_ns_per_out_pixel *
                              static_cast<double>(out.pixel_count())) +
           Seconds::nanos(coeffs.per_op_overhead_ns);
  }

 private:
  int shorter_side_;
};

class CenterCropOp final : public PreprocessOp {
 public:
  explicit CenterCropOp(int size) : size_(size) { SOPHON_CHECK(size > 0); }

  [[nodiscard]] OpKind kind() const override { return OpKind::kRandomResizedCrop; }
  [[nodiscard]] std::string_view name() const override { return "CenterCrop"; }

  [[nodiscard]] SampleData apply(SampleData in, Rng& /*rng*/) const override {
    const auto* img = std::get_if<image::Image>(&in);
    SOPHON_CHECK_MSG(img != nullptr, "CenterCrop expects a decoded image");
    const int w = std::min(size_, img->width());
    const int h = std::min(size_, img->height());
    return SampleData(
        image::crop(*img, {(img->width() - w) / 2, (img->height() - h) / 2, w, h}));
  }

  [[nodiscard]] SampleShape out_shape(const SampleShape& in) const override {
    SOPHON_CHECK(in.repr == Repr::kImage);
    SampleShape out = in;
    out.width = std::min(size_, in.width);
    out.height = std::min(size_, in.height);
    out.bytes = out.byte_size();
    return out;
  }

  [[nodiscard]] Seconds cost(const SampleShape& in, const CostModel& model) const override {
    const auto& coeffs = model.coefficients();
    const auto out = out_shape(in);
    return Seconds::nanos(coeffs.crop_ns_per_src_pixel *
                          static_cast<double>(out.pixel_count()) * in.channels) +
           Seconds::nanos(coeffs.per_op_overhead_ns);
  }

 private:
  int size_;
};

class ColorJitterOp final : public PreprocessOp {
 public:
  ColorJitterOp(double brightness, double contrast)
      : brightness_(brightness), contrast_(contrast) {
    SOPHON_CHECK(brightness >= 0.0 && brightness < 1.0);
    SOPHON_CHECK(contrast >= 0.0 && contrast < 1.0);
  }

  [[nodiscard]] OpKind kind() const override { return OpKind::kRandomHorizontalFlip; }
  [[nodiscard]] std::string_view name() const override { return "ColorJitter"; }
  [[nodiscard]] bool is_random() const override { return true; }

  [[nodiscard]] SampleData apply(SampleData in, Rng& rng) const override {
    auto* img = std::get_if<image::Image>(&in);
    SOPHON_CHECK_MSG(img != nullptr, "ColorJitter expects a decoded image");
    const double b = rng.uniform(1.0 - brightness_, 1.0 + brightness_);
    const double c = rng.uniform(1.0 - contrast_, 1.0 + contrast_);
    // x -> (x - 128) * contrast + 128, then * brightness — clamped.
    for (auto& px : img->data()) {
      const double centered = (static_cast<double>(px) - 128.0) * c + 128.0;
      px = static_cast<std::uint8_t>(std::clamp(centered * b, 0.0, 255.0));
    }
    return in;
  }

  [[nodiscard]] SampleShape out_shape(const SampleShape& in) const override {
    SOPHON_CHECK(in.repr == Repr::kImage);
    return in;
  }

  [[nodiscard]] Seconds cost(const SampleShape& in, const CostModel& model) const override {
    const auto& coeffs = model.coefficients();
    // Two multiply-adds per channel sample — comparable to normalize.
    return Seconds::nanos(coeffs.normalize_ns_per_element *
                          static_cast<double>(in.pixel_count()) * in.channels) +
           Seconds::nanos(coeffs.per_op_overhead_ns);
  }

 private:
  double brightness_;
  double contrast_;
};

class RandomRotationOp final : public PreprocessOp {
 public:
  explicit RandomRotationOp(double max_degrees) : max_degrees_(max_degrees) {
    SOPHON_CHECK(max_degrees >= 0.0 && max_degrees <= 180.0);
  }

  [[nodiscard]] OpKind kind() const override { return OpKind::kRandomHorizontalFlip; }
  [[nodiscard]] std::string_view name() const override { return "RandomRotation"; }
  [[nodiscard]] bool is_random() const override { return true; }

  [[nodiscard]] SampleData apply(SampleData in, Rng& rng) const override {
    const auto* img = std::get_if<image::Image>(&in);
    SOPHON_CHECK_MSG(img != nullptr, "RandomRotation expects a decoded image");
    const double degrees = rng.uniform(-max_degrees_, max_degrees_);
    const double theta = degrees * 3.14159265358979323846 / 180.0;
    const double cos_t = std::cos(theta);
    const double sin_t = std::sin(theta);
    const double cx = (img->width() - 1) / 2.0;
    const double cy = (img->height() - 1) / 2.0;

    image::Image out(img->width(), img->height(), img->channels());
    for (int y = 0; y < img->height(); ++y) {
      for (int x = 0; x < img->width(); ++x) {
        // Inverse-map the output pixel into the source.
        const double dx = x - cx;
        const double dy = y - cy;
        const double sx = cx + dx * cos_t + dy * sin_t;
        const double sy = cy - dx * sin_t + dy * cos_t;
        const int x0 = std::clamp(static_cast<int>(std::floor(sx)), 0, img->width() - 1);
        const int y0 = std::clamp(static_cast<int>(std::floor(sy)), 0, img->height() - 1);
        const int x1 = std::min(x0 + 1, img->width() - 1);
        const int y1 = std::min(y0 + 1, img->height() - 1);
        const double wx = std::clamp(sx - x0, 0.0, 1.0);
        const double wy = std::clamp(sy - y0, 0.0, 1.0);
        for (int c = 0; c < img->channels(); ++c) {
          const double top = img->at(x0, y0, c) * (1.0 - wx) + img->at(x1, y0, c) * wx;
          const double bot = img->at(x0, y1, c) * (1.0 - wx) + img->at(x1, y1, c) * wx;
          out.set(x, y, c,
                  static_cast<std::uint8_t>(std::clamp(top * (1.0 - wy) + bot * wy + 0.5, 0.0,
                                                       255.0)));
        }
      }
    }
    return SampleData(std::move(out));
  }

  [[nodiscard]] SampleShape out_shape(const SampleShape& in) const override {
    SOPHON_CHECK(in.repr == Repr::kImage);
    return in;
  }

  [[nodiscard]] Seconds cost(const SampleShape& in, const CostModel& model) const override {
    const auto& coeffs = model.coefficients();
    // Bilinear gather per output pixel — same order of work as a resize.
    return Seconds::nanos(coeffs.resize_ns_per_out_pixel *
                          static_cast<double>(in.pixel_count())) +
           Seconds::nanos(coeffs.per_op_overhead_ns);
  }

 private:
  double max_degrees_;
};

}  // namespace

std::unique_ptr<PreprocessOp> make_random_rotation_op(double max_degrees) {
  return std::make_unique<RandomRotationOp>(max_degrees);
}

std::unique_ptr<PreprocessOp> make_resize_shorter_op(int shorter_side) {
  return std::make_unique<ResizeShorterOp>(shorter_side);
}

std::unique_ptr<PreprocessOp> make_center_crop_op(int size) {
  return std::make_unique<CenterCropOp>(size);
}

std::unique_ptr<PreprocessOp> make_color_jitter_op(double brightness, double contrast) {
  return std::make_unique<ColorJitterOp>(brightness, contrast);
}

Pipeline validation_pipeline(int resize_to, int crop_to) {
  SOPHON_CHECK(resize_to >= crop_to);
  std::vector<std::unique_ptr<PreprocessOp>> ops;
  ops.push_back(make_decode_op());
  ops.push_back(make_resize_shorter_op(resize_to));
  ops.push_back(make_center_crop_op(crop_to));
  ops.push_back(make_to_tensor_op());
  ops.push_back(make_normalize_op());
  return Pipeline(std::move(ops));
}

Pipeline augmented_pipeline(int target_size) {
  std::vector<std::unique_ptr<PreprocessOp>> ops;
  ops.push_back(make_decode_op());
  ops.push_back(make_random_resized_crop_op(target_size));
  ops.push_back(make_color_jitter_op());
  ops.push_back(make_random_horizontal_flip_op());
  ops.push_back(make_to_tensor_op());
  ops.push_back(make_normalize_op());
  return Pipeline(std::move(ops));
}

}  // namespace sophon::pipeline
