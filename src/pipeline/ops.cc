#include <array>

#include "codec/sjpg.h"
#include "image/ops.h"
#include "pipeline/op.h"
#include "util/check.h"

namespace sophon::pipeline {

std::string_view op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kDecode:
      return "Decode";
    case OpKind::kRandomResizedCrop:
      return "RandomResizedCrop";
    case OpKind::kRandomHorizontalFlip:
      return "RandomHorizontalFlip";
    case OpKind::kToTensor:
      return "ToTensor";
    case OpKind::kNormalize:
      return "Normalize";
  }
  return "Unknown";
}

namespace {

class DecodeOp final : public PreprocessOp {
 public:
  [[nodiscard]] OpKind kind() const override { return OpKind::kDecode; }
  [[nodiscard]] std::string_view name() const override { return op_kind_name(kind()); }

  [[nodiscard]] SampleData apply(SampleData in, Rng& /*rng*/) const override {
    const auto* blob = std::get_if<EncodedBlob>(&in);
    SOPHON_CHECK_MSG(blob != nullptr, "Decode expects an encoded blob");
    auto decoded = codec::sjpg_decode(blob->bytes);
    SOPHON_CHECK_MSG(decoded.has_value(), "corrupt SJPG payload");
    return SampleData(std::move(*decoded));
  }

  [[nodiscard]] SampleShape out_shape(const SampleShape& in) const override {
    SOPHON_CHECK(in.repr == Repr::kEncoded);
    SampleShape out = in;
    out.repr = Repr::kImage;
    out.bytes = out.byte_size();
    return out;
  }

  [[nodiscard]] Seconds cost(const SampleShape& in, const CostModel& model) const override {
    return model.decode_cost(in);
  }
};

class RandomResizedCropOp final : public PreprocessOp {
 public:
  explicit RandomResizedCropOp(int target_size) : target_size_(target_size) {
    SOPHON_CHECK(target_size > 0);
  }

  [[nodiscard]] OpKind kind() const override { return OpKind::kRandomResizedCrop; }
  [[nodiscard]] std::string_view name() const override { return op_kind_name(kind()); }
  [[nodiscard]] bool is_random() const override { return true; }

  [[nodiscard]] SampleData apply(SampleData in, Rng& rng) const override {
    const auto* img = std::get_if<image::Image>(&in);
    SOPHON_CHECK_MSG(img != nullptr, "RandomResizedCrop expects a decoded image");
    const auto rect = image::sample_resized_crop_rect(img->width(), img->height(), rng);
    return SampleData(image::resized_crop(*img, rect, target_size_));
  }

  [[nodiscard]] SampleShape out_shape(const SampleShape& in) const override {
    SOPHON_CHECK(in.repr == Repr::kImage);
    SampleShape out = in;
    out.width = target_size_;
    out.height = target_size_;
    out.bytes = out.byte_size();
    return out;
  }

  [[nodiscard]] Seconds cost(const SampleShape& in, const CostModel& model) const override {
    return model.resized_crop_cost(in, target_size_);
  }

 private:
  int target_size_;
};

class RandomHorizontalFlipOp final : public PreprocessOp {
 public:
  explicit RandomHorizontalFlipOp(double probability) : probability_(probability) {
    SOPHON_CHECK(probability >= 0.0 && probability <= 1.0);
  }

  [[nodiscard]] OpKind kind() const override { return OpKind::kRandomHorizontalFlip; }
  [[nodiscard]] std::string_view name() const override { return op_kind_name(kind()); }
  [[nodiscard]] bool is_random() const override { return true; }

  [[nodiscard]] SampleData apply(SampleData in, Rng& rng) const override {
    const auto* img = std::get_if<image::Image>(&in);
    SOPHON_CHECK_MSG(img != nullptr, "RandomHorizontalFlip expects a decoded image");
    if (!rng.bernoulli(probability_)) return in;
    return SampleData(image::horizontal_flip(*img));
  }

  [[nodiscard]] SampleShape out_shape(const SampleShape& in) const override {
    SOPHON_CHECK(in.repr == Repr::kImage);
    return in;
  }

  [[nodiscard]] Seconds cost(const SampleShape& in, const CostModel& model) const override {
    return model.flip_cost(in);
  }

 private:
  double probability_;
};

class ToTensorOp final : public PreprocessOp {
 public:
  [[nodiscard]] OpKind kind() const override { return OpKind::kToTensor; }
  [[nodiscard]] std::string_view name() const override { return op_kind_name(kind()); }

  [[nodiscard]] SampleData apply(SampleData in, Rng& /*rng*/) const override {
    const auto* img = std::get_if<image::Image>(&in);
    SOPHON_CHECK_MSG(img != nullptr, "ToTensor expects a decoded image");
    return SampleData(image::to_tensor(*img));
  }

  [[nodiscard]] SampleShape out_shape(const SampleShape& in) const override {
    SOPHON_CHECK(in.repr == Repr::kImage);
    SampleShape out = in;
    out.repr = Repr::kTensor;
    out.bytes = out.byte_size();
    return out;
  }

  [[nodiscard]] Seconds cost(const SampleShape& in, const CostModel& model) const override {
    return model.to_tensor_cost(in);
  }
};

class NormalizeOp final : public PreprocessOp {
 public:
  NormalizeOp(std::array<float, 3> mean, std::array<float, 3> stddev)
      : mean_(mean), stddev_(stddev) {}

  [[nodiscard]] OpKind kind() const override { return OpKind::kNormalize; }
  [[nodiscard]] std::string_view name() const override { return op_kind_name(kind()); }

  [[nodiscard]] SampleData apply(SampleData in, Rng& /*rng*/) const override {
    auto* tensor = std::get_if<image::Tensor>(&in);
    SOPHON_CHECK_MSG(tensor != nullptr, "Normalize expects a tensor");
    image::normalize(*tensor, mean_, stddev_);
    return in;
  }

  [[nodiscard]] SampleShape out_shape(const SampleShape& in) const override {
    SOPHON_CHECK(in.repr == Repr::kTensor);
    return in;
  }

  [[nodiscard]] Seconds cost(const SampleShape& in, const CostModel& model) const override {
    return model.normalize_cost(in);
  }

 private:
  std::array<float, 3> mean_;
  std::array<float, 3> stddev_;
};

}  // namespace

std::unique_ptr<PreprocessOp> make_decode_op() {
  return std::make_unique<DecodeOp>();
}

std::unique_ptr<PreprocessOp> make_random_resized_crop_op(int target_size) {
  return std::make_unique<RandomResizedCropOp>(target_size);
}

std::unique_ptr<PreprocessOp> make_random_horizontal_flip_op(double probability) {
  return std::make_unique<RandomHorizontalFlipOp>(probability);
}

std::unique_ptr<PreprocessOp> make_to_tensor_op() {
  return std::make_unique<ToTensorOp>();
}

std::unique_ptr<PreprocessOp> make_normalize_op(std::array<float, 3> mean,
                                                std::array<float, 3> stddev) {
  return std::make_unique<NormalizeOp>(mean, stddev);
}

}  // namespace sophon::pipeline
