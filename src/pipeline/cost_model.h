// Deterministic single-core CPU cost model for preprocessing operations.
//
// The paper profiles wall-clock preprocessing time per op per sample. A
// wall-clock-driven reproduction would be machine- and load-dependent, so we
// model each op's cost as an affine function of the work it touches
// (encoded bytes, pixels read, pixels produced) with coefficients calibrated
// to the magnitudes the paper reports (a ~0.5 MB JPEG decodes in tens of
// milliseconds on one Xeon core; the 0→1 storage-core transition in Fig 4
// saves ~22 s). Every policy is evaluated against the *same* model, so
// relative results — who wins, where crossovers fall — are preserved.
#pragma once

#include "pipeline/sample.h"
#include "util/units.h"

namespace sophon::pipeline {

/// Per-op coefficients, all in nanoseconds per unit of work.
struct CostCoefficients {
  // Decode: entropy decoding scales with compressed bytes, reconstruction
  // with output pixels. (A ~2 MP, ~300 KB JPEG decodes in ~11 ms with these
  // coefficients — SIMD-tuned libjpeg-turbo territory, which keeps the
  // Resize-Off vs No-Off crossover of Fig 4 at a small core count as the
  // paper reports.)
  double decode_ns_per_byte = 7.0;
  double decode_ns_per_pixel = 4.0;
  // RandomResizedCrop: the crop reads a region of the source (expected
  // fraction of the source area under torchvision's scale=[0.08,1.0] is
  // ~0.54), the bilinear resample writes the target.
  double crop_ns_per_src_pixel = 2.0;
  double resize_ns_per_out_pixel = 40.0;
  double expected_crop_area_fraction = 0.54;
  // Cheap elementwise passes over the target-size data.
  double flip_ns_per_pixel = 2.0;
  double to_tensor_ns_per_element = 4.0;
  double normalize_ns_per_element = 3.0;
  // Fixed per-op dispatch overhead (Python-layer cost in the original).
  double per_op_overhead_ns = 30000.0;
};

/// Evaluates op costs from sample shapes. Value type; cheap to copy.
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostCoefficients coeffs) : coeffs_(coeffs) {}

  [[nodiscard]] const CostCoefficients& coefficients() const { return coeffs_; }

  /// Single-core cost of decoding `in` (must be kEncoded with known dims).
  [[nodiscard]] Seconds decode_cost(const SampleShape& in) const;

  /// Single-core cost of RandomResizedCrop from `in` (kImage) to a
  /// target_size x target_size output, using the expected crop area.
  [[nodiscard]] Seconds resized_crop_cost(const SampleShape& in, int target_size) const;

  /// Single-core cost of a horizontal flip over `in` (kImage).
  [[nodiscard]] Seconds flip_cost(const SampleShape& in) const;

  /// Single-core cost of uint8→float conversion over `in` (kImage).
  [[nodiscard]] Seconds to_tensor_cost(const SampleShape& in) const;

  /// Single-core cost of normalisation over `in` (kTensor).
  [[nodiscard]] Seconds normalize_cost(const SampleShape& in) const;

 private:
  [[nodiscard]] Seconds overhead() const {
    return Seconds::nanos(coeffs_.per_op_overhead_ns);
  }

  CostCoefficients coeffs_;
};

}  // namespace sophon::pipeline
