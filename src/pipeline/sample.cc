#include "pipeline/sample.h"

#include "util/check.h"

namespace sophon::pipeline {

Bytes sample_byte_size(const SampleData& data) {
  return std::visit([](const auto& payload) { return payload.byte_size(); }, data);
}

Repr sample_repr(const SampleData& data) {
  if (std::holds_alternative<EncodedBlob>(data)) return Repr::kEncoded;
  if (std::holds_alternative<image::Image>(data)) return Repr::kImage;
  return Repr::kTensor;
}

Bytes SampleShape::byte_size() const {
  switch (repr) {
    case Repr::kEncoded:
      return bytes;
    case Repr::kImage:
      return Bytes(pixel_count() * channels);
    case Repr::kTensor:
      return Bytes(pixel_count() * channels * static_cast<std::int64_t>(sizeof(float)));
  }
  SOPHON_CHECK_MSG(false, "unreachable");
  return Bytes(0);
}

SampleShape SampleShape::encoded(Bytes blob_size, int width, int height, int channels) {
  SOPHON_CHECK(blob_size.count() > 0);
  SOPHON_CHECK(width > 0 && height > 0);
  SOPHON_CHECK(channels == 1 || channels == 3);
  SampleShape s;
  s.repr = Repr::kEncoded;
  s.width = width;
  s.height = height;
  s.channels = channels;
  s.bytes = blob_size;
  return s;
}

SampleShape shape_of(const SampleData& data) {
  SampleShape s;
  if (const auto* blob = std::get_if<EncodedBlob>(&data)) {
    s.repr = Repr::kEncoded;
    s.bytes = blob->byte_size();
    // Encoded dims require peeking the codec header; callers that need them
    // use the catalog metadata instead. Width/height stay 0 here.
    s.width = 0;
    s.height = 0;
    s.channels = 3;
    return s;
  }
  if (const auto* img = std::get_if<image::Image>(&data)) {
    s.repr = Repr::kImage;
    s.width = img->width();
    s.height = img->height();
    s.channels = img->channels();
    s.bytes = img->byte_size();
    return s;
  }
  const auto& t = std::get<image::Tensor>(data);
  s.repr = Repr::kTensor;
  s.width = t.width();
  s.height = t.height();
  s.channels = t.channels();
  s.bytes = t.byte_size();
  return s;
}

}  // namespace sophon::pipeline
