#include "pipeline/pipeline.h"

#include "util/check.h"

namespace sophon::pipeline {

Pipeline::Pipeline(std::vector<std::unique_ptr<PreprocessOp>> ops) : ops_(std::move(ops)) {
  for (const auto& op : ops_) SOPHON_CHECK(op != nullptr);
}

Pipeline Pipeline::standard(int target_size) {
  std::vector<std::unique_ptr<PreprocessOp>> ops;
  ops.push_back(make_decode_op());
  ops.push_back(make_random_resized_crop_op(target_size));
  ops.push_back(make_random_horizontal_flip_op());
  ops.push_back(make_to_tensor_op());
  ops.push_back(make_normalize_op());
  return Pipeline(std::move(ops));
}

const PreprocessOp& Pipeline::op(std::size_t index) const {
  SOPHON_CHECK(index < ops_.size());
  return *ops_[index];
}

SampleData Pipeline::run(SampleData sample, std::size_t from_stage, std::size_t to_stage,
                         Rng& rng) const {
  SOPHON_CHECK(from_stage <= to_stage && to_stage <= ops_.size());
  for (std::size_t i = from_stage; i < to_stage; ++i) {
    obs::Span span(obs::SpanCategory::kPreprocess, ops_[i]->name());
    sample = ops_[i]->apply(std::move(sample), rng);
  }
  return sample;
}

SampleData Pipeline::run_all(SampleData sample, Rng& rng) const {
  return run(std::move(sample), 0, ops_.size(), rng);
}

SampleData Pipeline::run_seeded(SampleData sample, std::size_t from_stage, std::size_t to_stage,
                                std::uint64_t stream_seed,
                                obs::SpanCategory span_category) const {
  SOPHON_CHECK(from_stage <= to_stage && to_stage <= ops_.size());
  for (std::size_t i = from_stage; i < to_stage; ++i) {
    obs::Span span(span_category, ops_[i]->name());
    Rng op_rng(derive_seed(stream_seed, static_cast<std::uint64_t>(i)));
    sample = ops_[i]->apply(std::move(sample), op_rng);
  }
  return sample;
}

SampleShape Pipeline::shape_at(const SampleShape& raw, std::size_t stage) const {
  SOPHON_CHECK(stage <= ops_.size());
  SampleShape shape = raw;
  for (std::size_t i = 0; i < stage; ++i) shape = ops_[i]->out_shape(shape);
  return shape;
}

Seconds Pipeline::op_cost(const SampleShape& raw, std::size_t index,
                          const CostModel& model) const {
  SOPHON_CHECK(index < ops_.size());
  return ops_[index]->cost(shape_at(raw, index), model);
}

Seconds Pipeline::prefix_cost(const SampleShape& raw, std::size_t k,
                              const CostModel& model) const {
  SOPHON_CHECK(k <= ops_.size());
  Seconds total;
  SampleShape shape = raw;
  for (std::size_t i = 0; i < k; ++i) {
    total += ops_[i]->cost(shape, model);
    shape = ops_[i]->out_shape(shape);
  }
  return total;
}

Seconds Pipeline::suffix_cost(const SampleShape& raw, std::size_t k,
                              const CostModel& model) const {
  SOPHON_CHECK(k <= ops_.size());
  Seconds total;
  SampleShape shape = shape_at(raw, k);
  for (std::size_t i = k; i < ops_.size(); ++i) {
    total += ops_[i]->cost(shape, model);
    shape = ops_[i]->out_shape(shape);
  }
  return total;
}

std::vector<Pipeline::StagePoint> Pipeline::analytic_trace(const SampleShape& raw,
                                                           const CostModel& model) const {
  std::vector<StagePoint> trace;
  trace.reserve(ops_.size() + 1);
  SampleShape shape = raw;
  trace.push_back({shape.byte_size(), Seconds(0.0)});
  for (const auto& op : ops_) {
    const Seconds cost = op->cost(shape, model);
    shape = op->out_shape(shape);
    trace.push_back({shape.byte_size(), cost});
  }
  return trace;
}

std::size_t Pipeline::min_size_stage(const SampleShape& raw) const {
  SampleShape shape = raw;
  Bytes best = shape.byte_size();
  std::size_t best_stage = 0;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    shape = ops_[i]->out_shape(shape);
    if (shape.byte_size() < best) {
      best = shape.byte_size();
      best_stage = i + 1;
    }
  }
  return best_stage;
}

std::size_t Pipeline::deterministic_prefix() const {
  std::size_t prefix = 0;
  while (prefix < ops_.size() && !ops_[prefix]->is_random()) ++prefix;
  return prefix;
}

}  // namespace sophon::pipeline
