#include "obs/critpath/critpath.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "dataset/sampler.h"
#include "net/fault.h"
#include "prefetch/admission.h"
#include "util/check.h"

namespace sophon::obs::critpath {

std::string_view resource_name(Resource resource) {
  switch (resource) {
    case Resource::kStart:
      return "start";
    case Resource::kStorageCpu:
      return "storage-cpu";
    case Resource::kLink:
      return "link";
    case Resource::kComputeCpu:
      return "compute-cpu";
    case Resource::kGpu:
      return "gpu";
    case Resource::kDelay:
      return "delay";
  }
  return "unknown";
}

Seconds BlameVector::of(Resource resource) const {
  switch (resource) {
    case Resource::kStorageCpu:
      return storage_cpu;
    case Resource::kLink:
      return link;
    case Resource::kComputeCpu:
      return compute_cpu;
    case Resource::kGpu:
      return gpu;
    case Resource::kDelay:
      return delay;
    case Resource::kStart:
      break;
  }
  return Seconds(0.0);
}

Seconds& BlameVector::slot(Resource resource) {
  switch (resource) {
    case Resource::kStorageCpu:
      return storage_cpu;
    case Resource::kLink:
      return link;
    case Resource::kComputeCpu:
      return compute_cpu;
    case Resource::kGpu:
      return gpu;
    case Resource::kDelay:
    case Resource::kStart:
      break;
  }
  return delay;
}

Resource BlameVector::dominant() const {
  const Seconds top = std::max({link, gpu, storage_cpu, compute_cpu, delay});
  if (top == link) return Resource::kLink;
  if (top == gpu) return Resource::kGpu;
  if (top == storage_cpu) return Resource::kStorageCpu;
  if (top == compute_cpu) return Resource::kComputeCpu;
  return Resource::kDelay;
}

namespace {

/// One event of the re-timed schedule. `parent` is the predecessor event
/// that determined this one's time — the argmax of the scheduling max() —
/// so following parents from the epoch's last event walks the critical path.
struct Node {
  double time = 0.0;
  std::int32_t parent = -1;
  Resource via = Resource::kStart;
  std::int64_t sample = -1;
  std::int64_t position = -1;
};

/// A timestamped event with provenance: the value the simulator passes
/// around as a plain Seconds, plus the node that produced it.
struct Ref {
  double time = 0.0;
  std::int32_t node = 0;
};

/// Tie-break matches std::max(a, b): keep `a` unless `b` is strictly later.
Ref later(Ref a, Ref b) { return b.time > a.time ? b : a; }

class Dag {
 public:
  Dag() { nodes_.push_back(Node{}); }

  [[nodiscard]] Ref root() const { return Ref{}; }

  Ref add(double time, Ref parent, Resource via, std::int64_t sample, std::int64_t position) {
    nodes_.push_back(Node{time, parent.node, via, sample, position});
    return Ref{time, static_cast<std::int32_t>(nodes_.size() - 1)};
  }

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }

 private:
  std::vector<Node> nodes_;
};

/// sim::CpuPool with provenance. The pool pops the min of a value heap; the
/// linear first-min scan here lands on the same *value* (equal free times
/// are interchangeable for timing), so every schedule() returns the same
/// completion time as the original.
class CpuRetimer {
 public:
  CpuRetimer(int cores, double speed_factor)
      : speed_factor_(speed_factor), free_(static_cast<std::size_t>(std::max(cores, 0))) {}

  [[nodiscard]] bool can_schedule() const { return !free_.empty(); }

  Ref schedule(Ref ready, Seconds duration, Dag& dag, Resource via, std::int64_t sample,
               std::int64_t position) {
    std::size_t core = 0;
    for (std::size_t i = 1; i < free_.size(); ++i) {
      if (free_[i].time < free_[core].time) core = i;
    }
    const double scaled = duration.value() / speed_factor_;
    const Ref start = later(ready, free_[core]);
    const Ref done = dag.add(start.time + scaled, start, via, sample, position);
    free_[core] = done;
    return done;
  }

 private:
  double speed_factor_;
  std::vector<Ref> free_;
};

/// net::SimLink with provenance: a FIFO transmit chain plus a propagation
/// hop, both charged to the link. Consults the fault injector in the same
/// per-transfer order as the simulator so degraded transfers re-time
/// identically.
class LinkRetimer {
 public:
  LinkRetimer(Bandwidth bandwidth, Seconds latency, const net::FaultInjector* faults)
      : bandwidth_(bandwidth), latency_(latency.value()), faults_(faults) {}

  Ref schedule(Ref ready, Bytes size, Dag& dag, std::int64_t sample, std::int64_t position) {
    const Ref start = later(ready, free_);
    double duration = bandwidth_.transfer_time(size).value();
    double extra_latency = 0.0;
    if (faults_ != nullptr) {
      const net::LinkFault fault = faults_->link_fault(transfer_index_++);
      duration = duration * fault.bandwidth_factor;
      extra_latency = fault.extra_latency.value();
    }
    const Ref transmitted =
        dag.add(start.time + duration, start, Resource::kLink, sample, position);
    free_ = transmitted;
    // Mirror SimLink::schedule's addition order exactly (free_at + latency +
    // extra) so the float result is bit-identical.
    const double arrival = transmitted.time + latency_ + extra_latency;
    if (arrival == transmitted.time) return transmitted;
    return dag.add(arrival, transmitted, Resource::kLink, sample, position);
  }

 private:
  Bandwidth bandwidth_;
  double latency_;
  const net::FaultInjector* faults_;
  std::uint64_t transfer_index_ = 0;
  Ref free_;
};

/// sim::GpuResource with provenance: a FIFO batch-service chain.
class GpuRetimer {
 public:
  Ref schedule(Ref ready, Seconds batch_time, Dag& dag, std::int64_t position) {
    const Ref start = later(ready, free_);
    free_ = dag.add(start.time + batch_time.value(), start, Resource::kGpu, -1, position);
    return free_;
  }

 private:
  Ref free_;
};

/// Injected delay occupies no resource; it is its own edge kind so retry
/// backoff shows up in the blame vector instead of vanishing into whatever
/// resource runs next.
Ref apply_delay(Ref ready, Seconds delay, Dag& dag, std::int64_t sample, std::int64_t position) {
  if (delay.value() <= 0.0) return ready;
  return dag.add(ready.time + delay.value(), ready, Resource::kDelay, sample, position);
}

/// Mirror of sim::simulate_epoch_flows (trainer.cc): batch-window admission,
/// storage pool -> FIFO link -> compute pool per sample, GPU chain per batch.
Ref retime_batch_window(const DemandFn& demand, const EpochParams& p, Dag& dag) {
  const dataset::EpochOrder order(p.num_samples, p.seed, p.epoch_index);
  const auto batches = dataset::make_batches(p.num_samples, p.cluster.batch_size);

  CpuRetimer storage(p.cluster.storage_cores, p.cluster.storage_core_speed);
  CpuRetimer compute(p.cluster.compute_cores, 1.0);
  LinkRetimer link(p.cluster.bandwidth, p.cluster.link_latency, p.cluster.link_faults);
  GpuRetimer gpu;

  std::vector<Ref> batch_gpu_done(batches.size());
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const Ref issue = b < p.cluster.prefetch_batches
                          ? dag.root()
                          : batch_gpu_done[b - p.cluster.prefetch_batches];
    Ref batch_ready = dag.root();
    for (std::size_t pos = batches[b].begin; pos < batches[b].end; ++pos) {
      const auto idx = order.at(pos);
      const SampleDemand f = demand(idx);
      const auto sample = static_cast<std::int64_t>(idx);
      const auto position = static_cast<std::int64_t>(pos);

      Ref t = apply_delay(issue, f.delay, dag, sample, position);
      if (f.storage_cpu.value() > 0.0 && storage.can_schedule()) {
        t = storage.schedule(t, f.storage_cpu, dag, Resource::kStorageCpu, sample, position);
      }
      t = link.schedule(t, f.wire, dag, sample, position);
      if (f.compute_cpu.value() > 0.0) {
        t = compute.schedule(t, f.compute_cpu, dag, Resource::kComputeCpu, sample, position);
      }
      batch_ready = later(batch_ready, t);
    }
    batch_gpu_done[b] =
        gpu.schedule(batch_ready, p.gpu_batch_time, dag, static_cast<std::int64_t>(b));
  }
  return batch_gpu_done.back();
}

/// Mirror of prefetch::replay_epoch (replay.cc): the clairvoyant scheduler's
/// depth/byte credits, W synchronous worker lanes claiming positions in
/// order, demand fallback, and the per-batch GPU chain. Credit releases are
/// consume-time Refs, so an issue gated on a slot credit routes its
/// provenance through the consuming worker's chain.
Ref retime_worker_replay(const DemandFn& demand, const EpochParams& p, Dag& dag) {
  const auto order = dataset::EpochOrder(p.num_samples, p.seed, p.epoch_index).order();
  const std::size_t depth = p.replay.prefetch.depth;
  const Bytes budget = p.replay.prefetch.bytes_budget;
  const Seconds link_latency = p.cluster.link_latency;

  LinkRetimer link(p.cluster.bandwidth, link_latency, p.cluster.link_faults);
  CpuRetimer storage(p.cluster.storage_cores, p.cluster.storage_core_speed);
  CpuRetimer compute(p.cluster.compute_cores, 1.0);
  GpuRetimer gpu;

  const auto is_local = [&](std::uint64_t id) {
    return p.replay.served_locally && p.replay.served_locally(id);
  };
  const auto request_hop = [&](Ref issue, std::int64_t sample, std::int64_t position) {
    if (link_latency.value() <= 0.0) return issue;
    return dag.add(issue.time + link_latency.value(), issue, Resource::kLink, sample, position);
  };

  struct Staged {
    Ref arrival;
    Bytes wire;
  };
  std::size_t sched_pos = 0;
  std::size_t issued_count = 0;
  std::size_t consumed_count = 0;
  Bytes outstanding_bytes;
  double issued_bytes_cum = 0.0;
  double consumed_bytes_cum = 0.0;
  Ref last_issue = dag.root();
  std::vector<Ref> consume_times;
  std::vector<std::pair<Ref, double>> consume_events;
  std::size_t bytes_release_ptr = 0;
  std::map<std::size_t, Staged> staged;

  const auto advance_scheduler = [&]() {
    if (depth == 0) return;
    while (sched_pos < p.num_samples) {
      const std::uint64_t id = order[sched_pos];
      if (is_local(id)) {
        ++sched_pos;
        continue;
      }
      const SampleDemand f = demand(id);
      if (prefetch::admit(p.replay.prefetch, id, 0, f.wire) != prefetch::Admission::kPrefetch) {
        ++sched_pos;
        continue;
      }
      const std::size_t outstanding = issued_count - consumed_count;
      if (outstanding >= depth) break;
      if (budget.count() > 0 && outstanding > 0 && outstanding_bytes + f.wire > budget) break;

      Ref release = dag.root();
      if (issued_count >= depth) release = consume_times[issued_count - depth];
      if (budget.count() > 0) {
        const double required = issued_bytes_cum + static_cast<double>(f.wire.count()) -
                                static_cast<double>(budget.count());
        while (bytes_release_ptr < consume_events.size() &&
               consume_events[bytes_release_ptr].second < required) {
          ++bytes_release_ptr;
        }
        if (required > 0.0 && bytes_release_ptr < consume_events.size()) {
          release = later(release, consume_events[bytes_release_ptr].first);
        }
      }
      const auto sample = static_cast<std::int64_t>(id);
      const auto position = static_cast<std::int64_t>(sched_pos);
      const Ref issue =
          apply_delay(later(last_issue, release), f.delay, dag, sample, position);
      last_issue = issue;
      const Ref at_storage = request_hop(issue, sample, position);
      const Ref storage_done =
          (f.storage_cpu.value() > 0.0 && storage.can_schedule())
              ? storage.schedule(at_storage, f.storage_cpu, dag, Resource::kStorageCpu, sample,
                                 position)
              : at_storage;
      const Ref arrival = link.schedule(storage_done, f.wire, dag, sample, position);
      staged.emplace(sched_pos, Staged{arrival, f.wire});
      ++issued_count;
      issued_bytes_cum += static_cast<double>(f.wire.count());
      outstanding_bytes += f.wire;
      ++sched_pos;
    }
  };

  std::vector<Ref> worker_free(p.replay.workers, dag.root());
  Ref batch_ready = dag.root();
  Ref epoch_end = dag.root();

  for (std::size_t position = 0; position < p.num_samples; ++position) {
    advance_scheduler();

    std::size_t worker = 0;
    for (std::size_t i = 1; i < worker_free.size(); ++i) {
      if (worker_free[i].time < worker_free[worker].time) worker = i;
    }
    const Ref t0 = worker_free[worker];
    const std::uint64_t id = order[position];
    const auto sample = static_cast<std::int64_t>(id);
    const auto pos64 = static_cast<std::int64_t>(position);

    Ref done;
    if (is_local(id)) {
      const SampleDemand f = demand(id);
      done = compute.schedule(t0, f.compute_cpu, dag, Resource::kComputeCpu, sample, pos64);
    } else if (const auto it = staged.find(position); it != staged.end()) {
      const Staged fetch = it->second;
      staged.erase(it);
      const Ref start = later(t0, fetch.arrival);
      const SampleDemand f = demand(id);
      done = compute.schedule(start, f.compute_cpu, dag, Resource::kComputeCpu, sample, pos64);
      ++consumed_count;
      consume_times.push_back(start);
      outstanding_bytes -= fetch.wire;
      consumed_bytes_cum += static_cast<double>(fetch.wire.count());
      consume_events.emplace_back(start, consumed_bytes_cum);
    } else {
      sched_pos = std::max(sched_pos, position + 1);  // consumed-mark semantics
      const SampleDemand f = demand(id);
      const Ref issue = apply_delay(t0, f.delay, dag, sample, pos64);
      const Ref at_storage = request_hop(issue, sample, pos64);
      const Ref storage_done =
          (f.storage_cpu.value() > 0.0 && storage.can_schedule())
              ? storage.schedule(at_storage, f.storage_cpu, dag, Resource::kStorageCpu, sample,
                                 pos64)
              : at_storage;
      const Ref arrival = link.schedule(storage_done, f.wire, dag, sample, pos64);
      done = compute.schedule(arrival, f.compute_cpu, dag, Resource::kComputeCpu, sample, pos64);
    }
    worker_free[worker] = done;

    batch_ready = later(batch_ready, done);
    if ((position + 1) % p.cluster.batch_size == 0 || position + 1 == p.num_samples) {
      epoch_end = gpu.schedule(batch_ready, p.gpu_batch_time, dag, pos64);
      batch_ready = dag.root();
    }
  }
  return epoch_end;
}

}  // namespace

Analysis analyze_epoch(const DemandFn& demand, const EpochParams& params,
                       Seconds observed_epoch_time) {
  SOPHON_CHECK(params.num_samples > 0);
  SOPHON_CHECK(params.cluster.batch_size > 0);
  SOPHON_CHECK(params.cluster.compute_cores > 0);
  SOPHON_CHECK(demand != nullptr);
  if (params.discipline == Discipline::kWorkerReplay) {
    SOPHON_CHECK(params.replay.workers >= 1);
  } else {
    SOPHON_CHECK(params.cluster.prefetch_batches >= 1);
  }

  Dag dag;
  const Ref end = params.discipline == Discipline::kWorkerReplay
                      ? retime_worker_replay(demand, params, dag)
                      : retime_batch_window(demand, params, dag);

  Analysis analysis;
  analysis.epoch_time = Seconds(end.time);
  analysis.nodes = dag.nodes().size();
  const auto& nodes = dag.nodes();
  std::int32_t n = end.node;
  while (n > 0) {
    const Node& node = nodes[static_cast<std::size_t>(n)];
    const Node& parent = nodes[static_cast<std::size_t>(node.parent)];
    const double edge = node.time - parent.time;
    analysis.blame.slot(node.via) += Seconds(edge);
    if (edge > 0.0) {
      analysis.path.push_back(PathSegment{node.via, Seconds(parent.time), Seconds(node.time),
                                          node.sample, node.position});
    }
    n = node.parent;
  }
  std::reverse(analysis.path.begin(), analysis.path.end());
  analysis.observed_epoch_time = observed_epoch_time;
  if (observed_epoch_time.value() > 0.0) {
    analysis.reconcile_error =
        std::abs(end.time - observed_epoch_time.value()) / observed_epoch_time.value();
  }
  return analysis;
}

std::string Analysis::render() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "critical path: epoch %.3f s over %zu segments (DAG %zu nodes)\n",
                epoch_time.value(), path.size(), nodes);
  out += line;
  const auto row = [&](Resource r) {
    const double seconds = blame.of(r).value();
    const double pct = epoch_time.value() > 0.0 ? 100.0 * seconds / epoch_time.value() : 0.0;
    std::snprintf(line, sizeof(line), "  %-12s %10.3f s  %5.1f%%%s\n",
                  std::string(resource_name(r)).c_str(), seconds, pct,
                  r == bottleneck() ? "  <- bottleneck" : "");
    out += line;
  };
  row(Resource::kStorageCpu);
  row(Resource::kLink);
  row(Resource::kComputeCpu);
  row(Resource::kGpu);
  row(Resource::kDelay);
  if (observed_epoch_time.value() > 0.0) {
    std::snprintf(line, sizeof(line),
                  "  reconciles with observed %.3f s (error %.2e)\n",
                  observed_epoch_time.value(), reconcile_error);
    out += line;
  }
  return out;
}

Json Analysis::to_json() const {
  Json doc = Json::object();
  doc.set("kind", "sophon.critpath");
  doc.set("version", 1);
  doc.set("epoch_time_seconds", epoch_time.value());
  if (observed_epoch_time.value() > 0.0) {
    doc.set("observed_epoch_time_seconds", observed_epoch_time.value());
    doc.set("reconcile_error", reconcile_error);
  }
  Json blame_json = Json::object();
  blame_json.set("storage_cpu_seconds", blame.storage_cpu.value());
  blame_json.set("link_seconds", blame.link.value());
  blame_json.set("compute_cpu_seconds", blame.compute_cpu.value());
  blame_json.set("gpu_seconds", blame.gpu.value());
  blame_json.set("delay_seconds", blame.delay.value());
  doc.set("blame", std::move(blame_json));
  doc.set("bottleneck", std::string(resource_name(bottleneck())));
  doc.set("nodes", static_cast<std::int64_t>(nodes));
  Json segments = Json::array();
  for (const PathSegment& segment : path) {
    Json s = Json::object();
    s.set("resource", std::string(resource_name(segment.via)));
    s.set("begin_seconds", segment.begin.value());
    s.set("end_seconds", segment.end.value());
    if (segment.sample >= 0) s.set("sample", segment.sample);
    if (segment.position >= 0) s.set("position", segment.position);
    segments.push_back(std::move(s));
  }
  doc.set("path", std::move(segments));
  return doc;
}

}  // namespace sophon::obs::critpath
