// Critical-path analysis of a completed simulated epoch.
//
// The stall reports (obs/report.h) answer "where did each worker's time
// go?" in aggregate; once the pipeline overlaps fetch, transfer, and
// preprocessing, aggregate busy fractions no longer say which resource to
// buy — a link that is 90% busy off the critical path costs nothing. The
// analyzer here re-times an epoch's per-sample resource demands under the
// *exact* scheduling equations of the discrete-event trainers
// (sim::simulate_epoch_flows for the batch-window loader,
// prefetch::replay_epoch for worker-lane replay with clairvoyant prefetch),
// but builds the full dependency DAG while doing so: every scheduling event
// records which predecessor event made it wait — the admission window, the
// previous transfer on the FIFO link, the earliest-free CPU core, the GPU's
// previous batch, an injected retry/backoff delay.
//
// Walking parents back from the final GPU completion yields the epoch
// critical path: a chain of edges that tiles [0, epoch_time] exactly, each
// edge charged to one resource. Summing edge lengths per resource is the
// *blame vector* — the seconds each resource contributed to the epoch, the
// quantity that tells you which knob to turn. Because the retimer mirrors
// the simulator's arithmetic operation-for-operation, the path end time
// reconciles with the simulator's epoch time to float rounding (the
// analyzer hard-fails tests at 1%, and in practice agrees to ~1e-12).
//
// whatif.h builds on this: perturb the resource parameters, re-time, and
// the projected epoch times are as trustworthy as the simulator itself.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "prefetch/replay.h"
#include "sim/cluster.h"
#include "util/json.h"
#include "util/units.h"

namespace sophon::obs::critpath {

/// What a critical-path edge waited on. kStart is the epoch origin (root
/// node only); kDelay is injected pre-pipeline stall (retry backoff under
/// fault replay), which occupies no physical resource.
enum class Resource : std::uint8_t {
  kStart = 0,
  kStorageCpu = 1,
  kLink = 2,
  kComputeCpu = 3,
  kGpu = 4,
  kDelay = 5,
};

[[nodiscard]] std::string_view resource_name(Resource resource);

/// One sample's resource demands — the same currency as sim::SampleFlow,
/// minus the annotations the retimer does not need. Under fault replay,
/// capture the demands *after* sim::faulty_flow fattened them (delay holds
/// the backoff, wire the corrupt-attempt waste) so the retimer replays the
/// same epoch the simulator ran.
struct SampleDemand {
  Seconds storage_cpu;
  Seconds compute_cpu;
  Bytes wire;
  Seconds delay;
};

/// Maps a catalog sample index to its demands. Must be pure: the worker-lane
/// retimer, like prefetch::replay_epoch, consults a sample more than once.
using DemandFn = std::function<SampleDemand(std::size_t index)>;

/// Which discrete-event discipline produced the epoch being analyzed.
enum class Discipline : std::uint8_t {
  /// sim::simulate_epoch_flows — batch-window admission, no worker lanes.
  kBatchWindow = 0,
  /// prefetch::replay_epoch — W synchronous workers + clairvoyant prefetch.
  kWorkerReplay = 1,
};

/// Everything the retimer needs to replay an epoch's schedule.
struct EpochParams {
  sim::ClusterConfig cluster;
  Seconds gpu_batch_time;
  std::uint64_t seed = 42;
  std::size_t epoch_index = 0;
  std::size_t num_samples = 0;
  Discipline discipline = Discipline::kBatchWindow;
  /// Worker-lane parameters (kWorkerReplay only): workers, prefetch depth /
  /// byte budget / admission inputs, cache-served sample predicate.
  prefetch::ReplayOptions replay;
};

/// Seconds each resource contributed to the critical path. The components
/// sum to the epoch time exactly (the path tiles [0, epoch_time]).
struct BlameVector {
  Seconds storage_cpu;
  Seconds link;
  Seconds compute_cpu;
  Seconds gpu;
  Seconds delay;

  [[nodiscard]] Seconds total() const {
    return storage_cpu + link + compute_cpu + gpu + delay;
  }
  [[nodiscard]] Seconds of(Resource resource) const;
  Seconds& slot(Resource resource);
  /// Largest component; ties resolve link > gpu > storage > compute > delay,
  /// mirroring EpochReport::bottleneck_of's net-first order.
  [[nodiscard]] Resource dominant() const;
};

/// One edge of the critical path, in forward time order. begin == the
/// previous segment's end; the first segment begins at 0 and the last ends
/// at the epoch time.
struct PathSegment {
  Resource via = Resource::kStart;
  Seconds begin;
  Seconds end;
  std::int64_t sample = -1;    ///< catalog sample id (-1 for GPU batch edges)
  std::int64_t position = -1;  ///< epoch position (GPU edges: closing position)
};

/// The analyzer's output for one epoch.
struct Analysis {
  Seconds epoch_time;          ///< re-timed epoch end (== blame.total())
  BlameVector blame;
  Seconds observed_epoch_time; ///< what the real run measured (0 = not given)
  /// |retimed - observed| / observed; ~1e-12 when demands were captured
  /// faithfully. Anything near 1% means the inputs drifted from the run.
  double reconcile_error = 0.0;
  std::size_t nodes = 0;       ///< dependency-DAG size
  std::vector<PathSegment> path;  ///< zero-length edges elided

  [[nodiscard]] Resource bottleneck() const { return blame.dominant(); }
  [[nodiscard]] std::string render() const;
  [[nodiscard]] Json to_json() const;
};

/// Re-time one epoch and decompose its critical path. `observed_epoch_time`
/// is the simulator's (or run's) own epoch time for the reconcile check;
/// pass zero to skip it.
[[nodiscard]] Analysis analyze_epoch(const DemandFn& demand, const EpochParams& params,
                                     Seconds observed_epoch_time = Seconds(0.0));

}  // namespace sophon::obs::critpath
