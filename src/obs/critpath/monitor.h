// Epoch-boundary bridge between the critical-path analyzer and the live
// telemetry plane: runs analyze_epoch on each completed epoch's captured
// demands, publishes the blame vector as sophon_critpath_* gauges, and
// counts bottleneck *migrations* — the mid-run resource handoffs (link ->
// gpu after a replan, gpu -> link after a bandwidth drop) that the
// bottleneck_migrated health rule turns into WARN/CRIT.
#pragma once

#include <cstddef>
#include <optional>

#include "obs/critpath/critpath.h"
#include "util/telemetry.h"

namespace sophon::obs::critpath {

class CritPathMonitor {
 public:
  /// `metrics` is borrowed and may be null (analysis still runs; nothing is
  /// published). Not thread-safe: call from the run loop's epoch boundary.
  explicit CritPathMonitor(MetricsRegistry* metrics = nullptr) : metrics_(metrics) {}

  /// Analyze one completed epoch and publish. `observed_epoch_time` is the
  /// run's own measurement for the reconcile gauge.
  const Analysis& observe_epoch(const DemandFn& demand, const EpochParams& params,
                                Seconds observed_epoch_time);

  [[nodiscard]] std::size_t epochs() const { return epochs_; }
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
  [[nodiscard]] const std::optional<Analysis>& last() const { return last_; }
  /// Dominant resource of the most recent epoch (kStart before any epoch).
  [[nodiscard]] Resource bottleneck() const {
    return last_ ? last_->bottleneck() : Resource::kStart;
  }

 private:
  MetricsRegistry* metrics_;
  std::optional<Analysis> last_;
  std::size_t epochs_ = 0;
  std::uint64_t migrations_ = 0;
};

}  // namespace sophon::obs::critpath
