#include "obs/critpath/whatif.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace sophon::obs::critpath {

std::vector<Scenario> default_scenarios(const EpochParams& base) {
  std::vector<Scenario> scenarios;
  scenarios.push_back(Scenario{
      "link_bandwidth_x2", "double the inter-cluster link bandwidth",
      [](EpochParams& p) {
        p.cluster.bandwidth = Bandwidth::bits_per_sec(p.cluster.bandwidth.bps() * 2.0);
      }});
  scenarios.push_back(Scenario{
      "link_bandwidth_x4", "quadruple the inter-cluster link bandwidth",
      [](EpochParams& p) {
        p.cluster.bandwidth = Bandwidth::bits_per_sec(p.cluster.bandwidth.bps() * 4.0);
      }});
  scenarios.push_back(Scenario{
      "storage_cores_plus2", "add two preprocessing cores on the storage node",
      [](EpochParams& p) { p.cluster.storage_cores += 2; }});
  scenarios.push_back(Scenario{
      "gpu_2x_faster", "halve the GPU batch service time (next GPU model)",
      [](EpochParams& p) { p.gpu_batch_time = p.gpu_batch_time * 0.5; }});
  if (base.discipline == Discipline::kWorkerReplay) {
    scenarios.push_back(Scenario{
        "prefetch_depth_x2", "double the clairvoyant prefetch depth",
        [](EpochParams& p) {
          p.replay.prefetch.depth = p.replay.prefetch.depth > 0 ? p.replay.prefetch.depth * 2 : 8;
        }});
    scenarios.push_back(Scenario{
        "workers_plus2", "add two loader worker lanes",
        [](EpochParams& p) { p.replay.workers += 2; }});
  } else {
    scenarios.push_back(Scenario{
        "prefetch_window_x2", "double the batch look-ahead window",
        [](EpochParams& p) { p.cluster.prefetch_batches *= 2; }});
    scenarios.push_back(Scenario{
        "compute_cores_plus2", "add two preprocessing cores on the compute node",
        [](EpochParams& p) { p.cluster.compute_cores += 2; }});
  }
  return scenarios;
}

WhatIfReport project(const DemandFn& demand, const EpochParams& base,
                     const std::vector<Scenario>& scenarios, Seconds observed_epoch_time) {
  WhatIfReport report;
  report.baseline = analyze_epoch(demand, base, observed_epoch_time);
  const double baseline_time = report.baseline.epoch_time.value();

  report.ranked.reserve(scenarios.size());
  for (const Scenario& scenario : scenarios) {
    EpochParams perturbed = base;
    scenario.perturb(perturbed);
    const Analysis analysis = analyze_epoch(demand, perturbed);
    Projection projection;
    projection.name = scenario.name;
    projection.description = scenario.description;
    projection.projected_epoch_time = analysis.epoch_time;
    projection.speedup =
        analysis.epoch_time.value() > 0.0 ? baseline_time / analysis.epoch_time.value() : 1.0;
    projection.blame = analysis.blame;
    projection.bottleneck = analysis.bottleneck();
    projection.params = std::move(perturbed);
    report.ranked.push_back(std::move(projection));
  }
  std::sort(report.ranked.begin(), report.ranked.end(),
            [](const Projection& a, const Projection& b) {
              if (a.speedup != b.speedup) return a.speedup > b.speedup;
              return a.name < b.name;
            });
  return report;
}

std::string WhatIfReport::render() const {
  std::string out;
  char line[224];
  std::snprintf(line, sizeof(line), "what-if: baseline epoch %.3f s, bottleneck %s\n",
                baseline.epoch_time.value(),
                std::string(resource_name(baseline.bottleneck())).c_str());
  out += line;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const Projection& p = ranked[i];
    std::snprintf(line, sizeof(line),
                  "  %zu. %-22s %.3f s  (%.2fx)  bottleneck -> %-11s  %s\n", i + 1,
                  p.name.c_str(), p.projected_epoch_time.value(), p.speedup,
                  std::string(resource_name(p.bottleneck)).c_str(), p.description.c_str());
    out += line;
  }
  return out;
}

Json WhatIfReport::to_json() const {
  Json doc = Json::object();
  doc.set("kind", "sophon.whatif");
  doc.set("version", 1);
  doc.set("baseline", baseline.to_json());
  Json list = Json::array();
  for (const Projection& p : ranked) {
    Json s = Json::object();
    s.set("name", p.name);
    s.set("description", p.description);
    s.set("projected_epoch_time_seconds", p.projected_epoch_time.value());
    s.set("speedup", p.speedup);
    s.set("bottleneck", std::string(resource_name(p.bottleneck)));
    Json blame = Json::object();
    blame.set("storage_cpu_seconds", p.blame.storage_cpu.value());
    blame.set("link_seconds", p.blame.link.value());
    blame.set("compute_cpu_seconds", p.blame.compute_cpu.value());
    blame.set("gpu_seconds", p.blame.gpu.value());
    blame.set("delay_seconds", p.blame.delay.value());
    s.set("blame", std::move(blame));
    list.push_back(std::move(s));
  }
  doc.set("scenarios", std::move(list));
  return doc;
}

}  // namespace sophon::obs::critpath
