#include "obs/critpath/monitor.h"

namespace sophon::obs::critpath {

const Analysis& CritPathMonitor::observe_epoch(const DemandFn& demand, const EpochParams& params,
                                               Seconds observed_epoch_time) {
  const Resource previous = bottleneck();
  last_ = analyze_epoch(demand, params, observed_epoch_time);
  ++epochs_;
  const Analysis& analysis = *last_;
  const Resource current = analysis.bottleneck();
  // The first epoch establishes the bottleneck; only a *change* afterwards
  // is a migration.
  if (epochs_ > 1 && current != previous) ++migrations_;

  if (metrics_ != nullptr) {
    metrics_->gauge("sophon_critpath_blame_storage_cpu_seconds")
        .set(analysis.blame.storage_cpu.value());
    metrics_->gauge("sophon_critpath_blame_link_seconds").set(analysis.blame.link.value());
    metrics_->gauge("sophon_critpath_blame_compute_cpu_seconds")
        .set(analysis.blame.compute_cpu.value());
    metrics_->gauge("sophon_critpath_blame_gpu_seconds").set(analysis.blame.gpu.value());
    metrics_->gauge("sophon_critpath_blame_delay_seconds").set(analysis.blame.delay.value());
    metrics_->gauge("sophon_critpath_bottleneck").set(static_cast<double>(current));
    metrics_->gauge("sophon_critpath_reconcile_error").set(analysis.reconcile_error);
    if (epochs_ > 1 && current != previous) {
      metrics_->counter("sophon_critpath_bottleneck_migrations").increment();
    }
  }
  return analysis;
}

}  // namespace sophon::obs::critpath
