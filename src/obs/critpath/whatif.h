// What-if projection engine on top of the critical-path retimer.
//
// Because analyze_epoch reproduces the simulator's schedule exactly (not a
// regression fit), re-timing the same demands under perturbed resource
// parameters yields epoch-time projections that are as trustworthy as
// running the simulator itself — the validation tests pin predicted vs. an
// actual simulator re-run under each perturbed config. The engine evaluates
// a set of named single-knob scenarios (more link bandwidth, more storage
// cores, deeper prefetch, more workers, a faster GPU) and ranks them by
// projected speedup, answering the operator's real question: which knob is
// worth turning *next*.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "obs/critpath/critpath.h"

namespace sophon::obs::critpath {

/// One perturbation: a name plus a pure edit of the epoch parameters.
struct Scenario {
  std::string name;
  std::string description;
  std::function<void(EpochParams&)> perturb;
};

/// The stock scenario set, discipline-aware: link ×2/×4, +2 storage cores,
/// deeper look-ahead (2× prefetch window or 2× prefetch depth), more
/// consumers (+2 compute cores or +2 workers), and a 2×-faster GPU.
[[nodiscard]] std::vector<Scenario> default_scenarios(const EpochParams& base);

/// Projected outcome of one scenario.
struct Projection {
  std::string name;
  std::string description;
  Seconds projected_epoch_time;
  /// baseline / projected; > 1 means the scenario helps.
  double speedup = 1.0;
  /// Blame vector of the *perturbed* schedule — shows where the bottleneck
  /// moves once this knob is turned.
  BlameVector blame;
  Resource bottleneck = Resource::kStart;
  /// The perturbed parameters, so a validator can re-run the real simulator
  /// under exactly this config.
  EpochParams params;
};

/// Baseline analysis plus scenarios ranked by speedup (descending, name
/// ascending on exact ties — deterministic).
struct WhatIfReport {
  Analysis baseline;
  std::vector<Projection> ranked;

  [[nodiscard]] std::string render() const;
  [[nodiscard]] Json to_json() const;
};

/// Re-time `demand` under every scenario. `observed_epoch_time` feeds the
/// baseline reconcile check (pass zero to skip).
[[nodiscard]] WhatIfReport project(const DemandFn& demand, const EpochParams& base,
                                   const std::vector<Scenario>& scenarios,
                                   Seconds observed_epoch_time = Seconds(0.0));

}  // namespace sophon::obs::critpath
