// Epoch stall attribution: fold a span trace into a DS-Analyzer-style
// breakdown of where each worker's epoch went.
//
// EpochReport::build() walks the spans of each track and attributes *self
// time* — a span's duration minus the durations of spans nested inside it —
// to the span's category, so an outer demand-fetch span that encloses the
// storage-side prefix execution (loopback RPC) charges only the wire-and-
// wait portion to "fetch". Tracks labeled "worker*" become per-worker rows
// of fetch-stall / staging-wait / preprocess / collate / idle, with idle
// defined as wall-clock minus everything accounted; non-worker tracks
// (link, gpu, storage, prefetch) contribute the aggregate busy times the
// observed cost vector is folded from.
//
// set_predicted() attaches the §3.2 EpochCostVector the decision engine
// computed ahead of the run; render()/to_json() then report component-wise
// predicted-vs-observed divergence and whether the two agree on the epoch's
// bottleneck — the first-class artifact that turns "the run was slow" into
// "the link was predicted dominant but workers actually stalled on decode".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "util/json.h"
#include "util/units.h"

namespace sophon::obs {

/// One worker lane's epoch, split by span category. All components are
/// summed self time except idle (= wall - accounted, clamped at zero).
struct WorkerBreakdown {
  std::uint32_t track = 0;
  std::string label;
  Seconds fetch_stall;
  Seconds staging_wait;
  Seconds preprocess;
  Seconds collate;
  Seconds retry;  ///< backoff between failed fetch attempts (resilience ladder)
  Seconds other;
  Seconds idle;
  std::uint64_t spans = 0;

  [[nodiscard]] Seconds accounted() const {
    return fetch_stall + staging_wait + preprocess + collate + retry + other;
  }
  /// accounted + idle; equals the wall clock whenever accounted <= wall.
  [[nodiscard]] Seconds total() const { return accounted() + idle; }
};

class EpochReport {
 public:
  /// The four predicted/observed epoch components of §3.2 (mirrors
  /// core::EpochCostVector without depending on it).
  struct Costs {
    Seconds t_g;
    Seconds t_cc;
    Seconds t_cs;
    Seconds t_net;
  };

  /// Fold `spans` (one drained trace) against `labels` (Tracer::labels()).
  /// Tracks whose label starts with "worker" become WorkerBreakdown rows;
  /// `wall` is the epoch's wall-clock (or virtual makespan) time.
  [[nodiscard]] static EpochReport build(
      const std::vector<SpanEvent>& spans,
      const std::vector<std::pair<std::uint32_t, std::string>>& labels, Seconds wall);

  [[nodiscard]] const std::vector<WorkerBreakdown>& workers() const { return workers_; }
  [[nodiscard]] Seconds wall() const { return wall_; }

  /// Aggregate busy time on non-worker tracks, by category.
  [[nodiscard]] Seconds transfer_busy() const { return transfer_busy_; }
  [[nodiscard]] Seconds gpu_busy() const { return gpu_busy_; }
  [[nodiscard]] Seconds storage_busy() const { return storage_busy_; }

  /// Bytes summed from every kTransfer span's args — the trace's own link
  /// byte count, reconcilable against sophon_epoch_traffic_bytes and the
  /// traffic ledger's total (spans whose bytes were never annotated are
  /// skipped).
  [[nodiscard]] Bytes transfer_bytes() const { return transfer_bytes_; }

  /// Sum over workers of one component.
  [[nodiscard]] Seconds total_fetch_stall() const;
  [[nodiscard]] Seconds total_staging_wait() const;
  [[nodiscard]] Seconds total_preprocess() const;
  [[nodiscard]] Seconds total_retry() const;

  /// The cost vector as this trace observed it: t_net = link busy,
  /// t_cs = storage-side prefix busy, t_cc = worker preprocess summed and
  /// averaged over lanes, t_g = gpu busy.
  [[nodiscard]] Costs observed() const;

  /// "net" | "cpu" | "gpu" | "storage-cpu" — the largest observed component.
  [[nodiscard]] std::string_view observed_bottleneck() const;

  /// Attach the decision engine's prediction for divergence reporting.
  void set_predicted(const Costs& predicted);
  [[nodiscard]] bool has_predicted() const { return has_predicted_; }
  [[nodiscard]] const Costs& predicted() const { return predicted_; }
  [[nodiscard]] static std::string_view bottleneck_of(const Costs& costs);

  /// Human-readable report (per-worker table + reconciliation block).
  [[nodiscard]] std::string render() const;

  /// Machine-readable form of the same (kind "sophon.epoch_report").
  [[nodiscard]] Json to_json() const;

 private:
  std::vector<WorkerBreakdown> workers_;
  Seconds wall_;
  Seconds transfer_busy_;
  Seconds gpu_busy_;
  Seconds storage_busy_;
  Bytes transfer_bytes_;
  Costs predicted_;
  bool has_predicted_ = false;
};

}  // namespace sophon::obs
