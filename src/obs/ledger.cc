#include "obs/ledger.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"
#include "util/table.h"

namespace sophon::obs {
namespace {

constexpr std::size_t kMaxEpochRows = 512;
/// Sample-map capacity: a multiple of top_k so eviction pressure rarely
/// drops a sample that would have made the final top-K cut.
constexpr std::size_t kSampleSlackFactor = 4;
constexpr std::size_t kMinSampleCapacity = 64;

/// Human/export names (issue taxonomy, dashed) indexed by cause.
constexpr std::array<const char*, kTrafficCauseCount> kCauseNames = {
    "demand",    "prefetch",  "prefetch-wasted", "retry",
    "raw-fallback", "shard-hit", "shard-corrupt-refetch", "control",
};

/// Prometheus-conformant metric names (snake case) indexed by cause.
constexpr std::array<const char*, kTrafficCauseCount> kCauseMetricNames = {
    "sophon_ledger_demand_bytes",
    "sophon_ledger_prefetch_bytes",
    "sophon_ledger_prefetch_wasted_bytes",
    "sophon_ledger_retry_bytes",
    "sophon_ledger_raw_fallback_bytes",
    "sophon_ledger_shard_hit_bytes",
    "sophon_ledger_shard_corrupt_refetch_bytes",
    "sophon_ledger_control_bytes",
};

std::size_t cause_index(TrafficCause cause) {
  const auto index = static_cast<std::size_t>(cause);
  SOPHON_CHECK(index < kTrafficCauseCount);
  return index;
}

std::size_t stage_index(std::uint8_t stage) {
  return std::min<std::size_t>(stage, kLedgerMaxStages - 1);
}

Json causes_to_json(const std::array<std::int64_t, kTrafficCauseCount>& bytes) {
  Json obj = Json::object();
  for (std::size_t c = 0; c < kTrafficCauseCount; ++c) obj.set(kCauseNames[c], bytes[c]);
  return obj;
}

bool causes_from_json(const Json& obj, std::array<std::int64_t, kTrafficCauseCount>& out) {
  if (!obj.is_object()) return false;
  for (std::size_t c = 0; c < kTrafficCauseCount; ++c) {
    if (!obj.has(kCauseNames[c]) || !obj.at(kCauseNames[c]).is_number()) return false;
    out[c] = obj.at(kCauseNames[c]).as_int();
  }
  return true;
}

std::string mib_cell(std::int64_t bytes) {
  return strf("%.2f", static_cast<double>(bytes) / (1024.0 * 1024.0));
}

}  // namespace

const char* traffic_cause_name(TrafficCause cause) { return kCauseNames[cause_index(cause)]; }

std::optional<TrafficCause> traffic_cause_from_name(std::string_view name) {
  for (std::size_t c = 0; c < kTrafficCauseCount; ++c) {
    if (name == kCauseNames[c]) return static_cast<TrafficCause>(c);
  }
  return std::nullopt;
}

// --- LedgerExport -----------------------------------------------------------

std::int64_t LedgerExport::total() const {
  std::int64_t sum = 0;
  for (const auto bytes : cause_bytes) sum += bytes;
  return sum;
}

Json LedgerExport::to_json() const {
  Json doc = Json::object();
  doc.set("kind", "sophon.traffic_ledger");
  doc.set("schema_version", std::int64_t{schema_version});
  doc.set("records", static_cast<std::int64_t>(records));
  doc.set("total_bytes", total());
  doc.set("unattributed_bytes", unattributed_bytes);
  doc.set("causes", causes_to_json(cause_bytes));

  Json stages = Json::array();
  for (std::size_t s = 0; s < kLedgerMaxStages; ++s) {
    std::int64_t stage_total = 0;
    for (const auto bytes : stage_cause_bytes[s]) stage_total += bytes;
    if (stage_total == 0) continue;  // sparse: real runs use a handful of stages
    Json row = Json::object();
    row.set("stage", static_cast<std::int64_t>(s));
    row.set("bytes", stage_total);
    row.set("causes", causes_to_json(stage_cause_bytes[s]));
    stages.push_back(std::move(row));
  }
  doc.set("stages", std::move(stages));

  Json samples = Json::array();
  for (const auto& sample : top_samples) {
    Json row = Json::object();
    row.set("sample", static_cast<std::int64_t>(sample.sample_id));
    row.set("bytes", sample.bytes);
    row.set("causes", causes_to_json(sample.cause_bytes));
    samples.push_back(std::move(row));
  }
  doc.set("top_samples", std::move(samples));

  Json epochs_json = Json::array();
  for (const auto& row : epochs) {
    Json e = Json::object();
    e.set("epoch", static_cast<std::int64_t>(row.epoch));
    e.set("plan_generation", static_cast<std::int64_t>(row.plan_generation));
    e.set("link_bytes", row.link_bytes);
    e.set("attributed_bytes", row.attributed_bytes);
    e.set("unattributed_bytes", row.unattributed_bytes);
    e.set("predicted_bytes", row.predicted_bytes);
    e.set("baseline_bytes", row.baseline_bytes);
    e.set("causes", causes_to_json(row.cause_bytes));
    epochs_json.push_back(std::move(e));
  }
  doc.set("epochs", std::move(epochs_json));
  return doc;
}

std::optional<LedgerExport> LedgerExport::from_json(const Json& doc) {
  if (!doc.is_object() || !doc.has("kind") || !doc.at("kind").is_string() ||
      doc.at("kind").as_string() != "sophon.traffic_ledger") {
    return std::nullopt;
  }
  if (!doc.has("schema_version") || !doc.at("schema_version").is_number() ||
      doc.at("schema_version").as_int() != 1) {
    return std::nullopt;
  }
  LedgerExport out;
  if (!doc.has("records") || !doc.at("records").is_number() || !doc.has("causes") ||
      !doc.has("unattributed_bytes") || !doc.at("unattributed_bytes").is_number()) {
    return std::nullopt;
  }
  out.records = static_cast<std::uint64_t>(doc.at("records").as_int());
  out.unattributed_bytes = doc.at("unattributed_bytes").as_int();
  if (!causes_from_json(doc.at("causes"), out.cause_bytes)) return std::nullopt;

  if (doc.has("stages")) {
    const Json& stages = doc.at("stages");
    if (!stages.is_array()) return std::nullopt;
    for (std::size_t i = 0; i < stages.size(); ++i) {
      const Json& row = stages.at(i);
      if (!row.is_object() || !row.has("stage") || !row.has("causes")) return std::nullopt;
      const auto stage = static_cast<std::size_t>(row.at("stage").as_int());
      if (stage >= kLedgerMaxStages) return std::nullopt;
      if (!causes_from_json(row.at("causes"), out.stage_cause_bytes[stage])) return std::nullopt;
    }
  }
  if (doc.has("top_samples")) {
    const Json& samples = doc.at("top_samples");
    if (!samples.is_array()) return std::nullopt;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Json& row = samples.at(i);
      if (!row.is_object() || !row.has("sample") || !row.has("bytes") || !row.has("causes")) {
        return std::nullopt;
      }
      LedgerTopSample sample;
      sample.sample_id = static_cast<std::uint64_t>(row.at("sample").as_int());
      sample.bytes = row.at("bytes").as_int();
      if (!causes_from_json(row.at("causes"), sample.cause_bytes)) return std::nullopt;
      out.top_samples.push_back(std::move(sample));
    }
  }
  if (doc.has("epochs")) {
    const Json& epochs_json = doc.at("epochs");
    if (!epochs_json.is_array()) return std::nullopt;
    for (std::size_t i = 0; i < epochs_json.size(); ++i) {
      const Json& e = epochs_json.at(i);
      if (!e.is_object() || !e.has("epoch") || !e.has("link_bytes") || !e.has("causes")) {
        return std::nullopt;
      }
      LedgerEpochRow row;
      row.epoch = static_cast<std::uint64_t>(e.at("epoch").as_int());
      row.plan_generation =
          e.has("plan_generation") ? static_cast<std::uint64_t>(e.at("plan_generation").as_int())
                                   : 0;
      row.link_bytes = e.at("link_bytes").as_int();
      row.attributed_bytes = e.has("attributed_bytes") ? e.at("attributed_bytes").as_int() : 0;
      row.unattributed_bytes =
          e.has("unattributed_bytes") ? e.at("unattributed_bytes").as_int() : 0;
      row.predicted_bytes = e.has("predicted_bytes") ? e.at("predicted_bytes").as_int() : -1;
      row.baseline_bytes = e.has("baseline_bytes") ? e.at("baseline_bytes").as_int() : -1;
      if (!causes_from_json(e.at("causes"), row.cause_bytes)) return std::nullopt;
      out.epochs.push_back(row);
    }
  }
  return out;
}

// --- diff + rendering -------------------------------------------------------

bool LedgerDiff::identical() const {
  if (total_a != total_b) return false;
  return std::all_of(rows.begin(), rows.end(),
                     [](const LedgerDiffRow& row) { return row.delta() == 0; });
}

LedgerDiff diff_ledgers(const LedgerExport& a, const LedgerExport& b) {
  LedgerDiff diff;
  diff.total_a = a.total();
  diff.total_b = b.total();
  for (std::size_t c = 0; c < kTrafficCauseCount; ++c) {
    LedgerDiffRow row;
    row.cause = static_cast<TrafficCause>(c);
    row.bytes_a = a.cause_bytes[c];
    row.bytes_b = b.cause_bytes[c];
    diff.rows.push_back(row);
  }
  std::stable_sort(diff.rows.begin(), diff.rows.end(),
                   [](const LedgerDiffRow& lhs, const LedgerDiffRow& rhs) {
                     return std::llabs(lhs.delta()) > std::llabs(rhs.delta());
                   });
  return diff;
}

std::string render_traffic_report(const LedgerExport& exported) {
  std::string out;
  const std::int64_t total = exported.total();

  TextTable causes({"cause", "MiB", "share"});
  for (std::size_t c = 0; c < kTrafficCauseCount; ++c) {
    const std::int64_t bytes = exported.cause_bytes[c];
    if (bytes == 0 && static_cast<TrafficCause>(c) == TrafficCause::kControl) continue;
    const double share = total > 0 ? 100.0 * static_cast<double>(bytes) / static_cast<double>(total)
                                   : 0.0;
    causes.add_row({kCauseNames[c], mib_cell(bytes), strf("%.1f%%", share)});
  }
  out += "traffic by cause (total " + mib_cell(total) + " MiB, " +
         std::to_string(exported.records) + " records, unattributed " +
         std::to_string(exported.unattributed_bytes) + " B)\n";
  out += causes.render();

  TextTable stages({"stage", "MiB", "dominant cause"});
  for (std::size_t s = 0; s < kLedgerMaxStages; ++s) {
    std::int64_t stage_total = 0;
    std::size_t dominant = 0;
    for (std::size_t c = 0; c < kTrafficCauseCount; ++c) {
      stage_total += exported.stage_cause_bytes[s][c];
      if (exported.stage_cause_bytes[s][c] > exported.stage_cause_bytes[s][dominant]) dominant = c;
    }
    if (stage_total == 0) continue;
    stages.add_row({std::to_string(s), mib_cell(stage_total), kCauseNames[dominant]});
  }
  if (stages.rows() > 0) {
    out += "\ntraffic by pipeline stage (stage = offload prefix of the fetch)\n";
    out += stages.render();
  }

  if (!exported.epochs.empty()) {
    TextTable epochs({"epoch", "plan", "link MiB", "predicted MiB", "baseline MiB",
                      "saved MiB", "predicted saved", "unattributed B"});
    for (const auto& row : exported.epochs) {
      const bool forecast = row.predicted_bytes >= 0 && row.baseline_bytes >= 0;
      epochs.add_row({std::to_string(row.epoch), std::to_string(row.plan_generation),
                      mib_cell(row.link_bytes),
                      forecast ? mib_cell(row.predicted_bytes) : "-",
                      forecast ? mib_cell(row.baseline_bytes) : "-",
                      forecast ? mib_cell(row.baseline_bytes - row.link_bytes) : "-",
                      forecast ? mib_cell(row.baseline_bytes - row.predicted_bytes) : "-",
                      std::to_string(row.unattributed_bytes)});
    }
    out += "\nplan savings per epoch (saved = all-raw baseline - actual link bytes)\n";
    out += epochs.render();
  }

  if (!exported.top_samples.empty()) {
    TextTable samples({"sample", "MiB", "dominant cause"});
    const std::size_t limit = std::min<std::size_t>(exported.top_samples.size(), 10);
    for (std::size_t i = 0; i < limit; ++i) {
      const auto& sample = exported.top_samples[i];
      std::size_t dominant = 0;
      for (std::size_t c = 1; c < kTrafficCauseCount; ++c) {
        if (sample.cause_bytes[c] > sample.cause_bytes[dominant]) dominant = c;
      }
      samples.add_row({std::to_string(sample.sample_id), mib_cell(sample.bytes),
                       kCauseNames[dominant]});
    }
    out += "\nheaviest samples (top " + std::to_string(limit) + " of the tracked top-K)\n";
    out += samples.render();
  }
  return out;
}

std::string render_traffic_diff(const LedgerDiff& diff) {
  std::string out;
  TextTable table({"cause", "A MiB", "B MiB", "delta MiB"});
  for (const auto& row : diff.rows) {
    table.add_row({traffic_cause_name(row.cause), mib_cell(row.bytes_a), mib_cell(row.bytes_b),
                   strf("%+.2f", static_cast<double>(row.delta()) / (1024.0 * 1024.0))});
  }
  out += "traffic diff, causes ranked by |byte delta| (B - A)\n";
  out += table.render();
  out += strf("total: %s -> %s MiB (%+.2f MiB)\n", mib_cell(diff.total_a).c_str(),
              mib_cell(diff.total_b).c_str(),
              static_cast<double>(diff.total_delta()) / (1024.0 * 1024.0));
  if (diff.identical()) out += "ledgers are byte-identical\n";
  return out;
}

// --- TrafficLedger ----------------------------------------------------------

TrafficLedger::TrafficLedger(Options options) : options_(options) {
  if (options_.top_k == 0) options_.top_k = 1;
  if (options_.metrics != nullptr) {
    // Pre-register so scrapes see explicit zeros before the first epoch.
    for (const char* name : kCauseMetricNames) {
      static_cast<void>(options_.metrics->gauge(name));
    }
    static_cast<void>(options_.metrics->gauge("sophon_ledger_attributed_bytes"));
    static_cast<void>(options_.metrics->gauge("sophon_ledger_unattributed_bytes"));
    static_cast<void>(options_.metrics->counter("sophon_ledger_records"));
  }
}

void TrafficLedger::record(std::uint64_t sample_id, std::uint8_t stage, TrafficCause cause,
                           Bytes bytes) {
  SOPHON_CHECK(bytes.count() >= 0);
  if (bytes.count() == 0) return;
  const std::size_t c = cause_index(cause);
  const std::size_t s = stage_index(stage);
  std::lock_guard<std::mutex> lock(mutex_);
  ++records_;
  cause_bytes_[c] += bytes.count();
  stage_cause_bytes_[s][c] += bytes.count();

  auto it = samples_.find(sample_id);
  if (it == samples_.end()) {
    const std::size_t capacity =
        std::max(kMinSampleCapacity, options_.top_k * kSampleSlackFactor);
    if (samples_.size() >= 2 * capacity) prune_samples_locked(capacity);
    // Once full, a newcomer no heavier than past evictees cannot reach the
    // top-K; skipping it keeps record() O(1). Only the sample view is
    // approximate — the per-cause totals above are always exact.
    if (samples_.size() >= capacity && bytes.count() <= sample_floor_) return;
    it = samples_.emplace(sample_id, SampleEntry{}).first;
  }
  it->second.bytes += bytes.count();
  it->second.cause_bytes[c] += bytes.count();
}

/// Drop the lightest samples until `capacity` remain — one O(n) pass every
/// `capacity` inserts instead of a min-scan per insert.
void TrafficLedger::prune_samples_locked(std::size_t capacity) {
  if (samples_.size() <= capacity) return;
  std::vector<std::pair<std::int64_t, std::uint64_t>> order;  // (bytes, id)
  order.reserve(samples_.size());
  for (const auto& [id, entry] : samples_) order.emplace_back(entry.bytes, id);
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(capacity),
                   order.end(), [](const auto& a, const auto& b) {
                     return a.first != b.first ? a.first > b.first : a.second < b.second;
                   });
  for (std::size_t i = capacity; i < order.size(); ++i) {
    sample_floor_ = std::max(sample_floor_, order[i].first);
    samples_.erase(order[i].second);
  }
}

void TrafficLedger::reclassify(std::uint64_t sample_id, std::uint8_t stage, TrafficCause from,
                               TrafficCause to, Bytes bytes) {
  SOPHON_CHECK(bytes.count() >= 0);
  if (bytes.count() == 0 || from == to) return;
  const std::size_t f = cause_index(from);
  const std::size_t t = cause_index(to);
  const std::size_t s = stage_index(stage);
  std::lock_guard<std::mutex> lock(mutex_);
  cause_bytes_[f] -= bytes.count();
  cause_bytes_[t] += bytes.count();
  stage_cause_bytes_[s][f] -= bytes.count();
  stage_cause_bytes_[s][t] += bytes.count();
  const auto it = samples_.find(sample_id);
  if (it != samples_.end()) {
    it->second.cause_bytes[f] -= bytes.count();
    it->second.cause_bytes[t] += bytes.count();
  }
}

std::int64_t TrafficLedger::total_locked() const {
  std::int64_t sum = 0;
  for (const auto bytes : cause_bytes_) sum += bytes;
  return sum;
}

Bytes TrafficLedger::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Bytes(total_locked());
}

Bytes TrafficLedger::total(TrafficCause cause) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Bytes(cause_bytes_[cause_index(cause)]);
}

Bytes TrafficLedger::total(TrafficCause cause, std::uint8_t stage) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Bytes(stage_cause_bytes_[stage_index(stage)][cause_index(cause)]);
}

std::uint64_t TrafficLedger::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

void TrafficLedger::note_plan_forecast(std::uint64_t generation, Bytes baseline,
                                       Bytes predicted) {
  std::lock_guard<std::mutex> lock(mutex_);
  forecasts_[generation] = {baseline.count(), predicted.count()};
  // Bounded like everything else: forecasts for long-dead generations go.
  while (forecasts_.size() > kMaxEpochRows) forecasts_.erase(forecasts_.begin());
}

LedgerReconciliation TrafficLedger::end_epoch(std::uint64_t epoch, Bytes epoch_link_bytes,
                                              std::uint64_t plan_generation) {
  std::lock_guard<std::mutex> lock(mutex_);
  LedgerEpochRow row;
  row.epoch = epoch;
  row.plan_generation = plan_generation;
  std::int64_t attributed = 0;
  for (std::size_t c = 0; c < kTrafficCauseCount; ++c) {
    row.cause_bytes[c] = cause_bytes_[c] - epoch_snapshot_[c];
    attributed += row.cause_bytes[c];
    epoch_snapshot_[c] = cause_bytes_[c];
  }
  row.link_bytes = epoch_link_bytes.count();
  row.attributed_bytes = attributed;
  row.unattributed_bytes = epoch_link_bytes.count() - attributed;
  const auto forecast = forecasts_.find(plan_generation);
  if (forecast != forecasts_.end()) {
    row.baseline_bytes = forecast->second.first;
    row.predicted_bytes = forecast->second.second;
  }
  link_total_ += epoch_link_bytes.count();
  unattributed_ += row.unattributed_bytes;
  if (epochs_.size() >= kMaxEpochRows) epochs_.erase(epochs_.begin());
  epochs_.push_back(row);
  publish_locked();
  return LedgerReconciliation{attributed, row.link_bytes, row.unattributed_bytes};
}

LedgerReconciliation TrafficLedger::reconcile(Bytes cumulative_link_bytes) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::int64_t ledger = total_locked();
  return LedgerReconciliation{ledger, cumulative_link_bytes.count(),
                              cumulative_link_bytes.count() - ledger};
}

void TrafficLedger::publish_locked() {
  if (options_.metrics == nullptr) return;
  for (std::size_t c = 0; c < kTrafficCauseCount; ++c) {
    options_.metrics->gauge(kCauseMetricNames[c]).set(static_cast<double>(cause_bytes_[c]));
  }
  options_.metrics->gauge("sophon_ledger_attributed_bytes")
      .set(static_cast<double>(total_locked()));
  // Absolute value: over-attribution (negative residue) is the same class
  // of bug as unattributed bytes and must trip the same health rule.
  options_.metrics->gauge("sophon_ledger_unattributed_bytes")
      .set(static_cast<double>(std::llabs(unattributed_)));
  options_.metrics->counter("sophon_ledger_records")
      .increment(records_ - records_published_);
  records_published_ = records_;
}

void TrafficLedger::publish_metrics() {
  std::lock_guard<std::mutex> lock(mutex_);
  publish_locked();
}

LedgerExport TrafficLedger::export_state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  LedgerExport out;
  out.records = records_;
  out.unattributed_bytes = unattributed_;
  out.cause_bytes = cause_bytes_;
  out.stage_cause_bytes = stage_cause_bytes_;
  out.epochs = epochs_;
  for (const auto& [sample_id, entry] : samples_) {
    LedgerTopSample sample;
    sample.sample_id = sample_id;
    sample.bytes = entry.bytes;
    sample.cause_bytes = entry.cause_bytes;
    out.top_samples.push_back(sample);
  }
  // Tie-break on id: the backing table is unordered, the export must not be.
  std::sort(out.top_samples.begin(), out.top_samples.end(),
            [](const LedgerTopSample& a, const LedgerTopSample& b) {
              return a.bytes != b.bytes ? a.bytes > b.bytes : a.sample_id < b.sample_id;
            });
  if (out.top_samples.size() > options_.top_k) out.top_samples.resize(options_.top_k);
  return out;
}

Json TrafficLedger::to_json() const { return export_state().to_json(); }

}  // namespace sophon::obs
