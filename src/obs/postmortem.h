// Postmortem dump: a crashed run leaves the same evidence a finished one
// does.
//
// postmortem_json() folds whatever telemetry surfaces exist — the metric
// registry's final snapshot, the flight recorder's rings, the health
// evaluator's rule states, and the tracer's most recent spans — into one
// JSON document; write_postmortem() lands it on disk.
//
// PostmortemGuard wires that to process death. Deliberate kills (SIGTERM,
// SIGINT) are *deferred*: the handler only stores the signal number in an
// atomic, the run loop polls stop_signal() at epoch boundaries and unwinds
// normally, and the caller writes the dump from ordinary code — fully
// async-signal-safe. Crashes (SIGSEGV, SIGABRT) cannot wait for a boundary,
// so the handler writes the dump immediately, best-effort — the locks and
// allocation it takes are not signal-safe, but the alternative is no
// evidence at all — then restores the default disposition and re-raises so
// the exit status still reports the crash.
//
// One guard may be live at a time (the handlers need a process-global).
#pragma once

#include <atomic>
#include <csignal>
#include <cstddef>
#include <string>

#include "util/json.h"
#include "util/telemetry.h"

namespace sophon::obs {

class FlightRecorder;
class HealthEvaluator;
class Tracer;
class TrafficLedger;

/// Which surfaces feed the dump; any pointer may be null.
struct PostmortemSources {
  MetricsRegistry* metrics = nullptr;
  FlightRecorder* recorder = nullptr;
  HealthEvaluator* health = nullptr;
  /// Drained best-effort at dump time (quiescence is not guaranteed when
  /// crashing; see file comment).
  Tracer* tracer = nullptr;
  /// Per-cause traffic attribution; its export rides the dump under
  /// "traffic_ledger" so a crash still explains where the bytes went.
  TrafficLedger* ledger = nullptr;
  /// Most recent spans kept in the dump.
  std::size_t max_spans = 512;
};

/// `{"kind": "sophon.postmortem", "reason": ..., "metrics": ...,
/// "health": ..., "timeseries": ..., "spans": [...]}`.
[[nodiscard]] Json postmortem_json(const PostmortemSources& sources, const std::string& reason);

/// Write postmortem_json() to `path` (pretty-printed). Returns false on I/O
/// failure.
bool write_postmortem(const std::string& path, const PostmortemSources& sources,
                      const std::string& reason);

class PostmortemGuard {
 public:
  /// Installs handlers for SIGTERM/SIGINT (deferred) and SIGSEGV/SIGABRT
  /// (immediate dump to `path`, then re-raise).
  PostmortemGuard(std::string path, PostmortemSources sources);
  /// Restores the previous handlers.
  ~PostmortemGuard();
  PostmortemGuard(const PostmortemGuard&) = delete;
  PostmortemGuard& operator=(const PostmortemGuard&) = delete;

  /// Last deferred signal number (SIGTERM/SIGINT), 0 if none yet. Poll this
  /// from the run loop (RunOptions::stop_signal points here).
  [[nodiscard]] const std::atomic<int>& stop_signal() const { return stop_signal_; }

  /// Write the dump now, from normal (non-handler) context.
  bool dump(const std::string& reason) const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static void on_deferred_signal(int signum);
  static void on_fatal_signal(int signum);

  std::string path_;
  PostmortemSources sources_;
  std::atomic<int> stop_signal_{0};
  struct sigaction previous_[4] = {};
};

}  // namespace sophon::obs
