#include "obs/health.h"

#include <algorithm>
#include <utility>

namespace sophon::obs {

std::string_view health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kWarn:
      return "warn";
    case HealthState::kCrit:
      return "crit";
  }
  return "unknown";
}

namespace {

double counter_of(const MetricsSnapshot& snap, const char* name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0.0 : static_cast<double>(it->second);
}

double gauge_of(const MetricsSnapshot& snap, const char* name) {
  const auto it = snap.gauges.find(name);
  return it == snap.gauges.end() ? 0.0 : it->second;
}

HealthState grade(const HealthRule& rule, double value) {
  if (value >= rule.crit) return HealthState::kCrit;
  if (value >= rule.warn) return HealthState::kWarn;
  return HealthState::kOk;
}

}  // namespace

HealthEvaluator::HealthEvaluator(std::vector<HealthRule> rules) {
  entries_.reserve(rules.size());
  for (auto& rule : rules) entries_.push_back(Entry{std::move(rule), RuleStatus{}});
}

HealthState HealthEvaluator::evaluate(const MetricsSnapshot& total, Seconds interval) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const MetricsSnapshot delta = snapshot_delta(total, last_);
  const HealthSample sample{delta, total, interval};
  HealthState worst = HealthState::kOk;
  for (Entry& entry : entries_) {
    RuleStatus& status = entry.status;
    status.value = entry.rule.value ? entry.rule.value(sample) : 0.0;
    const HealthState graded = grade(entry.rule, status.value);
    if (graded >= status.state) {
      // Escalation (or holding steady) is immediate.
      if (graded != status.state) ++status.transitions;
      status.state = graded;
      status.below_streak = 0;
    } else if (++status.below_streak >= entry.rule.hold) {
      // De-escalation waits out `hold` consecutive calmer evaluations.
      status.state = graded;
      status.below_streak = 0;
      ++status.transitions;
    }
    worst = std::max(worst, status.state);
  }
  last_ = total;
  ++evaluations_;
  return worst;
}

HealthState HealthEvaluator::overall() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  HealthState worst = HealthState::kOk;
  for (const Entry& entry : entries_) worst = std::max(worst, entry.status.state);
  return worst;
}

std::size_t HealthEvaluator::evaluations() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evaluations_;
}

RuleStatus HealthEvaluator::status(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_) {
    if (entry.rule.name == name) return entry.status;
  }
  return RuleStatus{};
}

Json HealthEvaluator::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  HealthState worst = HealthState::kOk;
  for (const Entry& entry : entries_) worst = std::max(worst, entry.status.state);

  Json doc = Json::object();
  doc.set("kind", "sophon.health");
  doc.set("version", 1);
  doc.set("overall", std::string(health_state_name(worst)));
  doc.set("evaluations", static_cast<std::int64_t>(evaluations_));
  Json rules = Json::array();
  for (const Entry& entry : entries_) {
    Json one = Json::object();
    one.set("name", entry.rule.name);
    one.set("state", std::string(health_state_name(entry.status.state)));
    one.set("value", entry.status.value);
    one.set("warn", entry.rule.warn);
    one.set("crit", entry.rule.crit);
    one.set("transitions", static_cast<std::int64_t>(entry.status.transitions));
    one.set("help", entry.rule.help);
    rules.push_back(std::move(one));
  }
  doc.set("rules", std::move(rules));
  return doc;
}

std::vector<HealthRule> default_health_rules() {
  std::vector<HealthRule> rules;

  HealthRule stall;
  stall.name = "fetch_stall_fraction";
  stall.help = "Fraction of the last epoch spent stalled on data fetch";
  stall.warn = 0.5;
  stall.crit = 0.8;
  stall.value = [](const HealthSample& s) {
    return gauge_of(s.total, "sophon_epoch_fetch_stall_fraction");
  };
  rules.push_back(std::move(stall));

  HealthRule corrupt;
  corrupt.name = "shard_corrupt_rate";
  corrupt.help = "Corrupt reads per read across shard, fetch, and disk paths";
  corrupt.warn = 0.01;
  corrupt.crit = 0.05;
  corrupt.value = [](const HealthSample& s) {
    const double reads = counter_of(s.delta, "sophon_shard_hit") +
                         counter_of(s.delta, "sophon_shard_miss") +
                         counter_of(s.delta, "sophon_fetch_attempts");
    if (reads <= 0.0) return 0.0;
    const double corrupt_reads = counter_of(s.delta, "sophon_shard_corrupt") +
                                 counter_of(s.delta, "sophon_fetch_corrupt") +
                                 counter_of(s.delta, "sophon_diskstore_corrupt");
    return corrupt_reads / reads;
  };
  rules.push_back(std::move(corrupt));

  HealthRule thrash;
  thrash.name = "replan_thrash";
  thrash.help = "Accepted re-plans per drift check in the interval";
  thrash.warn = 0.5;
  thrash.crit = 0.8;
  thrash.value = [](const HealthSample& s) {
    const double checks = counter_of(s.delta, "sophon_replan_checks");
    if (checks <= 0.0) return 0.0;
    return counter_of(s.delta, "sophon_replan_triggered") / checks;
  };
  rules.push_back(std::move(thrash));

  HealthRule highwater;
  highwater.name = "staging_buffer_highwater";
  highwater.help = "Staging-buffer byte high-water mark over its budget";
  highwater.warn = 0.9;
  highwater.crit = 1.0;
  highwater.value = [](const HealthSample& s) {
    const double budget = gauge_of(s.total, "sophon_prefetch_buffer_budget_bytes");
    if (budget <= 0.0) return 0.0;
    return gauge_of(s.total, "sophon_prefetch_buffer_highwater_bytes") / budget;
  };
  rules.push_back(std::move(highwater));

  HealthRule ledger;
  ledger.name = "ledger_unattributed";
  ledger.help = "Bytes the traffic ledger could not attribute to any cause";
  ledger.warn = 1.0;               // any gap at all is a books-don't-balance bug
  ledger.crit = 1024.0 * 1024.0;   // a MiB of drift means attribution is broken
  ledger.value = [](const HealthSample& s) {
    return gauge_of(s.total, "sophon_ledger_unattributed_bytes");
  };
  rules.push_back(std::move(ledger));

  HealthRule migrated;
  migrated.name = "bottleneck_migrated";
  migrated.help = "Critical-path bottleneck migrations in the interval";
  migrated.warn = 1.0;  // one handoff is worth a look (did a replan cause it?)
  migrated.crit = 3.0;  // repeated handoffs mean the system is oscillating
  migrated.value = [](const HealthSample& s) {
    return counter_of(s.delta, "sophon_critpath_bottleneck_migrations");
  };
  rules.push_back(std::move(migrated));

  HealthRule link;
  link.name = "link_utilization";
  link.help = "Storage link busy fraction over the last epoch";
  link.warn = 0.9;
  link.crit = 0.98;
  link.value = [](const HealthSample& s) {
    return gauge_of(s.total, "sophon_epoch_link_utilization");
  };
  rules.push_back(std::move(link));

  return rules;
}

}  // namespace sophon::obs
