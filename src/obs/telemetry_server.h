// Embedded telemetry endpoint: the smallest HTTP server that can serve a
// Prometheus scrape.
//
// One listener thread, one connection at a time, HTTP/1.0 with
// `Connection: close` — a scrape is a single short-lived GET, and an
// in-process observability port must never compete with the run for
// resources or correctness risk. Three routes:
//
//   /metrics     the registry's Prometheus text exposition (the same
//                golden-locked format tests pin)
//   /healthz     the HealthEvaluator's JSON document; HTTP 503 while the
//                overall state is CRIT so off-the-shelf probes work
//   /timeseries  the FlightRecorder's JSON ring dump
//
// Binds 127.0.0.1 only. `port = 0` asks the kernel for an ephemeral port
// (tests); port() reports the bound one. request() answers a path without a
// socket, so route behavior is unit-testable and the live server is only
// exercised end-to-end where a test really wants the wire.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "util/telemetry.h"

namespace sophon::obs {

class FlightRecorder;
class HealthEvaluator;

struct TelemetryServerOptions {
  std::uint16_t port = 0;  ///< 0 = kernel-assigned ephemeral port
};

class TelemetryServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type;
    std::string body;
  };

  /// `recorder` and `health` are optional; when set they must outlive the
  /// server. Routes for absent components return 404.
  TelemetryServer(MetricsRegistry& registry, FlightRecorder* recorder, HealthEvaluator* health,
                  TelemetryServerOptions options = {});
  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Bind, listen, and spawn the listener thread. Returns false (with
  /// error() set) when the port cannot be bound; the run proceeds without
  /// telemetry rather than dying.
  bool start();
  void stop();

  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }
  /// Bound port; 0 before a successful start().
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Answer `path` exactly as the wire would (status/route logic, fresh
  /// body). Safe from any thread.
  [[nodiscard]] Response request(const std::string& path) const;

  /// Total requests answered over the socket (scrape liveness for tests).
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void serve();
  void handle_connection(int client_fd);

  MetricsRegistry& registry_;
  FlightRecorder* recorder_;
  HealthEvaluator* health_;
  TelemetryServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::string error_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::thread thread_;
};

}  // namespace sophon::obs
