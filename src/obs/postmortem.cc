#include "obs/postmortem.h"

#include <fstream>

#include "obs/health.h"
#include "obs/ledger.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace sophon::obs {

namespace {

Json dist_json(const MetricsSnapshot::Dist& dist) {
  Json one = Json::object();
  one.set("count", static_cast<std::int64_t>(dist.count));
  one.set("sum", dist.sum);
  return one;
}

Json snapshot_json(const MetricsSnapshot& snap) {
  Json doc = Json::object();
  Json counters = Json::object();
  for (const auto& [name, value] : snap.counters) {
    counters.set(name, static_cast<std::int64_t>(value));
  }
  doc.set("counters", std::move(counters));
  Json gauges = Json::object();
  for (const auto& [name, value] : snap.gauges) gauges.set(name, value);
  doc.set("gauges", std::move(gauges));
  Json durations = Json::object();
  for (const auto& [name, dist] : snap.durations) durations.set(name, dist_json(dist));
  doc.set("durations", std::move(durations));
  Json histograms = Json::object();
  for (const auto& [name, dist] : snap.histograms) histograms.set(name, dist_json(dist));
  doc.set("histograms", std::move(histograms));
  return doc;
}

/// The one live guard; the C signal handler has no closure to carry state.
std::atomic<PostmortemGuard*> g_active_guard{nullptr};

}  // namespace

Json postmortem_json(const PostmortemSources& sources, const std::string& reason) {
  Json doc = Json::object();
  doc.set("kind", "sophon.postmortem");
  doc.set("version", 1);
  doc.set("reason", reason);
  if (sources.metrics != nullptr) doc.set("metrics", snapshot_json(sources.metrics->snapshot()));
  if (sources.health != nullptr) doc.set("health", sources.health->to_json());
  if (sources.recorder != nullptr) doc.set("timeseries", sources.recorder->to_json());
  if (sources.ledger != nullptr) doc.set("traffic_ledger", sources.ledger->to_json());
  if (sources.tracer != nullptr) {
    const std::vector<SpanEvent> all = sources.tracer->drain();
    const std::size_t keep = std::min(sources.max_spans, all.size());
    Json spans = Json::array();
    for (std::size_t i = all.size() - keep; i < all.size(); ++i) {
      const SpanEvent& span = all[i];
      Json one = Json::object();
      one.set("name", std::string(span.name));
      one.set("cat", std::string(span_category_name(span.category)));
      one.set("tb", span.virtual_time ? "virtual" : "steady");
      one.set("track", static_cast<std::int64_t>(span.track));
      one.set("begin_ns", static_cast<std::int64_t>(span.begin_ns));
      one.set("end_ns", static_cast<std::int64_t>(span.end_ns));
      spans.push_back(std::move(one));
    }
    doc.set("spans", std::move(spans));
    doc.set("spans_dropped", static_cast<std::int64_t>(all.size() - keep));
  }
  return doc;
}

bool write_postmortem(const std::string& path, const PostmortemSources& sources,
                      const std::string& reason) {
  std::ofstream out(path);
  if (!out) return false;
  out << postmortem_json(sources, reason).dump(2) << '\n';
  return static_cast<bool>(out);
}

PostmortemGuard::PostmortemGuard(std::string path, PostmortemSources sources)
    : path_(std::move(path)), sources_(sources) {
  PostmortemGuard* expected = nullptr;
  if (!g_active_guard.compare_exchange_strong(expected, this)) {
    return;  // another guard is live; this one stays inert
  }
  struct sigaction deferred{};
  deferred.sa_handler = &PostmortemGuard::on_deferred_signal;
  sigemptyset(&deferred.sa_mask);
  ::sigaction(SIGTERM, &deferred, &previous_[0]);
  ::sigaction(SIGINT, &deferred, &previous_[1]);

  struct sigaction fatal{};
  fatal.sa_handler = &PostmortemGuard::on_fatal_signal;
  sigemptyset(&fatal.sa_mask);
  fatal.sa_flags = SA_RESETHAND;  // second fault dies the default way
  ::sigaction(SIGSEGV, &fatal, &previous_[2]);
  ::sigaction(SIGABRT, &fatal, &previous_[3]);
}

PostmortemGuard::~PostmortemGuard() {
  PostmortemGuard* expected = this;
  if (!g_active_guard.compare_exchange_strong(expected, nullptr)) return;
  ::sigaction(SIGTERM, &previous_[0], nullptr);
  ::sigaction(SIGINT, &previous_[1], nullptr);
  ::sigaction(SIGSEGV, &previous_[2], nullptr);
  ::sigaction(SIGABRT, &previous_[3], nullptr);
}

bool PostmortemGuard::dump(const std::string& reason) const {
  return write_postmortem(path_, sources_, reason);
}

void PostmortemGuard::on_deferred_signal(int signum) {
  PostmortemGuard* guard = g_active_guard.load(std::memory_order_acquire);
  if (guard != nullptr) guard->stop_signal_.store(signum, std::memory_order_release);
}

void PostmortemGuard::on_fatal_signal(int signum) {
  PostmortemGuard* guard = g_active_guard.load(std::memory_order_acquire);
  if (guard != nullptr) {
    // Not async-signal-safe; best effort on the way down (see header).
    guard->dump(std::string("fatal signal ") + std::to_string(signum));
  }
  ::raise(signum);  // SA_RESETHAND restored the default disposition
}

}  // namespace sophon::obs
