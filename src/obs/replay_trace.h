// Builds worker-lane spans from a prefetch-replay sample timeline.
//
// The discrete-event replay (prefetch::replay_epoch) already computes every
// per-sample timestamp — claim, issue, storage done, arrival, ready — but
// emits them as flat sim::SampleTimeline rows. This builder translates each
// row into the same span vocabulary the threaded loader records live, on
// virtual-time tracks: a demand fetch becomes a kFetch stall on the
// consuming worker's lane, a late prefetch hit a kStagingWait, and the
// compute window a kPreprocess parent subdivided into per-op child spans
// using the pipeline's analytic costs (supplied by the caller, since the
// replay itself only knows the summed compute cost). Storage-side prefix
// executions are laid out greedily onto "storage-N" lanes so spans within a
// lane never overlap and self-time folding stays exact.
//
// The result is one coherent Chrome trace — worker lanes, storage lanes,
// plus the "link"/"gpu" tracks the simulation components record directly —
// that EpochReport can fold into the stall attribution.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "sim/trace.h"
#include "util/units.h"

namespace sophon::obs {

/// Per-sample cost detail the timeline rows lack, in execution order.
struct SampleOpCosts {
  /// Compute-side (suffix) pipeline ops: (op name, analytic cost).
  std::vector<std::pair<std::string, Seconds>> compute_ops;
  /// Storage-side prefix cost (zero when the sample was fetched raw).
  Seconds storage_prefix;
  /// Offload prefix depth of the directive (-1 = unknown).
  std::int32_t prefix = -1;
};

/// Maps a catalog sample id to its cost detail.
using SampleCostFn = std::function<SampleOpCosts(std::uint32_t sample_index)>;

/// Record spans for every timeline row onto `tracer` (virtual time). Rows
/// without a worker lane (worker < 0) are skipped. `costs` may be empty, in
/// which case preprocess spans are emitted whole, without per-op children,
/// and no storage lanes are laid out.
///
/// Returns the causal flow arrows for the trace: one per prefetched sample
/// (issue on the "prefetch" track -> claim on the consuming worker's lane;
/// ids are position + 1) and one per retried demand fetch (end of the retry
/// backoff -> the successful fetch's completion; ids are position + 2^32).
/// Pass them to the three-argument chrome_trace_json to render the arrows.
std::vector<TraceFlow> build_replay_trace(const std::vector<sim::SampleTimeline>& rows,
                                          const SampleCostFn& costs, Tracer& tracer);

}  // namespace sophon::obs
