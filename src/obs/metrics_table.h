// The pre-registered metric table: every `sophon_*` name the system emits.
//
// PR 3 fixed, by hand, a class of drift where an instrumentation point
// invented a metric name that no dashboard, doc, or pre-registration knew
// about. This table is the fix made structural: each subsystem's metric
// names are declared here once with their kind and help text, the drift
// test (tests/obs_metrics_table_test.cc) runs a full simulation — prefetch,
// shard serving, adaptation, faults — and asserts every name the registry
// ends up holding appears here. Adding an instrumentation point without a
// table row fails that test; adding a table row without a kind match fails
// its twin.
//
// Bench-local names (`sophon_bench_*`) and tool-local timers are exempt by
// convention: the table covers the library's operational surface, the one
// the telemetry plane serves and operators alert on.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "util/telemetry.h"

namespace sophon::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kDuration, kHistogram };

[[nodiscard]] std::string_view metric_kind_name(MetricKind kind);

struct MetricInfo {
  const char* name;
  MetricKind kind;
  const char* help;
};

/// Every operational metric, sorted by name.
[[nodiscard]] std::span<const MetricInfo> known_metrics();

/// Table row for `name`, or nullptr.
[[nodiscard]] const MetricInfo* find_metric(std::string_view name);

/// Instantiate every table entry in `registry` at its zero value with its
/// help text — the "scrapes list the full vocabulary before any activity"
/// convention, extended to the whole table. Used by the telemetry plane so
/// a freshly started run's /metrics already shows every family.
void register_known_metrics(MetricsRegistry& registry);

/// The epoch-level set fed by core::adapt::run_adaptive's telemetry hooks
/// (a subset of the table; pre-registered separately so library users who
/// never touch the full table still get explicit zeros).
void register_epoch_metrics(MetricsRegistry& registry);

}  // namespace sophon::obs
