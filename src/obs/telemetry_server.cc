#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "obs/health.h"
#include "obs/timeseries.h"

namespace sophon::obs {

namespace {

constexpr int kPollIntervalMs = 200;
constexpr std::size_t kMaxRequestBytes = 4096;

std::string_view status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

}  // namespace

TelemetryServer::TelemetryServer(MetricsRegistry& registry, FlightRecorder* recorder,
                                 HealthEvaluator* health, TelemetryServerOptions options)
    : registry_(registry), recorder_(recorder), health_(health), options_(options) {}

TelemetryServer::~TelemetryServer() { stop(); }

bool TelemetryServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    error_ = std::string("bind/listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
  return true;
}

void TelemetryServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TelemetryServer::serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) continue;  // timeout (re-check running_) or transient error
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void TelemetryServer::handle_connection(int client_fd) {
  // A scrape request is tiny; read until the header terminator, a short
  // poll timeout, or the size cap — whichever first.
  std::string raw;
  while (raw.size() < kMaxRequestBytes && raw.find("\r\n\r\n") == std::string::npos) {
    pollfd pfd{};
    pfd.fd = client_fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, kPollIntervalMs) <= 0) break;
    char buffer[1024];
    const ssize_t n = ::recv(client_fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    raw.append(buffer, static_cast<std::size_t>(n));
  }

  std::string path = "/";
  std::istringstream line(raw.substr(0, raw.find("\r\n")));
  std::string method;
  line >> method >> path;

  const Response response = request(path);
  std::ostringstream out;
  out << "HTTP/1.0 " << response.status << ' ' << status_text(response.status) << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << response.body;
  const std::string wire = out.str();
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(client_fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

TelemetryServer::Response TelemetryServer::request(const std::string& path) const {
  Response response;
  if (path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = registry_.expose();
    return response;
  }
  if (path == "/healthz" && health_ != nullptr) {
    response.content_type = "application/json";
    response.body = health_->to_json().dump(2);
    response.body.push_back('\n');
    if (health_->overall() == HealthState::kCrit) response.status = 503;
    return response;
  }
  if (path == "/timeseries" && recorder_ != nullptr) {
    response.content_type = "application/json";
    response.body = recorder_->to_json().dump(2);
    response.body.push_back('\n');
    return response;
  }
  response.status = 404;
  response.content_type = "text/plain; charset=utf-8";
  response.body = "not found: " + path + "\n";
  return response;
}

}  // namespace sophon::obs
