#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace sophon::obs {

namespace {

constexpr double kNs = 1e-9;

bool is_worker_label(std::string_view label) { return label.rfind("worker", 0) == 0; }

/// Self time per category for one track: spans sorted by (begin asc, end
/// desc) form a properly nested forest (RAII guards guarantee nesting
/// within a thread); a span's self time is its duration minus its direct
/// children's durations.
std::map<SpanCategory, double> fold_track(std::vector<const SpanEvent*>& spans) {
  std::sort(spans.begin(), spans.end(), [](const SpanEvent* a, const SpanEvent* b) {
    if (a->begin_ns != b->begin_ns) return a->begin_ns < b->begin_ns;
    return a->end_ns > b->end_ns;
  });
  std::map<SpanCategory, double> self_ns;
  struct Frame {
    const SpanEvent* span;
    double children_ns;
  };
  std::vector<Frame> stack;
  const auto close_until = [&](std::uint64_t begin_ns) {
    while (!stack.empty() && stack.back().span->end_ns <= begin_ns) {
      const Frame frame = stack.back();
      stack.pop_back();
      const double duration =
          static_cast<double>(frame.span->end_ns - frame.span->begin_ns);
      self_ns[frame.span->category] += std::max(0.0, duration - frame.children_ns);
      if (!stack.empty()) stack.back().children_ns += duration;
    }
  };
  for (const SpanEvent* span : spans) {
    close_until(span->begin_ns);
    stack.push_back(Frame{span, 0.0});
  }
  close_until(~std::uint64_t{0});
  return self_ns;
}

std::string fmt_seconds(Seconds s) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f s", s.value());
  return buffer;
}

}  // namespace

EpochReport EpochReport::build(
    const std::vector<SpanEvent>& spans,
    const std::vector<std::pair<std::uint32_t, std::string>>& labels, Seconds wall) {
  EpochReport report;
  report.wall_ = wall;

  std::map<std::uint32_t, std::string> label_of(labels.begin(), labels.end());
  std::map<std::uint32_t, std::vector<const SpanEvent*>> by_track;
  std::int64_t transfer_bytes = 0;
  for (const auto& span : spans) {
    by_track[span.track].push_back(&span);
    if (span.category == SpanCategory::kTransfer && span.args.bytes >= 0) {
      transfer_bytes += span.args.bytes;
    }
  }
  report.transfer_bytes_ = Bytes(transfer_bytes);

  double transfer_ns = 0.0;
  double gpu_ns = 0.0;
  double storage_ns = 0.0;
  for (auto& [track, track_spans] : by_track) {
    const auto it = label_of.find(track);
    const std::string label =
        it != label_of.end() ? it->second : "track-" + std::to_string(track);
    auto self_ns = fold_track(track_spans);
    // Storage-side prefix work is t_cs wherever it ran (a loopback fetch
    // executes it on the calling worker's thread).
    storage_ns += self_ns[SpanCategory::kStoragePrep];
    if (is_worker_label(label)) {
      WorkerBreakdown row;
      row.track = track;
      row.label = label;
      row.fetch_stall = Seconds(self_ns[SpanCategory::kFetch] * kNs);
      row.staging_wait = Seconds(self_ns[SpanCategory::kStagingWait] * kNs);
      row.preprocess = Seconds(self_ns[SpanCategory::kPreprocess] * kNs);
      row.collate = Seconds(self_ns[SpanCategory::kCollate] * kNs);
      row.retry = Seconds(self_ns[SpanCategory::kRetry] * kNs);
      row.other = Seconds((self_ns[SpanCategory::kOther] + self_ns[SpanCategory::kGpu]) * kNs);
      row.idle = Seconds(std::max(0.0, (wall - row.accounted()).value()));
      row.spans = track_spans.size();
      report.workers_.push_back(std::move(row));
    } else {
      transfer_ns += self_ns[SpanCategory::kTransfer];
      gpu_ns += self_ns[SpanCategory::kGpu];
    }
  }
  std::sort(report.workers_.begin(), report.workers_.end(),
            [](const WorkerBreakdown& a, const WorkerBreakdown& b) { return a.label < b.label; });
  report.transfer_busy_ = Seconds(transfer_ns * kNs);
  report.gpu_busy_ = Seconds(gpu_ns * kNs);
  report.storage_busy_ = Seconds(storage_ns * kNs);
  return report;
}

Seconds EpochReport::total_fetch_stall() const {
  Seconds total;
  for (const auto& w : workers_) total += w.fetch_stall;
  return total;
}

Seconds EpochReport::total_staging_wait() const {
  Seconds total;
  for (const auto& w : workers_) total += w.staging_wait;
  return total;
}

Seconds EpochReport::total_preprocess() const {
  Seconds total;
  for (const auto& w : workers_) total += w.preprocess;
  return total;
}

Seconds EpochReport::total_retry() const {
  Seconds total;
  for (const auto& w : workers_) total += w.retry;
  return total;
}

EpochReport::Costs EpochReport::observed() const {
  Costs costs;
  costs.t_g = gpu_busy_;
  costs.t_cc = workers_.empty()
                   ? total_preprocess()
                   : total_preprocess() / static_cast<double>(workers_.size());
  costs.t_cs = storage_busy_;
  costs.t_net = transfer_busy_;
  return costs;
}

std::string_view EpochReport::bottleneck_of(const Costs& costs) {
  const Seconds top = std::max({costs.t_g, costs.t_cc, costs.t_cs, costs.t_net});
  if (top == costs.t_net) return "net";
  if (top == costs.t_g) return "gpu";
  if (top == costs.t_cs) return "storage-cpu";
  return "cpu";
}

std::string_view EpochReport::observed_bottleneck() const { return bottleneck_of(observed()); }

void EpochReport::set_predicted(const Costs& predicted) {
  predicted_ = predicted;
  has_predicted_ = true;
}

std::string EpochReport::render() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "epoch stall attribution (wall %.3f s, %zu workers)\n",
                wall_.value(), workers_.size());
  out += line;
  std::snprintf(line, sizeof(line), "  %-10s %12s %13s %12s %9s %9s %9s %6s\n", "worker",
                "fetch-stall", "staging-wait", "preprocess", "collate", "retry", "idle", "spans");
  out += line;
  for (const auto& w : workers_) {
    std::snprintf(line, sizeof(line),
                  "  %-10s %12s %13s %12s %9s %9s %9s %6llu\n", w.label.c_str(),
                  fmt_seconds(w.fetch_stall).c_str(), fmt_seconds(w.staging_wait).c_str(),
                  fmt_seconds(w.preprocess).c_str(), fmt_seconds(w.collate).c_str(),
                  fmt_seconds(w.retry).c_str(), fmt_seconds(w.idle).c_str(),
                  static_cast<unsigned long long>(w.spans));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  link busy %.3f s | storage prefix %.3f s | gpu busy %.3f s\n",
                transfer_busy_.value(), storage_busy_.value(), gpu_busy_.value());
  out += line;
  if (has_predicted_) {
    const Costs obs = observed();
    out += "predicted vs observed cost vector:\n";
    const auto row = [&](const char* name, Seconds p, Seconds o) {
      const double delta =
          p.value() > 0.0 ? 100.0 * (o.value() - p.value()) / p.value() : 0.0;
      std::snprintf(line, sizeof(line), "  %-6s %10.3f s %10.3f s %+8.1f%%\n", name, p.value(),
                    o.value(), delta);
      out += line;
    };
    row("T_G", predicted_.t_g, obs.t_g);
    row("T_CC", predicted_.t_cc, obs.t_cc);
    row("T_CS", predicted_.t_cs, obs.t_cs);
    row("T_Net", predicted_.t_net, obs.t_net);
    const std::string_view predicted_b = bottleneck_of(predicted_);
    const std::string_view observed_b = observed_bottleneck();
    std::snprintf(line, sizeof(line), "  bottleneck: predicted %s, observed %s — %s\n",
                  std::string(predicted_b).c_str(), std::string(observed_b).c_str(),
                  predicted_b == observed_b ? "agreement" : "DIVERGENCE");
    out += line;
  }
  return out;
}

Json EpochReport::to_json() const {
  Json doc = Json::object();
  doc.set("kind", "sophon.epoch_report");
  doc.set("version", 1);
  doc.set("wall_seconds", wall_.value());
  Json workers = Json::array();
  for (const auto& w : workers_) {
    Json row = Json::object();
    row.set("label", w.label);
    row.set("fetch_stall_seconds", w.fetch_stall.value());
    row.set("staging_wait_seconds", w.staging_wait.value());
    row.set("preprocess_seconds", w.preprocess.value());
    row.set("collate_seconds", w.collate.value());
    row.set("retry_seconds", w.retry.value());
    row.set("other_seconds", w.other.value());
    row.set("idle_seconds", w.idle.value());
    row.set("spans", static_cast<std::int64_t>(w.spans));
    workers.push_back(std::move(row));
  }
  doc.set("workers", std::move(workers));
  doc.set("link_busy_seconds", transfer_busy_.value());
  doc.set("link_bytes", static_cast<std::int64_t>(transfer_bytes_.count()));
  doc.set("storage_prefix_seconds", storage_busy_.value());
  doc.set("gpu_busy_seconds", gpu_busy_.value());
  const auto costs_json = [](const Costs& costs) {
    Json c = Json::object();
    c.set("t_g", costs.t_g.value());
    c.set("t_cc", costs.t_cc.value());
    c.set("t_cs", costs.t_cs.value());
    c.set("t_net", costs.t_net.value());
    c.set("bottleneck", std::string(bottleneck_of(costs)));
    return c;
  };
  doc.set("observed", costs_json(observed()));
  if (has_predicted_) doc.set("predicted", costs_json(predicted_));
  return doc;
}

}  // namespace sophon::obs
