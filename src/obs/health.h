// Health/SLO evaluator: declarative rules over the live metric stream.
//
// A rule maps one evaluation interval's metrics (the delta since the last
// evaluation plus the cumulative totals) to a scalar, then grades it against
// WARN/CRIT thresholds. Escalation is immediate — a link that just
// saturated should page now — but de-escalation requires `hold` consecutive
// intervals below the threshold, so a flapping link does not flap the
// status (the hysteresis twin of the replanner's cooldown).
//
// The default rule set covers the failure modes the rest of the system
// already counts: fetch-stall fraction, shard corrupt rate, re-plan thrash,
// staging-buffer high-water, and link utilization. All of them read metric
// names from obs/metrics_table.h, so the drift test keeps rules and emitters
// in sync.
//
// Thread-safe: evaluate() (run thread) and to_json()/overall() (telemetry
// server thread) may interleave.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"
#include "util/telemetry.h"
#include "util/units.h"

namespace sophon::obs {

enum class HealthState : std::uint8_t { kOk = 0, kWarn = 1, kCrit = 2 };

[[nodiscard]] std::string_view health_state_name(HealthState state);

/// What a rule's value function sees: one evaluation interval.
struct HealthSample {
  const MetricsSnapshot& delta;  ///< change since the previous evaluation
  const MetricsSnapshot& total;  ///< cumulative registry state
  Seconds interval;              ///< time the delta covers
};

struct HealthRule {
  std::string name;
  std::string help;
  /// Thresholds on the rule value; >= warn grades WARN, >= crit grades CRIT.
  double warn = 0.0;
  double crit = 0.0;
  /// Consecutive evaluations below a threshold before the state downgrades.
  std::size_t hold = 2;
  std::function<double(const HealthSample&)> value;
};

/// One rule's current standing.
struct RuleStatus {
  HealthState state = HealthState::kOk;
  double value = 0.0;
  /// Evaluations in a row that graded below the current state.
  std::size_t below_streak = 0;
  /// State changes since construction (a thrash indicator of its own).
  std::uint64_t transitions = 0;
};

class HealthEvaluator {
 public:
  explicit HealthEvaluator(std::vector<HealthRule> rules);

  /// Grade every rule against the snapshot. `interval` is the time since
  /// the previous evaluation (an epoch's virtual seconds in simulated runs).
  /// Returns the new overall (worst-rule) state.
  HealthState evaluate(const MetricsSnapshot& total, Seconds interval);

  [[nodiscard]] HealthState overall() const;
  [[nodiscard]] std::size_t evaluations() const;
  /// Status of the named rule; OK/zero for unknown names.
  [[nodiscard]] RuleStatus status(const std::string& name) const;

  /// `{"overall": "...", "evaluations": N, "rules": [{name, state, value,
  /// warn, crit, transitions, help}, ...]}` — the /healthz document.
  [[nodiscard]] Json to_json() const;

 private:
  struct Entry {
    HealthRule rule;
    RuleStatus status;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  MetricsSnapshot last_;
  std::size_t evaluations_ = 0;
};

/// The built-in rule set (see file comment). Thresholds are SLO-flavored
/// defaults, not physics; operators with different pain points build their
/// own vector<HealthRule>.
[[nodiscard]] std::vector<HealthRule> default_health_rules();

}  // namespace sophon::obs
