// Low-overhead span tracing for the sample lifecycle.
//
// A Tracer collects fixed-size SpanEvent records into per-thread lock-free
// ring buffers: recording a span is a handful of plain stores plus one
// release publish into the calling thread's own ring, and when tracing is
// disabled the whole path collapses to a single relaxed atomic load and a
// branch — instrumentation can stay compiled into the hot fetch and
// preprocessing loops at all times (bench/trace_overhead pins the cost).
//
// Two time bases share one span format. Real-threaded code (loader workers,
// the prefetch scheduler, the resilience layer) uses the RAII Span guard,
// which stamps steady-clock nanoseconds. Discrete-event code (SimLink, the
// prefetch replay) records *virtual* simulation time onto named tracks via
// record_at(); a given trace uses one base or the other, never both.
//
// Draining (drain(), to_chrome_json()) requires the recording threads to
// have quiesced — joined, or otherwise happens-before the drain. That is
// the natural call point (after an epoch, after the loader's destructor)
// and keeps the writer side free of any reader synchronization.
//
// Export is Chrome trace-event JSON ("X" complete events plus "M" thread
// metadata), loadable by chrome://tracing and Perfetto.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/units.h"

namespace sophon::obs {

/// What a span's time was spent on — the attribution key the stall report
/// folds by, deliberately coarser than span names.
enum class SpanCategory : std::uint8_t {
  kFetch = 0,         ///< waiting on the storage service (incl. retries/backoff)
  kStagingWait = 1,   ///< blocked on a prefetched fetch still in flight
  kPreprocess = 2,    ///< compute-side pipeline op execution
  kStoragePrep = 3,   ///< storage-side pipeline prefix execution
  kCollate = 4,       ///< handing a finished sample to the consumer queue
  kTransfer = 5,      ///< bytes occupying the inter-cluster link
  kGpu = 6,           ///< GPU batch service
  kOther = 7,
  kRetry = 8,         ///< backoff before a fetch retry (resilience ladder)
};

[[nodiscard]] std::string_view span_category_name(SpanCategory category);

/// Per-sample annotations carried on a span. Negative values mean "unset"
/// and are omitted from the JSON export.
struct SpanArgs {
  std::int64_t sample = -1;    ///< catalog sample id
  std::int64_t position = -1;  ///< index in the epoch's visit order
  std::int64_t bytes = -1;     ///< bytes on the wire for this span
  std::int32_t prefix = -1;    ///< offload prefix depth of the directive
  std::int32_t retries = -1;   ///< fetch attempts beyond the first
  std::int8_t cache_hit = -1;  ///< served from the compute-local cache
  std::int8_t degraded = -1;   ///< fetched raw after an offloaded failure
  std::int8_t prefetched = -1; ///< staged by the clairvoyant scheduler
};

/// One recorded span. Fixed-size (the name is copied, truncating past
/// kNameCapacity - 1) so ring slots never allocate.
struct SpanEvent {
  static constexpr std::size_t kNameCapacity = 28;

  char name[kNameCapacity] = {};
  SpanCategory category = SpanCategory::kOther;
  /// True when timestamps are virtual simulation time (record_at); false for
  /// steady-clock nanoseconds (record/Span). Exported as the per-event "tb"
  /// field so validate-trace can enforce the one-base-per-file invariant.
  bool virtual_time = false;
  std::uint32_t track = 0;       ///< thread lane or registered virtual track
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  SpanArgs args;

  [[nodiscard]] Seconds duration() const {
    return Seconds(static_cast<double>(end_ns - begin_ns) / 1e9);
  }
};

/// Span collector. One instance usually serves the whole process (see
/// global_tracer()); tests may construct their own.
class Tracer {
 public:
  /// `capacity` is the per-thread ring size in spans; when a thread records
  /// more than that between drains, the oldest spans are overwritten and
  /// counted in dropped().
  explicit Tracer(std::size_t capacity = kDefaultCapacity);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// Master switch. Disabled (the default) makes every record call a
  /// relaxed load + branch; no buffers are touched or created.
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Resize the ring used for *subsequently created* thread buffers (e.g.
  /// before enabling tracing for a large run). Existing buffers keep their
  /// size.
  void set_capacity(std::size_t capacity);

  /// Nanoseconds since the process's tracing epoch (steady clock).
  [[nodiscard]] static std::uint64_t now_ns();

  /// Record a real-time span on the calling thread's track. No-op while
  /// disabled.
  void record(SpanCategory category, std::string_view name, std::uint64_t begin_ns,
              std::uint64_t end_ns, const SpanArgs& args = {});

  /// Record a virtual-time span on an explicit track (see track()). The
  /// span lands in the calling thread's ring; `begin`/`end` are simulation
  /// seconds. No-op while disabled.
  void record_at(std::uint32_t track, SpanCategory category, std::string_view name,
                 Seconds begin, Seconds end, const SpanArgs& args = {});

  /// The id of the named virtual track, registering it on first use. Track
  /// ids are shared with thread lanes; labels are stable across drains.
  [[nodiscard]] std::uint32_t track(const std::string& label);

  /// Label the calling thread's lane (default "thread-N"). Cheap; call once
  /// at thread start (e.g. "worker-3").
  void set_thread_label(const std::string& label);

  /// Move out every recorded span, oldest first per track, and reset the
  /// rings. Requires recording threads to have quiesced (see file comment).
  [[nodiscard]] std::vector<SpanEvent> drain();

  /// (track id, label) for every lane and virtual track seen so far.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::string>> labels() const;

  /// Spans overwritten by ring wrap-around since construction.
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  struct ThreadBuffer;

  ThreadBuffer& buffer_for_this_thread();

  const std::uint64_t id_;  // distinguishes tracers in the thread-local cache
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;  // guards buffers_, labels_, capacity_
  std::size_t capacity_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<std::pair<std::uint32_t, std::string>> labels_;
  std::uint32_t next_track_ = 0;
};

/// The process-wide tracer every built-in instrumentation point records to.
[[nodiscard]] Tracer& global_tracer();

/// RAII span guard: stamps begin at construction, records at destruction.
/// When the tracer is disabled at construction the guard is inert (args
/// writes go to a dead member). Name must outlive the guard.
class Span {
 public:
  explicit Span(SpanCategory category, std::string_view name)
      : Span(global_tracer(), category, name) {}

  Span(Tracer& tracer, SpanCategory category, std::string_view name)
      : tracer_(tracer.enabled() ? &tracer : nullptr),
        category_(category),
        name_(name),
        begin_ns_(tracer_ != nullptr ? Tracer::now_ns() : 0) {}

  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->record(category_, name_, begin_ns_, Tracer::now_ns(), args_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Mutable annotations, filled in as the guarded scope learns them.
  [[nodiscard]] SpanArgs& args() { return args_; }

  /// Whether this guard will record (tracing was enabled at construction).
  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_;
  SpanCategory category_;
  std::string_view name_;
  std::uint64_t begin_ns_;
  SpanArgs args_;
};

/// A causal arrow between two spans, rendered by trace viewers as a flow
/// line: prefetch issue -> consumer claim, fetch retry -> eventual success.
/// `id` pairs the start and finish phases ("s"/"f") and must be unique per
/// flow within one trace.
struct TraceFlow {
  std::uint64_t id = 0;
  std::string name;            ///< flow family, e.g. "prefetch" or "retry"
  std::uint32_t from_track = 0;
  std::uint64_t from_ns = 0;   ///< start timestamp (same base as the spans)
  std::uint32_t to_track = 0;
  std::uint64_t to_ns = 0;     ///< finish timestamp; >= from_ns
};

/// Chrome trace-event JSON document for the given spans: one "X" complete
/// event per span (ts/dur in microseconds) plus "M" thread-name metadata
/// from `labels`. Loadable by chrome://tracing and Perfetto.
[[nodiscard]] Json chrome_trace_json(const std::vector<SpanEvent>& spans,
                                     const std::vector<std::pair<std::uint32_t, std::string>>& labels);

/// Same, plus "s"/"f" flow events (one pair per TraceFlow, bound by id) so
/// the viewer draws the issue->claim and retry->success arrows the
/// critical-path analyzer reasons over.
[[nodiscard]] Json chrome_trace_json(const std::vector<SpanEvent>& spans,
                                     const std::vector<std::pair<std::uint32_t, std::string>>& labels,
                                     const std::vector<TraceFlow>& flows);

}  // namespace sophon::obs
