#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace sophon::obs {

std::string_view span_category_name(SpanCategory category) {
  switch (category) {
    case SpanCategory::kFetch:
      return "fetch";
    case SpanCategory::kStagingWait:
      return "staging_wait";
    case SpanCategory::kPreprocess:
      return "preprocess";
    case SpanCategory::kStoragePrep:
      return "storage_prep";
    case SpanCategory::kCollate:
      return "collate";
    case SpanCategory::kTransfer:
      return "transfer";
    case SpanCategory::kGpu:
      return "gpu";
    case SpanCategory::kRetry:
      return "retry";
    case SpanCategory::kOther:
      break;
  }
  return "other";
}

namespace {

/// Tracer ids only need to be unique per process lifetime.
std::atomic<std::uint64_t> g_next_tracer_id{1};

std::uint64_t process_epoch_ns() {
  static const std::uint64_t epoch = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return epoch;
}

void copy_name(char (&dst)[SpanEvent::kNameCapacity], std::string_view src) {
  const std::size_t n = std::min(src.size(), SpanEvent::kNameCapacity - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

/// Single-writer ring: only the owning thread writes slots and head_; any
/// reader must happen-after the writer's last record (enforced by drain()'s
/// quiescence contract, with the release/acquire pair on head_ ordering the
/// slot contents).
struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t track_id, std::size_t capacity)
      : track(track_id), slots(capacity) {}

  const std::uint32_t track;
  std::vector<SpanEvent> slots;
  std::atomic<std::uint64_t> head{0};      // spans ever written
  std::uint64_t drained = 0;               // spans handed out by drain()
  std::uint64_t dropped = 0;               // overwritten before a drain
};

Tracer::Tracer(std::size_t capacity)
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(std::max<std::size_t>(capacity, 8)) {
  process_epoch_ns();  // pin the time base before the first span
}

Tracer::~Tracer() = default;

void Tracer::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(capacity, 8);
}

std::uint64_t Tracer::now_ns() {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - process_epoch_ns();
}

namespace {

/// Per-thread cache of (tracer id → buffer) so the record path never locks
/// after a thread's first span on a given tracer. Entries are only ever
/// read by their owning thread; stale entries (destroyed tracer) are never
/// matched because tracer ids are unique.
struct TlsEntry {
  std::uint64_t tracer_id;
  void* buffer;
};
thread_local std::vector<TlsEntry> t_buffers;

}  // namespace

Tracer::ThreadBuffer& Tracer::buffer_for_this_thread() {
  for (const auto& entry : t_buffers) {
    if (entry.tracer_id == id_) return *static_cast<ThreadBuffer*>(entry.buffer);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t track_id = next_track_++;
  labels_.emplace_back(track_id, "thread-" + std::to_string(track_id));
  buffers_.push_back(std::make_unique<ThreadBuffer>(track_id, capacity_));
  ThreadBuffer& buffer = *buffers_.back();
  t_buffers.push_back(TlsEntry{id_, &buffer});
  return buffer;
}

void Tracer::record(SpanCategory category, std::string_view name, std::uint64_t begin_ns,
                    std::uint64_t end_ns, const SpanArgs& args) {
  if (!enabled()) return;
  ThreadBuffer& buffer = buffer_for_this_thread();
  const std::uint64_t head = buffer.head.load(std::memory_order_relaxed);
  SpanEvent& slot = buffer.slots[head % buffer.slots.size()];
  copy_name(slot.name, name);
  slot.category = category;
  slot.virtual_time = false;
  slot.track = buffer.track;
  slot.begin_ns = begin_ns;
  slot.end_ns = end_ns;
  slot.args = args;
  buffer.head.store(head + 1, std::memory_order_release);
}

void Tracer::record_at(std::uint32_t track, SpanCategory category, std::string_view name,
                       Seconds begin, Seconds end, const SpanArgs& args) {
  if (!enabled()) return;
  ThreadBuffer& buffer = buffer_for_this_thread();
  const std::uint64_t head = buffer.head.load(std::memory_order_relaxed);
  SpanEvent& slot = buffer.slots[head % buffer.slots.size()];
  copy_name(slot.name, name);
  slot.category = category;
  slot.virtual_time = true;
  slot.track = track;
  slot.begin_ns = static_cast<std::uint64_t>(std::max(0.0, begin.value()) * 1e9);
  slot.end_ns = static_cast<std::uint64_t>(std::max(begin.value(), end.value()) * 1e9);
  slot.args = args;
  buffer.head.store(head + 1, std::memory_order_release);
}

std::uint32_t Tracer::track(const std::string& label) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, existing] : labels_) {
    if (existing == label) return id;
  }
  const std::uint32_t track_id = next_track_++;
  labels_.emplace_back(track_id, label);
  return track_id;
}

void Tracer::set_thread_label(const std::string& label) {
  const std::uint32_t track_id = buffer_for_this_thread().track;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, existing] : labels_) {
    if (id == track_id) {
      existing = label;
      return;
    }
  }
}

std::vector<SpanEvent> Tracer::drain() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanEvent> out;
  for (const auto& buffer : buffers_) {
    const std::uint64_t head = buffer->head.load(std::memory_order_acquire);
    const std::uint64_t capacity = buffer->slots.size();
    const std::uint64_t fresh = head - buffer->drained;
    const std::uint64_t keep = std::min(fresh, capacity);
    buffer->dropped += fresh - keep;
    for (std::uint64_t i = head - keep; i < head; ++i) {
      out.push_back(buffer->slots[i % capacity]);
    }
    buffer->drained = head;
  }
  std::stable_sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    return a.begin_ns < b.begin_ns;
  });
  return out;
}

std::vector<std::pair<std::uint32_t, std::string>> Tracer::labels() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return labels_;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    const std::uint64_t head = buffer->head.load(std::memory_order_acquire);
    const std::uint64_t fresh = head - buffer->drained;
    total += buffer->dropped + (fresh > buffer->slots.size() ? fresh - buffer->slots.size() : 0);
  }
  return total;
}

Tracer& global_tracer() {
  static Tracer tracer;
  return tracer;
}

Json chrome_trace_json(const std::vector<SpanEvent>& spans,
                       const std::vector<std::pair<std::uint32_t, std::string>>& labels) {
  return chrome_trace_json(spans, labels, {});
}

Json chrome_trace_json(const std::vector<SpanEvent>& spans,
                       const std::vector<std::pair<std::uint32_t, std::string>>& labels,
                       const std::vector<TraceFlow>& flows) {
  Json events = Json::array();
  for (const auto& [track, label] : labels) {
    Json meta = Json::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 0);
    meta.set("tid", static_cast<std::int64_t>(track));
    Json args = Json::object();
    args.set("name", label);
    meta.set("args", std::move(args));
    events.push_back(std::move(meta));
  }
  for (const auto& span : spans) {
    Json event = Json::object();
    event.set("name", std::string(span.name));
    event.set("cat", std::string(span_category_name(span.category)));
    event.set("ph", "X");
    event.set("pid", 0);
    event.set("tid", static_cast<std::int64_t>(span.track));
    event.set("ts", static_cast<double>(span.begin_ns) / 1e3);
    event.set("dur", static_cast<double>(span.end_ns - span.begin_ns) / 1e3);
    event.set("tb", span.virtual_time ? "virtual" : "steady");
    Json args = Json::object();
    if (span.args.sample >= 0) args.set("sample", span.args.sample);
    if (span.args.position >= 0) args.set("position", span.args.position);
    if (span.args.bytes >= 0) args.set("bytes", span.args.bytes);
    if (span.args.prefix >= 0) args.set("prefix", static_cast<std::int64_t>(span.args.prefix));
    if (span.args.retries >= 0) args.set("retries", static_cast<std::int64_t>(span.args.retries));
    if (span.args.cache_hit >= 0) args.set("cache_hit", span.args.cache_hit != 0);
    if (span.args.degraded >= 0) args.set("degraded", span.args.degraded != 0);
    if (span.args.prefetched >= 0) args.set("prefetched", span.args.prefetched != 0);
    event.set("args", std::move(args));
    events.push_back(std::move(event));
  }
  for (const auto& flow : flows) {
    Json start = Json::object();
    start.set("name", flow.name);
    start.set("cat", flow.name);
    start.set("ph", "s");
    start.set("id", static_cast<std::int64_t>(flow.id));
    start.set("pid", 0);
    start.set("tid", static_cast<std::int64_t>(flow.from_track));
    start.set("ts", static_cast<double>(flow.from_ns) / 1e3);
    events.push_back(std::move(start));
    Json finish = Json::object();
    finish.set("name", flow.name);
    finish.set("cat", flow.name);
    finish.set("ph", "f");
    finish.set("bp", "e");  // bind to the enclosing slice at the finish point
    finish.set("id", static_cast<std::int64_t>(flow.id));
    finish.set("pid", 0);
    finish.set("tid", static_cast<std::int64_t>(flow.to_track));
    finish.set("ts", static_cast<double>(flow.to_ns) / 1e3);
    events.push_back(std::move(finish));
  }
  Json doc = Json::object();
  doc.set("displayTimeUnit", "ms");
  doc.set("traceEvents", std::move(events));
  return doc;
}

}  // namespace sophon::obs
