#include "obs/replay_trace.h"

#include <algorithm>

namespace sophon::obs {

namespace {

struct StorageSpan {
  Seconds begin;
  Seconds end;
  SpanArgs args;
};

bool is_cache_hit(const sim::SampleTimeline& row) {
  return !row.prefetched && row.wire.count() == 0 && row.link_done <= row.claimed;
}

std::uint64_t virtual_ns(Seconds t) {
  return static_cast<std::uint64_t>(std::max(0.0, t.value()) * 1e9);
}

}  // namespace

std::vector<TraceFlow> build_replay_trace(const std::vector<sim::SampleTimeline>& rows,
                                          const SampleCostFn& costs, Tracer& tracer) {
  std::vector<TraceFlow> flows;
  if (!tracer.enabled()) return flows;

  const std::uint32_t prefetch_track = tracer.track("prefetch");
  std::vector<std::uint32_t> worker_tracks;
  const auto worker_track = [&](std::int32_t worker) {
    const auto index = static_cast<std::size_t>(worker);
    while (worker_tracks.size() <= index) {
      worker_tracks.push_back(
          tracer.track("worker-" + std::to_string(worker_tracks.size())));
    }
    return worker_tracks[index];
  };

  std::vector<StorageSpan> storage_spans;

  for (const auto& row : rows) {
    if (row.worker < 0) continue;
    const std::uint32_t track = worker_track(row.worker);

    SpanArgs args;
    args.sample = static_cast<std::int64_t>(row.sample_index);
    args.position = static_cast<std::int64_t>(row.position);
    const SampleOpCosts detail = costs ? costs(row.sample_index) : SampleOpCosts{};
    args.prefix = detail.prefix;

    const bool local = is_cache_hit(row);
    if (local) {
      args.cache_hit = 1;
    } else {
      args.bytes = static_cast<std::int64_t>(row.wire.count());
      args.prefetched = row.prefetched ? 1 : 0;
      if (row.prefetched) {
        // Prefetched: the worker only waits when the fetch is still in
        // flight at claim time (a late hit).
        if (row.link_done > row.claimed) {
          tracer.record_at(track, SpanCategory::kStagingWait, "staging_wait", row.claimed,
                           row.link_done, args);
        }
        // The issue->claim dependency as a visible span on the prefetch
        // scheduler's track plus a flow arrow to the consuming worker.
        tracer.record_at(prefetch_track, SpanCategory::kOther, "prefetch_issue", row.issued,
                         row.link_done, args);
        TraceFlow flow;
        flow.id = static_cast<std::uint64_t>(row.position) + 1;
        flow.name = "prefetch";
        flow.from_track = prefetch_track;
        flow.from_ns = virtual_ns(row.issued);
        flow.to_track = track;
        flow.to_ns = virtual_ns(std::max(row.claimed, row.link_done));
        flows.push_back(std::move(flow));
      } else {
        // Demand: the worker runs the whole round trip synchronously.
        tracer.record_at(track, SpanCategory::kFetch, "fetch", row.claimed, row.link_done, args);
        if (row.issued > row.claimed) {
          tracer.record_at(track, SpanCategory::kRetry, "retry_backoff", row.claimed, row.issued,
                           args);
          // Arrow from the moment the backoff ladder released the final
          // (successful) attempt to that attempt's completed fetch.
          TraceFlow flow;
          flow.id = (std::uint64_t{1} << 32) + static_cast<std::uint64_t>(row.position);
          flow.name = "retry";
          flow.from_track = track;
          flow.from_ns = virtual_ns(row.issued);
          flow.to_track = track;
          flow.to_ns = virtual_ns(row.link_done);
          flows.push_back(std::move(flow));
        }
      }
      if (detail.storage_prefix.value() > 0.0 && row.storage_done > row.issued) {
        StorageSpan prep;
        prep.end = row.storage_done;
        prep.begin = std::max(row.issued,
                              row.storage_done - std::min(detail.storage_prefix,
                                                          row.storage_done - row.issued));
        prep.args = args;
        storage_spans.push_back(prep);
      }
    }

    // Compute window: [claim-or-arrival, ready]. Per-op children are laid
    // end-to-end finishing at ready; any core-queueing gap lands at the
    // front as parent self time (still preprocess).
    const Seconds start = std::max(row.claimed, row.link_done);
    if (row.ready > start) {
      tracer.record_at(track, SpanCategory::kPreprocess, "preprocess", start, row.ready, args);
      if (!detail.compute_ops.empty()) {
        Seconds total;
        for (const auto& [name, cost] : detail.compute_ops) total += cost;
        const double window = (row.ready - start).value();
        const double scale =
            total.value() > window && total.value() > 0.0 ? window / total.value() : 1.0;
        Seconds cursor = row.ready - total * scale;
        for (const auto& [name, cost] : detail.compute_ops) {
          const Seconds op_end = cursor + cost * scale;
          tracer.record_at(track, SpanCategory::kPreprocess, name, cursor, op_end, args);
          cursor = op_end;
        }
      }
    }
  }

  // Lay storage prefix executions onto as few non-overlapping lanes as a
  // left-endpoint greedy needs (exact for fixed intervals), so folding a
  // lane's self time sums to its busy time.
  std::sort(storage_spans.begin(), storage_spans.end(),
            [](const StorageSpan& a, const StorageSpan& b) { return a.begin < b.begin; });
  std::vector<std::pair<std::uint32_t, Seconds>> lanes;  // (track, free-at)
  for (const auto& span : storage_spans) {
    std::uint32_t track = 0;
    bool placed = false;
    for (auto& [lane_track, free_at] : lanes) {
      if (free_at <= span.begin) {
        track = lane_track;
        free_at = span.end;
        placed = true;
        break;
      }
    }
    if (!placed) {
      track = tracer.track("storage-" + std::to_string(lanes.size()));
      lanes.emplace_back(track, span.end);
    }
    tracer.record_at(track, SpanCategory::kStoragePrep, "storage_prefix", span.begin, span.end,
                     span.args);
  }

  return flows;
}

}  // namespace sophon::obs
