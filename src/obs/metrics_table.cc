#include "obs/metrics_table.h"

#include <algorithm>

namespace sophon::obs {

std::string_view metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kDuration:
      return "duration";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

namespace {

// Sorted by name — find_metric binary-searches and the drift test checks the
// ordering so review diffs stay one-line-per-metric.
constexpr MetricInfo kTable[] = {
    {"sophon_critpath_blame_compute_cpu_seconds", MetricKind::kGauge,
     "Seconds the compute-node CPU contributed to the last epoch's critical path"},
    {"sophon_critpath_blame_delay_seconds", MetricKind::kGauge,
     "Seconds of injected delay (retry backoff) on the last epoch's critical path"},
    {"sophon_critpath_blame_gpu_seconds", MetricKind::kGauge,
     "Seconds the GPU contributed to the last epoch's critical path"},
    {"sophon_critpath_blame_link_seconds", MetricKind::kGauge,
     "Seconds the storage link contributed to the last epoch's critical path"},
    {"sophon_critpath_blame_storage_cpu_seconds", MetricKind::kGauge,
     "Seconds the storage-node CPU contributed to the last epoch's critical path"},
    {"sophon_critpath_bottleneck", MetricKind::kGauge,
     "Dominant critical-path resource: 1 storage-cpu, 2 link, 3 compute-cpu, 4 gpu, 5 delay"},
    {"sophon_critpath_bottleneck_migrations", MetricKind::kCounter,
     "Epoch boundaries where the critical-path bottleneck moved to a different resource"},
    {"sophon_critpath_reconcile_error", MetricKind::kGauge,
     "Relative gap between the re-timed critical path and the observed epoch time"},
    {"sophon_degraded_samples", MetricKind::kCounter,
     "Samples served in degraded form after fetch retry exhaustion"},
    {"sophon_diskstore_corrupt", MetricKind::kCounter,
     "Disk-store reads that failed payload checksum verification"},
    {"sophon_epoch_fetch_stall_fraction", MetricKind::kGauge,
     "Fraction of the last epoch the trainer spent stalled on data fetch"},
    {"sophon_epoch_gpu_utilization", MetricKind::kGauge,
     "GPU busy fraction over the last completed epoch"},
    {"sophon_epoch_link_utilization", MetricKind::kGauge,
     "Storage-to-trainer link busy fraction over the last completed epoch"},
    {"sophon_epoch_time_seconds", MetricKind::kGauge,
     "Duration of the last completed epoch in virtual seconds"},
    {"sophon_epoch_traffic_bytes", MetricKind::kCounter,
     "Bytes moved over the storage link, accumulated across epochs"},
    {"sophon_epochs_completed", MetricKind::kCounter,
     "Epochs the adaptive run loop has completed"},
    {"sophon_fetch_attempt_bytes", MetricKind::kCounter,
     "Wire bytes that arrived across every fetch attempt, retries included"},
    {"sophon_fetch_attempts", MetricKind::kCounter,
     "Sample fetch attempts, including retries"},
    {"sophon_fetch_backoff", MetricKind::kHistogram,
     "Backoff delay before each fetch retry, in seconds"},
    {"sophon_fetch_backoff_seconds", MetricKind::kGauge,
     "Total backoff delay accumulated by the most recent fetch ladder"},
    {"sophon_fetch_corrupt", MetricKind::kCounter,
     "Fetch attempts rejected for checksum mismatch"},
    {"sophon_fetch_deadline_exceeded", MetricKind::kCounter,
     "Fetch ladders abandoned because the retry deadline passed"},
    {"sophon_fetch_failures", MetricKind::kCounter,
     "Fetch ladders that exhausted every retry"},
    {"sophon_fetch_retries", MetricKind::kCounter,
     "Fetch attempts that were retries of a failed attempt"},
    {"sophon_fetch_wasted_bytes", MetricKind::kCounter,
     "Wire bytes of fetch responses discarded for corruption before a retry"},
    {"sophon_health_state", MetricKind::kGauge,
     "Overall health grade: 0 OK, 1 WARN, 2 CRIT"},
    {"sophon_ledger_attributed_bytes", MetricKind::kGauge,
     "Total link bytes the traffic ledger has attributed to a cause"},
    {"sophon_ledger_control_bytes", MetricKind::kGauge,
     "Ledger bytes attributed to control-plane / RPC overhead"},
    {"sophon_ledger_demand_bytes", MetricKind::kGauge,
     "Ledger bytes attributed to on-demand sample fetches"},
    {"sophon_ledger_prefetch_bytes", MetricKind::kGauge,
     "Ledger bytes attributed to prefetches later claimed by the consumer"},
    {"sophon_ledger_prefetch_wasted_bytes", MetricKind::kGauge,
     "Ledger bytes attributed to prefetches evicted before any claim"},
    {"sophon_ledger_raw_fallback_bytes", MetricKind::kGauge,
     "Ledger bytes attributed to raw-stage degradation fallbacks"},
    {"sophon_ledger_records", MetricKind::kCounter,
     "Attribution records the traffic ledger has accepted"},
    {"sophon_ledger_retry_bytes", MetricKind::kGauge,
     "Ledger bytes attributed to retried (discarded) fetch attempts"},
    {"sophon_ledger_shard_corrupt_refetch_bytes", MetricKind::kGauge,
     "Ledger bytes attributed to refetches after a corrupt shard read"},
    {"sophon_ledger_shard_hit_bytes", MetricKind::kGauge,
     "Ledger bytes attributed to fetches served from a packed shard"},
    {"sophon_ledger_unattributed_bytes", MetricKind::kGauge,
     "Absolute gap between link counters and ledger attribution (0 = byte-exact)"},
    {"sophon_loader_fetch_errors", MetricKind::kCounter,
     "Loader-visible fetch errors after resilience gave up"},
    {"sophon_loader_reorder_highwater", MetricKind::kGauge,
     "High-water mark of the loader's reorder window occupancy"},
    {"sophon_prefetch_buffer_budget_bytes", MetricKind::kGauge,
     "Configured staging-buffer byte budget (0 when unbounded)"},
    {"sophon_prefetch_buffer_bytes", MetricKind::kGauge,
     "Bytes currently resident in the prefetch staging buffer"},
    {"sophon_prefetch_buffer_depth", MetricKind::kGauge,
     "Samples currently resident in the prefetch staging buffer"},
    {"sophon_prefetch_buffer_highwater_bytes", MetricKind::kGauge,
     "High-water mark of staging-buffer byte occupancy"},
    {"sophon_prefetch_cancelled", MetricKind::kCounter,
     "Prefetches cancelled before completion"},
    {"sophon_prefetch_failed", MetricKind::kCounter, "Prefetches that failed"},
    {"sophon_prefetch_hits", MetricKind::kCounter,
     "Consumer claims satisfied from the staging buffer"},
    {"sophon_prefetch_issued", MetricKind::kCounter, "Prefetches issued"},
    {"sophon_prefetch_late", MetricKind::kCounter,
     "Staging-buffer hits that made the consumer wait"},
    {"sophon_prefetch_lead_seconds", MetricKind::kHistogram,
     "Lead time between prefetch completion and consumer claim"},
    {"sophon_prefetch_skipped_cached", MetricKind::kCounter,
     "Prefetch candidates skipped because the cache already held them"},
    {"sophon_prefetch_skipped_consumed", MetricKind::kCounter,
     "Prefetch candidates skipped because the consumer already passed them"},
    {"sophon_prefetch_skipped_deprioritized", MetricKind::kCounter,
     "Prefetch candidates skipped by the deprioritization policy"},
    {"sophon_replan_checks", MetricKind::kCounter,
     "Epoch boundaries where the replanner evaluated drift"},
    {"sophon_replan_drift", MetricKind::kGauge,
     "Max relative drift between planned and observed epoch costs"},
    {"sophon_replan_generation", MetricKind::kGauge,
     "Generation number of the currently active plan"},
    {"sophon_replan_improvement_estimate", MetricKind::kGauge,
     "Predicted epoch-time improvement of the candidate plan"},
    {"sophon_replan_suppressed_cooldown", MetricKind::kCounter,
     "Re-plans suppressed by the cooldown window"},
    {"sophon_replan_suppressed_improvement", MetricKind::kCounter,
     "Re-plans suppressed for insufficient predicted improvement"},
    {"sophon_replan_triggered", MetricKind::kCounter, "Re-plans accepted and applied"},
    {"sophon_server_fetch", MetricKind::kCounter,
     "Samples the storage server shipped raw (trainer-side preprocessing)"},
    {"sophon_server_offload", MetricKind::kCounter,
     "Samples the storage server preprocessed before shipping"},
    {"sophon_server_prefix_cpu", MetricKind::kDuration,
     "Storage-side CPU time spent running offloaded prefixes"},
    {"sophon_shard_corrupt", MetricKind::kCounter,
     "Shard reads that failed checksum verification"},
    {"sophon_shard_hit", MetricKind::kCounter, "Sample reads served from a packed shard"},
    {"sophon_shard_miss", MetricKind::kCounter,
     "Sample reads that fell back past the shard store"},
};

}  // namespace

std::span<const MetricInfo> known_metrics() { return kTable; }

const MetricInfo* find_metric(std::string_view name) {
  const auto it = std::lower_bound(
      std::begin(kTable), std::end(kTable), name,
      [](const MetricInfo& info, std::string_view key) { return info.name < key; });
  if (it == std::end(kTable) || name != it->name) return nullptr;
  return it;
}

void register_known_metrics(MetricsRegistry& registry) {
  for (const MetricInfo& info : kTable) {
    switch (info.kind) {
      case MetricKind::kCounter:
        (void)registry.counter(info.name);
        break;
      case MetricKind::kGauge:
        (void)registry.gauge(info.name);
        break;
      case MetricKind::kDuration:
        (void)registry.duration(info.name);
        break;
      case MetricKind::kHistogram:
        (void)registry.histogram(info.name);
        break;
    }
    registry.set_help(info.name, info.help);
  }
}

void register_epoch_metrics(MetricsRegistry& registry) {
  for (const char* name :
       {"sophon_epoch_fetch_stall_fraction", "sophon_epoch_gpu_utilization",
        "sophon_epoch_link_utilization", "sophon_epoch_time_seconds", "sophon_health_state"}) {
    const MetricInfo* info = find_metric(name);
    (void)registry.gauge(name);
    if (info != nullptr) registry.set_help(name, info->help);
  }
  (void)registry.counter("sophon_epoch_traffic_bytes");
  (void)registry.counter("sophon_epochs_completed");
  for (const char* name : {"sophon_epoch_traffic_bytes", "sophon_epochs_completed"}) {
    const MetricInfo* info = find_metric(name);
    if (info != nullptr) registry.set_help(name, info->help);
  }
}

}  // namespace sophon::obs
