// Byte-exact traffic ledger: every byte that crosses the storage→trainer
// link is attributed to a (sample, stage, cause) tuple at the single point
// where the byte's fate is decided — the client that consumed (or
// discarded) the response. The cause taxonomy partitions the wire: a byte
// lands in exactly one bucket, so the per-cause totals must sum to the
// SimLink counter at every epoch boundary. That reconciliation invariant is
// hard-failed in tests and surfaced as a WARN health rule in production
// (`sophon_ledger_unattributed_bytes`); a non-zero residue means an
// uninstrumented producer, not measurement noise.
//
// Memory is fixed: exact per-cause and per-(stage, cause) totals are flat
// arrays, the per-sample view keeps only a bounded top-K-by-bytes map
// (documented approximation: a sample evicted early that later grows large
// can be missing from top_samples; the cause totals are always exact), and
// per-epoch rows live in a bounded ring. The JSON export is schema-
// versioned so `sophonctl traffic-diff` can compare runs across builds.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/json.h"
#include "util/telemetry.h"
#include "util/units.h"

namespace sophon::obs {

/// Why a byte crossed the link. Exactly one cause per byte.
enum class TrafficCause : std::uint8_t {
  kDemand = 0,            ///< worker fetched it because training needed it now
  kPrefetch,              ///< staged ahead of need and later claimed
  kPrefetchWasted,        ///< staged ahead of need, evicted unclaimed
  kRetry,                 ///< a resilience attempt whose payload was discarded
  kRawFallback,           ///< degradation ladder demoted the fetch to raw
  kShardHit,              ///< served verbatim from a materialized shard
  kShardCorruptRefetch,   ///< shard payload failed crc, re-served live
  kControl,               ///< control-plane / rpc overhead (reserved, zero today)
};
inline constexpr std::size_t kTrafficCauseCount = 8;

/// Stages above this are clamped into the last bucket (real pipelines here
/// have ≤ 8 ops; the clamp keeps the per-stage table a flat array).
inline constexpr std::size_t kLedgerMaxStages = 16;

[[nodiscard]] const char* traffic_cause_name(TrafficCause cause);
[[nodiscard]] std::optional<TrafficCause> traffic_cause_from_name(std::string_view name);

/// One epoch boundary's closing of the books.
struct LedgerReconciliation {
  std::int64_t ledger_bytes = 0;        ///< attributed this epoch (or cumulatively)
  std::int64_t link_bytes = 0;          ///< what the link itself counted
  std::int64_t unattributed_bytes = 0;  ///< link - ledger; negative = over-attributed
  [[nodiscard]] bool exact() const { return unattributed_bytes == 0; }
};

/// Per-epoch row of the ledger ring: cause deltas for that epoch plus the
/// plan forecast active while it ran (-1 when the plan carried none).
struct LedgerEpochRow {
  std::uint64_t epoch = 0;
  std::uint64_t plan_generation = 0;
  std::array<std::int64_t, kTrafficCauseCount> cause_bytes{};
  std::int64_t link_bytes = 0;
  std::int64_t attributed_bytes = 0;
  std::int64_t unattributed_bytes = 0;
  std::int64_t predicted_bytes = -1;  ///< decide_offloading's forecast for the plan
  std::int64_t baseline_bytes = -1;   ///< all-raw traffic the forecast was priced against
};

/// One of the heaviest samples by attributed bytes.
struct LedgerTopSample {
  std::uint64_t sample_id = 0;
  std::int64_t bytes = 0;
  std::array<std::int64_t, kTrafficCauseCount> cause_bytes{};
};

/// The exportable state of a ledger: what `to_json` writes and
/// `from_json` reads back, and what traffic-report / traffic-diff consume.
struct LedgerExport {
  int schema_version = 1;
  std::uint64_t records = 0;
  std::int64_t unattributed_bytes = 0;  ///< residue at the last reconciliation
  std::array<std::int64_t, kTrafficCauseCount> cause_bytes{};
  std::array<std::array<std::int64_t, kTrafficCauseCount>, kLedgerMaxStages> stage_cause_bytes{};
  std::vector<LedgerTopSample> top_samples;  ///< sorted by bytes, descending
  std::vector<LedgerEpochRow> epochs;

  [[nodiscard]] std::int64_t total() const;
  [[nodiscard]] Json to_json() const;
  /// Rejects wrong kind, unknown schema version, or malformed fields.
  [[nodiscard]] static std::optional<LedgerExport> from_json(const Json& doc);
};

/// One cause's byte totals in two runs being diffed.
struct LedgerDiffRow {
  TrafficCause cause = TrafficCause::kDemand;
  std::int64_t bytes_a = 0;
  std::int64_t bytes_b = 0;
  [[nodiscard]] std::int64_t delta() const { return bytes_b - bytes_a; }
};

/// traffic-diff output: causes ranked by |byte delta|, largest first.
struct LedgerDiff {
  std::vector<LedgerDiffRow> rows;
  std::int64_t total_a = 0;
  std::int64_t total_b = 0;
  [[nodiscard]] std::int64_t total_delta() const { return total_b - total_a; }
  [[nodiscard]] bool identical() const;
};

[[nodiscard]] LedgerDiff diff_ledgers(const LedgerExport& a, const LedgerExport& b);

/// Human-readable breakdown: per-cause, per-stage, and the per-epoch
/// predicted-vs-actual savings table when plan forecasts are present.
[[nodiscard]] std::string render_traffic_report(const LedgerExport& exported);
[[nodiscard]] std::string render_traffic_diff(const LedgerDiff& diff);

/// The ledger itself. Thread-safe: producers on loader workers, the
/// prefetch scheduler, and the resilience layer all record concurrently.
/// Recording takes one mutex and a few array adds — no metric registry
/// traffic on the hot path; metrics are published as epoch-boundary deltas
/// so the <3% overhead pin in bench/trace_overhead holds.
class TrafficLedger {
 public:
  struct Options {
    std::size_t top_k = 32;              ///< samples kept in the export
    MetricsRegistry* metrics = nullptr;  ///< optional: sophon_ledger_* at epoch ends
  };

  TrafficLedger() : TrafficLedger(Options{}) {}
  explicit TrafficLedger(Options options);

  /// Attribute `bytes` moved for `sample_id` at pipeline `stage` to `cause`.
  void record(std::uint64_t sample_id, std::uint8_t stage, TrafficCause cause, Bytes bytes);

  /// Move already-recorded bytes from one cause to another (e.g. a staged
  /// sample's kPrefetch bytes become kPrefetchWasted when it is evicted
  /// unclaimed). Keeps the partition: totals never double-count.
  void reclassify(std::uint64_t sample_id, std::uint8_t stage, TrafficCause from,
                  TrafficCause to, Bytes bytes);

  [[nodiscard]] Bytes total() const;
  [[nodiscard]] Bytes total(TrafficCause cause) const;
  [[nodiscard]] Bytes total(TrafficCause cause, std::uint8_t stage) const;
  [[nodiscard]] std::uint64_t records() const;

  /// Attach decide_offloading's traffic forecast for plan `generation`;
  /// epoch rows running under that generation carry it as their receipt.
  void note_plan_forecast(std::uint64_t generation, Bytes baseline, Bytes predicted);

  /// Close the books for one epoch: compute per-cause deltas since the last
  /// boundary, reconcile them against the link's per-epoch byte count,
  /// append an epoch row, and publish sophon_ledger_* metrics. Returns the
  /// epoch's reconciliation (exact() must hold in tests).
  LedgerReconciliation end_epoch(std::uint64_t epoch, Bytes epoch_link_bytes,
                                 std::uint64_t plan_generation);

  /// Cumulative reconciliation against a cumulative link counter (for
  /// callers outside the epoch loop, e.g. the real-loader tests).
  [[nodiscard]] LedgerReconciliation reconcile(Bytes cumulative_link_bytes) const;

  /// Publish sophon_ledger_* to the registry now (end_epoch does this too).
  void publish_metrics();

  [[nodiscard]] LedgerExport export_state() const;
  [[nodiscard]] Json to_json() const;

 private:
  struct SampleEntry {
    std::int64_t bytes = 0;
    std::array<std::int64_t, kTrafficCauseCount> cause_bytes{};
  };

  void publish_locked();
  void prune_samples_locked(std::size_t capacity);
  [[nodiscard]] std::int64_t total_locked() const;

  Options options_;
  mutable std::mutex mutex_;
  std::uint64_t records_ = 0;
  std::uint64_t records_published_ = 0;
  std::array<std::int64_t, kTrafficCauseCount> cause_bytes_{};
  std::array<std::array<std::int64_t, kTrafficCauseCount>, kLedgerMaxStages> stage_cause_bytes_{};
  /// Bounded: grows to 2x capacity then prunes the lightest half in one
  /// amortized pass; once full, newcomers no heavier than the heaviest
  /// sample ever pruned (sample_floor_) are skipped in O(1) — record() stays
  /// constant-time on the hot path.
  std::unordered_map<std::uint64_t, SampleEntry> samples_;
  std::int64_t sample_floor_ = 0;
  std::map<std::uint64_t, std::pair<std::int64_t, std::int64_t>> forecasts_;  ///< gen -> {baseline, predicted}
  std::vector<LedgerEpochRow> epochs_;  ///< bounded ring, oldest dropped
  std::array<std::int64_t, kTrafficCauseCount> epoch_snapshot_{};  ///< totals at last end_epoch
  std::int64_t link_total_ = 0;          ///< cumulative link bytes seen at boundaries
  std::int64_t unattributed_ = 0;        ///< cumulative link_total_ - attributed-at-boundaries
};

}  // namespace sophon::obs
