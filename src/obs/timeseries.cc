#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>

namespace sophon::obs {

std::string_view series_kind_name(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounterDelta:
      return "counter_delta";
    case SeriesKind::kGauge:
      return "gauge";
    case SeriesKind::kSeconds:
      return "seconds";
  }
  return "unknown";
}

std::vector<SeriesPoint> FlightRecorder::Ring::ordered() const {
  const std::uint64_t capacity = slots.size();
  const std::uint64_t keep = std::min(head, capacity);
  std::vector<SeriesPoint> out;
  out.reserve(keep);
  for (std::uint64_t i = head - keep; i < head; ++i) out.push_back(slots[i % capacity]);
  return out;
}

FlightRecorder::FlightRecorder(MetricsRegistry& registry, TimeSeriesOptions options)
    : options_([options] {
        TimeSeriesOptions o = options;
        o.raw_capacity = std::max<std::size_t>(o.raw_capacity, 2);
        o.tail_capacity = std::max<std::size_t>(o.tail_capacity, 2);
        o.downsample = std::max<std::size_t>(o.downsample, 2);
        return o;
      }()),
      registry_(registry),
      start_(std::chrono::steady_clock::now()) {}

void FlightRecorder::record_locked(const std::string& name, SeriesKind kind, double t,
                                   double value) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    if (series_.size() >= options_.max_series) {
      ++dropped_series_;
      return;
    }
    Series fresh;
    fresh.kind = kind;
    fresh.recent.slots.resize(options_.raw_capacity);
    fresh.tail.slots.resize(options_.tail_capacity);
    it = series_.emplace(name, std::move(fresh)).first;
  }
  Series& series = it->second;

  // A raw point about to be overwritten folds into the tail first, so the
  // long tail always continues where the recent window stops covering.
  if (series.recent.head >= series.recent.slots.size()) {
    const SeriesPoint& oldest = series.recent.slots[series.recent.head % series.recent.slots.size()];
    if (series.fold_count == 0) series.fold_t = oldest.t;
    series.fold_value += oldest.value;
    ++series.fold_count;
    if (series.fold_count >= options_.downsample) {
      SeriesPoint folded;
      folded.t = series.fold_t;
      folded.value = series.kind == SeriesKind::kGauge
                         ? series.fold_value / static_cast<double>(series.fold_count)
                         : series.fold_value;
      series.tail.push(folded);
      series.fold_value = 0.0;
      series.fold_count = 0;
    }
  }
  series.recent.push(SeriesPoint{t, value});
}

void FlightRecorder::sample_at(double t) {
  const MetricsSnapshot now = registry_.snapshot();
  const std::lock_guard<std::mutex> lock(mutex_);
  const MetricsSnapshot delta = snapshot_delta(now, last_);
  for (const auto& [name, value] : delta.counters) {
    record_locked(name, SeriesKind::kCounterDelta, t, static_cast<double>(value));
  }
  for (const auto& [name, value] : delta.gauges) {
    record_locked(name, SeriesKind::kGauge, t, value);
  }
  for (const auto& [name, dist] : delta.durations) {
    record_locked(name, SeriesKind::kSeconds, t, dist.sum);
  }
  for (const auto& [name, dist] : delta.histograms) {
    record_locked(name, SeriesKind::kSeconds, t, dist.sum);
  }
  last_ = now;
  ++sample_count_;
}

void FlightRecorder::sample() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  sample_at(std::chrono::duration<double>(elapsed).count());
}

std::size_t FlightRecorder::samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sample_count_;
}

std::vector<std::string> FlightRecorder::series_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, series] : series_) names.push_back(name);
  return names;
}

SeriesKind FlightRecorder::kind(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(name);
  return it == series_.end() ? SeriesKind::kGauge : it->second.kind;
}

std::vector<SeriesPoint> FlightRecorder::recent(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(name);
  return it == series_.end() ? std::vector<SeriesPoint>{} : it->second.recent.ordered();
}

std::vector<SeriesPoint> FlightRecorder::tail(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(name);
  return it == series_.end() ? std::vector<SeriesPoint>{} : it->second.tail.ordered();
}

std::uint64_t FlightRecorder::dropped_series() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_series_;
}

MetricsSnapshot FlightRecorder::last_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_;
}

namespace {

Json points_json(const std::vector<SeriesPoint>& points) {
  Json array = Json::array();
  for (const auto& point : points) {
    Json pair = Json::array();
    pair.push_back(point.t);
    pair.push_back(point.value);
    array.push_back(std::move(pair));
  }
  return array;
}

}  // namespace

Json FlightRecorder::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Json doc = Json::object();
  doc.set("kind", "sophon.timeseries");
  doc.set("version", 1);
  doc.set("samples", static_cast<std::int64_t>(sample_count_));
  doc.set("dropped_series", static_cast<std::int64_t>(dropped_series_));
  Json series = Json::array();
  for (const auto& [name, entry] : series_) {
    Json one = Json::object();
    one.set("name", name);
    one.set("series_kind", std::string(series_kind_name(entry.kind)));
    one.set("recent", points_json(entry.recent.ordered()));
    one.set("tail", points_json(entry.tail.ordered()));
    series.push_back(std::move(one));
  }
  doc.set("series", std::move(series));
  return doc;
}

}  // namespace sophon::obs
