// Time-series flight recorder: a fixed-memory ring of metric samples.
//
// Post-hoc surfaces (Chrome traces, EpochReport) only become readable after
// the run ends; the flight recorder is the *during* surface. It periodically
// folds MetricsRegistry::snapshot_delta() into one small series per metric —
// a raw ring of the most recent samples plus a downsampled long tail — so a
// live scrape (/timeseries), the `sophonctl monitor` view, and the
// postmortem dump can all show how the run got to where it is without the
// recorder's memory growing with run length.
//
// Per sample, a counter series records the interval delta (events since the
// previous sample), a gauge series the instantaneous reading, and a
// duration/histogram series the interval's accumulated seconds. When a raw
// window fills, its oldest points are folded into the tail (summed for
// counters and distributions, averaged for gauges) at `downsample` points
// per tail point; when the tail fills too, the oldest history falls off —
// bounded memory is the contract, the recent past is the priority.
//
// Thread-safe: the sampler (epoch boundary or interval thread) and readers
// (telemetry server, postmortem) may interleave freely.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/telemetry.h"
#include "util/units.h"

namespace sophon::obs {

struct TimeSeriesOptions {
  /// Points kept at full sampling resolution, per metric.
  std::size_t raw_capacity = 240;
  /// Downsampled points kept beyond the raw window, per metric.
  std::size_t tail_capacity = 120;
  /// Raw points folded into one tail point.
  std::size_t downsample = 8;
  /// Hard cap on distinct series; metrics past it are counted, not stored.
  std::size_t max_series = 256;
};

/// One sample of one series: value at (relative) time `t` seconds.
struct SeriesPoint {
  double t = 0.0;
  double value = 0.0;
};

/// How a series folds when downsampled (and how to read its values).
enum class SeriesKind : std::uint8_t {
  kCounterDelta,  ///< events in the interval; tail points sum
  kGauge,         ///< instantaneous reading; tail points average
  kSeconds,       ///< duration/histogram seconds accrued; tail points sum
};

[[nodiscard]] std::string_view series_kind_name(SeriesKind kind);

class FlightRecorder {
 public:
  explicit FlightRecorder(MetricsRegistry& registry, TimeSeriesOptions options = {});

  /// Fold the registry's current snapshot into every series at explicit
  /// relative time `t` (seconds). Deterministic entry point for tests and
  /// for virtual-time sampling.
  void sample_at(double t);

  /// sample_at() with `t` = wall-clock seconds since construction.
  void sample();

  [[nodiscard]] std::size_t samples() const;
  [[nodiscard]] std::vector<std::string> series_names() const;
  [[nodiscard]] SeriesKind kind(const std::string& name) const;
  /// Raw recent window, oldest first. Empty for unknown series.
  [[nodiscard]] std::vector<SeriesPoint> recent(const std::string& name) const;
  /// Downsampled long tail, oldest first.
  [[nodiscard]] std::vector<SeriesPoint> tail(const std::string& name) const;
  /// Series the max_series cap refused to create.
  [[nodiscard]] std::uint64_t dropped_series() const;

  /// The registry snapshot the last sample was taken against (cumulative
  /// values; what the next delta will subtract).
  [[nodiscard]] MetricsSnapshot last_snapshot() const;

  /// `{"samples": N, "series": [{name, kind, recent: [[t,v],...],
  /// tail: [[t,v],...]}, ...]}` — the /timeseries document.
  [[nodiscard]] Json to_json() const;

 private:
  struct Ring {
    std::vector<SeriesPoint> slots;
    std::uint64_t head = 0;  // points ever pushed

    void push(const SeriesPoint& point) {
      slots[head % slots.size()] = point;
      ++head;
    }
    [[nodiscard]] std::vector<SeriesPoint> ordered() const;
  };

  struct Series {
    SeriesKind kind = SeriesKind::kGauge;
    Ring recent;
    Ring tail;
    // Tail accumulation in progress: raw points folded so far.
    double fold_value = 0.0;
    double fold_t = 0.0;
    std::size_t fold_count = 0;
  };

  void record_locked(const std::string& name, SeriesKind kind, double t, double value);

  const TimeSeriesOptions options_;
  MetricsRegistry& registry_;
  mutable std::mutex mutex_;
  std::map<std::string, Series> series_;
  MetricsSnapshot last_;
  std::size_t sample_count_ = 0;
  std::uint64_t dropped_series_ = 0;
  const std::chrono::steady_clock::time_point start_;
};

}  // namespace sophon::obs
