#include "codec/huffman.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/check.h"

namespace sophon::codec {

namespace {

struct Node {
  std::uint64_t freq;
  std::int32_t symbol;  // -1 for internal
  std::int32_t left = -1;
  std::int32_t right = -1;
};

void assign_depths(const std::vector<Node>& nodes, std::int32_t root,
                   std::vector<std::uint8_t>& lengths) {
  // Iterative DFS; depth of each leaf is its code length.
  std::vector<std::pair<std::int32_t, int>> stack{{root, 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(idx)];
    if (n.symbol >= 0) {
      lengths[static_cast<std::size_t>(n.symbol)] =
          static_cast<std::uint8_t>(std::max(depth, 1));
      continue;
    }
    stack.emplace_back(n.left, depth + 1);
    stack.emplace_back(n.right, depth + 1);
  }
}

/// Kraft sum scaled by 2^max_length.
std::uint64_t kraft_sum(const std::vector<std::uint8_t>& lengths, int max_length) {
  std::uint64_t sum = 0;
  for (const auto len : lengths)
    if (len > 0) sum += std::uint64_t{1} << (max_length - len);
  return sum;
}

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(const std::vector<std::uint64_t>& freqs,
                                               int max_length) {
  SOPHON_CHECK(max_length >= 1 && max_length <= 32);
  std::vector<std::uint8_t> lengths(freqs.size(), 0);

  std::vector<Node> nodes;
  nodes.reserve(freqs.size() * 2);
  // Min-heap of node indices ordered by (freq, index) for determinism.
  auto cmp = [&nodes](std::int32_t a, std::int32_t b) {
    const auto& na = nodes[static_cast<std::size_t>(a)];
    const auto& nb = nodes[static_cast<std::size_t>(b)];
    if (na.freq != nb.freq) return na.freq > nb.freq;
    return a > b;
  };
  std::priority_queue<std::int32_t, std::vector<std::int32_t>, decltype(cmp)> heap(cmp);

  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] > 0) {
      nodes.push_back({freqs[s], static_cast<std::int32_t>(s)});
      heap.push(static_cast<std::int32_t>(nodes.size() - 1));
    }
  }
  if (heap.empty()) return lengths;
  if (heap.size() == 1) {
    lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return lengths;
  }

  while (heap.size() > 1) {
    const std::int32_t a = heap.top();
    heap.pop();
    const std::int32_t b = heap.top();
    heap.pop();
    nodes.push_back({nodes[static_cast<std::size_t>(a)].freq + nodes[static_cast<std::size_t>(b)].freq,
                     -1, a, b});
    heap.push(static_cast<std::int32_t>(nodes.size() - 1));
  }
  assign_depths(nodes, heap.top(), lengths);

  // Length-limit: clamp over-deep codes, then restore the Kraft equality by
  // deepening the shallowest candidates until the sum fits, then shortening
  // codes where there is slack. Deterministic and always terminates.
  for (auto& len : lengths)
    if (len > max_length) len = static_cast<std::uint8_t>(max_length);

  const std::uint64_t budget = std::uint64_t{1} << max_length;
  std::uint64_t sum = kraft_sum(lengths, max_length);
  // Over-subscribed: deepen the longest non-max codes (cheapest fix first).
  while (sum > budget) {
    // Find the symbol with the longest length < max_length; deepening it by
    // one reduces the sum the least… we instead deepen the *shortest* such
    // overweight contributor to converge fast: pick any symbol with
    // len < max_length and maximal len.
    std::size_t best = lengths.size();
    int best_len = -1;
    for (std::size_t s = 0; s < lengths.size(); ++s) {
      if (lengths[s] > 0 && lengths[s] < max_length && lengths[s] > best_len) {
        best_len = lengths[s];
        best = s;
      }
    }
    SOPHON_CHECK_MSG(best < lengths.size(), "cannot satisfy Kraft inequality");
    sum -= std::uint64_t{1} << (max_length - lengths[best]);
    ++lengths[best];
    sum += std::uint64_t{1} << (max_length - lengths[best]);
  }
  SOPHON_CHECK(kraft_sum(lengths, max_length) <= budget);
  return lengths;
}

HuffmanEncoder::HuffmanEncoder(const std::vector<std::uint8_t>& lengths)
    : lengths_(lengths), codes_(lengths.size(), 0) {
  // Canonical assignment: sort symbols by (length, symbol), assign
  // incrementing codes, left-shifting when the length grows.
  std::vector<std::uint32_t> symbols;
  for (std::uint32_t s = 0; s < lengths_.size(); ++s)
    if (lengths_[s] > 0) symbols.push_back(s);
  std::sort(symbols.begin(), symbols.end(), [this](std::uint32_t a, std::uint32_t b) {
    if (lengths_[a] != lengths_[b]) return lengths_[a] < lengths_[b];
    return a < b;
  });
  std::uint32_t code = 0;
  int prev_len = 0;
  for (const auto s : symbols) {
    code <<= (lengths_[s] - prev_len);
    codes_[s] = code;
    ++code;
    prev_len = lengths_[s];
  }
}

void HuffmanEncoder::encode(BitWriter& out, std::uint32_t symbol) const {
  SOPHON_CHECK(symbol < lengths_.size());
  SOPHON_CHECK_MSG(lengths_[symbol] > 0, "symbol has no code");
  out.put(codes_[symbol], lengths_[symbol]);
}

HuffmanDecoder::HuffmanDecoder(const std::vector<std::uint8_t>& lengths) {
  for (const auto len : lengths) max_len_ = std::max<int>(max_len_, len);
  first_code_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  first_index_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  count_.assign(static_cast<std::size_t>(max_len_) + 1, 0);

  for (std::uint32_t s = 0; s < lengths.size(); ++s)
    if (lengths[s] > 0) sorted_symbols_.push_back(s);
  std::sort(sorted_symbols_.begin(), sorted_symbols_.end(),
            [&lengths](std::uint32_t a, std::uint32_t b) {
              if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
              return a < b;
            });
  for (const auto s : sorted_symbols_) ++count_[lengths[s]];

  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (int len = 1; len <= max_len_; ++len) {
    code <<= 1;
    first_code_[static_cast<std::size_t>(len)] = code;
    first_index_[static_cast<std::size_t>(len)] = index;
    code += count_[static_cast<std::size_t>(len)];
    index += count_[static_cast<std::size_t>(len)];
  }
}

std::uint32_t HuffmanDecoder::decode(BitReader& in) const {
  std::uint32_t code = 0;
  for (int len = 1; len <= max_len_; ++len) {
    code = (code << 1) | static_cast<std::uint32_t>(in.get_bit());
    const auto l = static_cast<std::size_t>(len);
    if (count_[l] > 0 && code < first_code_[l] + count_[l] && code >= first_code_[l]) {
      return sorted_symbols_[first_index_[l] + (code - first_code_[l])];
    }
  }
  return invalid_symbol();
}

void write_code_lengths(BitWriter& out, const std::vector<std::uint8_t>& lengths) {
  // Format: for each position, either bit 1 + 5-bit length, or bit 0 +
  // 8-bit zero-run length (1..256 encoded as 0..255).
  std::size_t i = 0;
  while (i < lengths.size()) {
    if (lengths[i] == 0) {
      std::size_t run = 1;
      while (i + run < lengths.size() && lengths[i + run] == 0 && run < 256) ++run;
      out.put(0, 1);
      out.put(run - 1, 8);
      i += run;
    } else {
      out.put(1, 1);
      out.put(lengths[i], 5);
      ++i;
    }
  }
}

std::vector<std::uint8_t> read_code_lengths(BitReader& in, std::size_t alphabet) {
  std::vector<std::uint8_t> lengths(alphabet, 0);
  std::size_t i = 0;
  while (i < alphabet && !in.overrun()) {
    if (in.get_bit() == 1) {
      lengths[i++] = static_cast<std::uint8_t>(in.get(5));
    } else {
      const auto run = static_cast<std::size_t>(in.get(8)) + 1;
      i += run;  // zero run; lengths already zero-initialised
    }
  }
  return lengths;
}

}  // namespace sophon::codec
