// SJPG — a from-scratch lossy image codec standing in for JPEG.
//
// The paper's datasets are JPEG files; what SOPHON cares about is that a
// compressed sample can be much smaller *or* larger than its decoded and
// cropped forms, with a ratio that varies per image. SJPG reproduces that:
//   * RGB → YCbCr with 4:2:0 chroma subsampling (like baseline JPEG),
//   * closed-loop DPCM with per-row adaptive predictors (MED/left/up/avg,
//     PNG-style, chosen by trial against the evolving reconstruction),
//   * quality-controlled uniform quantisation of residuals,
//   * zero-run RLE + canonical Huffman entropy coding per plane.
// Smooth images compress 10–30x; noisy ones barely 1.5x — the same spread a
// JPEG corpus shows, which is what drives the paper's 76 % / 26 % split.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "image/image.h"

namespace sophon::codec {

/// Fixed-size container header at the front of every SJPG blob.
struct SjpgHeader {
  int width = 0;
  int height = 0;
  int channels = 0;
  int quality = 0;  // 1 (coarsest) .. 100 (finest quantisation)
};

/// Encode an image at the given quality (1..100). Deterministic: identical
/// inputs yield identical bytes.
[[nodiscard]] std::vector<std::uint8_t> sjpg_encode(const image::Image& img, int quality);

/// Decode a full SJPG blob. Returns nullopt on a malformed stream (bad
/// magic, truncated payload, corrupt entropy data).
[[nodiscard]] std::optional<image::Image> sjpg_decode(std::span<const std::uint8_t> blob);

/// Parse only the header — O(1); used by the storage server to answer size
/// queries without decoding.
[[nodiscard]] std::optional<SjpgHeader> sjpg_peek(std::span<const std::uint8_t> blob);

/// Quantisation step used for the luma plane at a quality level; chroma uses
/// twice this step. Exposed for tests that reason about rate/distortion.
[[nodiscard]] int sjpg_quant_step(int quality);

}  // namespace sophon::codec
