#include "codec/bitio.h"

#include "util/check.h"

namespace sophon::codec {

void BitWriter::put(std::uint64_t bits, int count) {
  SOPHON_CHECK(count >= 0 && count <= 57);
  if (count == 0) return;
  if (count < 64) bits &= (std::uint64_t{1} << count) - 1;
  acc_ = (acc_ << count) | bits;
  acc_bits_ += count;
  bit_count_ += static_cast<std::uint64_t>(count);
  while (acc_bits_ >= 8) {
    acc_bits_ -= 8;
    bytes_.push_back(static_cast<std::uint8_t>(acc_ >> acc_bits_));
  }
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (acc_bits_ > 0) {
    bytes_.push_back(static_cast<std::uint8_t>(acc_ << (8 - acc_bits_)));
    acc_bits_ = 0;
  }
  acc_ = 0;
  return std::move(bytes_);
}

std::uint64_t BitReader::get(int count) {
  SOPHON_CHECK(count >= 0 && count <= 57);
  if (count == 0) return 0;
  while (acc_bits_ < count) {
    std::uint8_t byte = 0;
    if (byte_pos_ < data_.size()) {
      byte = data_[byte_pos_++];
    } else {
      overrun_ = true;
    }
    acc_ = (acc_ << 8) | byte;
    acc_bits_ += 8;
  }
  acc_bits_ -= count;
  bits_consumed_ += static_cast<std::uint64_t>(count);
  const std::uint64_t mask = (count < 64) ? ((std::uint64_t{1} << count) - 1) : ~std::uint64_t{0};
  return (acc_ >> acc_bits_) & mask;
}

int BitReader::get_bit() {
  return static_cast<int>(get(1));
}

}  // namespace sophon::codec
