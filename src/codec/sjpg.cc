#include "codec/sjpg.h"

#include <algorithm>
#include <cmath>

#include "codec/bitio.h"
#include "codec/huffman.h"
#include "image/color.h"
#include "util/check.h"

namespace sophon::codec {

namespace {

constexpr std::uint32_t kMagic = 0x53'4a'50'47;  // "SJPG"
// Residual symbols: zigzagged quantised residual in [0, 510], plus one
// zero-run marker. Runs carry a 10-bit length (4..1027 zeros).
constexpr std::uint32_t kZrun = 511;
constexpr std::size_t kAlphabet = 512;
constexpr std::size_t kMinRun = 4;
constexpr std::size_t kMaxRun = kMinRun + 1023;

std::uint32_t zigzag(int v) {
  return v >= 0 ? static_cast<std::uint32_t>(2 * v)
                : static_cast<std::uint32_t>(-2 * v - 1);
}

int unzigzag(std::uint32_t s) {
  return (s & 1u) ? -static_cast<int>((s + 1) / 2) : static_cast<int>(s / 2);
}

/// LOCO-I (JPEG-LS) median edge detector predictor.
int med_predict(int a /*left*/, int b /*up*/, int c /*up-left*/) {
  if (c >= std::max(a, b)) return std::min(a, b);
  if (c <= std::min(a, b)) return std::max(a, b);
  return a + b - c;
}

/// Per-row predictor modes (PNG-style adaptive filtering). The encoder
/// trials every mode per row against the evolving reconstruction and keeps
/// the cheapest; the 2-bit choice travels with the plane.
enum class Predictor : std::uint8_t { kMed = 0, kLeft = 1, kUp = 2, kAvg = 3 };
constexpr int kPredictorCount = 4;

int predict_at(const image::Plane& rec, int x, int y, Predictor mode) {
  if (x == 0 && y == 0) return 128;
  const int a = x > 0 ? rec.at(x - 1, y) : -1;     // left
  const int b = y > 0 ? rec.at(x, y - 1) : -1;     // up
  if (y == 0) return a;
  if (x == 0) return b;
  switch (mode) {
    case Predictor::kLeft:
      return a;
    case Predictor::kUp:
      return b;
    case Predictor::kAvg:
      return (a + b) / 2;
    case Predictor::kMed:
      break;
  }
  return med_predict(a, b, rec.at(x - 1, y - 1));
}

/// Quantise a residual with a mid-tread uniform quantiser.
int quantise(int residual, int step) {
  if (step == 1) return residual;
  const int sign = residual < 0 ? -1 : 1;
  return sign * ((std::abs(residual) + step / 2) / step);
}

/// Closed-loop DPCM over one row with a fixed predictor, starting from the
/// reconstruction built so far. Appends symbols and writes the row's
/// reconstruction; returns a cost proxy (sum of |quantised residual|).
std::int64_t dpcm_row(const image::Plane& src, image::Plane& rec, int y, Predictor mode,
                      int step, std::vector<std::uint32_t>& symbols) {
  std::int64_t cost = 0;
  for (int x = 0; x < src.width(); ++x) {
    const int pred = predict_at(rec, x, y, mode);
    const int residual = src.at(x, y) - pred;
    const int q = quantise(residual, step);
    rec.set(x, y, static_cast<std::uint8_t>(std::clamp(pred + q * step, 0, 255)));
    symbols.push_back(zigzag(q));
    cost += std::abs(q);
  }
  return cost;
}

/// Closed-loop DPCM pass with per-row adaptive predictors: produces the
/// symbol stream, the chosen predictor per row, and the reconstruction the
/// decoder will arrive at (so prediction stays in sync under lossy
/// quantisation).
std::vector<std::uint32_t> dpcm_symbols(const image::Plane& src, int step,
                                        std::vector<Predictor>& row_modes) {
  image::Plane rec(src.width(), src.height());
  std::vector<std::uint32_t> symbols;
  symbols.reserve(static_cast<std::size_t>(src.width()) * src.height());
  row_modes.clear();
  row_modes.reserve(static_cast<std::size_t>(src.height()));

  std::vector<std::uint32_t> trial;
  trial.reserve(static_cast<std::size_t>(src.width()));
  for (int y = 0; y < src.height(); ++y) {
    Predictor best_mode = Predictor::kMed;
    std::int64_t best_cost = -1;
    std::vector<std::uint32_t> best_symbols;
    std::vector<std::uint8_t> best_row(static_cast<std::size_t>(src.width()));
    for (int m = 0; m < kPredictorCount; ++m) {
      const auto mode = static_cast<Predictor>(m);
      trial.clear();
      const auto cost = dpcm_row(src, rec, y, mode, step, trial);
      if (best_cost < 0 || cost < best_cost) {
        best_cost = cost;
        best_mode = mode;
        best_symbols = trial;
        for (int x = 0; x < src.width(); ++x) {
          best_row[static_cast<std::size_t>(x)] = rec.at(x, y);
        }
      }
    }
    // Commit the winner's reconstruction (later trials overwrote the row).
    for (int x = 0; x < src.width(); ++x) rec.set(x, y, best_row[static_cast<std::size_t>(x)]);
    symbols.insert(symbols.end(), best_symbols.begin(), best_symbols.end());
    row_modes.push_back(best_mode);
  }
  return symbols;
}

/// Collapse zero runs into ZRUN markers. Returns (symbol, run_payload) pairs;
/// run_payload is only meaningful after a ZRUN.
struct RleToken {
  std::uint32_t symbol;
  std::uint32_t run = 0;  // encoded as run - kMinRun in 10 bits
};

std::vector<RleToken> run_length_encode(const std::vector<std::uint32_t>& symbols) {
  std::vector<RleToken> tokens;
  tokens.reserve(symbols.size());
  std::size_t i = 0;
  while (i < symbols.size()) {
    if (symbols[i] == 0) {
      std::size_t run = 1;
      while (i + run < symbols.size() && symbols[i + run] == 0 && run < kMaxRun) ++run;
      if (run >= kMinRun) {
        tokens.push_back({kZrun, static_cast<std::uint32_t>(run - kMinRun)});
        i += run;
        continue;
      }
    }
    tokens.push_back({symbols[i]});
    ++i;
  }
  return tokens;
}

void encode_plane(BitWriter& out, const image::Plane& plane, int step) {
  std::vector<Predictor> row_modes;
  const auto symbols = dpcm_symbols(plane, step, row_modes);
  const auto tokens = run_length_encode(symbols);

  // Per-row predictor choices first (2 bits each), then the entropy data.
  for (const auto mode : row_modes) out.put(static_cast<std::uint64_t>(mode), 2);

  std::vector<std::uint64_t> freqs(kAlphabet, 0);
  for (const auto& t : tokens) ++freqs[t.symbol];
  const auto lengths = huffman_code_lengths(freqs);
  write_code_lengths(out, lengths);

  const HuffmanEncoder encoder(lengths);
  for (const auto& t : tokens) {
    encoder.encode(out, t.symbol);
    if (t.symbol == kZrun) out.put(t.run, 10);
  }
}

bool decode_plane(BitReader& in, image::Plane& plane, int step) {
  std::vector<Predictor> row_modes(static_cast<std::size_t>(plane.height()));
  for (auto& mode : row_modes) {
    mode = static_cast<Predictor>(in.get(2));
  }
  if (in.overrun()) return false;
  const auto lengths = read_code_lengths(in, kAlphabet);
  if (in.overrun()) return false;
  bool any = false;
  for (const auto len : lengths)
    if (len > 0) any = true;
  if (!any) return false;
  const HuffmanDecoder decoder(lengths);

  const auto total = static_cast<std::size_t>(plane.width()) * plane.height();
  std::vector<std::uint32_t> symbols;
  symbols.reserve(total);
  while (symbols.size() < total) {
    const auto sym = decoder.decode(in);
    if (sym == HuffmanDecoder::invalid_symbol() || in.overrun()) return false;
    if (sym == kZrun) {
      const auto run = static_cast<std::size_t>(in.get(10)) + kMinRun;
      if (symbols.size() + run > total) return false;
      symbols.insert(symbols.end(), run, 0u);
    } else {
      symbols.push_back(sym);
    }
  }

  // Mirror the encoder's closed-loop reconstruction.
  std::size_t idx = 0;
  for (int y = 0; y < plane.height(); ++y) {
    const auto mode = row_modes[static_cast<std::size_t>(y)];
    for (int x = 0; x < plane.width(); ++x) {
      const int pred = predict_at(plane, x, y, mode);
      const int q = unzigzag(symbols[idx++]);
      plane.set(x, y, static_cast<std::uint8_t>(std::clamp(pred + q * step, 0, 255)));
    }
  }
  return true;
}

}  // namespace

int sjpg_quant_step(int quality) {
  SOPHON_CHECK(quality >= 1 && quality <= 100);
  // Quality 92+ → step 1 (near-lossless); quality 80 → step 4; quality 60 →
  // step 9; quality 1 → step 23.
  if (quality >= 92) return 1;
  return 1 + (92 - quality) / 4;
}

std::vector<std::uint8_t> sjpg_encode(const image::Image& img, int quality) {
  SOPHON_CHECK(!img.empty());
  SOPHON_CHECK(quality >= 1 && quality <= 100);
  SOPHON_CHECK(img.width() <= 0xffff && img.height() <= 0xffff);

  BitWriter out;
  out.put(kMagic, 32);
  out.put(static_cast<std::uint64_t>(img.width()), 16);
  out.put(static_cast<std::uint64_t>(img.height()), 16);
  out.put(static_cast<std::uint64_t>(img.channels()), 8);
  out.put(static_cast<std::uint64_t>(quality), 8);

  const int luma_step = sjpg_quant_step(quality);
  const int chroma_step = std::min(2 * luma_step, 32);

  if (img.channels() == 3) {
    const auto planes = image::split_ycbcr_420(img);
    encode_plane(out, planes.y, luma_step);
    encode_plane(out, planes.cb, chroma_step);
    encode_plane(out, planes.cr, chroma_step);
  } else {
    image::Plane gray(img.width(), img.height());
    for (int y = 0; y < img.height(); ++y)
      for (int x = 0; x < img.width(); ++x) gray.set(x, y, img.at(x, y, 0));
    encode_plane(out, gray, luma_step);
  }
  return out.finish();
}

std::optional<SjpgHeader> sjpg_peek(std::span<const std::uint8_t> blob) {
  BitReader in(blob);
  if (in.get(32) != kMagic) return std::nullopt;
  SjpgHeader hdr;
  hdr.width = static_cast<int>(in.get(16));
  hdr.height = static_cast<int>(in.get(16));
  hdr.channels = static_cast<int>(in.get(8));
  hdr.quality = static_cast<int>(in.get(8));
  if (in.overrun()) return std::nullopt;
  if (hdr.width <= 0 || hdr.height <= 0) return std::nullopt;
  if (hdr.channels != 1 && hdr.channels != 3) return std::nullopt;
  if (hdr.quality < 1 || hdr.quality > 100) return std::nullopt;
  return hdr;
}

std::optional<image::Image> sjpg_decode(std::span<const std::uint8_t> blob) {
  const auto hdr = sjpg_peek(blob);
  if (!hdr) return std::nullopt;

  BitReader in(blob);
  in.get(32);  // magic
  in.get(16);
  in.get(16);
  in.get(8);
  in.get(8);

  const int luma_step = sjpg_quant_step(hdr->quality);
  const int chroma_step = std::min(2 * luma_step, 32);

  if (hdr->channels == 3) {
    image::Plane y(hdr->width, hdr->height);
    image::Plane cb((hdr->width + 1) / 2, (hdr->height + 1) / 2);
    image::Plane cr((hdr->width + 1) / 2, (hdr->height + 1) / 2);
    if (!decode_plane(in, y, luma_step)) return std::nullopt;
    if (!decode_plane(in, cb, chroma_step)) return std::nullopt;
    if (!decode_plane(in, cr, chroma_step)) return std::nullopt;
    return image::merge_ycbcr_420(y, cb, cr, hdr->width, hdr->height);
  }

  image::Plane gray(hdr->width, hdr->height);
  if (!decode_plane(in, gray, luma_step)) return std::nullopt;
  image::Image out(hdr->width, hdr->height, 1);
  for (int py = 0; py < hdr->height; ++py)
    for (int px = 0; px < hdr->width; ++px) out.set(px, py, 0, gray.at(px, py));
  return out;
}

}  // namespace sophon::codec
