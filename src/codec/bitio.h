// MSB-first bit-level I/O over byte buffers — the substrate for the Huffman
// coder. Writer owns its buffer; reader borrows one.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sophon::codec {

/// Accumulates bits most-significant-first into a growing byte vector.
class BitWriter {
 public:
  /// Append the low `count` bits of `bits` (MSB of that group first).
  /// `count` must be in [0, 57] so the accumulator never overflows.
  void put(std::uint64_t bits, int count);

  /// Flush any partial byte (zero-padded) and return the buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  /// Bits written so far (excluding padding).
  [[nodiscard]] std::uint64_t bit_count() const { return bit_count_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;
  int acc_bits_ = 0;
  std::uint64_t bit_count_ = 0;
};

/// Reads bits most-significant-first from a borrowed byte span.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Read `count` bits (0..57). Reads past the end are zero-filled and set
  /// the overrun flag — callers check `overrun()` after decoding.
  std::uint64_t get(int count);

  /// Read a single bit (0 or 1).
  int get_bit();

  [[nodiscard]] bool overrun() const { return overrun_; }
  [[nodiscard]] std::uint64_t bits_consumed() const { return bits_consumed_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t byte_pos_ = 0;
  std::uint64_t acc_ = 0;
  int acc_bits_ = 0;
  bool overrun_ = false;
  std::uint64_t bits_consumed_ = 0;
};

}  // namespace sophon::codec
