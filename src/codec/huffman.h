// Canonical Huffman coding over an arbitrary symbol alphabet.
//
// The SJPG image codec entropy-codes quantised prediction residuals with a
// per-plane Huffman table. Tables are serialised as code lengths only
// (canonical assignment makes the codes themselves implicit), exactly like
// DEFLATE/JPEG do.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/bitio.h"

namespace sophon::codec {

/// Compute canonical Huffman code lengths for the given symbol frequencies.
/// Zero-frequency symbols get length 0 (no code). Lengths are capped at
/// `max_length` bits by flattening over-deep leaves (the standard adjust
/// pass), which keeps the decoder's tables small.
/// Degenerate cases: an alphabet with a single used symbol is assigned
/// length 1 so the bitstream is self-delimiting.
[[nodiscard]] std::vector<std::uint8_t> huffman_code_lengths(
    const std::vector<std::uint64_t>& freqs, int max_length = 20);

/// Encoder: canonical codes derived from lengths.
class HuffmanEncoder {
 public:
  /// `lengths[s]` is the code length for symbol `s` (0 = unused).
  explicit HuffmanEncoder(const std::vector<std::uint8_t>& lengths);

  /// Write the code for `symbol`; the symbol must have a nonzero length.
  void encode(BitWriter& out, std::uint32_t symbol) const;

  [[nodiscard]] std::size_t alphabet_size() const { return lengths_.size(); }
  [[nodiscard]] std::uint8_t length_of(std::uint32_t symbol) const { return lengths_[symbol]; }

 private:
  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;
};

/// Decoder: walks the canonical code space one length at a time (the
/// first-code/offset method). Compact and fast enough for this workload.
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(const std::vector<std::uint8_t>& lengths);

  /// Decode one symbol. On a corrupt stream returns `invalid_symbol()` —
  /// callers must treat it as a decode failure.
  [[nodiscard]] std::uint32_t decode(BitReader& in) const;

  [[nodiscard]] static constexpr std::uint32_t invalid_symbol() { return 0xffffffffu; }

 private:
  int max_len_ = 0;
  // Indexed by code length 1..max_len_.
  std::vector<std::uint32_t> first_code_;    // first canonical code of this length
  std::vector<std::uint32_t> first_index_;   // index into sorted_symbols_ for that code
  std::vector<std::uint32_t> count_;         // number of codes of this length
  std::vector<std::uint32_t> sorted_symbols_;
};

/// Serialise code lengths into the bitstream (alphabet size is implicit —
/// both sides agree on it). Uses 5 bits per length, RLE for zero runs.
void write_code_lengths(BitWriter& out, const std::vector<std::uint8_t>& lengths);

/// Inverse of write_code_lengths for a known alphabet size.
[[nodiscard]] std::vector<std::uint8_t> read_code_lengths(BitReader& in, std::size_t alphabet);

}  // namespace sophon::codec
